open Netcov_types
open Netcov_config
open Netcov_policy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

let term name matches actions = { Policy_ast.term_name = name; matches; actions }

let device =
  Device.make
    ~prefix_lists:
      [
        { Device.pl_name = "TEN"; pl_entries = [ { ple_prefix = p "10.0.0.0/8"; ple_ge = None; ple_le = Some 32 } ] };
      ]
    ~community_lists:
      [ { Device.cl_name = "TAGS"; cl_members = [ Community.make 1 1; Community.make 1 2 ] } ]
    ~as_path_lists:
      [ { Device.al_name = "BAD"; al_patterns = [ As_regex.compile "_666_" ] } ]
    ~policies:
      [
        {
          Policy_ast.pol_name = "MAIN";
          terms =
            [
              term "reject-bad" [ Policy_ast.Match_as_path_list "BAD" ] [ Policy_ast.Reject ];
              term "pref-ten"
                [ Policy_ast.Match_prefix_list "TEN" ]
                [ Policy_ast.Set_local_pref 200; Policy_ast.Accept ];
              term "tag-rest" []
                [ Policy_ast.Add_community (Community.make 9 9); Policy_ast.Next_term ];
              term "final" [] [ Policy_ast.Accept ];
            ];
        };
        {
          Policy_ast.pol_name = "SECOND";
          terms = [ term "deny" [] [ Policy_ast.Reject ] ];
        };
        {
          Policy_ast.pol_name = "MODIFIERS";
          terms =
            [
              term "mods" []
                [
                  Policy_ast.Set_med 42;
                  Policy_ast.Prepend_as (65000, 2);
                  Policy_ast.Remove_community (Community.make 1 1);
                  Policy_ast.Delete_community_in "TAGS";
                ];
            ];
        };
      ]
    "pol-dev"

let route ?(as_path = []) ?(communities = []) prefix =
  {
    Route.prefix = p prefix;
    next_hop = Ipv4.zero;
    as_path = As_path.of_list as_path;
    local_pref = 100;
    med = 0;
    communities = Community.Set.of_list communities;
    origin = Route.Origin_igp;
    cluster_len = 0;
  }

let run ?(chain = [ "MAIN" ]) ?(default = Eval.Rejected) r =
  Eval.run_chain device ~chain ~default r

let names result =
  List.map
    (fun (k : Element.key) -> k.name)
    result.Eval.exercised

let test_reject_term () =
  let r = run (route ~as_path:[ 1; 666; 2 ] "10.0.0.0/8") in
  check_bool "rejected" true (r.Eval.verdict = Eval.Rejected);
  check_bool "no route" true (r.Eval.route = None);
  Alcotest.(check (list string)) "exercised" [ "MAIN/reject-bad"; "BAD" ] (names r)

let test_accept_with_modifier () =
  let r = run (route "10.1.0.0/16") in
  check_bool "accepted" true (r.Eval.verdict = Eval.Accepted);
  (match r.Eval.route with
  | Some rt -> check_int "lp set" 200 rt.Route.local_pref
  | None -> Alcotest.fail "expected route");
  Alcotest.(check (list string)) "exercised" [ "MAIN/pref-ten"; "TEN" ] (names r)

let test_fallthrough_modifies () =
  (* a route outside TEN with a clean path falls to tag-rest, then final *)
  let r = run (route "11.0.0.0/8") in
  check_bool "accepted" true (r.Eval.verdict = Eval.Accepted);
  (match r.Eval.route with
  | Some rt -> check_bool "tag added" true (Route.has_community rt (Community.make 9 9))
  | None -> Alcotest.fail "expected route");
  Alcotest.(check (list string))
    "both terms exercised" [ "MAIN/tag-rest"; "MAIN/final" ] (names r)

let test_chain_order () =
  (* SECOND rejects everything; MAIN's final accept shadows it *)
  let r = run ~chain:[ "MAIN"; "SECOND" ] (route "11.0.0.0/8") in
  check_bool "main wins" true (r.Eval.verdict = Eval.Accepted);
  let r2 = run ~chain:[ "SECOND"; "MAIN" ] (route "11.0.0.0/8") in
  check_bool "second wins" true (r2.Eval.verdict = Eval.Rejected)

let test_default_applies () =
  let r = run ~chain:[] ~default:Eval.Accepted (route "9.9.9.0/24") in
  check_bool "default accept" true (r.Eval.verdict = Eval.Accepted);
  let r2 = run ~chain:[] ~default:Eval.Rejected (route "9.9.9.0/24") in
  check_bool "default reject" true (r2.Eval.verdict = Eval.Rejected)

let test_missing_policy_skipped () =
  let r = run ~chain:[ "NOPE"; "MAIN" ] (route "10.1.0.0/16") in
  check_bool "skipped missing" true (r.Eval.verdict = Eval.Accepted)

let test_modifier_actions () =
  let r =
    run ~chain:[ "MODIFIERS" ] ~default:Eval.Accepted
      (route ~communities:[ Community.make 1 1; Community.make 1 2; Community.make 3 3 ]
         "9.0.0.0/8")
  in
  match r.Eval.route with
  | None -> Alcotest.fail "expected route"
  | Some rt ->
      check_int "med" 42 rt.Route.med;
      Alcotest.(check (list int)) "prepended" [ 65000; 65000 ] (As_path.to_list rt.Route.as_path);
      check_bool "1:1 removed" false (Route.has_community rt (Community.make 1 1));
      check_bool "1:2 deleted via list" false (Route.has_community rt (Community.make 1 2));
      check_bool "3:3 kept" true (Route.has_community rt (Community.make 3 3));
      check_bool "TAGS exercised by delete" true (List.mem "TAGS" (names r))

let test_protocol_match () =
  let pol : Policy_ast.policy =
    {
      pol_name = "REDIST";
      terms =
        [
          term "static-only" [ Policy_ast.Match_protocol Route.Static ] [ Policy_ast.Accept ];
          term "deny" [] [ Policy_ast.Reject ];
        ];
    }
  in
  let d = Device.make ~policies:[ pol ] "d" in
  let r =
    Eval.run_chain d ~chain:[ "REDIST" ] ~default:Eval.Rejected ~protocol:Route.Static
      (route "9.0.0.0/8")
  in
  check_bool "static accepted" true (r.Eval.verdict = Eval.Accepted);
  let r2 =
    Eval.run_chain d ~chain:[ "REDIST" ] ~default:Eval.Rejected ~protocol:Route.Connected
      (route "9.0.0.0/8")
  in
  check_bool "connected rejected" true (r2.Eval.verdict = Eval.Rejected)

let test_match_conditions_conjunctive () =
  let pol : Policy_ast.policy =
    {
      pol_name = "BOTH";
      terms =
        [
          term "both"
            [ Policy_ast.Match_prefix_list "TEN"; Policy_ast.Match_community_list "TAGS" ]
            [ Policy_ast.Accept ];
          term "deny" [] [ Policy_ast.Reject ];
        ];
    }
  in
  let d = { device with Device.policies = pol :: device.Device.policies } in
  let hit =
    Eval.run_chain d ~chain:[ "BOTH" ] ~default:Eval.Rejected
      (route ~communities:[ Community.make 1 1 ] "10.0.0.0/8")
  in
  check_bool "both hold" true (hit.Eval.verdict = Eval.Accepted);
  let miss =
    Eval.run_chain d ~chain:[ "BOTH" ] ~default:Eval.Rejected (route "10.0.0.0/8")
  in
  check_bool "one fails" true (miss.Eval.verdict = Eval.Rejected)

let test_inline_prefix_modes () =
  let mk mode = term "t" [ Policy_ast.Match_prefix (p "10.0.0.0/8", mode) ] [ Policy_ast.Accept ] in
  let check mode prefix expect =
    let d = Device.make ~policies:[ { Policy_ast.pol_name = "P"; terms = [ mk mode ] } ] "d" in
    let r = Eval.run_chain d ~chain:[ "P" ] ~default:Eval.Rejected (route prefix) in
    check_bool (prefix ^ " mode") expect (r.Eval.verdict = Eval.Accepted)
  in
  check Policy_ast.Exact "10.0.0.0/8" true;
  check Policy_ast.Exact "10.1.0.0/16" false;
  check Policy_ast.Orlonger "10.1.0.0/16" true;
  check Policy_ast.Orlonger "11.0.0.0/8" false;
  check (Policy_ast.Upto 16) "10.1.0.0/16" true;
  check (Policy_ast.Upto 16) "10.1.1.0/24" false

let () =
  Alcotest.run "policy"
    [
      ( "eval",
        [
          Alcotest.test_case "reject term traced" `Quick test_reject_term;
          Alcotest.test_case "accept with modifier" `Quick test_accept_with_modifier;
          Alcotest.test_case "fallthrough modifies" `Quick test_fallthrough_modifies;
          Alcotest.test_case "chain order" `Quick test_chain_order;
          Alcotest.test_case "default applies" `Quick test_default_applies;
          Alcotest.test_case "missing policy skipped" `Quick test_missing_policy_skipped;
          Alcotest.test_case "modifier actions" `Quick test_modifier_actions;
          Alcotest.test_case "protocol match" `Quick test_protocol_match;
          Alcotest.test_case "conjunctive matches" `Quick test_match_conditions_conjunctive;
          Alcotest.test_case "inline prefix modes" `Quick test_inline_prefix_modes;
        ] );
    ]
