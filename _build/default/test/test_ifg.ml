open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

(* ---------------- graph structure ---------------- *)

let f name = Fact.F_edge name

let test_add_dedup () =
  let g = Ifg.create () in
  let id1, new1 = Ifg.add_fact g (f "x") in
  let id2, new2 = Ifg.add_fact g (f "x") in
  check_bool "first new" true new1;
  check_bool "second reused" false new2;
  check_int "same id" id1 id2;
  check_int "one node" 1 (Ifg.n_nodes g)

let test_edges_idempotent () =
  let g = Ifg.create () in
  let a, _ = Ifg.add_fact g (f "a") in
  let b, _ = Ifg.add_fact g (f "b") in
  Ifg.add_edge g ~parent:a ~child:b;
  Ifg.add_edge g ~parent:a ~child:b;
  check_int "one edge" 1 (Ifg.n_edges g);
  Alcotest.(check (list int)) "parents" [ a ] (Ifg.parents g b);
  Alcotest.(check (list int)) "children" [ b ] (Ifg.children g a)

let test_disj_nodes () =
  let g = Ifg.create () in
  let t, _ = Ifg.add_fact g (f "t") in
  let d1 = Ifg.add_disj g ~target:t [ f "p1"; f "p2" ] in
  let d2 = Ifg.add_disj g ~target:t [ f "p2"; f "p1" ] in
  check_int "disj deduped" d1 d2;
  check_bool "kind" true (Ifg.kind g d1 = Ifg.N_disj);
  check_int "two members" 2 (List.length (Ifg.parents g d1));
  check_bool "target wired" true (List.mem d1 (Ifg.parents g t))

let test_config_nodes () =
  let g = Ifg.create () in
  ignore (Ifg.add_fact g (Fact.F_config 7));
  ignore (Ifg.add_fact g (f "x"));
  ignore (Ifg.add_fact g (Fact.F_config 9));
  Alcotest.(check (list int)) "configs" [ 7; 9 ]
    (List.map snd (Ifg.config_nodes g))

(* ---------------- fact keys ---------------- *)

let test_fact_keys_distinct () =
  let entry =
    { Rib.me_prefix = p "10.0.0.0/8"; me_nexthop = Rib.Nh_discard; me_protocol = Route.Bgp; me_metric = 0 }
  in
  let facts =
    [
      Fact.F_config 1;
      Fact.F_config 2;
      Fact.F_main_rib { host = "a"; entry };
      Fact.F_main_rib { host = "b"; entry };
      Fact.F_edge "e1";
      Fact.F_redist_edge { host = "a"; proto = Route.Static };
      Fact.F_path { src = "a"; dst = Ipv4.zero; idx = 0 };
      Fact.F_path { src = "a"; dst = Ipv4.zero; idx = 1 };
      Fact.F_acl { host = "a"; acl = "x"; rule = Some 0 };
      Fact.F_acl { host = "a"; acl = "x"; rule = None };
    ]
  in
  let keys = List.map Fact.key facts in
  check_int "all distinct" (List.length facts)
    (List.length (List.sort_uniq String.compare keys))

let test_fact_host () =
  check_bool "config unbound" true (Fact.host_of (Fact.F_config 1) = None);
  check_bool "path src" true
    (Fact.host_of (Fact.F_path { src = "s"; dst = Ipv4.zero; idx = 0 }) = Some "s")

(* ---------------- materialization on the chain network ---------------- *)

let covered_names state report_cov =
  let reg = Stable_state.registry state in
  let acc = ref [] in
  Registry.iter_elements reg (fun e ->
      if Coverage.element_status report_cov e.Element.id <> Coverage.Not_covered
      then acc := (e.Element.device ^ ":" ^ Element.name_of e) :: !acc);
  List.sort String.compare !acc

let test_materialize_chain () =
  let state = Testnet.state_of (Testnet.chain ()) in
  (* test c's forwarding entry for a's LAN *)
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup state "c" (p "10.10.0.0/24"))
  in
  check_bool "have tested facts" true (tested <> []);
  let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
  let covered = covered_names state report.Netcov.coverage in
  let expect name = check_bool name true (List.mem name covered) in
  (* the whole derivation chain is covered *)
  expect "a:10.10.0.0/24";      (* network statement on a *)
  expect "a:lan0";              (* source interface *)
  expect "a:eth0";              (* session interface a-b *)
  expect "a:192.168.0.2";      (* a's peering toward b *)
  expect "b:192.168.0.1";      (* b's peering toward a *)
  expect "b:eth0";
  expect "b:eth1";
  expect "b:192.168.0.6";      (* b's peering toward c *)
  expect "c:192.168.0.5";      (* c's peering toward b *)
  expect "c:eth0";
  (* everything here is deterministic: all strong *)
  let stats = Coverage.line_stats report.Netcov.coverage in
  check_int "no weak lines" 0 stats.Coverage.weak_lines;
  check_bool "ifg non-trivial" true (report.Netcov.timing.ifg_nodes > 10)

let test_materialize_idempotent_union () =
  (* analyzing the same fact twice covers the same set *)
  let state = Testnet.state_of (Testnet.chain ()) in
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup state "c" (p "10.10.0.0/24"))
  in
  let r1 = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
  let r2 =
    Netcov.analyze state { Netcov.dp_facts = tested @ tested; cp_elements = [] }
  in
  check_bool "same coverage" true
    (covered_names state r1.Netcov.coverage = covered_names state r2.Netcov.coverage)

let test_empty_tested () =
  let state = Testnet.state_of (Testnet.chain ()) in
  let report = Netcov.analyze state Netcov.no_tests in
  let stats = Coverage.line_stats report.Netcov.coverage in
  check_int "nothing covered" 0 (Coverage.covered_lines stats)

let test_cp_elements_marked_strong () =
  let state = Testnet.state_of (Testnet.chain ()) in
  let reg = Stable_state.registry state in
  let id =
    Option.get (Registry.find reg ~device:"a" (Element.key Element.Interface "lan0"))
  in
  let report = Netcov.analyze state { Netcov.dp_facts = []; cp_elements = [ id ] } in
  check_bool "strong" true
    (Coverage.element_status report.Netcov.coverage id = Coverage.Strong)

let () =
  Alcotest.run "ifg"
    [
      ( "graph",
        [
          Alcotest.test_case "fact dedup" `Quick test_add_dedup;
          Alcotest.test_case "edge idempotence" `Quick test_edges_idempotent;
          Alcotest.test_case "disjunctive nodes" `Quick test_disj_nodes;
          Alcotest.test_case "config nodes" `Quick test_config_nodes;
        ] );
      ( "facts",
        [
          Alcotest.test_case "keys distinct" `Quick test_fact_keys_distinct;
          Alcotest.test_case "host binding" `Quick test_fact_host;
        ] );
      ( "materialize",
        [
          Alcotest.test_case "chain derivation" `Quick test_materialize_chain;
          Alcotest.test_case "idempotent union" `Quick test_materialize_idempotent_union;
          Alcotest.test_case "empty tested" `Quick test_empty_tested;
          Alcotest.test_case "cp elements strong" `Quick test_cp_elements_marked_strong;
        ] );
    ]
