open Netcov_types
open Netcov_config

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

(* A small two-router fixture exercising most element kinds. *)
let r1 =
  Device.make ~syntax:Device.Junos
    ~interfaces:
      [
        Device.interface ~address:(Ipv4.of_string "192.168.1.1", 30) "eth0";
        Device.interface ~address:(Ipv4.of_string "10.99.0.1", 24) ~igp_enabled:true "eth1";
        Device.interface "unused0";
      ]
    ~static_routes:
      [ { Device.st_prefix = p "172.20.0.0/16"; st_next_hop = Ipv4.of_string "192.168.1.2" } ]
    ~prefix_lists:
      [
        { Device.pl_name = "PL1"; pl_entries = [ { ple_prefix = p "10.0.0.0/8"; ple_ge = None; ple_le = Some 24 } ] };
        { Device.pl_name = "PL-UNUSED"; pl_entries = [ { ple_prefix = p "203.0.113.0/24"; ple_ge = None; ple_le = None } ] };
      ]
    ~community_lists:[ { Device.cl_name = "CL1"; cl_members = [ Community.make 1 2 ] } ]
    ~as_path_lists:
      [ { Device.al_name = "AL1"; al_patterns = [ As_regex.compile "_65000_" ] } ]
    ~policies:
      [
        {
          Policy_ast.pol_name = "IMPORT";
          terms =
            [
              {
                term_name = "t1";
                matches = [ Policy_ast.Match_prefix_list "PL1" ];
                actions = [ Policy_ast.Set_local_pref 120; Policy_ast.Accept ];
              };
              { term_name = "t2"; matches = []; actions = [ Policy_ast.Reject ] };
            ];
        };
        {
          Policy_ast.pol_name = "ORPHAN";
          terms =
            [ { term_name = "t"; matches = [ Policy_ast.Match_community_list "CL1" ]; actions = [ Policy_ast.Accept ] } ];
        };
      ]
    ~acls:
      [
        {
          Device.acl_name = "FILTER1";
          rules = [ { Device.permit = true; rule_prefix = p "0.0.0.0/0" } ];
        };
      ]
    ~bgp:
      {
        Device.local_as = 65001;
        router_id = Ipv4.of_string "10.99.0.1";
        networks = [ p "10.99.0.0/24" ];
        aggregates = [ { Device.ag_prefix = p "10.0.0.0/8"; ag_summary_only = false } ];
        redistributes = [ { Device.rd_from = Route.Static; rd_policy = None } ];
        groups =
          [
            {
              Device.pg_name = "EXT";
              pg_remote_as = Some 65002;
              pg_import = [ "IMPORT" ];
              pg_export = [];
              pg_local_pref = Some 110;
              pg_description = None;
            };
            {
              Device.pg_name = "EMPTY-GROUP";
              pg_remote_as = None;
              pg_import = [];
              pg_export = [];
              pg_local_pref = None;
              pg_description = None;
            };
          ];
        neighbors =
          [
            {
              Device.nb_ip = Ipv4.of_string "192.168.1.2";
              nb_remote_as = 65002;
              nb_group = Some "EXT";
              nb_import = [];
              nb_export = [];
              nb_local_addr = None;
              nb_next_hop_self = false;
              nb_rr_client = false;
              nb_description = None;
            };
          ];
        multipath = 1;
      }
    "r1"

let r1_ios = { r1 with Device.hostname = "r1ios"; syntax = Device.Ios }

let ext =
  Device.make ~is_external:true
    ~interfaces:[ Device.interface ~address:(Ipv4.of_string "192.168.1.2", 30) "eth0" ]
    "ext0"

let reg = Registry.build [ r1; r1_ios; ext ]

let test_device_helpers () =
  check_bool "find_interface" true (Device.find_interface r1 "eth1" <> None);
  check_bool "find_interface miss" true (Device.find_interface r1 "nope" = None);
  check_bool "find_policy" true (Device.find_policy r1 "IMPORT" <> None);
  check_bool "interface_with_address" true
    (match Device.interface_with_address r1 (Ipv4.of_string "10.99.0.1") with
    | Some i -> i.Device.if_name = "eth1"
    | None -> false);
  check_int "connected prefixes" 2 (List.length (Device.connected_prefixes r1));
  let nb = List.hd (Option.get r1.Device.bgp).Device.neighbors in
  Alcotest.(check (list string)) "import chain" [ "IMPORT" ] (Device.neighbor_import r1 nb)

let test_prefix_list_matches () =
  let pl = Option.get (Device.find_prefix_list r1 "PL1") in
  check_bool "in range" true (Device.prefix_list_matches pl (p "10.1.0.0/16"));
  check_bool "too long" false (Device.prefix_list_matches pl (p "10.1.0.0/25"));
  check_bool "self" true (Device.prefix_list_matches pl (p "10.0.0.0/8"));
  check_bool "outside" false (Device.prefix_list_matches pl (p "11.0.0.0/16"));
  let pl_exact = Option.get (Device.find_prefix_list r1 "PL-UNUSED") in
  check_bool "exact hit" true (Device.prefix_list_matches pl_exact (p "203.0.113.0/24"));
  check_bool "exact longer" false (Device.prefix_list_matches pl_exact (p "203.0.113.0/25"))

let test_acl_eval () =
  let acl = Option.get (Device.find_acl r1 "FILTER1") in
  let permit, rule = Device.acl_permits acl (Ipv4.of_string "8.8.8.8") in
  check_bool "permit" true permit;
  check_bool "rule 0" true (rule = Some 0);
  let deny_acl =
    { Device.acl_name = "D"; rules = [ { Device.permit = false; rule_prefix = p "10.0.0.0/8" } ] }
  in
  let permit, rule = Device.acl_permits deny_acl (Ipv4.of_string "10.0.0.1") in
  check_bool "deny" false permit;
  check_bool "rule idx" true (rule = Some 0);
  let permit, rule = Device.acl_permits deny_acl (Ipv4.of_string "11.0.0.1") in
  check_bool "default permit" true permit;
  check_bool "no rule" true (rule = None)

let test_element_keys_cover_all_kinds () =
  let keys = Device.element_keys r1 in
  let kinds = List.sort_uniq compare (List.map (fun (k : Element.key) -> k.etype) keys) in
  check_int "distinct kinds" 12 (List.length kinds)

let test_registry_basics () =
  check_bool "device lookup" true (Registry.device_opt reg "r1" <> None);
  check_bool "external flagged" true (Registry.is_external reg "ext0");
  (* external devices register no elements *)
  check_int "ext elements" 0 (List.length (Registry.elements_of_device reg "ext0"));
  check_bool "find element" true
    (Registry.find reg ~device:"r1" (Element.key Element.Interface "eth0") <> None);
  check_bool "find on external" true
    (Registry.find reg ~device:"ext0" (Element.key Element.Interface "eth0") = None);
  (* every element id round-trips *)
  Registry.iter_elements reg (fun e ->
      check_bool "roundtrip" true
        (Registry.find reg ~device:e.Element.device e.Element.ekey = Some e.Element.id))

let test_line_ownership_consistency () =
  (* every line listed by an element is owned by that element, for both
     syntaxes *)
  List.iter
    (fun host ->
      List.iter
        (fun id ->
          let e = Registry.element reg id in
          List.iter
            (fun ln ->
              check_bool
                (Printf.sprintf "%s line %d" host ln)
                true
                (Registry.line_owner reg host ln = Some id))
            e.Element.lines)
        (Registry.elements_of_device reg host))
    [ "r1"; "r1ios" ];
  check_bool "considered < total" true
    (Registry.considered_lines reg < Registry.total_lines reg)

let test_emitters_nonempty_ownership () =
  List.iter
    (fun (emit, name) ->
      let text, owners = emit r1 in
      check_bool (name ^ " lines") true (Array.length text > 30);
      check_int (name ^ " same length") (Array.length text) (Array.length owners);
      let owned = Array.to_list owners |> List.filter Option.is_some |> List.length in
      check_bool (name ^ " has owned lines") true (owned > 10))
    [ (Emit_junos.emit, "junos"); (Emit_ios.emit, "ios") ]

let test_deadcode () =
  let report = Deadcode.analyze reg in
  let dead_names =
    List.map
      (fun (id, reason) ->
        let e = Registry.element reg id in
        (Element.name_of e, reason))
      report.Deadcode.details
  in
  check_bool "orphan policy dead" true
    (List.exists (fun (n, r) -> n = "ORPHAN/t" && r = Deadcode.Unused_policy) dead_names);
  check_bool "unused pl dead" true
    (List.exists (fun (n, _) -> n = "PL-UNUSED") dead_names);
  check_bool "empty group dead" true
    (List.exists (fun (n, r) -> n = "EMPTY-GROUP" && r = Deadcode.Empty_peer_group) dead_names);
  check_bool "used policy alive" true
    (not (List.exists (fun (n, _) -> n = "IMPORT/t1") dead_names));
  check_bool "used pl alive" true (not (List.exists (fun (n, _) -> n = "PL1") dead_names));
  (* CL1 is referenced only by the dead ORPHAN policy, so it is dead too *)
  check_bool "cl referenced by dead policy is dead" true
    (List.exists (fun (n, _) -> n = "CL1") dead_names);
  check_bool "unattached acl dead" true
    (List.exists (fun (n, r) -> n = "FILTER1" && r = Deadcode.Unused_acl) dead_names);
  check_bool "dead lines positive" true (Deadcode.dead_lines reg report > 0)

let test_masks () =
  check_bool "netmask 24" true
    (Ipv4.equal (Masks.netmask_of_len 24) (Ipv4.of_string "255.255.255.0"));
  check_bool "wildcard 24" true
    (Ipv4.equal (Masks.wildcard_of_len 24) (Ipv4.of_string "0.0.0.255"));
  check_bool "len roundtrip" true
    (List.for_all (fun l -> Masks.len_of_netmask (Masks.netmask_of_len l) = Some l)
       (List.init 33 Fun.id));
  check_bool "bad mask" true (Masks.len_of_netmask (Ipv4.of_string "255.0.255.0") = None)

let test_duplicate_hostname () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Registry.build: duplicate hostname r1") (fun () ->
      ignore (Registry.build [ r1; r1 ]))

let () =
  Alcotest.run "config"
    [
      ( "device",
        [
          Alcotest.test_case "helpers" `Quick test_device_helpers;
          Alcotest.test_case "prefix list matching" `Quick test_prefix_list_matches;
          Alcotest.test_case "acl evaluation" `Quick test_acl_eval;
          Alcotest.test_case "element kinds" `Quick test_element_keys_cover_all_kinds;
        ] );
      ( "registry",
        [
          Alcotest.test_case "basics" `Quick test_registry_basics;
          Alcotest.test_case "line ownership" `Quick test_line_ownership_consistency;
          Alcotest.test_case "emitters" `Quick test_emitters_nonempty_ownership;
          Alcotest.test_case "duplicate hostname" `Quick test_duplicate_hostname;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "dead code" `Quick test_deadcode;
          Alcotest.test_case "masks" `Quick test_masks;
        ] );
    ]
