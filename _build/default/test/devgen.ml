(* QCheck generator for random (but well-formed, round-trippable) device
   configurations, used by the parser and registry property tests. *)
open Netcov_types
open Netcov_config
module Gen = QCheck.Gen

let name_gen prefix = Gen.map (fun n -> Printf.sprintf "%s%d" prefix n) (Gen.int_bound 999)

let distinct_names prefix n =
  List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let ip_gen =
  Gen.map
    (fun n -> Ipv4.of_int (0x0A000000 lor (n land 0xFFFFFF)))
    (Gen.int_bound 0xFFFFFF)

let prefix_gen =
  Gen.map2 (fun a len -> Prefix.make (Ipv4.of_int a) len)
    (Gen.int_bound 0xFFFFFFF)
    (Gen.int_range 8 32)

let community_gen =
  Gen.map2 Community.make (Gen.int_bound 65535) (Gen.int_bound 65535)

let regex_gen =
  Gen.oneof
    [
      Gen.map (fun n -> As_regex.compile (Printf.sprintf "_%d_" n)) (Gen.int_bound 65535);
      Gen.map (fun n -> As_regex.compile (Printf.sprintf "^%d" n)) (Gen.int_bound 65535);
      Gen.map2
        (fun a b -> As_regex.compile (Printf.sprintf "(%d|%d)$" a b))
        (Gen.int_bound 65535) (Gen.int_bound 65535);
    ]

let interface_gen idx =
  let open Gen in
  let* has_addr = bool in
  let* addr = ip_gen in
  let* len = int_range 8 32 in
  let* described = bool in
  let* igp = bool in
  let* metric = int_range 1 100 in
  return
    {
      Device.if_name = Printf.sprintf "eth%d" idx;
      address = (if has_addr then Some (addr, len) else None);
      description = (if described then Some (Printf.sprintf "link-%d" idx) else None);
      in_acl = None;
      out_acl = None;
      igp_enabled = igp && has_addr;
      igp_metric = (if igp && has_addr then metric else 10);
    }

let prefix_list_entry_gen =
  let open Gen in
  let* p = prefix_gen in
  let* ge = opt (int_range (Prefix.len p) 32) in
  let* le = opt (int_range (Prefix.len p) 32) in
  return { Device.ple_prefix = p; ple_ge = ge; ple_le = le }

let match_gen =
  let open Gen in
  oneof
    [
      map (fun n -> Policy_ast.Match_prefix_list ("PL" ^ string_of_int n)) (int_bound 4);
      map2
        (fun p mode -> Policy_ast.Match_prefix (p, mode))
        prefix_gen
        (oneof
           [
             return Policy_ast.Exact;
             return Policy_ast.Orlonger;
             map (fun n -> Policy_ast.Upto n) (int_range 0 32);
           ]);
      map (fun n -> Policy_ast.Match_community_list ("CL" ^ string_of_int n)) (int_bound 3);
      map (fun c -> Policy_ast.Match_community c) community_gen;
      map (fun n -> Policy_ast.Match_as_path_list ("AL" ^ string_of_int n)) (int_bound 3);
      oneofl
        [
          Policy_ast.Match_protocol Route.Connected;
          Policy_ast.Match_protocol Route.Static;
          Policy_ast.Match_protocol Route.Bgp;
        ];
      map (fun ip -> Policy_ast.Match_next_hop ip) ip_gen;
    ]

let modifier_gen =
  let open Gen in
  oneof
    [
      map (fun n -> Policy_ast.Set_local_pref n) (int_bound 400);
      map (fun n -> Policy_ast.Set_med n) (int_bound 1000);
      map (fun c -> Policy_ast.Add_community c) community_gen;
      map (fun c -> Policy_ast.Remove_community c) community_gen;
      map (fun n -> Policy_ast.Delete_community_in ("CL" ^ string_of_int n)) (int_bound 3);
      map2
        (fun asn times -> Policy_ast.Prepend_as (asn, times))
        (int_range 1 65535) (int_range 1 4);
    ]

(* IOS-normal-form term: modifiers then exactly one terminator. *)
let term_gen idx =
  let open Gen in
  let* matches = list_size (int_bound 3) match_gen in
  let* mods = list_size (int_bound 3) modifier_gen in
  let* terminator =
    oneofl [ Policy_ast.Accept; Policy_ast.Reject; Policy_ast.Next_term ]
  in
  return
    {
      Policy_ast.term_name = string_of_int ((idx + 1) * 10);
      matches;
      actions = mods @ [ terminator ];
    }

let policy_gen name =
  let open Gen in
  let* n_terms = int_range 1 4 in
  let* terms = flatten_l (List.init n_terms term_gen) in
  return { Policy_ast.pol_name = name; terms }

let neighbor_gen ~groups idx =
  let open Gen in
  let* group = if groups = [] then return None else opt (oneofl groups) in
  let* remote_as = int_range 1 65535 in
  let* import = list_size (int_bound 2) (name_gen "POLIN") in
  let* export = list_size (int_bound 2) (name_gen "POLOUT") in
  let* local = opt ip_gen in
  let* nhs = bool in
  let* described = bool in
  return
    {
      (* distinct, deterministic neighbor addresses *)
      Device.nb_ip = Ipv4.of_octets 172 20 (idx / 250) (idx mod 250);
      nb_remote_as = remote_as;
      nb_group = group;
      nb_import = import;
      nb_export = export;
      nb_local_addr = local;
      nb_next_hop_self = nhs;
      nb_rr_client = false;
      nb_description = (if described then Some (Printf.sprintf "peer-%d" idx) else None);
    }

let group_gen name =
  let open Gen in
  let* remote_as = opt (int_range 1 65535) in
  let* import = list_size (int_bound 2) (name_gen "GIN") in
  let* export = list_size (int_bound 2) (name_gen "GOUT") in
  let* lp = opt (int_bound 400) in
  return
    {
      Device.pg_name = name;
      pg_remote_as = remote_as;
      pg_import = import;
      pg_export = export;
      pg_local_pref = lp;
      pg_description = None;
    }

let bgp_gen =
  let open Gen in
  let* local_as = int_range 1 65535 in
  let* router_id = ip_gen in
  let* n_nets = int_bound 3 in
  let* nets = list_repeat n_nets prefix_gen in
  let networks = List.sort_uniq Prefix.compare nets in
  let* n_aggs = int_bound 2 in
  let* aggs = list_repeat n_aggs prefix_gen in
  let* summary = bool in
  let aggregates =
    List.sort_uniq Prefix.compare aggs
    |> List.map (fun p -> { Device.ag_prefix = p; ag_summary_only = summary })
  in
  let* redistribute_static = bool in
  let* rd_policy = opt (name_gen "RD") in
  let redistributes =
    if redistribute_static then [ { Device.rd_from = Route.Static; rd_policy } ]
    else []
  in
  let* n_groups = int_bound 2 in
  let group_names = distinct_names "PG" n_groups in
  let* groups = flatten_l (List.map group_gen group_names) in
  let* n_neighbors = int_bound 4 in
  let* neighbors = flatten_l (List.init n_neighbors (neighbor_gen ~groups:group_names)) in
  let* multipath = int_range 1 8 in
  return
    {
      Device.local_as;
      router_id;
      networks;
      aggregates;
      redistributes;
      groups;
      neighbors;
      multipath;
    }

let device_gen =
  let open Gen in
  let* host = name_gen "dev" in
  let* n_ifaces = int_bound 5 in
  let* interfaces = flatten_l (List.init n_ifaces interface_gen) in
  let* n_statics = int_bound 3 in
  let* static_prefixes = list_repeat n_statics prefix_gen in
  let* static_nh = ip_gen in
  let static_routes =
    List.sort_uniq Prefix.compare static_prefixes
    |> List.map (fun p -> { Device.st_prefix = p; st_next_hop = static_nh })
  in
  let* n_acls = int_bound 2 in
  let* acls =
    flatten_l
      (List.init n_acls (fun i ->
           let* n_rules = int_range 1 3 in
           let* rules =
             list_repeat n_rules
               (let* permit = bool in
                let* p = prefix_gen in
                return { Device.permit; rule_prefix = p })
           in
           return { Device.acl_name = Printf.sprintf "ACL%d" i; rules }))
  in
  let* n_pls = int_bound 3 in
  let* prefix_lists =
    flatten_l
      (List.init n_pls (fun i ->
           let* n = int_range 1 4 in
           let* entries = list_repeat n prefix_list_entry_gen in
           return { Device.pl_name = Printf.sprintf "PL%d" i; pl_entries = entries }))
  in
  let* n_cls = int_bound 2 in
  let* community_lists =
    flatten_l
      (List.init n_cls (fun i ->
           let* n = int_range 1 3 in
           let* members = list_repeat n community_gen in
           return
             {
               Device.cl_name = Printf.sprintf "CL%d" i;
               cl_members = List.sort_uniq Community.compare members;
             }))
  in
  let* n_als = int_bound 2 in
  let* as_path_lists =
    flatten_l
      (List.init n_als (fun i ->
           let* n = int_range 1 3 in
           let* patterns = list_repeat n regex_gen in
           return { Device.al_name = Printf.sprintf "AL%d" i; al_patterns = patterns }))
  in
  let* n_policies = int_bound 3 in
  let* policies =
    flatten_l
      (List.map policy_gen (distinct_names "RM" n_policies))
  in
  let* bgp = opt bgp_gen in
  let* syntax = oneofl [ Device.Junos; Device.Ios ] in
  return
    (Device.make ~syntax ~interfaces ~static_routes ~acls ~prefix_lists
       ~community_lists ~as_path_lists ~policies ?bgp host)

let arbitrary_device = QCheck.make ~print:(fun d -> Emit_junos.to_string d) device_gen
