open Netcov_types

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = Route.originate (Prefix.of_string "10.1.0.0/16") ~next_hop:(Ipv4.of_string "1.1.1.1")

let test_originate_defaults () =
  check_int "lp" Route.default_local_pref base.Route.local_pref;
  check_int "med" 0 base.Route.med;
  check_int "path len" 0 (As_path.length base.Route.as_path);
  check_bool "origin igp" true (base.Route.origin = Route.Origin_igp)

let test_as_path_ops () =
  let p = As_path.of_list [ 2; 3 ] in
  let p' = As_path.prepend 1 p in
  Alcotest.(check (list int)) "prepend" [ 1; 2; 3 ] (As_path.to_list p');
  let p'' = As_path.prepend 9 ~times:3 p' in
  check_int "times" 6 (As_path.length p'');
  check_bool "mem" true (As_path.mem 3 p'');
  check_bool "head" true (As_path.head p'' = Some 9);
  check_bool "origin" true (As_path.origin p'' = Some 3);
  check_bool "empty origin" true (As_path.origin As_path.empty = None);
  Alcotest.(check string) "to_string" "1 2 3" (As_path.to_string p');
  check_bool "of_string" true (As_path.equal p' (As_path.of_string "1 2 3"))

let test_compare_total () =
  let r1 = { base with Route.local_pref = 200 } in
  check_bool "neq" false (Route.equal_bgp base r1);
  check_bool "eq self" true (Route.equal_bgp base base);
  check_bool "antisym" true
    (Route.compare_bgp base r1 = -Route.compare_bgp r1 base)

let test_compare_insensitive_to_community_order () =
  let c1 = Community.make 1 1 and c2 = Community.make 2 2 in
  let ra = Route.add_community (Route.add_community base c1) c2 in
  let rb = Route.add_community (Route.add_community base c2) c1 in
  check_bool "set equality" true (Route.equal_bgp ra rb)

let test_protocols () =
  check_bool "roundtrip" true
    (List.for_all
       (fun p -> Route.protocol_of_string (Route.protocol_to_string p) = Some p)
       [ Route.Connected; Route.Static; Route.Igp; Route.Bgp ]);
  check_bool "unknown" true (Route.protocol_of_string "ospfx" = None);
  check_bool "admin order" true
    (Route.compare_protocol Route.Connected Route.Bgp < 0)

let test_origin_rank () =
  check_bool "igp best" true (Route.origin_rank Route.Origin_igp < Route.origin_rank Route.Origin_egp);
  check_bool "incomplete worst" true
    (Route.origin_rank Route.Origin_egp < Route.origin_rank Route.Origin_incomplete)

let () =
  Alcotest.run "route"
    [
      ( "unit",
        [
          Alcotest.test_case "originate defaults" `Quick test_originate_defaults;
          Alcotest.test_case "as-path ops" `Quick test_as_path_ops;
          Alcotest.test_case "compare total order" `Quick test_compare_total;
          Alcotest.test_case "community order-insensitive" `Quick
            test_compare_insensitive_to_community_order;
          Alcotest.test_case "protocols" `Quick test_protocols;
          Alcotest.test_case "origin rank" `Quick test_origin_rank;
        ] );
    ]
