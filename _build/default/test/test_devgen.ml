(* Property tests over randomly generated device configurations:
   emit/parse round-trips for both syntaxes, registry invariants, and
   total robustness of the analyses. *)
open Netcov_config

let canon_bgp (bgp : Device.bgp_config option) =
  Option.map
    (fun (c : Device.bgp_config) ->
      {
        c with
        Device.neighbors =
          List.sort
            (fun (x : Device.neighbor) (y : Device.neighbor) ->
              Netcov_types.Ipv4.compare x.nb_ip y.nb_ip)
            c.neighbors;
      })
    bgp

let same (a : Device.t) (b : Device.t) =
  a.hostname = b.hostname && a.interfaces = b.interfaces
  && a.static_routes = b.static_routes
  && a.acls = b.acls
  && a.prefix_lists = b.prefix_lists
  && a.community_lists = b.community_lists
  && a.as_path_lists = b.as_path_lists
  && a.policies = b.policies
  && canon_bgp a.bgp = canon_bgp b.bgp

let prop_junos_roundtrip =
  QCheck.Test.make ~name:"random device junos round-trip" ~count:150
    Devgen.arbitrary_device (fun d ->
      let d = { d with Device.syntax = Device.Junos } in
      match Parse_junos.parse (Emit_junos.to_string d) with
      | Ok d' -> same d d'
      | Error e -> QCheck.Test.fail_report (Parse_junos.error_to_string e))

let prop_ios_roundtrip =
  QCheck.Test.make ~name:"random device ios round-trip" ~count:150
    Devgen.arbitrary_device (fun d ->
      let d = { d with Device.syntax = Device.Ios } in
      match Parse_ios.parse (Emit_ios.to_string d) with
      | Ok d' -> same d d'
      | Error e -> QCheck.Test.fail_report (Parse_ios.error_to_string e))

let prop_registry_line_ownership =
  QCheck.Test.make ~name:"registry line ownership is consistent" ~count:100
    Devgen.arbitrary_device (fun d ->
      let reg = Registry.build [ d ] in
      let host = d.Device.hostname in
      let ok = ref (Registry.considered_lines reg <= Registry.total_lines reg) in
      List.iter
        (fun id ->
          let e = Registry.element reg id in
          List.iter
            (fun ln ->
              if Registry.line_owner reg host ln <> Some id then ok := false)
            e.Element.lines)
        (Registry.elements_of_device reg host);
      (* owned line count equals the sum over elements *)
      let sum =
        List.fold_left
          (fun acc id -> acc + Element.line_count (Registry.element reg id))
          0
          (Registry.elements_of_device reg host)
      in
      !ok && sum = Registry.considered_lines reg)

let prop_element_keys_unique =
  QCheck.Test.make ~name:"element keys are unique per device" ~count:150
    Devgen.arbitrary_device (fun d ->
      let keys = Device.element_keys d in
      List.length keys
      = List.length (List.sort_uniq Element.compare_key keys))

let prop_deadcode_total =
  QCheck.Test.make ~name:"dead-code analysis is total and within bounds"
    ~count:100 Devgen.arbitrary_device (fun d ->
      let reg = Registry.build [ d ] in
      let report = Deadcode.analyze reg in
      Element.Id_set.for_all
        (fun id -> id >= 0 && id < Registry.n_elements reg)
        report.Deadcode.dead
      && Deadcode.dead_lines reg report <= Registry.considered_lines reg)

let prop_emit_deterministic =
  QCheck.Test.make ~name:"emission is deterministic" ~count:100
    Devgen.arbitrary_device (fun d ->
      Emit_junos.to_string d = Emit_junos.to_string d
      && Emit_ios.to_string d = Emit_ios.to_string d)

let prop_simulation_total =
  QCheck.Test.make ~name:"simulation never raises on random single devices"
    ~count:50 Devgen.arbitrary_device (fun d ->
      let state =
        Netcov_sim.Stable_state.compute (Registry.build [ d ])
      in
      Netcov_sim.Stable_state.rounds state >= 0)

let () =
  Alcotest.run "devgen"
    [
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_junos_roundtrip;
            prop_ios_roundtrip;
            prop_registry_line_ownership;
            prop_element_keys_unique;
            prop_deadcode_total;
            prop_emit_deterministic;
            prop_simulation_total;
          ] );
    ]
