(* Parser round-trip tests: emit(AST) then parse(text) must reproduce
   the AST, for both concrete syntaxes and for every workload device. *)
open Netcov_config

let check_bool = Alcotest.(check bool)

(* Field-by-field comparison with a readable message; [is_external] is
   not representable in the text, so it is excluded. *)
let same_device (a : Device.t) (b : Device.t) =
  (* neighbor order is semantically irrelevant (grouped neighbors emit
     inside their group blocks), so compare it as a set *)
  let canon_bgp (bgp : Device.bgp_config option) =
    Option.map
      (fun (c : Device.bgp_config) ->
        {
          c with
          Device.neighbors =
            List.sort
              (fun (x : Device.neighbor) (y : Device.neighbor) ->
                Netcov_types.Ipv4.compare x.nb_ip y.nb_ip)
              c.neighbors;
        })
      bgp
  in
  let checks =
    [
      ("hostname", a.hostname = b.hostname);
      ("interfaces", a.interfaces = b.interfaces);
      ("static_routes", a.static_routes = b.static_routes);
      ("acls", a.acls = b.acls);
      ("prefix_lists", a.prefix_lists = b.prefix_lists);
      ("community_lists", a.community_lists = b.community_lists);
      ("as_path_lists", a.as_path_lists = b.as_path_lists);
      ("policies", a.policies = b.policies);
      ("bgp", canon_bgp a.bgp = canon_bgp b.bgp);
    ]
  in
  List.filter_map (fun (n, ok) -> if ok then None else Some n) checks

let roundtrip (d : Device.t) =
  let text, parsed =
    match d.syntax with
    | Device.Junos ->
        let text = Emit_junos.to_string d in
        ( text,
          Result.map_error Parse_junos.error_to_string (Parse_junos.parse text) )
    | Device.Ios ->
        let text = Emit_ios.to_string d in
        (text, Result.map_error Parse_ios.error_to_string (Parse_ios.parse text))
  in
  match parsed with
  | Error msg ->
      Alcotest.failf "%s: parse error %s\n%s" d.hostname msg
        (String.concat "\n"
           (List.filteri (fun i _ -> i < 30) (String.split_on_char '\n' text)))
  | Ok d' -> (
      match same_device d d' with
      | [] -> ()
      | bad ->
          Alcotest.failf "%s: fields differ after round-trip: %s" d.hostname
            (String.concat ", " bad))

let test_chain_roundtrip () =
  List.iter
    (fun syntax ->
      List.iter
        (fun (d : Device.t) -> roundtrip { d with syntax })
        (Testnet.chain ()))
    [ Device.Junos; Device.Ios ]

let test_diamond_roundtrip () =
  List.iter (fun (d : Device.t) -> roundtrip d) (Testnet.diamond ())

let test_internet2_roundtrip () =
  let net =
    Netcov_workloads.Internet2.generate Netcov_workloads.Internet2.test_params
  in
  List.iter
    (fun (d : Device.t) -> if not d.is_external then roundtrip d)
    net.devices

let test_fattree_roundtrip () =
  let ft = Netcov_workloads.Fattree.generate ~k:4 () in
  List.iter
    (fun (d : Device.t) -> if not d.is_external then roundtrip d)
    ft.devices

let test_registry_from_parsed_text () =
  (* building the registry from parsed text yields the same elements and
     the same coverage-relevant structure as from the original ASTs *)
  let devices = Testnet.chain () in
  let reparsed =
    List.map (fun d -> Parse_junos.parse_exn (Emit_junos.to_string d)) devices
  in
  let r1 = Registry.build devices and r2 = Registry.build reparsed in
  check_bool "same element count" true (Registry.n_elements r1 = Registry.n_elements r2);
  Registry.iter_elements r1 (fun e ->
      check_bool "same key exists" true
        (Registry.find r2 ~device:e.Element.device e.Element.ekey <> None))

let test_junos_errors () =
  let bad = [ "interfaces {"; "interfaces {\n  eth0 {\n  }\n}\npolicy-options {" ] in
  List.iter
    (fun text ->
      check_bool "rejected" true
        (match Parse_junos.parse text with Error _ -> true | Ok _ -> false))
    bad

let test_ios_errors () =
  List.iter
    (fun text ->
      check_bool "rejected" true
        (match Parse_ios.parse text with Error _ -> true | Ok _ -> false))
    [
      "interface Ethernet1\n ip address 1.2.3.4 255.255.0.1";  (* bad mask *)
      "router bgp 65001\n neighbor 10.0.0.1 remote-as x";
      "garbage line here";
    ]

let test_parse_semantics_preserved () =
  (* the parsed network must simulate identically *)
  let devices = Testnet.chain () in
  let reparsed =
    List.map (fun d -> Parse_junos.parse_exn (Emit_junos.to_string d)) devices
  in
  let s1 = Testnet.state_of devices and s2 = Testnet.state_of reparsed in
  let open Netcov_sim in
  check_bool "same edge count" true
    (List.length (Stable_state.edges s1) = List.length (Stable_state.edges s2));
  check_bool "same rib size" true
    (Stable_state.total_main_entries s1 = Stable_state.total_main_entries s2)

let () =
  Alcotest.run "parse"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "chain both syntaxes" `Quick test_chain_roundtrip;
          Alcotest.test_case "diamond (junos)" `Quick test_diamond_roundtrip;
          Alcotest.test_case "internet2 routers" `Slow test_internet2_roundtrip;
          Alcotest.test_case "fattree devices" `Slow test_fattree_roundtrip;
          Alcotest.test_case "registry from text" `Quick test_registry_from_parsed_text;
          Alcotest.test_case "semantics preserved" `Quick test_parse_semantics_preserved;
        ] );
      ( "errors",
        [
          Alcotest.test_case "junos" `Quick test_junos_errors;
          Alcotest.test_case "ios" `Quick test_ios_errors;
        ] );
    ]
