open Netcov_types
open Netcov_config
open Netcov_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ip = Ipv4.of_string
let p = Prefix.of_string

let test_chain_trace () =
  let state = Testnet.state_of (Testnet.chain ()) in
  let paths = Stable_state.trace state ~src:"c" ~dst:(ip "10.10.0.1") in
  check_int "one path" 1 (List.length paths);
  let path = List.hd paths in
  check_bool "reached" true path.Forward.reached;
  Alcotest.(check (list string)) "hops" [ "c"; "b"; "a" ]
    (List.map (fun (h : Forward.hop) -> h.hop_host) path.Forward.hops);
  (* first hop forwards on the learned BGP route *)
  (match path.Forward.hops with
  | h :: _ ->
      check_bool "bgp entry used" true
        (List.exists
           (fun (e : Rib.main_entry) -> e.me_protocol = Route.Bgp)
           h.hop_entries)
  | [] -> Alcotest.fail "no hops");
  check_bool "reachable" true (Stable_state.reachable state ~src:"c" ~dst:(ip "10.10.0.1"))

let test_local_delivery () =
  let state = Testnet.state_of (Testnet.chain ()) in
  let paths = Stable_state.trace state ~src:"a" ~dst:(ip "10.10.0.1") in
  check_bool "owner reaches instantly" true
    (List.exists (fun (q : Forward.path) -> q.reached) paths);
  check_int "single hop" 1 (List.length (List.hd paths).Forward.hops)

let test_unreachable () =
  let state = Testnet.state_of (Testnet.chain ()) in
  (* nobody has a route to this space *)
  check_bool "unknown dst" false
    (Stable_state.reachable state ~src:"c" ~dst:(ip "203.0.113.7"))

let test_connected_subnet_delivery () =
  let state = Testnet.state_of (Testnet.chain ()) in
  (* an address inside a's LAN that is not a router interface: delivered
     onto the connected subnet *)
  let paths = Stable_state.trace state ~src:"c" ~dst:(ip "10.10.0.99") in
  check_bool "delivered to subnet" true
    (List.exists (fun (q : Forward.path) -> q.reached) paths)

let test_ecmp_branches () =
  let state = Testnet.state_of (Testnet.diamond ~multipath:4 ()) in
  (* d -> a's loopback has two IGP ECMP paths (via b and via c) *)
  let paths = Stable_state.trace state ~src:"d" ~dst:(ip "172.20.0.1") in
  let reached = List.filter (fun (q : Forward.path) -> q.reached) paths in
  check_int "two ecmp paths" 2 (List.length reached);
  let mids =
    List.map
      (fun (q : Forward.path) ->
        match q.Forward.hops with
        | _ :: mid :: _ -> mid.Forward.hop_host
        | _ -> "?")
      reached
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "via b and c" [ "b"; "c" ] mids

let with_acl devices host ifname acl_name rules inbound =
  List.map
    (fun (d : Device.t) ->
      if d.hostname <> host then d
      else
        {
          d with
          Device.acls = [ { Device.acl_name; rules } ];
          interfaces =
            List.map
              (fun (i : Device.interface) ->
                if i.if_name = ifname then
                  if inbound then { i with in_acl = Some acl_name }
                  else { i with out_acl = Some acl_name }
                else i)
              d.interfaces;
        })
    devices

let test_acl_blocks () =
  let rules = [ { Device.permit = false; rule_prefix = p "10.10.0.0/24" } ] in
  let devices = with_acl (Testnet.chain ()) "b" "eth0" "BLOCK" rules true in
  let state = Testnet.state_of devices in
  (* traffic from c to a's LAN enters b via eth1... the ACL is on eth0
     facing a; c->a traffic exits eth0, so apply it inbound on a's side:
     here we check that an inbound ACL on b's eth0 does NOT block c->a
     (wrong direction), proving direction-sensitivity. *)
  check_bool "wrong-direction acl does not block" true
    (Stable_state.reachable state ~src:"c" ~dst:(ip "10.10.0.1"))

let test_acl_blocks_inbound () =
  (* inbound ACL on the receiving interface of the next hop *)
  let rules = [ { Device.permit = false; rule_prefix = p "10.10.0.0/24" } ] in
  let devices = with_acl (Testnet.chain ()) "b" "eth1" "BLOCK" rules true in
  let state = Testnet.state_of devices in
  (* c -> a enters b on eth1: blocked *)
  check_bool "blocked" false (Stable_state.reachable state ~src:"c" ~dst:(ip "10.10.0.1"));
  (* control-plane state is unaffected; a -> its own LAN still fine *)
  check_bool "local ok" true (Stable_state.reachable state ~src:"a" ~dst:(ip "10.10.0.1"))

let test_acl_outbound () =
  let rules = [ { Device.permit = false; rule_prefix = p "10.10.0.0/24" } ] in
  let devices = with_acl (Testnet.chain ()) "b" "eth0" "BLOCK" rules false in
  let state = Testnet.state_of devices in
  (* c -> a leaves b via eth0: blocked by outbound ACL *)
  check_bool "blocked outbound" false
    (Stable_state.reachable state ~src:"c" ~dst:(ip "10.10.0.1"))

let test_acl_records_rule () =
  let rules =
    [
      { Device.permit = true; rule_prefix = p "10.10.0.0/24" };
      { Device.permit = false; rule_prefix = p "0.0.0.0/0" };
    ]
  in
  let devices = with_acl (Testnet.chain ()) "b" "eth1" "FILT" rules true in
  let state = Testnet.state_of devices in
  let paths = Stable_state.trace state ~src:"c" ~dst:(ip "10.10.0.1") in
  let uses =
    List.concat_map
      (fun (q : Forward.path) ->
        List.concat_map (fun (h : Forward.hop) -> h.Forward.hop_acls) q.Forward.hops)
      paths
  in
  check_bool "acl use recorded" true
    (List.exists
       (fun (u : Forward.acl_use) ->
         u.au_acl = "FILT" && u.au_rule = Some 0 && u.au_permit)
       uses)

let () =
  Alcotest.run "forward"
    [
      ( "trace",
        [
          Alcotest.test_case "chain trace" `Quick test_chain_trace;
          Alcotest.test_case "local delivery" `Quick test_local_delivery;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "connected delivery" `Quick test_connected_subnet_delivery;
          Alcotest.test_case "ecmp branches" `Quick test_ecmp_branches;
        ] );
      ( "acl",
        [
          Alcotest.test_case "direction sensitivity" `Quick test_acl_blocks;
          Alcotest.test_case "inbound blocks" `Quick test_acl_blocks_inbound;
          Alcotest.test_case "outbound blocks" `Quick test_acl_outbound;
          Alcotest.test_case "rule recorded" `Quick test_acl_records_rule;
        ] );
    ]
