(* Shared hand-built fixture networks for simulator and core tests. *)
open Netcov_types
open Netcov_config

let ip = Ipv4.of_string
let p = Prefix.of_string

let neighbor ?(remote_as = 0) ?group ?(import = []) ?(export = []) ?local_addr
    ?(next_hop_self = false) nb_ip =
  {
    Device.nb_ip = ip nb_ip;
    nb_remote_as = remote_as;
    nb_group = group;
    nb_import = import;
    nb_export = export;
    nb_local_addr = Option.map ip local_addr;
    nb_next_hop_self = next_hop_self;
    nb_rr_client = false;
    nb_description = None;
  }

let bgp ?(networks = []) ?(aggregates = []) ?(redistributes = []) ?(groups = [])
    ?(multipath = 1) ~local_as ~router_id neighbors =
  {
    Device.local_as;
    router_id = ip router_id;
    networks = List.map p networks;
    aggregates;
    redistributes;
    groups;
    neighbors;
    multipath;
  }

(* A 3-router eBGP chain:

     a (AS 65001) --- b (AS 65002) --- c (AS 65003)
    a announces 10.10.0.0/24 via a network statement on its LAN.
    link a-b: 192.168.0.0/30 (a=.1, b=.2)
    link b-c: 192.168.0.4/30 (b=.5, c=.6) *)
let chain () =
  let a =
    Device.make
      ~interfaces:
        [
          Device.interface ~address:(ip "192.168.0.1", 30) "eth0";
          Device.interface ~address:(ip "10.10.0.1", 24) "lan0";
        ]
      ~bgp:
        (bgp ~local_as:65001 ~router_id:"1.1.1.1" ~networks:[ "10.10.0.0/24" ]
           [ neighbor ~remote_as:65002 "192.168.0.2" ])
      "a"
  in
  let b =
    Device.make
      ~interfaces:
        [
          Device.interface ~address:(ip "192.168.0.2", 30) "eth0";
          Device.interface ~address:(ip "192.168.0.5", 30) "eth1";
        ]
      ~bgp:
        (bgp ~local_as:65002 ~router_id:"2.2.2.2"
           [
             neighbor ~remote_as:65001 "192.168.0.1";
             neighbor ~remote_as:65003 "192.168.0.6";
           ])
      "b"
  in
  let c =
    Device.make
      ~interfaces:[ Device.interface ~address:(ip "192.168.0.6", 30) "eth0" ]
      ~bgp:
        (bgp ~local_as:65003 ~router_id:"3.3.3.3"
           [ neighbor ~remote_as:65002 "192.168.0.5" ])
      "c"
  in
  [ a; b; c ]

(* A 2x2 diamond with IGP and iBGP over loopbacks:

        a --- b
        |     |
        c --- d
    all in AS 65000, IGP everywhere, iBGP full mesh via loopbacks.
    a announces 10.50.0.0/24 from its LAN via a network statement. *)
let diamond ?(multipath = 1) () =
  let links =
    (* (host1, host2, subnet base) *)
    [
      ("a", "b", "192.168.10.0");
      ("a", "c", "192.168.10.4");
      ("b", "d", "192.168.10.8");
      ("c", "d", "192.168.10.12");
    ]
  in
  let lo = function
    | "a" -> "172.20.0.1"
    | "b" -> "172.20.0.2"
    | "c" -> "172.20.0.3"
    | "d" -> "172.20.0.4"
    | h -> invalid_arg h
  in
  let make host =
    let ifaces =
      List.concat
        (List.mapi
           (fun i (h1, h2, base) ->
             let addr =
               if h1 = host then Some (Ipv4.succ (ip base))
               else if h2 = host then Some (Ipv4.add (ip base) 2)
               else None
             in
             match addr with
             | None -> []
             | Some a ->
                 [
                   Device.interface ~address:(a, 30) ~igp_enabled:true
                     ~igp_metric:10
                     (Printf.sprintf "eth%d" i);
                 ])
           links)
    in
    let loopback =
      Device.interface ~address:(ip (lo host), 32) ~igp_enabled:true ~igp_metric:0
        "lo0"
    in
    let lan =
      if host = "a" then
        [ Device.interface ~address:(ip "10.50.0.1", 24) "lan0" ]
      else []
    in
    let others = List.filter (fun h -> h <> host) [ "a"; "b"; "c"; "d" ] in
    let neighbors =
      List.map
        (fun h ->
          neighbor ~remote_as:65000 ~local_addr:(lo host) ~next_hop_self:true
            (lo h))
        others
    in
    let networks = if host = "a" then [ "10.50.0.0/24" ] else [] in
    Device.make
      ~interfaces:((loopback :: ifaces) @ lan)
      ~bgp:(bgp ~local_as:65000 ~router_id:(lo host) ~networks ~multipath neighbors)
      host
  in
  List.map make [ "a"; "b"; "c"; "d" ]

let state_of devices =
  Netcov_sim.Stable_state.compute (Registry.build devices)
