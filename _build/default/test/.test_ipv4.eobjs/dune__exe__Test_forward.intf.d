test/test_forward.mli:
