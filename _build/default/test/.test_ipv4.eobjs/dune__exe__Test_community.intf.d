test/test_community.mli:
