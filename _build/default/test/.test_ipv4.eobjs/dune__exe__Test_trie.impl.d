test/test_trie.ml: Alcotest Ipv4 List Netcov_types Option Prefix Prefix_trie Printf QCheck QCheck_alcotest String
