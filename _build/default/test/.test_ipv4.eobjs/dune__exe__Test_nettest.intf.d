test/test_nettest.mli:
