test/test_bdd.ml: Alcotest Bdd List Netcov_bdd Option QCheck QCheck_alcotest
