test/test_ipv4.ml: Alcotest Ipv4 List Netcov_types QCheck QCheck_alcotest
