test/test_rr.mli:
