test/test_reports.ml: Alcotest Astring_like Fact Filename Html_report Lazy Lcov List Netcov Netcov_core Netcov_sim Netcov_types Prefix Stable_state String Sys Testnet
