test/test_nettest.ml: Alcotest Coverage Datacenter Fattree Internet2 Iterations Lazy List Netcov Netcov_config Netcov_core Netcov_nettest Netcov_sim Netcov_workloads Nettest Stable_state String
