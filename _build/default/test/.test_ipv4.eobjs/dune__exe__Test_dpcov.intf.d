test/test_dpcov.mli:
