test/test_prefix.ml: Alcotest Ipv4 List Netcov_types Prefix QCheck QCheck_alcotest
