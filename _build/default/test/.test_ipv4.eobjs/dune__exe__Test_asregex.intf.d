test/test_asregex.mli:
