test/test_figure1.mli:
