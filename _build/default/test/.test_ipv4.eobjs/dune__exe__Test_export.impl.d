test/test_export.ml: Alcotest Astring_like Coverage_diff Fact Json_export Lazy List Netcov Netcov_config Netcov_core Netcov_sim Netcov_types Prefix Stable_state String Testnet
