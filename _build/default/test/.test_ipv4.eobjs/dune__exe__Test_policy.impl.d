test/test_policy.ml: Alcotest As_path As_regex Community Device Element Eval Ipv4 List Netcov_config Netcov_policy Netcov_types Policy_ast Prefix Route
