test/test_label.mli:
