test/test_label.ml: Alcotest Element Fact Format Ifg Label List Netcov_config Netcov_core String
