test/test_devgen.ml: Alcotest Deadcode Devgen Device Element Emit_ios Emit_junos List Netcov_config Netcov_sim Netcov_types Option Parse_ios Parse_junos QCheck QCheck_alcotest Registry
