test/test_dpcov.ml: Alcotest Dpcov Fact Ipv4 Lazy List Netcov Netcov_config Netcov_core Netcov_dpcov Netcov_sim Netcov_types Netcov_workloads Prefix Stable_state Testnet
