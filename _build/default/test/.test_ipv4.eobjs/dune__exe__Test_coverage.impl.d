test/test_coverage.ml: Alcotest Coverage Element Lazy List Netcov_config Netcov_core Registry Testnet
