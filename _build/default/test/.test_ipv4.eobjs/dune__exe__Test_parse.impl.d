test/test_parse.ml: Alcotest Device Element Emit_ios Emit_junos List Netcov_config Netcov_sim Netcov_types Netcov_workloads Option Parse_ios Parse_junos Registry Result Stable_state String Testnet
