test/test_community.ml: Alcotest Community Ipv4 List Netcov_types Prefix Route
