test/test_forward.ml: Alcotest Device Forward Ipv4 List Netcov_config Netcov_sim Netcov_types Prefix Rib Route Stable_state String Testnet
