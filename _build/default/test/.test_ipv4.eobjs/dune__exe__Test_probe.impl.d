test/test_probe.ml: Alcotest Coverage Fact Ipv4 Lazy List Netcov Netcov_config Netcov_core Netcov_nettest Netcov_types Nettest Option Prefix Probe String Testnet Testutil
