test/devgen.ml: As_regex Community Device Emit_junos Ipv4 List Netcov_config Netcov_types Policy_ast Prefix Printf QCheck Route
