test/test_aggregate.ml: Alcotest Coverage Device Element Fact List Mutation Netcov Netcov_config Netcov_core Netcov_sim Netcov_types Option Prefix Registry Rib Route Stable_state Testnet
