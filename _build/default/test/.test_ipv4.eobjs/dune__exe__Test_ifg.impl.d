test/test_ifg.ml: Alcotest Coverage Element Fact Ifg Ipv4 List Netcov Netcov_config Netcov_core Netcov_sim Netcov_types Option Prefix Registry Rib Route Stable_state String Testnet
