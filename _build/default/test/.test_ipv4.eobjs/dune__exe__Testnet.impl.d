test/testnet.ml: Device Ipv4 List Netcov_config Netcov_sim Netcov_types Option Prefix Printf Registry
