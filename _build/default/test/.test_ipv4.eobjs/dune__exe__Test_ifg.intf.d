test/test_ifg.mli:
