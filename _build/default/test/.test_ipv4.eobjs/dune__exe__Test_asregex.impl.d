test/test_asregex.ml: Alcotest As_path As_regex List Netcov_types Printf QCheck QCheck_alcotest String
