test/test_devgen.mli:
