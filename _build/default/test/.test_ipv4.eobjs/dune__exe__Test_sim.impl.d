test/test_sim.ml: Alcotest As_path Bgp Community Device Hashtbl Igp Ipv4 List Netcov_config Netcov_sim Netcov_types Option Prefix Rib Route Session Stable_state Testnet Topology
