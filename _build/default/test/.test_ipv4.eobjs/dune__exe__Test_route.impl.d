test/test_route.ml: Alcotest As_path Community Ipv4 List Netcov_types Prefix Route
