test/test_workloads.ml: Alcotest Array Caida Device Emit_junos Fattree Fun Int Internet2 List Netcov_config Netcov_sim Netcov_types Netcov_workloads Option Printf Registry Rng Routeviews String
