test/netgen.ml: Array Device Fun Ipv4 List Netcov_config Netcov_types Prefix Printf QCheck String
