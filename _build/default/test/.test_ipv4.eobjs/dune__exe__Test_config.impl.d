test/test_config.ml: Alcotest Array As_regex Community Deadcode Device Element Emit_ios Emit_junos Fun Ipv4 List Masks Netcov_config Netcov_types Option Policy_ast Prefix Printf Registry Route
