open Netcov_config
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let f name = Fact.F_edge name
let cfg id = Fact.F_config id

let set_of ids = Element.Id_set.of_list ids
let eq_set = Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "{%s}"
        (String.concat "," (List.map string_of_int (Element.Id_set.elements s))))
    Element.Id_set.equal

(* Figure 5(b): F1 tested; F1 <- disj(F2,F3) and F1 <- F4;
   F2 <- c5, c6; F3 <- c6; F4 <- c7.
   Expected: c5 weak; c6, c7 strong. *)
let figure5 () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let f1 = add (f "F1") and f2 = add (f "F2") and f3 = add (f "F3") in
  let f4 = add (f "F4") in
  let c5 = add (cfg 5) and c6 = add (cfg 6) and c7 = add (cfg 7) in
  ignore (Ifg.add_disj g ~target:f1 [ f "F2"; f "F3" ]);
  Ifg.add_edge g ~parent:f4 ~child:f1;
  Ifg.add_edge g ~parent:c5 ~child:f2;
  Ifg.add_edge g ~parent:c6 ~child:f2;
  Ifg.add_edge g ~parent:c6 ~child:f3;
  Ifg.add_edge g ~parent:c7 ~child:f4;
  (g, f1)

let test_figure5 () =
  let g, f1 = figure5 () in
  let r = Label.run g ~tested:[ f1 ] in
  Alcotest.check eq_set "covered" (set_of [ 5; 6; 7 ]) r.Label.covered;
  Alcotest.check eq_set "strong" (set_of [ 6; 7 ]) r.Label.strong;
  Alcotest.check eq_set "weak" (set_of [ 5 ]) r.Label.weak

let test_heuristic_reduces_vars () =
  let g, f1 = figure5 () in
  let r = Label.run g ~tested:[ f1 ] in
  (* c7 has a disjunction-free path: it must not get a variable *)
  check_bool "vars at most 2" true (r.Label.vars <= 2)

(* Pure conjunction: every config strong. *)
let test_all_conjunctive () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") and m = add (f "m") in
  let c1 = add (cfg 1) and c2 = add (cfg 2) in
  Ifg.add_edge g ~parent:m ~child:t;
  Ifg.add_edge g ~parent:c1 ~child:m;
  Ifg.add_edge g ~parent:c2 ~child:t;
  let r = Label.run g ~tested:[ t ] in
  Alcotest.check eq_set "all strong" (set_of [ 1; 2 ]) r.Label.strong;
  check_int "no vars needed" 0 r.Label.vars

(* A disjunction where one branch is empty of configs: everything under
   the other branch is weak (the empty branch derives the fact alone). *)
let test_environment_alternative () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  let via_cfg = add (f "via-cfg") and via_env = add (f "via-env") in
  ignore via_env;
  let c1 = add (cfg 1) in
  ignore (Ifg.add_disj g ~target:t [ f "via-cfg"; f "via-env" ]);
  Ifg.add_edge g ~parent:c1 ~child:via_cfg;
  let r = Label.run g ~tested:[ t ] in
  Alcotest.check eq_set "c1 weak" (set_of [ 1 ]) r.Label.weak

(* Shared disjunction members: c appears in every alternative, so it is
   strong even through the disjunction. *)
let test_common_member_strong () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  let alt1 = add (f "alt1") and alt2 = add (f "alt2") in
  let shared = add (cfg 1) and only1 = add (cfg 2) in
  ignore (Ifg.add_disj g ~target:t [ f "alt1"; f "alt2" ]);
  Ifg.add_edge g ~parent:shared ~child:alt1;
  Ifg.add_edge g ~parent:shared ~child:alt2;
  Ifg.add_edge g ~parent:only1 ~child:alt1;
  let r = Label.run g ~tested:[ t ] in
  check_bool "shared strong" true (Element.Id_set.mem 1 r.Label.strong);
  check_bool "only1 weak" true (Element.Id_set.mem 2 r.Label.weak)

(* Multiple tested facts: strong for any one of them suffices. *)
let test_multiple_tested () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t1 = add (f "t1") and t2 = add (f "t2") in
  let alt1 = add (f "alt1") and alt2 = add (f "alt2") in
  let c1 = add (cfg 1) in
  (* weak for t1 (alternative exists), strong for t2 (direct) *)
  ignore (Ifg.add_disj g ~target:t1 [ f "alt1"; f "alt2" ]);
  Ifg.add_edge g ~parent:c1 ~child:alt1;
  ignore alt2;
  Ifg.add_edge g ~parent:c1 ~child:t2;
  let r = Label.run g ~tested:[ t1; t2 ] in
  Alcotest.check eq_set "strong overall" (set_of [ 1 ]) r.Label.strong

let test_empty_graph () =
  let g = Ifg.create () in
  let r = Label.run g ~tested:[] in
  check_bool "nothing" true (Element.Id_set.is_empty r.Label.covered)

let test_nested_disjunctions () =
  (* t <- disj(a, b); a <- disj(c1-fact, c2-fact); b <- c3.
     c3 strong? No: b is one alternative. c1/c2 weak; c3 weak too.
     But removing all three kills t, so no single one is necessary. *)
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  let a = add (f "a") and b = add (f "b") in
  let x1 = add (f "x1") and x2 = add (f "x2") in
  let c1 = add (cfg 1) and c2 = add (cfg 2) and c3 = add (cfg 3) in
  ignore (Ifg.add_disj g ~target:t [ f "a"; f "b" ]);
  ignore (Ifg.add_disj g ~target:a [ f "x1"; f "x2" ]);
  Ifg.add_edge g ~parent:c1 ~child:x1;
  Ifg.add_edge g ~parent:c2 ~child:x2;
  Ifg.add_edge g ~parent:c3 ~child:b;
  let r = Label.run g ~tested:[ t ] in
  Alcotest.check eq_set "all weak" (set_of [ 1; 2; 3 ]) r.Label.weak;
  Alcotest.check eq_set "none strong" Element.Id_set.empty r.Label.strong

let () =
  Alcotest.run "label"
    [
      ( "strong-weak",
        [
          Alcotest.test_case "figure 5 scenario" `Quick test_figure5;
          Alcotest.test_case "variable heuristic" `Quick test_heuristic_reduces_vars;
          Alcotest.test_case "all conjunctive" `Quick test_all_conjunctive;
          Alcotest.test_case "environment alternative" `Quick test_environment_alternative;
          Alcotest.test_case "common member strong" `Quick test_common_member_strong;
          Alcotest.test_case "multiple tested" `Quick test_multiple_tested;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "nested disjunctions" `Quick test_nested_disjunctions;
        ] );
    ]
