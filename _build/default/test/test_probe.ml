(* The Probe test-author API: queries record exactly what they touch. *)
open Netcov_types
open Netcov_core
open Netcov_nettest

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string
let ip = Ipv4.of_string

let state = lazy (Testnet.state_of (Testnet.chain ()))

let test_route_present_records () =
  let pr = Probe.create (Lazy.force state) in
  check_bool "present" true (Probe.route_present pr ~host:"c" (p "10.10.0.0/24"));
  check_bool "absent" false (Probe.route_present pr ~host:"c" (p "203.0.113.0/24"));
  let tested = Probe.tested pr in
  check_int "one fact recorded" 1 (List.length tested.Netcov.dp_facts)

let test_reachable_records_paths () =
  let pr = Probe.create (Lazy.force state) in
  check_bool "reachable" true (Probe.reachable pr ~src:"c" ~dst:(ip "10.10.0.1"));
  let tested = Probe.tested pr in
  let kinds =
    List.map
      (fun f -> match f with Fact.F_path _ -> "path" | Fact.F_main_rib _ -> "main" | _ -> "other")
      tested.Netcov.dp_facts
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "paths and entries" [ "main"; "path" ] kinds

let test_dedup () =
  let pr = Probe.create (Lazy.force state) in
  ignore (Probe.route_present pr ~host:"c" (p "10.10.0.0/24"));
  ignore (Probe.route_present pr ~host:"c" (p "10.10.0.0/24"));
  check_int "no duplicates" 1 (List.length (Probe.tested pr).Netcov.dp_facts)

let test_import_verdict_records_elements () =
  (* use the figure-1 style network with a real import policy *)
  let open Testnet in
  let devices = chain () in
  let devices =
    List.map
      (fun (d : Netcov_config.Device.t) ->
        if d.hostname <> "b" then d
        else
          {
            d with
            policies =
              [
                {
                  Netcov_config.Policy_ast.pol_name = "IMP";
                  terms =
                    [
                      {
                        term_name = "deny-ten";
                        matches =
                          [
                            Netcov_config.Policy_ast.Match_prefix
                              (p "10.99.0.0/16", Netcov_config.Policy_ast.Orlonger);
                          ];
                        actions = [ Netcov_config.Policy_ast.Reject ];
                      };
                    ];
                };
              ];
            bgp =
              Option.map
                (fun (bgp : Netcov_config.Device.bgp_config) ->
                  {
                    bgp with
                    neighbors =
                      List.map
                        (fun (n : Netcov_config.Device.neighbor) ->
                          if Ipv4.equal n.nb_ip (ip "192.168.0.1") then
                            { n with nb_import = [ "IMP" ] }
                          else n)
                        bgp.neighbors;
                  })
                d.bgp;
          })
      devices
  in
  let state = state_of devices in
  let pr = Probe.create state in
  let bad = Testutil.test_route ~as_path:[ 65001 ] (p "10.99.1.0/24") in
  let good = Testutil.test_route ~as_path:[ 65001 ] (p "100.0.0.0/24") in
  check_bool "rejected" true
    (Probe.import_verdict pr ~host:"b" ~neighbor:(ip "192.168.0.1") bad = `Rejected);
  check_bool "accepted" true
    (Probe.import_verdict pr ~host:"b" ~neighbor:(ip "192.168.0.1") good = `Accepted);
  check_bool "cp elements recorded" true ((Probe.tested pr).Netcov.cp_elements <> []);
  (* unknown neighbor rejects and records nothing new *)
  check_bool "unknown neighbor" true
    (Probe.import_verdict pr ~host:"b" ~neighbor:(ip "9.9.9.9") good = `Rejected)

let test_to_test_packaging () =
  let t =
    Probe.to_test ~name:"Custom" ~kind:Nettest.Data_plane (fun pr ->
        Probe.check pr
          (Probe.route_present pr ~host:"c" (p "10.10.0.0/24"))
          "route missing";
        Probe.check pr false "deliberate failure")
  in
  let r = t.Nettest.run (Lazy.force state) in
  check_int "checks" 2 r.Nettest.outcome.Nettest.checks;
  check_int "failures" 1 (List.length r.Nettest.outcome.Nettest.failures);
  check_bool "facts flow into tested" true (r.Nettest.tested.Netcov.dp_facts <> [])

let test_probe_coverage_end_to_end () =
  let t =
    Probe.to_test ~name:"ReachLan" ~kind:Nettest.Data_plane (fun pr ->
        Probe.check pr
          (Probe.reachable pr ~src:"c" ~dst:(ip "10.10.0.1"))
          "unreachable")
  in
  let state = Lazy.force state in
  let r = t.Nettest.run state in
  let report = Netcov.analyze state r.Nettest.tested in
  let s = Coverage.line_stats report.Netcov.coverage in
  check_bool "nontrivial coverage" true (Coverage.covered_lines s > 20)

let () =
  Alcotest.run "probe"
    [
      ( "queries",
        [
          Alcotest.test_case "route_present records" `Quick test_route_present_records;
          Alcotest.test_case "reachable records paths" `Quick test_reachable_records_paths;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "import verdict" `Quick test_import_verdict_records_elements;
        ] );
      ( "packaging",
        [
          Alcotest.test_case "to_test" `Quick test_to_test_packaging;
          Alcotest.test_case "coverage end-to-end" `Quick test_probe_coverage_end_to_end;
        ] );
    ]
