open Netcov_types

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

let test_canonical () =
  (* host bits are zeroed *)
  check_str "canon" "10.1.2.0/24"
    (Prefix.to_string (Prefix.make (Ipv4.of_string "10.1.2.99") 24));
  check_str "canon /30" "10.0.0.4/30"
    (Prefix.to_string (Prefix.make (Ipv4.of_string "10.0.0.7") 30));
  check_str "zero len" "0.0.0.0/0"
    (Prefix.to_string (Prefix.make (Ipv4.of_string "255.1.2.3") 0))

let test_parse () =
  check_bool "bad len" true (Prefix.of_string_opt "1.2.3.0/33" = None);
  check_bool "no slash" true (Prefix.of_string_opt "1.2.3.0" = None);
  check_bool "neg" true (Prefix.of_string_opt "1.2.3.0/-1" = None);
  check_str "ok" "128.0.0.0/1" (Prefix.to_string (p "128.0.0.0/1"))

let test_contains () =
  check_bool "in" true (Prefix.contains (p "10.0.0.0/8") (Ipv4.of_string "10.255.0.1"));
  check_bool "out" false (Prefix.contains (p "10.0.0.0/8") (Ipv4.of_string "11.0.0.1"));
  check_bool "all" true (Prefix.contains Prefix.default (Ipv4.of_string "8.8.8.8"));
  check_bool "/32 self" true
    (Prefix.contains (p "1.2.3.4/32") (Ipv4.of_string "1.2.3.4"));
  check_bool "/32 other" false
    (Prefix.contains (p "1.2.3.4/32") (Ipv4.of_string "1.2.3.5"))

let test_subsumes () =
  check_bool "wider subsumes" true (Prefix.subsumes (p "10.0.0.0/8") (p "10.1.0.0/16"));
  check_bool "not reverse" false (Prefix.subsumes (p "10.1.0.0/16") (p "10.0.0.0/8"));
  check_bool "self" true (Prefix.subsumes (p "10.0.0.0/8") (p "10.0.0.0/8"));
  check_bool "disjoint" false (Prefix.subsumes (p "10.0.0.0/8") (p "11.0.0.0/16"))

let test_overlaps () =
  check_bool "nested" true (Prefix.overlaps (p "10.0.0.0/8") (p "10.2.3.0/24"));
  check_bool "nested rev" true (Prefix.overlaps (p "10.2.3.0/24") (p "10.0.0.0/8"));
  check_bool "disjoint" false (Prefix.overlaps (p "10.0.0.0/24") (p "10.0.1.0/24"))

let test_halves () =
  let lo, hi = Prefix.halves (p "10.0.0.0/8") in
  check_str "lo" "10.0.0.0/9" (Prefix.to_string lo);
  check_str "hi" "10.128.0.0/9" (Prefix.to_string hi);
  Alcotest.check_raises "no /32 halves" (Invalid_argument "Prefix.halves: /32 has no halves")
    (fun () -> ignore (Prefix.halves (p "1.2.3.4/32")))

let test_subnets () =
  check_int "count" 256 (Prefix.subnet_count (p "10.0.0.0/16") ~len:24);
  check_str "first" "10.0.0.0/24"
    (Prefix.to_string (Prefix.nth_subnet (p "10.0.0.0/16") ~len:24 ~n:0));
  check_str "nth" "10.0.37.0/24"
    (Prefix.to_string (Prefix.nth_subnet (p "10.0.0.0/16") ~len:24 ~n:37))

let test_mask_first_host () =
  check_str "mask" "255.255.255.252" (Ipv4.to_string (Prefix.mask (p "10.0.0.0/30")));
  check_str "first host" "10.0.0.1" (Ipv4.to_string (Prefix.first_host (p "10.0.0.0/30")));
  check_str "/31 first" "10.0.0.0" (Ipv4.to_string (Prefix.first_host (p "10.0.0.0/31")))

let gen_prefix =
  QCheck.map
    (fun (a, l) -> Prefix.make (Ipv4.of_int a) l)
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 32))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse . print = id" ~count:500 gen_prefix (fun q ->
      Prefix.equal q (Prefix.of_string (Prefix.to_string q)))

let prop_contains_addr =
  QCheck.Test.make ~name:"prefix contains its base address" ~count:500 gen_prefix
    (fun q -> Prefix.contains q (Prefix.addr q))

let prop_subsume_trans =
  QCheck.Test.make ~name:"halves are subsumed" ~count:500
    (QCheck.map
       (fun (a, l) -> Prefix.make (Ipv4.of_int a) l)
       QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 31)))
    (fun q ->
      let lo, hi = Prefix.halves q in
      Prefix.subsumes q lo && Prefix.subsumes q hi && not (Prefix.overlaps lo hi))

let () =
  Alcotest.run "prefix"
    [
      ( "unit",
        [
          Alcotest.test_case "canonicalization" `Quick test_canonical;
          Alcotest.test_case "parsing" `Quick test_parse;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "subsumes" `Quick test_subsumes;
          Alcotest.test_case "overlaps" `Quick test_overlaps;
          Alcotest.test_case "halves" `Quick test_halves;
          Alcotest.test_case "subnets" `Quick test_subnets;
          Alcotest.test_case "mask and first host" `Quick test_mask_first_host;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_contains_addr; prop_subsume_trans ] );
    ]
