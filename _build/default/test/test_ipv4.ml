open Netcov_types

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_roundtrip_literals () =
  List.iter
    (fun s -> check_str s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.1.254"; "1.2.3.4" ]

let test_of_octets () =
  check_str "octets" "10.20.30.40" (Ipv4.to_string (Ipv4.of_octets 10 20 30 40));
  let a, b, c, d = Ipv4.to_octets (Ipv4.of_string "172.16.5.9") in
  check_int "a" 172 a;
  check_int "b" 16 b;
  check_int "c" 5 c;
  check_int "d" 9 d

let test_parse_errors () =
  List.iter
    (fun s -> check_bool s true (Ipv4.of_string_opt s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1.2.3.4 " ]

let test_ordering () =
  check_bool "lt" true (Ipv4.compare (Ipv4.of_string "1.0.0.0") (Ipv4.of_string "2.0.0.0") < 0);
  check_bool "eq" true (Ipv4.equal (Ipv4.of_string "9.9.9.9") (Ipv4.of_string "9.9.9.9"));
  check_bool "msb order" true
    (Ipv4.compare (Ipv4.of_string "127.255.255.255") (Ipv4.of_string "128.0.0.0") < 0)

let test_succ_wraps () =
  check_str "succ" "10.0.0.2" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "10.0.0.1")));
  check_str "carry" "10.0.1.0" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "10.0.0.255")));
  check_str "wrap" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.broadcast))

let test_bits () =
  let a = Ipv4.of_string "128.0.0.1" in
  check_bool "bit0" true (Ipv4.bit a 0);
  check_bool "bit1" false (Ipv4.bit a 1);
  check_bool "bit31" true (Ipv4.bit a 31)

let test_logic () =
  let a = Ipv4.of_string "255.255.0.0" in
  check_str "not" "0.0.255.255" (Ipv4.to_string (Ipv4.lognot a));
  check_str "and" "10.1.0.0"
    (Ipv4.to_string (Ipv4.logand (Ipv4.of_string "10.1.2.3") a));
  check_str "or" "255.255.2.3"
    (Ipv4.to_string (Ipv4.logor (Ipv4.of_string "10.1.2.3") a))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string . to_string = id" ~count:500
    QCheck.(map Ipv4.of_int (int_bound 0xFFFFFFF))
    (fun a -> Ipv4.equal a (Ipv4.of_string (Ipv4.to_string a)))

let prop_add_assoc =
  QCheck.Test.make ~name:"add a (m+n) = add (add a m) n" ~count:500
    QCheck.(triple (int_bound 0xFFFFFF) (int_bound 1000) (int_bound 1000))
    (fun (a, m, n) ->
      let a = Ipv4.of_int a in
      Ipv4.equal (Ipv4.add a (m + n)) (Ipv4.add (Ipv4.add a m) n))

let () =
  Alcotest.run "ipv4"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip literals" `Quick test_roundtrip_literals;
          Alcotest.test_case "of_octets" `Quick test_of_octets;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "succ wraps" `Quick test_succ_wraps;
          Alcotest.test_case "bit access" `Quick test_bits;
          Alcotest.test_case "bitwise ops" `Quick test_logic;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_add_assoc ]
      );
    ]
