open Netcov_types

let p = Prefix.of_string
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let sample =
  Prefix_trie.of_list
    [
      (p "0.0.0.0/0", "default");
      (p "10.0.0.0/8", "ten");
      (p "10.1.0.0/16", "ten-one");
      (p "10.1.2.0/24", "ten-one-two");
      (p "192.168.0.0/16", "rfc1918");
    ]

let test_cardinal () =
  check_int "cardinal" 5 (Prefix_trie.cardinal sample);
  check_int "empty" 0 (Prefix_trie.cardinal Prefix_trie.empty);
  check_bool "is_empty" true (Prefix_trie.is_empty Prefix_trie.empty)

let test_find_exact () =
  check_bool "exact hit" true
    (Prefix_trie.find_opt (p "10.1.0.0/16") sample = Some "ten-one");
  check_bool "exact miss (different len)" true
    (Prefix_trie.find_opt (p "10.1.0.0/17") sample = None);
  check_bool "mem" true (Prefix_trie.mem (p "0.0.0.0/0") sample)

let test_longest_match () =
  let lm addr =
    match Prefix_trie.longest_match (Ipv4.of_string addr) sample with
    | Some (q, v) -> Printf.sprintf "%s=%s" (Prefix.to_string q) v
    | None -> "none"
  in
  check_str "most specific" "10.1.2.0/24=ten-one-two" (lm "10.1.2.3");
  check_str "mid" "10.1.0.0/16=ten-one" (lm "10.1.3.1");
  check_str "top" "10.0.0.0/8=ten" (lm "10.9.9.9");
  check_str "default" "0.0.0.0/0=default" (lm "8.8.8.8")

let test_all_matches () =
  let ms =
    Prefix_trie.all_matches (Ipv4.of_string "10.1.2.3") sample
    |> List.map (fun (q, _) -> Prefix.to_string q)
  in
  Alcotest.(check (list string))
    "most specific first"
    [ "10.1.2.0/24"; "10.1.0.0/16"; "10.0.0.0/8"; "0.0.0.0/0" ]
    ms

let test_subsumed () =
  let under =
    Prefix_trie.subsumed (p "10.0.0.0/8") sample
    |> List.map (fun (q, _) -> Prefix.to_string q)
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "subtree" [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ] under

let test_remove_update () =
  let t = Prefix_trie.remove (p "10.1.0.0/16") sample in
  check_int "removed" 4 (Prefix_trie.cardinal t);
  check_bool "gone" true (Prefix_trie.find_opt (p "10.1.0.0/16") t = None);
  let t2 =
    Prefix_trie.update (p "10.0.0.0/8") (Option.map String.uppercase_ascii) t
  in
  check_bool "updated" true (Prefix_trie.find_opt (p "10.0.0.0/8") t2 = Some "TEN")

let test_fold_order () =
  let keys =
    Prefix_trie.to_list sample |> List.map (fun (q, _) -> Prefix.to_string q)
  in
  check_int "all listed" 5 (List.length keys);
  check_bool "default present" true (List.mem "0.0.0.0/0" keys)

let gen_prefix =
  QCheck.map
    (fun (a, l) -> Prefix.make (Ipv4.of_int a) l)
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 32))

let gen_bindings = QCheck.(small_list (pair gen_prefix small_int))

let prop_model_find =
  QCheck.Test.make ~name:"find agrees with assoc model" ~count:300 gen_bindings
    (fun bindings ->
      let t = Prefix_trie.of_list bindings in
      List.for_all
        (fun (q, _) ->
          (* last binding for q wins *)
          let expected =
            List.fold_left
              (fun acc (q', v) -> if Prefix.equal q q' then Some v else acc)
              None bindings
          in
          Prefix_trie.find_opt q t = expected)
        bindings)

let prop_lpm_sound =
  QCheck.Test.make ~name:"longest_match returns a containing, maximal prefix"
    ~count:300
    QCheck.(pair gen_bindings (int_bound 0xFFFFFFF))
    (fun (bindings, a) ->
      let t = Prefix_trie.of_list bindings in
      let addr = Ipv4.of_int a in
      match Prefix_trie.longest_match addr t with
      | None ->
          not (List.exists (fun (q, _) -> Prefix.contains q addr) bindings)
      | Some (q, _) ->
          Prefix.contains q addr
          && List.for_all
               (fun (q', _) ->
                 (not (Prefix.contains q' addr)) || Prefix.len q' <= Prefix.len q)
               bindings)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = distinct keys" ~count:300 gen_bindings
    (fun bindings ->
      let distinct =
        List.sort_uniq Prefix.compare (List.map fst bindings) |> List.length
      in
      Prefix_trie.cardinal (Prefix_trie.of_list bindings) = distinct)

let () =
  Alcotest.run "prefix_trie"
    [
      ( "unit",
        [
          Alcotest.test_case "cardinal" `Quick test_cardinal;
          Alcotest.test_case "find exact" `Quick test_find_exact;
          Alcotest.test_case "longest match" `Quick test_longest_match;
          Alcotest.test_case "all matches" `Quick test_all_matches;
          Alcotest.test_case "subsumed" `Quick test_subsumed;
          Alcotest.test_case "remove and update" `Quick test_remove_update;
          Alcotest.test_case "fold order" `Quick test_fold_order;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model_find; prop_lpm_sound; prop_cardinal ] );
    ]
