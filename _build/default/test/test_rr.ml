(* Route-reflector iBGP design (extension): reflection semantics and
   their effect on the IFG — routes now traverse two iBGP hops, so the
   reflector's configuration becomes a non-local contributor. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

(* hub-and-spoke in one AS over an IGP star:
     spoke1 -- hub -- spoke2
   spoke1 originates 10.60.0.0/24; iBGP sessions exist only spoke-hub. *)
let star ~reflector =
  let open Testnet in
  let lo = function
    | "hub" -> "172.21.0.1"
    | "spoke1" -> "172.21.0.2"
    | "spoke2" -> "172.21.0.3"
    | h -> invalid_arg h
  in
  let link _host _peer base ifidx =
    Device.interface
      ~address:(Ipv4.of_string base, 30)
      ~igp_enabled:true ~igp_metric:10
      (Printf.sprintf "eth%d" ifidx)
  in
  let mk host ~neighbors ~lan =
    let loopback =
      Device.interface ~address:(Ipv4.of_string (lo host), 32) ~igp_enabled:true
        ~igp_metric:0 "lo0"
    in
    let ifaces =
      match host with
      | "hub" -> [ link "hub" "spoke1" "192.168.30.1" 0; link "hub" "spoke2" "192.168.30.5" 1 ]
      | "spoke1" -> [ link "spoke1" "hub" "192.168.30.2" 0 ]
      | "spoke2" -> [ link "spoke2" "hub" "192.168.30.6" 0 ]
      | _ -> []
    in
    let networks = if lan then [ "10.60.0.0/24" ] else [] in
    let lan_if =
      if lan then [ Device.interface ~address:(Ipv4.of_string "10.60.0.1", 24) "lan0" ]
      else []
    in
    let nbs =
      List.map
        (fun (peer, client) ->
          {
            (neighbor ~remote_as:65000 ~local_addr:(lo host) ~next_hop_self:true
               (lo peer))
            with
            Device.nb_rr_client = client;
          })
        neighbors
    in
    Device.make
      ~interfaces:((loopback :: ifaces) @ lan_if)
      ~bgp:(bgp ~local_as:65000 ~router_id:(lo host) ~networks nbs)
      host
  in
  (* without ~reflector the hub treats spokes as plain iBGP peers *)
  let hub =
    mk "hub"
      ~neighbors:[ ("spoke1", reflector); ("spoke2", reflector) ]
      ~lan:false
  in
  let spoke1 = mk "spoke1" ~neighbors:[ ("hub", false) ] ~lan:true in
  let spoke2 = mk "spoke2" ~neighbors:[ ("hub", false) ] ~lan:false in
  Testnet.state_of [ hub; spoke1; spoke2 ]

let test_no_reflection_without_clients () =
  let state = star ~reflector:false in
  (* hub learns the route but must not pass it on (iBGP full-mesh rule) *)
  check_bool "hub learns" true
    (Stable_state.bgp_lookup state "hub" (p "10.60.0.0/24") <> []);
  check_int "spoke2 isolated" 0
    (List.length (Stable_state.bgp_lookup state "spoke2" (p "10.60.0.0/24")))

let test_reflection_with_clients () =
  let state = star ~reflector:true in
  let entries = Stable_state.bgp_lookup_best state "spoke2" (p "10.60.0.0/24") in
  check_int "spoke2 learns via reflection" 1 (List.length entries);
  (* learned from the hub's session address *)
  check_bool "learned from hub" true
    (match (List.hd entries).Rib.be_source with
    | Rib.Learned ip -> Ipv4.equal ip (Ipv4.of_string "172.21.0.1")
    | _ -> false);
  (* and it is usable *)
  check_bool "reachable" true
    (Stable_state.reachable state ~src:"spoke2" ~dst:(Ipv4.of_string "10.60.0.1"))

let test_reflection_coverage_chain () =
  (* testing spoke2's entry covers the reflector's configuration: the
     contribution is non-local across two iBGP hops *)
  let state = star ~reflector:true in
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "spoke2"; entry })
      (Stable_state.main_lookup state "spoke2" (p "10.60.0.0/24"))
  in
  check_bool "tested nonempty" true (tested <> []);
  let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
  let reg = Stable_state.registry state in
  let covered host key =
    Coverage.element_status report.Netcov.coverage
      (Option.get (Registry.find reg ~device:host key))
    <> Coverage.Not_covered
  in
  check_bool "spoke2's peering toward hub" true
    (covered "spoke2" (Element.key Element.Bgp_peer "172.21.0.1"));
  check_bool "hub's peering toward spoke2 (client)" true
    (covered "hub" (Element.key Element.Bgp_peer "172.21.0.3"));
  check_bool "hub's peering toward spoke1 (client)" true
    (covered "hub" (Element.key Element.Bgp_peer "172.21.0.2"));
  check_bool "spoke1's peering toward hub" true
    (covered "spoke1" (Element.key Element.Bgp_peer "172.21.0.1"));
  check_bool "origin network statement" true
    (covered "spoke1" (Element.key Element.Bgp_network "10.60.0.0/24"));
  check_bool "origin LAN interface" true
    (covered "spoke1" (Element.key Element.Interface "lan0"))

let test_rr_roundtrip () =
  (* the route-reflector-client knob survives emit/parse in both
     syntaxes *)
  let nb =
    {
      Device.nb_ip = Ipv4.of_string "10.0.0.9";
      nb_remote_as = 65000;
      nb_group = None;
      nb_import = [];
      nb_export = [];
      nb_local_addr = None;
      nb_next_hop_self = false;
      nb_rr_client = true;
      nb_description = None;
    }
  in
  let d =
    Device.make
      ~bgp:
        {
          Device.local_as = 65000;
          router_id = Ipv4.of_string "10.0.0.1";
          networks = [];
          aggregates = [];
          redistributes = [];
          groups = [];
          neighbors = [ nb ];
          multipath = 1;
        }
      "rr"
  in
  let check_parsed (d' : Device.t) =
    match d'.Device.bgp with
    | Some b -> check_bool "flag kept" true (List.hd b.neighbors).Device.nb_rr_client
    | None -> Alcotest.fail "bgp lost"
  in
  check_parsed (Parse_junos.parse_exn (Emit_junos.to_string d));
  check_parsed (Parse_ios.parse_exn (Emit_ios.to_string d))

let test_internet2_rr_variant () =
  let params =
    {
      Netcov_workloads.Internet2.test_params with
      Netcov_workloads.Internet2.ibgp = Netcov_workloads.Internet2.Route_reflectors 2;
    }
  in
  let net = Netcov_workloads.Internet2.generate params in
  let state = Stable_state.compute (Registry.build net.devices) in
  check_bool "converges" true (Stable_state.rounds state < 30);
  (* clients learn remote external routes via the reflectors *)
  let some_peer =
    List.find
      (fun (pi : Netcov_workloads.Internet2.peer_info) -> pi.allowed <> [])
      net.peers
  in
  let prefix = List.hd some_peer.allowed in
  let holders =
    List.filter
      (fun host -> Stable_state.main_lookup state host prefix <> [])
      net.routers
  in
  (* the sanity-rejected tainted prefixes aside, the route should spread
     to every router despite the sparse iBGP graph *)
  check_bool "route spreads" true (List.length holders >= 9)

let () =
  Alcotest.run "route_reflector"
    [
      ( "semantics",
        [
          Alcotest.test_case "no reflection without clients" `Quick
            test_no_reflection_without_clients;
          Alcotest.test_case "reflection with clients" `Quick
            test_reflection_with_clients;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "non-local chain through RR" `Quick
            test_reflection_coverage_chain;
        ] );
      ( "integration",
        [
          Alcotest.test_case "config round-trip" `Quick test_rr_roundtrip;
          Alcotest.test_case "internet2 RR variant" `Slow test_internet2_rr_variant;
        ] );
    ]
