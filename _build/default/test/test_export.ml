(* JSON export and coverage diffing. *)
open Netcov_types
open Netcov_sim
open Netcov_core

module Element = Netcov_config.Element

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let contains = Astring_like.contains
let p = Prefix.of_string

let state = lazy (Testnet.state_of (Testnet.chain ()))

let report_of tested =
  Netcov.analyze (Lazy.force state) { Netcov.dp_facts = tested; cp_elements = [] }

let tested_c =
  lazy
    (List.map
       (fun entry -> Fact.F_main_rib { host = "c"; entry })
       (Stable_state.main_lookup (Lazy.force state) "c" (p "10.10.0.0/24")))

(* ---------------- JSON ---------------- *)

let test_escape () =
  Alcotest.(check string) "quotes" "a\\\"b" (Json_export.escape_string "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Json_export.escape_string "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Json_export.escape_string "a\nb");
  Alcotest.(check string) "control" "\\u0001" (Json_export.escape_string "\x01")

(* A tiny structural validator: balanced braces/brackets outside
   strings, no trailing garbage. *)
let well_formed json =
  let depth = ref 0 and in_str = ref false and escaped = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_str then begin
        if c = '\\' then escaped := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    json;
  !ok && !depth = 0 && not !in_str

let test_coverage_json () =
  let report = report_of (Lazy.force tested_c) in
  let json = Json_export.coverage report.Netcov.coverage in
  check_bool "well formed" true (well_formed json);
  check_bool "has overall" true (contains json "\"overall\"");
  check_bool "has devices" true (contains json "\"device\":\"a\"");
  check_bool "has element status" true (contains json "\"status\":\"strong\"");
  check_bool "has types" true (contains json "\"type\":\"interface\"")

let test_report_json () =
  let report = report_of (Lazy.force tested_c) in
  let json = Json_export.report report in
  check_bool "well formed" true (well_formed json);
  check_bool "has timing" true (contains json "\"ifg_nodes\"");
  check_bool "has dead" true (contains json "\"dead\"")

let test_json_deterministic () =
  let r1 = report_of (Lazy.force tested_c) in
  let r2 = report_of (Lazy.force tested_c) in
  Alcotest.(check string)
    "same json"
    (Json_export.coverage r1.Netcov.coverage)
    (Json_export.coverage r2.Netcov.coverage)

(* ---------------- diff ---------------- *)

let test_diff_empty () =
  let r = report_of (Lazy.force tested_c) in
  let d = Coverage_diff.diff ~baseline:r.Netcov.coverage r.Netcov.coverage in
  check_bool "empty" true (Coverage_diff.is_empty d);
  check_bool "no regression" true (Coverage_diff.no_regression d);
  check_bool "summary says unchanged" true
    (contains
       (Coverage_diff.summary (Stable_state.registry (Lazy.force state)) d)
       "unchanged")

let test_diff_gain () =
  let baseline = report_of [] in
  let current = report_of (Lazy.force tested_c) in
  let d = Coverage_diff.diff ~baseline:baseline.Netcov.coverage current.Netcov.coverage in
  check_bool "gained" true (not (Element.Id_set.is_empty d.Coverage_diff.gained));
  check_int "nothing lost" 0 (Element.Id_set.cardinal d.Coverage_diff.lost);
  check_bool "no regression" true (Coverage_diff.no_regression d)


let test_diff_regression () =
  let baseline = report_of (Lazy.force tested_c) in
  let current = report_of [] in
  let d = Coverage_diff.diff ~baseline:baseline.Netcov.coverage current.Netcov.coverage in
  check_bool "lost" true (not (Element.Id_set.is_empty d.Coverage_diff.lost));
  check_bool "regression detected" false (Coverage_diff.no_regression d);
  check_bool "summary lists elements" true
    (contains
       (Coverage_diff.summary (Stable_state.registry (Lazy.force state)) d)
       "coverage lost")

let test_diff_mismatched_registries () =
  let other = Testnet.state_of (Testnet.diamond ()) in
  let r1 = report_of [] in
  let r2 = Netcov.analyze other Netcov.no_tests in
  check_bool "raises" true
    (match Coverage_diff.diff ~baseline:r1.Netcov.coverage r2.Netcov.coverage with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "export"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_escape;
          Alcotest.test_case "coverage json" `Quick test_coverage_json;
          Alcotest.test_case "report json" `Quick test_report_json;
          Alcotest.test_case "deterministic" `Quick test_json_deterministic;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identity" `Quick test_diff_empty;
          Alcotest.test_case "gain" `Quick test_diff_gain;
          Alcotest.test_case "regression" `Quick test_diff_regression;
          Alcotest.test_case "mismatched registries" `Quick
            test_diff_mismatched_registries;
        ] );
    ]
