(* Output writers: lcov format conformance, HTML report structure, and
   the on-disk trees. *)
open Netcov_types
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let contains = Astring_like.contains

let report =
  lazy
    (let state = Testnet.state_of (Testnet.chain ()) in
     let tested =
       List.map
         (fun entry -> Fact.F_main_rib { host = "c"; entry })
         (Stable_state.main_lookup state "c" (Prefix.of_string "10.10.0.0/24"))
     in
     Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] })

let test_lcov_format () =
  let text = Lcov.report (Lazy.force report).Netcov.coverage in
  let lines = String.split_on_char '\n' text in
  (* every DA record is well-formed and within the file's line count *)
  let current_lf = ref 0 and das = ref 0 and records = ref 0 in
  List.iter
    (fun l ->
      if String.length l > 3 && String.sub l 0 3 = "DA:" then begin
        incr das;
        match String.split_on_char ',' (String.sub l 3 (String.length l - 3)) with
        | [ ln; hits ] ->
            check_bool "line number positive" true (int_of_string ln > 0);
            check_bool "hits 0/1" true (hits = "0" || hits = "1")
        | _ -> Alcotest.fail ("bad DA record: " ^ l)
      end
      else if String.length l > 3 && String.sub l 0 3 = "LF:" then
        current_lf := int_of_string (String.sub l 3 (String.length l - 3))
      else if l = "end_of_record" then incr records)
    lines;
  check_int "three devices" 3 !records;
  check_bool "has DA records" true (!das > 0);
  check_bool "LF recorded" true (!current_lf > 0)

let test_lcov_lf_lh_consistency () =
  let cov = (Lazy.force report).Netcov.coverage in
  let text = Lcov.report cov in
  (* LH must equal the number of DA records with hits=1 per record *)
  let records = String.split_on_char '\n' text in
  let hits = ref 0 and found = ref 0 in
  List.iter
    (fun l ->
      if String.length l > 3 && String.sub l 0 3 = "DA:" then begin
        incr found;
        if String.length l > 2 && String.sub l (String.length l - 2) 2 = ",1" then
          incr hits
      end
      else if String.length l > 3 && String.sub l 0 3 = "LH:" then begin
        check_int "LH matches" !hits (int_of_string (String.sub l 3 (String.length l - 3)));
        hits := 0
      end
      else if String.length l > 3 && String.sub l 0 3 = "LF:" then begin
        check_int "LF matches" !found (int_of_string (String.sub l 3 (String.length l - 3)));
        found := 0
      end)
    records

let test_html_index () =
  let html = Html_report.index (Lazy.force report).Netcov.coverage in
  check_bool "doctype" true (contains html "<!doctype html>");
  List.iter
    (fun host -> check_bool (host ^ " linked") true (contains html (host ^ ".html")))
    [ "a"; "b"; "c" ];
  check_bool "type table" true (contains html "By element type")

let test_html_device_page () =
  let html = Html_report.device_page (Lazy.force report).Netcov.coverage "a" in
  check_bool "has covered spans" true (contains html "class=\"strong\"");
  check_bool "has uncovered spans" true (contains html "class=\"uncov\"");
  check_bool "escapes html" true (not (contains html "<eth0>"))

let test_html_escaping () =
  check_bool "escape works" true
    (not
       (contains
          (Html_report.device_page (Lazy.force report).Netcov.coverage "a")
          "encrypted-password \"<"))

let test_write_trees () =
  let dir = Filename.temp_file "netcov" "out" in
  Sys.remove dir;
  let cov = (Lazy.force report).Netcov.coverage in
  Lcov.write_tree cov dir;
  Html_report.write_tree cov (Filename.concat dir "html");
  check_bool "coverage.info" true (Sys.file_exists (Filename.concat dir "coverage.info"));
  check_bool "config text" true
    (Sys.file_exists (Filename.concat dir "configs/a.cfg"));
  check_bool "index.html" true
    (Sys.file_exists (Filename.concat dir "html/index.html"));
  check_bool "device html" true
    (Sys.file_exists (Filename.concat dir "html/b.html"))

let () =
  Alcotest.run "reports"
    [
      ( "lcov",
        [
          Alcotest.test_case "format" `Quick test_lcov_format;
          Alcotest.test_case "LF/LH consistency" `Quick test_lcov_lf_lh_consistency;
        ] );
      ( "html",
        [
          Alcotest.test_case "index" `Quick test_html_index;
          Alcotest.test_case "device page" `Quick test_html_device_page;
          Alcotest.test_case "escaping" `Quick test_html_escaping;
        ] );
      ("disk", [ Alcotest.test_case "write trees" `Quick test_write_trees ]);
    ]
