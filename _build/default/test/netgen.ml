(* Random eBGP tree networks for simulator invariant properties.

   A tree topology guarantees BGP convergence, so every generated
   network has a well-defined stable state; the properties then check
   global invariants of that state. *)
open Netcov_types
open Netcov_config
module Gen = QCheck.Gen

type spec = {
  n_routers : int;
  parent : int array;  (** parent.(i) for i >= 1; tree rooted at 0 *)
  lans : (int * Prefix.t) list;  (** router -> originated subnet *)
  multipath : int;
}

let spec_gen =
  let open Gen in
  let* n_routers = int_range 2 10 in
  let* parents =
    flatten_l (List.init (n_routers - 1) (fun i -> int_bound i))
  in
  let parent = Array.of_list (0 :: parents) in
  (* each router originates its own /24 under 10.64.0.0/16-ish space *)
  let lans =
    List.init n_routers (fun i -> (i, Prefix.make (Ipv4.of_octets 10 64 i 0) 24))
  in
  let* multipath = oneofl [ 1; 2; 4 ] in
  return { n_routers; parent; lans; multipath }

let host i = Printf.sprintf "r%d" i

let devices_of (s : spec) =
  (* link i<->parent(i) gets subnet 192.168.(i).(0)/30 *)
  let link_subnet i = Ipv4.of_octets 192 168 i 0 in
  let asn i = 65001 + i in
  List.init s.n_routers (fun i ->
      let up_iface =
        if i = 0 then []
        else
          [
            Device.interface
              ~address:(Ipv4.succ (link_subnet i), 30)
              (Printf.sprintf "up%d" i);
          ]
      in
      let children =
        List.filter (fun j -> j > 0 && s.parent.(j) = i)
          (List.init s.n_routers Fun.id)
      in
      let down_ifaces =
        List.map
          (fun j ->
            Device.interface
              ~address:(Ipv4.add (link_subnet j) 2, 30)
              (Printf.sprintf "down%d" j))
          children
      in
      let lan = List.assoc i s.lans in
      let lan_iface =
        Device.interface ~address:(Prefix.first_host lan, 24) "lan0"
      in
      let neighbor ip remote_as =
        {
          Device.nb_ip = ip;
          nb_remote_as = remote_as;
          nb_group = None;
          nb_import = [];
          nb_export = [];
          nb_local_addr = None;
          nb_next_hop_self = false;
          nb_rr_client = false;
          nb_description = None;
        }
      in
      let up_nb =
        if i = 0 then []
        else [ neighbor (Ipv4.add (link_subnet i) 2) (asn s.parent.(i)) ]
      in
      let down_nbs =
        List.map (fun j -> neighbor (Ipv4.succ (link_subnet j)) (asn j)) children
      in
      Device.make
        ~interfaces:((lan_iface :: up_iface) @ down_ifaces)
        ~bgp:
          {
            Device.local_as = asn i;
            router_id = Prefix.first_host lan;
            networks = [ lan ];
            aggregates = [];
            redistributes = [];
            groups = [];
            neighbors = up_nb @ down_nbs;
            multipath = s.multipath;
          }
        (host i))

let arbitrary_spec =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "n=%d parents=[%s] multipath=%d" s.n_routers
        (String.concat ";" (Array.to_list (Array.map string_of_int s.parent)))
        s.multipath)
    spec_gen
