open Netcov_types

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_roundtrip () =
  List.iter
    (fun s -> check_str s s (Community.to_string (Community.of_string s)))
    [ "0:0"; "65535:65535"; "11537:888"; "1:2" ]

let test_parse_errors () =
  List.iter
    (fun s -> check_bool s true (Community.of_string_opt s = None))
    [ ""; "1"; "1:"; ":2"; "65536:0"; "0:65536"; "-1:2"; "a:b" ]

let test_well_known () =
  check_str "no-export" "65535:65281" (Community.to_string Community.no_export);
  check_str "no-advertise" "65535:65282" (Community.to_string Community.no_advertise)

let test_ordering () =
  check_bool "high first" true
    (Community.compare (Community.make 1 9) (Community.make 2 0) < 0);
  check_bool "low second" true
    (Community.compare (Community.make 1 1) (Community.make 1 2) < 0)

let test_set () =
  let s =
    Community.Set.of_list [ Community.make 1 1; Community.make 1 1; Community.make 2 2 ]
  in
  Alcotest.(check int) "dedup" 2 (Community.Set.cardinal s)

let test_route_communities () =
  let r = Route.originate (Prefix.of_string "10.0.0.0/8") ~next_hop:Ipv4.zero in
  let c = Community.make 11537 888 in
  check_bool "absent" false (Route.has_community r c);
  let r = Route.add_community r c in
  check_bool "present" true (Route.has_community r c);
  let r2 = Route.add_community r c in
  check_bool "idempotent" true (Route.equal_bgp r r2)

let () =
  Alcotest.run "community"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "well-known" `Quick test_well_known;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "set dedup" `Quick test_set;
          Alcotest.test_case "route communities" `Quick test_route_communities;
        ] );
    ]
