open Netcov_types
open Netcov_config
open Netcov_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ip = Ipv4.of_string
let p = Prefix.of_string

(* ---------------- topology ---------------- *)

let test_topology_adjacency () =
  let devices = Testnet.chain () in
  let topo = Topology.build devices in
  let adj_a = Topology.adjacencies_of topo "a" in
  check_int "a has one neighbor" 1 (List.length adj_a);
  let adj = List.hd adj_a in
  check_bool "a-b" true (adj.Topology.remote.host = "b");
  check_int "b has two" 2 (List.length (Topology.adjacencies_of topo "b"));
  check_bool "endpoint lookup" true
    (match Topology.endpoint_of_ip topo (ip "192.168.0.5") with
    | Some e -> e.Topology.host = "b" && e.ifname = "eth1"
    | None -> false);
  check_bool "shared subnet" true
    (match Topology.on_shared_subnet topo "a" (ip "192.168.0.2") with
    | Some e -> e.Topology.ifname = "eth0"
    | None -> false);
  check_bool "not shared" true (Topology.on_shared_subnet topo "a" (ip "192.168.0.6") = None)

(* ---------------- igp ---------------- *)

let test_igp_costs () =
  let devices = Testnet.diamond () in
  let topo = Topology.build devices in
  let ribs = Igp.compute devices topo in
  let a_rib = Hashtbl.find ribs "a" in
  (* a reaches d's loopback at cost 10+10+0 via b or c *)
  let entries = Rib.table_find (p "172.20.0.4/32") a_rib in
  check_bool "d loopback known" true (entries <> []);
  List.iter
    (fun (e : Rib.igp_entry) -> check_int "cost" 20 e.ie_cost)
    entries;
  check_int "ecmp first hops" 2 (List.length entries);
  (* direct neighbor at cost 10 *)
  let b_lo = Rib.table_find (p "172.20.0.2/32") a_rib in
  check_int "one hop" 1 (List.length b_lo);
  check_int "cost 10" 10 (List.hd b_lo).Rib.ie_cost

(* ---------------- sessions ---------------- *)

let test_sessions_chain () =
  let state = Testnet.state_of (Testnet.chain ()) in
  let edges = Stable_state.edges state in
  (* two sessions, two directed edges each *)
  check_int "four directed edges" 4 (List.length edges);
  check_bool "all ebgp single-hop" true
    (List.for_all (fun (e : Session.edge) -> e.ebgp && not e.multihop) edges);
  check_bool "a->b exists" true
    (Stable_state.edge_from state ~recv_host:"b" ~send_ip:(ip "192.168.0.1") <> None);
  check_bool "no a->c" true
    (Stable_state.edge_from state ~recv_host:"c" ~send_ip:(ip "192.168.0.1") = None)

let test_session_requires_reciprocal_config () =
  (* remove b's neighbor statement toward a: no session *)
  let devices =
    List.map
      (fun (d : Device.t) ->
        if d.hostname <> "b" then d
        else
          match d.bgp with
          | None -> d
          | Some b ->
              {
                d with
                bgp =
                  Some
                    {
                      b with
                      Device.neighbors =
                        List.filter
                          (fun (n : Device.neighbor) ->
                            not (Ipv4.equal n.nb_ip (ip "192.168.0.1")))
                          b.neighbors;
                    };
              })
      (Testnet.chain ())
  in
  let state = Testnet.state_of devices in
  check_int "only b-c edges" 2 (List.length (Stable_state.edges state))

let test_session_requires_as_agreement () =
  (* c expects AS 65009 on b: session must not establish *)
  let devices =
    List.map
      (fun (d : Device.t) ->
        if d.hostname <> "c" then d
        else
          match d.bgp with
          | None -> d
          | Some b ->
              {
                d with
                bgp =
                  Some
                    {
                      b with
                      Device.neighbors =
                        List.map
                          (fun (n : Device.neighbor) -> { n with nb_remote_as = 65009 })
                          b.neighbors;
                    };
              })
      (Testnet.chain ())
  in
  let state = Testnet.state_of devices in
  check_int "only a-b edges" 2 (List.length (Stable_state.edges state))

let test_multihop_ibgp_sessions () =
  let state = Testnet.state_of (Testnet.diamond ()) in
  let edges = Stable_state.edges state in
  check_int "full mesh directed" 12 (List.length edges);
  check_bool "ibgp" true (List.for_all (fun (e : Session.edge) -> not e.ebgp) edges);
  (* a-d is not directly connected *)
  check_bool "a-d multihop" true
    (match Stable_state.edge_from state ~recv_host:"d" ~send_ip:(ip "172.20.0.1") with
    | Some e -> e.multihop
    | None -> false)

(* ---------------- propagation ---------------- *)

let test_chain_propagation () =
  let state = Testnet.state_of (Testnet.chain ()) in
  (* c learns a's LAN with the full AS path *)
  let entries = Stable_state.bgp_lookup_best state "c" (p "10.10.0.0/24") in
  check_int "one best at c" 1 (List.length entries);
  let e = List.hd entries in
  Alcotest.(check (list int)) "as path" [ 65002; 65001 ]
    (As_path.to_list e.Rib.be_route.Route.as_path);
  check_bool "next hop is b" true
    (Ipv4.equal e.Rib.be_route.Route.next_hop (ip "192.168.0.5"));
  (* and it is installed in the main RIB *)
  let mains = Stable_state.main_lookup state "c" (p "10.10.0.0/24") in
  check_int "installed" 1 (List.length mains);
  check_bool "protocol bgp" true ((List.hd mains).Rib.me_protocol = Route.Bgp)

let test_loop_prevention () =
  (* b must not accept 10.10.0.0/24 back from c *)
  let state = Testnet.state_of (Testnet.chain ()) in
  let entries = Stable_state.bgp_lookup state "b" (p "10.10.0.0/24") in
  check_int "single source at b" 1 (List.length entries);
  check_bool "learned from a" true
    (match (List.hd entries).Rib.be_source with
    | Rib.Learned sender -> Ipv4.equal sender (ip "192.168.0.1")
    | _ -> false)

let test_ibgp_propagation_and_nhs () =
  let state = Testnet.state_of (Testnet.diamond ()) in
  (* d learns a's network over iBGP with next-hop-self = a's loopback *)
  let entries = Stable_state.bgp_lookup_best state "d" (p "10.50.0.0/24") in
  check_int "one best" 1 (List.length entries);
  let e = List.hd entries in
  check_bool "nh is a's loopback" true
    (Ipv4.equal e.Rib.be_route.Route.next_hop (ip "172.20.0.1"));
  check_bool "empty as path (ibgp)" true
    (As_path.length e.Rib.be_route.Route.as_path = 0);
  (* installed and resolvable via IGP *)
  check_bool "reaches lan" true
    (Stable_state.reachable state ~src:"d" ~dst:(ip "10.50.0.1"))

let test_no_ibgp_reflection () =
  (* b learns a's route via iBGP; it must not re-advertise it to c or d *)
  let state = Testnet.state_of (Testnet.diamond ()) in
  List.iter
    (fun host ->
      let entries = Stable_state.bgp_lookup state host (p "10.50.0.0/24") in
      check_int (host ^ " has exactly one path") 1 (List.length entries);
      check_bool (host ^ " learned from a") true
        (match (List.hd entries).Rib.be_source with
        | Rib.Learned sender -> Ipv4.equal sender (ip "172.20.0.1")
        | _ -> false))
    [ "b"; "c"; "d" ]

let test_best_path_local_pref () =
  (* two routes for the same prefix: higher local-pref wins regardless of
     AS path length *)
  let mk lp len peer =
    {
      Rib.be_route =
        {
          Route.prefix = p "9.9.9.0/24";
          next_hop = ip peer;
          as_path = As_path.of_list (List.init len (fun i -> 100 + i));
          local_pref = lp;
          med = 0;
          communities = Community.Set.empty;
          origin = Route.Origin_igp;
    cluster_len = 0;
        };
      be_source = Rib.Learned (ip peer);
      be_from_ebgp = true;
      be_igp_cost = 0;
      be_peer_id = ip peer;
      be_best = false;
    }
  in
  let low = mk 80 1 "1.1.1.1" and high = mk 120 5 "2.2.2.2" in
  check_bool "high lp preferred" true (Bgp.preference_compare high low < 0);
  let short = mk 100 1 "1.1.1.1" and long = mk 100 3 "2.2.2.2" in
  check_bool "short path preferred" true (Bgp.preference_compare short long < 0);
  let ebgp = mk 100 2 "1.1.1.1" in
  let ibgp = { (mk 100 2 "2.2.2.2") with Rib.be_from_ebgp = false } in
  check_bool "ebgp over ibgp" true (Bgp.preference_compare ebgp ibgp < 0)

let test_ecmp_multipath () =
  let state = Testnet.state_of (Testnet.diamond ~multipath:4 ()) in
  (* d has two equal-cost IGP paths to a's loopback; the BGP route via
     next-hop a resolves over both. Main RIB should still be a single
     BGP entry (one next hop), but IGP destinations get 2 entries. *)
  let igp_entries = Stable_state.igp_lookup state "d" (p "172.20.0.1/32") in
  check_int "two igp paths" 2 (List.length igp_entries)

let test_convergence_deterministic () =
  let s1 = Testnet.state_of (Testnet.diamond ()) in
  let s2 = Testnet.state_of (Testnet.diamond ()) in
  check_int "same rounds" (Stable_state.rounds s1) (Stable_state.rounds s2);
  check_int "same entries" (Stable_state.total_main_entries s1)
    (Stable_state.total_main_entries s2)

(* ---------------- export/import simulation primitives ---------------- *)

let test_export_import_roundtrip () =
  let devices = Testnet.chain () in
  let state = Testnet.state_of devices in
  let find_device h = Stable_state.find_device state h in
  let edge =
    Option.get (Stable_state.edge_from state ~recv_host:"c" ~send_ip:(ip "192.168.0.5"))
  in
  let origin = List.hd (Stable_state.bgp_lookup_best state "b" (p "10.10.0.0/24")) in
  match Bgp.export_route find_device edge origin with
  | None, _ -> Alcotest.fail "export refused"
  | Some msg, _ -> (
      check_bool "as prepended" true (As_path.head msg.Route.as_path = Some 65002);
      match Bgp.import_route find_device edge msg with
      | None, _ -> Alcotest.fail "import refused"
      | Some r, _ ->
          let installed = List.hd (Stable_state.bgp_lookup_best state "c" (p "10.10.0.0/24")) in
          check_bool "reproduces stable state" true
            (Route.equal_bgp r installed.Rib.be_route))

let test_no_export_community () =
  let devices = Testnet.chain () in
  let state = Testnet.state_of devices in
  let find_device h = Stable_state.find_device state h in
  let edge =
    Option.get (Stable_state.edge_from state ~recv_host:"c" ~send_ip:(ip "192.168.0.5"))
  in
  let origin = List.hd (Stable_state.bgp_lookup_best state "b" (p "10.10.0.0/24")) in
  let tagged =
    {
      origin with
      Rib.be_route = Route.add_community origin.Rib.be_route Community.no_export;
    }
  in
  check_bool "no-export blocks ebgp export" true
    (fst (Bgp.export_route find_device edge tagged) = None)

let () =
  Alcotest.run "simulator"
    [
      ( "topology",
        [ Alcotest.test_case "adjacency" `Quick test_topology_adjacency ] );
      ("igp", [ Alcotest.test_case "costs and ecmp" `Quick test_igp_costs ]);
      ( "sessions",
        [
          Alcotest.test_case "chain" `Quick test_sessions_chain;
          Alcotest.test_case "reciprocal config required" `Quick
            test_session_requires_reciprocal_config;
          Alcotest.test_case "AS agreement required" `Quick
            test_session_requires_as_agreement;
          Alcotest.test_case "multihop iBGP" `Quick test_multihop_ibgp_sessions;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "chain propagation" `Quick test_chain_propagation;
          Alcotest.test_case "loop prevention" `Quick test_loop_prevention;
          Alcotest.test_case "iBGP next-hop-self" `Quick test_ibgp_propagation_and_nhs;
          Alcotest.test_case "no iBGP reflection" `Quick test_no_ibgp_reflection;
          Alcotest.test_case "best path selection" `Quick test_best_path_local_pref;
          Alcotest.test_case "ECMP" `Quick test_ecmp_multipath;
          Alcotest.test_case "deterministic" `Quick test_convergence_deterministic;
        ] );
      ( "targeted-simulation",
        [
          Alcotest.test_case "export/import roundtrip" `Quick
            test_export_import_roundtrip;
          Alcotest.test_case "no-export community" `Quick test_no_export_community;
        ] );
    ]
