(* BGP aggregation semantics: activation, attribute shape, summary-only
   suppression, and the aggregate's IFG derivation. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

(* a (AS 65001, two LANs 10.20.{0,1}.0/24, aggregate 10.20.0.0/16
   optionally summary-only) --- b (AS 65002) --- c (AS 65003) *)
let network ~summary_only =
  let open Testnet in
  let a =
    Device.make
      ~interfaces:
        [
          Device.interface ~address:(ip "192.168.0.1", 30) "eth0";
          Device.interface ~address:(ip "10.20.0.1", 24) "lan0";
          Device.interface ~address:(ip "10.20.1.1", 24) "lan1";
        ]
      ~bgp:
        (bgp ~local_as:65001 ~router_id:"1.1.1.1"
           ~networks:[ "10.20.0.0/24"; "10.20.1.0/24" ]
           ~aggregates:[ { Device.ag_prefix = p "10.20.0.0/16"; ag_summary_only = summary_only } ]
           [ neighbor ~remote_as:65002 "192.168.0.2" ])
      "a"
  in
  let b =
    Device.make
      ~interfaces:
        [
          Device.interface ~address:(ip "192.168.0.2", 30) "eth0";
          Device.interface ~address:(ip "192.168.0.5", 30) "eth1";
        ]
      ~bgp:
        (bgp ~local_as:65002 ~router_id:"2.2.2.2"
           [
             neighbor ~remote_as:65001 "192.168.0.1";
             neighbor ~remote_as:65003 "192.168.0.6";
           ])
      "b"
  in
  let c =
    Device.make
      ~interfaces:[ Device.interface ~address:(ip "192.168.0.6", 30) "eth0" ]
      ~bgp:
        (bgp ~local_as:65003 ~router_id:"3.3.3.3"
           [ neighbor ~remote_as:65002 "192.168.0.5" ])
      "c"
  in
  Testnet.state_of [ a; b; c ]

let test_aggregate_active () =
  let state = network ~summary_only:false in
  let agg = Stable_state.bgp_lookup_best state "a" (p "10.20.0.0/16") in
  check_int "aggregate present" 1 (List.length agg);
  let e = List.hd agg in
  check_bool "from aggregate" true (e.Rib.be_source = Rib.From_aggregate);
  check_bool "origin incomplete" true
    (e.Rib.be_route.Route.origin = Route.Origin_incomplete)

let test_aggregate_inactive_without_contributor () =
  (* no network statements: the aggregate must not activate *)
  let open Testnet in
  let a =
    Device.make
      ~interfaces:[ Device.interface ~address:(ip "192.168.0.1", 30) "eth0" ]
      ~bgp:
        (bgp ~local_as:65001 ~router_id:"1.1.1.1"
           ~aggregates:[ { Device.ag_prefix = p "10.20.0.0/16"; ag_summary_only = false } ]
           [ neighbor ~remote_as:65002 "192.168.0.2" ])
      "a"
  in
  let b =
    Device.make
      ~interfaces:[ Device.interface ~address:(ip "192.168.0.2", 30) "eth0" ]
      ~bgp:
        (bgp ~local_as:65002 ~router_id:"2.2.2.2"
           [ neighbor ~remote_as:65001 "192.168.0.1" ])
      "b"
  in
  let state = Testnet.state_of [ a; b ] in
  check_int "inactive" 0
    (List.length (Stable_state.bgp_lookup state "a" (p "10.20.0.0/16")))

let test_no_summary_exports_specifics () =
  let state = network ~summary_only:false in
  check_bool "aggregate at c" true
    (Stable_state.main_lookup state "c" (p "10.20.0.0/16") <> []);
  check_bool "specific at c" true
    (Stable_state.main_lookup state "c" (p "10.20.0.0/24") <> [])

let test_summary_only_suppresses_specifics () =
  let state = network ~summary_only:true in
  check_bool "aggregate at c" true
    (Stable_state.main_lookup state "c" (p "10.20.0.0/16") <> []);
  check_bool "specific suppressed at b" true
    (Stable_state.main_lookup state "b" (p "10.20.0.0/24") = []);
  check_bool "specific suppressed at c" true
    (Stable_state.main_lookup state "c" (p "10.20.0.0/24") = [])

let test_aggregate_coverage_disjunction () =
  (* Testing the aggregate at c: the two contributing /24s are
     alternatives, so each contributor's private elements are weak; the
     aggregate statement and the transport chain are strong. *)
  let state = network ~summary_only:true in
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup state "c" (p "10.20.0.0/16"))
  in
  check_bool "tested nonempty" true (tested <> []);
  let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
  let reg = Stable_state.registry state in
  let status host key =
    Coverage.element_status report.Netcov.coverage
      (Option.get (Registry.find reg ~device:host key))
  in
  check_bool "aggregate statement strong" true
    (status "a" (Element.key Element.Bgp_aggregate "10.20.0.0/16") = Coverage.Strong);
  check_bool "lan0 weak" true
    (status "a" (Element.key Element.Interface "lan0") = Coverage.Weak);
  check_bool "lan1 weak" true
    (status "a" (Element.key Element.Interface "lan1") = Coverage.Weak);
  check_bool "network stmt weak" true
    (status "a" (Element.key Element.Bgp_network "10.20.0.0/24") = Coverage.Weak);
  check_bool "transport peering strong" true
    (status "b" (Element.key Element.Bgp_peer "192.168.0.1") = Coverage.Strong)

let test_aggregate_mutation_agrees () =
  (* deleting one contributor keeps the aggregate alive (weak); deleting
     the aggregate statement kills it (strong) *)
  let open Testnet in
  let devices =
    [
      Device.make
        ~interfaces:
          [
            Device.interface ~address:(ip "192.168.0.1", 30) "eth0";
            Device.interface ~address:(ip "10.20.0.1", 24) "lan0";
            Device.interface ~address:(ip "10.20.1.1", 24) "lan1";
          ]
        ~bgp:
          (bgp ~local_as:65001 ~router_id:"1.1.1.1"
             ~networks:[ "10.20.0.0/24"; "10.20.1.0/24" ]
             ~aggregates:
               [ { Device.ag_prefix = p "10.20.0.0/16"; ag_summary_only = true } ]
             [ neighbor ~remote_as:65002 "192.168.0.2" ])
        "a";
      Device.make
        ~interfaces:[ Device.interface ~address:(ip "192.168.0.2", 30) "eth0" ]
        ~bgp:
          (bgp ~local_as:65002 ~router_id:"2.2.2.2"
             [ neighbor ~remote_as:65001 "192.168.0.1" ])
        "b";
    ]
  in
  let reg = Registry.build devices in
  let state = Stable_state.compute reg in
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "b"; entry })
      (Stable_state.main_lookup state "b" (p "10.20.0.0/16"))
  in
  let find key = Option.get (Registry.find reg ~device:"a" key) in
  let r =
    Mutation.run reg ~oracle:(Mutation.facts_oracle tested)
      ~elements:
        [
          find (Element.key Element.Bgp_aggregate "10.20.0.0/16");
          find (Element.key Element.Bgp_network "10.20.0.0/24");
        ]
      ()
  in
  check_bool "aggregate statement killed" true
    (Element.Id_set.mem
       (find (Element.key Element.Bgp_aggregate "10.20.0.0/16"))
       r.Mutation.killed);
  check_bool "single contributor survives" true
    (Element.Id_set.mem
       (find (Element.key Element.Bgp_network "10.20.0.0/24"))
       r.Mutation.survived)

let () =
  Alcotest.run "aggregate"
    [
      ( "semantics",
        [
          Alcotest.test_case "activation" `Quick test_aggregate_active;
          Alcotest.test_case "inactive without contributor" `Quick
            test_aggregate_inactive_without_contributor;
          Alcotest.test_case "specifics exported by default" `Quick
            test_no_summary_exports_specifics;
          Alcotest.test_case "summary-only suppression" `Quick
            test_summary_only_suppresses_specifics;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "disjunctive contributors" `Quick
            test_aggregate_coverage_disjunction;
          Alcotest.test_case "mutation agrees" `Quick test_aggregate_mutation_agrees;
        ] );
    ]
