(* Failure injection: interface/link failures and their effect on the
   stable state, on test outcomes, and on coverage (what-if analysis). *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ip = Ipv4.of_string
let p = Prefix.of_string

let test_down_interface_kills_session () =
  let reg = Registry.build (Testnet.chain ()) in
  let baseline = Stable_state.compute reg in
  check_int "baseline edges" 4 (List.length (Stable_state.edges baseline));
  let state = Stable_state.compute ~down:[ ("b", "eth1") ] reg in
  (* b-c session gone, a-b survives *)
  check_int "edges after failure" 2 (List.length (Stable_state.edges state));
  check_bool "c loses the route" true
    (Stable_state.main_lookup state "c" (p "10.10.0.0/24") = []);
  check_bool "b keeps the route" true
    (Stable_state.main_lookup state "b" (p "10.10.0.0/24") <> [])

let test_down_does_not_change_coverage_domain () =
  let reg = Registry.build (Testnet.chain ()) in
  let state = Stable_state.compute ~down:[ ("b", "eth1") ] reg in
  (* the registry still contains the failed interface's element/lines *)
  check_bool "element still registered" true
    (Registry.find reg ~device:"b" (Element.key Element.Interface "eth1") <> None);
  check_bool "considered lines unchanged" true
    (Registry.considered_lines (Stable_state.registry state)
    = Registry.considered_lines reg)

let test_igp_reroute_on_failure () =
  let reg = Registry.build (Testnet.diamond ()) in
  let baseline = Stable_state.compute reg in
  (* kill the a-b link: traffic a->d must go via c *)
  let state = Stable_state.compute ~down:[ ("a", "eth0"); ("b", "eth0") ] reg in
  check_bool "still reachable" true
    (Stable_state.reachable state ~src:"a" ~dst:(ip "172.20.0.4"));
  let mid paths =
    List.concat_map
      (fun (q : Forward.path) ->
        if q.reached then
          List.filteri (fun i _ -> i = 1) q.hops
          |> List.map (fun (h : Forward.hop) -> h.hop_host)
        else [])
      paths
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "baseline uses b or c" [ "b"; "c" ]
    (mid (Stable_state.trace baseline ~src:"a" ~dst:(ip "172.20.0.4")));
  Alcotest.(check (list string)) "failure forces c" [ "c" ]
    (mid (Stable_state.trace state ~src:"a" ~dst:(ip "172.20.0.4")))

let test_failure_shifts_coverage () =
  (* testing the same fact pre/post failure covers different interfaces *)
  let reg = Registry.build (Testnet.diamond ()) in
  let covered state =
    let tested =
      List.map
        (fun entry -> Fact.F_main_rib { host = "d"; entry })
        (Stable_state.main_lookup state "d" (p "10.50.0.0/24"))
    in
    let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
    Coverage.covered_elements report.Netcov.coverage
  in
  let baseline = covered (Stable_state.compute reg) in
  let failed = covered (Stable_state.compute ~down:[ ("a", "eth0"); ("b", "eth0") ] reg) in
  check_bool "coverage differs under failure" false
    (Element.Id_set.equal baseline failed)

let test_whatif_union () =
  let ft = Netcov_workloads.Fattree.generate ~k:4 () in
  let reg = Registry.build ft.Netcov_workloads.Fattree.devices in
  let state = Stable_state.compute reg in
  let suite = [ Datacenter.default_route_check ft ] in
  let result = Whatif.run ~max_scenarios:6 state suite in
  check_int "six scenarios" 6 (List.length result.Whatif.scenarios);
  (* union coverage dominates the baseline *)
  let b = Coverage.covered_elements result.Whatif.baseline in
  let u = Coverage.covered_elements result.Whatif.union in
  check_bool "union superset" true (Element.Id_set.subset b u);
  (* the suite still passes under single link failures (ECMP redundancy) *)
  List.iter
    (fun (s : Whatif.scenario) ->
      check_bool "default survives single failure" true s.tests_passed)
    result.Whatif.scenarios

let test_whatif_strict_gain_without_ecmp () =
  (* with ECMP disabled, backup links are exercised only under failures *)
  let ft = Netcov_workloads.Fattree.generate ~k:4 ~multipath:1 () in
  let reg = Registry.build ft.Netcov_workloads.Fattree.devices in
  let state = Stable_state.compute reg in
  let suite = [ Datacenter.default_route_check ft; Datacenter.tor_pingmesh ft ] in
  let result = Whatif.run state suite in
  check_bool "failures reveal new coverage" true
    (not (Element.Id_set.is_empty (Whatif.failure_only result)))

let test_whatif_internal_links () =
  let ft = Netcov_workloads.Fattree.generate ~k:4 () in
  let reg = Registry.build ft.Netcov_workloads.Fattree.devices in
  let state = Stable_state.compute reg in
  (* k=4: 16 leaf-agg + 16 agg-spine internal links (WAN links touch
     external stubs and are excluded) *)
  check_int "internal links" 32 (List.length (Whatif.internal_links state))

let test_total_partition_fails_tests () =
  (* failing every uplink of one leaf makes DefaultRouteCheck fail there *)
  let ft = Netcov_workloads.Fattree.generate ~k:4 () in
  let reg = Registry.build ft.Netcov_workloads.Fattree.devices in
  let leaf = List.hd ft.Netcov_workloads.Fattree.leaves in
  let d = Registry.device reg leaf in
  let downs =
    List.filter_map
      (fun (i : Device.interface) ->
        if
          i.address <> None
          && String.length i.if_name >= 8
          && String.sub i.if_name 0 8 = "Ethernet"
        then Some (leaf, i.if_name)
        else None)
      d.Device.interfaces
  in
  let state = Stable_state.compute ~down:downs reg in
  let t = Datacenter.default_route_check ft in
  let r = t.Nettest.run state in
  check_bool "check fails when partitioned" false (Nettest.passed r.Nettest.outcome)

let () =
  Alcotest.run "failure"
    [
      ( "injection",
        [
          Alcotest.test_case "down kills session" `Quick test_down_interface_kills_session;
          Alcotest.test_case "coverage domain unchanged" `Quick
            test_down_does_not_change_coverage_domain;
          Alcotest.test_case "igp reroute" `Quick test_igp_reroute_on_failure;
          Alcotest.test_case "coverage shifts" `Quick test_failure_shifts_coverage;
        ] );
      ( "whatif",
        [
          Alcotest.test_case "union dominates" `Slow test_whatif_union;
          Alcotest.test_case "strict gain without ecmp" `Slow
            test_whatif_strict_gain_without_ecmp;
          Alcotest.test_case "internal links" `Quick test_whatif_internal_links;
          Alcotest.test_case "partition fails tests" `Quick
            test_total_partition_fails_tests;
        ] );
    ]
