open Netcov_types

let check_bool = Alcotest.(check bool)

let m pat path = As_regex.matches (As_regex.compile pat) (As_path.of_list path)

let test_literal () =
  check_bool "mid" true (m "174" [ 100; 174; 200 ]);
  check_bool "absent" false (m "174" [ 100; 200 ]);
  check_bool "no substring match on numbers" false (m "17" [ 174 ])

let test_anchors () =
  check_bool "start hit" true (m "^100" [ 100; 200 ]);
  check_bool "start miss" false (m "^200" [ 100; 200 ]);
  check_bool "end hit" true (m "200$" [ 100; 200 ]);
  check_bool "end miss" false (m "100$" [ 100; 200 ]);
  check_bool "exact" true (m "^100 200$" [ 100; 200 ]);
  check_bool "exact miss" false (m "^100 200$" [ 100; 200; 300 ])

let test_boundary () =
  check_bool "_174_" true (m "_174_" [ 1; 174; 2 ]);
  check_bool "_174_ at start" true (m "_174_" [ 174; 2 ]);
  check_bool "_174_ at end" true (m "_174_" [ 1; 174 ]);
  check_bool "_174_ absent" false (m "_174_" [ 1744; 17 ])

let test_any_star () =
  check_bool "dot" true (m "^." [ 42 ]);
  check_bool "dot empty" false (m "^.$" []);
  check_bool ".* everything" true (m ".*" [ 1; 2; 3 ]);
  check_bool ".* empty" true (m ".*" []);
  check_bool "trailing" true (m "^100 .* 300$" [ 100; 250; 260; 300 ]);
  check_bool "trailing zero" true (m "^100 .* 300$" [ 100; 300 ])

let test_alt_opt_plus () =
  check_bool "alt left" true (m "^(100|200)$" [ 100 ]);
  check_bool "alt right" true (m "^(100|200)$" [ 200 ]);
  check_bool "alt miss" false (m "^(100|200)$" [ 300 ]);
  check_bool "opt present" true (m "^100 200?$" [ 100; 200 ]);
  check_bool "opt absent" true (m "^100 200?$" [ 100 ]);
  check_bool "plus one" true (m "^100+$" [ 100 ]);
  check_bool "plus many" true (m "^100+$" [ 100; 100; 100 ]);
  check_bool "plus zero" false (m "^100+$" [])

let test_prepend_detection () =
  (* typical policy pattern: detect AS prepending *)
  check_bool "prepended" true (m "_65000 65000_" [ 1; 65000; 65000; 9 ]);
  check_bool "single" false (m "_65000 65000_" [ 1; 65000; 9 ])

let test_syntax_errors () =
  List.iter
    (fun pat -> check_bool pat true (As_regex.compile_opt pat = None))
    [ "("; ")"; "(100"; "100)"; "abc"; "1|"; "*" ]

let test_source_preserved () =
  Alcotest.(check string) "source" "_174_" (As_regex.source (As_regex.compile "_174_"))

let gen_path = QCheck.(small_list (int_bound 70000))

let prop_literal_mem =
  QCheck.Test.make ~name:"_N_ matches iff N in path" ~count:300
    QCheck.(pair (int_bound 70000) gen_path)
    (fun (n, path) ->
      m (Printf.sprintf "_%d_" n) path = List.mem n path)

let prop_exact_self =
  QCheck.Test.make ~name:"^path$ matches itself" ~count:300 gen_path (fun path ->
      let pat =
        "^" ^ String.concat " " (List.map string_of_int path) ^ "$"
      in
      m pat path)

let () =
  Alcotest.run "as_regex"
    [
      ( "unit",
        [
          Alcotest.test_case "literal" `Quick test_literal;
          Alcotest.test_case "anchors" `Quick test_anchors;
          Alcotest.test_case "boundary" `Quick test_boundary;
          Alcotest.test_case "any and star" `Quick test_any_star;
          Alcotest.test_case "alt opt plus" `Quick test_alt_opt_plus;
          Alcotest.test_case "prepend detection" `Quick test_prepend_detection;
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
          Alcotest.test_case "source preserved" `Quick test_source_preserved;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_literal_mem; prop_exact_self ]
      );
    ]
