(* Integration test reproducing the paper's Figure 1/2 example: two
   routers, R2 originates its interface prefix via a BGP network
   statement, R1 imports it through a policy that also contains an
   unexercised deny clause. Testing R1's RIB entry for 10.10.1.0/24 must
   cover exactly the elements the paper highlights, and leave the
   export policy R1-to-R2 and the unexercised clause uncovered. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let ip = Ipv4.of_string
let p = Prefix.of_string

let r1 =
  Device.make
    ~interfaces:[ Device.interface ~address:(ip "192.168.1.1", 30) "eth0" ]
    ~policies:
      [
        {
          Policy_ast.pol_name = "R2-to-R1";
          terms =
            [
              {
                term_name = "block";
                matches = [ Policy_ast.Match_prefix (p "10.10.2.0/24", Policy_ast.Exact) ];
                actions = [ Policy_ast.Reject ];
              };
              {
                term_name = "prefer";
                matches = [ Policy_ast.Match_prefix (p "10.10.1.0/24", Policy_ast.Exact) ];
                actions = [ Policy_ast.Set_local_pref 120; Policy_ast.Accept ];
              };
            ];
        };
        {
          Policy_ast.pol_name = "R1-to-R2";
          terms =
            [
              {
                term_name = "export-nothing";
                matches = [];
                actions = [ Policy_ast.Reject ];
              };
            ];
        };
      ]
    ~bgp:
      {
        Device.local_as = 65001;
        router_id = ip "192.168.1.1";
        networks = [];
        aggregates = [];
        redistributes = [];
        groups = [];
        neighbors =
          [
            {
              Device.nb_ip = ip "192.168.1.2";
              nb_remote_as = 65002;
              nb_group = None;
              nb_import = [ "R2-to-R1" ];
              nb_export = [ "R1-to-R2" ];
              nb_local_addr = None;
              nb_next_hop_self = false;
              nb_rr_client = false;
              nb_description = None;
            };
          ];
        multipath = 1;
      }
    "r1"

let r2 =
  Device.make
    ~interfaces:
      [
        Device.interface ~address:(ip "192.168.1.2", 30) "eth0";
        Device.interface ~address:(ip "10.10.1.1", 24) "eth1";
      ]
    ~bgp:
      {
        Device.local_as = 65002;
        router_id = ip "192.168.1.2";
        networks = [ p "10.10.1.0/24" ];
        aggregates = [];
        redistributes = [];
        groups = [];
        neighbors =
          [
            {
              Device.nb_ip = ip "192.168.1.1";
              nb_remote_as = 65001;
              nb_group = None;
              nb_import = [];
              nb_export = [];
              nb_local_addr = None;
              nb_next_hop_self = false;
              nb_rr_client = false;
              nb_description = None;
            };
          ];
        multipath = 1;
      }
    "r2"

let state = lazy (Testnet.state_of [ r1; r2 ])

let analyze () =
  let state = Lazy.force state in
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "r1"; entry })
      (Stable_state.main_lookup state "r1" (p "10.10.1.0/24"))
  in
  check_bool "route present at r1" true (tested <> []);
  (state, Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] })

let status state cov host key =
  let reg = Stable_state.registry state in
  match Registry.find reg ~device:host key with
  | None -> Alcotest.failf "missing element %s" host
  | Some id -> Coverage.element_status cov id

let test_route_arrives () =
  let state = Lazy.force state in
  let entries = Stable_state.bgp_lookup_best state "r1" (p "10.10.1.0/24") in
  check_bool "learned" true (entries <> []);
  Alcotest.(check int) "import policy applied" 120
    (List.hd entries).Rib.be_route.Route.local_pref

let test_covered_elements () =
  let state, report = analyze () in
  let cov = report.Netcov.coverage in
  let strong host key =
    check_bool
      (Format.asprintf "%s %a strong" host Element.pp_key key)
      true
      (status state cov host key = Coverage.Strong)
  in
  (* R1 side: interface, peering, the exercised import clause *)
  strong "r1" (Element.key Element.Interface "eth0");
  strong "r1" (Element.key Element.Bgp_peer "192.168.1.2");
  strong "r1" (Element.key Element.Route_policy_clause "R2-to-R1/prefer");
  (* R2 side: both interfaces, peering, network statement *)
  strong "r2" (Element.key Element.Interface "eth0");
  strong "r2" (Element.key Element.Interface "eth1");
  strong "r2" (Element.key Element.Bgp_peer "192.168.1.1");
  strong "r2" (Element.key Element.Bgp_network "10.10.1.0/24")

let test_uncovered_elements () =
  let state, report = analyze () in
  let cov = report.Netcov.coverage in
  let uncovered host key =
    check_bool
      (Format.asprintf "%s %a uncovered" host Element.pp_key key)
      true
      (status state cov host key = Coverage.Not_covered)
  in
  (* the unexercised deny clause and the whole export policy *)
  uncovered "r1" (Element.key Element.Route_policy_clause "R2-to-R1/block");
  uncovered "r1" (Element.key Element.Route_policy_clause "R1-to-R2/export-nothing")

let test_line_coverage_sane () =
  let _, report = analyze () in
  let s = Coverage.line_stats report.Netcov.coverage in
  check_bool "partial coverage" true
    (Coverage.covered_lines s > 0 && Coverage.covered_lines s < s.Coverage.considered)

let test_lcov_output () =
  let _, report = analyze () in
  let text = Lcov.report report.Netcov.coverage in
  check_bool "has r1 record" true
    (Astring_like.contains text "SF:configs/r1.cfg");
  check_bool "has DA lines" true (Astring_like.contains text "DA:");
  check_bool "has end marker" true (Astring_like.contains text "end_of_record");
  let table = Lcov.file_table report.Netcov.coverage in
  check_bool "table mentions both" true
    (Astring_like.contains table "r1" && Astring_like.contains table "r2");
  let annotated = Lcov.annotate report.Netcov.coverage "r1" in
  check_bool "annotation markers" true
    (Astring_like.contains annotated "+" && Astring_like.contains annotated "-")

let () =
  Alcotest.run "figure1"
    [
      ( "paper example",
        [
          Alcotest.test_case "route arrives with policy applied" `Quick test_route_arrives;
          Alcotest.test_case "covered elements" `Quick test_covered_elements;
          Alcotest.test_case "uncovered elements" `Quick test_uncovered_elements;
          Alcotest.test_case "line coverage sane" `Quick test_line_coverage_sane;
          Alcotest.test_case "lcov output" `Quick test_lcov_output;
        ] );
    ]
