(* Coverage accounting unit tests: status lattice, merge, line and
   bucket aggregation on a controlled fixture. *)
open Netcov_config
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let reg = lazy (Registry.build (Testnet.chain ()))

let ids_of_type et =
  Registry.fold_elements (Lazy.force reg)
    (fun acc e -> if Element.etype_of e = et then e.Element.id :: acc else acc)
    []

let set = Element.Id_set.of_list

let test_of_sets_strong_wins () =
  let reg = Lazy.force reg in
  let ids = ids_of_type Element.Interface in
  match ids with
  | a :: b :: _ ->
      let cov =
        Coverage.of_sets reg ~strong:(set [ a ]) ~weak:(set [ a; b ])
      in
      check_bool "strong wins" true (Coverage.element_status cov a = Coverage.Strong);
      check_bool "weak kept" true (Coverage.element_status cov b = Coverage.Weak)
  | _ -> Alcotest.fail "need two interfaces"

let test_merge_lattice () =
  let reg = Lazy.force reg in
  match ids_of_type Element.Interface with
  | a :: b :: c :: _ ->
      let c1 = Coverage.of_sets reg ~strong:(set [ a ]) ~weak:(set [ b ]) in
      let c2 = Coverage.of_sets reg ~strong:(set [ b ]) ~weak:(set [ c ]) in
      let m = Coverage.merge c1 c2 in
      check_bool "a strong" true (Coverage.element_status m a = Coverage.Strong);
      check_bool "b upgraded" true (Coverage.element_status m b = Coverage.Strong);
      check_bool "c weak" true (Coverage.element_status m c = Coverage.Weak);
      (* merge never downgrades: merging with empty is identity *)
      let empty = Coverage.empty reg in
      check_bool "identity" true
        (Coverage.covered_elements (Coverage.merge c1 empty)
        = Coverage.covered_elements c1)
  | _ -> Alcotest.fail "need three interfaces"

let test_line_stats_add_up () =
  let reg = Lazy.force reg in
  let all =
    Registry.fold_elements reg (fun acc e -> e.Element.id :: acc) []
  in
  let cov = Coverage.of_sets reg ~strong:(set all) ~weak:Element.Id_set.empty in
  let s = Coverage.line_stats cov in
  check_int "all considered lines covered" s.Coverage.considered
    (Coverage.covered_lines s);
  check_int "considered matches registry" (Registry.considered_lines reg)
    s.Coverage.considered;
  check_int "total matches registry" (Registry.total_lines reg) s.Coverage.total;
  check_bool "100 percent" true (Coverage.pct s > 99.9)

let test_device_stats_partition () =
  let reg = Lazy.force reg in
  let cov = Coverage.empty reg in
  let per_device = Coverage.device_stats cov in
  check_int "three devices" 3 (List.length per_device);
  let sum =
    List.fold_left (fun acc (_, s) -> acc + s.Coverage.considered) 0 per_device
  in
  check_int "device considered sums to total" (Registry.considered_lines reg) sum

let test_bucket_stats_partition () =
  let reg = Lazy.force reg in
  let cov = Coverage.empty reg in
  let total_lines =
    List.fold_left
      (fun acc (_, (s : Coverage.type_stats)) -> acc + s.lines_total)
      0 (Coverage.bucket_stats cov)
  in
  (* every element-owned line belongs to exactly one bucket *)
  check_int "buckets partition considered lines" (Registry.considered_lines reg)
    total_lines;
  let total_elems =
    List.fold_left
      (fun acc (_, (s : Coverage.type_stats)) -> acc + s.elems_total)
      0 (Coverage.bucket_stats cov)
  in
  check_int "buckets partition elements" (Registry.n_elements reg) total_elems

let test_with_strong () =
  let reg = Lazy.force reg in
  let id = List.hd (ids_of_type Element.Bgp_peer) in
  let cov = Coverage.with_strong (Coverage.empty reg) [ id ] in
  check_bool "marked" true (Coverage.element_status cov id = Coverage.Strong);
  (* out-of-range ids are ignored, not fatal *)
  let cov2 = Coverage.with_strong cov [ max_int; -1 ] in
  check_bool "robust" true (Coverage.element_status cov2 id = Coverage.Strong)

let test_line_status_unconsidered () =
  let reg = Lazy.force reg in
  let cov = Coverage.empty reg in
  (* line 1 of the junos emit is the hostname comment: unconsidered *)
  check_bool "line 1 unconsidered" true (Coverage.line_status cov "a" 1 = None);
  check_bool "line 0 out of range" true (Coverage.line_status cov "a" 0 = None);
  check_bool "line beyond end" true (Coverage.line_status cov "a" 100000 = None)

let () =
  Alcotest.run "coverage"
    [
      ( "accounting",
        [
          Alcotest.test_case "of_sets strong wins" `Quick test_of_sets_strong_wins;
          Alcotest.test_case "merge lattice" `Quick test_merge_lattice;
          Alcotest.test_case "line stats add up" `Quick test_line_stats_add_up;
          Alcotest.test_case "device partition" `Quick test_device_stats_partition;
          Alcotest.test_case "bucket partition" `Quick test_bucket_stats_partition;
          Alcotest.test_case "with_strong" `Quick test_with_strong;
          Alcotest.test_case "line status bounds" `Quick test_line_status_unconsidered;
        ] );
    ]
