open Netcov_types
open Netcov_sim
open Netcov_core
open Netcov_dpcov

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let p = Prefix.of_string

let state = lazy (Testnet.state_of (Testnet.chain ()))

let test_empty () =
  let state = Lazy.force state in
  let d = Dpcov.of_tested state Netcov.no_tests in
  check_int "nothing tested" 0 d.Dpcov.tested_entries;
  check_bool "total positive" true (d.Dpcov.total_entries > 0);
  check_bool "pct zero" true (Dpcov.pct d = 0.)

let test_single_fact () =
  let state = Lazy.force state in
  let tested =
    {
      Netcov.dp_facts =
        List.map
          (fun entry -> Fact.F_main_rib { host = "c"; entry })
          (Stable_state.main_lookup state "c" (p "10.10.0.0/24"));
      cp_elements = [];
    }
  in
  let d = Dpcov.of_tested state tested in
  check_int "one entry" 1 d.Dpcov.tested_entries

let test_duplicates_counted_once () =
  let state = Lazy.force state in
  let facts =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup state "c" (p "10.10.0.0/24"))
  in
  let d =
    Dpcov.of_tested state { Netcov.dp_facts = facts @ facts; cp_elements = [] }
  in
  check_int "dedup" 1 d.Dpcov.tested_entries

let test_path_facts_count_hops () =
  let state = Lazy.force state in
  let dst = Ipv4.of_string "10.10.0.1" in
  let paths = Stable_state.trace state ~src:"c" ~dst in
  let facts =
    List.mapi (fun idx _ -> Fact.F_path { src = "c"; dst; idx }) paths
  in
  let d = Dpcov.of_tested state { Netcov.dp_facts = facts; cp_elements = [] } in
  (* the c->b->a path uses forwarding entries at c and b *)
  check_bool "hops counted" true (d.Dpcov.tested_entries >= 2)

let test_all_data_plane () =
  let state = Lazy.force state in
  let d = Dpcov.of_tested state (Dpcov.all_data_plane_tested state) in
  check_int "full coverage" d.Dpcov.total_entries d.Dpcov.tested_entries;
  check_bool "100%" true (Dpcov.pct d > 99.9)

let test_external_hosts_excluded () =
  (* externals' RIB entries count toward neither numerator nor denominator *)
  let net = Netcov_workloads.Internet2.generate Netcov_workloads.Internet2.test_params in
  let state = Stable_state.compute (Netcov_config.Registry.build net.devices) in
  let d = Dpcov.of_tested state (Dpcov.all_data_plane_tested state) in
  let internal_total =
    List.fold_left
      (fun acc h -> acc + Netcov_sim.Rib.table_count (Stable_state.main_rib state h))
      0 (Stable_state.internal_hosts state)
  in
  check_int "denominator internal only" internal_total d.Dpcov.total_entries

let () =
  Alcotest.run "dpcov"
    [
      ( "metric",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single fact" `Quick test_single_fact;
          Alcotest.test_case "duplicates" `Quick test_duplicates_counted_once;
          Alcotest.test_case "path hops" `Quick test_path_facts_count_hops;
          Alcotest.test_case "all data plane" `Quick test_all_data_plane;
          Alcotest.test_case "externals excluded" `Slow test_external_hosts_excluded;
        ] );
    ]
