open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let i2 = lazy (Internet2.generate Internet2.test_params)

let i2_state =
  lazy
    (Stable_state.compute
       (Netcov_config.Registry.build (Lazy.force i2).Internet2.devices))

let i2_results =
  lazy
    (let net = Lazy.force i2 in
     Nettest.run_suite (Lazy.force i2_state) (Iterations.improved_suite net))

let result name =
  let results = Lazy.force i2_results in
  List.find (fun ((t : Nettest.t), _) -> t.name = name) results

let pct_of state tested =
  let report = Netcov.analyze state tested in
  Coverage.pct (Coverage.line_stats report.Netcov.coverage)

let test_all_pass () =
  List.iter
    (fun ((t : Nettest.t), (r : Nettest.result)) ->
      check_bool (t.name ^ " passes") true (Nettest.passed r.outcome);
      check_bool (t.name ^ " ran checks") true (r.outcome.checks > 0))
    (Lazy.force i2_results)

let test_kinds () =
  let kind name = (fst (result name)).Nettest.kind in
  check_bool "bte control" true (kind "BlockToExternal" = Nettest.Control_plane);
  check_bool "martian control" true (kind "NoMartian" = Nettest.Control_plane);
  check_bool "rp data" true (kind "RoutePreference" = Nettest.Data_plane);
  check_bool "ir data" true (kind "InterfaceReachability" = Nettest.Data_plane)

let test_control_plane_tests_have_no_dp_facts () =
  List.iter
    (fun name ->
      let _, (r : Nettest.result) = result name in
      check_int (name ^ " dp facts") 0 (List.length r.tested.Netcov.dp_facts);
      check_bool (name ^ " cp elements") true (r.tested.Netcov.cp_elements <> []))
    [ "BlockToExternal"; "NoMartian"; "SanityIn"; "PeerSpecificRoute" ]

let test_route_preference_dominates_bagpipe () =
  let state = Lazy.force i2_state in
  let p name = pct_of state (snd (result name)).Nettest.tested in
  let bte = p "BlockToExternal" and nm = p "NoMartian" and rp = p "RoutePreference" in
  check_bool "bte small" true (bte < 5.);
  check_bool "nm small" true (nm < 8.);
  check_bool "rp dominates" true (rp > bte +. nm);
  check_bool "rp well below half" true (rp < 50.)

let test_suite_union_monotone () =
  let state = Lazy.force i2_state in
  let results = Lazy.force i2_results in
  let bagpipe = List.filteri (fun i _ -> i < 3) results in
  let bag_pct = pct_of state (Nettest.suite_tested bagpipe) in
  let all_pct = pct_of state (Nettest.suite_tested results) in
  let max_individual =
    List.fold_left
      (fun acc (_, (r : Nettest.result)) -> max acc (pct_of state r.tested))
      0. bagpipe
  in
  check_bool "suite >= best individual" true (bag_pct >= max_individual -. 0.01);
  check_bool "iterations improve coverage" true (all_pct > bag_pct +. 5.)

let test_dead_code_band () =
  let state = Lazy.force i2_state in
  let report = Netcov.analyze state Netcov.no_tests in
  let dead = Netcov.dead_line_pct report in
  check_bool "dead in band" true (dead > 10. && dead < 45.)

let test_sanityin_covers_all_terms () =
  let state = Lazy.force i2_state in
  let reg = Stable_state.registry state in
  let _, (r : Nettest.result) = result "SanityIn" in
  let _, (nm : Nettest.result) = result "NoMartian" in
  let combined = Netcov.merge_tested r.tested nm.tested in
  let covered_terms =
    List.filter_map
      (fun id ->
        let e = Netcov_config.Registry.element reg id in
        if Netcov_config.Element.etype_of e = Netcov_config.Element.Route_policy_clause
        then Some (Netcov_config.Element.name_of e)
        else None)
      combined.Netcov.cp_elements
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun term ->
      check_bool (term ^ " covered") true
        (List.exists (fun n -> n = "SANITY-IN/" ^ term) covered_terms))
    [ "block-private-asn"; "block-nlr-transit"; "block-martians"; "block-default"; "block-internal" ]

(* ---------------- datacenter ---------------- *)

let ft = lazy (Fattree.generate ~k:4 ())

let ft_state =
  lazy
    (Stable_state.compute
       (Netcov_config.Registry.build (Lazy.force ft).Fattree.devices))

let ft_results =
  lazy (Nettest.run_suite (Lazy.force ft_state) (Datacenter.suite (Lazy.force ft)))

let test_dc_pass () =
  List.iter
    (fun ((t : Nettest.t), (r : Nettest.result)) ->
      check_bool (t.name ^ " passes") true (Nettest.passed r.outcome))
    (Lazy.force ft_results)

let test_dc_similar_high_coverage () =
  let state = Lazy.force ft_state in
  let pcts =
    List.map
      (fun (_, (r : Nettest.result)) -> pct_of state r.tested)
      (Lazy.force ft_results)
  in
  List.iter (fun x -> check_bool "each around 80%" true (x > 60. && x < 95.)) pcts;
  let mx = List.fold_left max 0. pcts and mn = List.fold_left min 100. pcts in
  check_bool "tests largely redundant" true (mx -. mn < 15.)

let test_export_aggregate_weak () =
  let state = Lazy.force ft_state in
  let _, (r : Nettest.result) =
    List.find
      (fun ((t : Nettest.t), _) -> t.name = "ExportAggregate")
      (Lazy.force ft_results)
  in
  let report = Netcov.analyze state r.tested in
  let s = Coverage.line_stats report.Netcov.coverage in
  check_bool "mostly weak" true (s.Coverage.weak_lines > s.Coverage.strong_lines)

let test_pingmesh_checks_count () =
  let _, (r : Nettest.result) =
    List.find
      (fun ((t : Nettest.t), _) -> t.name = "ToRPingmesh")
      (Lazy.force ft_results)
  in
  (* 8 leaves x 7 other subnets *)
  check_int "pair count" 56 r.outcome.Nettest.checks

let () =
  Alcotest.run "nettest"
    [
      ( "internet2",
        [
          Alcotest.test_case "all pass" `Slow test_all_pass;
          Alcotest.test_case "kinds" `Slow test_kinds;
          Alcotest.test_case "control vs data facts" `Slow
            test_control_plane_tests_have_no_dp_facts;
          Alcotest.test_case "route preference dominates" `Slow
            test_route_preference_dominates_bagpipe;
          Alcotest.test_case "suite union monotone" `Slow test_suite_union_monotone;
          Alcotest.test_case "dead code band" `Slow test_dead_code_band;
          Alcotest.test_case "sanity-in covers all terms" `Slow
            test_sanityin_covers_all_terms;
        ] );
      ( "datacenter",
        [
          Alcotest.test_case "all pass" `Slow test_dc_pass;
          Alcotest.test_case "similar high coverage" `Slow test_dc_similar_high_coverage;
          Alcotest.test_case "aggregate weak" `Slow test_export_aggregate_weak;
          Alcotest.test_case "pingmesh pair count" `Slow test_pingmesh_checks_count;
        ] );
    ]
