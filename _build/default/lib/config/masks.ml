open Netcov_types

let netmask_of_len len =
  if len < 0 || len > 32 then invalid_arg "Masks.netmask_of_len";
  if len = 0 then Ipv4.zero else Ipv4.of_int (0xFFFFFFFF lsl (32 - len))

let len_of_netmask m =
  let rec go len =
    if len > 32 then None
    else if Ipv4.equal (netmask_of_len len) m then Some len
    else go (len + 1)
  in
  go 0

let wildcard_of_len len = Ipv4.lognot (netmask_of_len len)

let len_of_wildcard w = len_of_netmask (Ipv4.lognot w)
