(** Render a device configuration in a Cisco-IOS-like line-oriented
    syntax, recording per-line element ownership. *)

val emit : Device.t -> string array * Element.key option array
val to_string : Device.t -> string
