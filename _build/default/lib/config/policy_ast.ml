open Netcov_types

type match_cond =
  | Match_prefix_list of string
  | Match_prefix of Prefix.t * mode
  | Match_community_list of string
  | Match_community of Community.t
  | Match_as_path_list of string
  | Match_protocol of Route.protocol
  | Match_next_hop of Ipv4.t

and mode = Exact | Orlonger | Upto of int

type action =
  | Accept
  | Reject
  | Next_term
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Community.t
  | Remove_community of Community.t
  | Delete_community_in of string
  | Prepend_as of int * int

type term = {
  term_name : string;
  matches : match_cond list;
  actions : action list;
}

type policy = { pol_name : string; terms : term list }

let term_element_name ~policy_name ~term_name = policy_name ^ "/" ^ term_name

let referenced_prefix_lists t =
  List.filter_map
    (function Match_prefix_list n -> Some n | _ -> None)
    t.matches

let referenced_community_lists t =
  List.filter_map
    (fun m ->
      match m with
      | Match_community_list n -> Some n
      | _ -> None)
    t.matches
  @ List.filter_map
      (function Delete_community_in n -> Some n | _ -> None)
      t.actions

let referenced_as_path_lists t =
  List.filter_map
    (function Match_as_path_list n -> Some n | _ -> None)
    t.matches

let mode_to_string = function
  | Exact -> "exact"
  | Orlonger -> "orlonger"
  | Upto n -> Printf.sprintf "upto /%d" n

let match_to_string = function
  | Match_prefix_list n -> "prefix-list " ^ n
  | Match_prefix (p, m) ->
      Printf.sprintf "prefix %s %s" (Prefix.to_string p) (mode_to_string m)
  | Match_community_list n -> "community-list " ^ n
  | Match_community c -> "community " ^ Community.to_string c
  | Match_as_path_list n -> "as-path-list " ^ n
  | Match_protocol p -> "protocol " ^ Route.protocol_to_string p
  | Match_next_hop ip -> "next-hop " ^ Ipv4.to_string ip

let action_to_string = function
  | Accept -> "accept"
  | Reject -> "reject"
  | Next_term -> "next-term"
  | Set_local_pref n -> Printf.sprintf "local-preference %d" n
  | Set_med n -> Printf.sprintf "med %d" n
  | Add_community c -> "community add " ^ Community.to_string c
  | Remove_community c -> "community remove " ^ Community.to_string c
  | Delete_community_in n -> "community delete-in " ^ n
  | Prepend_as (asn, times) -> Printf.sprintf "as-path-prepend %d x%d" asn times

let pp_match fmt m = Format.pp_print_string fmt (match_to_string m)
let pp_action fmt a = Format.pp_print_string fmt (action_to_string a)

let equal_term a b =
  String.equal a.term_name b.term_name
  && a.matches = b.matches && a.actions = b.actions

let equal_policy a b =
  String.equal a.pol_name b.pol_name
  && List.length a.terms = List.length b.terms
  && List.for_all2 equal_term a.terms b.terms
