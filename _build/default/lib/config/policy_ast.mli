(** Abstract syntax of route policies (JunOS policy-statements /
    IOS route-maps), shared by both concrete syntaxes. *)

open Netcov_types

(** Match conditions; a term matches a route iff all its conditions
    hold. *)
type match_cond =
  | Match_prefix_list of string
      (** route's prefix is matched by the named prefix list *)
  | Match_prefix of Prefix.t * mode
      (** inline prefix match *)
  | Match_community_list of string
      (** route carries at least one community of the named list *)
  | Match_community of Community.t
  | Match_as_path_list of string
      (** route's AS path matches one pattern of the named list *)
  | Match_protocol of Route.protocol
      (** source protocol of the route (export-side matching) *)
  | Match_next_hop of Ipv4.t

and mode = Exact | Orlonger | Upto of int

(** Actions applied when a term matches. [Accept]/[Reject] terminate the
    whole policy chain; [Next_term] falls through explicitly; attribute
    modifiers apply and continue evaluation. *)
type action =
  | Accept
  | Reject
  | Next_term
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Community.t
  | Remove_community of Community.t
  | Delete_community_in of string
  | Prepend_as of int * int  (** ASN, repetition count *)

(** One clause ("term" in JunOS, numbered entry in an IOS route-map).
    This is the coverage granularity for policies (Table 2). *)
type term = {
  term_name : string;
  matches : match_cond list;
  actions : action list;
}

type policy = { pol_name : string; terms : term list }

(** Name of the element key for a term of a policy, ["POLICY/term"]. *)
val term_element_name : policy_name:string -> term_name:string -> string

(** Names of prefix lists referenced by a term's matches. *)
val referenced_prefix_lists : term -> string list

val referenced_community_lists : term -> string list
val referenced_as_path_lists : term -> string list

val pp_match : Format.formatter -> match_cond -> unit
val pp_action : Format.formatter -> action -> unit
val match_to_string : match_cond -> string
val action_to_string : action -> string
val equal_term : term -> term -> bool
val equal_policy : policy -> policy -> bool
