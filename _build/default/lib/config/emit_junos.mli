(** Render a device configuration in a JunOS-like hierarchical syntax,
    recording per-line element ownership. *)

(** [emit d] returns the configuration lines and, for each line, the key
    of the element owning it ([None] for structural / management lines,
    which the coverage denominator excludes). *)
val emit : Device.t -> string array * Element.key option array

(** [to_string d] is the text alone, for files on disk and parser
    round-trip tests. *)
val to_string : Device.t -> string
