type reason =
  | Unused_policy
  | Unused_prefix_list
  | Unused_community_list
  | Unused_as_path_list
  | Empty_peer_group
  | Unused_acl

let reason_to_string = function
  | Unused_policy -> "policy never attached to a peer"
  | Unused_prefix_list -> "prefix list never referenced"
  | Unused_community_list -> "community list never referenced"
  | Unused_as_path_list -> "as-path list never referenced"
  | Empty_peer_group -> "peer group has no members"
  | Unused_acl -> "ACL not attached to any interface"

type report = { dead : Element.Id_set.t; details : (Element.id * reason) list }

module Sset = Set.Make (String)

let analyze_device (reg : Registry.t) (d : Device.t) =
  let member_group_names =
    match d.bgp with
    | None -> Sset.empty
    | Some b ->
        List.filter_map (fun (n : Device.neighbor) -> n.nb_group) b.neighbors
        |> Sset.of_list
  in
  let used_policies =
    match d.bgp with
    | None -> Sset.empty
    | Some b ->
        (* A policy is used only when some actual peer (directly or via
           a group with members) or a redistribution references it;
           references from empty groups do not save it. *)
        let from_groups =
          List.concat_map
            (fun (g : Device.peer_group) ->
              if Sset.mem g.pg_name member_group_names then
                g.pg_import @ g.pg_export
              else [])
            b.groups
        in
        let from_neighbors =
          List.concat_map
            (fun (n : Device.neighbor) -> n.nb_import @ n.nb_export)
            b.neighbors
        in
        let from_redist =
          List.filter_map (fun (r : Device.redistribute) -> r.rd_policy)
            b.redistributes
        in
        Sset.of_list (from_groups @ from_neighbors @ from_redist)
  in
  let live_terms =
    List.filter (fun (p : Policy_ast.policy) -> Sset.mem p.pol_name used_policies)
      d.policies
    |> List.concat_map (fun (p : Policy_ast.policy) -> p.terms)
  in
  let used_pls =
    Sset.of_list (List.concat_map Policy_ast.referenced_prefix_lists live_terms)
  in
  let used_cls =
    Sset.of_list
      (List.concat_map Policy_ast.referenced_community_lists live_terms)
  in
  let used_als =
    Sset.of_list (List.concat_map Policy_ast.referenced_as_path_lists live_terms)
  in
  let used_acls =
    List.concat_map
      (fun (i : Device.interface) ->
        List.filter_map Fun.id [ i.in_acl; i.out_acl ])
      d.interfaces
    |> Sset.of_list
  in
  let member_groups = member_group_names in
  let host = d.hostname in
  let find key = Registry.find reg ~device:host key in
  let acc = ref [] in
  let flag key reason =
    match find key with Some id -> acc := (id, reason) :: !acc | None -> ()
  in
  List.iter
    (fun (p : Policy_ast.policy) ->
      if not (Sset.mem p.pol_name used_policies) then
        List.iter
          (fun (t : Policy_ast.term) ->
            flag
              (Element.key Route_policy_clause
                 (Policy_ast.term_element_name ~policy_name:p.pol_name
                    ~term_name:t.term_name))
              Unused_policy)
          p.terms)
    d.policies;
  List.iter
    (fun (pl : Device.prefix_list) ->
      if not (Sset.mem pl.pl_name used_pls) then
        (* A prefix list may also be referenced outside policies in
           future extensions; only policy references count today. *)
        flag (Element.key Prefix_list pl.pl_name) Unused_prefix_list)
    d.prefix_lists;
  List.iter
    (fun (cl : Device.community_list) ->
      if not (Sset.mem cl.cl_name used_cls) then
        flag (Element.key Community_list cl.cl_name) Unused_community_list)
    d.community_lists;
  List.iter
    (fun (al : Device.as_path_list) ->
      if not (Sset.mem al.al_name used_als) then
        flag (Element.key As_path_list al.al_name) Unused_as_path_list)
    d.as_path_lists;
  List.iter
    (fun (a : Device.acl) ->
      if not (Sset.mem a.acl_name used_acls) then
        flag (Element.key Acl_def a.acl_name) Unused_acl)
    d.acls;
  (match d.bgp with
  | None -> ()
  | Some b ->
      List.iter
        (fun (g : Device.peer_group) ->
          if not (Sset.mem g.pg_name member_groups) then
            flag (Element.key Bgp_peer_group g.pg_name) Empty_peer_group)
        b.groups);
  !acc

let analyze reg =
  let details =
    List.concat_map (analyze_device reg) (Registry.internal_devices reg)
  in
  let dead =
    List.fold_left
      (fun s (id, _) -> Element.Id_set.add id s)
      Element.Id_set.empty details
  in
  { dead; details }

let dead_lines reg report =
  Element.Id_set.fold
    (fun id acc -> acc + Element.line_count (Registry.element reg id))
    report.dead 0
