(** Parser for the JunOS-like concrete syntax produced by
    {!Emit_junos}. Together they form a round-trippable pipeline, so
    NetCov can ingest either device ASTs or raw configuration text. *)

type error = { line : int; message : string }

val error_to_string : error -> string

(** [parse ~hostname text] parses a full configuration. The hostname
    inside the text ([host-name]) wins over [~hostname] when present. *)
val parse : ?hostname:string -> string -> (Device.t, error) result

val parse_exn : ?hostname:string -> string -> Device.t
