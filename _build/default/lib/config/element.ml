type etype =
  | Interface
  | Bgp_peer
  | Bgp_peer_group
  | Route_policy_clause
  | Prefix_list
  | Community_list
  | As_path_list
  | Static_route
  | Bgp_network
  | Bgp_aggregate
  | Bgp_redistribute
  | Acl_def

let etype_to_string = function
  | Interface -> "interface"
  | Bgp_peer -> "bgp-peer"
  | Bgp_peer_group -> "bgp-peer-group"
  | Route_policy_clause -> "route-policy-clause"
  | Prefix_list -> "prefix-list"
  | Community_list -> "community-list"
  | As_path_list -> "as-path-list"
  | Static_route -> "static-route"
  | Bgp_network -> "bgp-network"
  | Bgp_aggregate -> "bgp-aggregate"
  | Bgp_redistribute -> "bgp-redistribute"
  | Acl_def -> "acl"

let all_etypes =
  [
    Interface;
    Bgp_peer;
    Bgp_peer_group;
    Route_policy_clause;
    Prefix_list;
    Community_list;
    As_path_list;
    Static_route;
    Bgp_network;
    Bgp_aggregate;
    Bgp_redistribute;
    Acl_def;
  ]

let etype_rank = function
  | Interface -> 0
  | Bgp_peer -> 1
  | Bgp_peer_group -> 2
  | Route_policy_clause -> 3
  | Prefix_list -> 4
  | Community_list -> 5
  | As_path_list -> 6
  | Static_route -> 7
  | Bgp_network -> 8
  | Bgp_aggregate -> 9
  | Bgp_redistribute -> 10
  | Acl_def -> 11

let compare_etype a b = Int.compare (etype_rank a) (etype_rank b)

type bucket = B_interface | B_bgp | B_policy | B_match_list | B_other

let bucket_of_etype = function
  | Interface -> B_interface
  | Bgp_peer | Bgp_peer_group | Bgp_network | Bgp_aggregate | Bgp_redistribute ->
      B_bgp
  | Route_policy_clause -> B_policy
  | Prefix_list | Community_list | As_path_list -> B_match_list
  | Static_route | Acl_def -> B_other

let bucket_to_string = function
  | B_interface -> "Interfaces"
  | B_bgp -> "BGP"
  | B_policy -> "Routing policies"
  | B_match_list -> "Match lists"
  | B_other -> "Other"

let all_buckets = [ B_interface; B_bgp; B_policy; B_match_list; B_other ]

type key = { etype : etype; name : string }

let key etype name = { etype; name }

let compare_key a b =
  match compare_etype a.etype b.etype with
  | 0 -> String.compare a.name b.name
  | c -> c

let pp_key fmt k =
  Format.fprintf fmt "%s:%s" (etype_to_string k.etype) k.name

type id = int

type t = { id : id; device : string; ekey : key; lines : int list }

let etype_of e = e.ekey.etype
let name_of e = e.ekey.name
let line_count e = List.length e.lines

let pp fmt e =
  Format.fprintf fmt "#%d %s %a (%d lines)" e.id e.device pp_key e.ekey
    (line_count e)

module Id_set = Set.Make (Int)

module Key_map = Map.Make (struct
  type t = key

  let compare = compare_key
end)
