type t = {
  mutable rev_lines : (string * Element.key option) list;
  mutable count : int;
  mutable owner_stack : Element.key option list;
}

let create () = { rev_lines = []; count = 0; owner_stack = [] }

let current_owner buf =
  match buf.owner_stack with [] -> None | o :: _ -> o

let line buf ?owner text =
  let owner = match owner with Some _ as o -> o | None -> current_owner buf in
  buf.rev_lines <- (text, owner) :: buf.rev_lines;
  buf.count <- buf.count + 1

let with_owner buf owner f =
  buf.owner_stack <- owner :: buf.owner_stack;
  Fun.protect ~finally:(fun () ->
      match buf.owner_stack with
      | _ :: rest -> buf.owner_stack <- rest
      | [] -> ())
    f

let length buf = buf.count

let contents buf =
  let items = List.rev buf.rev_lines in
  let texts = Array.of_list (List.map fst items) in
  let owners = Array.of_list (List.map snd items) in
  (texts, owners)
