lib/config/emit_ios.ml: Array As_regex Community Device Element Emitter Ipv4 List Masks Netcov_types Policy_ast Prefix Printf Route String
