lib/config/device.ml: As_regex Community Element Ipv4 List Netcov_types Option Policy_ast Prefix Route String
