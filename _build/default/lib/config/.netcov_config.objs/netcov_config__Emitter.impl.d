lib/config/emitter.ml: Array Element Fun List
