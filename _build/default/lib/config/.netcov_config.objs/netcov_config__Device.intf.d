lib/config/device.mli: As_regex Community Element Ipv4 Netcov_types Policy_ast Prefix Route
