lib/config/policy_ast.ml: Community Format Ipv4 List Netcov_types Prefix Printf Route String
