lib/config/masks.mli: Ipv4 Netcov_types
