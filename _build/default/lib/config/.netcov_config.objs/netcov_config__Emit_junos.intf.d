lib/config/emit_junos.mli: Device Element
