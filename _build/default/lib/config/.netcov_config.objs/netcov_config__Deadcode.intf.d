lib/config/deadcode.mli: Element Registry
