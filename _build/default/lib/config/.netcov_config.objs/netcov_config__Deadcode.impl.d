lib/config/deadcode.ml: Device Element Fun List Policy_ast Registry Set String
