lib/config/element.ml: Format Int List Map Set String
