lib/config/masks.ml: Ipv4 Netcov_types
