lib/config/element.mli: Format Map Set
