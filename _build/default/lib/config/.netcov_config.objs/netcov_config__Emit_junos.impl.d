lib/config/emit_junos.ml: Array As_regex Community Device Element Emitter Ipv4 List Netcov_types Policy_ast Prefix Printf Route String
