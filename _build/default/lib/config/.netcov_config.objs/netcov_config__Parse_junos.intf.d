lib/config/parse_junos.mli: Device
