lib/config/parse_ios.mli: Device
