lib/config/parse_ios.ml: As_regex Community Device Hashtbl Ipv4 List Masks Netcov_types Option Policy_ast Prefix Printf Route String
