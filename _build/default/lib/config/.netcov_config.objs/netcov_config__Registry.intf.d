lib/config/registry.mli: Device Element
