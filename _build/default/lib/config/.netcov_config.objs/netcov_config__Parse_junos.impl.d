lib/config/parse_junos.ml: As_regex Buffer Community Device Ipv4 List Netcov_types Option Policy_ast Prefix Printf Route String
