lib/config/emitter.mli: Element
