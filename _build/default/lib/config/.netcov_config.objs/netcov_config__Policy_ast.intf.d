lib/config/policy_ast.mli: Community Format Ipv4 Netcov_types Prefix Route
