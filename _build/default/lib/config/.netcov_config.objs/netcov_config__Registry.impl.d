lib/config/registry.ml: Array Device Element Emit_ios Emit_junos Format Hashtbl List Option
