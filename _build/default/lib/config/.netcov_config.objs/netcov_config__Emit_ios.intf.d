lib/config/emit_ios.mli: Device Element
