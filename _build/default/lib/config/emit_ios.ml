open Netcov_types

let ip = Ipv4.to_string
let nm len = Ipv4.to_string (Masks.netmask_of_len len)
let wc len = Ipv4.to_string (Masks.wildcard_of_len len)

(* Sequence number of the [i]-th route-map entry: the term name when it
   is numeric (round-trippable), positional otherwise. *)
let seq_of_term i (t : Policy_ast.term) =
  match int_of_string_opt t.term_name with
  | Some n -> n
  | None -> (i + 1) * 10

let ios_match (m : Policy_ast.match_cond) =
  match m with
  | Match_prefix_list n -> Printf.sprintf " match ip address prefix-list %s" n
  | Match_prefix (p, Exact) ->
      Printf.sprintf " match ip address prefix %s exact" (Prefix.to_string p)
  | Match_prefix (p, Orlonger) ->
      Printf.sprintf " match ip address prefix %s orlonger" (Prefix.to_string p)
  | Match_prefix (p, Upto n) ->
      Printf.sprintf " match ip address prefix %s upto %d" (Prefix.to_string p) n
  | Match_community_list n -> Printf.sprintf " match community %s" n
  | Match_community c ->
      Printf.sprintf " match community-literal %s" (Community.to_string c)
  | Match_as_path_list n -> Printf.sprintf " match as-path %s" n
  | Match_protocol pr ->
      Printf.sprintf " match source-protocol %s" (Route.protocol_to_string pr)
  | Match_next_hop nh -> Printf.sprintf " match ip next-hop %s" (ip nh)

let ios_set (a : Policy_ast.action) =
  match a with
  | Accept | Reject -> None
  | Next_term -> Some " continue"
  | Set_local_pref n -> Some (Printf.sprintf " set local-preference %d" n)
  | Set_med n -> Some (Printf.sprintf " set metric %d" n)
  | Add_community c ->
      Some (Printf.sprintf " set community %s additive" (Community.to_string c))
  | Remove_community c ->
      Some (Printf.sprintf " set community-remove %s" (Community.to_string c))
  | Delete_community_in n -> Some (Printf.sprintf " set comm-list %s delete" n)
  | Prepend_as (asn, times) ->
      Some
        (Printf.sprintf " set as-path prepend %s"
           (String.concat " " (List.init times (fun _ -> string_of_int asn))))

let emit (d : Device.t) =
  let buf = Emitter.create () in
  let line ?owner text = Emitter.line buf ?owner text in
  let owned key f = Emitter.with_owner buf (Some key) f in
  let bang () = line "!" in
  line (Printf.sprintf "! device: %s" d.hostname);
  line "version 15.2";
  line "service timestamps debug datetime msec";
  line (Printf.sprintf "hostname %s" d.hostname);
  bang ();
  (* ACLs *)
  List.iter
    (fun (a : Device.acl) ->
      owned (Element.key Acl_def a.acl_name) (fun () ->
          line (Printf.sprintf "ip access-list extended %s" a.acl_name);
          List.iter
            (fun (r : Device.acl_rule) ->
              line
                (Printf.sprintf " %s ip any %s %s"
                   (if r.permit then "permit" else "deny")
                   (ip (Prefix.addr r.rule_prefix))
                   (wc (Prefix.len r.rule_prefix))))
            a.rules);
      bang ())
    d.acls;
  (* interfaces *)
  List.iter
    (fun (i : Device.interface) ->
      owned (Element.key Interface i.if_name) (fun () ->
          line (Printf.sprintf "interface %s" i.if_name);
          (match i.description with
          | Some t -> line (Printf.sprintf " description %s" t)
          | None -> ());
          (match i.address with
          | Some (a, len) -> line (Printf.sprintf " ip address %s %s" (ip a) (nm len))
          | None -> line " no ip address");
          (match i.in_acl with
          | Some f -> line (Printf.sprintf " ip access-group %s in" f)
          | None -> ());
          (match i.out_acl with
          | Some f -> line (Printf.sprintf " ip access-group %s out" f)
          | None -> ());
          if i.igp_enabled then
            (* IGP participation is unowned, matching the paper's
               exclusion of IGP stanzas from the coverage domain. *)
            Emitter.with_owner buf None (fun () ->
                line (Printf.sprintf " ip ospf 1 area 0 cost %d" i.igp_metric));
          line " no shutdown");
      bang ())
    d.interfaces;
  (* BGP *)
  (match d.bgp with
  | None -> ()
  | Some b ->
      line (Printf.sprintf "router bgp %d" b.local_as);
      line (Printf.sprintf " bgp router-id %s" (ip b.router_id));
      line " bgp log-neighbor-changes";
      if b.multipath > 1 then line (Printf.sprintf " maximum-paths %d" b.multipath);
      List.iter
        (fun p ->
          line
            ~owner:(Element.key Bgp_network (Prefix.to_string p))
            (Printf.sprintf " network %s mask %s" (ip (Prefix.addr p))
               (nm (Prefix.len p))))
        b.networks;
      List.iter
        (fun (a : Device.aggregate) ->
          line
            ~owner:(Element.key Bgp_aggregate (Prefix.to_string a.ag_prefix))
            (Printf.sprintf " aggregate-address %s %s%s"
               (ip (Prefix.addr a.ag_prefix))
               (nm (Prefix.len a.ag_prefix))
               (if a.ag_summary_only then " summary-only" else "")))
        b.aggregates;
      List.iter
        (fun (r : Device.redistribute) ->
          line
            ~owner:
              (Element.key Bgp_redistribute (Route.protocol_to_string r.rd_from))
            (Printf.sprintf " redistribute %s%s"
               (Route.protocol_to_string r.rd_from)
               (match r.rd_policy with
               | Some p -> " route-map " ^ p
               | None -> "")))
        b.redistributes;
      List.iter
        (fun (g : Device.peer_group) ->
          owned (Element.key Bgp_peer_group g.pg_name) (fun () ->
              line (Printf.sprintf " neighbor %s peer-group" g.pg_name);
              (match g.pg_remote_as with
              | Some asn ->
                  line (Printf.sprintf " neighbor %s remote-as %d" g.pg_name asn)
              | None -> ());
              (match g.pg_description with
              | Some t ->
                  line (Printf.sprintf " neighbor %s description %s" g.pg_name t)
              | None -> ());
              (match g.pg_local_pref with
              | Some lp ->
                  line
                    (Printf.sprintf " neighbor %s local-preference %d" g.pg_name lp)
              | None -> ());
              List.iter
                (fun pol ->
                  line
                    (Printf.sprintf " neighbor %s route-map %s in" g.pg_name pol))
                g.pg_import;
              List.iter
                (fun pol ->
                  line
                    (Printf.sprintf " neighbor %s route-map %s out" g.pg_name pol))
                g.pg_export))
        b.groups;
      List.iter
        (fun (n : Device.neighbor) ->
          let nip = ip n.nb_ip in
          owned (Element.key Bgp_peer nip) (fun () ->
              line (Printf.sprintf " neighbor %s remote-as %d" nip n.nb_remote_as);
              (match n.nb_group with
              | Some g -> line (Printf.sprintf " neighbor %s peer-group %s" nip g)
              | None -> ());
              (match n.nb_description with
              | Some t -> line (Printf.sprintf " neighbor %s description %s" nip t)
              | None -> ());
              (match n.nb_local_addr with
              | Some a ->
                  line
                    (Printf.sprintf " neighbor %s update-source %s" nip (ip a))
              | None -> ());
              if n.nb_next_hop_self then
                line (Printf.sprintf " neighbor %s next-hop-self" nip);
              if n.nb_rr_client then
                line (Printf.sprintf " neighbor %s route-reflector-client" nip);
              List.iter
                (fun pol ->
                  line (Printf.sprintf " neighbor %s route-map %s in" nip pol))
                n.nb_import;
              List.iter
                (fun pol ->
                  line (Printf.sprintf " neighbor %s route-map %s out" nip pol))
                n.nb_export))
        b.neighbors;
      bang ());
  (* static routes *)
  List.iter
    (fun (s : Device.static_route) ->
      line
        ~owner:(Element.key Static_route (Prefix.to_string s.st_prefix))
        (Printf.sprintf "ip route %s %s %s"
           (ip (Prefix.addr s.st_prefix))
           (nm (Prefix.len s.st_prefix))
           (ip s.st_next_hop)))
    d.static_routes;
  if d.static_routes <> [] then bang ();
  (* prefix lists *)
  List.iter
    (fun (pl : Device.prefix_list) ->
      owned (Element.key Prefix_list pl.pl_name) (fun () ->
          List.iteri
            (fun i (e : Device.prefix_list_entry) ->
              let bounds =
                (match e.ple_ge with
                | Some g -> Printf.sprintf " ge %d" g
                | None -> "")
                ^
                match e.ple_le with
                | Some l -> Printf.sprintf " le %d" l
                | None -> ""
              in
              line
                (Printf.sprintf "ip prefix-list %s seq %d permit %s%s" pl.pl_name
                   ((i + 1) * 5)
                   (Prefix.to_string e.ple_prefix)
                   bounds))
            pl.pl_entries);
      bang ())
    d.prefix_lists;
  (* community lists *)
  List.iter
    (fun (cl : Device.community_list) ->
      owned (Element.key Community_list cl.cl_name) (fun () ->
          List.iter
            (fun c ->
              line
                (Printf.sprintf "ip community-list standard %s permit %s"
                   cl.cl_name (Community.to_string c)))
            cl.cl_members);
      bang ())
    d.community_lists;
  (* as-path lists *)
  List.iter
    (fun (al : Device.as_path_list) ->
      owned (Element.key As_path_list al.al_name) (fun () ->
          List.iter
            (fun re ->
              line
                (Printf.sprintf "ip as-path access-list %s permit %s" al.al_name
                   (As_regex.source re)))
            al.al_patterns);
      bang ())
    d.as_path_lists;
  (* route maps *)
  List.iter
    (fun (p : Policy_ast.policy) ->
      List.iteri
        (fun i (t : Policy_ast.term) ->
          let ekey =
            Element.key Route_policy_clause
              (Policy_ast.term_element_name ~policy_name:p.pol_name
                 ~term_name:t.term_name)
          in
          owned ekey (fun () ->
              let verdict =
                if List.mem Policy_ast.Reject t.actions then "deny" else "permit"
              in
              line
                (Printf.sprintf "route-map %s %s %d" p.pol_name verdict
                   (seq_of_term i t));
              List.iter (fun m -> line (ios_match m)) t.matches;
              List.iter
                (fun a -> match ios_set a with Some s -> line s | None -> ())
                t.actions))
        p.terms;
      bang ())
    d.policies;
  line "end";
  Emitter.contents buf

let to_string d =
  let texts, _ = emit d in
  String.concat "\n" (Array.to_list texts) ^ "\n"
