(** Line-oriented emission buffer that records, for every emitted line,
    which configuration element (if any) owns it. Ownership drives
    line-level coverage: a line is covered iff its owning element is. *)

type t

val create : unit -> t

(** [line buf ?owner text] appends one line. Lines without an owner are
    structural or management noise and are excluded from the coverage
    denominator ("unconsidered" in the paper's terms). *)
val line : t -> ?owner:Element.key -> string -> unit

(** [block buf ?owner ~indent header body] emits [header {], the body at
    one deeper indent, and [}], all owned by [owner]. *)
val with_owner : t -> Element.key option -> (unit -> unit) -> unit

(** Lines emitted while the callback runs inherit [owner] unless they
    set their own. *)

val current_owner : t -> Element.key option

(** Total number of lines emitted so far (the next line number minus
    one). *)
val length : t -> int

val contents : t -> string array * Element.key option array
