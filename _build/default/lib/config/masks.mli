(** Netmask / wildcard-mask conversions for the IOS-style syntax. *)

open Netcov_types

(** [netmask_of_len 24] is 255.255.255.0. *)
val netmask_of_len : int -> Ipv4.t

(** [len_of_netmask m] inverts {!netmask_of_len}; [None] for
    non-contiguous masks. *)
val len_of_netmask : Ipv4.t -> int option

(** [wildcard_of_len 24] is 0.0.0.255. *)
val wildcard_of_len : int -> Ipv4.t

val len_of_wildcard : Ipv4.t -> int option
