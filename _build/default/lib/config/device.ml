open Netcov_types

type interface = {
  if_name : string;
  address : (Ipv4.t * int) option;
  description : string option;
  in_acl : string option;
  out_acl : string option;
  igp_enabled : bool;
  igp_metric : int;
}

let interface ?address ?description ?in_acl ?out_acl ?(igp_enabled = false)
    ?(igp_metric = 10) if_name =
  { if_name; address; description; in_acl; out_acl; igp_enabled; igp_metric }

type peer_group = {
  pg_name : string;
  pg_remote_as : int option;
  pg_import : string list;
  pg_export : string list;
  pg_local_pref : int option;
  pg_description : string option;
}

type neighbor = {
  nb_ip : Ipv4.t;
  nb_remote_as : int;
  nb_group : string option;
  nb_import : string list;
  nb_export : string list;
  nb_local_addr : Ipv4.t option;
  nb_next_hop_self : bool;
  nb_rr_client : bool;
  nb_description : string option;
}

type aggregate = { ag_prefix : Prefix.t; ag_summary_only : bool }
type redistribute = { rd_from : Route.protocol; rd_policy : string option }

type bgp_config = {
  local_as : int;
  router_id : Ipv4.t;
  networks : Prefix.t list;
  aggregates : aggregate list;
  redistributes : redistribute list;
  groups : peer_group list;
  neighbors : neighbor list;
  multipath : int;
}

type static_route = { st_prefix : Prefix.t; st_next_hop : Ipv4.t }
type acl_rule = { permit : bool; rule_prefix : Prefix.t }
type acl = { acl_name : string; rules : acl_rule list }

type prefix_list_entry = {
  ple_prefix : Prefix.t;
  ple_ge : int option;
  ple_le : int option;
}

type prefix_list = { pl_name : string; pl_entries : prefix_list_entry list }
type community_list = { cl_name : string; cl_members : Community.t list }
type as_path_list = { al_name : string; al_patterns : As_regex.t list }

type syntax = Junos | Ios

type t = {
  hostname : string;
  syntax : syntax;
  is_external : bool;
  interfaces : interface list;
  static_routes : static_route list;
  acls : acl list;
  prefix_lists : prefix_list list;
  community_lists : community_list list;
  as_path_lists : as_path_list list;
  policies : Policy_ast.policy list;
  bgp : bgp_config option;
}

let make ?(syntax = Junos) ?(is_external = false) ?(interfaces = [])
    ?(static_routes = []) ?(acls = []) ?(prefix_lists = [])
    ?(community_lists = []) ?(as_path_lists = []) ?(policies = []) ?bgp
    hostname =
  {
    hostname;
    syntax;
    is_external;
    interfaces;
    static_routes;
    acls;
    prefix_lists;
    community_lists;
    as_path_lists;
    policies;
    bgp;
  }

let find_by name_of lst n = List.find_opt (fun x -> String.equal (name_of x) n) lst
let find_interface d n = find_by (fun i -> i.if_name) d.interfaces n
let find_policy d n = find_by (fun (p : Policy_ast.policy) -> p.pol_name) d.policies n
let find_prefix_list d n = find_by (fun p -> p.pl_name) d.prefix_lists n
let find_community_list d n = find_by (fun c -> c.cl_name) d.community_lists n
let find_as_path_list d n = find_by (fun a -> a.al_name) d.as_path_lists n
let find_acl d n = find_by (fun a -> a.acl_name) d.acls n

let find_group d n =
  match d.bgp with
  | None -> None
  | Some bgp -> find_by (fun g -> g.pg_name) bgp.groups n

let neighbor_group d nb =
  match nb.nb_group with None -> None | Some g -> find_group d g

let neighbor_import d nb =
  let group_chain =
    match neighbor_group d nb with None -> [] | Some g -> g.pg_import
  in
  nb.nb_import @ group_chain

let neighbor_export d nb =
  let group_chain =
    match neighbor_group d nb with None -> [] | Some g -> g.pg_export
  in
  nb.nb_export @ group_chain

let interface_with_address d ip =
  List.find_opt
    (fun i -> match i.address with Some (a, _) -> Ipv4.equal a ip | None -> false)
    d.interfaces

let connected_prefixes d =
  List.filter_map
    (fun i ->
      match i.address with
      | Some (a, len) -> Some (i, Prefix.interface_prefix a len)
      | None -> None)
    d.interfaces

let element_keys d =
  let open Element in
  let ifaces = List.map (fun i -> key Interface i.if_name) d.interfaces in
  let statics =
    List.map (fun s -> key Static_route (Prefix.to_string s.st_prefix)) d.static_routes
  in
  let acls = List.map (fun a -> key Acl_def a.acl_name) d.acls in
  let pls = List.map (fun p -> key Prefix_list p.pl_name) d.prefix_lists in
  let cls = List.map (fun c -> key Community_list c.cl_name) d.community_lists in
  let als = List.map (fun a -> key As_path_list a.al_name) d.as_path_lists in
  let clauses =
    List.concat_map
      (fun (p : Policy_ast.policy) ->
        List.map
          (fun (t : Policy_ast.term) ->
            key Route_policy_clause
              (Policy_ast.term_element_name ~policy_name:p.pol_name
                 ~term_name:t.term_name))
          p.terms)
      d.policies
  in
  let bgp_keys =
    match d.bgp with
    | None -> []
    | Some bgp ->
        List.map (fun g -> key Bgp_peer_group g.pg_name) bgp.groups
        @ List.map (fun n -> key Bgp_peer (Ipv4.to_string n.nb_ip)) bgp.neighbors
        @ List.map (fun p -> key Bgp_network (Prefix.to_string p)) bgp.networks
        @ List.map
            (fun a -> key Bgp_aggregate (Prefix.to_string a.ag_prefix))
            bgp.aggregates
        @ List.map
            (fun r -> key Bgp_redistribute (Route.protocol_to_string r.rd_from))
            bgp.redistributes
  in
  ifaces @ statics @ acls @ pls @ cls @ als @ clauses @ bgp_keys

let prefix_list_matches pl p =
  let len = Prefix.len p in
  let entry_matches e =
    let base = e.ple_prefix in
    match (e.ple_ge, e.ple_le) with
    | None, None -> Prefix.equal base p
    | ge, le ->
        let lo = Option.value ge ~default:(Prefix.len base) in
        let hi = Option.value le ~default:32 in
        Prefix.subsumes base p && len >= lo && len <= hi
  in
  List.exists entry_matches pl.pl_entries

let acl_permits acl ip =
  let rec go idx = function
    | [] -> (true, None)
    | r :: rest ->
        if Prefix.contains r.rule_prefix ip then (r.permit, Some idx)
        else go (idx + 1) rest
  in
  go 0 acl.rules
