(** Parser for the IOS-like concrete syntax produced by {!Emit_ios};
    round-trips with it. *)

type error = { line : int; message : string }

val error_to_string : error -> string
val parse : ?hostname:string -> string -> (Device.t, error) result
val parse_exn : ?hostname:string -> string -> Device.t
