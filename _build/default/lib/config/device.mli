(** Vendor-neutral device configuration model. Workload generators build
    these ASTs; emitters render them to concrete JunOS-like or IOS-like
    text; parsers read such text back. *)

open Netcov_types

type interface = {
  if_name : string;
  address : (Ipv4.t * int) option;  (** address and prefix length *)
  description : string option;
  in_acl : string option;
  out_acl : string option;
  igp_enabled : bool;  (** participates in the internal IGP *)
  igp_metric : int;
}

val interface :
  ?address:Ipv4.t * int ->
  ?description:string ->
  ?in_acl:string ->
  ?out_acl:string ->
  ?igp_enabled:bool ->
  ?igp_metric:int ->
  string ->
  interface

type peer_group = {
  pg_name : string;
  pg_remote_as : int option;
  pg_import : string list;  (** import policy chain, evaluated in order *)
  pg_export : string list;
  pg_local_pref : int option;
  pg_description : string option;
}

type neighbor = {
  nb_ip : Ipv4.t;
  nb_remote_as : int;
  nb_group : string option;
  nb_import : string list;  (** prepended to the group's chain *)
  nb_export : string list;
  nb_local_addr : Ipv4.t option;  (** session source (update-source) *)
  nb_next_hop_self : bool;
  nb_rr_client : bool;
      (** receiver is a route-reflector client of this device: routes
          learned over iBGP are reflected to it, and routes it sends are
          reflected to all other iBGP peers *)
  nb_description : string option;
}

type aggregate = { ag_prefix : Prefix.t; ag_summary_only : bool }
type redistribute = { rd_from : Route.protocol; rd_policy : string option }

type bgp_config = {
  local_as : int;
  router_id : Ipv4.t;
  networks : Prefix.t list;
  aggregates : aggregate list;
  redistributes : redistribute list;
  groups : peer_group list;
  neighbors : neighbor list;
  multipath : int;  (** maximum ECMP paths, 1 = disabled *)
}

type static_route = { st_prefix : Prefix.t; st_next_hop : Ipv4.t }
type acl_rule = { permit : bool; rule_prefix : Prefix.t }
type acl = { acl_name : string; rules : acl_rule list }

type prefix_list_entry = {
  ple_prefix : Prefix.t;
  ple_ge : int option;
  ple_le : int option;
}

type prefix_list = { pl_name : string; pl_entries : prefix_list_entry list }
type community_list = { cl_name : string; cl_members : Community.t list }
type as_path_list = { al_name : string; al_patterns : As_regex.t list }

type syntax = Junos | Ios

type t = {
  hostname : string;
  syntax : syntax;
  is_external : bool;
      (** stub devices modeling the environment; excluded from the
          coverage domain *)
  interfaces : interface list;
  static_routes : static_route list;
  acls : acl list;
  prefix_lists : prefix_list list;
  community_lists : community_list list;
  as_path_lists : as_path_list list;
  policies : Policy_ast.policy list;
  bgp : bgp_config option;
}

val make :
  ?syntax:syntax ->
  ?is_external:bool ->
  ?interfaces:interface list ->
  ?static_routes:static_route list ->
  ?acls:acl list ->
  ?prefix_lists:prefix_list list ->
  ?community_lists:community_list list ->
  ?as_path_lists:as_path_list list ->
  ?policies:Policy_ast.policy list ->
  ?bgp:bgp_config ->
  string ->
  t

val find_interface : t -> string -> interface option
val find_policy : t -> string -> Policy_ast.policy option
val find_prefix_list : t -> string -> prefix_list option
val find_community_list : t -> string -> community_list option
val find_as_path_list : t -> string -> as_path_list option
val find_acl : t -> string -> acl option
val find_group : t -> string -> peer_group option

(** [neighbor_import d nb] is the effective import chain of a neighbor:
    its own policies followed by its group's. Likewise for export. *)
val neighbor_import : t -> neighbor -> string list

val neighbor_export : t -> neighbor -> string list

(** Remote AS effective for the neighbor (own value; groups may supply
    one for parsing convenience but [nb_remote_as] is authoritative). *)
val neighbor_group : t -> neighbor -> peer_group option

(** [interface_with_address d ip] finds the interface carrying [ip]. *)
val interface_with_address : t -> Ipv4.t -> interface option

(** All interface connected prefixes of the device. *)
val connected_prefixes : t -> (interface * Prefix.t) list

(** Enumerate element keys defined by this configuration, in a stable
    order matching the emitters. *)
val element_keys : t -> Element.key list

(** [prefix_list_matches pl prefix] tests a prefix against a list,
    honouring [ge]/[le] bounds. *)
val prefix_list_matches : prefix_list -> Prefix.t -> bool

(** [acl_permits acl ip] evaluates the ACL on a destination address;
    returns the 0-based index of the first matching rule and its verdict.
    Default (no match) is permit with no rule index. *)
val acl_permits : acl -> Ipv4.t -> bool * int option
