open Netcov_types

let indent n = String.make (n * 4) ' '

let policy_chain_str names = String.concat " " names

let junos_match (m : Policy_ast.match_cond) =
  match m with
  | Match_prefix_list n -> Printf.sprintf "prefix-list %s;" n
  | Match_prefix (p, Exact) ->
      Printf.sprintf "route-filter %s exact;" (Prefix.to_string p)
  | Match_prefix (p, Orlonger) ->
      Printf.sprintf "route-filter %s orlonger;" (Prefix.to_string p)
  | Match_prefix (p, Upto n) ->
      Printf.sprintf "route-filter %s upto /%d;" (Prefix.to_string p) n
  | Match_community_list n -> Printf.sprintf "community %s;" n
  | Match_community c ->
      Printf.sprintf "community-literal %s;" (Community.to_string c)
  | Match_as_path_list n -> Printf.sprintf "as-path-group %s;" n
  | Match_protocol pr ->
      Printf.sprintf "protocol %s;" (Route.protocol_to_string pr)
  | Match_next_hop ip -> Printf.sprintf "next-hop %s;" (Ipv4.to_string ip)

let junos_action (a : Policy_ast.action) =
  match a with
  | Accept -> "accept;"
  | Reject -> "reject;"
  | Next_term -> "next term;"
  | Set_local_pref n -> Printf.sprintf "local-preference %d;" n
  | Set_med n -> Printf.sprintf "metric %d;" n
  | Add_community c ->
      Printf.sprintf "community add %s;" (Community.to_string c)
  | Remove_community c ->
      Printf.sprintf "community remove %s;" (Community.to_string c)
  | Delete_community_in n -> Printf.sprintf "community delete %s;" n
  | Prepend_as (asn, times) ->
      Printf.sprintf "as-path-prepend \"%s\";"
        (String.concat " " (List.init times (fun _ -> string_of_int asn)))

let emit (d : Device.t) =
  let buf = Emitter.create () in
  let line ?owner lvl text = Emitter.line buf ?owner (indent lvl ^ text) in
  let owned key f = Emitter.with_owner buf (Some key) f in
  (* system block: management noise, unconsidered *)
  line 0 (Printf.sprintf "/* %s */" d.hostname);
  line 0 "system {";
  line 1 (Printf.sprintf "host-name %s;" d.hostname);
  line 1 "root-authentication {";
  line 2 "encrypted-password \"$6$redacted\";";
  line 1 "}";
  line 1 "login {";
  line 2 "class operators {";
  line 3 "permissions [ view view-configuration ];";
  line 2 "}";
  line 2 "user neteng {";
  line 3 "class super-user;";
  line 3 "authentication {";
  line 4 "ssh-ed25519 \"ssh-ed25519 AAAA-redacted\";";
  line 3 "}";
  line 2 "}";
  line 1 "}";
  line 1 "services {";
  line 2 "ssh;";
  line 2 "netconf {";
  line 3 "ssh;";
  line 2 "}";
  line 1 "}";
  line 1 "ntp {";
  line 2 "server 198.32.8.10;";
  line 2 "server 198.32.9.10;";
  line 1 "}";
  line 1 "syslog {";
  line 2 "host 198.32.8.20 {";
  line 3 "any warning;";
  line 2 "}";
  line 2 "file messages {";
  line 3 "any notice;";
  line 2 "}";
  line 1 "}";
  line 0 "}";
  line 0 "snmp {";
  line 1 "community \"redacted\" {";
  line 2 "authorization read-only;";
  line 1 "}";
  line 0 "}";
  (* interfaces *)
  if d.interfaces <> [] then begin
    line 0 "interfaces {";
    List.iter
      (fun (i : Device.interface) ->
        owned (Element.key Interface i.if_name) (fun () ->
            line 1 (Printf.sprintf "%s {" i.if_name);
            (match i.description with
            | Some t -> line 2 (Printf.sprintf "description \"%s\";" t)
            | None -> ());
            line 2 "unit 0 {";
            line 3 "family inet {";
            (match i.address with
            | Some (a, len) ->
                line 4 (Printf.sprintf "address %s/%d;" (Ipv4.to_string a) len)
            | None -> ());
            (match i.in_acl with
            | Some f -> line 4 (Printf.sprintf "filter input %s;" f)
            | None -> ());
            (match i.out_acl with
            | Some f -> line 4 (Printf.sprintf "filter output %s;" f)
            | None -> ());
            line 3 "}";
            (* IPv6 is not modeled by the coverage computation (§5);
               these lines are emitted unowned. *)
            (match i.address with
            | Some (a, _) ->
                Emitter.with_owner buf None (fun () ->
                    line 3 "family inet6 {";
                    line 4
                      (Printf.sprintf "address 2001:db8:%x::1/64;"
                         (Ipv4.to_int a land 0xFFFF));
                    line 3 "}")
            | None -> ());
            line 2 "}";
            line 1 "}"))
      d.interfaces;
    line 0 "}"
  end;
  (* routing-options *)
  let router_id =
    match d.bgp with Some b -> Some b.router_id | None -> None
  in
  if router_id <> None || d.static_routes <> [] || d.bgp <> None then begin
    line 0 "routing-options {";
    (match router_id with
    | Some rid -> line 1 (Printf.sprintf "router-id %s;" (Ipv4.to_string rid))
    | None -> ());
    (match d.bgp with
    | Some b -> line 1 (Printf.sprintf "autonomous-system %d;" b.local_as)
    | None -> ());
    if d.static_routes <> [] then begin
      line 1 "static {";
      List.iter
        (fun (s : Device.static_route) ->
          line 2
            ~owner:(Element.key Static_route (Prefix.to_string s.st_prefix))
            (Printf.sprintf "route %s next-hop %s;"
               (Prefix.to_string s.st_prefix)
               (Ipv4.to_string s.st_next_hop)))
        d.static_routes;
      line 1 "}"
    end;
    line 0 "}"
  end;
  (* protocols *)
  let igp_ifaces = List.filter (fun (i : Device.interface) -> i.igp_enabled) d.interfaces in
  if d.bgp <> None || igp_ifaces <> [] then begin
    line 0 "protocols {";
    (match d.bgp with
    | None -> ()
    | Some b ->
        line 1 "bgp {";
        if b.multipath > 1 then begin
          line 2 "multipath;";
          line 2 (Printf.sprintf "maximum-paths %d;" b.multipath)
        end;
        List.iter
          (fun p ->
            line 2
              ~owner:(Element.key Bgp_network (Prefix.to_string p))
              (Printf.sprintf "network %s;" (Prefix.to_string p)))
          b.networks;
        List.iter
          (fun (a : Device.aggregate) ->
            line 2
              ~owner:(Element.key Bgp_aggregate (Prefix.to_string a.ag_prefix))
              (Printf.sprintf "aggregate %s%s;"
                 (Prefix.to_string a.ag_prefix)
                 (if a.ag_summary_only then " summary-only" else "")))
          b.aggregates;
        List.iter
          (fun (r : Device.redistribute) ->
            line 2
              ~owner:
                (Element.key Bgp_redistribute
                   (Route.protocol_to_string r.rd_from))
              (Printf.sprintf "redistribute %s%s;"
                 (Route.protocol_to_string r.rd_from)
                 (match r.rd_policy with
                 | Some p -> " policy " ^ p
                 | None -> "")))
          b.redistributes;
        let emit_neighbor lvl (n : Device.neighbor) =
          owned (Element.key Bgp_peer (Ipv4.to_string n.nb_ip)) (fun () ->
              line lvl (Printf.sprintf "neighbor %s {" (Ipv4.to_string n.nb_ip));
              (match n.nb_description with
              | Some t -> line (lvl + 1) (Printf.sprintf "description \"%s\";" t)
              | None -> ());
              line (lvl + 1) (Printf.sprintf "peer-as %d;" n.nb_remote_as);
              if n.nb_import <> [] then
                line (lvl + 1)
                  (Printf.sprintf "import [ %s ];" (policy_chain_str n.nb_import));
              if n.nb_export <> [] then
                line (lvl + 1)
                  (Printf.sprintf "export [ %s ];" (policy_chain_str n.nb_export));
              (match n.nb_local_addr with
              | Some a ->
                  line (lvl + 1)
                    (Printf.sprintf "local-address %s;" (Ipv4.to_string a))
              | None -> ());
              if n.nb_next_hop_self then line (lvl + 1) "next-hop-self;";
              if n.nb_rr_client then line (lvl + 1) "route-reflector-client;";
              line lvl "}")
        in
        let grouped g =
          List.filter
            (fun (n : Device.neighbor) -> n.nb_group = Some g.Device.pg_name)
            b.neighbors
        in
        List.iter
          (fun (g : Device.peer_group) ->
            owned (Element.key Bgp_peer_group g.pg_name) (fun () ->
                line 2 (Printf.sprintf "group %s {" g.pg_name);
                (match g.pg_description with
                | Some t -> line 3 (Printf.sprintf "description \"%s\";" t)
                | None -> ());
                (match g.pg_remote_as with
                | Some asn -> line 3 (Printf.sprintf "peer-as %d;" asn)
                | None -> ());
                (match g.pg_local_pref with
                | Some lp -> line 3 (Printf.sprintf "local-preference %d;" lp)
                | None -> ());
                if g.pg_import <> [] then
                  line 3
                    (Printf.sprintf "import [ %s ];" (policy_chain_str g.pg_import));
                if g.pg_export <> [] then
                  line 3
                    (Printf.sprintf "export [ %s ];" (policy_chain_str g.pg_export));
                List.iter (emit_neighbor 3) (grouped g);
                line 2 "}"))
          b.groups;
        let ungrouped =
          List.filter
            (fun (n : Device.neighbor) ->
              match n.nb_group with
              | None -> true
              | Some g -> Device.find_group d g = None)
            b.neighbors
        in
        List.iter (emit_neighbor 2) ungrouped;
        line 1 "}");
    if igp_ifaces <> [] then begin
      (* IS-IS lines are deliberately unowned: the paper's coverage
         computation does not consider the IGP protocol sections. *)
      line 1 "isis {";
      line 2 "level 2 wide-metrics-only;";
      List.iter
        (fun (i : Device.interface) ->
          line 2 (Printf.sprintf "interface %s.0 {" i.if_name);
          line 3 (Printf.sprintf "level 2 metric %d;" i.igp_metric);
          line 2 "}")
        igp_ifaces;
      line 1 "}"
    end;
    line 0 "}"
  end;
  (* policy-options *)
  if
    d.policies <> [] || d.prefix_lists <> [] || d.community_lists <> []
    || d.as_path_lists <> []
  then begin
    line 0 "policy-options {";
    List.iter
      (fun (pl : Device.prefix_list) ->
        owned (Element.key Prefix_list pl.pl_name) (fun () ->
            line 1 (Printf.sprintf "prefix-list %s {" pl.pl_name);
            List.iter
              (fun (e : Device.prefix_list_entry) ->
                let bounds =
                  (match e.ple_ge with
                  | Some g -> Printf.sprintf " ge %d" g
                  | None -> "")
                  ^
                  match e.ple_le with
                  | Some l -> Printf.sprintf " le %d" l
                  | None -> ""
                in
                line 2 (Prefix.to_string e.ple_prefix ^ bounds ^ ";"))
              pl.pl_entries;
            line 1 "}"))
      d.prefix_lists;
    List.iter
      (fun (cl : Device.community_list) ->
        line 1
          ~owner:(Element.key Community_list cl.cl_name)
          (Printf.sprintf "community %s members [ %s ];" cl.cl_name
             (String.concat " " (List.map Community.to_string cl.cl_members))))
      d.community_lists;
    List.iter
      (fun (al : Device.as_path_list) ->
        owned (Element.key As_path_list al.al_name) (fun () ->
            line 1 (Printf.sprintf "as-path-group %s {" al.al_name);
            List.iteri
              (fun i re ->
                line 2
                  (Printf.sprintf "as-path p%d \"%s\";" i (As_regex.source re)))
              al.al_patterns;
            line 1 "}"))
      d.as_path_lists;
    List.iter
      (fun (p : Policy_ast.policy) ->
        line 1 (Printf.sprintf "policy-statement %s {" p.pol_name);
        List.iter
          (fun (t : Policy_ast.term) ->
            let ekey =
              Element.key Route_policy_clause
                (Policy_ast.term_element_name ~policy_name:p.pol_name
                   ~term_name:t.term_name)
            in
            owned ekey (fun () ->
                line 2 (Printf.sprintf "term %s {" t.term_name);
                if t.matches <> [] then begin
                  line 3 "from {";
                  List.iter
                    (fun m -> line 4 (junos_match m))
                    t.matches;
                  line 3 "}"
                end;
                line 3 "then {";
                List.iter (fun a -> line 4 (junos_action a)) t.actions;
                line 3 "}";
                line 2 "}"))
          p.terms;
        line 1 "}")
      d.policies;
    line 0 "}"
  end;
  (* firewall filters (ACLs) *)
  if d.acls <> [] then begin
    line 0 "firewall {";
    List.iter
      (fun (a : Device.acl) ->
        owned (Element.key Acl_def a.acl_name) (fun () ->
            line 1 (Printf.sprintf "filter %s {" a.acl_name);
            List.iteri
              (fun i (r : Device.acl_rule) ->
                line 2 (Printf.sprintf "term r%d {" i);
                line 3 "from {";
                line 4
                  (Printf.sprintf "destination-address %s;"
                     (Prefix.to_string r.rule_prefix));
                line 3 "}";
                line 3
                  (Printf.sprintf "then %s;"
                     (if r.permit then "accept" else "discard"));
                line 2 "}")
              a.rules;
            line 1 "}"))
      d.acls;
    line 0 "}"
  end;
  Emitter.contents buf

let to_string d =
  let texts, _ = emit d in
  String.concat "\n" (Array.to_list texts) ^ "\n"
