(** Typed configuration elements — the coverage domain of NetCov
    (paper Table 2, plus the extra element kinds our simulator models). *)

(** Kind of configuration element. The first seven are the paper's
    Table 2; the rest are additional control-plane elements our simulator
    understands and NetCov tracks. *)
type etype =
  | Interface
  | Bgp_peer
  | Bgp_peer_group
  | Route_policy_clause
  | Prefix_list
  | Community_list
  | As_path_list
  | Static_route
  | Bgp_network
  | Bgp_aggregate
  | Bgp_redistribute
  | Acl_def

val etype_to_string : etype -> string
val all_etypes : etype list
val compare_etype : etype -> etype -> int

(** Aggregation buckets used by the paper's Figure 7 / 9. *)
type bucket = B_interface | B_bgp | B_policy | B_match_list | B_other

val bucket_of_etype : etype -> bucket
val bucket_to_string : bucket -> string
val all_buckets : bucket list

(** Key identifying an element within one device's configuration. *)
type key = { etype : etype; name : string }

val key : etype -> string -> key
val compare_key : key -> key -> int
val pp_key : Format.formatter -> key -> unit

(** Globally unique element id, assigned by {!Registry}. *)
type id = int

(** An extracted configuration element: where it lives and which
    configuration lines it owns (1-based, not necessarily contiguous). *)
type t = {
  id : id;
  device : string;
  ekey : key;
  lines : int list;
}

val etype_of : t -> etype
val name_of : t -> string
val line_count : t -> int
val pp : Format.formatter -> t -> unit

module Id_set : Set.S with type elt = id
module Key_map : Map.S with type key = key
