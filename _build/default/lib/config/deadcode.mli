(** Dead configuration detection: elements that can never be exercised by
    any data plane test, such as routing policies never attached to a
    peer, match lists never referenced, and peer groups with no members
    (§6.1.1 reports 27.9% such lines for Internet2). *)

type reason =
  | Unused_policy  (** policy not in any import/export chain *)
  | Unused_prefix_list
  | Unused_community_list
  | Unused_as_path_list
  | Empty_peer_group  (** group with no member neighbors *)
  | Unused_acl  (** ACL not attached to any interface *)

val reason_to_string : reason -> string

type report = {
  dead : Element.Id_set.t;
  details : (Element.id * reason) list;
}

(** [analyze reg] inspects every internal device. *)
val analyze : Registry.t -> report

(** Dead lines (count over internal devices). *)
val dead_lines : Registry.t -> report -> int
