lib/policy/eval.ml: As_path As_regex Community Device Element Hashtbl Ipv4 List Netcov_config Netcov_types Policy_ast Prefix Route
