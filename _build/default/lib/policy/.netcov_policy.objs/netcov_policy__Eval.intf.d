lib/policy/eval.mli: Device Element Netcov_config Netcov_types Policy_ast Route
