lib/bdd/bdd.ml: Array Hashtbl Int List
