lib/bdd/bdd.mli:
