open Netcov_config

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|<style>
body { font-family: -apple-system, Segoe UI, sans-serif; margin: 2em; color: #1a2433; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #d5dbe3; padding: 4px 12px; text-align: right; }
th { background: #eef1f5; } td.name { text-align: left; }
.bar { display: inline-block; height: 10px; background: #2e7d32; }
.barbox { display: inline-block; width: 120px; background: #e7d1d1; }
pre { font-size: 12px; line-height: 1.45; }
.strong { background: #d9ecd9; } .weak { background: #fdf3d0; }
.uncov { background: #f6d6d6; } .lineno { color: #98a2ae; }
.legend span { padding: 1px 8px; margin-right: 8px; }
a { color: #20508a; }
</style>|}

let pct_cell s =
  let pct = Coverage.pct s in
  Printf.sprintf
    "<td>%.1f%%</td><td><span class=\"barbox\"><span class=\"bar\" \
     style=\"width:%dpx\"></span></span></td>"
    pct
    (int_of_float (1.2 *. pct))

let index cov =
  let buf = Buffer.create 8192 in
  let overall = Coverage.line_stats cov in
  Buffer.add_string buf
    (Printf.sprintf
       "<!doctype html><html><head><meta charset=\"utf-8\"><title>NetCov \
        coverage</title>%s</head><body><h1>NetCov configuration coverage</h1>"
       style);
  Buffer.add_string buf
    (Printf.sprintf
       "<p>Overall: <b>%.1f%%</b> of considered lines covered (%d of %d; %d \
        weak, %d total lines including unconsidered).</p>"
       (Coverage.pct overall)
       (Coverage.covered_lines overall)
       overall.Coverage.considered overall.Coverage.weak_lines
       overall.Coverage.total);
  Buffer.add_string buf
    "<table><tr><th>device</th><th>covered</th><th>considered</th><th>total</th><th \
     colspan=\"2\">coverage</th></tr>";
  List.iter
    (fun (host, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td class=\"name\"><a href=\"%s.html\">%s</a></td><td>%d</td><td>%d</td><td>%d</td>%s</tr>"
           (escape host) (escape host)
           (Coverage.covered_lines s)
           s.Coverage.considered s.Coverage.total (pct_cell s)))
    (Coverage.device_stats cov);
  Buffer.add_string buf "</table>";
  (* per-type table *)
  Buffer.add_string buf
    "<h2>By element type</h2><table><tr><th>type</th><th>elements \
     covered</th><th>elements</th><th>lines covered</th><th>lines</th></tr>";
  List.iter
    (fun (et, (s : Coverage.type_stats)) ->
      if s.elems_total > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td class=\"name\">%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>"
             (Element.etype_to_string et) s.elems_covered s.elems_total
             (s.lines_strong + s.lines_weak)
             s.lines_total))
    (Coverage.etype_stats cov);
  Buffer.add_string buf "</table></body></html>";
  Buffer.contents buf

let device_page cov host =
  let reg = Coverage.registry cov in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    (Printf.sprintf
       "<!doctype html><html><head><meta charset=\"utf-8\"><title>%s \
        coverage</title>%s</head><body><h1>%s</h1><p class=\"legend\"><span \
        class=\"strong\">covered</span><span class=\"weak\">weakly \
        covered</span><span class=\"uncov\">uncovered</span><span>unconsidered</span> \
        &mdash; <a href=\"index.html\">back to index</a></p><pre>"
       (escape host) style (escape host));
  Array.iteri
    (fun i line ->
      let cls =
        match Coverage.line_status cov host (i + 1) with
        | None -> ""
        | Some Coverage.Strong -> " class=\"strong\""
        | Some Coverage.Weak -> " class=\"weak\""
        | Some Coverage.Not_covered -> " class=\"uncov\""
      in
      Buffer.add_string buf
        (Printf.sprintf "<span class=\"lineno\">%5d</span> <span%s>%s</span>\n"
           (i + 1) cls (escape line)))
    (Registry.text reg host);
  Buffer.add_string buf "</pre></body></html>";
  Buffer.contents buf

let write_tree cov dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "index.html" (index cov);
  List.iter
    (fun (d : Device.t) ->
      write (d.hostname ^ ".html") (device_page cov d.hostname))
    (Registry.internal_devices (Coverage.registry cov))
