(** Coverage regression analysis: compare two coverage runs over the
    same registry (e.g. before/after a test-suite change, or across two
    branches of the configuration), in the spirit of diff-cover. *)

open Netcov_config

type t = {
  gained : Element.Id_set.t;  (** newly covered elements *)
  lost : Element.Id_set.t;  (** elements no longer covered *)
  strengthened : Element.Id_set.t;  (** weak → strong *)
  weakened : Element.Id_set.t;  (** strong → weak *)
}

(** [diff ~baseline current] classifies every element. Raises
    [Invalid_argument] when the two runs cover different registries
    (element counts differ). *)
val diff : baseline:Coverage.t -> Coverage.t -> t

val is_empty : t -> bool

(** No element got worse (lost or weakened) — the regression gate. *)
val no_regression : t -> bool

(** Human-readable summary listing a few exemplar elements per class. *)
val summary : Registry.t -> t -> string
