open Netcov_config
open Netcov_sim

type tested = { dp_facts : Fact.t list; cp_elements : Element.id list }

let no_tests = { dp_facts = []; cp_elements = [] }

let merge_tested a b =
  (* Deduplicate data plane facts by key. *)
  let seen = Hashtbl.create 256 in
  let dp_facts =
    List.filter
      (fun f ->
        let k = Fact.key f in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (a.dp_facts @ b.dp_facts)
  in
  let cp_elements = List.sort_uniq Int.compare (a.cp_elements @ b.cp_elements) in
  { dp_facts; cp_elements }

type timing = {
  total_s : float;
  materialize_s : float;
  sim_s : float;
  label_s : float;
  sim_count : int;
  ifg_nodes : int;
  ifg_edges : int;
  bdd_vars : int;
}

type report = {
  coverage : Coverage.t;
  timing : timing;
  dead : Deadcode.report;
}

let analyze state tested =
  let t0 = Unix.gettimeofday () in
  let reg = Stable_state.registry state in
  let ctx = Rules.make_ctx state in
  let g, tested_ids, mstats = Materialize.run ctx ~tested:tested.dp_facts in
  let label = Label.run g ~tested:tested_ids in
  let coverage =
    Coverage.of_sets reg ~strong:label.Label.strong ~weak:label.Label.weak
    |> fun cov -> Coverage.with_strong cov tested.cp_elements
  in
  let dead = Deadcode.analyze reg in
  let total_s = Unix.gettimeofday () -. t0 in
  {
    coverage;
    timing =
      {
        total_s;
        materialize_s = mstats.Materialize.rule_seconds;
        sim_s = mstats.Materialize.sim_seconds;
        label_s = label.Label.seconds;
        sim_count = mstats.Materialize.sim_count;
        ifg_nodes = mstats.Materialize.nodes;
        ifg_edges = mstats.Materialize.edges;
        bdd_vars = label.Label.vars;
      };
    dead;
  }

let dead_line_pct report =
  let reg = Coverage.registry report.coverage in
  let considered = Registry.considered_lines reg in
  if considered = 0 then 0.
  else
    100.
    *. float_of_int (Deadcode.dead_lines reg report.dead)
    /. float_of_int considered
