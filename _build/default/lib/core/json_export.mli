(** Machine-readable coverage reports (JSON), for CI integration and
    external dashboards. No external JSON dependency: the emitter is
    self-contained and the output is stable-ordered (diff-friendly). *)

(** Full report: overall line stats, per-device table, per-element-type
    table and the per-element status list. *)
val coverage : Coverage.t -> string

(** Timing/diagnostics of one analysis run. *)
val timing : Netcov.timing -> string

(** Report including dead-code details. *)
val report : Netcov.report -> string

(** Minimal JSON string escaping (exposed for tests). *)
val escape_string : string -> string
