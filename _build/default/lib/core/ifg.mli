(** The information flow graph: a DAG whose vertices are facts (plus
    disjunctive nodes for non-deterministic contributions, §4.3) and
    whose edges point from contributor to derived fact. *)

type node_id = int

type node_kind =
  | N_fact of Fact.t
  | N_disj  (** contribution holds if any parent holds *)

type t

val create : unit -> t

(** [add_fact g f] returns the node for [f], creating it if new; the
    boolean is [true] when the node is new. *)
val add_fact : t -> Fact.t -> node_id * bool

(** [find g f] is the node of [f] if materialized. *)
val find : t -> Fact.t -> node_id option

(** [add_disj g ~target parents] creates (or reuses) the disjunctive
    node grouping [parents] under [target], wiring parent and target
    edges. Parents are created as needed. *)
val add_disj : t -> target:node_id -> Fact.t list -> node_id

(** [add_edge g ~parent ~child] records that [parent] contributes to
    [child] (idempotent). *)
val add_edge : t -> parent:node_id -> child:node_id -> unit

val kind : t -> node_id -> node_kind

(** Contributors of a node. *)
val parents : t -> node_id -> node_id list

(** Facts this node contributes to. *)
val children : t -> node_id -> node_id list

val n_nodes : t -> int
val n_edges : t -> int

(** Iterate all nodes. *)
val iter_nodes : t -> (node_id -> node_kind -> unit) -> unit

(** Config-element nodes present in the graph. *)
val config_nodes : t -> (node_id * Netcov_config.Element.id) list

(** Expansion bookkeeping for the materialization loop. *)
val mark_expanded : t -> node_id -> unit

val is_expanded : t -> node_id -> bool
