(** Self-contained HTML coverage reports, in the spirit of LCOV's
    genhtml (§5 Figure 6): an index page with the per-device aggregate
    table, and one annotated page per device configuration with covered
    lines in green (weak in yellow), uncovered in red, and unconsidered
    lines unhighlighted. *)

(** [index cov] is the HTML of the summary page. *)
val index : Coverage.t -> string

(** [device_page cov host] is the HTML of one annotated configuration. *)
val device_page : Coverage.t -> string -> string

(** [write_tree cov dir] writes [dir/index.html] and
    [dir/<host>.html] for every internal device. *)
val write_tree : Coverage.t -> string -> unit
