type node_id = int
type node_kind = N_fact of Fact.t | N_disj

type node_rec = {
  kind : node_kind;
  mutable parents : node_id list;
  mutable children : node_id list;
  mutable parent_set : (node_id, unit) Hashtbl.t;
  mutable expanded : bool;
}

type t = {
  mutable nodes : node_rec array;
  mutable next : int;
  by_key : (string, node_id) Hashtbl.t;
  mutable edges : int;
}

let fresh_node kind =
  {
    kind;
    parents = [];
    children = [];
    parent_set = Hashtbl.create 4;
    expanded = false;
  }

let create () =
  {
    nodes = Array.make 1024 (fresh_node N_disj);
    next = 0;
    by_key = Hashtbl.create 4096;
    edges = 0;
  }

let grow g =
  let cap = Array.length g.nodes in
  if g.next >= cap then begin
    let bigger = Array.make (cap * 2) (fresh_node N_disj) in
    Array.blit g.nodes 0 bigger 0 cap;
    g.nodes <- bigger
  end

let alloc g kind =
  grow g;
  let id = g.next in
  g.next <- id + 1;
  g.nodes.(id) <- fresh_node kind;
  id

let add_fact g f =
  let k = Fact.key f in
  match Hashtbl.find_opt g.by_key k with
  | Some id -> (id, false)
  | None ->
      let id = alloc g (N_fact f) in
      Hashtbl.add g.by_key k id;
      (id, true)

let find g f = Hashtbl.find_opt g.by_key (Fact.key f)

let add_edge g ~parent ~child =
  let c = g.nodes.(child) in
  if not (Hashtbl.mem c.parent_set parent) then begin
    Hashtbl.add c.parent_set parent ();
    c.parents <- parent :: c.parents;
    let p = g.nodes.(parent) in
    p.children <- child :: p.children;
    g.edges <- g.edges + 1
  end

let add_disj g ~target parents =
  let parent_ids = List.map (fun f -> fst (add_fact g f)) parents in
  let dkey =
    "disj:" ^ string_of_int target ^ ":"
    ^ String.concat ","
        (List.sort_uniq String.compare (List.map string_of_int parent_ids))
  in
  match Hashtbl.find_opt g.by_key dkey with
  | Some id -> id
  | None ->
      let id = alloc g N_disj in
      Hashtbl.add g.by_key dkey id;
      add_edge g ~parent:id ~child:target;
      List.iter (fun p -> add_edge g ~parent:p ~child:id) parent_ids;
      id

let kind g id = g.nodes.(id).kind
let parents g id = g.nodes.(id).parents
let children g id = g.nodes.(id).children
let n_nodes g = g.next
let n_edges g = g.edges

let iter_nodes g f =
  for i = 0 to g.next - 1 do
    f i g.nodes.(i).kind
  done

let config_nodes g =
  let acc = ref [] in
  iter_nodes g (fun id k ->
      match k with
      | N_fact f -> (
          match Fact.is_config f with
          | Some eid -> acc := (id, eid) :: !acc
          | None -> ())
      | N_disj -> ());
  List.rev !acc

let mark_expanded g id = g.nodes.(id).expanded <- true
let is_expanded g id = g.nodes.(id).expanded
