lib/core/rules.ml: Bgp Device Element Fact Forward Hashtbl Ipv4 List Netcov_config Netcov_sim Netcov_types Option Prefix Prefix_trie Registry Rib Route Session Stable_state Topology Unix
