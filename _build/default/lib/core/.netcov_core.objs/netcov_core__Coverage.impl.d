lib/core/coverage.ml: Array Device Element Hashtbl List Netcov_config Option Registry
