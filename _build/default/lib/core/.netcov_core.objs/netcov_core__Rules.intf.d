lib/core/rules.mli: Element Fact Netcov_config Netcov_sim Stable_state
