lib/core/netcov.mli: Coverage Deadcode Element Fact Netcov_config Netcov_sim
