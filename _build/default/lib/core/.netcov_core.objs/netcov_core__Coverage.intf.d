lib/core/coverage.mli: Element Netcov_config Registry
