lib/core/html_report.mli: Coverage
