lib/core/label.ml: Array Bdd Element Fact Hashtbl Ifg List Logs Netcov_bdd Netcov_config Unix
