lib/core/fact.mli: Element Format Ipv4 Netcov_config Netcov_sim Netcov_types Prefix Rib Route
