lib/core/html_report.ml: Array Buffer Coverage Device Element Filename List Netcov_config Printf Registry String Sys
