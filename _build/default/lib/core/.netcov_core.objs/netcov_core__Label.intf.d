lib/core/label.mli: Element Ifg Netcov_config
