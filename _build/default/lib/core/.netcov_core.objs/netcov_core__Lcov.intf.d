lib/core/lcov.mli: Coverage
