lib/core/ifg.mli: Fact Netcov_config
