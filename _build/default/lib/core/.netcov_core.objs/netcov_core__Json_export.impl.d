lib/core/json_export.ml: Buffer Char Coverage Deadcode Element List Netcov Netcov_config Printf Registry String
