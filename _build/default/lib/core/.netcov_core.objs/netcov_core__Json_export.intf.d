lib/core/json_export.mli: Coverage Netcov
