lib/core/coverage_diff.ml: Buffer Coverage Element List Netcov_config Printf Registry
