lib/core/lcov.ml: Array Buffer Coverage Device Filename List Netcov_config Printf Registry Sys
