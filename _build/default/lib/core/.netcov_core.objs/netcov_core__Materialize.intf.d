lib/core/materialize.mli: Fact Ifg Rules
