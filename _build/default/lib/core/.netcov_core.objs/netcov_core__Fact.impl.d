lib/core/fact.ml: As_path Community Element Format Ipv4 List Netcov_config Netcov_sim Netcov_types Prefix Printf Rib Route String
