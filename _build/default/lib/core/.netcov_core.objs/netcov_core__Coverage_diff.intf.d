lib/core/coverage_diff.mli: Coverage Element Netcov_config Registry
