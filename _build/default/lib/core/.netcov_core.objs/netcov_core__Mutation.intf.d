lib/core/mutation.mli: Device Element Fact Netcov_config Netcov_sim Registry Stable_state
