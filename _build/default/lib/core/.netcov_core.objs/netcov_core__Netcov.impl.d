lib/core/netcov.ml: Coverage Deadcode Element Fact Hashtbl Int Label List Materialize Netcov_config Netcov_sim Registry Rules Stable_state Unix
