lib/core/ifg.ml: Array Fact Hashtbl List String
