lib/core/mutation.ml: Device Element Fact Fun Ipv4 List Netcov_config Netcov_sim Netcov_types Option Policy_ast Prefix Registry Rib Route Stable_state String Unix
