lib/core/materialize.ml: Fact Ifg List Netcov_sim Queue Rules Unix
