(** lcov-format coverage reports (§5): one record per device
    configuration file, [DA:] lines for every considered line, so the
    output loads into standard code-coverage viewers. Also renders the
    paper's file-level aggregate table (Figure 6(b)). *)

val report : Coverage.t -> string

(** [write_tree cov dir] writes [dir/configs/<host>.cfg] (rendered
    configurations) and [dir/coverage.info] (the lcov report). *)
val write_tree : Coverage.t -> string -> unit

(** Figure 6(b)-style aggregate table as text. *)
val file_table : Coverage.t -> string

(** Annotated source of one device: each considered line prefixed with
    its status marker ([+] strong, [~] weak, [-] uncovered, [ ]
    unconsidered). *)
val annotate : Coverage.t -> string -> string
