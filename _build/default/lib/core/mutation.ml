open Netcov_types
open Netcov_config
open Netcov_sim

let remove_named name_of name lst =
  let removed = List.filter (fun x -> name_of x <> name) lst in
  if List.length removed = List.length lst then None else Some removed

let delete_element (d : Device.t) (key : Element.key) =
  let with_bgp f =
    match d.bgp with
    | None -> None
    | Some b -> Option.map (fun b -> { d with Device.bgp = Some b }) (f b)
  in
  match key.etype with
  | Element.Interface ->
      Option.map
        (fun interfaces -> { d with Device.interfaces })
        (remove_named (fun (i : Device.interface) -> i.if_name) key.name
           d.interfaces)
  | Element.Bgp_peer ->
      with_bgp (fun b ->
          Option.map
            (fun neighbors -> { b with Device.neighbors })
            (remove_named
               (fun (n : Device.neighbor) -> Ipv4.to_string n.nb_ip)
               key.name b.neighbors))
  | Element.Bgp_peer_group ->
      (* JunOS semantics: neighbors are defined inside their group, so
         deleting the group deletes its members too. *)
      with_bgp (fun b ->
          Option.map
            (fun groups ->
              {
                b with
                Device.groups;
                neighbors =
                  List.filter
                    (fun (n : Device.neighbor) -> n.nb_group <> Some key.name)
                    b.neighbors;
              })
            (remove_named (fun (g : Device.peer_group) -> g.pg_name) key.name
               b.groups))
  | Element.Route_policy_clause -> (
      (* key name is "POLICY/term" *)
      match String.index_opt key.name '/' with
      | None -> None
      | Some i ->
          let pol = String.sub key.name 0 i in
          let term = String.sub key.name (i + 1) (String.length key.name - i - 1) in
          let changed = ref false in
          let policies =
            List.map
              (fun (p : Policy_ast.policy) ->
                if p.pol_name <> pol then p
                else
                  let terms =
                    List.filter
                      (fun (t : Policy_ast.term) ->
                        if t.term_name = term then begin
                          changed := true;
                          false
                        end
                        else true)
                      p.terms
                  in
                  { p with Policy_ast.terms })
              d.policies
          in
          if !changed then Some { d with Device.policies } else None)
  | Element.Prefix_list ->
      Option.map
        (fun prefix_lists -> { d with Device.prefix_lists })
        (remove_named (fun (p : Device.prefix_list) -> p.pl_name) key.name
           d.prefix_lists)
  | Element.Community_list ->
      Option.map
        (fun community_lists -> { d with Device.community_lists })
        (remove_named (fun (c : Device.community_list) -> c.cl_name) key.name
           d.community_lists)
  | Element.As_path_list ->
      Option.map
        (fun as_path_lists -> { d with Device.as_path_lists })
        (remove_named (fun (a : Device.as_path_list) -> a.al_name) key.name
           d.as_path_lists)
  | Element.Static_route ->
      Option.map
        (fun static_routes -> { d with Device.static_routes })
        (remove_named
           (fun (s : Device.static_route) -> Prefix.to_string s.st_prefix)
           key.name d.static_routes)
  | Element.Bgp_network ->
      with_bgp (fun b ->
          Option.map
            (fun networks -> { b with Device.networks })
            (remove_named Prefix.to_string key.name b.networks))
  | Element.Bgp_aggregate ->
      with_bgp (fun b ->
          Option.map
            (fun aggregates -> { b with Device.aggregates })
            (remove_named
               (fun (a : Device.aggregate) -> Prefix.to_string a.ag_prefix)
               key.name b.aggregates))
  | Element.Bgp_redistribute ->
      with_bgp (fun b ->
          Option.map
            (fun redistributes -> { b with Device.redistributes })
            (remove_named
               (fun (r : Device.redistribute) ->
                 Route.protocol_to_string r.rd_from)
               key.name b.redistributes))
  | Element.Acl_def ->
      Option.map
        (fun acls -> { d with Device.acls })
        (remove_named (fun (a : Device.acl) -> a.acl_name) key.name d.acls)

let fact_holds state (f : Fact.t) =
  match f with
  | Fact.F_main_rib { host; entry } ->
      List.exists
        (fun e -> Rib.compare_main e entry = 0)
        (Stable_state.main_lookup state host entry.me_prefix)
  | Fact.F_bgp_rib { host; route; source } ->
      List.exists
        (fun (e : Rib.bgp_entry) ->
          Route.equal_bgp e.be_route route
          &&
          match (e.be_source, source) with
          | Rib.Learned a, Rib.Learned b -> Ipv4.equal a b
          | a, b -> a = b)
        (Stable_state.bgp_lookup state host route.Route.prefix)
  | Fact.F_path { src; dst; _ } -> Stable_state.reachable state ~src ~dst
  | Fact.F_igp_rib { host; entry } ->
      List.exists
        (fun e -> Rib.compare_igp e entry = 0)
        (Stable_state.igp_lookup state host entry.ie_prefix)
  | Fact.F_connected_rib { host; prefix; ifname } -> (
      match Stable_state.main_lookup state host prefix with
      | entries ->
          List.exists
            (fun (e : Rib.main_entry) ->
              e.me_nexthop = Rib.Nh_connected ifname)
            entries)
  | Fact.F_config _ | Fact.F_acl _ | Fact.F_msg _ | Fact.F_edge _
  | Fact.F_redist_edge _ ->
      true

let facts_oracle facts state = List.for_all (fact_holds state) facts

type result = {
  killed : Element.Id_set.t;
  survived : Element.Id_set.t;
  skipped : Element.Id_set.t;
  mutants_run : int;
  seconds : float;
}

let run reg ~oracle ?elements () =
  let t0 = Unix.gettimeofday () in
  let devices = Registry.devices reg in
  let baseline = oracle (Stable_state.compute reg) in
  let element_ids =
    match elements with
    | Some ids -> ids
    | None -> Registry.fold_elements reg (fun acc e -> e.Element.id :: acc) []
  in
  let killed = ref Element.Id_set.empty in
  let survived = ref Element.Id_set.empty in
  let skipped = ref Element.Id_set.empty in
  let mutants = ref 0 in
  List.iter
    (fun id ->
      let e = Registry.element reg id in
      let mutant_devices =
        List.filter_map
          (fun (d : Device.t) ->
            if d.hostname <> e.Element.device then Some (Some d)
            else
              match delete_element d e.Element.ekey with
              | Some d' -> Some (Some d')
              | None -> None)
          devices
      in
      (* a [None] marker means the element could not be removed *)
      if List.length mutant_devices <> List.length devices then
        skipped := Element.Id_set.add id !skipped
      else begin
        incr mutants;
        let mutant = List.filter_map Fun.id mutant_devices in
        let verdict =
          match Stable_state.compute (Registry.build mutant) with
          | state -> ( try oracle state with _ -> not baseline)
          | exception _ -> not baseline
        in
        if verdict = baseline then survived := Element.Id_set.add id !survived
        else killed := Element.Id_set.add id !killed
      end)
    element_ids;
  {
    killed = !killed;
    survived = !survived;
    skipped = !skipped;
    mutants_run = !mutants;
    seconds = Unix.gettimeofday () -. t0;
  }
