open Netcov_types
open Netcov_config
open Netcov_sim

type msg_kind = Pre_import | Post_import

type t =
  | F_config of Element.id
  | F_main_rib of { host : string; entry : Rib.main_entry }
  | F_bgp_rib of { host : string; route : Route.bgp; source : Rib.bgp_source }
  | F_connected_rib of { host : string; prefix : Prefix.t; ifname : string }
  | F_igp_rib of { host : string; entry : Rib.igp_entry }
  | F_acl of { host : string; acl : string; rule : int option }
  | F_msg of { kind : msg_kind; edge : string; route : Route.bgp }
  | F_edge of string
  | F_redist_edge of { host : string; proto : Route.protocol }
  | F_path of { src : string; dst : Ipv4.t; idx : int }

let route_key (r : Route.bgp) =
  Printf.sprintf "%s|%s|%s|%d|%d|%s|%s|%d"
    (Prefix.to_string r.prefix)
    (Ipv4.to_string r.next_hop)
    (As_path.to_string r.as_path)
    r.local_pref r.med
    (String.concat ","
       (List.map Community.to_string (Community.Set.elements r.communities)))
    (Route.origin_to_string r.origin)
    r.cluster_len

let key = function
  | F_config id -> Printf.sprintf "cfg:%d" id
  | F_main_rib { host; entry } ->
      Printf.sprintf "main:%s:%s:%s:%s" host
        (Prefix.to_string entry.me_prefix)
        (Rib.nexthop_to_string entry.me_nexthop)
        (Route.protocol_to_string entry.me_protocol)
  | F_bgp_rib { host; route; source } ->
      Printf.sprintf "bgp:%s:%s:%s" host (route_key route)
        (Rib.bgp_source_to_string source)
  | F_connected_rib { host; prefix; ifname } ->
      Printf.sprintf "conn:%s:%s:%s" host (Prefix.to_string prefix) ifname
  | F_igp_rib { host; entry } ->
      Printf.sprintf "igp:%s:%s:%s:%s" host
        (Prefix.to_string entry.ie_prefix)
        (Ipv4.to_string entry.ie_nexthop)
        entry.ie_out_if
  | F_acl { host; acl; rule } ->
      Printf.sprintf "acl:%s:%s:%s" host acl
        (match rule with Some i -> string_of_int i | None -> "default")
  | F_msg { kind; edge; route } ->
      Printf.sprintf "msg:%s:%s:%s"
        (match kind with Pre_import -> "pre" | Post_import -> "post")
        edge (route_key route)
  | F_edge k -> "edge:" ^ k
  | F_redist_edge { host; proto } ->
      Printf.sprintf "redist-edge:%s:%s" host (Route.protocol_to_string proto)
  | F_path { src; dst; idx } ->
      Printf.sprintf "path:%s:%s:%d" src (Ipv4.to_string dst) idx

let host_of = function
  | F_config _ -> None
  | F_main_rib { host; _ }
  | F_bgp_rib { host; _ }
  | F_connected_rib { host; _ }
  | F_igp_rib { host; _ }
  | F_acl { host; _ }
  | F_redist_edge { host; _ } ->
      Some host
  | F_msg _ | F_edge _ -> None
  | F_path { src; _ } -> Some src

let is_config = function F_config id -> Some id | _ -> None
let pp fmt f = Format.pp_print_string fmt (key f)
let equal a b = String.equal (key a) (key b)
