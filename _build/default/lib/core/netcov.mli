(** NetCov public entry point: given a stable network state and what a
    test suite tested, compute configuration coverage. *)

open Netcov_config

(** What the test suite tested: data plane facts (RIB entries inspected
    by data plane tests) and configuration elements exercised directly
    by control plane tests. *)
type tested = { dp_facts : Fact.t list; cp_elements : Element.id list }

val no_tests : tested
val merge_tested : tested -> tested -> tested

type timing = {
  total_s : float;
  materialize_s : float;  (** IFG walk + stable-state lookups *)
  sim_s : float;  (** targeted simulations (subset of materialize) *)
  label_s : float;  (** BDD strong/weak labeling *)
  sim_count : int;
  ifg_nodes : int;
  ifg_edges : int;
  bdd_vars : int;
}

type report = {
  coverage : Coverage.t;
  timing : timing;
  dead : Deadcode.report;
}

(** [analyze state tested] runs the full pipeline: lazy IFG
    materialization from the tested data plane facts, strong/weak
    labeling, and direct marking of control-plane-tested elements. *)
val analyze : Netcov_sim.Stable_state.t -> tested -> report

(** Dead-code line share over considered lines, percent. *)
val dead_line_pct : report -> float
