open Netcov_config

type t = {
  gained : Element.Id_set.t;
  lost : Element.Id_set.t;
  strengthened : Element.Id_set.t;
  weakened : Element.Id_set.t;
}

let diff ~baseline current =
  let reg = Coverage.registry baseline in
  if Registry.n_elements reg <> Registry.n_elements (Coverage.registry current)
  then invalid_arg "Coverage_diff.diff: different registries";
  let gained = ref Element.Id_set.empty in
  let lost = ref Element.Id_set.empty in
  let strengthened = ref Element.Id_set.empty in
  let weakened = ref Element.Id_set.empty in
  Registry.iter_elements reg (fun e ->
      let id = e.Element.id in
      let add set = set := Element.Id_set.add id !set in
      match (Coverage.element_status baseline id, Coverage.element_status current id) with
      | Coverage.Not_covered, (Coverage.Weak | Coverage.Strong) -> add gained
      | (Coverage.Weak | Coverage.Strong), Coverage.Not_covered -> add lost
      | Coverage.Weak, Coverage.Strong -> add strengthened
      | Coverage.Strong, Coverage.Weak -> add weakened
      | Coverage.Not_covered, Coverage.Not_covered
      | Coverage.Weak, Coverage.Weak
      | Coverage.Strong, Coverage.Strong ->
          ());
  {
    gained = !gained;
    lost = !lost;
    strengthened = !strengthened;
    weakened = !weakened;
  }

let is_empty d =
  Element.Id_set.is_empty d.gained
  && Element.Id_set.is_empty d.lost
  && Element.Id_set.is_empty d.strengthened
  && Element.Id_set.is_empty d.weakened

let no_regression d =
  Element.Id_set.is_empty d.lost && Element.Id_set.is_empty d.weakened

let summary reg d =
  let buf = Buffer.create 512 in
  let section title set =
    let n = Element.Id_set.cardinal set in
    if n > 0 then begin
      Buffer.add_string buf (Printf.sprintf "%s: %d element(s)\n" title n);
      Element.Id_set.elements set
      |> List.filteri (fun i _ -> i < 5)
      |> List.iter (fun id ->
             let e = Registry.element reg id in
             Buffer.add_string buf
               (Printf.sprintf "  %s:%s (%s)\n" e.Element.device
                  (Element.name_of e)
                  (Element.etype_to_string (Element.etype_of e))))
    end
  in
  section "newly covered" d.gained;
  section "coverage lost" d.lost;
  section "strengthened (weak -> strong)" d.strengthened;
  section "weakened (strong -> weak)" d.weakened;
  if is_empty d then Buffer.add_string buf "coverage unchanged\n";
  Buffer.contents buf
