open Netcov_config

let src_path host = "configs/" ^ host ^ ".cfg"

let report cov =
  let reg = Coverage.registry cov in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (d : Device.t) ->
      let host = d.hostname in
      Buffer.add_string buf "TN:netcov\n";
      Buffer.add_string buf ("SF:" ^ src_path host ^ "\n");
      let total = Registry.device_total_lines reg host in
      let found = ref 0 and hit = ref 0 in
      for line = 1 to total do
        match Coverage.line_status cov host line with
        | None -> ()
        | Some st ->
            incr found;
            let hits = match st with Coverage.Not_covered -> 0 | _ -> 1 in
            if hits > 0 then incr hit;
            Buffer.add_string buf (Printf.sprintf "DA:%d,%d\n" line hits)
      done;
      Buffer.add_string buf (Printf.sprintf "LF:%d\n" !found);
      Buffer.add_string buf (Printf.sprintf "LH:%d\n" !hit);
      Buffer.add_string buf "end_of_record\n")
    (Registry.internal_devices reg);
  Buffer.contents buf

let write_tree cov dir =
  let reg = Coverage.registry cov in
  let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  mkdir dir;
  mkdir (Filename.concat dir "configs");
  List.iter
    (fun (d : Device.t) ->
      let oc = open_out (Filename.concat dir (src_path d.hostname)) in
      Array.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (Registry.text reg d.hostname);
      close_out oc)
    (Registry.internal_devices reg);
  let oc = open_out (Filename.concat dir "coverage.info") in
  output_string oc (report cov);
  close_out oc

let file_table cov =
  let buf = Buffer.create 1024 in
  let overall = Coverage.line_stats cov in
  Buffer.add_string buf
    (Printf.sprintf "overall coverage: %.1f%% (%d of %d considered lines)\n"
       (Coverage.pct overall)
       (Coverage.covered_lines overall)
       overall.Coverage.considered);
  Buffer.add_string buf
    (Printf.sprintf "%-16s %9s %9s %9s %8s\n" "device" "covered" "considered"
       "total" "percent");
  List.iter
    (fun (host, s) ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %9d %9d %9d %7.1f%%\n" host
           (Coverage.covered_lines s) s.Coverage.considered s.Coverage.total
           (Coverage.pct s)))
    (Coverage.device_stats cov);
  Buffer.contents buf

let annotate cov host =
  let reg = Coverage.registry cov in
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i line ->
      let marker =
        match Coverage.line_status cov host (i + 1) with
        | None -> ' '
        | Some Coverage.Strong -> '+'
        | Some Coverage.Weak -> '~'
        | Some Coverage.Not_covered -> '-'
      in
      Buffer.add_string buf (Printf.sprintf "%c %5d  %s\n" marker (i + 1) line))
    (Registry.text reg host);
  Buffer.contents buf
