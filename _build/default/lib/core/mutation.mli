(** Mutation-based coverage — the alternative definition the paper
    discusses in §3.1 and leaves to future work: an element is covered
    by a test suite iff deleting it changes the suite's outcome.

    This is far more expensive than IFG coverage (one full control-plane
    computation per element) and is provided for comparison and for the
    ablation benchmark. It also surfaces the class of elements IFG
    coverage deliberately excludes: elements whose only effect is to
    de-prioritize or reject the {e competitors} of tested facts. *)

open Netcov_config
open Netcov_sim

(** [delete_element device key] removes the element from the device
    configuration; [None] when the key does not name a removable element
    of this device. *)
val delete_element : Device.t -> Element.key -> Device.t option

(** [fact_holds state fact] checks whether a tested data plane fact is
    (still) derivable from a stable state: the RIB entry exists, or some
    forwarding path between the endpoints still reaches. *)
val fact_holds : Stable_state.t -> Fact.t -> bool

type result = {
  killed : Element.Id_set.t;
      (** elements whose deletion changes the suite outcome *)
  survived : Element.Id_set.t;
  skipped : Element.Id_set.t;  (** elements that could not be mutated *)
  mutants_run : int;
  seconds : float;
}

(** [run reg ~oracle ?elements ()] deletes each element in turn (by
    default every element of every internal device; ids refer to [reg]),
    recomputes the stable state of the mutant network, and asks the
    oracle whether the test suite still passes. [oracle baseline] is
    evaluated once on the unmutated network; a mutant kills its element
    iff the oracle answer differs.

    The default oracle for data plane facts is
    [fun st -> List.for_all (fact_holds st) tested.dp_facts]. *)
val run :
  Registry.t ->
  oracle:(Stable_state.t -> bool) ->
  ?elements:Element.id list ->
  unit ->
  result

(** Convenience oracle: all the given facts still hold. *)
val facts_oracle : Fact.t list -> Stable_state.t -> bool
