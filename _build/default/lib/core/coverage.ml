open Netcov_config

type status = Not_covered | Weak | Strong

let status_to_string = function
  | Not_covered -> "not-covered"
  | Weak -> "weak"
  | Strong -> "strong"

let status_rank = function Not_covered -> 0 | Weak -> 1 | Strong -> 2

type t = { reg : Registry.t; status : status array }

let registry t = t.reg
let empty reg = { reg; status = Array.make (Registry.n_elements reg) Not_covered }

let of_sets reg ~strong ~weak =
  let t = empty reg in
  Element.Id_set.iter
    (fun id -> if id < Array.length t.status then t.status.(id) <- Weak)
    weak;
  Element.Id_set.iter
    (fun id -> if id < Array.length t.status then t.status.(id) <- Strong)
    strong;
  t

let merge a b =
  let status =
    Array.mapi
      (fun i s -> if status_rank b.status.(i) > status_rank s then b.status.(i) else s)
      a.status
  in
  { reg = a.reg; status }

let element_status t id =
  if id >= 0 && id < Array.length t.status then t.status.(id) else Not_covered

let with_strong t ids =
  let status = Array.copy t.status in
  List.iter
    (fun id -> if id >= 0 && id < Array.length status then status.(id) <- Strong)
    ids;
  { t with status }

type line_stats = {
  strong_lines : int;
  weak_lines : int;
  considered : int;
  total : int;
}

let covered_lines s = s.strong_lines + s.weak_lines

let pct s =
  if s.considered = 0 then 0.
  else 100. *. float_of_int (covered_lines s) /. float_of_int s.considered

let device_line_stats t host =
  let strong_lines = ref 0 and weak_lines = ref 0 and considered = ref 0 in
  let total = Registry.device_total_lines t.reg host in
  for line = 1 to total do
    match Registry.line_owner t.reg host line with
    | None -> ()
    | Some id -> (
        incr considered;
        match element_status t id with
        | Strong -> incr strong_lines
        | Weak -> incr weak_lines
        | Not_covered -> ())
  done;
  {
    strong_lines = !strong_lines;
    weak_lines = !weak_lines;
    considered = !considered;
    total;
  }

let internal_hosts t =
  List.map
    (fun (d : Device.t) -> d.hostname)
    (Registry.internal_devices t.reg)

let device_stats t =
  List.map (fun h -> (h, device_line_stats t h)) (internal_hosts t)

let line_stats t =
  List.fold_left
    (fun acc (_, s) ->
      {
        strong_lines = acc.strong_lines + s.strong_lines;
        weak_lines = acc.weak_lines + s.weak_lines;
        considered = acc.considered + s.considered;
        total = acc.total + s.total;
      })
    { strong_lines = 0; weak_lines = 0; considered = 0; total = 0 }
    (device_stats t)

type type_stats = {
  elems_covered : int;
  elems_total : int;
  lines_strong : int;
  lines_weak : int;
  lines_total : int;
}

let empty_type_stats =
  {
    elems_covered = 0;
    elems_total = 0;
    lines_strong = 0;
    lines_weak = 0;
    lines_total = 0;
  }

let stats_by classify t =
  let tbl = Hashtbl.create 16 in
  Registry.iter_elements t.reg (fun e ->
      let klass = classify (Element.etype_of e) in
      let cur = Option.value (Hashtbl.find_opt tbl klass) ~default:empty_type_stats in
      let lines = Element.line_count e in
      let status = element_status t e.Element.id in
      let updated =
        {
          elems_covered = (cur.elems_covered + if status <> Not_covered then 1 else 0);
          elems_total = cur.elems_total + 1;
          lines_strong = (cur.lines_strong + if status = Strong then lines else 0);
          lines_weak = (cur.lines_weak + if status = Weak then lines else 0);
          lines_total = cur.lines_total + lines;
        }
      in
      Hashtbl.replace tbl klass updated);
  tbl

let etype_stats t =
  let tbl = stats_by (fun e -> e) t in
  List.filter_map
    (fun et ->
      Option.map (fun s -> (et, s)) (Hashtbl.find_opt tbl et))
    Element.all_etypes

let bucket_stats t =
  let tbl = stats_by Element.bucket_of_etype t in
  List.filter_map
    (fun b -> Option.map (fun s -> (b, s)) (Hashtbl.find_opt tbl b))
    Element.all_buckets

let line_status t host line =
  Option.map (fun id -> element_status t id) (Registry.line_owner t.reg host line)

let covered_elements t =
  let s = ref Element.Id_set.empty in
  Array.iteri
    (fun id st -> if st <> Not_covered then s := Element.Id_set.add id !s)
    t.status;
  !s
