lib/nettypes/prefix_trie.mli: Ipv4 Prefix
