lib/nettypes/prefix.mli: Format Ipv4
