lib/nettypes/community.ml: Format Int Printf Set String
