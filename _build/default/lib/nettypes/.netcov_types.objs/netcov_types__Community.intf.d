lib/nettypes/community.mli: Format Set
