lib/nettypes/as_regex.mli: As_path Format
