lib/nettypes/as_path.mli: Format
