lib/nettypes/as_path.ml: Format Int List String
