lib/nettypes/as_regex.ml: Array As_path Format Printf String
