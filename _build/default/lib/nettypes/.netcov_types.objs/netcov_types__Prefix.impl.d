lib/nettypes/prefix.ml: Format Int Ipv4 Printf String
