lib/nettypes/route.ml: As_path Community Format Int Ipv4 List Prefix Printf String
