(** AS-path regular expressions, Cisco-style, matched at the granularity
    of whole AS numbers.

    Supported syntax: ASN literals, [.] (any single ASN), [_] (token
    boundary), [^] (path start), [$] (path end), [( )] grouping, [|]
    alternation, [*], [+], [?] postfix repetition. Matching is a search:
    the pattern may match any contiguous part of the path unless
    anchored. *)

type t

(** [compile s] parses the pattern. Raises [Invalid_argument] on syntax
    errors. *)
val compile : string -> t

val compile_opt : string -> t option

(** The source text of the pattern. *)
val source : t -> string

(** [matches re path] tests the compiled pattern against an AS path. *)
val matches : t -> As_path.t -> bool

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
