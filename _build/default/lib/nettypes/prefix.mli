(** IPv4 CIDR prefixes, kept in canonical form: host bits are zero. *)

type t = private { addr : Ipv4.t; len : int }

(** [make addr len] canonicalizes by zeroing host bits. Raises
    [Invalid_argument] if [len] is outside [0, 32]. *)
val make : Ipv4.t -> int -> t

val addr : t -> Ipv4.t
val len : t -> int

(** The default route 0.0.0.0/0. *)
val default : t

(** [of_string "10.0.0.0/8"] parses CIDR notation. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [mask p] is the netmask of [p] as an address. *)
val mask : t -> Ipv4.t

(** [contains p a] is true iff address [a] falls inside [p]. *)
val contains : t -> Ipv4.t -> bool

(** [subsumes p q] is true iff every address of [q] is in [p]
    (i.e. [p] is equal or less specific). *)
val subsumes : t -> t -> bool

(** [overlaps p q] is true iff the prefixes share any address. *)
val overlaps : t -> t -> bool

(** The two /[len+1] halves of a prefix; raises [Invalid_argument] on a
    /32. *)
val halves : t -> t * t

(** [nth_subnet p ~len ~n] is the [n]-th /[len] subnet of [p].
    Raises [Invalid_argument] if [len < len p] or [n] out of range. *)
val nth_subnet : t -> len:int -> n:int -> t

(** Number of /[len] subnets inside [p]. *)
val subnet_count : t -> len:int -> int

(** [first_host p] is the first usable address (network address + 1 for
    prefixes shorter than /31, the network address itself otherwise). *)
val first_host : t -> Ipv4.t

(** [interface_prefix addr len] is the prefix containing [addr], i.e. the
    connected route announced by an interface with that address. *)
val interface_prefix : Ipv4.t -> int -> t
