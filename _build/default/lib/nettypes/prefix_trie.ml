(* A plain binary trie: the path from the root encodes prefix bits, one
   level per bit. Depth is at most 32, so operations are O(32). *)

type 'a t = Leaf | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _, _, _ -> Node { value; zero; one }

let is_empty t = t = Leaf

let rec cardinal = function
  | Leaf -> 0
  | Node { value; zero; one } ->
      (match value with Some _ -> 1 | None -> 0) + cardinal zero + cardinal one

let update p f t =
  let addr = Prefix.addr p and len = Prefix.len p in
  let rec go depth t =
    match t with
    | Leaf ->
        if depth = len then node (f None) Leaf Leaf
        else if Ipv4.bit addr depth then node None Leaf (go (depth + 1) Leaf)
        else node None (go (depth + 1) Leaf) Leaf
    | Node { value; zero; one } ->
        if depth = len then node (f value) zero one
        else if Ipv4.bit addr depth then node value zero (go (depth + 1) one)
        else node value (go (depth + 1) zero) one
  in
  go 0 t

let add p v t = update p (fun _ -> Some v) t
let remove p t = update p (fun _ -> None) t

let find_opt p t =
  let addr = Prefix.addr p and len = Prefix.len p in
  let rec go depth t =
    match t with
    | Leaf -> None
    | Node { value; zero; one } ->
        if depth = len then value
        else if Ipv4.bit addr depth then go (depth + 1) one
        else go (depth + 1) zero
  in
  go 0 t

let mem p t = find_opt p t <> None

let all_matches addr t =
  let rec go depth t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> (Prefix.make addr depth, v) :: acc
          | None -> acc
        in
        if depth = 32 then acc
        else if Ipv4.bit addr depth then go (depth + 1) one acc
        else go (depth + 1) zero acc
  in
  go 0 t []

let longest_match addr t =
  match all_matches addr t with [] -> None | best :: _ -> Some best

let rec fold_at base depth f t acc =
  match t with
  | Leaf -> acc
  | Node { value; zero; one } ->
      let acc =
        match value with
        | Some v -> f (Prefix.make base depth) v acc
        | None -> acc
      in
      let acc = fold_at base (depth + 1) f zero acc in
      if depth = 32 then acc
      else
        let one_base = Ipv4.add base (1 lsl (32 - depth - 1)) in
        fold_at one_base (depth + 1) f one acc

let fold f t acc = fold_at Ipv4.zero 0 f t acc
let iter f t = fold (fun p v () -> f p v) t ()
let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let subsumed p t =
  let addr = Prefix.addr p and len = Prefix.len p in
  let rec descend depth t =
    match t with
    | Leaf -> Leaf
    | Node { zero; one; _ } as n ->
        if depth = len then n
        else if Ipv4.bit addr depth then descend (depth + 1) one
        else descend (depth + 1) zero
  in
  let subtree = descend 0 t in
  List.rev (fold_at addr len (fun q v acc -> (q, v) :: acc) subtree [])

let rec map f = function
  | Leaf -> Leaf
  | Node { value; zero; one } ->
      Node { value = Option.map f value; zero = map f zero; one = map f one }

let equal eq a b =
  let la = to_list a and lb = to_list b in
  List.length la = List.length lb
  && List.for_all2 (fun (p, v) (q, w) -> Prefix.equal p q && eq v w) la lb
