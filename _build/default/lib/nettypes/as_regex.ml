type re =
  | Eps
  | Asn of int
  | Any
  | Boundary
  | Start
  | End
  | Seq of re * re
  | Alt of re * re
  | Star of re
  | Plus of re
  | Opt of re

type t = { source : string; re : re }

exception Syntax of string

(* Recursive-descent parser over the pattern characters. *)
let parse (s : string) : re =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Syntax (Printf.sprintf "%s at offset %d in %S" msg !pos s)) in
  let rec alt () =
    let lhs = concat () in
    match peek () with
    | Some '|' ->
        advance ();
        Alt (lhs, alt ())
    | Some _ | None -> lhs
  and concat () =
    let rec go consumed acc =
      match peek () with
      | None | Some ')' | Some '|' ->
          if consumed then acc else fail "empty pattern branch"
      | Some _ ->
          let a = postfix () in
          go true (if acc = Eps then a else Seq (acc, a))
    in
    go false Eps
  and postfix () =
    let a = atom () in
    let rec reps a =
      match peek () with
      | Some '*' ->
          advance ();
          reps (Star a)
      | Some '+' ->
          advance ();
          reps (Plus a)
      | Some '?' ->
          advance ();
          reps (Opt a)
      | Some _ | None -> a
    in
    reps a
  and atom () =
    match peek () with
    | None -> fail "unexpected end of pattern"
    | Some '^' ->
        advance ();
        Start
    | Some '$' ->
        advance ();
        End
    | Some '_' ->
        advance ();
        Boundary
    | Some '.' ->
        advance ();
        Any
    | Some '(' ->
        advance ();
        let inner = alt () in
        (match peek () with
        | Some ')' -> advance ()
        | Some _ | None -> fail "expected ')'");
        inner
    | Some c when c >= '0' && c <= '9' ->
        let start = !pos in
        while
          match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false
        do
          advance ()
        done;
        Asn (int_of_string (String.sub s start (!pos - start)))
    | Some ' ' ->
        advance ();
        Eps
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let r = alt () in
  if !pos <> n then fail "trailing input";
  r

let compile_opt s =
  match parse s with
  | re -> Some { source = s; re }
  | exception Syntax _ -> None

let compile s =
  match parse s with
  | re -> { source = s; re }
  | exception Syntax msg -> invalid_arg ("As_regex.compile: " ^ msg)

let source t = t.source

(* Backtracking matcher over the ASN token array. [k] is the continuation
   receiving the position after the sub-match. *)
let rec mtch (re : re) (toks : int array) (i : int) (k : int -> bool) : bool =
  let n = Array.length toks in
  match re with
  | Eps | Boundary -> k i
  | Start -> i = 0 && k i
  | End -> i = n && k i
  | Asn a -> i < n && toks.(i) = a && k (i + 1)
  | Any -> i < n && k (i + 1)
  | Seq (a, b) -> mtch a toks i (fun j -> mtch b toks j k)
  | Alt (a, b) -> mtch a toks i k || mtch b toks i k
  | Opt a -> k i || mtch a toks i k
  | Plus a -> mtch a toks i (fun j -> star_from a toks j i k)
  | Star a -> k i || mtch a toks i (fun j -> star_from a toks j i k)

(* Continue matching [Star a] from position [j]; [prev] guards against
   zero-width loops. *)
and star_from a toks j prev k =
  if j = prev then k j
  else k j || mtch a toks j (fun j' -> star_from a toks j' j k)

let matches t path =
  let toks = Array.of_list (As_path.to_list path) in
  let n = Array.length toks in
  let rec search i =
    if i > n then false
    else if mtch t.re toks i (fun _ -> true) then true
    else search (i + 1)
  in
  search 0

let pp fmt t = Format.fprintf fmt "/%s/" t.source
let equal a b = String.equal a.source b.source
let compare a b = String.compare a.source b.source
