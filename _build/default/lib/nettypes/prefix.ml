type t = { addr : Ipv4.t; len : int }

let mask_of_len len =
  if len = 0 then Ipv4.zero
  else Ipv4.of_int (0xFFFFFFFF lsl (32 - len))

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: bad length %d" len);
  { addr = Ipv4.logand addr (mask_of_len len); len }

let addr p = p.addr
let len p = p.len
let default = make Ipv4.zero 0

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr_s = String.sub s 0 i in
      let len_s = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string_opt addr_s, int_of_string_opt len_s) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _, _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.addr) p.len
let pp fmt p = Format.pp_print_string fmt (to_string p)

let compare p q =
  match Ipv4.compare p.addr q.addr with
  | 0 -> Int.compare p.len q.len
  | c -> c

let equal p q = compare p q = 0
let hash p = (Ipv4.hash p.addr * 33) + p.len
let mask p = mask_of_len p.len
let contains p a = Ipv4.equal (Ipv4.logand a (mask p)) p.addr
let subsumes p q = p.len <= q.len && contains p q.addr

let overlaps p q = subsumes p q || subsumes q p

let halves p =
  if p.len >= 32 then invalid_arg "Prefix.halves: /32 has no halves";
  let lo = make p.addr (p.len + 1) in
  let hi_addr = Ipv4.add p.addr (1 lsl (32 - p.len - 1)) in
  (lo, make hi_addr (p.len + 1))

let subnet_count p ~len =
  if len < p.len then 0
  else if len - p.len >= 62 then max_int
  else 1 lsl (len - p.len)

let nth_subnet p ~len ~n =
  if len < p.len then invalid_arg "Prefix.nth_subnet: target less specific";
  if n < 0 || n >= subnet_count p ~len then
    invalid_arg "Prefix.nth_subnet: index out of range";
  make (Ipv4.add p.addr (n lsl (32 - len))) len

let first_host p =
  if p.len >= 31 then p.addr else Ipv4.succ p.addr

let interface_prefix addr len = make addr len
