(** IPv4 addresses represented as non-negative integers in [0, 2^32). *)

type t = private int

val zero : t
val broadcast : t

(** [of_int n] masks [n] to 32 bits. *)
val of_int : int -> t

val to_int : t -> int

(** [of_octets a b c d] builds the address [a.b.c.d]. Octets are masked to
    8 bits. *)
val of_octets : int -> int -> int -> int -> t

val to_octets : t -> int * int * int * int

(** [of_string s] parses dotted-quad notation. Raises [Invalid_argument]
    on malformed input. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [succ a] is the next address; wraps at the top of the space. *)
val succ : t -> t

val add : t -> int -> t

(** [bit a i] is bit [i] of [a], where bit 0 is the most significant. *)
val bit : t -> int -> bool

val logand : t -> t -> t
val logor : t -> t -> t
val lognot : t -> t
