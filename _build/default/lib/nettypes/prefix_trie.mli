(** A binary trie keyed by IPv4 prefixes, supporting exact lookup,
    longest-prefix match and subtree queries. This is the storage used by
    the simulator's RIBs and the stable-state lookups of the coverage
    core. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

(** Number of prefixes with a binding. *)
val cardinal : 'a t -> int

(** [add p v t] binds prefix [p] to [v], replacing any previous
    binding. *)
val add : Prefix.t -> 'a -> 'a t -> 'a t

(** [update p f t] rebinds [p] to [f (find_opt p t)]; removing the
    binding when [f] returns [None]. *)
val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t

val remove : Prefix.t -> 'a t -> 'a t
val find_opt : Prefix.t -> 'a t -> 'a option
val mem : Prefix.t -> 'a t -> bool

(** [longest_match addr t] is the most specific prefix in [t] containing
    [addr], with its value. *)
val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option

(** [all_matches addr t] is every binding whose prefix contains [addr],
    most specific first. *)
val all_matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list

(** [subsumed p t] is every binding whose prefix is equal to or more
    specific than [p]. *)
val subsumed : Prefix.t -> 'a t -> (Prefix.t * 'a) list

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
