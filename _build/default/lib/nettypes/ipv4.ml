type t = int

let mask32 = 0xFFFFFFFF
let zero = 0
let broadcast = mask32
let of_int n = n land mask32
let to_int a = a

let of_octets a b c d =
  ((a land 0xFF) lsl 24)
  lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8)
  lor (d land 0xFF)

let to_octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let of_string_opt s =
  let ok_octet n = n >= 0 && n <= 255 in
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when ok_octet a && ok_octet b && ok_octet c && ok_octet d ->
          Some (of_octets a b c d)
      | _, _, _, _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let pp fmt a = Format.pp_print_string fmt (to_string a)
let compare = Int.compare
let equal = Int.equal
let hash a = a land max_int
let succ a = (a + 1) land mask32
let add a n = (a + n) land mask32
let bit a i = (a lsr (31 - i)) land 1 = 1
let logand a b = a land b
let logor a b = a lor b
let lognot a = lnot a land mask32
