(** RIB entry types and per-host tables. The simulator fills these; the
    coverage core performs stable-state lookups against them (§4.2). *)

open Netcov_types

(** Forwarding next hop of a main-RIB entry. *)
type nexthop =
  | Nh_connected of string  (** out interface; destination on-link *)
  | Nh_ip of Ipv4.t  (** gateway address, possibly needing resolution *)
  | Nh_discard  (** null route (e.g. locally generated aggregate) *)

val nexthop_to_string : nexthop -> string
val compare_nexthop : nexthop -> nexthop -> int

type main_entry = {
  me_prefix : Prefix.t;
  me_nexthop : nexthop;
  me_protocol : Route.protocol;
  me_metric : int;  (** IGP cost; 0 for other protocols *)
}

val compare_main : main_entry -> main_entry -> int
val pp_main : Format.formatter -> main_entry -> unit

(** Provenance-free origin marker of a BGP RIB entry (part of the visible
    stable state, as a real RIB dump would show). *)
type bgp_source =
  | Learned of Ipv4.t  (** sender address (session address of the peer) *)
  | From_network  (** network statement pulled it from the main RIB *)
  | From_aggregate
  | From_redistribute of Route.protocol

val bgp_source_to_string : bgp_source -> string

type bgp_entry = {
  be_route : Route.bgp;
  be_source : bgp_source;
  be_from_ebgp : bool;  (** true when learned over an eBGP edge *)
  be_igp_cost : int;  (** cost to reach the next hop, for tie-breaks *)
  be_peer_id : Ipv4.t;  (** sender router-id / session ip for tie-breaks *)
  be_best : bool;
}

val compare_bgp_entry : bgp_entry -> bgp_entry -> int
val pp_bgp_entry : Format.formatter -> bgp_entry -> unit

type igp_entry = {
  ie_prefix : Prefix.t;
  ie_nexthop : Ipv4.t;
  ie_out_if : string;
  ie_cost : int;
  ie_dest_host : string;  (** host owning the destination prefix *)
  ie_dest_if : string;
}

val compare_igp : igp_entry -> igp_entry -> int

(** A per-host table of entries, multiple entries per prefix (ECMP /
    multiple learned paths). *)
type 'a table = 'a list Prefix_trie.t

val table_add : Prefix.t -> 'a -> 'a table -> 'a table
val table_find : Prefix.t -> 'a table -> 'a list
val table_entries : 'a table -> (Prefix.t * 'a) list
val table_count : 'a table -> int
val table_longest_match : Ipv4.t -> 'a table -> (Prefix.t * 'a list) option
