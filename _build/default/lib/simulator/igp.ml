open Netcov_types
open Netcov_config

module Pq = Set.Make (struct
  type t = int * string

  let compare (c1, h1) (c2, h2) =
    match Int.compare c1 c2 with 0 -> String.compare h1 h2 | c -> c
end)

type link = {
  cost : int;
  remote_host : string;
  local_ep : Topology.endpoint;
  remote_ep : Topology.endpoint;
}

let igp_if (d : Device.t) name =
  match Device.find_interface d name with
  | Some i when i.igp_enabled -> Some i
  | Some _ | None -> None

let build_graph devices topo =
  let dev_tbl = Hashtbl.create 64 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace dev_tbl d.hostname d) devices;
  let graph = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      let links =
        List.filter_map
          (fun (adj : Topology.adjacency) ->
            match
              ( igp_if d adj.local.ifname,
                Option.bind
                  (Hashtbl.find_opt dev_tbl adj.remote.host)
                  (fun rd -> igp_if rd adj.remote.ifname) )
            with
            | Some li, Some _ ->
                Some
                  {
                    cost = li.igp_metric;
                    remote_host = adj.remote.host;
                    local_ep = adj.local;
                    remote_ep = adj.remote;
                  }
            | _, _ -> None)
          (Topology.adjacencies_of topo d.hostname)
      in
      Hashtbl.replace graph d.hostname links)
    devices;
  (dev_tbl, graph)

(* Dijkstra from [src], also collecting the set of ECMP first-hop links
   toward every reachable host. *)
let dijkstra graph src =
  let dist = Hashtbl.create 64 in
  let first_hops : (string, link list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace dist src 0;
  let pq = ref (Pq.singleton (0, src)) in
  while not (Pq.is_empty !pq) do
    let ((d, u) as min_elt) = Pq.min_elt !pq in
    pq := Pq.remove min_elt !pq;
    let current = Option.value (Hashtbl.find_opt dist u) ~default:max_int in
    if d = current then
      List.iter
        (fun l ->
          let nd = d + l.cost in
          let v = l.remote_host in
          let old = Option.value (Hashtbl.find_opt dist v) ~default:max_int in
          let hops_via_u =
            if u = src then [ l ]
            else Option.value (Hashtbl.find_opt first_hops u) ~default:[]
          in
          if nd < old then begin
            Hashtbl.replace dist v nd;
            Hashtbl.replace first_hops v hops_via_u;
            pq := Pq.add (nd, v) !pq
          end
          else if nd = old && nd < max_int then begin
            let cur = Option.value (Hashtbl.find_opt first_hops v) ~default:[] in
            let merged =
              List.fold_left
                (fun acc h -> if List.memq h acc then acc else acc @ [ h ])
                cur hops_via_u
            in
            Hashtbl.replace first_hops v merged
          end)
        (Option.value (Hashtbl.find_opt graph u) ~default:[])
  done;
  (dist, first_hops)

let compute devices topo =
  let dev_tbl, graph = build_graph devices topo in
  (* Destinations: prefixes of IGP-enabled interfaces, keyed by owner. *)
  let destinations =
    List.concat_map
      (fun (d : Device.t) ->
        List.filter_map
          (fun (i : Device.interface) ->
            match i.address with
            | Some (ip, plen) when i.igp_enabled ->
                Some
                  ( d.hostname,
                    i.if_name,
                    Prefix.interface_prefix ip plen,
                    i.igp_metric )
            | Some _ | None -> None)
          d.interfaces)
      devices
  in
  let result = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      if Hashtbl.mem dev_tbl d.hostname then begin
        let dist, first_hops = dijkstra graph d.hostname in
        let table =
          List.fold_left
            (fun table (owner, dest_if, prefix, stub_cost) ->
              if owner = d.hostname then table
              else
                match Hashtbl.find_opt dist owner with
                | None -> table
                | Some c ->
                    let hops =
                      Option.value (Hashtbl.find_opt first_hops owner) ~default:[]
                    in
                    List.fold_left
                      (fun table (l : link) ->
                        Rib.table_add prefix
                          {
                            Rib.ie_prefix = prefix;
                            ie_nexthop = l.remote_ep.ip;
                            ie_out_if = l.local_ep.ifname;
                            ie_cost = c + stub_cost;
                            ie_dest_host = owner;
                            ie_dest_if = dest_if;
                          }
                          table)
                      table hops)
            Prefix_trie.empty destinations
        in
        Hashtbl.replace result d.hostname table
      end)
    devices;
  result
