open Netcov_types
open Netcov_config

type endpoint = { host : string; ifname : string; ip : Ipv4.t; plen : int }

let endpoint_prefix e = Prefix.interface_prefix e.ip e.plen

type adjacency = { local : endpoint; remote : endpoint }

type t = {
  by_host : (string, adjacency list) Hashtbl.t;
  by_ip : (int, endpoint) Hashtbl.t;
  endpoints : (string, endpoint list) Hashtbl.t;
  host_list : string list;
}

let build devices =
  let endpoints_all =
    List.concat_map
      (fun (d : Device.t) ->
        List.filter_map
          (fun (i : Device.interface) ->
            match i.address with
            | Some (ip, plen) ->
                Some { host = d.hostname; ifname = i.if_name; ip; plen }
            | None -> None)
          d.interfaces)
      devices
  in
  let by_ip = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace by_ip (Ipv4.to_int e.ip) e) endpoints_all;
  let endpoints = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur = Option.value (Hashtbl.find_opt endpoints e.host) ~default:[] in
      Hashtbl.replace endpoints e.host (cur @ [ e ]))
    endpoints_all;
  (* Group endpoints by subnet; all pairs on different hosts in the same
     subnet are adjacent. *)
  let by_subnet = Hashtbl.create 256 in
  List.iter
    (fun e ->
      let key = Prefix.to_string (endpoint_prefix e) in
      let cur = Option.value (Hashtbl.find_opt by_subnet key) ~default:[] in
      Hashtbl.replace by_subnet key (e :: cur))
    endpoints_all;
  let by_host = Hashtbl.create 64 in
  let add_adj local remote =
    let cur = Option.value (Hashtbl.find_opt by_host local.host) ~default:[] in
    Hashtbl.replace by_host local.host (cur @ [ { local; remote } ])
  in
  Hashtbl.iter
    (fun _ members ->
      let members = List.rev members in
      List.iter
        (fun a ->
          List.iter
            (fun b -> if a.host <> b.host then add_adj a b)
            members)
        members)
    by_subnet;
  let host_list = List.map (fun (d : Device.t) -> d.hostname) devices in
  { by_host; by_ip; endpoints; host_list }

let adjacencies_of t host =
  Option.value (Hashtbl.find_opt t.by_host host) ~default:[]

let endpoint_of_ip t ip = Hashtbl.find_opt t.by_ip (Ipv4.to_int ip)

let endpoints_of t host =
  Option.value (Hashtbl.find_opt t.endpoints host) ~default:[]

let on_shared_subnet t host ip =
  List.find_opt
    (fun e -> Prefix.contains (endpoint_prefix e) ip)
    (endpoints_of t host)

let hosts t = t.host_list
