(** Physical topology derived from interface addressing: two interfaces
    are adjacent iff their connected prefixes are the same subnet. *)

open Netcov_types
open Netcov_config

type endpoint = {
  host : string;
  ifname : string;
  ip : Ipv4.t;
  plen : int;
}

val endpoint_prefix : endpoint -> Prefix.t

(** A directed adjacency: [local] and [remote] share a subnet. *)
type adjacency = { local : endpoint; remote : endpoint }

type t

val build : Device.t list -> t

(** All adjacencies with [host] on the local side. *)
val adjacencies_of : t -> string -> adjacency list

(** [endpoint_of_ip t ip] finds the unique interface carrying [ip]. *)
val endpoint_of_ip : t -> Ipv4.t -> endpoint option

(** [on_shared_subnet t host ip] is the local endpoint of [host] whose
    subnet contains [ip], if any — the egress interface toward a
    directly-connected address. *)
val on_shared_subnet : t -> string -> Ipv4.t -> endpoint option

(** All endpoints (addressed interfaces) of a host. *)
val endpoints_of : t -> string -> endpoint list

val hosts : t -> string list
