open Netcov_types

type nexthop = Nh_connected of string | Nh_ip of Ipv4.t | Nh_discard

let nexthop_to_string = function
  | Nh_connected ifname -> "direct " ^ ifname
  | Nh_ip ip -> Ipv4.to_string ip
  | Nh_discard -> "discard"

let compare_nexthop a b =
  match (a, b) with
  | Nh_connected x, Nh_connected y -> String.compare x y
  | Nh_connected _, (Nh_ip _ | Nh_discard) -> -1
  | Nh_ip _, Nh_connected _ -> 1
  | Nh_ip x, Nh_ip y -> Ipv4.compare x y
  | Nh_ip _, Nh_discard -> -1
  | Nh_discard, (Nh_connected _ | Nh_ip _) -> 1
  | Nh_discard, Nh_discard -> 0

type main_entry = {
  me_prefix : Prefix.t;
  me_nexthop : nexthop;
  me_protocol : Route.protocol;
  me_metric : int;
}

let compare_main a b =
  match Prefix.compare a.me_prefix b.me_prefix with
  | 0 -> (
      match compare_nexthop a.me_nexthop b.me_nexthop with
      | 0 -> (
          match Route.compare_protocol a.me_protocol b.me_protocol with
          | 0 -> Int.compare a.me_metric b.me_metric
          | c -> c)
      | c -> c)
  | c -> c

let pp_main fmt e =
  Format.fprintf fmt "%s via %s [%s]"
    (Prefix.to_string e.me_prefix)
    (nexthop_to_string e.me_nexthop)
    (Route.protocol_to_string e.me_protocol)

type bgp_source =
  | Learned of Ipv4.t
  | From_network
  | From_aggregate
  | From_redistribute of Route.protocol

let bgp_source_to_string = function
  | Learned ip -> "learned from " ^ Ipv4.to_string ip
  | From_network -> "network statement"
  | From_aggregate -> "aggregate"
  | From_redistribute p -> "redistributed " ^ Route.protocol_to_string p

let compare_bgp_source a b =
  let rank = function
    | Learned _ -> 0
    | From_network -> 1
    | From_aggregate -> 2
    | From_redistribute _ -> 3
  in
  match (a, b) with
  | Learned x, Learned y -> Ipv4.compare x y
  | From_redistribute x, From_redistribute y -> Route.compare_protocol x y
  | _, _ -> Int.compare (rank a) (rank b)

type bgp_entry = {
  be_route : Route.bgp;
  be_source : bgp_source;
  be_from_ebgp : bool;
  be_igp_cost : int;
  be_peer_id : Ipv4.t;
  be_best : bool;
}

let compare_bgp_entry a b =
  let cmps =
    [
      (fun () -> Route.compare_bgp a.be_route b.be_route);
      (fun () -> compare_bgp_source a.be_source b.be_source);
      (fun () -> Bool.compare a.be_from_ebgp b.be_from_ebgp);
      (fun () -> Int.compare a.be_igp_cost b.be_igp_cost);
      (fun () -> Ipv4.compare a.be_peer_id b.be_peer_id);
      (fun () -> Bool.compare a.be_best b.be_best);
    ]
  in
  let rec go = function
    | [] -> 0
    | f :: rest -> ( match f () with 0 -> go rest | c -> c)
  in
  go cmps

let pp_bgp_entry fmt e =
  Format.fprintf fmt "%a (%s%s)" Route.pp_bgp e.be_route
    (bgp_source_to_string e.be_source)
    (if e.be_best then ", best" else "")

type igp_entry = {
  ie_prefix : Prefix.t;
  ie_nexthop : Ipv4.t;
  ie_out_if : string;
  ie_cost : int;
  ie_dest_host : string;
  ie_dest_if : string;
}

let compare_igp a b =
  let c = Prefix.compare a.ie_prefix b.ie_prefix in
  if c <> 0 then c
  else
    let c = Ipv4.compare a.ie_nexthop b.ie_nexthop in
    if c <> 0 then c else Int.compare a.ie_cost b.ie_cost

type 'a table = 'a list Prefix_trie.t

let table_add p v t =
  Prefix_trie.update p
    (function None -> Some [ v ] | Some l -> Some (l @ [ v ]))
    t

let table_find p t = Option.value (Prefix_trie.find_opt p t) ~default:[]

let table_entries t =
  Prefix_trie.fold (fun p l acc -> List.map (fun v -> (p, v)) l @ acc) t []

let table_count t = Prefix_trie.fold (fun _ l acc -> acc + List.length l) t 0

let table_longest_match ip t =
  Option.map (fun (p, l) -> (p, l)) (Prefix_trie.longest_match ip t)
