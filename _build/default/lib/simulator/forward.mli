(** Data-plane forwarding over the computed main RIBs: ECMP-aware
    traceroute with ACL evaluation and recursive next-hop resolution.
    Produces the hop-by-hop evidence behind the IFG's path facts
    ([p <- {f...}, {a...}] in Table 1). *)

open Netcov_types
open Netcov_config

type acl_use = {
  au_host : string;
  au_acl : string;
  au_rule : int option;  (** matching rule index; [None] = default *)
  au_permit : bool;
}

type hop = {
  hop_host : string;
  hop_entries : Rib.main_entry list;
      (** the forwarding entry used, then any entries consulted to
          resolve an indirect next hop *)
  hop_out_if : string option;
  hop_acls : acl_use list;
}

type path = {
  path_src : string;
  path_dst : Ipv4.t;
  hops : hop list;
  reached : bool;
}

type env = {
  find_device : string -> Device.t option;
  main_rib : string -> Rib.main_entry Rib.table;
  topo : Topology.t;
}

(** [trace env ~src ~dst] enumerates forwarding paths from [src] to
    [dst], branching on ECMP up to [max_paths] (default 32) and
    [max_hops] (default 64). A path reaches when it arrives at a device
    owning [dst] or delivers onto a connected subnet containing it. *)
val trace : ?max_paths:int -> ?max_hops:int -> env -> src:string -> dst:Ipv4.t -> path list

(** [reachable env ~src ~dst] is true iff at least one traced path
    reaches. *)
val reachable : ?max_paths:int -> env -> src:string -> dst:Ipv4.t -> bool
