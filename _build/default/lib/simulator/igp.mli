(** Link-state IGP (IS-IS/OSPF stand-in): shortest paths over
    IGP-enabled interfaces, with equal-cost multipath. Provides internal
    reachability underneath iBGP, as in the Internet2 design (§6.1). *)

open Netcov_config

(** [compute devices topo] returns the IGP RIB of every host. A link
    participates iff both endpoint interfaces are IGP-enabled; an
    IGP-enabled interface's prefix is advertised network-wide. *)
val compute :
  Device.t list -> Topology.t -> (string, Rib.igp_entry Rib.table) Hashtbl.t
