open Netcov_types
open Netcov_config

type edge = {
  send_host : string;
  send_ip : Ipv4.t;
  recv_host : string;
  recv_ip : Ipv4.t;
  ebgp : bool;
  multihop : bool;
}

let edge_key e =
  Printf.sprintf "%s/%s->%s/%s" e.send_host (Ipv4.to_string e.send_ip)
    e.recv_host (Ipv4.to_string e.recv_ip)

let pp_edge fmt e = Format.pp_print_string fmt (edge_key e)

let compare_edge a b = String.compare (edge_key a) (edge_key b)

let find_neighbor (d : Device.t) ip =
  match d.bgp with
  | None -> None
  | Some b ->
      List.find_opt (fun (n : Device.neighbor) -> Ipv4.equal n.nb_ip ip) b.neighbors

(* The local address a device uses toward neighbor [nb]: the configured
   local address, or the local interface on the subnet shared with the
   neighbor's address. *)
let local_session_addr (topo : Topology.t) (d : Device.t) (nb : Device.neighbor) =
  match nb.nb_local_addr with
  | Some a -> Some a
  | None ->
      Option.map
        (fun (e : Topology.endpoint) -> e.ip)
        (Topology.on_shared_subnet topo d.hostname nb.nb_ip)

let establish devices topo ~reach =
  let dev_tbl = Hashtbl.create 64 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace dev_tbl d.hostname d) devices;
  let owner_of_ip ip =
    Option.bind (Topology.endpoint_of_ip topo ip) (fun (e : Topology.endpoint) ->
        Hashtbl.find_opt dev_tbl e.host)
  in
  let edges = ref [] in
  List.iter
    (fun (d : Device.t) ->
      match d.bgp with
      | None -> ()
      | Some b ->
          List.iter
            (fun (nb : Device.neighbor) ->
              match (owner_of_ip nb.nb_ip, local_session_addr topo d nb) with
              | None, _ | _, None -> ()
              | Some remote_dev, Some local_ip -> (
                  (* The remote side must configure a neighbor at our
                     session address, with consistent AS numbers. *)
                  match (find_neighbor remote_dev local_ip, remote_dev.bgp) with
                  | None, _ | _, None -> ()
                  | Some remote_nb, Some remote_bgp ->
                      let as_ok =
                        nb.nb_remote_as = remote_bgp.local_as
                        && remote_nb.nb_remote_as = b.local_as
                      in
                      let direct =
                        Topology.on_shared_subnet topo d.hostname nb.nb_ip <> None
                      in
                      let reachable =
                        direct
                        || (reach d.hostname nb.nb_ip
                           && reach remote_dev.hostname local_ip)
                      in
                      if as_ok && reachable then
                        (* Record the edge from remote -> local; the
                           symmetric direction is found when iterating the
                           remote device. *)
                        edges :=
                          {
                            send_host = remote_dev.hostname;
                            send_ip = nb.nb_ip;
                            recv_host = d.hostname;
                            recv_ip = local_ip;
                            ebgp = nb.nb_remote_as <> b.local_as;
                            multihop = not direct;
                          }
                          :: !edges))
            b.neighbors)
    devices;
  List.sort_uniq compare_edge !edges

let recv_neighbor (d : Device.t) (e : edge) = find_neighbor d e.send_ip
let send_neighbor (d : Device.t) (e : edge) = find_neighbor d e.recv_ip
