open Netcov_types
open Netcov_config

type acl_use = {
  au_host : string;
  au_acl : string;
  au_rule : int option;
  au_permit : bool;
}

type hop = {
  hop_host : string;
  hop_entries : Rib.main_entry list;
  hop_out_if : string option;
  hop_acls : acl_use list;
}

type path = {
  path_src : string;
  path_dst : Ipv4.t;
  hops : hop list;
  reached : bool;
}

type env = {
  find_device : string -> Device.t option;
  main_rib : string -> Rib.main_entry Rib.table;
  topo : Topology.t;
}

let owns_address env host dst =
  match env.find_device host with
  | None -> false
  | Some d -> Device.interface_with_address d dst <> None

let eval_acl env host ifname ~inbound dst =
  match env.find_device host with
  | None -> []
  | Some d -> (
      match Device.find_interface d ifname with
      | None -> []
      | Some i -> (
          let acl_name = if inbound then i.in_acl else i.out_acl in
          match acl_name with
          | None -> []
          | Some name -> (
              match Device.find_acl d name with
              | None -> []
              | Some acl ->
                  let permit, rule = Device.acl_permits acl dst in
                  [ { au_host = host; au_acl = name; au_rule = rule; au_permit = permit } ])))

(* Resolve a main-RIB entry at [host] to concrete egress choices:
   (out_if, next_host option, extra entries consulted). *)
let rec resolve env host depth (entry : Rib.main_entry) dst =
  if depth > 8 then []
  else
    match entry.me_nexthop with
    | Rib.Nh_discard -> []
    | Rib.Nh_connected ifname ->
        (* Delivered onto the connected subnet: next host is the owner
           of [dst] if another device holds it, else local delivery. *)
        let next =
          match Topology.endpoint_of_ip env.topo dst with
          | Some ep when ep.host <> host -> Some ep.host
          | Some _ | None -> None
        in
        [ (Some ifname, next, []) ]
    | Rib.Nh_ip gw -> (
        match Topology.on_shared_subnet env.topo host gw with
        | Some local_ep ->
            let next =
              Option.map
                (fun (ep : Topology.endpoint) -> ep.host)
                (Topology.endpoint_of_ip env.topo gw)
            in
            [ (Some local_ep.ifname, next, []) ]
        | None -> (
            (* Indirect next hop: resolve recursively via the RIB. *)
            match Rib.table_longest_match gw (env.main_rib host) with
            | None -> []
            | Some (_, entries) ->
                List.concat_map
                  (fun (r : Rib.main_entry) ->
                    List.map
                      (fun (oif, next, extra) -> (oif, next, r :: extra))
                      (resolve env host (depth + 1) r gw))
                  entries))

let trace ?(max_paths = 32) ?(max_hops = 64) env ~src ~dst =
  let paths = ref [] in
  let n_paths = ref 0 in
  let rec step host rev_hops visited in_acls =
    if !n_paths >= max_paths then ()
    else if List.length rev_hops > max_hops || List.mem host visited then
      paths := { path_src = src; path_dst = dst; hops = List.rev rev_hops; reached = false } :: !paths
    else if
      (* Blocked by an inbound ACL at this hop? *)
      List.exists (fun a -> not a.au_permit) in_acls
    then begin
      let blocked_hop =
        { hop_host = host; hop_entries = []; hop_out_if = None; hop_acls = in_acls }
      in
      incr n_paths;
      paths :=
        { path_src = src; path_dst = dst; hops = List.rev (blocked_hop :: rev_hops); reached = false }
        :: !paths
    end
    else if owns_address env host dst then begin
      let final_hop =
        { hop_host = host; hop_entries = []; hop_out_if = None; hop_acls = in_acls }
      in
      incr n_paths;
      paths :=
        { path_src = src; path_dst = dst; hops = List.rev (final_hop :: rev_hops); reached = true }
        :: !paths
    end
    else
      match Rib.table_longest_match dst (env.main_rib host) with
      | None ->
          incr n_paths;
          paths :=
            { path_src = src; path_dst = dst; hops = List.rev rev_hops; reached = false }
            :: !paths
      | Some (_, entries) ->
          List.iter
            (fun (entry : Rib.main_entry) ->
              let choices = resolve env host 0 entry dst in
              if choices = [] then begin
                (* discard route or unresolvable next hop *)
                let hop =
                  {
                    hop_host = host;
                    hop_entries = [ entry ];
                    hop_out_if = None;
                    hop_acls = in_acls;
                  }
                in
                incr n_paths;
                paths :=
                  {
                    path_src = src;
                    path_dst = dst;
                    hops = List.rev (hop :: rev_hops);
                    reached = false;
                  }
                  :: !paths
              end
              else
                List.iter
                  (fun (out_if, next, extra) ->
                    let out_acls =
                      match out_if with
                      | Some oif -> eval_acl env host oif ~inbound:false dst
                      | None -> []
                    in
                    let hop =
                      {
                        hop_host = host;
                        hop_entries = entry :: extra;
                        hop_out_if = out_if;
                        hop_acls = in_acls @ out_acls;
                      }
                    in
                    if List.exists (fun a -> not a.au_permit) out_acls then begin
                      incr n_paths;
                      paths :=
                        {
                          path_src = src;
                          path_dst = dst;
                          hops = List.rev (hop :: rev_hops);
                          reached = false;
                        }
                        :: !paths
                    end
                    else
                      match next with
                      | None ->
                          (* Delivered onto a connected subnet: reached
                             iff the entry's subnet contains dst. *)
                          let reached =
                            match out_if with
                            | Some _ ->
                                Prefix.contains entry.me_prefix dst
                                && entry.me_protocol = Route.Connected
                            | None -> false
                          in
                          incr n_paths;
                          paths :=
                            {
                              path_src = src;
                              path_dst = dst;
                              hops = List.rev (hop :: rev_hops);
                              reached;
                            }
                            :: !paths
                      | Some next_host ->
                          let in_acls' = find_in_acls host out_if next_host in
                          step next_host (hop :: rev_hops) (host :: visited) in_acls')
                  choices)
            entries
  and find_in_acls host out_if next_host =
    (* The remote interface is the other end of the local egress link. *)
    match out_if with
    | None -> []
    | Some oif -> (
        let adj =
          List.find_opt
            (fun (a : Topology.adjacency) ->
              a.local.ifname = oif && a.remote.host = next_host)
            (Topology.adjacencies_of env.topo host)
        in
        match adj with
        | None -> []
        | Some a -> eval_acl env next_host a.remote.ifname ~inbound:true dst)
  in
  step src [] [] [];
  List.rev !paths

let reachable ?max_paths env ~src ~dst =
  List.exists (fun p -> p.reached) (trace ?max_paths env ~src ~dst)
