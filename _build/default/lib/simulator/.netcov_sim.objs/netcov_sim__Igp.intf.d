lib/simulator/igp.mli: Device Hashtbl Netcov_config Rib Topology
