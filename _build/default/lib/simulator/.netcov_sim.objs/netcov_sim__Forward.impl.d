lib/simulator/forward.ml: Device Ipv4 List Netcov_config Netcov_types Option Prefix Rib Route Topology
