lib/simulator/bgp.ml: As_path Bool Community Device Eval Hashtbl Igp Int Ipv4 List Logs Netcov_config Netcov_policy Netcov_types Option Prefix Prefix_trie Rib Route Session
