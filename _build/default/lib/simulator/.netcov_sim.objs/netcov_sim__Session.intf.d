lib/simulator/session.mli: Device Format Ipv4 Netcov_config Netcov_types Topology
