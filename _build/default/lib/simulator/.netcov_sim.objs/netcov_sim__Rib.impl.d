lib/simulator/rib.ml: Bool Format Int Ipv4 List Netcov_types Option Prefix Prefix_trie Route String
