lib/simulator/rib.mli: Format Ipv4 Netcov_types Prefix Prefix_trie Route
