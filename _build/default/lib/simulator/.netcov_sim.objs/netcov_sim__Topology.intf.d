lib/simulator/topology.mli: Device Ipv4 Netcov_config Netcov_types Prefix
