lib/simulator/session.ml: Device Format Hashtbl Ipv4 List Netcov_config Netcov_types Option Printf String Topology
