lib/simulator/topology.ml: Device Hashtbl Ipv4 List Netcov_config Netcov_types Option Prefix
