lib/simulator/igp.ml: Device Hashtbl Int List Netcov_config Netcov_types Option Prefix Prefix_trie Rib Set String Topology
