lib/simulator/stable_state.mli: Device Forward Ipv4 Netcov_config Netcov_types Prefix Registry Rib Session Topology
