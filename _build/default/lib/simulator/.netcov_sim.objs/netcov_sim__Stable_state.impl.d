lib/simulator/stable_state.ml: Bgp Device Forward Hashtbl Ipv4 List Netcov_config Netcov_types Option Prefix_trie Registry Rib Session Topology
