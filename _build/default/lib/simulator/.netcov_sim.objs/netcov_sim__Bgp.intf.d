lib/simulator/bgp.mli: Device Element Hashtbl Netcov_config Netcov_types Rib Route Session Topology
