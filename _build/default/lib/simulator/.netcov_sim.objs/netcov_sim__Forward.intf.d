lib/simulator/forward.mli: Device Ipv4 Netcov_config Netcov_types Rib Topology
