(** Datacenter test suite (§6.2), inspired by prior validation work:
    DefaultRouteCheck, ToRPingmesh and ExportAggregate. *)

val default_route_check : Netcov_workloads.Fattree.t -> Nettest.t
val tor_pingmesh : Netcov_workloads.Fattree.t -> Nettest.t
val export_aggregate : Netcov_workloads.Fattree.t -> Nettest.t
val suite : Netcov_workloads.Fattree.t -> Nettest.t list
