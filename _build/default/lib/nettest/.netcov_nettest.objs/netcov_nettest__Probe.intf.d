lib/nettest/probe.mli: Ipv4 Netcov Netcov_core Netcov_sim Netcov_types Nettest Prefix Rib Route Stable_state
