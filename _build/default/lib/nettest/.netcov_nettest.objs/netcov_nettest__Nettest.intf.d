lib/nettest/nettest.mli: Fact Netcov Netcov_core Netcov_sim Netcov_types Stable_state
