lib/nettest/probe.ml: Device Element Eval Fact Forward Hashtbl Int Ipv4 List Netcov Netcov_config Netcov_core Netcov_policy Netcov_sim Netcov_types Nettest Option Registry Rib Stable_state
