lib/nettest/whatif.ml: Coverage Hashtbl List Netcov Netcov_config Netcov_core Netcov_sim Nettest Stable_state Topology
