lib/nettest/nettest.ml: Fact Forward List Netcov Netcov_core Netcov_sim Stable_state
