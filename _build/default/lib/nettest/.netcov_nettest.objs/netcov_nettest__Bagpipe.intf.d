lib/nettest/bagpipe.mli: Netcov_workloads Nettest
