lib/nettest/whatif.mli: Coverage Netcov_config Netcov_core Netcov_sim Nettest Stable_state
