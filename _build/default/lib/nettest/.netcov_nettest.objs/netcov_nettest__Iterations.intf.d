lib/nettest/iterations.mli: Netcov_workloads Nettest
