lib/nettest/testutil.mli: Community Device Element Ipv4 Netcov_config Netcov_sim Netcov_types Prefix Route Session Stable_state
