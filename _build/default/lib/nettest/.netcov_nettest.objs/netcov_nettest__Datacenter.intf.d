lib/nettest/datacenter.mli: Netcov_workloads Nettest
