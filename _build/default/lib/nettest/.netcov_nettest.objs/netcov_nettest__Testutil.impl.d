lib/nettest/testutil.ml: As_path Community Device Int Ipv4 List Netcov_config Netcov_sim Netcov_types Registry Route Session Stable_state
