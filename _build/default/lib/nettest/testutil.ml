open Netcov_types
open Netcov_config
open Netcov_sim

let ids_of_keys state ~host keys =
  let reg = Stable_state.registry state in
  List.filter_map (fun k -> Registry.find reg ~device:host k) keys
  |> List.sort_uniq Int.compare

let test_route ?(as_path = []) ?(communities = []) ?(local_pref = 100)
    ?(next_hop = Ipv4.zero) prefix =
  {
    Route.prefix;
    next_hop;
    as_path = As_path.of_list as_path;
    local_pref;
    med = 0;
    communities = Community.Set.of_list communities;
    origin = Route.Origin_igp;
    cluster_len = 0;
  }

let external_neighbors state host =
  let d = Stable_state.find_device state host in
  match d.Device.bgp with
  | None -> []
  | Some b ->
      List.filter_map
        (fun (nb : Device.neighbor) ->
          if nb.nb_remote_as = b.local_as then None
          else
            let edge =
              List.find_opt
                (fun (e : Session.edge) ->
                  e.recv_host = host && Ipv4.equal e.send_ip nb.nb_ip)
                (Stable_state.edges_in state host)
            in
            let is_ext =
              match edge with
              | Some e -> Stable_state.is_external state e.send_host
              | None -> (
                  (* Session down: classify by the owner of the address. *)
                  match Stable_state.owner_of_ip state nb.nb_ip with
                  | Some (h, _) -> Stable_state.is_external state h
                  | None -> false)
            in
            if is_ext then Some (nb, edge) else None)
        b.neighbors
