(** The Bagpipe test suite for Internet2 (§6.1.1): BlockToExternal and
    NoMartian are control plane tests over export/import policies;
    RoutePreference is a data plane test checking that best-path
    selection honours commercial relationships. *)

val block_to_external :
  ?samples:int -> Netcov_workloads.Internet2.t -> Nettest.t

val no_martian : Netcov_workloads.Internet2.t -> Nettest.t
val route_preference : Netcov_workloads.Internet2.t -> Nettest.t

(** The three tests, in the paper's order. *)
val suite : Netcov_workloads.Internet2.t -> Nettest.t list
