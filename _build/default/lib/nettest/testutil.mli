(** Shared helpers for concrete test implementations. *)

open Netcov_types
open Netcov_config
open Netcov_sim

(** Resolve exercised element keys on a device to element ids (keys on
    external devices resolve to nothing). *)
val ids_of_keys :
  Stable_state.t -> host:string -> Element.key list -> Element.id list

(** A synthetic BGP announcement for control-plane test inputs. *)
val test_route :
  ?as_path:int list ->
  ?communities:Community.t list ->
  ?local_pref:int ->
  ?next_hop:Ipv4.t ->
  Prefix.t ->
  Route.bgp

(** External (eBGP, environment-side) neighbors of an internal device,
    with their import/export chains. *)
val external_neighbors :
  Stable_state.t -> string -> (Device.neighbor * Session.edge option) list
