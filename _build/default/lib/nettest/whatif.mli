(** Coverage under environmental failures.

    §8 observes that some configuration lines are only exercised under
    specific environments (e.g. failures shift traffic onto backup
    paths and policies). This module re-runs a test suite under
    single-link-failure scenarios and unions the coverage, revealing
    elements the fault-free run can never touch. The configurations —
    and hence the coverage domain — are unchanged; only the simulated
    environment differs. *)

open Netcov_sim
open Netcov_core

(** Physical links between internal devices, as pairs of
    [(host, ifname)] endpoints, deduplicated. *)
val internal_links :
  Stable_state.t -> ((string * string) * (string * string)) list

type scenario = {
  failed : (string * string) list;  (** downed interfaces *)
  coverage : Coverage.t;
  tests_passed : bool;  (** the suite verdict under this failure *)
}

type result = {
  baseline : Coverage.t;
  scenarios : scenario list;
  union : Coverage.t;  (** baseline plus every scenario *)
}

(** [run state tests] computes baseline coverage of the suite, then for
    each single-link failure recomputes the stable state, re-runs the
    suite, and computes coverage. [max_scenarios] caps the number of
    failure cases (default: all). *)
val run :
  ?max_scenarios:int -> Stable_state.t -> Nettest.t list -> result

(** Elements covered only under some failure — the environmental
    coverage gap of the fault-free run. *)
val failure_only : result -> Netcov_config.Element.Id_set.t
