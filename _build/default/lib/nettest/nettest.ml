open Netcov_sim
open Netcov_core

type kind = Control_plane | Data_plane

let kind_to_string = function
  | Control_plane -> "control-plane"
  | Data_plane -> "data-plane"

type outcome = { checks : int; failures : string list }

let passed o = o.failures = []

type result = { outcome : outcome; tested : Netcov.tested }
type t = { name : string; kind : kind; run : Stable_state.t -> result }

let run_suite state tests = List.map (fun t -> (t, t.run state)) tests

let suite_tested results =
  List.fold_left
    (fun acc (_, r) -> Netcov.merge_tested acc r.tested)
    Netcov.no_tests results

let main_facts state host p =
  List.map
    (fun entry -> Fact.F_main_rib { host; entry })
    (Stable_state.main_lookup state host p)

let path_facts state ~src ~dst =
  let paths = Stable_state.trace state ~src ~dst in
  List.concat
    (List.mapi
       (fun idx (p : Forward.path) ->
         if p.reached then Fact.F_path { src; dst; idx } :: [] else [])
       paths)
