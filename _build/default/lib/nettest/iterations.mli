(** Coverage-guided test development for Internet2 (§6.1.2): the three
    tests added in the paper's improvement iterations. *)

(** Iteration 1: the four SANITY-IN classes NoMartian misses (private
    ASNs, commercial transit ASNs, the default route, internal space)
    must be rejected by every external import policy. *)
val sanity_in : Netcov_workloads.Internet2.t -> Nettest.t

(** Iteration 2: announcements inside each peer's permit list must be
    accepted. *)
val peer_specific_route : Netcov_workloads.Internet2.t -> Nettest.t

(** Iteration 3: PingMesh-style reachability of interface addresses from
    every router. *)
val interface_reachability : Netcov_workloads.Internet2.t -> Nettest.t

(** The improved suite: Bagpipe plus the three iterations, in order. *)
val improved_suite : Netcov_workloads.Internet2.t -> Nettest.t list
