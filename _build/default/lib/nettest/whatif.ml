open Netcov_sim
open Netcov_core

let internal_links state =
  let seen = Hashtbl.create 64 in
  let links = ref [] in
  List.iter
    (fun host ->
      List.iter
        (fun (adj : Topology.adjacency) ->
          if not (Stable_state.is_external state adj.remote.host) then begin
            let a = (adj.local.host, adj.local.ifname) in
            let b = (adj.remote.host, adj.remote.ifname) in
            let key = if a < b then (a, b) else (b, a) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              links := key :: !links
            end
          end)
        (Topology.adjacencies_of (Stable_state.topology state) host))
    (Stable_state.internal_hosts state);
  List.rev !links

type scenario = {
  failed : (string * string) list;
  coverage : Coverage.t;
  tests_passed : bool;
}

type result = {
  baseline : Coverage.t;
  scenarios : scenario list;
  union : Coverage.t;
}

let suite_coverage state tests =
  let results = Nettest.run_suite state tests in
  let tested = Nettest.suite_tested results in
  let report = Netcov.analyze state tested in
  let passed =
    List.for_all (fun (_, (r : Nettest.result)) -> Nettest.passed r.outcome) results
  in
  (report.Netcov.coverage, passed)

let run ?max_scenarios state tests =
  let reg = Stable_state.registry state in
  let baseline, _ = suite_coverage state tests in
  let links = internal_links state in
  let links =
    match max_scenarios with
    | None -> links
    | Some n -> List.filteri (fun i _ -> i < n) links
  in
  let scenarios =
    List.map
      (fun (a, b) ->
        let failed = [ a; b ] in
        let state' = Stable_state.compute ~down:failed reg in
        let coverage, tests_passed = suite_coverage state' tests in
        { failed; coverage; tests_passed })
      links
  in
  let union =
    List.fold_left
      (fun acc s -> Coverage.merge acc s.coverage)
      baseline scenarios
  in
  { baseline; scenarios; union }

let failure_only result =
  Netcov_config.Element.Id_set.diff
    (Coverage.covered_elements result.union)
    (Coverage.covered_elements result.baseline)
