open Netcov_types
open Netcov_config
open Netcov_policy
open Netcov_sim
open Netcov_core
open Netcov_workloads

(* BlockToExternal: sample BGP routes from the stable state, attach the
   BTE community, and assert every eBGP export policy rejects them. *)
let block_to_external ?(samples = 16) (net : Internet2.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let cp_elements = ref [] in
    List.iter
      (fun host ->
        let d = Stable_state.find_device state host in
        (* sample best routes present in this router's BGP RIB *)
        let sampled =
          Rib.table_entries (Stable_state.bgp_rib state host)
          |> List.filter_map (fun (_, (e : Rib.bgp_entry)) ->
                 if e.be_best then Some e.be_route else None)
          |> List.filteri (fun i _ -> i mod 7 = 0)
          |> List.filteri (fun i _ -> i < samples)
        in
        let bte_routes =
          List.map (fun r -> Route.add_community r net.bte_community) sampled
        in
        List.iter
          (fun ((nb : Device.neighbor), _) ->
            let chain = Device.neighbor_export d nb in
            List.iter
              (fun route ->
                incr checks;
                let { Eval.verdict; exercised; _ } =
                  Eval.run_chain d ~chain ~default:Eval.Accepted route
                in
                cp_elements :=
                  Testutil.ids_of_keys state ~host exercised @ !cp_elements;
                if verdict = Eval.Accepted then
                  failures :=
                    Printf.sprintf "%s exports BTE route %s to %s" host
                      (Prefix.to_string route.Route.prefix)
                      (Ipv4.to_string nb.nb_ip)
                    :: !failures)
              bte_routes)
          (Testutil.external_neighbors state host))
      net.routers;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested =
        {
          Netcov.dp_facts = [];
          cp_elements = List.sort_uniq Int.compare !cp_elements;
        };
    }
  in
  { Nettest.name = "BlockToExternal"; kind = Nettest.Control_plane; run }

(* NoMartian: incoming announcements for private address space must be
   rejected by every external import policy. *)
let no_martian (net : Internet2.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let cp_elements = ref [] in
    let martian_routes nb_asn =
      List.map
        (fun m ->
          (* a /24 inside the martian block, plain AS path *)
          let sub =
            if Prefix.len m >= 24 then m
            else Prefix.nth_subnet m ~len:24 ~n:1
          in
          Testutil.test_route ~as_path:[ nb_asn ] sub)
        net.martian_prefixes
    in
    List.iter
      (fun host ->
        let d = Stable_state.find_device state host in
        List.iter
          (fun ((nb : Device.neighbor), _) ->
            let chain = Device.neighbor_import d nb in
            List.iter
              (fun route ->
                incr checks;
                let { Eval.verdict; exercised; _ } =
                  Eval.run_chain d ~chain ~default:Eval.Accepted route
                in
                cp_elements :=
                  Testutil.ids_of_keys state ~host exercised @ !cp_elements;
                if verdict = Eval.Accepted then
                  failures :=
                    Printf.sprintf "%s accepts martian %s from %s" host
                      (Prefix.to_string route.Route.prefix)
                      (Ipv4.to_string nb.nb_ip)
                    :: !failures)
              (martian_routes nb.nb_remote_as))
          (Testutil.external_neighbors state host))
      net.routers;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested =
        {
          Netcov.dp_facts = [];
          cp_elements = List.sort_uniq Int.compare !cp_elements;
        };
    }
  in
  { Nettest.name = "NoMartian"; kind = Nettest.Control_plane; run }

(* RoutePreference: for destinations available via multiple external
   neighbors, the selected route must come from the most preferred
   relationship class. The test reads the competing BGP RIB entries and
   the resulting main RIB entries, which is exactly what it "tests". *)
let route_preference (net : Internet2.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let dp_facts = ref [] in
    (* destination -> announcing peers *)
    let announcers p =
      List.filter
        (fun (pi : Internet2.peer_info) ->
          List.exists (Prefix.equal p) pi.allowed)
        net.peers
    in
    List.iter
      (fun p ->
        let peers = announcers p in
        if List.length peers >= 2 then begin
          (* Candidate BGP entries actually present at attach routers. *)
          let candidates =
            List.concat_map
              (fun (pi : Internet2.peer_info) ->
                Stable_state.bgp_lookup state pi.router p
                |> List.filter_map (fun (e : Rib.bgp_entry) ->
                       match e.be_source with
                       | Rib.Learned ip when Ipv4.equal ip pi.peer_ip ->
                           Some (pi, e)
                       | _ -> None))
              peers
          in
          if List.length candidates >= 2 then begin
            let best_lp =
              List.fold_left
                (fun acc (_, (e : Rib.bgp_entry)) ->
                  max acc e.be_route.Route.local_pref)
                0 candidates
            in
            (* The selected (best) candidate must carry the top class. *)
            List.iter
              (fun ((pi : Internet2.peer_info), (e : Rib.bgp_entry)) ->
                dp_facts :=
                  Fact.F_bgp_rib
                    { host = pi.router; route = e.be_route; source = e.be_source }
                  :: !dp_facts;
                if e.be_best then begin
                  incr checks;
                  if e.be_route.Route.local_pref < best_lp then
                    failures :=
                      Printf.sprintf
                        "%s: selected route for %s from %s (lp %d < %d)"
                        pi.router (Prefix.to_string p) pi.stub_host
                        e.be_route.Route.local_pref best_lp
                      :: !failures
                end)
              candidates;
            (* The test also inspects the resulting forwarding entries at
               the attachment routers of the candidates. *)
            List.iter
              (fun host -> dp_facts := Nettest.main_facts state host p @ !dp_facts)
              (List.sort_uniq String.compare
                 (List.map
                    (fun ((pi : Internet2.peer_info), _) -> pi.router)
                    candidates))
          end
        end)
      net.feed.Routeviews.shared_pool;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested = { Netcov.dp_facts = List.rev !dp_facts; cp_elements = [] };
    }
  in
  { Nettest.name = "RoutePreference"; kind = Nettest.Data_plane; run }

let suite net = [ block_to_external net; no_martian net; route_preference net ]
