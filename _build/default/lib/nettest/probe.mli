(** Test-author API: queries over the stable state that automatically
    record {e what was tested}, so a custom network test gets NetCov
    coverage for free.

    A probe wraps a stable state; every query records the data plane
    facts it inspected (or, for control-plane queries, the configuration
    elements it evaluated) plus any assertion failures. Build a
    {!Nettest.t} from a probe function with {!to_test}. *)

open Netcov_types
open Netcov_sim
open Netcov_core

type t

val create : Stable_state.t -> t
val state : t -> Stable_state.t

(** Record an assertion outcome; [msg] is kept on failure. *)
val check : t -> bool -> string -> unit

(** {1 Data plane queries} — results are recorded as tested facts. *)

(** [route_present p ~host prefix] is true iff the main RIB of [host]
    holds an exact entry for [prefix]; all matching entries become
    tested facts. *)
val route_present : t -> host:string -> Prefix.t -> bool

(** Best BGP paths for a prefix (tested facts: those entries). *)
val best_routes : t -> host:string -> Prefix.t -> Rib.bgp_entry list

(** All BGP paths, e.g. to compare candidates (tested facts). *)
val all_routes : t -> host:string -> Prefix.t -> Rib.bgp_entry list

(** [reachable p ~src ~dst] traces forwarding; every reached path and
    the entries along it become tested facts. *)
val reachable : t -> src:string -> dst:Ipv4.t -> bool

(** {1 Control plane queries} — exercised elements are recorded. *)

(** [import_verdict p ~host ~neighbor route] evaluates the import chain
    the device applies to [neighbor]. *)
val import_verdict :
  t -> host:string -> neighbor:Ipv4.t -> Route.bgp -> [ `Accepted | `Rejected ]

(** [export_verdict p ~host ~neighbor route] likewise for the export
    chain. *)
val export_verdict :
  t -> host:string -> neighbor:Ipv4.t -> Route.bgp -> [ `Accepted | `Rejected ]

(** {1 Results} *)

val tested : t -> Netcov.tested
val checks : t -> int
val failures : t -> string list

(** [to_test ~name ~kind run] packages a probe function as a network
    test. *)
val to_test : name:string -> kind:Nettest.kind -> (t -> unit) -> Nettest.t
