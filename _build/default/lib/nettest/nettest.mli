(** Network test abstraction. A test inspects the stable state (data
    plane test) or evaluates configurations directly (control plane
    test); besides pass/fail it reports {e what it tested} — the data
    plane facts and configuration elements NetCov computes coverage
    from. *)

open Netcov_sim
open Netcov_core

type kind = Control_plane | Data_plane

val kind_to_string : kind -> string

type outcome = {
  checks : int;  (** individual assertions evaluated *)
  failures : string list;
}

val passed : outcome -> bool

type result = { outcome : outcome; tested : Netcov.tested }

type t = { name : string; kind : kind; run : Stable_state.t -> result }

(** [run_suite state tests] executes every test, returning per-test
    results in order. *)
val run_suite : Stable_state.t -> t list -> (t * result) list

(** Union of everything the suite tested. *)
val suite_tested : (t * result) list -> Netcov.tested

(** Helpers for building tested-fact sets. *)

(** All main-RIB facts of [host] whose prefix equals [p]. *)
val main_facts : Stable_state.t -> string -> Netcov_types.Prefix.t -> Fact.t list

(** Facts for every reached forwarding path [src → dst], plus the path
    facts themselves. *)
val path_facts : Stable_state.t -> src:string -> dst:Netcov_types.Ipv4.t -> Fact.t list
