type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let sample t n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  let n = min n len in
  (* partial Fisher-Yates *)
  for i = 0 to n - 1 do
    let j = i + int t (len - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 n)

let bool t = int t 2 = 1
let split t = { state = next t }
