(** Small deterministic PRNG (splitmix-style) so workloads are exactly
    reproducible across runs and platforms. *)

type t

val make : int -> t

(** [int t bound] is uniform in [0, bound). *)
val int : t -> int -> int

(** [pick t list] chooses one element; raises on empty list. *)
val pick : t -> 'a list -> 'a

(** [sample t n list] draws [n] distinct elements (or all, when the list
    is shorter). *)
val sample : t -> int -> 'a list -> 'a list

val bool : t -> bool

(** [split t] derives an independent child generator. *)
val split : t -> t
