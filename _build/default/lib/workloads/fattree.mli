(** Synthetic fat-tree datacenter (§6.2): k pods of k/2 leaf and k/2
    aggregation routers plus (k/2)² spines, eBGP throughout with
    private ASNs, ECMP-4, /24 host subnet per leaf announced via a
    network statement, default route injected by WAN stubs at every
    spine (white-listed by import policy), and the whole 10/8 space
    aggregated at spines and exported to the WAN. Cisco-IOS-style
    configurations. *)

open Netcov_types
open Netcov_config

type t = {
  devices : Device.t list;
  k : int;
  leaves : string list;
  aggs : string list;
  spines : string list;
  wans : string list;  (** external stubs *)
  leaf_subnets : (string * Prefix.t) list;
  aggregate_prefix : Prefix.t;  (** 10.0.0.0/8 *)
  wan_import_policy : string;  (** the white-list on spines *)
}

(** Total router count (excluding WAN stubs): k·k + (k/2)². *)
val router_count : int -> int

(** [generate ~k ()] builds the network; [k] must be even and ≥ 4.
    [multipath] sets maximum-paths on every router (default 4; 1
    disables ECMP, which makes backup links visible only under
    failures). *)
val generate : ?seed:int -> ?multipath:int -> k:int -> unit -> t
