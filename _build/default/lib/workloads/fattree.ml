open Netcov_types
open Netcov_config

type t = {
  devices : Device.t list;
  k : int;
  leaves : string list;
  aggs : string list;
  spines : string list;
  wans : string list;
  leaf_subnets : (string * Prefix.t) list;
  aggregate_prefix : Prefix.t;
  wan_import_policy : string;
}

let router_count k = (k * k) + (k / 2 * (k / 2))

let aggregate_prefix = Prefix.of_string "10.0.0.0/8"
let default_route = Prefix.default

let leaf_name p l = Printf.sprintf "leaf-%d-%d" p l
let agg_name p a = Printf.sprintf "agg-%d-%d" p a
let spine_name s = Printf.sprintf "spine-%d" s
let wan_name s = Printf.sprintf "wan-%d" s

let leaf_asn k p l = 65000 + (p * (k / 2)) + l
let agg_asn p = 64800 + p
let spine_asn = 64700
let wan_asn s = 64600 + s

let leaf_subnet p l = Prefix.make (Ipv4.of_octets 10 p l 0) 24

(* /31 infrastructure links under 10.240.0.0/12, one per link id. *)
let link_base = Ipv4.to_int (Ipv4.of_octets 10 240 0 0)

let link_addrs link_id =
  let lo = Ipv4.of_int (link_base + (2 * link_id)) in
  (lo, Ipv4.succ lo)

let wan_link_addrs s =
  let lo = Ipv4.of_octets 172 31 (2 * s / 256) (2 * s mod 256) in
  (lo, Ipv4.succ lo)

let import_wan : Policy_ast.policy =
  {
    pol_name = "IMPORT-WAN";
    terms =
      [
        {
          term_name = "10";
          matches = [ Policy_ast.Match_prefix (default_route, Policy_ast.Exact) ];
          actions = [ Policy_ast.Accept ];
        };
        { term_name = "20"; matches = []; actions = [ Policy_ast.Reject ] };
      ];
  }

let export_wan : Policy_ast.policy =
  {
    pol_name = "EXPORT-WAN";
    terms =
      [
        {
          term_name = "10";
          matches = [ Policy_ast.Match_prefix (aggregate_prefix, Policy_ast.Exact) ];
          actions = [ Policy_ast.Accept ];
        };
        { term_name = "20"; matches = []; actions = [ Policy_ast.Reject ] };
      ];
  }

let announce_default : Policy_ast.policy =
  {
    pol_name = "ANNOUNCE-DEFAULT";
    terms =
      [
        {
          term_name = "10";
          matches = [ Policy_ast.Match_prefix (default_route, Policy_ast.Exact) ];
          actions = [ Policy_ast.Accept ];
        };
        { term_name = "20"; matches = []; actions = [ Policy_ast.Reject ] };
      ];
  }

let fabric_acl =
  {
    Device.acl_name = "FABRIC-PROTECT";
    rules =
      [
        { Device.permit = true; rule_prefix = aggregate_prefix };
        {
          Device.permit = false;
          rule_prefix = Prefix.of_string "192.168.0.0/16";
        };
        { Device.permit = true; rule_prefix = default_route };
      ];
  }

let neighbor ?(group = None) ?(import = []) ?(export = []) ip remote_as desc =
  {
    Device.nb_ip = ip;
    nb_remote_as = remote_as;
    nb_group = group;
    nb_import = import;
    nb_export = export;
    nb_local_addr = None;
    nb_next_hop_self = false;
    nb_rr_client = false;
    nb_description = Some desc;
  }

let group ?remote_as ?(import = []) ?(export = []) name desc =
  {
    Device.pg_name = name;
    pg_remote_as = remote_as;
    pg_import = import;
    pg_export = export;
    pg_local_pref = None;
    pg_description = Some desc;
  }

let generate ?seed:(_ = 0) ?(multipath = 4) ~k () =
  if k < 4 || k mod 2 <> 0 then
    invalid_arg "Fattree.generate: k must be even and >= 4";
  let half = k / 2 in
  let n_spines = half * half in
  (* Pre-compute link ids. leaf(p,l)-agg(p,a) then agg(p,a)-spine(s). *)
  let link_id = ref 0 in
  let leaf_agg = Hashtbl.create 1024 in
  for p = 0 to k - 1 do
    for l = 0 to half - 1 do
      for a = 0 to half - 1 do
        Hashtbl.replace leaf_agg (p, l, a) !link_id;
        incr link_id
      done
    done
  done;
  let agg_spine = Hashtbl.create 1024 in
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      for j = 0 to half - 1 do
        let s = (a * half) + j in
        Hashtbl.replace agg_spine (p, a, s) !link_id;
        incr link_id
      done
    done
  done;
  (* ---------------- leaves ---------------- *)
  let make_leaf p l =
    let name = leaf_name p l in
    let fabric_ifaces =
      List.init half (fun a ->
          let id = Hashtbl.find leaf_agg (p, l, a) in
          let lo, _hi = link_addrs id in
          Device.interface ~address:(lo, 31)
            ~description:(Printf.sprintf "to %s" (agg_name p a))
            ~in_acl:"FABRIC-PROTECT"
            (Printf.sprintf "Ethernet%d" (1 + a)))
    in
    let svi =
      Device.interface
        ~address:(Ipv4.of_octets 10 p l 1, 24)
        ~description:"host subnet" "Vlan100"
    in
    let idx = (p * half) + l in
    let host_ports =
      List.init 2 (fun i ->
          Device.interface
            ~address:(Ipv4.of_octets 192 168 (idx mod 256) ((i * 64) + 1), 26)
            ~description:"host port"
            (Printf.sprintf "Ethernet%d" (1 + half + i)))
    in
    let neighbors =
      List.init half (fun a ->
          let id = Hashtbl.find leaf_agg (p, l, a) in
          let _lo, hi = link_addrs id in
          neighbor ~group:(Some "FABRIC") hi (agg_asn p)
            (Printf.sprintf "uplink %s" (agg_name p a)))
    in
    let bgp =
      {
        Device.local_as = leaf_asn k p l;
        router_id = Ipv4.of_octets 10 p l 1;
        networks = [ leaf_subnet p l ];
        aggregates = [];
        redistributes = [];
        groups = [ group ~remote_as:(agg_asn p) "FABRIC" "pod fabric" ];
        neighbors;
        multipath;
      }
    in
    Device.make ~syntax:Device.Ios
      ~interfaces:((svi :: fabric_ifaces) @ host_ports)
      ~acls:[ fabric_acl ] ~bgp name
  in
  (* ---------------- aggregation ---------------- *)
  let make_agg p a =
    let name = agg_name p a in
    let to_leaf_ifaces =
      List.init half (fun l ->
          let id = Hashtbl.find leaf_agg (p, l, a) in
          let _lo, hi = link_addrs id in
          Device.interface ~address:(hi, 31)
            ~description:(Printf.sprintf "to %s" (leaf_name p l))
            (Printf.sprintf "Ethernet%d" (1 + l)))
    in
    let to_spine_ifaces =
      List.init half (fun j ->
          let s = (a * half) + j in
          let id = Hashtbl.find agg_spine (p, a, s) in
          let lo, _hi = link_addrs id in
          Device.interface ~address:(lo, 31)
            ~description:(Printf.sprintf "to %s" (spine_name s))
            (Printf.sprintf "Ethernet%d" (1 + half + j)))
    in
    let leaf_neighbors =
      List.init half (fun l ->
          let id = Hashtbl.find leaf_agg (p, l, a) in
          let lo, _hi = link_addrs id in
          neighbor ~group:(Some "TO-LEAF") lo (leaf_asn k p l)
            (Printf.sprintf "downlink %s" (leaf_name p l)))
    in
    let spine_neighbors =
      List.init half (fun j ->
          let s = (a * half) + j in
          let id = Hashtbl.find agg_spine (p, a, s) in
          let _lo, hi = link_addrs id in
          neighbor ~group:(Some "TO-SPINE") hi spine_asn
            (Printf.sprintf "uplink %s" (spine_name s)))
    in
    let bgp =
      {
        Device.local_as = agg_asn p;
        router_id = Ipv4.of_octets 10 250 p a;
        networks = [];
        aggregates = [];
        redistributes = [];
        groups =
          [
            group "TO-LEAF" "pod leaves";
            group ~remote_as:spine_asn "TO-SPINE" "spine plane";
          ];
        neighbors = leaf_neighbors @ spine_neighbors;
        multipath;
      }
    in
    Device.make ~syntax:Device.Ios
      ~interfaces:(to_leaf_ifaces @ to_spine_ifaces)
      ~bgp name
  in
  (* ---------------- spines ---------------- *)
  let make_spine s =
    let name = spine_name s in
    let a = s / half in
    let pod_ifaces =
      List.init k (fun p ->
          let id = Hashtbl.find agg_spine (p, a, s) in
          let _lo, hi = link_addrs id in
          Device.interface ~address:(hi, 31)
            ~description:(Printf.sprintf "to %s" (agg_name p a))
            (Printf.sprintf "Ethernet%d" (1 + p)))
    in
    let wan_lo, wan_hi = wan_link_addrs s in
    let wan_iface =
      Device.interface ~address:(wan_lo, 31) ~description:"WAN uplink"
        (Printf.sprintf "Ethernet%d" (1 + k))
    in
    let pod_neighbors =
      List.init k (fun p ->
          let id = Hashtbl.find agg_spine (p, a, s) in
          let lo, _hi = link_addrs id in
          neighbor ~group:(Some "TO-POD") lo (agg_asn p)
            (Printf.sprintf "downlink %s" (agg_name p a)))
    in
    let wan_neighbor =
      neighbor ~group:(Some "TO-WAN") ~import:[ "IMPORT-WAN" ]
        ~export:[ "EXPORT-WAN" ] wan_hi (wan_asn s)
        (Printf.sprintf "uplink %s" (wan_name s))
    in
    let bgp =
      {
        Device.local_as = spine_asn;
        router_id = Ipv4.of_octets 10 251 (s / 256) (s mod 256);
        networks = [];
        aggregates = [ { Device.ag_prefix = aggregate_prefix; ag_summary_only = false } ];
        redistributes = [];
        groups = [ group "TO-POD" "pod planes"; group "TO-WAN" "WAN peers" ];
        neighbors = pod_neighbors @ [ wan_neighbor ];
        multipath;
      }
    in
    Device.make ~syntax:Device.Ios
      ~interfaces:(pod_ifaces @ [ wan_iface ])
      ~policies:[ import_wan; export_wan ]
      ~bgp name
  in
  (* ---------------- WAN stubs ---------------- *)
  let make_wan s =
    let name = wan_name s in
    let wan_lo, wan_hi = wan_link_addrs s in
    let bgp =
      {
        Device.local_as = wan_asn s;
        router_id = wan_hi;
        networks = [ default_route ];
        aggregates = [];
        redistributes = [];
        groups = [];
        neighbors =
          [
            neighbor ~export:[ "ANNOUNCE-DEFAULT" ] wan_lo spine_asn
              (Printf.sprintf "downlink %s" (spine_name s));
          ];
        multipath = 1;
      }
    in
    Device.make ~syntax:Device.Ios ~is_external:true
      ~interfaces:[ Device.interface ~address:(wan_hi, 31) "Ethernet1" ]
      ~static_routes:[ { Device.st_prefix = default_route; st_next_hop = wan_lo } ]
      ~policies:[ announce_default ]
      ~bgp name
  in
  let leaves = ref [] and aggs = ref [] and leaf_subnets = ref [] in
  let leaf_devs = ref [] and agg_devs = ref [] in
  for p = k - 1 downto 0 do
    for l = half - 1 downto 0 do
      leaves := leaf_name p l :: !leaves;
      leaf_subnets := (leaf_name p l, leaf_subnet p l) :: !leaf_subnets;
      leaf_devs := make_leaf p l :: !leaf_devs
    done;
    for a = half - 1 downto 0 do
      aggs := agg_name p a :: !aggs;
      agg_devs := make_agg p a :: !agg_devs
    done
  done;
  let spines = List.init n_spines spine_name in
  let spine_devs = List.init n_spines make_spine in
  let wans = List.init n_spines wan_name in
  let wan_devs = List.init n_spines make_wan in
  {
    devices = !leaf_devs @ !agg_devs @ spine_devs @ wan_devs;
    k;
    leaves = !leaves;
    aggs = !aggs;
    spines;
    wans;
    leaf_subnets = !leaf_subnets;
    aggregate_prefix;
    wan_import_policy = "IMPORT-WAN";
  }
