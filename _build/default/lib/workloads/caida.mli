(** Synthetic AS commercial relationships (CAIDA stand-in, §6.1): a
    deterministic customer/peer/provider assignment used by the
    RoutePreference test and the Internet2 generator. *)

open Netcov_types

type relationship = Customer | Peer | Provider

val to_string : relationship -> string
val compare : relationship -> relationship -> int

(** Gao–Rexford preference: customers most preferred. *)
val rank : relationship -> int

(** Local preference implementing the ranking (120 / 100 / 80). *)
val local_pref : relationship -> int

(** Community tagging routes learned from this class of neighbor,
    in the Internet2 AS. *)
val tag : local_as:int -> relationship -> Community.t

(** [assign rng n] draws a relationship for each of [n] peers with the
    paper-realistic mix (half customers, fewer providers). *)
val assign : Rng.t -> int -> relationship array
