open Netcov_types

type announcement = {
  ann_prefix : Prefix.t;
  ann_tail : int list;
  ann_in_allowed_list : bool;
}

type feed = {
  per_peer : announcement list array;
  shared_pool : Prefix.t list;
}

let shared_prefix i =
  Prefix.make (Ipv4.of_octets 100 (i / 256) (i mod 256) 0) 24

let unique_prefix ~peer ~j =
  Prefix.make (Ipv4.of_octets 104 (peer mod 256) j 0) 24

let bogus_prefix ~peer =
  Prefix.make (Ipv4.of_octets 150 (peer / 256) (peer mod 256) 0) 24

let generate rng ~n_peers ~shared ~unique_per_peer =
  let per_peer = Array.make n_peers [] in
  let push peer ann = per_peer.(peer) <- ann :: per_peer.(peer) in
  let shared_pool = List.init shared shared_prefix in
  (* Only a minority of peers are multihomed destinations' transit —
     most peers announce peer-unique space only (this is what leaves
     them untested by RoutePreference, §6.1.2 iteration 2). *)
  let n_multihomed = max 2 (n_peers * 2 / 5) in
  let multihomed = List.init n_multihomed (fun i -> i * n_peers / n_multihomed) in
  (* Shared prefixes: a common origin AS announced through 2-4 peers,
     sometimes with an intermediate hop so paths differ in length. *)
  List.iteri
    (fun i p ->
      let origin = 30000 + i in
      let announcers = Rng.sample rng (2 + Rng.int rng 3) multihomed in
      List.iter
        (fun peer ->
          let tail =
            if Rng.int rng 3 = 0 then [ 40000 + Rng.int rng 1000; origin ]
            else [ origin ]
          in
          push peer
            { ann_prefix = p; ann_tail = tail; ann_in_allowed_list = true })
        announcers)
    shared_pool;
  (* Peer-unique prefixes, originated by the peer itself. *)
  for peer = 0 to n_peers - 1 do
    for j = 0 to unique_per_peer - 1 do
      push peer
        {
          ann_prefix = unique_prefix ~peer ~j;
          ann_tail = [];
          ann_in_allowed_list = true;
        }
    done;
    (* One bogus announcement outside the permit list: real feeds carry
       leaks that import filters must drop. *)
    push peer
      {
        ann_prefix = bogus_prefix ~peer;
        ann_tail = [];
        ann_in_allowed_list = false;
      };
    (* A few peers also leak a private ASN in the path; the shared
       sanity policy must reject these even though the prefix is
       permitted. *)
    if peer mod 23 = 0 then
      push peer
        {
          ann_prefix = unique_prefix ~peer ~j:250;
          ann_tail = [ 65000 ];
          ann_in_allowed_list = true;
        }
  done;
  Array.iteri (fun i l -> per_peer.(i) <- List.rev l) per_peer;
  { per_peer; shared_pool }

let allowed_prefixes feed peer =
  List.filter_map
    (fun a -> if a.ann_in_allowed_list then Some a.ann_prefix else None)
    feed.per_peer.(peer)
  |> List.sort_uniq Prefix.compare
