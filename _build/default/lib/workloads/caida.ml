open Netcov_types

type relationship = Customer | Peer | Provider

let to_string = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

let rank = function Customer -> 0 | Peer -> 1 | Provider -> 2
let compare a b = Int.compare (rank a) (rank b)

let local_pref = function Customer -> 120 | Peer -> 100 | Provider -> 80

let tag ~local_as = function
  | Customer -> Community.make local_as 100
  | Peer -> Community.make local_as 200
  | Provider -> Community.make local_as 300

let assign rng n =
  Array.init n (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 -> Customer
      | 5 | 6 | 7 -> Peer
      | _ -> Provider)
