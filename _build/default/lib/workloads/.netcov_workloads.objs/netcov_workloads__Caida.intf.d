lib/workloads/caida.mli: Community Netcov_types Rng
