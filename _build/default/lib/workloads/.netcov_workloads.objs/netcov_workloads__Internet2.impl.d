lib/workloads/internet2.ml: Array As_regex Caida Community Device Ipv4 List Netcov_config Netcov_types Policy_ast Prefix Printf Rng Route Routeviews
