lib/workloads/fattree.ml: Device Hashtbl Ipv4 List Netcov_config Netcov_types Policy_ast Prefix Printf
