lib/workloads/internet2.mli: Caida Community Device Ipv4 Netcov_config Netcov_types Prefix Routeviews
