lib/workloads/rng.mli:
