lib/workloads/caida.ml: Array Community Int Netcov_types Rng
