lib/workloads/routeviews.mli: Netcov_types Prefix Rng
