lib/workloads/fattree.mli: Device Netcov_config Netcov_types Prefix
