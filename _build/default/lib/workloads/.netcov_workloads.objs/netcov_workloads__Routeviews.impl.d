lib/workloads/routeviews.ml: Array Ipv4 List Netcov_types Prefix Rng
