open Netcov_types
open Netcov_config

type peer_info = {
  idx : int;
  asn : int;
  router : string;
  router_ip : Ipv4.t;
  peer_ip : Ipv4.t;
  stub_host : string;
  relationship : Caida.relationship;
  allowed : Prefix.t list;
}

type t = {
  devices : Device.t list;
  routers : string list;
  peers : peer_info list;
  local_as : int;
  bte_community : Community.t;
  martian_prefixes : Prefix.t list;
  private_asns : int list;
  transit_asns : int list;
  internal_prefixes : Prefix.t list;
  sanity_policy : string;
  feed : Routeviews.feed;
}

type ibgp_design = Full_mesh | Route_reflectors of int

type params = {
  seed : int;
  ibgp : ibgp_design;
  n_peers : int;
  shared_prefixes : int;
  unique_per_peer : int;
  dead_policies_per_router : int;
  dead_peer_fraction : float;
      (** share of decommissioned peers whose policies/lists linger *)
  spare_interfaces : int;  (** unaddressed ports per router *)
}

let default_params =
  {
    ibgp = Full_mesh;
    seed = 42;
    n_peers = 60;
    shared_prefixes = 80;
    unique_per_peer = 3;
    dead_policies_per_router = 3;
    dead_peer_fraction = 0.55;
    spare_interfaces = 8;
  }

let paper_params =
  {
    ibgp = Full_mesh;
    seed = 42;
    n_peers = 279;
    shared_prefixes = 400;
    unique_per_peer = 3;
    dead_policies_per_router = 3;
    dead_peer_fraction = 0.55;
    spare_interfaces = 8;
  }

let test_params =
  {
    ibgp = Full_mesh;
    seed = 7;
    n_peers = 12;
    shared_prefixes = 10;
    unique_per_peer = 2;
    dead_policies_per_router = 2;
    dead_peer_fraction = 0.4;
    spare_interfaces = 3;
  }

let local_as = 11537
let router_names = [ "seat"; "losa"; "salt"; "hous"; "kans"; "chic"; "atla"; "wash"; "newy"; "clev" ]

let backbone_links =
  [
    ("seat", "losa");
    ("seat", "salt");
    ("losa", "salt");
    ("losa", "hous");
    ("salt", "kans");
    ("hous", "kans");
    ("hous", "atla");
    ("kans", "chic");
    ("chic", "clev");
    ("clev", "newy");
    ("chic", "atla");
    ("atla", "wash");
    ("wash", "newy");
  ]

let loopback_of idx = Ipv4.of_octets 10 0 0 (idx + 1)

let martian_prefixes =
  List.map Prefix.of_string
    [
      "10.0.0.0/8";
      "172.16.0.0/12";
      "192.168.0.0/16";
      "127.0.0.0/8";
      "169.254.0.0/16";
      "0.0.0.0/8";
    ]

let private_asns = [ 64512; 65000; 65534; 65535 ]
let transit_asns = [ 174; 701; 1239; 3356; 7018 ]
let internal_supernet = Prefix.of_string "198.32.0.0/16"
let bte_community = Community.make local_as 888

let cust_tag = Caida.tag ~local_as Caida.Customer

let relationship_group = function
  | Caida.Customer -> "CUST"
  | Caida.Peer -> "PEER"
  | Caida.Provider -> "PROV"

(* Shared policies present on every router. *)
let sanity_in : Policy_ast.policy =
  {
    pol_name = "SANITY-IN";
    terms =
      [
        {
          term_name = "block-private-asn";
          matches = [ Policy_ast.Match_as_path_list "PRIVATE-ASN" ];
          actions = [ Policy_ast.Reject ];
        };
        {
          term_name = "block-nlr-transit";
          matches = [ Policy_ast.Match_as_path_list "TRANSIT-ASN" ];
          actions = [ Policy_ast.Reject ];
        };
        {
          term_name = "block-martians";
          matches = [ Policy_ast.Match_prefix_list "MARTIANS" ];
          actions = [ Policy_ast.Reject ];
        };
        {
          term_name = "block-default";
          matches = [ Policy_ast.Match_prefix (Prefix.default, Policy_ast.Exact) ];
          actions = [ Policy_ast.Reject ];
        };
        {
          term_name = "block-internal";
          matches = [ Policy_ast.Match_prefix_list "INTERNAL" ];
          actions = [ Policy_ast.Reject ];
        };
      ];
  }

let block_bte : Policy_ast.policy =
  {
    pol_name = "BLOCK-BTE";
    terms =
      [
        {
          term_name = "block-to-external";
          matches = [ Policy_ast.Match_community_list "BTE" ];
          actions = [ Policy_ast.Reject ];
        };
      ];
  }

let export_cust : Policy_ast.policy =
  {
    pol_name = "EXPORT-CUST";
    terms =
      [
        { term_name = "to-customer"; matches = []; actions = [ Policy_ast.Accept ] };
      ];
  }

let export_restricted name : Policy_ast.policy =
  {
    pol_name = name;
    terms =
      [
        {
          term_name = "own-prefixes";
          matches = [ Policy_ast.Match_prefix_list "INTERNAL" ];
          actions = [ Policy_ast.Accept ];
        };
        {
          term_name = "customer-routes";
          matches = [ Policy_ast.Match_community_list "CUST-TAG" ];
          actions = [ Policy_ast.Accept ];
        };
        { term_name = "deny-rest"; matches = []; actions = [ Policy_ast.Reject ] };
      ];
  }

let tag_static : Policy_ast.policy =
  {
    pol_name = "TAG-STATIC";
    terms =
      [
        {
          term_name = "tag-bte";
          matches = [ Policy_ast.Match_protocol Route.Static ];
          actions = [ Policy_ast.Add_community bte_community; Policy_ast.Accept ];
        };
      ];
  }

let le32 p = { Device.ple_prefix = p; ple_ge = None; ple_le = Some 32 }
let exact p = { Device.ple_prefix = p; ple_ge = None; ple_le = None }

(* Dead configuration: realistic leftovers that no peer references. *)
let dead_policies n : Policy_ast.policy list =
  let sanity_v1 : Policy_ast.policy =
    {
      pol_name = "SANITY-IN-V1";
      terms =
        [
          {
            term_name = "old-block-private";
            matches = [ Policy_ast.Match_as_path_list "DEPRECATED-ASNS" ];
            actions = [ Policy_ast.Reject ];
          };
          {
            term_name = "old-block-martians";
            matches = [ Policy_ast.Match_prefix_list "PFX-OLD" ];
            actions = [ Policy_ast.Reject ];
          };
          {
            term_name = "old-block-default";
            matches = [ Policy_ast.Match_prefix (Prefix.default, Policy_ast.Exact) ];
            actions = [ Policy_ast.Reject ];
          };
          {
            term_name = "old-prefer";
            matches = [ Policy_ast.Match_community_list "OLD-TAGS" ];
            actions = [ Policy_ast.Set_local_pref 90; Policy_ast.Accept ];
          };
          { term_name = "old-accept"; matches = []; actions = [ Policy_ast.Accept ] };
        ];
    }
  in
  let te_shift : Policy_ast.policy =
    {
      pol_name = "TE-SHIFT";
      terms =
        [
          {
            term_name = "shift-east";
            matches = [ Policy_ast.Match_prefix_list "PFX-OLD" ];
            actions = [ Policy_ast.Set_med 50; Policy_ast.Accept ];
          };
          {
            term_name = "prepend-west";
            matches = [ Policy_ast.Match_as_path_list "DEPRECATED-ASNS" ];
            actions = [ Policy_ast.Prepend_as (local_as, 2); Policy_ast.Accept ];
          };
          {
            term_name = "depref-backup";
            matches = [ Policy_ast.Match_community_list "OLD-TAGS" ];
            actions = [ Policy_ast.Set_local_pref 70; Policy_ast.Accept ];
          };
        ];
    }
  in
  let monitor_in : Policy_ast.policy =
    {
      pol_name = "MONITOR-IN";
      terms =
        [
          {
            term_name = "tag-monitor";
            matches = [ Policy_ast.Match_prefix_list "PFX-OLD" ];
            actions =
              [
                Policy_ast.Add_community (Community.make local_as 911);
                Policy_ast.Next_term;
              ];
          };
          {
            term_name = "monitor-only";
            matches = [];
            actions = [ Policy_ast.Reject ];
          };
        ];
    }
  in
  let pool = [ sanity_v1; te_shift; monitor_in ] in
  List.filteri (fun i _ -> i < n) pool

(* Decommissioned-peer leftovers: an allow policy and its permit list,
   no longer attached to any neighbor. *)
let dead_peer_leftovers ~router_idx count =
  let policies =
    List.init count (fun i : Policy_ast.policy ->
        {
          pol_name = Printf.sprintf "ALLOW-PEER-OLD-%d-%d" router_idx i;
          terms =
            [
              {
                term_name = "allow";
                matches =
                  [
                    Policy_ast.Match_prefix_list
                      (Printf.sprintf "PFX-PEER-OLD-%d-%d" router_idx i);
                  ];
                actions = [ Policy_ast.Add_community cust_tag; Policy_ast.Accept ];
              };
              {
                term_name = "deny-rest";
                matches = [];
                actions = [ Policy_ast.Reject ];
              };
            ];
        })
  in
  let prefix_lists =
    List.init count (fun i ->
        {
          Device.pl_name = Printf.sprintf "PFX-PEER-OLD-%d-%d" router_idx i;
          pl_entries =
            List.init 3 (fun j ->
                exact
                  (Prefix.make
                     (Ipv4.of_octets 143 ((router_idx * 16) + i) j 0)
                     24));
        })
  in
  (policies, prefix_lists)

let peer_subnet idx =
  (* one /30 per peer under 172.16/12 *)
  let base = idx * 4 in
  Prefix.make (Ipv4.of_octets 172 16 (base / 256) (base mod 256)) 30

let generate params =
  let rng = Rng.make params.seed in
  let feed =
    Routeviews.generate (Rng.split rng) ~n_peers:params.n_peers
      ~shared:params.shared_prefixes ~unique_per_peer:params.unique_per_peer
  in
  let relationships = Caida.assign (Rng.split rng) params.n_peers in
  let n_routers = List.length router_names in
  let router_arr = Array.of_list router_names in
  let peers =
    List.init params.n_peers (fun idx ->
        let subnet = Prefix.addr (peer_subnet idx) in
        {
          idx;
          asn = 20000 + idx;
          router = router_arr.(idx mod n_routers);
          router_ip = Ipv4.add subnet 1;
          peer_ip = Ipv4.add subnet 2;
          stub_host = Printf.sprintf "peer%03d" idx;
          relationship = relationships.(idx);
          allowed = Routeviews.allowed_prefixes feed idx;
        })
  in
  let peers_of_router r = List.filter (fun p -> p.router = r) peers in
  (* ---------------- backbone routers ---------------- *)
  let make_router ridx name =
    let lo = loopback_of ridx in
    (* backbone interfaces *)
    let counter = ref 0 in
    let backbone_ifaces =
      List.concat
        (List.mapi
           (fun li (a, b) ->
             let subnet = Ipv4.of_octets 10 1 li 0 in
             let mine =
               if a = name then Some (Ipv4.add subnet 1)
               else if b = name then Some (Ipv4.add subnet 2)
               else None
             in
             match mine with
             | None -> []
             | Some ip ->
                 let n = !counter in
                 incr counter;
                 [
                   Device.interface
                     ~address:(ip, 30)
                     ~description:(Printf.sprintf "backbone %s--%s" a b)
                     ~igp_enabled:true ~igp_metric:10
                     (Printf.sprintf "xe-0/0/%d" n);
                 ])
           backbone_links)
    in
    let loopback =
      Device.interface ~address:(lo, 32) ~description:"loopback"
        ~igp_enabled:true ~igp_metric:0 "lo0"
    in
    let service_iface =
      Device.interface
        ~address:(Ipv4.of_octets 198 32 (8 + ridx) 1, 24)
        ~description:"service LAN" "ge-0/3/0"
    in
    let my_peers = peers_of_router name in
    let peer_ifaces =
      List.mapi
        (fun n p ->
          Device.interface
            ~address:(p.router_ip, 30)
            ~description:(Printf.sprintf "to AS%d (%s)" p.asn
                            (Caida.to_string p.relationship))
            (Printf.sprintf "xe-1/0/%d" n))
        my_peers
    in
    (* spare ports: provisioned but unaddressed, hence untestable by
       data plane tests (§6.1.2 iteration 3) *)
    let spare_ifaces =
      List.init params.spare_interfaces (fun n ->
          Device.interface ~description:"spare capacity"
            (Printf.sprintf "ge-0/2/%d" n))
    in
    let n_dead_peers =
      int_of_float
        (ceil (float_of_int (List.length my_peers) *. params.dead_peer_fraction))
    in
    let dead_allow_policies, dead_prefix_lists =
      dead_peer_leftovers ~router_idx:ridx n_dead_peers
    in
    (* static internal prefix, tagged BTE via redistribution *)
    let static_nh =
      (* next hop: the far end of our first backbone link *)
      match backbone_ifaces with
      | i :: _ -> (
          match i.Device.address with
          | Some (ip, _) ->
              let subnet_base = Ipv4.logand ip (Ipv4.of_int 0xFFFFFFFC) in
              let low = Ipv4.to_int ip land 3 in
              if low = 1 then Ipv4.add subnet_base 2 else Ipv4.add subnet_base 1
          | None -> lo)
      | [] -> lo
    in
    let statics =
      [
        {
          Device.st_prefix =
            Prefix.make (Ipv4.of_octets 198 32 (100 + ridx) 0) 24;
          st_next_hop = static_nh;
        };
      ]
    in
    (* prefix lists *)
    let prefix_lists =
      [
        { Device.pl_name = "MARTIANS"; pl_entries = List.map le32 martian_prefixes };
        { Device.pl_name = "INTERNAL"; pl_entries = [ le32 internal_supernet ] };
        {
          Device.pl_name = "PFX-OLD";
          pl_entries = [ le32 (Prefix.of_string "192.0.2.0/24") ];
        };
      ]
      @ List.map
          (fun p ->
            {
              Device.pl_name = Printf.sprintf "PFX-PEER-%d" p.idx;
              pl_entries = List.map exact p.allowed;
            })
          my_peers
      @ dead_prefix_lists
    in
    let community_lists =
      [
        { Device.cl_name = "BTE"; cl_members = [ bte_community ] };
        { Device.cl_name = "CUST-TAG"; cl_members = [ cust_tag ] };
        {
          Device.cl_name = "PEER-TAG";
          cl_members = [ Caida.tag ~local_as Caida.Peer ];
        };
        {
          Device.cl_name = "PROV-TAG";
          cl_members = [ Caida.tag ~local_as Caida.Provider ];
        };
        {
          Device.cl_name = "OLD-TAGS";
          cl_members = [ Community.make local_as 666 ];
        };
      ]
    in
    let as_path_lists =
      [
        {
          Device.al_name = "PRIVATE-ASN";
          al_patterns =
            List.map
              (fun a -> As_regex.compile (Printf.sprintf "_%d_" a))
              private_asns;
        };
        {
          Device.al_name = "TRANSIT-ASN";
          al_patterns =
            List.map
              (fun a -> As_regex.compile (Printf.sprintf "_%d_" a))
              transit_asns;
        };
        {
          Device.al_name = "DEPRECATED-ASNS";
          al_patterns = [ As_regex.compile "_11536_" ];
        };
      ]
    in
    (* peer-specific allow policies *)
    let allow_policies =
      List.map
        (fun p : Policy_ast.policy ->
          {
            pol_name = Printf.sprintf "ALLOW-PEER-%d" p.idx;
            terms =
              [
                {
                  term_name = "allow";
                  matches =
                    [ Policy_ast.Match_prefix_list (Printf.sprintf "PFX-PEER-%d" p.idx) ];
                  actions =
                    [
                      Policy_ast.Add_community (Caida.tag ~local_as p.relationship);
                      Policy_ast.Accept;
                    ];
                };
                {
                  term_name = "deny-rest";
                  matches = [];
                  actions = [ Policy_ast.Reject ];
                };
              ];
          })
        my_peers
    in
    let policies =
      [
        sanity_in;
        block_bte;
        export_cust;
        export_restricted "EXPORT-PEER";
        export_restricted "EXPORT-PROV";
        tag_static;
      ]
      @ allow_policies
      @ dead_policies params.dead_policies_per_router
      @ dead_allow_policies
    in
    (* BGP groups *)
    let groups =
      [
        {
          Device.pg_name = "IBGP";
          pg_remote_as = Some local_as;
          pg_import = [];
          pg_export = [];
          pg_local_pref = None;
          pg_description = Some "internal full mesh";
        };
        {
          Device.pg_name = "CUST";
          pg_remote_as = None;
          pg_import = [];
          pg_export = [ "BLOCK-BTE"; "EXPORT-CUST" ];
          pg_local_pref = Some (Caida.local_pref Caida.Customer);
          pg_description = Some "customers";
        };
        {
          Device.pg_name = "PEER";
          pg_remote_as = None;
          pg_import = [];
          pg_export = [ "BLOCK-BTE"; "EXPORT-PEER" ];
          pg_local_pref = Some (Caida.local_pref Caida.Peer);
          pg_description = Some "settlement-free peers";
        };
        {
          Device.pg_name = "PROV";
          pg_remote_as = None;
          pg_import = [];
          pg_export = [ "BLOCK-BTE"; "EXPORT-PROV" ];
          pg_local_pref = Some (Caida.local_pref Caida.Provider);
          pg_description = Some "transit providers";
        };
        {
          Device.pg_name = "DECOM";
          pg_remote_as = None;
          pg_import = [];
          pg_export = [];
          pg_local_pref = None;
          pg_description = Some "decommissioned peers";
        };
        {
          Device.pg_name = "MONITORING";
          pg_remote_as = Some local_as;
          pg_import = [ "MONITOR-IN" ];
          pg_export = [];
          pg_local_pref = None;
          pg_description = Some "route monitors";
        };
      ]
    in
    let ibgp_neighbor ?(client = false) j other =
      {
        Device.nb_ip = loopback_of j;
        nb_remote_as = local_as;
        nb_group = Some "IBGP";
        nb_import = [];
        nb_export = [];
        nb_local_addr = Some lo;
        nb_next_hop_self = true;
        nb_rr_client = client;
        nb_description =
          Some ((if client then "iBGP client " else "iBGP to ") ^ other);
      }
    in
    let ibgp_neighbors =
      match params.ibgp with
      | Full_mesh ->
          List.concat
            (List.mapi
               (fun j other ->
                 if other = name then [] else [ ibgp_neighbor j other ])
               router_names)
      | Route_reflectors n_rr ->
          let is_rr = ridx < n_rr in
          List.concat
            (List.mapi
               (fun j other ->
                 if other = name then []
                 else if is_rr then
                   (* reflectors mesh among themselves and serve all
                      other routers as clients *)
                   [ ibgp_neighbor ~client:(j >= n_rr) j other ]
                 else if j < n_rr then [ ibgp_neighbor j other ]
                 else [])
               router_names)
    in
    let ext_neighbors =
      List.map
        (fun p ->
          {
            Device.nb_ip = p.peer_ip;
            nb_remote_as = p.asn;
            nb_group = Some (relationship_group p.relationship);
            nb_import = [ "SANITY-IN"; Printf.sprintf "ALLOW-PEER-%d" p.idx ];
            nb_export = [];
            nb_local_addr = None;
            nb_next_hop_self = false;
            nb_rr_client = false;
            nb_description = Some p.stub_host;
          })
        my_peers
    in
    let bgp =
      {
        Device.local_as;
        router_id = lo;
        networks = [ Prefix.make (Ipv4.of_octets 198 32 (8 + ridx) 0) 24 ];
        aggregates = [];
        redistributes = [ { Device.rd_from = Route.Static; rd_policy = Some "TAG-STATIC" } ];
        groups;
        neighbors = ibgp_neighbors @ ext_neighbors;
        multipath = 1;
      }
    in
    Device.make ~syntax:Device.Junos
      ~interfaces:
        ((loopback :: backbone_ifaces)
        @ (service_iface :: peer_ifaces)
        @ spare_ifaces)
      ~static_routes:statics ~prefix_lists ~community_lists ~as_path_lists
      ~policies ~bgp name
  in
  let routers = List.mapi make_router router_names in
  (* ---------------- external stubs ---------------- *)
  let make_stub p =
    let anns = feed.Routeviews.per_peer.(p.idx) in
    let announce : Policy_ast.policy =
      {
        pol_name = "ANNOUNCE";
        terms =
          List.mapi
            (fun j (a : Routeviews.announcement) : Policy_ast.term ->
              {
                term_name = Printf.sprintf "a%d" j;
                matches = [ Policy_ast.Match_prefix (a.ann_prefix, Policy_ast.Exact) ];
                actions =
                  List.rev_map
                    (fun asn -> Policy_ast.Prepend_as (asn, 1))
                    a.ann_tail
                  @ [ Policy_ast.Accept ];
              })
            anns
          @ [
              {
                term_name = "deny-rest";
                matches = [];
                actions = [ Policy_ast.Reject ];
              };
            ];
      }
    in
    let deny_all : Policy_ast.policy =
      {
        pol_name = "DENY-ALL";
        terms =
          [ { term_name = "deny"; matches = []; actions = [ Policy_ast.Reject ] } ];
      }
    in
    let prefixes =
      List.map (fun (a : Routeviews.announcement) -> a.ann_prefix) anns
      |> List.sort_uniq Prefix.compare
    in
    let bgp =
      {
        Device.local_as = p.asn;
        router_id = p.peer_ip;
        networks = prefixes;
        aggregates = [];
        redistributes = [];
        groups = [];
        neighbors =
          [
            {
              Device.nb_ip = p.router_ip;
              nb_remote_as = local_as;
              nb_group = None;
              nb_import = [ "DENY-ALL" ];
              nb_export = [ "ANNOUNCE" ];
              nb_local_addr = None;
              nb_next_hop_self = false;
              nb_rr_client = false;
              nb_description = Some ("uplink to Internet2 " ^ p.router);
            };
          ];
        multipath = 1;
      }
    in
    Device.make ~syntax:Device.Junos ~is_external:true
      ~interfaces:[ Device.interface ~address:(p.peer_ip, 30) "eth0" ]
      ~static_routes:
        (List.map
           (fun pfx -> { Device.st_prefix = pfx; st_next_hop = p.router_ip })
           prefixes)
      ~policies:[ announce; deny_all ] ~bgp p.stub_host
  in
  let stubs = List.map make_stub peers in
  {
    devices = routers @ stubs;
    routers = router_names;
    peers;
    local_as;
    bte_community;
    martian_prefixes;
    private_asns;
    transit_asns;
    internal_prefixes = [ internal_supernet ];
    sanity_policy = "SANITY-IN";
    feed;
  }
