(** Synthetic BGP announcement feed (Route Views stand-in, §6.1).

    The paper approximates the messages Internet2's external peers send
    by mining RouteViews AS paths; we generate an equivalent
    deterministic feed: a pool of shared destination prefixes announced
    by several peers (with distinct AS paths to a common origin) plus
    peer-unique prefixes, a filtered bogus announcement per peer, and a
    few announcements tainted with private ASNs that import sanity
    policies must reject. *)

open Netcov_types

type announcement = {
  ann_prefix : Prefix.t;
  ann_tail : int list;
      (** AS path after the peer's own ASN (origin last) *)
  ann_in_allowed_list : bool;
      (** belongs in the peer's permitted prefix list *)
}

type feed = {
  per_peer : announcement list array;  (** indexed by peer *)
  shared_pool : Prefix.t list;
}

(** [generate rng ~n_peers ~shared ~unique_per_peer] builds the feed.
    Each shared prefix is announced by 2–4 peers. *)
val generate :
  Rng.t -> n_peers:int -> shared:int -> unique_per_peer:int -> feed

(** Prefixes a peer is allowed to announce (its permit list). *)
val allowed_prefixes : feed -> int -> Prefix.t list
