(** Synthetic Internet2-style national backbone (§6.1): 10 JunOS routers
    in one AS, iBGP full mesh over an IGP, external eBGP peers with
    peer-specific permit lists, a shared SANITY-IN import policy (five
    reject terms), class-based export policies with a BlockToExternal
    community, plus realistic dead configuration (unused policies, match
    lists and empty peer groups). External peers are environment stub
    devices fed by the synthetic RouteViews feed. *)

open Netcov_types
open Netcov_config

type peer_info = {
  idx : int;
  asn : int;
  router : string;  (** Internet2 router it attaches to *)
  router_ip : Ipv4.t;  (** session address on the Internet2 side *)
  peer_ip : Ipv4.t;  (** session address on the stub *)
  stub_host : string;
  relationship : Caida.relationship;
  allowed : Prefix.t list;  (** its permit list *)
}

type t = {
  devices : Device.t list;
  routers : string list;  (** the ten backbone routers *)
  peers : peer_info list;
  local_as : int;
  bte_community : Community.t;
  martian_prefixes : Prefix.t list;  (** test inputs for NoMartian *)
  private_asns : int list;  (** for SanityIn *)
  transit_asns : int list;
  internal_prefixes : Prefix.t list;
  sanity_policy : string;  (** "SANITY-IN" *)
  feed : Routeviews.feed;
}

(** iBGP design of the backbone: the paper's Internet2 uses a full
    mesh; the route-reflector variant (first [n] routers are reflectors,
    the rest are their clients) is provided to study how the iBGP design
    changes coverage. *)
type ibgp_design = Full_mesh | Route_reflectors of int

type params = {
  seed : int;
  ibgp : ibgp_design;
  n_peers : int;
  shared_prefixes : int;
  unique_per_peer : int;
  dead_policies_per_router : int;
  dead_peer_fraction : float;
      (** share of decommissioned peers whose policies/lists linger as
          dead configuration *)
  spare_interfaces : int;  (** unaddressed ports per router *)
}

val default_params : params

(** Paper-scale instance: 279 peers. *)
val paper_params : params

(** Small instance for unit tests. *)
val test_params : params

val generate : params -> t
