(** Data plane coverage in the style of Yardstick (§8): the proportion of
    main-RIB (forwarding) rules exercised by a test suite. Control plane
    tests exercise none. *)

open Netcov_sim
open Netcov_core

type t = {
  tested_entries : int;
  total_entries : int;  (** main-RIB entries across internal devices *)
}

val pct : t -> float

(** [of_tested state tested] counts the distinct main-RIB facts among
    the tested data plane facts (path facts contribute the entries along
    their hops). *)
val of_tested : Stable_state.t -> Netcov.tested -> t

(** The hypothetical test that inspects every forwarding rule
    (Figure 11(a)'s "All data plane" row). *)
val all_data_plane_tested : Stable_state.t -> Netcov.tested
