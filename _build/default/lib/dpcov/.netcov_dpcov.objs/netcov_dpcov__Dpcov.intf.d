lib/dpcov/dpcov.mli: Netcov Netcov_core Netcov_sim Stable_state
