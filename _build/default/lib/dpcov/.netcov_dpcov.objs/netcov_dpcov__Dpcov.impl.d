lib/dpcov/dpcov.ml: Fact Forward Hashtbl List Netcov Netcov_core Netcov_sim Rib Stable_state
