(* Writing your own network test with the Probe API.

   The test below ("NoTransitLeak") checks a property the built-in suite
   does not: routes learned from a *provider* must never be exported to
   a *peer* or another *provider* (the Gao–Rexford valley-free rule).
   Because every probe query records what it inspected, the new test
   immediately participates in coverage analysis — this is the paper's
   §6.1.2 workflow ("add tests that target untested lines") from a test
   author's point of view.

   Run with: dune exec examples/custom_test.exe *)

open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let no_transit_leak (net : Internet2.t) : Nettest.t =
  Probe.to_test ~name:"NoTransitLeak" ~kind:Nettest.Control_plane (fun p ->
      (* a synthetic route as a provider would send it: tagged with the
         provider class community on import *)
      let provider_route =
        Route.add_community
          (Route.originate (Prefix.of_string "100.77.0.0/24")
             ~next_hop:Ipv4.zero)
          (Netcov_workloads.Caida.tag ~local_as:net.Internet2.local_as
             Netcov_workloads.Caida.Provider)
      in
      List.iter
        (fun (pi : Internet2.peer_info) ->
          match pi.relationship with
          | Caida.Customer -> ()  (* customers may receive everything *)
          | Caida.Peer | Caida.Provider ->
              let verdict =
                Probe.export_verdict p ~host:pi.router ~neighbor:pi.peer_ip
                  provider_route
              in
              Probe.check p (verdict = `Rejected)
                (Printf.sprintf "%s leaks provider routes to %s (%s)" pi.router
                   pi.stub_host
                   (Caida.to_string pi.relationship)))
        net.Internet2.peers)

(* A second custom test, data plane flavored: every router must prefer
   an internal (iBGP) path over falling back to the default-free zone —
   i.e. the service LANs of all routers are reachable from everywhere. *)
let service_mesh (net : Internet2.t) : Nettest.t =
  Probe.to_test ~name:"ServiceMesh" ~kind:Nettest.Data_plane (fun p ->
      List.iter
        (fun src ->
          List.iteri
            (fun i dst_router ->
              if src <> dst_router then begin
                let dst = Ipv4.of_octets 198 32 (8 + i) 1 in
                let ok = Probe.reachable p ~src ~dst in
                Probe.check p ok
                  (Printf.sprintf "%s cannot reach service LAN of %s" src
                     dst_router)
              end)
            net.Internet2.routers)
        net.Internet2.routers)

let () =
  let net = Internet2.generate Internet2.default_params in
  let state = Stable_state.compute (Registry.build net.Internet2.devices) in
  let tests = [ no_transit_leak net; service_mesh net ] in
  let results = Nettest.run_suite state tests in
  List.iter
    (fun ((t : Nettest.t), (r : Nettest.result)) ->
      Printf.printf "%-16s %-13s %5d checks  %s\n" t.name
        (Nettest.kind_to_string t.kind)
        r.outcome.Nettest.checks
        (if Nettest.passed r.outcome then "PASS"
         else
           Printf.sprintf "FAIL (%d): %s"
             (List.length r.outcome.Nettest.failures)
             (match r.outcome.Nettest.failures with f :: _ -> f | [] -> ""));
      let report = Netcov.analyze state r.Nettest.tested in
      Printf.printf "  -> coverage contribution: %.1f%%\n"
        (Coverage.pct (Coverage.line_stats report.Netcov.coverage)))
    results;
  (* how much do the custom tests add on top of the improved suite? *)
  let base = Nettest.run_suite state (Iterations.improved_suite net) in
  let with_custom =
    Netcov.merge_tested (Nettest.suite_tested base) (Nettest.suite_tested results)
  in
  let before = Netcov.analyze state (Nettest.suite_tested base) in
  let after = Netcov.analyze state with_custom in
  Printf.printf "\nimproved suite: %.1f%%  ->  with custom tests: %.1f%%\n"
    (Coverage.pct (Coverage.line_stats before.Netcov.coverage))
    (Coverage.pct (Coverage.line_stats after.Netcov.coverage));
  let d =
    Coverage_diff.diff ~baseline:before.Netcov.coverage after.Netcov.coverage
  in
  print_string (Coverage_diff.summary (Stable_state.registry state) d)
