(* Quickstart: the paper's Figure 1 network, end to end.

   Two routers. R2 originates its LAN prefix 10.10.1.0/24 through a BGP
   network statement; R1 imports it through a routing policy. We declare
   one data plane test — "the route to 10.10.1.0/24 is present at R1" —
   and ask NetCov which configuration lines that test covers.

   Run with: dune exec examples/quickstart.exe *)

open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let ip = Ipv4.of_string
let pfx = Prefix.of_string

(* ---- 1. Describe the devices (or parse them from text) ------------- *)

let r1 =
  Device.make
    ~interfaces:[ Device.interface ~address:(ip "192.168.1.1", 30) "eth0" ]
    ~policies:
      [
        {
          Policy_ast.pol_name = "R2-to-R1";
          terms =
            [
              {
                term_name = "block";
                matches =
                  [ Policy_ast.Match_prefix (pfx "10.10.2.0/24", Policy_ast.Exact) ];
                actions = [ Policy_ast.Reject ];
              };
              {
                term_name = "prefer";
                matches =
                  [ Policy_ast.Match_prefix (pfx "10.10.1.0/24", Policy_ast.Exact) ];
                actions = [ Policy_ast.Set_local_pref 120; Policy_ast.Accept ];
              };
            ];
        };
      ]
    ~bgp:
      {
        Device.local_as = 65001;
        router_id = ip "192.168.1.1";
        networks = [];
        aggregates = [];
        redistributes = [];
        groups = [];
        neighbors =
          [
            {
              Device.nb_ip = ip "192.168.1.2";
              nb_remote_as = 65002;
              nb_group = None;
              nb_import = [ "R2-to-R1" ];
              nb_export = [];
              nb_local_addr = None;
              nb_next_hop_self = false;
              nb_rr_client = false;
              nb_description = Some "to R2";
            };
          ];
        multipath = 1;
      }
    "r1"

let r2 =
  Device.make
    ~interfaces:
      [
        Device.interface ~address:(ip "192.168.1.2", 30) "eth0";
        Device.interface ~address:(ip "10.10.1.1", 24) "eth1";
      ]
    ~bgp:
      {
        Device.local_as = 65002;
        router_id = ip "192.168.1.2";
        networks = [ pfx "10.10.1.0/24" ];
        aggregates = [];
        redistributes = [];
        groups = [];
        neighbors =
          [
            {
              Device.nb_ip = ip "192.168.1.1";
              nb_remote_as = 65001;
              nb_group = None;
              nb_import = [];
              nb_export = [];
              nb_local_addr = None;
              nb_next_hop_self = false;
              nb_rr_client = false;
              nb_description = Some "to R1";
            };
          ];
        multipath = 1;
      }
    "r2"

let () =
  (* ---- 2. Build the registry and compute the stable state ---------- *)
  let reg = Registry.build [ r1; r2 ] in
  let state = Stable_state.compute reg in
  Printf.printf "control plane converged in %d rounds; %d routing edges\n\n"
    (Stable_state.rounds state)
    (List.length (Stable_state.edges state));

  (* ---- 3. Declare what the test suite tested ----------------------- *)
  let tested_entry = pfx "10.10.1.0/24" in
  let dp_facts =
    List.map
      (fun entry -> Fact.F_main_rib { host = "r1"; entry })
      (Stable_state.main_lookup state "r1" tested_entry)
  in
  assert (dp_facts <> []);
  Printf.printf "data plane test: route to %s present at r1  [PASS]\n\n"
    (Prefix.to_string tested_entry);

  (* ---- 4. Compute configuration coverage --------------------------- *)
  let report = Netcov.analyze state { Netcov.dp_facts; cp_elements = [] } in
  let stats = Coverage.line_stats report.Netcov.coverage in
  Printf.printf "configuration coverage: %.1f%% (%d of %d considered lines)\n"
    (Coverage.pct stats)
    (Coverage.covered_lines stats)
    stats.Coverage.considered;
  Printf.printf "IFG: %d nodes, %d edges; %d targeted simulations\n\n"
    report.Netcov.timing.ifg_nodes report.Netcov.timing.ifg_edges
    report.Netcov.timing.sim_count;

  (* ---- 5. Inspect the annotated configurations --------------------- *)
  List.iter
    (fun host ->
      Printf.printf "---- %s (+ strong, ~ weak, - uncovered, blank unconsidered)\n%s\n"
        host
        (Lcov.annotate report.Netcov.coverage host))
    [ "r1"; "r2" ];

  (* ---- 6. Or export the standard lcov report ----------------------- *)
  Lcov.write_tree report.Netcov.coverage "_quickstart_coverage";
  Printf.printf
    "wrote lcov report to _quickstart_coverage/coverage.info (plus rendered \
     configs)\n"
