(* Case study I (paper §6.1): the Internet2-style national backbone.

   Generates the synthetic backbone (10 routers, external eBGP peers fed
   by a RouteViews-like announcement feed), runs the Bagpipe test suite,
   reports coverage per device and per element type, then walks the
   paper's three coverage-guided improvement iterations.

   Run with: dune exec examples/internet2_case_study.exe -- [n_peers] *)

open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let () =
  let n_peers =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 60
  in
  let params = { Internet2.default_params with n_peers } in
  Printf.printf "generating Internet2-style backbone with %d external peers...\n%!"
    n_peers;
  let net = Internet2.generate params in
  let reg = Registry.build net.Internet2.devices in
  Printf.printf "configuration: %d lines total, %d considered, %d elements\n%!"
    (Registry.total_lines reg)
    (Registry.considered_lines reg)
    (Registry.n_elements reg);
  let state = Stable_state.compute reg in
  Printf.printf "stable state: %d main-RIB entries, %d routing edges\n\n%!"
    (Stable_state.total_main_entries state)
    (List.length (Stable_state.edges state));

  (* ---- the Bagpipe suite ------------------------------------------- *)
  let analyze tests =
    let results = Nettest.run_suite state tests in
    List.iter
      (fun ((t : Nettest.t), (r : Nettest.result)) ->
        Printf.printf "  %-22s %-13s %5d checks  %s\n" t.name
          (Nettest.kind_to_string t.kind)
          r.outcome.Nettest.checks
          (if Nettest.passed r.outcome then "PASS"
           else
             Printf.sprintf "FAIL (%d)" (List.length r.outcome.Nettest.failures)))
      results;
    let report = Netcov.analyze state (Nettest.suite_tested results) in
    let stats = Coverage.line_stats report.Netcov.coverage in
    Printf.printf "  => suite coverage %.1f%% (%d/%d lines), dead code %.1f%%\n\n"
      (Coverage.pct stats)
      (Coverage.covered_lines stats)
      stats.Coverage.considered
      (Netcov.dead_line_pct report);
    report
  in
  Printf.printf "Bagpipe test suite:\n";
  let bagpipe_report = analyze (Bagpipe.suite net) in

  Printf.printf "per-device coverage (Figure 6(b) style):\n%s\n"
    (Lcov.file_table bagpipe_report.Netcov.coverage);

  Printf.printf "coverage by element type:\n";
  List.iter
    (fun (et, (s : Coverage.type_stats)) ->
      if s.elems_total > 0 then
        Printf.printf "  %-22s %4d/%-4d elements, %5d/%-5d lines\n"
          (Element.etype_to_string et) s.elems_covered s.elems_total
          (s.lines_strong + s.lines_weak)
          s.lines_total)
    (Coverage.etype_stats bagpipe_report.Netcov.coverage);

  (* ---- coverage-guided iterations (§6.1.2) ------------------------- *)
  Printf.printf "\ncoverage-guided test development:\n";
  Printf.printf "iteration 1 — the SANITY-IN gap (only block-martians covered):\n";
  ignore (analyze (Bagpipe.suite net @ [ Iterations.sanity_in net ]));
  Printf.printf "iteration 2 — untested peers with disjoint permit lists:\n";
  ignore
    (analyze
       (Bagpipe.suite net
       @ [ Iterations.sanity_in net; Iterations.peer_specific_route net ]));
  Printf.printf "iteration 3 — interface reachability ping mesh:\n";
  let final = analyze (Iterations.improved_suite net) in

  (* show the annotated SANITY-IN policy on one router, Figure 6(a) style *)
  let host = List.hd net.Internet2.routers in
  Printf.printf "annotated %s configuration, SANITY-IN section:\n" host;
  let annotated = Lcov.annotate final.Netcov.coverage host in
  let lines = String.split_on_char '\n' annotated in
  let in_sanity = ref false in
  List.iter
    (fun line ->
      let has s =
        let n = String.length s and m = String.length line in
        let rec go i = i + n <= m && (String.sub line i n = s || go (i + 1)) in
        go 0
      in
      if has "policy-statement SANITY-IN" then in_sanity := true
      else if !in_sanity && has "policy-statement" then in_sanity := false;
      if !in_sanity then print_endline line)
    lines
