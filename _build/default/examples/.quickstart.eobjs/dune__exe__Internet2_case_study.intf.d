examples/internet2_case_study.mli:
