examples/quickstart.ml: Coverage Device Fact Ipv4 Lcov List Netcov Netcov_config Netcov_core Netcov_sim Netcov_types Policy_ast Prefix Printf Registry Stable_state
