examples/custom_test.mli:
