examples/datacenter_audit.mli:
