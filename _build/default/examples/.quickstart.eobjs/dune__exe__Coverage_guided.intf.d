examples/coverage_guided.mli:
