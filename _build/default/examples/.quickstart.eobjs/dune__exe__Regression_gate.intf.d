examples/regression_gate.mli:
