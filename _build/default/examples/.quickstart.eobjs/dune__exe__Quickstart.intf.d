examples/quickstart.mli:
