(* Coverage-guided gap hunting: use NetCov's per-element feedback to
   propose where new tests are needed, mimicking how an engineer would
   consume the tool's output (§6.1.2).

   For each element type we list the top uncovered *live* elements (dead
   configuration is reported separately — data plane tests can never
   reach it), grouped by device, together with the annotated lines.

   Run with: dune exec examples/coverage_guided.exe *)

open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let () =
  let net = Internet2.generate Internet2.default_params in
  let reg = Registry.build net.Internet2.devices in
  let state = Stable_state.compute reg in
  let results = Nettest.run_suite state (Bagpipe.suite net) in
  let report = Netcov.analyze state (Nettest.suite_tested results) in
  let cov = report.Netcov.coverage in
  let dead = report.Netcov.dead.Deadcode.dead in

  let stats = Coverage.line_stats cov in
  Printf.printf "Bagpipe suite coverage: %.1f%%\n\n" (Coverage.pct stats);

  (* 1. systematic gaps: element types with the worst coverage *)
  Printf.printf "testing gaps by element type (live elements only):\n";
  let live_uncovered = Hashtbl.create 16 in
  Registry.iter_elements reg (fun e ->
      if
        Coverage.element_status cov e.Element.id = Coverage.Not_covered
        && not (Element.Id_set.mem e.Element.id dead)
      then begin
        let k = Element.etype_of e in
        let cur = Option.value (Hashtbl.find_opt live_uncovered k) ~default:[] in
        Hashtbl.replace live_uncovered k (e :: cur)
      end);
  List.iter
    (fun et ->
      match Hashtbl.find_opt live_uncovered et with
      | None -> ()
      | Some es ->
          Printf.printf "  %-22s %4d untested live elements, e.g. %s\n"
            (Element.etype_to_string et) (List.length es)
            (String.concat ", "
               (List.filteri (fun i _ -> i < 3)
                  (List.map
                     (fun (e : Element.t) -> e.device ^ ":" ^ Element.name_of e)
                     es))))
    Element.all_etypes;

  (* 2. dead configuration: cannot be exercised by any data plane test *)
  Printf.printf "\ndead configuration (%d lines, %.1f%% of considered):\n"
    (Deadcode.dead_lines reg report.Netcov.dead)
    (Netcov.dead_line_pct report);
  let by_reason = Hashtbl.create 8 in
  List.iter
    (fun (_, reason) ->
      Hashtbl.replace by_reason reason
        (1 + Option.value (Hashtbl.find_opt by_reason reason) ~default:0))
    report.Netcov.dead.Deadcode.details;
  Hashtbl.iter
    (fun reason n ->
      Printf.printf "  %4d x %s\n" n (Deadcode.reason_to_string reason))
    by_reason;

  (* 3. suggest the next test: the uncovered SANITY-IN clauses *)
  Printf.printf "\nsuggested next test (iteration 1): cover these policy clauses:\n";
  Registry.iter_elements reg (fun e ->
      if
        Element.etype_of e = Element.Route_policy_clause
        && Coverage.element_status cov e.Element.id = Coverage.Not_covered
        && String.length (Element.name_of e) >= 10
        && String.sub (Element.name_of e) 0 10 = "SANITY-IN/"
        && e.Element.device = List.hd net.Internet2.routers
      then Printf.printf "  %s:%s\n" e.Element.device (Element.name_of e));

  (* 4. apply the suggestion and confirm the gap is closed *)
  let improved =
    Nettest.run_suite state (Bagpipe.suite net @ [ Iterations.sanity_in net ])
  in
  let report' = Netcov.analyze state (Nettest.suite_tested improved) in
  Printf.printf "\nafter adding SanityIn: %.1f%% (was %.1f%%)\n"
    (Coverage.pct (Coverage.line_stats report'.Netcov.coverage))
    (Coverage.pct stats);
  let still_uncovered =
    let n = ref 0 in
    Registry.iter_elements reg (fun e ->
        if
          Element.etype_of e = Element.Route_policy_clause
          && String.length (Element.name_of e) >= 10
          && String.sub (Element.name_of e) 0 10 = "SANITY-IN/"
          && Coverage.element_status report'.Netcov.coverage e.Element.id
             = Coverage.Not_covered
        then incr n);
    !n
  in
  Printf.printf "uncovered SANITY-IN clauses remaining: %d\n" still_uncovered
