(* CI-style coverage regression gate.

   Scenario: the network evolves (a new external peer is provisioned on
   the Internet2 backbone) while the test suite stays the same. The gate
   recomputes coverage on the evolved network and (1) fails if any
   previously covered element regressed, (2) reports the new, untested
   configuration the change introduced — the "you added config without
   adding tests" signal code-coverage gates give software teams.

   Run with: dune exec examples/regression_gate.exe *)

open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let suite_coverage net =
  let state = Stable_state.compute (Registry.build net.Internet2.devices) in
  let results = Nettest.run_suite state (Iterations.improved_suite net) in
  Netcov.analyze state (Nettest.suite_tested results)

let () =
  (* baseline network and its coverage *)
  let params = { Internet2.default_params with n_peers = 24 } in
  let baseline_net = Internet2.generate params in
  let baseline = suite_coverage baseline_net in
  Printf.printf "baseline: %.1f%% coverage\n"
    (Coverage.pct (Coverage.line_stats baseline.Netcov.coverage));

  (* the "change": two more peers get provisioned *)
  let evolved_net = Internet2.generate { params with n_peers = 26 } in
  let evolved = suite_coverage evolved_net in
  Printf.printf "after change: %.1f%% coverage\n\n"
    (Coverage.pct (Coverage.line_stats evolved.Netcov.coverage));

  (* The registries differ (new elements exist), so the gate compares at
     the element-name level: everything covered before must still be
     covered, and new elements should be covered too. *)
  let covered_names report =
    let reg = Coverage.registry report.Netcov.coverage in
    Registry.fold_elements reg
      (fun acc e ->
        if
          Coverage.element_status report.Netcov.coverage e.Element.id
          <> Coverage.Not_covered
        then (e.Element.device ^ "|" ^ Element.name_of e) :: acc
        else acc)
      []
    |> List.sort_uniq String.compare
  in
  let before = covered_names baseline and after = covered_names evolved in
  let lost = List.filter (fun n -> not (List.mem n after)) before in
  Printf.printf "regression check: %d previously covered element(s) lost\n"
    (List.length lost);
  List.iteri (fun i n -> if i < 5 then Printf.printf "  LOST %s\n" n) lost;

  (* new untested config introduced by the change *)
  let reg = Coverage.registry evolved.Netcov.coverage in
  let baseline_names =
    let breg = Coverage.registry baseline.Netcov.coverage in
    Registry.fold_elements breg
      (fun acc e -> (e.Element.device ^ "|" ^ Element.name_of e) :: acc)
      []
    |> List.sort_uniq String.compare
  in
  let new_untested =
    Registry.fold_elements reg
      (fun acc e ->
        let name = e.Element.device ^ "|" ^ Element.name_of e in
        if
          (not (List.mem name baseline_names))
          && Coverage.element_status evolved.Netcov.coverage e.Element.id
             = Coverage.Not_covered
          && not (Element.Id_set.mem e.Element.id evolved.Netcov.dead.Deadcode.dead)
        then name :: acc
        else acc)
      []
  in
  Printf.printf "\nnew live configuration without coverage: %d element(s)\n"
    (List.length new_untested);
  List.iteri (fun i n -> if i < 8 then Printf.printf "  UNTESTED %s\n" n) new_untested;

  (* same-registry diff: the suite with and without one test *)
  Printf.printf "\nsame-network diff (dropping InterfaceReachability):\n";
  let state = Stable_state.compute (Registry.build baseline_net.Internet2.devices) in
  let full =
    Netcov.analyze state
      (Nettest.suite_tested
         (Nettest.run_suite state (Iterations.improved_suite baseline_net)))
  in
  let reduced =
    Netcov.analyze state
      (Nettest.suite_tested
         (Nettest.run_suite state
            (Bagpipe.suite baseline_net
            @ [ Iterations.sanity_in baseline_net ])))
  in
  let d =
    Coverage_diff.diff ~baseline:full.Netcov.coverage reduced.Netcov.coverage
  in
  Printf.printf "gate passes: %b\n" (Coverage_diff.no_regression d);
  print_string
    (Coverage_diff.summary (Stable_state.registry state) d)
