(* Case study II (paper §6.2): auditing a fat-tree datacenter test suite.

   Builds a k-ary fat-tree (eBGP design, ECMP, aggregation at spines, a
   default route from WAN stubs), runs the three datacenter tests, and
   shows two of the paper's findings: seemingly different tests cover
   almost the same configuration, and testing an aggregate route yields
   mostly *weak* coverage of its many contributors.

   Run with: dune exec examples/datacenter_audit.exe -- [k] *)

open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  Printf.printf "generating fat-tree k=%d (%d routers + %d WAN stubs)...\n%!" k
    (Fattree.router_count k) (k / 2 * (k / 2));
  let ft = Fattree.generate ~k () in
  let reg = Registry.build ft.Fattree.devices in
  let state = Stable_state.compute reg in
  Printf.printf "stable state: %d main-RIB entries\n\n%!"
    (Stable_state.total_main_entries state);

  let results = Nettest.run_suite state (Datacenter.suite ft) in
  let reports =
    List.map
      (fun ((t : Nettest.t), (r : Nettest.result)) ->
        (t, r, Netcov.analyze state r.Nettest.tested))
      results
  in
  Printf.printf "%-20s %8s %10s %10s %10s %8s\n" "test" "checks" "config-cov"
    "strong" "weak" "dp-cov";
  List.iter
    (fun ((t : Nettest.t), (r : Nettest.result), report) ->
      let s = Coverage.line_stats report.Netcov.coverage in
      let f n = 100. *. float_of_int n /. float_of_int (max 1 s.Coverage.considered) in
      let dp = Netcov_dpcov.Dpcov.of_tested state r.Nettest.tested in
      Printf.printf "%-20s %8d %9.1f%% %9.1f%% %9.1f%% %7.1f%%\n" t.name
        r.outcome.Nettest.checks (Coverage.pct s)
        (f s.Coverage.strong_lines)
        (f s.Coverage.weak_lines)
        (Netcov_dpcov.Dpcov.pct dp))
    reports;

  (* redundancy: pairwise overlap of covered element sets *)
  Printf.printf "\npairwise overlap of covered configuration elements:\n";
  let sets =
    List.map
      (fun ((t : Nettest.t), _, report) ->
        (t.name, Coverage.covered_elements report.Netcov.coverage))
      reports
  in
  List.iter
    (fun (n1, s1) ->
      List.iter
        (fun (n2, s2) ->
          if n1 < n2 then
            let inter = Element.Id_set.cardinal (Element.Id_set.inter s1 s2) in
            let union = Element.Id_set.cardinal (Element.Id_set.union s1 s2) in
            Printf.printf "  %-20s vs %-20s jaccard %.2f\n" n1 n2
              (float_of_int inter /. float_of_int (max 1 union)))
        sets)
    sets;

  (* combined suite and the uncovered remainder *)
  let combined = Netcov.analyze state (Nettest.suite_tested results) in
  let stats = Coverage.line_stats combined.Netcov.coverage in
  Printf.printf "\ncombined suite: %.1f%% coverage\n" (Coverage.pct stats);
  Printf.printf "uncovered elements by type (testing gaps):\n";
  List.iter
    (fun (et, (s : Coverage.type_stats)) ->
      let uncovered = s.elems_total - s.elems_covered in
      if uncovered > 0 then
        Printf.printf "  %-22s %d uncovered of %d\n" (Element.etype_to_string et)
          uncovered s.elems_total)
    (Coverage.etype_stats combined.Netcov.coverage);
  Printf.printf
    "\n(the paper's observation: most uncovered lines are host-facing leaf \
     interfaces — add tests that target them)\n"
