#!/usr/bin/env bash
# Fail on broken relative links in the markdown docs.
#
# Scans README.md, DESIGN.md, docs/*.md and the test-corpus READMEs
# for inline markdown links [text](target) and checks that every
# relative target resolves to an existing file or directory (relative
# to the linking file). External
# links (http/https/mailto) and pure-anchor links (#section) are
# skipped; a "path#anchor" target is checked for the path part only —
# anchor names are not validated.
#
# Usage: scripts/check_doc_links.sh   (from the repository root)
set -u

fail=0
checked=0

for doc in README.md DESIGN.md docs/*.md test/corpus-*/README.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # one "lineno:target" per inline link; grep exits 1 on no match
  links=$(grep -no -E '\]\([^)]+\)' "$doc" | sed -E 's/\]\(([^)]+)\)/\1/') || true
  while IFS=: read -r lineno target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "$doc:$lineno: broken link: $target" >&2
      fail=1
    fi
  done <<EOF
$links
EOF
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED" >&2
  exit 1
fi
echo "doc link check OK ($checked relative links resolved)"
