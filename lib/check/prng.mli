(** Deterministic splittable PRNG (SplitMix64) for the property harness.

    Every stream is created from an explicit integer seed — there is no
    [self_init] — so any failure the harness reports can be replayed
    exactly by re-running with the printed seed. [split] derives an
    independent child stream, which is what lets generators regenerate
    the "rest" of a composite value with identical randomness while a
    prefix of it is being shrunk. *)

type t

(** [make seed] starts a stream. Equal seeds yield equal streams on
    every platform (the core is pure 64-bit integer arithmetic). *)
val make : int -> t

(** [copy t] snapshots the stream: the copy replays exactly the draws
    the original would have produced from this point. *)
val copy : t -> t

(** [split t] advances [t] once and returns an independent stream whose
    seed is the drawn value. *)
val split : t -> t

(** Raw next 64-bit draw (advances the stream). *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound); raises [Invalid_argument]
    on a non-positive bound. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi] inclusive; raises
    [Invalid_argument] when [lo > hi]. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [mix seed i] deterministically derives the per-iteration seed [i]
    of a run rooted at [seed]; printed on failures so one iteration can
    be replayed alone. *)
val mix : int -> int -> int
