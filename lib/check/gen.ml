type 'a tree = Tree of 'a * 'a tree Seq.t
type 'a t = Prng.t -> 'a tree

let root (Tree (x, _)) = x
let shrinks (Tree (_, s)) = s

let rec map_tree f (Tree (x, s)) = Tree (f x, Seq.map (map_tree f) s)

let return x : 'a t = fun _ -> Tree (x, Seq.empty)
let map f (g : 'a t) : 'b t = fun rng -> map_tree f (g rng)

(* The continuation runs on a snapshot of the stream, so when a shrink
   of [a] re-runs it, the suffix of the composite value is regenerated
   from identical randomness — shrinking one field never perturbs the
   others. *)
let bind (g : 'a t) (f : 'a -> 'b t) : 'b t =
 fun rng ->
  let ra = Prng.split rng in
  let rb = Prng.split rng in
  let rec go (Tree (a, sa)) =
    let (Tree (b, sb)) = f a (Prng.copy rb) in
    Tree (b, Seq.append (Seq.map go sa) sb)
  in
  go (g ra)

let map2 f ga gb = bind ga (fun a -> map (f a) gb)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) g f = map f g
end

let generate ~seed (g : 'a t) = root (g (Prng.make seed))

(* Shrink candidates for an integer, most aggressive first: the origin
   itself, then values halving the distance back towards [x]. *)
let towards origin x : int Seq.t =
  if x = origin then Seq.empty
  else
    let rec halves diff () =
      if diff = 0 then Seq.Nil else Seq.Cons (x - diff, halves (diff / 2))
    in
    halves (x - origin)

let rec int_tree ~origin x =
  Tree (x, Seq.map (int_tree ~origin) (towards origin x))

let int_range ?origin lo hi : int t =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  let origin = min hi (max lo (Option.value origin ~default:lo)) in
  fun rng -> int_tree ~origin (Prng.range rng lo hi)

let int_bound n = int_range 0 n
let bool = map (fun n -> n = 1) (int_bound 1)

let oneofl = function
  | [] -> invalid_arg "Gen.oneofl: empty list"
  | xs -> map (List.nth xs) (int_range 0 (List.length xs - 1))

let oneof = function
  | [] -> invalid_arg "Gen.oneof: empty list"
  | gs -> bind (int_range 0 (List.length gs - 1)) (List.nth gs)

let opt g = bind bool (function false -> return None | true -> map Option.some g)
let pair ga gb = map2 (fun a b -> (a, b)) ga gb

(* Run generators left to right against one stream (List.map's
   evaluation order is unspecified; this one is not). *)
let run_all gs rng =
  List.rev (List.fold_left (fun acc g -> g rng :: acc) [] gs)

(* Combine element trees into a list tree. [drop] additionally offers
   removal of single elements (front first), shrinking the length. *)
let rec tree_of_list ~drop ts =
  let n = List.length ts in
  let drops =
    if not drop then Seq.empty
    else
      Seq.init n (fun i ->
          tree_of_list ~drop (List.filteri (fun j _ -> j <> i) ts))
  in
  let elems =
    Seq.concat
      (Seq.init n (fun i ->
           Seq.map
             (fun ti' ->
               tree_of_list ~drop
                 (List.mapi (fun j t -> if j = i then ti' else t) ts))
             (shrinks (List.nth ts i))))
  in
  Tree (List.map root ts, Seq.append drops elems)

let list_repeat n g : 'a list t =
 fun rng -> tree_of_list ~drop:false (run_all (List.init n (fun _ -> g)) rng)

let flatten_l gs : 'a list t = fun rng -> tree_of_list ~drop:false (run_all gs rng)

let list_size size g =
  bind size (fun n rng ->
      tree_of_list ~drop:true (run_all (List.init n (fun _ -> g)) rng))

let sublist xs =
  map
    (fun flags ->
      List.filter_map
        (fun (x, keep) -> if keep then Some x else None)
        (List.combine xs flags))
    (list_repeat (List.length xs) bool)

let no_shrink g : 'a t = fun rng -> Tree (root (g rng), Seq.empty)
