type reason = Falsified of string | Raised of string

type failure = {
  seed : int;
  iteration : int;
  shrink_steps : int;
  original : string;
  minimal : string;
  reason : reason;
}

type outcome = { name : string; iters : int; failure : failure option }

let passed o = o.failure = None

let reason_to_string = function
  | Falsified msg -> msg
  | Raised msg -> "exception: " ^ msg

let report o =
  match o.failure with
  | None -> Printf.sprintf "%s: ok (%d iterations)" o.name o.iters
  | Some f ->
      Printf.sprintf
        "%s: FAILED at iteration %d (reproduce with seed %d, iters 1)\n\
        \  reason: %s\n\
        \  minimal counterexample (%d shrink steps):\n\
         %s\n\
        \  original counterexample:\n\
         %s"
        o.name f.iteration f.seed
        (reason_to_string f.reason)
        f.shrink_steps
        (String.concat "\n"
           (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' f.minimal)))
        (String.concat "\n"
           (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' f.original)))

(* [None] = property holds. *)
let eval prop x =
  match prop x with
  | Ok () -> None
  | Error msg -> Some (Falsified msg)
  | exception e -> Some (Raised (Printexc.to_string e))

(* Greedy descent: take the first shrink candidate that still fails,
   repeat from there. [budget] bounds total candidate evaluations so a
   slow property with a deep tree cannot hang the run. *)
let shrink ~budget prop tree reason0 =
  let steps = ref 0 in
  let budget = ref budget in
  let rec descend tree reason =
    let rec first_failing seq =
      if !budget <= 0 then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (cand, rest) -> (
            decr budget;
            match eval prop (Gen.root cand) with
            | Some r -> Some (cand, r)
            | None -> first_failing rest)
    in
    match first_failing (Gen.shrinks tree) with
    | Some (cand, r) ->
        incr steps;
        descend cand r
    | None -> (Gen.root tree, reason, !steps)
  in
  descend tree reason0

let run ~name ~seed ~iters ?(max_shrinks = 1000) ~print gen prop =
  let rec go i =
    if i >= iters then { name; iters; failure = None }
    else
      (* Iteration 0 draws from the raw seed, so re-running with
         [~seed:failure.seed ~iters:1] regenerates the failing value
         exactly; later iterations derive their stream via [mix]. *)
      let iter_seed = if i = 0 then seed else Prng.mix seed i in
      let tree = gen (Prng.make iter_seed) in
      match eval prop (Gen.root tree) with
      | None -> go (i + 1)
      | Some reason0 ->
          let original = print (Gen.root tree) in
          let minimal, reason, shrink_steps =
            shrink ~budget:max_shrinks prop tree reason0
          in
          {
            name;
            iters;
            failure =
              Some
                {
                  seed = iter_seed;
                  iteration = i;
                  shrink_steps;
                  original;
                  minimal = print minimal;
                  reason;
                };
          }
  in
  go 0

let assert_ok o = if not (passed o) then failwith (report o)
