open Netcov_types
open Netcov_config
open Gen.Syntax

(* ------------------------------------------------------------------ *)
(* Single round-trippable devices (the emit→parse oracle input space)  *)
(* ------------------------------------------------------------------ *)

let name_gen prefix =
  Gen.map (fun n -> Printf.sprintf "%s%d" prefix n) (Gen.int_bound 999)

let distinct_names prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let ip_gen =
  Gen.map
    (fun n -> Ipv4.of_int (0x0A000000 lor (n land 0xFFFFFF)))
    (Gen.int_bound 0xFFFFFF)

let prefix_gen =
  Gen.map2
    (fun a len -> Prefix.make (Ipv4.of_int a) len)
    (Gen.int_bound 0xFFFFFFF) (Gen.int_range 8 32)

let community_gen =
  Gen.map2 Community.make (Gen.int_bound 65535) (Gen.int_bound 65535)

let regex_gen =
  Gen.oneof
    [
      Gen.map (fun n -> As_regex.compile (Printf.sprintf "_%d_" n)) (Gen.int_bound 65535);
      Gen.map (fun n -> As_regex.compile (Printf.sprintf "^%d" n)) (Gen.int_bound 65535);
      Gen.map2
        (fun a b -> As_regex.compile (Printf.sprintf "(%d|%d)$" a b))
        (Gen.int_bound 65535) (Gen.int_bound 65535);
    ]

let interface_gen idx =
  let* has_addr = Gen.bool in
  let* addr = ip_gen in
  let* len = Gen.int_range 8 32 in
  let* described = Gen.bool in
  let* igp = Gen.bool in
  let* metric = Gen.int_range 1 100 in
  Gen.return
    {
      Device.if_name = Printf.sprintf "eth%d" idx;
      address = (if has_addr then Some (addr, len) else None);
      description = (if described then Some (Printf.sprintf "link-%d" idx) else None);
      in_acl = None;
      out_acl = None;
      igp_enabled = igp && has_addr;
      igp_metric = (if igp && has_addr then metric else 10);
    }

let prefix_list_entry_gen =
  let* p = prefix_gen in
  let* ge = Gen.opt (Gen.int_range (Prefix.len p) 32) in
  let* le = Gen.opt (Gen.int_range (Prefix.len p) 32) in
  Gen.return { Device.ple_prefix = p; ple_ge = ge; ple_le = le }

let match_gen =
  Gen.oneof
    [
      Gen.map (fun n -> Policy_ast.Match_prefix_list ("PL" ^ string_of_int n)) (Gen.int_bound 4);
      Gen.map2
        (fun p mode -> Policy_ast.Match_prefix (p, mode))
        prefix_gen
        (Gen.oneof
           [
             Gen.return Policy_ast.Exact;
             Gen.return Policy_ast.Orlonger;
             Gen.map (fun n -> Policy_ast.Upto n) (Gen.int_range 0 32);
           ]);
      Gen.map (fun n -> Policy_ast.Match_community_list ("CL" ^ string_of_int n)) (Gen.int_bound 3);
      Gen.map (fun c -> Policy_ast.Match_community c) community_gen;
      Gen.map (fun n -> Policy_ast.Match_as_path_list ("AL" ^ string_of_int n)) (Gen.int_bound 3);
      Gen.oneofl
        [
          Policy_ast.Match_protocol Route.Connected;
          Policy_ast.Match_protocol Route.Static;
          Policy_ast.Match_protocol Route.Bgp;
        ];
      Gen.map (fun ip -> Policy_ast.Match_next_hop ip) ip_gen;
    ]

let modifier_gen =
  Gen.oneof
    [
      Gen.map (fun n -> Policy_ast.Set_local_pref n) (Gen.int_bound 400);
      Gen.map (fun n -> Policy_ast.Set_med n) (Gen.int_bound 1000);
      Gen.map (fun c -> Policy_ast.Add_community c) community_gen;
      Gen.map (fun c -> Policy_ast.Remove_community c) community_gen;
      Gen.map (fun n -> Policy_ast.Delete_community_in ("CL" ^ string_of_int n)) (Gen.int_bound 3);
      Gen.map2
        (fun asn times -> Policy_ast.Prepend_as (asn, times))
        (Gen.int_range 1 65535) (Gen.int_range 1 4);
    ]

(* IOS-normal-form term — modifiers then exactly one terminator — so
   the same AST round-trips through both concrete syntaxes. *)
let term_gen idx =
  let* matches = Gen.list_size (Gen.int_bound 3) match_gen in
  let* mods = Gen.list_size (Gen.int_bound 3) modifier_gen in
  let* terminator =
    Gen.oneofl [ Policy_ast.Accept; Policy_ast.Reject; Policy_ast.Next_term ]
  in
  Gen.return
    {
      Policy_ast.term_name = string_of_int ((idx + 1) * 10);
      matches;
      actions = mods @ [ terminator ];
    }

let policy_gen name =
  let* n_terms = Gen.int_range 1 4 in
  let* terms = Gen.flatten_l (List.init n_terms term_gen) in
  Gen.return { Policy_ast.pol_name = name; terms }

let neighbor_gen ~groups idx =
  let* group = if groups = [] then Gen.return None else Gen.opt (Gen.oneofl groups) in
  let* remote_as = Gen.int_range 1 65535 in
  let* import = Gen.list_size (Gen.int_bound 2) (name_gen "POLIN") in
  let* export = Gen.list_size (Gen.int_bound 2) (name_gen "POLOUT") in
  let* local = Gen.opt ip_gen in
  let* nhs = Gen.bool in
  let* described = Gen.bool in
  Gen.return
    {
      (* distinct, deterministic neighbor addresses *)
      Device.nb_ip = Ipv4.of_octets 172 20 (idx / 250) (idx mod 250);
      nb_remote_as = remote_as;
      nb_group = group;
      nb_import = import;
      nb_export = export;
      nb_local_addr = local;
      nb_next_hop_self = nhs;
      nb_rr_client = false;
      nb_description = (if described then Some (Printf.sprintf "peer-%d" idx) else None);
    }

let group_gen name =
  let* remote_as = Gen.opt (Gen.int_range 1 65535) in
  let* import = Gen.list_size (Gen.int_bound 2) (name_gen "GIN") in
  let* export = Gen.list_size (Gen.int_bound 2) (name_gen "GOUT") in
  let* lp = Gen.opt (Gen.int_bound 400) in
  Gen.return
    {
      Device.pg_name = name;
      pg_remote_as = remote_as;
      pg_import = import;
      pg_export = export;
      pg_local_pref = lp;
      pg_description = None;
    }

let bgp_gen =
  let* local_as = Gen.int_range 1 65535 in
  let* router_id = ip_gen in
  let* nets = Gen.list_size (Gen.int_bound 3) prefix_gen in
  let networks = List.sort_uniq Prefix.compare nets in
  let* aggs = Gen.list_size (Gen.int_bound 2) prefix_gen in
  let* summary = Gen.bool in
  let aggregates =
    List.sort_uniq Prefix.compare aggs
    |> List.map (fun p -> { Device.ag_prefix = p; ag_summary_only = summary })
  in
  let* redistribute_static = Gen.bool in
  let* rd_policy = Gen.opt (name_gen "RD") in
  let redistributes =
    if redistribute_static then [ { Device.rd_from = Route.Static; rd_policy } ]
    else []
  in
  let* n_groups = Gen.int_bound 2 in
  let group_names = distinct_names "PG" n_groups in
  let* groups = Gen.flatten_l (List.map group_gen group_names) in
  let* n_neighbors = Gen.int_bound 4 in
  let* neighbors =
    Gen.flatten_l (List.init n_neighbors (neighbor_gen ~groups:group_names))
  in
  let* multipath = Gen.int_range 1 8 in
  Gen.return
    {
      Device.local_as;
      router_id;
      networks;
      aggregates;
      redistributes;
      groups;
      neighbors;
      multipath;
    }

let device =
  let* host = name_gen "dev" in
  let* n_ifaces = Gen.int_bound 5 in
  let* interfaces = Gen.flatten_l (List.init n_ifaces interface_gen) in
  let* static_prefixes = Gen.list_size (Gen.int_bound 3) prefix_gen in
  let* static_nh = ip_gen in
  let static_routes =
    List.sort_uniq Prefix.compare static_prefixes
    |> List.map (fun p -> { Device.st_prefix = p; st_next_hop = static_nh })
  in
  let* n_acls = Gen.int_bound 2 in
  let* acls =
    Gen.flatten_l
      (List.init n_acls (fun i ->
           let* rules =
             Gen.list_size (Gen.int_range 1 3)
               (let* permit = Gen.bool in
                let* p = prefix_gen in
                Gen.return { Device.permit; rule_prefix = p })
           in
           Gen.return { Device.acl_name = Printf.sprintf "ACL%d" i; rules }))
  in
  let* n_pls = Gen.int_bound 3 in
  let* prefix_lists =
    Gen.flatten_l
      (List.init n_pls (fun i ->
           let* entries = Gen.list_size (Gen.int_range 1 4) prefix_list_entry_gen in
           Gen.return { Device.pl_name = Printf.sprintf "PL%d" i; pl_entries = entries }))
  in
  let* n_cls = Gen.int_bound 2 in
  let* community_lists =
    Gen.flatten_l
      (List.init n_cls (fun i ->
           let* members = Gen.list_size (Gen.int_range 1 3) community_gen in
           Gen.return
             {
               Device.cl_name = Printf.sprintf "CL%d" i;
               cl_members = List.sort_uniq Community.compare members;
             }))
  in
  let* n_als = Gen.int_bound 2 in
  let* as_path_lists =
    Gen.flatten_l
      (List.init n_als (fun i ->
           let* patterns = Gen.list_size (Gen.int_range 1 3) regex_gen in
           Gen.return { Device.al_name = Printf.sprintf "AL%d" i; al_patterns = patterns }))
  in
  let* n_policies = Gen.int_bound 3 in
  let* policies = Gen.flatten_l (List.map policy_gen (distinct_names "RM" n_policies)) in
  let* bgp = Gen.opt bgp_gen in
  let* syntax = Gen.oneofl [ Device.Junos; Device.Ios ] in
  Gen.return
    (Device.make ~syntax ~interfaces ~static_routes ~acls ~prefix_lists
       ~community_lists ~as_path_lists ~policies ?bgp host)

(* ------------------------------------------------------------------ *)
(* Tree eBGP networks + symbolic test suites                           *)
(* ------------------------------------------------------------------ *)

type network = {
  n_routers : int;
  parent : int array;
  multipath : int;
  policied : int list;
}

(* Index spills into the second octet past 255 so mega-networks
   (Netgen.balanced with ~1000 routers) keep distinct addresses; for
   [i < 256] the values are what they always were. *)
let lan i = Prefix.make (Ipv4.of_octets 10 (64 + (i / 256)) (i mod 256) 0) 24
let host i = Printf.sprintf "r%d" i

type test_spec = { probes : (int * int) list; cp_picks : int list }
type scenario = { net : network; tests : test_spec list }

let network =
  let* n_routers = Gen.int_range 2 7 in
  let* parents =
    Gen.flatten_l (List.init (n_routers - 1) (fun i -> Gen.int_bound i))
  in
  let parent = Array.of_list (0 :: parents) in
  let* multipath = Gen.oneofl [ 1; 2 ] in
  let* policied = Gen.sublist (List.init (n_routers - 1) (fun i -> i + 1)) in
  Gen.return { n_routers; parent; multipath; policied }

let test_spec n_routers =
  let idx = Gen.int_bound (n_routers - 1) in
  let* probes = Gen.list_size (Gen.int_bound 3) (Gen.pair idx idx) in
  let* cp_picks = Gen.list_size (Gen.int_bound 3) (Gen.int_bound 9999) in
  Gen.return { probes; cp_picks }

let scenario =
  let* net = network in
  let* tests = Gen.list_size (Gen.int_range 1 4) (test_spec net.n_routers) in
  Gen.return { net; tests }

(* The uplink import policy of a policied router: one prefix-list term
   (accept with a local-pref bump), one direct-prefix reject term, and
   a catch-all accept — enough structure to give the IFG policy-clause,
   prefix-list and disjunction nodes to label. *)
let uplink_policy i n_routers =
  let target = lan ((i * 3 + 1) mod n_routers) in
  let rejected = lan ((i * 5 + 2) mod n_routers) in
  {
    Policy_ast.pol_name = Printf.sprintf "IMP%d" i;
    terms =
      [
        {
          term_name = "10";
          matches = [ Policy_ast.Match_prefix_list "LANS" ];
          actions = [ Policy_ast.Set_local_pref (110 + i); Policy_ast.Accept ];
        };
        {
          term_name = "20";
          matches = [ Policy_ast.Match_prefix (target, Policy_ast.Orlonger) ];
          actions = [ Policy_ast.Set_med (10 * i); Policy_ast.Accept ];
        };
        {
          term_name = "30";
          matches = [ Policy_ast.Match_prefix (rejected, Policy_ast.Exact) ];
          actions = [ Policy_ast.Reject ];
        };
        { term_name = "99"; matches = []; actions = [ Policy_ast.Accept ] };
      ];
  }

(* A deterministic complete [fanout]-ary tree: the mega-workload shape
   behind the netgen-1000 bench rows. No randomness — every [i >= 1]
   hangs off [(i - 1) / fanout], and every [policy_every]-th router
   carries the uplink policy chain. *)
let balanced ?(multipath = 1) ?(policy_every = 7) ~fanout n =
  if n < 1 then invalid_arg "Netgen.balanced: need at least one router";
  if fanout < 1 then invalid_arg "Netgen.balanced: fanout must be >= 1";
  if policy_every < 1 then invalid_arg "Netgen.balanced: policy_every must be >= 1";
  {
    n_routers = n;
    parent = Array.init n (fun i -> if i = 0 then 0 else (i - 1) / fanout);
    multipath;
    policied =
      List.filter
        (fun i -> i > 0 && i mod policy_every = 1)
        (List.init n Fun.id);
  }

(* Deterministic probe striding by coprime steps: spreads sources and
   destinations over the whole tree without randomness, so bench runs
   are reproducible and coverage is comparable across schedulers. *)
let balanced_specs ?(n_tests = 32) ?(probes_per_test = 8) (net : network) =
  let n = net.n_routers in
  List.init n_tests (fun t ->
      {
        probes =
          List.init probes_per_test (fun p ->
              ((t * 37 + p * 11) mod n, (t * 53 + p * 29 + 1) mod n));
        cp_picks = List.init 4 (fun p -> t * 97 + p * 13);
      })

let devices_of (s : network) =
  (* link i<->parent(i) gets subnet 192.168.i.0/30, spilling into the
     second octet past 255 (mega-networks) *)
  let link_subnet i = Ipv4.of_octets 192 (168 + (i / 256)) (i mod 256) 0 in
  let asn i = 65001 + i in
  List.init s.n_routers (fun i ->
      let up_iface =
        if i = 0 then []
        else
          [
            Device.interface
              ~address:(Ipv4.succ (link_subnet i), 30)
              (Printf.sprintf "up%d" i);
          ]
      in
      let children =
        List.filter
          (fun j -> j > 0 && s.parent.(j) = i)
          (List.init s.n_routers Fun.id)
      in
      let down_ifaces =
        List.map
          (fun j ->
            Device.interface
              ~address:(Ipv4.add (link_subnet j) 2, 30)
              (Printf.sprintf "down%d" j))
          children
      in
      let lan_iface =
        Device.interface ~address:(Prefix.first_host (lan i), 24) "lan0"
      in
      let policied = List.mem i s.policied in
      let neighbor ?(import = []) ip remote_as =
        {
          Device.nb_ip = ip;
          nb_remote_as = remote_as;
          nb_group = None;
          nb_import = import;
          nb_export = [];
          nb_local_addr = None;
          nb_next_hop_self = false;
          nb_rr_client = false;
          nb_description = None;
        }
      in
      let up_nb =
        if i = 0 then []
        else
          [
            neighbor
              ~import:(if policied then [ Printf.sprintf "IMP%d" i ] else [])
              (Ipv4.add (link_subnet i) 2)
              (asn s.parent.(i));
          ]
      in
      let down_nbs =
        List.map (fun j -> neighbor (Ipv4.succ (link_subnet j)) (asn j)) children
      in
      let policies = if policied then [ uplink_policy i s.n_routers ] else [] in
      let prefix_lists =
        if policied then
          [
            {
              Device.pl_name = "LANS";
              pl_entries =
                [
                  {
                    (* /10 covers the spilled LAN octets of
                       mega-networks; matches exactly the same routes
                       as the old /16 on small ones *)
                    Device.ple_prefix = Prefix.make (Ipv4.of_octets 10 64 0 0) 10;
                    ple_ge = Some 24;
                    ple_le = Some 24;
                  };
                ];
            };
          ]
        else []
      in
      Device.make
        ~interfaces:((lan_iface :: up_iface) @ down_ifaces)
        ~policies ~prefix_lists
        ~bgp:
          {
            Device.local_as = asn i;
            router_id = Prefix.first_host (lan i);
            networks = [ lan i ];
            aggregates = [];
            redistributes = [];
            groups = [];
            neighbors = up_nb @ down_nbs;
            multipath = s.multipath;
          }
        (host i))

let tested_of state (spec : test_spec) =
  let open Netcov_core in
  let reg = Netcov_sim.Stable_state.registry state in
  let n_elems = Registry.n_elements reg in
  let dp_facts =
    List.concat_map
      (fun (ri, li) ->
        List.map
          (fun entry -> Fact.F_main_rib { host = host ri; entry })
          (Netcov_sim.Stable_state.main_lookup state (host ri) (lan li)))
      spec.probes
  in
  let cp_elements =
    if n_elems = 0 then []
    else List.sort_uniq Int.compare (List.map (fun p -> p mod n_elems) spec.cp_picks)
  in
  { Netcov.dp_facts; cp_elements }

let print_network s =
  Printf.sprintf "n=%d parents=[%s] multipath=%d policied=[%s]" s.n_routers
    (String.concat ";" (Array.to_list (Array.map string_of_int s.parent)))
    s.multipath
    (String.concat ";" (List.map string_of_int s.policied))

let print_scenario sc =
  let test t =
    Printf.sprintf "probes=[%s] cp=[%s]"
      (String.concat ";"
         (List.map (fun (r, l) -> Printf.sprintf "r%d@lan%d" r l) t.probes))
      (String.concat ";" (List.map string_of_int t.cp_picks))
  in
  Printf.sprintf "%s\ntests:\n%s" (print_network sc.net)
    (String.concat "\n" (List.map (fun t -> "  " ^ test t) sc.tests))
