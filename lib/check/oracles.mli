(** The differential-oracle suite: each oracle is a named property that
    hunts a divergence between two implementations that must agree —
    emit vs parse, sequential vs parallel, cache on vs off, BDD vs
    truth table, per-test merge vs union analysis.

    All oracles run on {!Netgen} inputs under {!Check}, so a red oracle
    prints a shrunk counterexample and a reproduction seed. The CLI
    [netcov_cli fuzz] and the [@fuzz] dune alias both call {!run_all};
    [test/test_prop.ml] pins each oracle at a fixed seed. *)

type t = {
  name : string;
  describe : string;
  run : seed:int -> iters:int -> Check.outcome;
}

(** The eight oracles, in documentation order: ["roundtrip"],
    ["parallel-determinism"], ["cache-equivalence"],
    ["bdd-truth-table"], ["monotonicity-merge"],
    ["intern-reference"], ["fault-isolation"],
    ["incremental-scratch"]. *)
val all : t list

val find : string -> t option

(** Run every oracle (or only [names]) at [seed] with [iters]
    iterations each, printing one report per oracle to [out]; [true]
    iff all passed. *)
val run_all :
  ?out:out_channel -> ?names:string list -> seed:int -> iters:int -> unit -> bool
