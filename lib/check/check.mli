(** Property runner: iterate a generator, evaluate a property, and on
    failure walk the shrink tree to a minimal counterexample.

    Every failure report carries the {e reproduction seed} of the
    failing iteration: [run ~seed:failure.seed ~iters:1 ...] replays
    exactly that counterexample (before shrinking), independent of how
    many iterations the original run needed to reach it. *)

(** Why a property did not hold for one value. *)
type reason =
  | Falsified of string  (** property returned [Error msg] *)
  | Raised of string  (** property raised; the message includes the exn *)

type failure = {
  seed : int;  (** per-iteration reproduction seed *)
  iteration : int;  (** 0-based index within the run *)
  shrink_steps : int;  (** accepted shrinks from original to minimal *)
  original : string;  (** printed value as first generated *)
  minimal : string;  (** printed value after shrinking *)
  reason : reason;  (** verdict on the {e minimal} value *)
}

type outcome = { name : string; iters : int; failure : failure option }

val passed : outcome -> bool

(** Multi-line human report: one line for a pass; name, seeds, both
    counterexamples and the reason for a failure. *)
val report : outcome -> string

(** [run ~name ~seed ~iters ~print gen prop] draws [iters] values and
    stops at the first failure, shrinking it to a local minimum (at
    most [max_shrinks] candidate evaluations, default 1000).

    The property either returns [Ok ()], returns [Error msg], or
    raises — exceptions count as failures, so Alcotest-style check
    functions can be used directly inside [prop]. *)
val run :
  name:string ->
  seed:int ->
  iters:int ->
  ?max_shrinks:int ->
  print:('a -> string) ->
  'a Gen.t ->
  ('a -> (unit, string) result) ->
  outcome

(** [assert_ok] raises [Failure] with the full report when the outcome
    is a failure — the bridge to Alcotest test cases. *)
val assert_ok : outcome -> unit
