open Netcov_config
open Netcov_core
open Gen.Syntax
module Pool = Netcov_parallel.Pool
module Stable_state = Netcov_sim.Stable_state

type t = {
  name : string;
  describe : string;
  run : seed:int -> iters:int -> Check.outcome;
}

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* 1. emit → parse roundtrip preserves the element registry            *)
(* ------------------------------------------------------------------ *)

(* Everything coverage accounting reads off a registry: every element's
   type, name and owned line numbers, plus the line totals. *)
let registry_fingerprint reg host =
  let elems =
    List.map
      (fun id ->
        let e = Registry.element reg id in
        Printf.sprintf "%s %s [%s]"
          (Element.etype_to_string (Element.etype_of e))
          (Element.name_of e)
          (String.concat "," (List.map string_of_int e.Element.lines)))
      (Registry.elements_of_device reg host)
  in
  Printf.sprintf "lines=%d considered=%d\n%s" (Registry.total_lines reg)
    (Registry.considered_lines reg)
    (String.concat "\n" elems)

let emit_of (d : Device.t) =
  match d.Device.syntax with
  | Device.Junos -> Emit_junos.to_string d
  | Device.Ios -> Emit_ios.to_string d

let parse_of (d : Device.t) text =
  match d.Device.syntax with
  | Device.Junos ->
      Result.map_error Parse_junos.error_to_string (Parse_junos.parse text)
  | Device.Ios ->
      Result.map_error Parse_ios.error_to_string (Parse_ios.parse text)

let print_device d =
  Printf.sprintf "syntax=%s\n%s"
    (match d.Device.syntax with Device.Junos -> "junos" | Device.Ios -> "ios")
    (emit_of d)

let roundtrip_prop (d : Device.t) =
  let text = emit_of d in
  match parse_of d text with
  | Error msg -> fail "emitted config does not parse back: %s" msg
  | Ok d' ->
      let text' = emit_of { d' with Device.syntax = d.Device.syntax } in
      if text <> text' then
        fail "emit is not idempotent across parse:\n--- first\n%s\n--- second\n%s"
          text text'
      else
        let fp = registry_fingerprint (Registry.build [ d ]) d.Device.hostname in
        let fp' =
          registry_fingerprint
            (Registry.build [ { d' with Device.syntax = d.Device.syntax } ])
            d'.Device.hostname
        in
        if d.Device.hostname <> d'.Device.hostname then
          fail "hostname changed: %s -> %s" d.Device.hostname d'.Device.hostname
        else if fp <> fp' then
          fail "element registry diverged across roundtrip:\n--- original\n%s\n--- reparsed\n%s"
            fp fp'
        else Ok ()

let roundtrip_oracle =
  {
    name = "roundtrip";
    describe = "emit -> parse preserves the element registry and line spans";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"roundtrip" ~seed ~iters ~print:print_device
          Netgen.device roundtrip_prop);
  }

(* ------------------------------------------------------------------ *)
(* Shared scaffolding for the pipeline oracles                         *)
(* ------------------------------------------------------------------ *)

let state_of (net : Netgen.network) =
  Stable_state.compute (Registry.build (Netgen.devices_of net))

let testeds_of state (sc : Netgen.scenario) =
  List.map (Netgen.tested_of state) sc.Netgen.tests

(* Reports must agree byte-for-byte on everything except wall-clock
   timing, which is never deterministic; the fingerprint is the full
   coverage JSON (statuses of every element, all aggregations). *)
let coverage_fp (r : Netcov.report) = Json_export.coverage r.Netcov.coverage

let first_diff la lb =
  let rec go i = function
    | [], [] -> None
    | a :: _, b :: _ when a <> b -> Some i
    | _ :: ta, _ :: tb -> go (i + 1) (ta, tb)
    | _ -> Some i
  in
  go 0 (la, lb)

(* ------------------------------------------------------------------ *)
(* 2. sequential pool vs multi-domain pool                             *)
(* ------------------------------------------------------------------ *)

let parallel_prop pool (sc : Netgen.scenario) =
  let state = state_of sc.Netgen.net in
  let testeds = testeds_of state sc in
  let seq = Netcov.analyze_suite ~pool:Pool.sequential state testeds in
  let par = Netcov.analyze_suite ~pool state testeds in
  let fps_seq = List.map coverage_fp seq and fps_par = List.map coverage_fp par in
  match first_diff fps_seq fps_par with
  | Some i -> fail "per-test report %d differs between 1 and %d domains" i
               (Pool.domains pool)
  | None ->
      let m_seq = coverage_fp (Netcov.merge_reports seq) in
      let m_par = coverage_fp (Netcov.merge_reports par) in
      if m_seq <> m_par then fail "merged suite report differs across domain counts"
      else Ok ()

let parallel_oracle =
  {
    name = "parallel-determinism";
    describe = "analyze_suite yields byte-identical reports at any domain count";
    run =
      (fun ~seed ~iters ->
        Pool.with_pool ~domains:3 (fun pool ->
            Check.run ~name:"parallel-determinism" ~seed ~iters
              ~print:Netgen.print_scenario Netgen.scenario (parallel_prop pool)));
  }

(* ------------------------------------------------------------------ *)
(* 3. targeted-simulation memo cache on vs off                         *)
(* ------------------------------------------------------------------ *)

let cache_prop (sc : Netgen.scenario) =
  let state = state_of sc.Netgen.net in
  let testeds = testeds_of state sc in
  let run sim_cache =
    List.map coverage_fp
      (Netcov.analyze_suite ~pool:Pool.sequential ~sim_cache state testeds)
  in
  match first_diff (run true) (run false) with
  | Some i -> fail "report %d differs between sim_cache:true and sim_cache:false" i
  | None -> Ok ()

let cache_oracle =
  {
    name = "cache-equivalence";
    describe = "sim_cache:true and sim_cache:false produce identical reports";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"cache-equivalence" ~seed ~iters
          ~print:Netgen.print_scenario Netgen.scenario cache_prop);
  }

(* ------------------------------------------------------------------ *)
(* 4. BDD operations vs brute-force truth tables                       *)
(* ------------------------------------------------------------------ *)

(* Random cone predicates: the labeler builds conjunction/disjunction/
   negation shapes over config variables and then asks necessity
   questions; this oracle replays those shapes against exhaustive
   enumeration (practical because cones here have <= 12 variables). *)
type formula =
  | F_true
  | F_false
  | F_var of int
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula
  | F_xor of formula * formula

let rec print_formula = function
  | F_true -> "T"
  | F_false -> "F"
  | F_var v -> Printf.sprintf "x%d" v
  | F_not f -> Printf.sprintf "(not %s)" (print_formula f)
  | F_and (a, b) -> Printf.sprintf "(and %s %s)" (print_formula a) (print_formula b)
  | F_or (a, b) -> Printf.sprintf "(or %s %s)" (print_formula a) (print_formula b)
  | F_xor (a, b) -> Printf.sprintf "(xor %s %s)" (print_formula a) (print_formula b)

let rec eval_formula assign = function
  | F_true -> true
  | F_false -> false
  | F_var v -> assign v
  | F_not f -> not (eval_formula assign f)
  | F_and (a, b) -> eval_formula assign a && eval_formula assign b
  | F_or (a, b) -> eval_formula assign a || eval_formula assign b
  | F_xor (a, b) -> eval_formula assign a <> eval_formula assign b

let rec formula_gen ~n_vars depth =
  let leaf =
    Gen.oneof
      [
        Gen.map (fun v -> F_var v) (Gen.int_bound (n_vars - 1));
        Gen.oneofl [ F_true; F_false ];
      ]
  in
  if depth = 0 then leaf
  else
    let sub = formula_gen ~n_vars (depth - 1) in
    Gen.oneof
      [
        leaf;
        Gen.map (fun f -> F_not f) sub;
        Gen.map2 (fun a b -> F_and (a, b)) sub sub;
        Gen.map2 (fun a b -> F_or (a, b)) sub sub;
        Gen.map2 (fun a b -> F_xor (a, b)) sub sub;
      ]

type bdd_case = { n_vars : int; f : formula }

let bdd_case_gen =
  (* skew small: most cones are tiny, a few reach the 12-variable cap *)
  let* n_vars = Gen.oneof [ Gen.int_range 1 6; Gen.int_range 7 12 ] in
  let* f = formula_gen ~n_vars 4 in
  Gen.return { n_vars; f }

let print_bdd_case c = Printf.sprintf "n_vars=%d %s" c.n_vars (print_formula c.f)

let rec build_bdd m = function
  | F_true -> Netcov_bdd.Bdd.bdd_true m
  | F_false -> Netcov_bdd.Bdd.bdd_false m
  | F_var v -> Netcov_bdd.Bdd.var m v
  | F_not f -> Netcov_bdd.Bdd.bdd_not m (build_bdd m f)
  | F_and (a, b) -> Netcov_bdd.Bdd.bdd_and m (build_bdd m a) (build_bdd m b)
  | F_or (a, b) -> Netcov_bdd.Bdd.bdd_or m (build_bdd m a) (build_bdd m b)
  | F_xor (a, b) -> Netcov_bdd.Bdd.bdd_xor m (build_bdd m a) (build_bdd m b)

let bdd_prop { n_vars; f } =
  let module B = Netcov_bdd.Bdd in
  let m = B.create () in
  let node = build_bdd m f in
  let n_assignments = 1 lsl n_vars in
  let assign_of bits v = bits land (1 lsl v) <> 0 in
  let exception Diverged of string in
  try
    (* eval agrees with the truth table *)
    for bits = 0 to n_assignments - 1 do
      let a = assign_of bits in
      if B.eval m node a <> eval_formula a f then
        raise (Diverged (Printf.sprintf "eval diverges at assignment %#x" bits))
    done;
    (* necessity (the strong-label test) agrees with brute force *)
    List.iter
      (fun v ->
        let brute_necessary =
          (* [not v => not f]: no assignment with v=false satisfies f *)
          let sat_with_v_false = ref false in
          for bits = 0 to n_assignments - 1 do
            let a = assign_of bits in
            if (not (a v)) && eval_formula a f then sat_with_v_false := true
          done;
          not !sat_with_v_false
        in
        if B.is_necessary m node ~var:v <> brute_necessary then
          raise
            (Diverged
               (Printf.sprintf "is_necessary diverges on x%d (brute=%b)" v
                  brute_necessary)))
      (B.support m node);
    (* restrict is the semantic cofactor, under both values *)
    for v = 0 to n_vars - 1 do
      List.iter
        (fun value ->
          let r = B.restrict m node ~var:v ~value in
          for bits = 0 to n_assignments - 1 do
            let a = assign_of bits in
            let forced u = if u = v then value else a u in
            if B.eval m r a <> eval_formula forced f then
              raise
                (Diverged
                   (Printf.sprintf
                      "restrict diverges on x%d:=%b at assignment %#x" v value
                      bits))
          done)
        [ false; true ]
    done;
    (* any_sat is sound and complete *)
    (match B.any_sat m node with
    | Some partial ->
        let a v = match List.assoc_opt v partial with Some b -> b | None -> false in
        if not (eval_formula a f) then
          raise (Diverged "any_sat returned a non-satisfying assignment")
    | None ->
        for bits = 0 to n_assignments - 1 do
          if eval_formula (assign_of bits) f then
            raise (Diverged "any_sat returned None on a satisfiable formula")
        done);
    Ok ()
  with Diverged msg -> Error msg

let bdd_oracle =
  {
    name = "bdd-truth-table";
    describe =
      "BDD eval/necessity/restrict/any_sat match brute-force enumeration";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"bdd-truth-table" ~seed ~iters ~print:print_bdd_case
          bdd_case_gen bdd_prop);
  }

(* ------------------------------------------------------------------ *)
(* 5. coverage monotonicity + merge order-insensitivity                *)
(* ------------------------------------------------------------------ *)

let strong_set (r : Netcov.report) =
  let reg = Coverage.registry r.Netcov.coverage in
  List.filter
    (fun id -> Coverage.element_status r.Netcov.coverage id = Coverage.Strong)
    (List.init (Registry.n_elements reg) Fun.id)

let monotone_prop (sc : Netgen.scenario) =
  match sc.Netgen.tests with
  | [] -> Ok ()
  | extra :: rest ->
      let state = state_of sc.Netgen.net in
      let base =
        List.fold_left Netcov.merge_tested Netcov.no_tests
          (List.map (Netgen.tested_of state) rest)
      in
      let grown = Netcov.merge_tested base (Netgen.tested_of state extra) in
      let strong_base = strong_set (Netcov.analyze state base) in
      let strong_grown = strong_set (Netcov.analyze state grown) in
      let lost =
        List.filter (fun id -> not (List.mem id strong_grown)) strong_base
      in
      if lost <> [] then
        fail "adding a test lost strong coverage of elements [%s]"
          (String.concat ";" (List.map string_of_int lost))
      else
        (* merge_reports is order-insensitive on coverage *)
        let reports =
          Netcov.analyze_suite ~pool:Pool.sequential state
            (List.map (Netgen.tested_of state) sc.Netgen.tests)
        in
        let fwd = coverage_fp (Netcov.merge_reports reports) in
        let rev = coverage_fp (Netcov.merge_reports (List.rev reports)) in
        if fwd <> rev then fail "merge_reports coverage depends on report order"
        else Ok ()

let monotone_oracle =
  {
    name = "monotonicity-merge";
    describe =
      "coverage grows monotonically with tests; merge is order-insensitive";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"monotonicity-merge" ~seed ~iters
          ~print:Netgen.print_scenario Netgen.scenario monotone_prop);
  }

(* ------------------------------------------------------------------ *)
(* 6. interned identities vs the string-key reference                  *)
(* ------------------------------------------------------------------ *)

(* The dense-id IFG core (lib/core/intern.ml) must be a pure
   representation change: [Intern.By_key] keeps the historical
   formatted-string fact identity as the reference, [Intern.Structural]
   is the interned hot path. Any divergence is a bug in the structural
   [Fact.equal]/[Fact.hash] projection. *)
let intern_prop (sc : Netgen.scenario) =
  let state = state_of sc.Netgen.net in
  let testeds = testeds_of state sc in
  let run identity =
    List.map coverage_fp
      (Netcov.analyze_suite ~pool:Pool.sequential ~identity state testeds)
  in
  match first_diff (run Intern.Structural) (run Intern.By_key) with
  | Some i ->
      fail "report %d differs between Structural and By_key fact identity" i
  | None -> Ok ()

let intern_oracle =
  {
    name = "intern-reference";
    describe =
      "interned (Structural) and string-keyed (By_key) fact identities \
       produce identical reports";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"intern-reference" ~seed ~iters
          ~print:Netgen.print_scenario Netgen.scenario intern_prop);
  }

(* ------------------------------------------------------------------ *)
(* 7. per-test fault isolation                                         *)
(* ------------------------------------------------------------------ *)

(* A tested fact referencing a nonexistent device makes its analysis
   raise (the registry lookup fails while deciding expandability) —
   the same failure mode as a crashing targeted simulation, injected
   deterministically. *)
let poison_tested i =
  let prefix =
    Option.get (Netcov_types.Prefix.of_string_opt "10.99.99.0/24")
  in
  let route =
    Netcov_types.Route.originate prefix ~next_hop:Netcov_types.Ipv4.zero
  in
  {
    Netcov.dp_facts =
      [
        Fact.F_bgp_rib
          {
            host = Printf.sprintf "no-such-device-%d" i;
            route;
            source = Netcov_sim.Rib.From_redistribute Netcov_types.Route.Static;
          };
      ];
    cp_elements = [];
  }

let isolation_prop (sc : Netgen.scenario) =
  let state = state_of sc.Netgen.net in
  let reg = Stable_state.registry state in
  let testeds = testeds_of state sc in
  let k = 2 in
  (* surround the healthy tests so exclusion is position-independent *)
  let mixed = (poison_tested 0 :: testeds) @ [ poison_tested 1 ] in
  let clean = Netcov.analyze_suite ~pool:Pool.sequential state testeds in
  let outcome = Netcov.analyze_suite_isolated ~pool:Pool.sequential state mixed in
  if List.length outcome.Netcov.failures <> k then
    fail "expected %d isolated failures, got %d" k
      (List.length outcome.Netcov.failures)
  else if
    not
      (List.for_all
         (fun (f : Netcov.test_failure) ->
           f.Netcov.tf_index = 0 || f.Netcov.tf_index = List.length mixed - 1)
         outcome.Netcov.failures)
  then fail "failure indices do not match the injected positions"
  else
    match
      first_diff
        (List.map coverage_fp outcome.Netcov.ok)
        (List.map coverage_fp clean)
    with
    | Some i ->
        fail
          "surviving report %d differs from analyzing the suite without the \
           injected tests"
          i
    | None ->
        let m_mixed =
          coverage_fp (Netcov.merge_reports ~registry:reg outcome.Netcov.ok)
        in
        let m_clean = coverage_fp (Netcov.merge_reports ~registry:reg clean) in
        if m_mixed <> m_clean then
          fail "merged coverage differs once the failures section is set aside"
        else Ok ()

let isolation_oracle =
  {
    name = "fault-isolation";
    describe =
      "a suite with k injected-failing tests analyzes like the suite without \
       them, modulo the failures section";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"fault-isolation" ~seed ~iters
          ~print:Netgen.print_scenario Netgen.scenario isolation_prop);
  }

(* ------------------------------------------------------------------ *)
(* 8. incremental engine vs from-scratch analysis                      *)
(* ------------------------------------------------------------------ *)

module Incr = Netcov_incr.Incr

(* One small deterministic configuration edit derived from [pick] — the
   "new version" side of the incremental oracle. Edits keep the network
   convergent (a tree stays a tree): a policy action value or an
   interface description is tweaked, or a static route appears. *)
let mutate_devices pick devs =
  let internals =
    List.filteri (fun _ (d : Device.t) -> not d.Device.is_external) devs
    |> List.map (fun (d : Device.t) -> d.Device.hostname)
  in
  match internals with
  | [] -> devs
  | _ ->
      let target = List.nth internals (pick mod List.length internals) in
      let edit_policy (d : Device.t) =
        match d.Device.policies with
        | [] -> None
        | p :: rest ->
            let terms =
              match p.Policy_ast.terms with
              | [] -> []
              | t :: ts ->
                  (* prepending a modifier is a live edit: it applies
                     before the term's verdict and alters route state *)
                  {
                    t with
                    Policy_ast.actions =
                      Policy_ast.Set_med 77 :: t.Policy_ast.actions;
                  }
                  :: ts
            in
            Some { d with Device.policies = { p with Policy_ast.terms } :: rest }
      in
      let edit_interface (d : Device.t) =
        match d.Device.interfaces with
        | [] -> None
        | i :: rest ->
            Some
              {
                d with
                Device.interfaces =
                  { i with Device.description = Some "edited" } :: rest;
              }
      in
      let add_static (d : Device.t) =
        Some
          {
            d with
            Device.static_routes =
              {
                Device.st_prefix = Netgen.lan 99;
                st_next_hop = Netcov_types.Ipv4.zero;
              }
              :: d.Device.static_routes;
          }
      in
      List.map
        (fun (d : Device.t) ->
          if d.Device.hostname <> target then d
          else
            let edits =
              match pick / List.length internals mod 3 with
              | 0 -> [ edit_policy; edit_interface; add_static ]
              | 1 -> [ edit_interface; add_static ]
              | _ -> [ add_static ]
            in
            List.fold_left
              (fun acc e -> match acc with Some _ -> acc | None -> e d)
              None edits
            |> Option.value ~default:d)
        devs

let scratch_fp state testeds =
  coverage_fp
    (Netcov.merge_reports
       ~registry:(Stable_state.registry state)
       (Netcov.analyze_suite ~pool:Pool.sequential state testeds))

let incr_prop ((sc : Netgen.scenario), pick) =
  let devs_old = Netgen.devices_of sc.Netgen.net in
  let devs_new = mutate_devices pick devs_old in
  let state_a = Stable_state.compute (Registry.build devs_old) in
  let state_b = Stable_state.compute (Registry.build devs_new) in
  let testeds_a = testeds_of state_a sc in
  let testeds_b = testeds_of state_b sc in
  let session, _ = Incr.create state_a testeds_a in
  if coverage_fp (Incr.report session) <> scratch_fp state_a testeds_a then
    fail "cold incremental run diverges from Netcov.analyze_suite"
  else
    let (_ : Incr.stats) = Incr.update session state_b testeds_b in
    if coverage_fp (Incr.report session) <> scratch_fp state_b testeds_b then
      fail "incremental update diverges from from-scratch analysis (edit %d)"
        pick
    else begin
      (* Edit reverted: this update reuses heavily (the signature path)
         and must still match from scratch. *)
      let state_a' = Stable_state.compute (Registry.build devs_old) in
      let testeds_a' = testeds_of state_a' sc in
      let (_ : Incr.stats) = Incr.update session state_a' testeds_a' in
      if coverage_fp (Incr.report session) <> scratch_fp state_a' testeds_a'
      then fail "incremental revert diverges from from-scratch analysis"
      else Ok ()
    end

let print_incr (sc, pick) =
  Printf.sprintf "%s edit=%d" (Netgen.print_scenario sc) pick

let incr_oracle =
  {
    name = "incremental-scratch";
    describe =
      "incremental update (diff -> invalidate -> delta recompute) produces \
       byte-identical coverage to a from-scratch analysis";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"incremental-scratch" ~seed ~iters ~print:print_incr
          (Gen.pair Netgen.scenario (Gen.int_bound 1000))
          incr_prop);
  }

(* ------------------------------------------------------------------ *)
(* 9. shared-arena labeling engine vs fresh-manager-per-cone           *)
(* ------------------------------------------------------------------ *)

(* The reference is the legacy engine ([label_arena:false], fresh
   manager per cone, sequential). The arena engine must reproduce it
   byte-for-byte from one domain (a single arena shared by every cone
   of the suite, with the cross-cone gamma memo fully engaged) and
   from multi-domain pools (cones split across private per-domain
   arenas mid-pass). Arenas deliberately stay warm across scenarios:
   reuse of hash-consed nodes and apply-cache entries from earlier
   iterations must never leak into coverage. *)
let label_arena_prop pools (sc : Netgen.scenario) =
  let state = state_of sc.Netgen.net in
  let testeds = testeds_of state sc in
  let reference =
    List.map coverage_fp
      (Netcov.analyze_suite ~pool:Pool.sequential ~label_arena:false state
         testeds)
  in
  let check (dname, pool) =
    let got =
      List.map coverage_fp
        (Netcov.analyze_suite ~pool ~label_arena:true state testeds)
    in
    match first_diff reference got with
    | Some i ->
        fail "report %d differs between the fresh engine and the arena \
              engine at %s" i dname
    | None -> Ok ()
  in
  List.fold_left
    (fun acc p -> match acc with Error _ -> acc | Ok () -> check p)
    (Ok ()) pools

let label_arena_oracle =
  {
    name = "label-arena";
    describe =
      "shared-arena labeling (cross-cone gamma memo + essential-variables \
       pass) is byte-identical to the fresh-per-cone engine at 1, 2 and 4 \
       domains";
    run =
      (fun ~seed ~iters ->
        Pool.with_pool ~domains:2 (fun p2 ->
            Pool.with_pool ~domains:4 (fun p4 ->
                Check.run ~name:"label-arena" ~seed ~iters
                  ~print:Netgen.print_scenario Netgen.scenario
                  (label_arena_prop
                     [
                       ("1 domain", Pool.sequential);
                       ("2 domains", p2);
                       ("4 domains", p4);
                     ]))));
  }

(* ------------------------------------------------------------------ *)
(* 10. mutation falsifiability                                         *)
(* ------------------------------------------------------------------ *)

(* Mutation coverage as ground truth (paper §3.1): mutating a strongly
   covered element must change some test outcome, mutating an uncovered
   element must change none — modulo the competitor class
   (Mutation.competitor_prone) and elements strong only by decree
   (cp_elements), both exempted by Incr.falsifiability. Piggybacked:
   warm (incremental) mutant execution must agree verdict-for-verdict
   with the scratch reference on a subsample. *)
let mutation_prop (sc : Netgen.scenario) =
  let state = state_of sc.Netgen.net in
  let testeds = testeds_of state sc in
  let session, (_ : Incr.stats) = Incr.create state testeds in
  let reg = Incr.registry session in
  let fz = Incr.falsifiability ~max_elements:16 session in
  if fz.Incr.fz_missed <> [] || fz.Incr.fz_divergent <> [] then
    fail "%s" (Incr.falsifiability_summary reg fz)
  else
    let sample =
      List.filteri
        (fun i _ -> i < 6)
        (fz.Incr.fz_strong @ fz.Incr.fz_uncovered)
    in
    if sample = [] then Ok ()
    else
      let facts =
        List.concat_map (fun (t : Netcov.tested) -> t.Netcov.dp_facts) testeds
      in
      let oracle = Mutation.facts_oracle facts in
      let run mode =
        Mutation.run reg ~oracle ~elements:sample ~mode ()
      in
      let warm = run Mutation.Warm and scratch = run Mutation.Scratch in
      if
        Element.Id_set.equal warm.Mutation.killed scratch.Mutation.killed
        && Element.Id_set.equal warm.Mutation.survived
             scratch.Mutation.survived
        && Element.Id_set.equal warm.Mutation.skipped scratch.Mutation.skipped
      then Ok ()
      else
        fail
          "warm and scratch mutant verdicts diverge: warm %d/%d/%d vs \
           scratch %d/%d/%d (killed/survived/skipped)"
          (Element.Id_set.cardinal warm.Mutation.killed)
          (Element.Id_set.cardinal warm.Mutation.survived)
          (Element.Id_set.cardinal warm.Mutation.skipped)
          (Element.Id_set.cardinal scratch.Mutation.killed)
          (Element.Id_set.cardinal scratch.Mutation.survived)
          (Element.Id_set.cardinal scratch.Mutation.skipped)

let mutation_oracle =
  {
    name = "mutation-falsifiability";
    describe =
      "mutating a covered element changes some test outcome, mutating an \
       uncovered one changes none (modulo the competitor class), and warm \
       mutant execution matches the scratch reference";
    run =
      (fun ~seed ~iters ->
        Check.run ~name:"mutation-falsifiability" ~seed ~iters
          ~print:Netgen.print_scenario Netgen.scenario mutation_prop);
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    roundtrip_oracle;
    parallel_oracle;
    cache_oracle;
    bdd_oracle;
    monotone_oracle;
    intern_oracle;
    isolation_oracle;
    incr_oracle;
    label_arena_oracle;
    mutation_oracle;
  ]

let find name = List.find_opt (fun o -> o.name = name) all

let run_all ?(out = stdout) ?names ~seed ~iters () =
  let chosen =
    match names with
    | None -> all
    | Some ns -> List.filter (fun o -> List.mem o.name ns) all
  in
  List.fold_left
    (fun ok o ->
      let outcome = o.run ~seed ~iters in
      Printf.fprintf out "%s\n%!" (Check.report outcome);
      ok && Check.passed outcome)
    true chosen
