(** Random generators with integrated shrinking.

    A generator produces a lazy {e shrink tree}: the root is the
    generated value, the children are candidate shrinks of it (each
    itself a tree). Shrinking is thereby defined once, inside the
    generator, and survives [map]/[bind] composition — the runner in
    {!Check} only ever walks trees, so every property gets minimal
    counterexamples without writing a shrinker by hand.

    Determinism: generation threads an explicit {!Prng} stream, and
    [bind] snapshots the stream it hands to the continuation, so
    re-running the continuation on a shrunk prefix replays identical
    randomness for the suffix. Same seed, same value, always. *)

(** A value plus its lazily-computed shrink candidates, ordered most
    aggressive first. *)
type 'a tree = Tree of 'a * 'a tree Seq.t

val root : 'a tree -> 'a
val shrinks : 'a tree -> 'a tree Seq.t

type 'a t = Prng.t -> 'a tree

(** [generate ~seed g] is the root value at [seed] (no shrinking). *)
val generate : seed:int -> 'a t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t

(** [let*] is [bind]; [let+] is [map] with arguments flipped. *)
module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

(** [int_range lo hi] is uniform in [lo, hi] inclusive, shrinking
    towards [origin] (default [lo], clamped into the range). *)
val int_range : ?origin:int -> int -> int -> int t

(** [int_bound n] is [int_range 0 n] (inclusive). *)
val int_bound : int -> int t

(** Shrinks towards [false]. *)
val bool : bool t

(** [oneofl xs] picks one element, shrinking towards earlier elements
    of the list; raises on the empty list. *)
val oneofl : 'a list -> 'a t

(** [oneof gs] runs one generator of the list; the choice itself
    shrinks towards earlier generators. *)
val oneof : 'a t list -> 'a t

(** [opt g] is [None] or [Some v], shrinking towards [None]. *)
val opt : 'a t -> 'a option t

val pair : 'a t -> 'b t -> ('a * 'b) t

(** [list_size n g] draws the length from [n], then elements from [g].
    Shrinks by dropping elements (towards the front) and by shrinking
    individual elements. *)
val list_size : int t -> 'a t -> 'a list t

(** Fixed-length list; shrinks elements only, never the length. *)
val list_repeat : int -> 'a t -> 'a list t

(** Run a list of generators in order (fixed structure). *)
val flatten_l : 'a t list -> 'a list t

(** [sublist xs] is a random subsequence of [xs] (order preserved),
    shrinking towards the empty list. *)
val sublist : 'a list -> 'a list t

(** [no_shrink g] keeps [g]'s values but discards its shrinks — for
    parts whose shrinking would invalidate global invariants. *)
val no_shrink : 'a t -> 'a t
