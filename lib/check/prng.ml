(* SplitMix64 (Steele, Lea & Flood 2014): a tiny splittable generator
   with a 64-bit state advanced by a Weyl sequence. Chosen over
   [Random.State] because its behaviour is identical on every platform
   and OCaml version — failure seeds printed in CI replay locally. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let range t lo hi =
  if lo > hi then invalid_arg "Prng.range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = int t 2 = 1

let mix seed i =
  (* one splitmix step over (seed, i): cheap, and distinct iterations of
     distinct runs land on distinct streams *)
  let t = make seed in
  for _ = 0 to i do
    ignore (next t)
  done;
  Int64.to_int (Int64.logand (next t) Int64.max_int)
