(** Random-network and random-configuration generators for the
    differential oracles.

    Two families:

    - {!device}: a single round-trippable device configuration drawing
      from every element kind the emitters know (interfaces, ACLs,
      prefix/community/as-path lists, policies, BGP) — the input space
      of the emit→parse oracles.
    - {!network}/{!scenario}: a small eBGP {e tree} topology (a tree
      always converges, so the stable state is well defined) with route
      policies sprinkled on some sessions, plus a symbolic test suite.
      Symbolic: a {!test_spec} names RIB probes by router/LAN index and
      is materialized against a computed {!Netcov_sim.Stable_state}
      with {!tested_of}, so generation and shrinking never simulate. *)

open Netcov_types
open Netcov_config

(** A random, well-formed, round-trippable device (random syntax). *)
val device : Device.t Gen.t

(** An eBGP tree: router [i >= 1] peers with [parent.(i)]; router [j]
    originates LAN [10.64.j.0/24]. [policied] routers apply a small
    import policy chain (with a prefix list) on their uplink session. *)
type network = {
  n_routers : int;
  parent : int array;
  multipath : int;
  policied : int list;
}

(** LAN prefix originated by router [i]. *)
val lan : int -> Prefix.t

(** Hostname of router [i] ("r<i>"). *)
val host : int -> string

val devices_of : network -> Device.t list

(** One test, symbolically: [probes] are (router, LAN) main-RIB
    lookups, [cp_picks] are raw draws mapped onto element ids modulo
    the registry size at materialization time. *)
type test_spec = { probes : (int * int) list; cp_picks : int list }

(** A network together with a non-empty test suite over it. *)
type scenario = { net : network; tests : test_spec list }

val network : network Gen.t
val scenario : scenario Gen.t

(** Materialize a symbolic test against a computed stable state. *)
val tested_of :
  Netcov_sim.Stable_state.t -> test_spec -> Netcov_core.Netcov.tested

(** Compact one-line spec strings for counterexample reports. *)
val print_network : network -> string

val print_scenario : scenario -> string
