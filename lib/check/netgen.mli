(** Random-network and random-configuration generators for the
    differential oracles.

    Two families:

    - {!device}: a single round-trippable device configuration drawing
      from every element kind the emitters know (interfaces, ACLs,
      prefix/community/as-path lists, policies, BGP) — the input space
      of the emit→parse oracles.
    - {!network}/{!scenario}: a small eBGP {e tree} topology (a tree
      always converges, so the stable state is well defined) with route
      policies sprinkled on some sessions, plus a symbolic test suite.
      Symbolic: a {!test_spec} names RIB probes by router/LAN index and
      is materialized against a computed {!Netcov_sim.Stable_state}
      with {!tested_of}, so generation and shrinking never simulate. *)

open Netcov_types
open Netcov_config

(** A random, well-formed, round-trippable device (random syntax). *)
val device : Device.t Gen.t

(** An eBGP tree: router [i >= 1] peers with [parent.(i)]; router [j]
    originates LAN [10.64.j.0/24]. [policied] routers apply a small
    import policy chain (with a prefix list) on their uplink session. *)
type network = {
  n_routers : int;
  parent : int array;
  multipath : int;
  policied : int list;
}

(** LAN prefix originated by router [i]. *)
val lan : int -> Prefix.t

(** Hostname of router [i] ("r<i>"). *)
val host : int -> string

val devices_of : network -> Device.t list

(** [balanced ~fanout n] is a deterministic complete [fanout]-ary tree
    of [n] routers (no randomness): router [i >= 1] hangs off
    [(i - 1) / fanout]; every [policy_every]-th router (default 7)
    applies the uplink import policy. The netgen-1000 mega-workload of
    BENCH_parallel.json is [balanced ~fanout:4 1000]. *)
val balanced : ?multipath:int -> ?policy_every:int -> fanout:int -> int -> network

(** One test, symbolically: [probes] are (router, LAN) main-RIB
    lookups, [cp_picks] are raw draws mapped onto element ids modulo
    the registry size at materialization time. *)
type test_spec = { probes : (int * int) list; cp_picks : int list }

(** A network together with a non-empty test suite over it. *)
type scenario = { net : network; tests : test_spec list }

val network : network Gen.t
val scenario : scenario Gen.t

(** Deterministic test specs for a {!balanced} network: [n_tests]
    (default 32) specs of [probes_per_test] (default 8) probes each,
    strided over the tree by coprime steps. *)
val balanced_specs :
  ?n_tests:int -> ?probes_per_test:int -> network -> test_spec list

(** Materialize a symbolic test against a computed stable state. *)
val tested_of :
  Netcov_sim.Stable_state.t -> test_spec -> Netcov_core.Netcov.tested

(** Compact one-line spec strings for counterexample reports. *)
val print_network : network -> string

val print_scenario : scenario -> string
