(** Route-policy evaluation with clause tracing.

    This is the "targeted simulation" primitive of the paper (§4.2): it
    applies a policy chain to one route and reports the transformed route
    together with the configuration elements exercised — the matched
    policy clauses and the match lists they consulted. *)

open Netcov_types
open Netcov_config

type verdict = Accepted | Rejected

type result = {
  verdict : verdict;
  route : Route.bgp option;  (** transformed route when accepted *)
  exercised : Element.key list;
      (** matched clauses and the lists their conditions consulted, in
          evaluation order, deduplicated *)
}

(** [run_chain device ~chain ~default route] evaluates the named policies
    in order. A clause matches when all its conditions hold; [Accept] and
    [Reject] actions terminate the chain; attribute modifiers apply and
    evaluation falls through to the next clause. A policy name that does
    not resolve on [device] is skipped. [default] applies when no clause
    terminates the chain.

    [protocol] is the source protocol of the route, consulted by
    [Match_protocol] conditions (defaults to [Bgp]). *)
val run_chain :
  Device.t ->
  chain:string list ->
  default:verdict ->
  ?protocol:Route.protocol ->
  Route.bgp ->
  result

(** The shape of a chain evaluator, as injected into the targeted
    simulations: [run_chain] itself, or a memoizing wrapper around it
    (the coverage core keys such a cache on device, chain, defaults and
    the canonicalized input route — [run_chain] is a pure function of
    exactly these). *)
type chain_eval =
  Device.t ->
  chain:string list ->
  default:verdict ->
  protocol:Route.protocol ->
  Route.bgp ->
  result

(** [matches_term device ~protocol route term] tests a single clause,
    returning the consulted list keys when it matches. *)
val matches_term :
  Device.t ->
  protocol:Route.protocol ->
  Route.bgp ->
  Policy_ast.term ->
  Element.key list option

(** [apply_actions device route actions] folds attribute modifiers,
    returning the terminator (if any), the transformed route, and keys of
    community lists consulted by delete actions. *)
val apply_actions :
  Device.t ->
  Route.bgp ->
  Policy_ast.action list ->
  [ `Accept | `Reject | `Fallthrough ] * Route.bgp * Element.key list
