open Netcov_types
open Netcov_config

type verdict = Accepted | Rejected

type result = {
  verdict : verdict;
  route : Route.bgp option;
  exercised : Element.key list;
}

let match_prefix (p : Prefix.t) (mode : Policy_ast.mode) (target : Prefix.t) =
  match mode with
  | Policy_ast.Exact -> Prefix.equal p target
  | Policy_ast.Orlonger -> Prefix.subsumes p target
  | Policy_ast.Upto n -> Prefix.subsumes p target && Prefix.len target <= n

(* Evaluates one condition. Returns [None] when it does not hold, and
   the consulted list keys when it does. *)
let eval_cond (d : Device.t) ~(protocol : Route.protocol) (r : Route.bgp)
    (c : Policy_ast.match_cond) : Element.key list option =
  match c with
  | Policy_ast.Match_prefix_list name -> (
      match Device.find_prefix_list d name with
      | Some pl when Device.prefix_list_matches pl r.prefix ->
          Some [ Element.key Prefix_list name ]
      | Some _ | None -> None)
  | Policy_ast.Match_prefix (p, mode) ->
      if match_prefix p mode r.prefix then Some [] else None
  | Policy_ast.Match_community_list name -> (
      match Device.find_community_list d name with
      | Some cl
        when List.exists (fun c -> Route.has_community r c) cl.cl_members ->
          Some [ Element.key Community_list name ]
      | Some _ | None -> None)
  | Policy_ast.Match_community c ->
      if Route.has_community r c then Some [] else None
  | Policy_ast.Match_as_path_list name -> (
      match Device.find_as_path_list d name with
      | Some al when List.exists (fun re -> As_regex.matches re r.as_path) al.al_patterns
        ->
          Some [ Element.key As_path_list name ]
      | Some _ | None -> None)
  | Policy_ast.Match_protocol p -> if p = protocol then Some [] else None
  | Policy_ast.Match_next_hop nh ->
      if Ipv4.equal nh r.next_hop then Some [] else None

let matches_term d ~protocol r (t : Policy_ast.term) =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
        match eval_cond d ~protocol r c with
        | None -> None
        | Some keys -> go (List.rev_append keys acc) rest)
  in
  go [] t.matches

let apply_actions d r actions =
  let rec go r keys = function
    | [] -> (`Fallthrough, r, List.rev keys)
    | a :: rest -> (
        match (a : Policy_ast.action) with
        | Accept -> (`Accept, r, List.rev keys)
        | Reject -> (`Reject, r, List.rev keys)
        | Next_term -> go r keys rest
        | Set_local_pref n -> go { r with Route.local_pref = n } keys rest
        | Set_med n -> go { r with Route.med = n } keys rest
        | Add_community c -> go (Route.add_community r c) keys rest
        | Remove_community c ->
            go
              { r with Route.communities = Community.Set.remove c r.communities }
              keys rest
        | Delete_community_in name -> (
            match Device.find_community_list d name with
            | None -> go r keys rest
            | Some cl ->
                let communities =
                  List.fold_left
                    (fun s c -> Community.Set.remove c s)
                    r.Route.communities cl.cl_members
                in
                go { r with Route.communities } (Element.key Community_list name :: keys)
                  rest)
        | Prepend_as (asn, times) ->
            go { r with Route.as_path = As_path.prepend asn ~times r.as_path } keys
              rest)
  in
  go r [] actions

(* Deduplicate keys preserving first occurrence. *)
let dedup keys =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun k ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    keys

type chain_eval =
  Device.t ->
  chain:string list ->
  default:verdict ->
  protocol:Route.protocol ->
  Route.bgp ->
  result

(* Evaluation volume metric: every policy-chain run (the targeted
   simulation primitive) counts here, cached or not at higher layers. *)
let m_chain_evals =
  Netcov_obs.Metrics.counter Netcov_obs.Metrics.default
    ~help:"policy-chain evaluations (targeted-simulation primitive)"
    ~unit_:"evaluations" "policy.chain_evals"

let run_chain (d : Device.t) ~chain ~default ?(protocol = Route.Bgp) route =
  Netcov_obs.Metrics.inc m_chain_evals 1;
  let finish verdict route exercised =
    {
      verdict;
      route = (match verdict with Accepted -> Some route | Rejected -> None);
      exercised = dedup (List.rev exercised);
    }
  in
  let rec eval_terms pol_name r exercised terms rest_policies =
    match terms with
    | [] -> eval_policies r exercised rest_policies
    | (t : Policy_ast.term) :: more -> (
        match matches_term d ~protocol r t with
        | None -> eval_terms pol_name r exercised more rest_policies
        | Some consulted ->
            let term_key =
              Element.key Route_policy_clause
                (Policy_ast.term_element_name ~policy_name:pol_name
                   ~term_name:t.term_name)
            in
            let outcome, r', act_keys = apply_actions d r t.actions in
            let exercised =
              List.rev_append act_keys
                (List.rev_append consulted (term_key :: exercised))
            in
            (match outcome with
            | `Accept -> finish Accepted r' exercised
            | `Reject -> finish Rejected r' exercised
            | `Fallthrough -> eval_terms pol_name r' exercised more rest_policies))
  and eval_policies r exercised = function
    | [] -> finish default r exercised
    | name :: rest -> (
        match Device.find_policy d name with
        | None -> eval_policies r exercised rest
        | Some p -> eval_terms p.pol_name r exercised p.terms rest)
  in
  eval_policies route [] chain
