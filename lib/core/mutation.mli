(** Mutation-based coverage — the alternative definition the paper
    discusses in §3.1 and leaves to future work: an element is covered
    by a test suite iff mutating it changes the suite's outcome.

    This is far more expensive than IFG coverage (one control-plane
    computation per mutant) and is provided for comparison, for the
    ablation benchmark, and as the falsifiability ground truth the
    [mutation-falsifiability] oracle checks IFG coverage against. It
    also surfaces the class of elements IFG coverage deliberately
    excludes: elements whose only effect is to de-prioritize or reject
    the {e competitors} of tested facts (see {!competitor_prone}).

    Two execution modes: [Scratch] recomputes every mutant's stable
    state from a fresh registry build (the reference semantics), [Warm]
    — the default — replays only the mutant's dirty cone through
    {!Netcov_sim.Stable_state.update_devices}, seeded from the baseline
    fixed point. The two must agree mutant-for-mutant; the
    [@mutation-smoke] bench gate enforces it. See docs/MUTATION.md. *)

open Netcov_config
open Netcov_sim
module Pool = Netcov_parallel.Pool

(** [occurrences device key] counts the configuration entries of
    [device] matching [key]. {!Netcov_config.Registry.build} groups all
    same-keyed entries under a single element, so this is the number of
    distinct delete mutants the element yields. *)
val occurrences : Device.t -> Element.key -> int

(** [delete_element device key] removes {e one} occurrence of the
    element from the device configuration ([occurrence] selects which,
    0-based among same-keyed entries, default the first); [None] when
    the key does not name that many removable entries of this device.
    Deleting exactly one entry keeps e.g. two ECMP static routes to the
    same prefix as two separate mutants instead of one over-strong
    delete-both mutant. *)
val delete_element :
  ?occurrence:int -> Device.t -> Element.key -> Device.t option

(** {1 Typed mutation operators} *)

(** A mutation operator: given a device and an element key it targets,
    produce zero or more mutated devices (one per mutant). Each mutant
    differs from the baseline in exactly one device, so
    [Registry_diff.diff ~old:reg (mutant_registry reg m)] reports a
    single-device edit — the property the incremental engine relies
    on. *)
type operator = {
  op_name : string;
  op_describe : string;
  op_mutate : Device.t -> Element.key -> Device.t list;
}

val op_delete : operator
(** One delete mutant per same-keyed occurrence. *)

val op_flip_policy_action : operator
(** Accept <-> Reject inside the clause's action list. *)

val op_widen_prefix_bounds : operator
(** Raise a prefix-list entry's [le] bound to 32 (match more). *)

val op_narrow_prefix_bounds : operator
(** Drop a prefix-list entry's [ge]/[le] bounds (exact match only). *)

val op_swap_acl_action : operator
(** Flip the first ACL rule between permit and deny. *)

val op_perturb_local_pref : operator
(** Add 50 to a [set local-pref] action or a peer group's local-pref. *)

val op_perturb_med : operator
(** Add 50 to a [set med] action. *)

val op_drop_community : operator
(** Remove the first member of a community list. *)

val all_operators : operator list

(** Just {!op_delete} — the paper's §3.1 definition, and the default of
    {!run} so mutation coverage stays comparable to IFG coverage. *)
val default_operators : operator list

val operator : string -> operator option

(** {1 Mutants} *)

type mutant = {
  mu_element : Element.t;
  mu_op : string;  (** operator name *)
  mu_device : Device.t;  (** the element's device, mutated *)
}

(** All mutants of one element under the given operators; [None] when
    the element's device is missing from the registry (the phantom
    no-op case — callers must count it skipped, not run it). *)
val mutants_of :
  ?operators:operator list -> Registry.t -> Element.id -> mutant list option

(** The full device list with the mutant's device substituted in. *)
val mutant_devices : Registry.t -> mutant -> Device.t list

(** A fresh registry of the mutant network (the scratch path; warm
    execution skips this and keeps the baseline registry). *)
val mutant_registry : Registry.t -> mutant -> Registry.t

(** {1 Oracles} *)

(** [fact_holds state fact] checks whether a tested data plane fact is
    (still) derivable from a stable state: the RIB entry exists, or some
    forwarding path between the endpoints still reaches. *)
val fact_holds : Stable_state.t -> Fact.t -> bool

(** Convenience oracle: all the given facts still hold. *)
val facts_oracle : Fact.t list -> Stable_state.t -> bool

(** {1 Execution} *)

(** [Scratch]: every mutant gets [Stable_state.compute (Registry.build
    mutant_devices)] — the reference semantics. [Warm] (default): every
    mutant gets [Stable_state.update_devices baseline] — the baseline
    fixed point is reused and only the mutant's dirty cone is replayed;
    the registry (coverage domain) stays the baseline's, which is sound
    because mutant verdicts ask only simulation questions. *)
type mode = Scratch | Warm

(** Per-mutant record: which element, which operator, the verdict, and
    the wall time of this mutant's state computation + oracle call. *)
type outcome = {
  o_element : Element.id;
  o_op : string;
  o_killed : bool;
  o_seconds : float;
}

type result = {
  killed : Element.Id_set.t;
      (** elements where some mutant changes the suite outcome *)
  survived : Element.Id_set.t;
  skipped : Element.Id_set.t;
      (** elements with no applicable mutant, or whose device is
          missing from the registry *)
  mutants_run : int;
  seconds : float;
  outcomes : outcome list;  (** per-mutant detail, in element order *)
}

(** Elements of these kinds may legitimately be killed by mutation while
    IFG reports them uncovered: their clauses can act purely on the
    {e competitors} of tested facts (rejecting or de-prioritizing the
    routes that would otherwise win), an effect IFG coverage's forward
    slices deliberately exclude (mutation.mli header, docs/MUTATION.md).
    The falsifiability oracle exempts exactly this class. *)
val competitor_prone : Element.etype -> bool

(** The symmetric divergence class in the other direction: elements of
    these kinds may legitimately be strongly IFG-covered yet survive
    every mutant — a deleted policy clause or match list can be
    {e masked} by chain fall-through (a later clause, or the chain
    default, re-admits the same route), leaving every tested fact
    intact even though the clause genuinely participated in the
    original derivation. IFG coverage is a dependency claim; mutation
    coverage is a counterfactual one. The falsifiability oracle exempts
    this class in the strong direction. *)
val masking_prone : Element.etype -> bool

(** The third divergence class: deleting an interface is an
    environmental change the control plane is built to heal. The IGP
    reroutes around the missing link, multihop sessions re-establish
    over the surviving paths, and the tested facts come back identical
    — so on redundant topologies, strong interfaces legitimately
    survive deletion. The falsifiability oracle reports this class
    separately ([fz_rerouted]) instead of flagging it as missed. *)
val reroute_prone : Element.etype -> bool

(** [run reg ~oracle ()] mutates each element in turn (by default every
    element of every internal device with {!default_operators}; ids
    refer to [reg]), computes the stable state of each mutant network,
    and asks the oracle whether the test suite still passes.
    [oracle baseline] is evaluated once on the unmutated network; an
    element is killed iff {e some} of its mutants makes the oracle
    answer differ.

    Elements whose device is missing from the registry, or that no
    operator can mutate, are skipped — never recomputed as phantom
    no-ops. A mutant whose simulation or oracle raises a domain
    exception ([Failure], [Invalid_argument], [Not_found]) is counted
    killed and reported through [diags] as a [Sim_failure] with the
    element's device/line provenance; any other exception
    ([Out_of_memory], [Assert_failure], ...) propagates.

    [pool] parallelizes at element granularity (default sequential);
    the oracle must then be safe to call from multiple domains —
    {!facts_oracle} is.

    The default oracle for data plane facts is
    [facts_oracle tested.dp_facts]. *)
val run :
  Registry.t ->
  oracle:(Stable_state.t -> bool) ->
  ?elements:Element.id list ->
  ?operators:operator list ->
  ?mode:mode ->
  ?pool:Pool.t ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  unit ->
  result
