(** Machine-readable coverage reports (JSON), for CI integration and
    external dashboards. No external JSON dependency: the emitter is
    self-contained and the output is stable-ordered (diff-friendly). *)

(** Full report: overall line stats, per-device table, per-element-type
    table and the per-element status list. *)
val coverage : Coverage.t -> string

(** Timing/diagnostics of one analysis run. *)
val timing : Netcov.timing -> string

(** Report including dead-code details. The [diagnostics] and
    [failures] arrays are always present — empty on a clean run — so a
    partial report (some tests excluded, some stanzas recovered) and a
    clean one share a single schema (docs/ERRORS.md). Diagnostics embed
    via {!Diag.to_json}. *)
val report :
  ?diags:Diag.t list ->
  ?failures:Netcov.test_failure list ->
  Netcov.report ->
  string

(** Minimal JSON string escaping (exposed for tests). *)
val escape_string : string -> string
