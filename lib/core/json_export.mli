(** Machine-readable coverage reports (JSON), for CI integration and
    external dashboards. No external JSON dependency: the emitter is
    self-contained and the output is stable-ordered (diff-friendly). *)

(** The emitter's building blocks, exposed so other JSON producers in
    the toolchain (the [netcov serve] API responses) compose documents
    from the same stable-ordered printer instead of growing a second
    one. [J_raw] splices pre-encoded JSON — e.g. a {!report} or a
    {!Diag.list_to_json} — verbatim into a larger document. *)
type json =
  | J_str of string
  | J_int of int
  | J_float of float  (** emitted with four decimal places *)
  | J_list of json list
  | J_obj of (string * json) list
  | J_raw of string  (** pre-encoded JSON, spliced verbatim *)

(** [to_string j] renders [j] compactly (no whitespace), fields in
    construction order. *)
val to_string : json -> string

(** Full report: overall line stats, per-device table, per-element-type
    table and the per-element status list. *)
val coverage : Coverage.t -> string

(** Timing/diagnostics of one analysis run. *)
val timing : Netcov.timing -> string

(** Report including dead-code details. The [diagnostics] and
    [failures] arrays are always present — empty on a clean run — so a
    partial report (some tests excluded, some stanzas recovered) and a
    clean one share a single schema (docs/ERRORS.md). Diagnostics embed
    via {!Diag.to_json}. *)
val report :
  ?diags:Diag.t list ->
  ?failures:Netcov.test_failure list ->
  Netcov.report ->
  string

(** Minimal JSON string escaping (exposed for tests). *)
val escape_string : string -> string
