(** Fact interning: a domain-safe table assigning dense [int]
    identities to {!Fact.t} values, so the IFG core, dedup tables and
    rule firing never build or hash key strings. Ids are dense
    ([0 .. length-1], in first-intern order) and stable for the
    lifetime of the table; the reverse direction ({!fact}) serves the
    export/debug boundary.

    The forward direction is hash-sharded (independent mutex+table
    pairs, a fact's shard chosen by its identity hash) so concurrent
    interning from the pool's domains rarely contends on a lock; the
    [intern.lock.contended] metric counts the collisions that remain.
    The reverse direction ({!fact}, {!iter}, {!length}) is lock-free:
    a chunked reverse array plus a dense publication watermark, so the
    per-labeling-step id lookups in the IFG never serialize across
    domains. See docs/PERFORMANCE.md. *)

(** How facts are identified.

    - [Structural]: hash/compare the variant itself
      ({!Fact.hash}/{!Fact.equal}); the production mode, allocation-free
      per lookup.
    - [By_key]: identify by the {!Fact.key} string, reproducing the
      historical string-keyed pipeline byte for byte. Reference side of
      the [intern-reference] differential oracle and of the
      [BENCH_intern.json] before/after benchmark; never use it on a hot
      path. *)
type mode = Structural | By_key

type t

(** [create ()] is an empty interner (default [Structural]). *)
val create : ?mode:mode -> unit -> t

val mode : t -> mode

(** [intern t f] is the id of [f], assigning the next dense id on first
    sight. Safe to call concurrently from multiple domains: a given
    fact identity always maps to exactly one id. *)
val intern : t -> Fact.t -> int

(** [find t f] is [f]'s id if already interned. *)
val find : t -> Fact.t -> int option

(** [fact t id] is the fact with identity [id]. Lock-free.
    @raise Invalid_argument when [id] was never assigned. *)
val fact : t -> int -> Fact.t

(** Number of distinct facts interned so far. *)
val length : t -> int

(** [iter t f] applies [f id fact] to a snapshot of the table (facts
    interned after the snapshot are not visited). *)
val iter : t -> (int -> Fact.t -> unit) -> unit
