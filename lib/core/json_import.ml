type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string
(* position (byte offset), message *)

type st = { s : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let lit st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.s then
                  fail st "truncated \\u escape";
                let hex = String.sub st.s st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st (Printf.sprintf "bad \\u escape '%s'" hex)
                in
                st.pos <- st.pos + 4;
                (* Exports only escape control characters; decode the
                   BMP code point as UTF-8, enough to round-trip. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
            | c -> fail st (Printf.sprintf "bad escape '\\%c'" c));
            go ())
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.s in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail { st with pos = start } (Printf.sprintf "bad number '%s'" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value, found end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields_loop ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or '}' in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items_loop ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or ']' in array"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let line_col s pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min pos (String.length s) - 1 do
    if s.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    (match peek st with
    | Some c -> fail st (Printf.sprintf "trailing input starting at '%c'" c)
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
      let line, col = line_col s pos in
      Error (Printf.sprintf "%d:%d: %s" line col msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "truncated read"
  | contents -> parse contents

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
