(** Minimal JSON reader for the CLI subcommands that consume reports
    the toolchain itself wrote ({!Json_export}). Full JSON grammar, no
    streaming, no dependencies; errors carry a line:column position so
    the CLI can print ["file: message"] and exit instead of raising. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

(** [parse s] is the document in [s], or [Error msg] where [msg] starts
    with the ["line:col:"] position of the offending input. Trailing
    non-whitespace input is an error. *)
val parse : string -> (t, string) result

(** [parse_file path] reads and parses [path]; I/O failures become
    [Error] too. *)
val parse_file : string -> (t, string) result

(** [member name j] is field [name] of object [j], [None] when [j] is
    not an object or lacks the field. *)
val member : string -> t -> t option

(** Typed projections; [None] on shape mismatch. [to_num] accepts any
    number, [to_int] truncates. *)
val to_num : t -> float option

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
