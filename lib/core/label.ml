open Netcov_config
open Netcov_bdd

type result = {
  covered : Element.Id_set.t;
  strong : Element.Id_set.t;
  weak : Element.Id_set.t;
  vars : int;
  bdd_nodes : int;
  seconds : float;
}

(* Multi-source reverse DFS from the tested nodes along parent edges,
   never passing through a disjunctive node: every config node reached
   this way is necessarily strong. *)
let disjunction_free_strong g ~tested =
  let n = Ifg.n_nodes g in
  let visited = Array.make n false in
  let strong = ref Element.Id_set.empty in
  let rec go id =
    if not visited.(id) then begin
      visited.(id) <- true;
      if not (Ifg.is_disj g id) then begin
        (* do not cross disjunctive nodes *)
        (match Ifg.config_eid g id with
        | Some eid -> strong := Element.Id_set.add eid !strong
        | None -> ());
        Ifg.iter_parents g id go
      end
    end
  in
  List.iter go tested;
  !strong

(* Ancestor cone of one node, in reverse-DFS discovery order. *)
let cone g root =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      order := id :: !order;
      Ifg.iter_parents g id go
    end
  in
  go root;
  (seen, List.rev !order)

(* Upper bound on BDD variables per cone; beyond it we conservatively
   leave the remaining candidates weak (sound for strong-labeling: weak
   is the safe default) and log. *)
let max_cone_vars = 8192

let src = Logs.Src.create "netcov.label" ~doc:"strong/weak labeling"

module Log = (val Logs.src_log src : Logs.LOG)

module M = Netcov_obs.Metrics
module T = Netcov_obs.Trace

(* Labeling metrics (docs/OBSERVABILITY.md). BDD apply-cache counters
   are flushed here per cone as deltas of the arena's cumulative
   counters, so the BDD hot path keeps its local counters only. *)
let m_runs = M.counter M.default ~help:"labeling passes" ~unit_:"runs" "label.runs"

let m_seconds =
  M.histogram M.default ~help:"wall time of one labeling pass"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "label.seconds"

let m_cones =
  M.counter M.default ~help:"BDD cones labeled (tainted tested facts)"
    ~unit_:"cones" "label.cones"

let m_cone_vars =
  M.histogram M.default ~help:"BDD variables per cone" ~unit_:"variables"
    ~buckets:M.size_buckets "label.cone_vars"

let m_bdd_nodes =
  M.histogram M.default ~help:"BDD arena nodes after labeling a cone"
    ~unit_:"nodes" ~buckets:M.size_buckets "bdd.nodes"

let m_bdd_hits =
  M.counter M.default ~help:"BDD apply-cache hits" ~unit_:"lookups"
    "bdd.cache.hits"

let m_bdd_misses =
  M.counter M.default ~help:"BDD apply-cache misses" ~unit_:"lookups"
    "bdd.cache.misses"

let m_gamma_hits =
  M.counter M.default
    ~help:"gamma-memo hits while translating IFG cones to BDDs"
    ~unit_:"lookups" "bdd.gamma.hits"

let m_gamma_misses =
  M.counter M.default
    ~help:"gamma-memo misses (IFG nodes translated to BDD)"
    ~unit_:"lookups" "bdd.gamma.misses"

let m_arena_nodes =
  M.gauge M.default
    ~help:"node count of the most recently used per-domain BDD arena"
    ~unit_:"nodes" "bdd.arena.nodes"

let m_arena_trims =
  M.counter M.default
    ~help:"per-domain BDD arena trims (watermark or explicit)"
    ~unit_:"trims" "bdd.arena.trims"

(* -------------------------------------------------------------------- *)
(* Per-domain BDD arena                                                  *)
(* -------------------------------------------------------------------- *)

(* One persistent hash-consed node store per worker domain, reused
   across cones, labeling passes and suites, instead of a throwaway
   manager per cone. Domain-local (Domain.DLS, same pattern as the
   pool's slot key), so there is no locking on the BDD hot path.

   [a_gamma] is the cross-cone gamma memo: IFG node id -> the BDD of
   the node's derivability predicate as first translated by some cone
   of the current pass, keyed under the owning pass's context stamp
   (below), together with the variable index the owning cone assigned
   to the node. Variable numbering is strictly per-cone (see
   [label_one_shared] for why a pass-global numbering is ruled out),
   so an entry is only reused after validating that the borrowing
   cone's numbering agrees with the owner's over the node's entire
   ancestry — exact reuse, never a heuristic.

   All per-cone state lives in graph-indexed scratch arrays stamped
   per traversal, not in per-cone hash tables: on the labeling hot
   path every lookup is an array read plus a stamp compare, and a cone
   costs zero allocation beyond the BDD nodes it actually creates.
   The cross-cone memo itself is array-backed too, validated by the
   owning pass's context stamp, so entries of finished passes are
   simply never read again — there is no memo to grow or clear.

   Lifecycle: no BDD handle ever crosses a pool-task boundary (cone
   tasks return element-id sets), so the arena may be trimmed whenever
   no task is mid-flight on this domain. Each labeling task checks the
   watermark at entry — before it takes any handle — and resets the
   manager when the node store has outgrown it, bounding the
   per-domain footprint instead of growing monotonically. A trim
   recycles node ids, so it also invalidates the memo arrays (stale
   ids under a still-live context stamp must not be read back). *)
type arena = {
  a_mgr : Bdd.manager;
  (* scratch, indexed by IFG node id; a slot is live only when its
     stamp cell matches the current traversal stamp *)
  mutable a_seen : int array;  (* cone-membership DFS stamp *)
  mutable a_tstamp : int array;  (* translation stamp *)
  mutable a_var : int array;  (* cone-local var of nid, under a_tstamp *)
  mutable a_bdd : Bdd.node array;  (* private gamma, under a_tstamp *)
  mutable a_ok : bool array;  (* gamma validated/shareable, under a_tstamp *)
  (* cross-cone memo, live while a_gctx matches the pass context *)
  mutable a_gctx : int array;
  mutable a_gvar : int array;
  mutable a_gbdd : Bdd.node array;
  mutable a_stamp : int;
}

(* Arena apply-cache size: the cross-cone working set of a pass is far
   larger than the arena's node count (hash-consing means one node
   participates in many distinct apply pairs), so the node-proportional
   default thrashes — worse, a gamma-memo hit hands a cone a borrowed
   BDD whose internal apply subresults the borrower never computed, so
   the cone's top-level product applies re-expand from scratch unless
   those pairs survive in the shared cache (fattree-k12 measured 91M
   apply lookups at 2^18 entries vs 79K at 2^21). Two 16 MiB arrays
   per domain, preserved across trims. *)
let arena_cache_size = 1 lsl 21

let arena_key =
  Domain.DLS.new_key (fun () ->
      {
        a_mgr = Bdd.create ~cache_size:arena_cache_size ();
        a_seen = [||];
        a_tstamp = [||];
        a_var = [||];
        a_bdd = [||];
        a_ok = [||];
        a_gctx = [||];
        a_gvar = [||];
        a_gbdd = [||];
        a_stamp = 0;
      })

(* Grow the scratch to cover [n] IFG nodes. Fresh stamp cells start at
   0 / -1, which no live stamp ever equals, so old arrays need no
   copying. *)
let ensure_scratch a n =
  if Array.length a.a_seen < n then begin
    let zero = Bdd.bdd_false a.a_mgr in
    a.a_seen <- Array.make n 0;
    a.a_tstamp <- Array.make n 0;
    a.a_var <- Array.make n (-1);
    a.a_bdd <- Array.make n zero;
    a.a_ok <- Array.make n false;
    a.a_gctx <- Array.make n (-1);
    a.a_gvar <- Array.make n (-1);
    a.a_gbdd <- Array.make n zero
  end

(* Default: ~1M nodes per domain. Three 8 MiB node arrays plus the
   unique table and apply cache — tens of MiB per domain, far below
   the GiB-scale peak of per-cone managers on fattree-k16. *)
let default_watermark = 1 lsl 20
let arena_watermark = Atomic.make default_watermark

let set_arena_watermark n =
  if n < 2 then invalid_arg "Label.set_arena_watermark";
  Atomic.set arena_watermark n

let do_trim a =
  Bdd.reset a.a_mgr;
  (* node ids recycle across a reset: entries of still-live passes
     must not resolve to recycled ids *)
  Array.fill a.a_gctx 0 (Array.length a.a_gctx) (-1);
  M.inc m_arena_trims 1

(* Fetch this domain's arena, trimming first if it is over the
   watermark. Only called at task entry, when no handle is live. *)
let get_arena () =
  let a = Domain.DLS.get arena_key in
  if Bdd.node_count a.a_mgr > Atomic.get arena_watermark then do_trim a;
  a

let trim_arena () =
  let a = Domain.DLS.get arena_key in
  if Bdd.node_count a.a_mgr > 2 then do_trim a;
  M.set m_arena_nodes (float_of_int (Bdd.node_count a.a_mgr))

let arena_node_count () =
  Bdd.node_count (Domain.DLS.get arena_key).a_mgr

(* Context stamp, one per labeling pass. Gamma BDDs are only shareable
   within a pass (the candidate set is per-pass), so memo slots carry
   the stamp of the pass that wrote them; entries of finished passes
   are never read again. Stamps also isolate passes that interleave on
   one domain when suite-level tasks nest — an interleaved pass evicts
   slot by slot, costing misses, never wrong reuse. *)
let ctx_counter = Atomic.make 0

type cone_result = {
  c_covered : Element.Id_set.t;
  c_strong : Element.Id_set.t;
  c_vars : int;
  c_bdd_nodes : int;
  c_capped : bool;
}

(* Flush the arena's apply-cache counter movement of one cone into the
   global metrics and report the arena size. *)
let flush_bdd_metrics m (before : Bdd.cache_stats) =
  let after = Bdd.cache_stats m in
  M.inc m_bdd_hits (after.Bdd.hits - before.Bdd.hits);
  M.inc m_bdd_misses (after.Bdd.misses - before.Bdd.misses);
  M.observe m_bdd_nodes (float_of_int (Bdd.node_count m));
  M.set m_arena_nodes (float_of_int (Bdd.node_count m))

(* Isolated labeling of one tested fact's cone, independent of every
   other cone: the candidate set is the cone's config nodes minus the
   root's own disjunction-free strong set (not the global union over
   all roots). For monotone cone predicates, necessity of a variable is
   invariant under fixing other variables to true, so the union of
   isolated per-cone results equals the global [run] result — this is
   what makes per-cone results cacheable across incremental updates
   (lib/incr), where the set of sibling cones changes between runs.
   The only divergence window is [max_cone_vars]: isolated candidate
   sets are supersets of the global ones, so a cone whose config count
   exceeds the cap could cap differently; [c_capped] reports it and
   callers must fall back to {!run}.

   The per-root candidate set means gamma BDDs are not shareable
   across roots; what is shared with other passes on this domain is
   the arena manager itself — hash-consed nodes and a warm apply
   cache, no per-cone allocation (stale cache entries stay valid:
   nodes are immutable until a trim, which flushes the cache). *)
let run_cone g ~root =
  T.with_span "label.cone" @@ fun () ->
  M.inc m_cones 1;
  let pre_strong = disjunction_free_strong g ~tested:[ root ] in
  let _, order = cone g root in
  let covered = ref Element.Id_set.empty in
  let candidate = Hashtbl.create 64 in
  List.iter
    (fun nid ->
      match Ifg.config_eid g nid with
      | Some eid ->
          covered := Element.Id_set.add eid !covered;
          if not (Element.Id_set.mem eid pre_strong) then
            Hashtbl.replace candidate nid eid
      | None -> ())
    order;
  let capped = Hashtbl.length candidate > max_cone_vars in
  let var_of_node = Hashtbl.create 64 in
  let eid_of_var = Hashtbl.create 64 in
  let n_vars = ref 0 in
  List.iter
    (fun nid ->
      if Hashtbl.mem candidate nid && !n_vars < max_cone_vars then begin
        Hashtbl.replace var_of_node nid !n_vars;
        Hashtbl.replace eid_of_var !n_vars (Hashtbl.find candidate nid);
        incr n_vars
      end)
    order;
  M.observe m_cone_vars (float_of_int !n_vars);
  let strong, bdd_nodes =
    if !n_vars = 0 then (pre_strong, 0)
    else begin
      let a = get_arena () in
      let m = a.a_mgr in
      let before = Bdd.cache_stats m in
      let gamma = Hashtbl.create 256 in
      let rec compute id =
        match Hashtbl.find_opt gamma id with
        | Some b -> b
        | None ->
            Hashtbl.replace gamma id (Bdd.bdd_true m);
            let b =
              if Ifg.is_disj g id then
                Ifg.fold_parents g id
                  (fun acc p -> Bdd.bdd_or m acc (compute p))
                  (Bdd.bdd_false m)
              else
                let self =
                  match Hashtbl.find_opt var_of_node id with
                  | Some v -> Bdd.var m v
                  | None -> Bdd.bdd_true m
                in
                Ifg.fold_parents g id
                  (fun acc p -> Bdd.bdd_and m acc (compute p))
                  self
            in
            Hashtbl.replace gamma id b;
            b
      in
      let b = compute root in
      let cone_strong = ref pre_strong in
      List.iter
        (fun v ->
          match Hashtbl.find_opt eid_of_var v with
          | Some eid -> cone_strong := Element.Id_set.add eid !cone_strong
          | None -> ())
        (Bdd.essential_vars m b);
      flush_bdd_metrics m before;
      (!cone_strong, Bdd.node_count m)
    end
  in
  {
    c_covered = !covered;
    c_strong = strong;
    c_vars = !n_vars;
    c_bdd_nodes = bdd_nodes;
    c_capped = capped;
  }

(* -------------------------------------------------------------------- *)
(* Global labeling pass                                                  *)
(* -------------------------------------------------------------------- *)

(* Legacy fresh-per-cone labeling of one cone: private manager, private
   cone-discovery variable numbering, restrict-based necessity over the
   support. This is the differential reference for the arena engine
   (the `label-arena` oracle and @bench-label-smoke compare against it)
   and the exact-compatibility path for capped cones, whose "first
   [max_cone_vars] candidates in cone-discovery order" subset depends
   on the per-cone numbering. *)
let label_one_fresh ~g ~candidate ~order =
  (* var assignment local to this cone *)
  let var_of_node = Hashtbl.create 64 in
  let eid_of_var = Hashtbl.create 64 in
  let n_vars = ref 0 in
  List.iter
    (fun nid ->
      match Hashtbl.find_opt candidate nid with
      | Some eid when !n_vars < max_cone_vars ->
          Hashtbl.replace var_of_node nid !n_vars;
          Hashtbl.replace eid_of_var !n_vars eid;
          incr n_vars
      | Some _ ->
          Log.warn (fun m ->
              m "cone of tested fact exceeds %d variables; leaving \
                 remainder weak"
                max_cone_vars)
      | None -> ())
    order;
  M.observe m_cone_vars (float_of_int !n_vars);
  if !n_vars = 0 then (Element.Id_set.empty, 0, 0)
  else begin
    let m = Bdd.create () in
    let gamma = Hashtbl.create 256 in
    let rec compute id =
      match Hashtbl.find_opt gamma id with
      | Some b -> b
      | None ->
          (* mark before recursing: a back edge (impossible in a
             well-formed IFG) contributes true *)
          Hashtbl.replace gamma id (Bdd.bdd_true m);
          let b =
            if Ifg.is_disj g id then
              Ifg.fold_parents g id
                (fun acc p -> Bdd.bdd_or m acc (compute p))
                (Bdd.bdd_false m)
            else
              let self =
                match Hashtbl.find_opt var_of_node id with
                | Some v -> Bdd.var m v
                | None -> Bdd.bdd_true m
              in
              Ifg.fold_parents g id
                (fun acc p -> Bdd.bdd_and m acc (compute p))
                self
          in
          Hashtbl.replace gamma id b;
          b
    in
    let b = compute (List.hd order) in
    let cone_strong = ref Element.Id_set.empty in
    List.iter
      (fun v ->
        if Bdd.is_necessary m b ~var:v then
          match Hashtbl.find_opt eid_of_var v with
          | Some eid -> cone_strong := Element.Id_set.add eid !cone_strong
          | None -> ())
      (Bdd.support m b);
    let cs = Bdd.cache_stats m in
    M.inc m_bdd_hits cs.Bdd.hits;
    M.inc m_bdd_misses cs.Bdd.misses;
    M.observe m_bdd_nodes (float_of_int (Bdd.node_count m));
    (!cone_strong, !n_vars, Bdd.node_count m)
  end

(* Shared-arena labeling of one cone.

   Variable numbering is per-cone, in cone-discovery order — exactly
   the fresh engine's numbering. A pass-global numbering was tried and
   ruled out: it scatters the variables of a later cone's contribution
   chains across the order established by earlier cones, and BDDs of
   nested disjunction-of-chain predicates (ECMP fabrics, iBGP meshes)
   are exponential under such interleavings. Only the cone's own
   discovery order is known to keep them linear, so every cone keeps
   its own order and the cross-cone memo must prove order agreement
   before reuse.

   The proof is the [ok] flag threaded through [compute]: a shared
   entry for node [n] is reusable iff its recorded variable index
   equals this cone's index for [n] and every parent recursively
   validated. Entries are only ever written with all-validated
   ancestry, so a validated entry's BDD is definitionally the node the
   borrowing cone would have hash-consed itself — reuse is exact, and
   the per-cone results (hence reports) stay byte-identical to the
   fresh engine at any domain count. Validation walks the ancestry
   with integer comparisons only; what a hit saves is the BDD apply
   work, which dominates translation.

   What is always shared, even when validation fails: the arena
   manager itself — hash-consed nodes (structurally identical BDDs of
   symmetric cones collapse to the same node ids) and a warm apply
   cache, with none of the per-cone allocate/collect churn of fresh
   managers. *)

let label_one_shared ~a ~g ~ctx ~candidate ~n_vars t =
  let m = a.a_mgr in
  let before = Bdd.cache_stats m in
  let eid_of_var = Array.make n_vars (-1) in
  let nv = ref 0 in
  let hits = ref 0 and misses = ref 0 in
  a.a_stamp <- a.a_stamp + 1;
  let stamp = a.a_stamp in
  let tstamp = a.a_tstamp
  and avar = a.a_var
  and abdd = a.a_bdd
  and aok = a.a_ok
  and gctx = a.a_gctx
  and gvar = a.a_gvar
  and gbdd = a.a_gbdd in
  (* One pre-order recursion does numbering and translation: a node's
     cone-local variable is assigned at first visit, before its
     parents are entered — the same order in which the fresh engine's
     discovery list hands out variables, so the numbering (and with it
     every BDD) is identical to [label_one_fresh]'s. Back edges
     (impossible in a well-formed IFG) read the in-progress marker
     (true, unvalidated) and stay out of the shared memo. *)
  let rec compute id =
    if tstamp.(id) = stamp then (abdd.(id), aok.(id))
    else begin
      tstamp.(id) <- stamp;
      abdd.(id) <- Bdd.bdd_true m;
      aok.(id) <- false;
      let vself =
        match Hashtbl.find_opt candidate id with
        | Some eid ->
            let v = !nv in
            eid_of_var.(v) <- eid;
            incr nv;
            v
        | None -> -1
      in
      avar.(id) <- vself;
      let parents_ok =
        Ifg.fold_parents g id (fun acc p -> snd (compute p) && acc) true
      in
      let b, ok =
        if parents_ok && gctx.(id) = ctx && gvar.(id) = vself then begin
          incr hits;
          (gbdd.(id), true)
        end
        else begin
          incr misses;
          let b =
            if Ifg.is_disj g id then
              Ifg.fold_parents g id
                (fun acc p -> Bdd.bdd_or m acc (fst (compute p)))
                (Bdd.bdd_false m)
            else
              let self =
                if vself >= 0 then Bdd.var m vself else Bdd.bdd_true m
              in
              Ifg.fold_parents g id
                (fun acc p -> Bdd.bdd_and m acc (fst (compute p)))
                self
          in
          let ok =
            parents_ok && gctx.(id) <> ctx
            && begin
                 gctx.(id) <- ctx;
                 gvar.(id) <- vself;
                 gbdd.(id) <- b;
                 true
               end
          in
          (b, ok)
        end
      in
      abdd.(id) <- b;
      aok.(id) <- ok;
      (b, ok)
    end
  in
  let b = fst (compute t) in
  let cone_strong = ref Element.Id_set.empty in
  List.iter
    (fun v -> cone_strong := Element.Id_set.add eid_of_var.(v) !cone_strong)
    (Bdd.essential_vars m b);
  M.inc m_gamma_hits !hits;
  M.inc m_gamma_misses !misses;
  flush_bdd_metrics m before;
  (!cone_strong, n_vars, Bdd.node_count m)

let run ?(disjfree_heuristic = true) ?(arena = true)
    ?(pool = Netcov_parallel.Pool.sequential) g ~tested =
  T.with_span "label" ~args:[ ("tested", T.I (List.length tested)) ]
  @@ fun () ->
  let t0 = Timing.now () in
  let pre_strong =
    if disjfree_heuristic then disjunction_free_strong g ~tested
    else Element.Id_set.empty
  in
  let config = Ifg.config_nodes g in
  let covered =
    List.fold_left
      (fun s (_, eid) -> Element.Id_set.add eid s)
      Element.Id_set.empty config
  in
  (* Element ids of config nodes that still need a strong/weak verdict. *)
  let candidate = Hashtbl.create 256 in
  List.iter
    (fun (nid, eid) ->
      if not (Element.Id_set.mem eid pre_strong) then
        Hashtbl.replace candidate nid eid)
    config;
  let strong = ref pre_strong in
  let total_vars = ref 0 in
  let bdd_nodes = ref 0 in
  if Hashtbl.length candidate > 0 then begin
    (* Forward closure of the candidate nodes: only tested facts inside
       it have any variable in their cone; the rest are skipped without
       traversal. *)
    let tainted = Array.make (Ifg.n_nodes g) false in
    let rec taint id =
      if not tainted.(id) then begin
        tainted.(id) <- true;
        Ifg.iter_children g id taint
      end
    in
    Hashtbl.iter (fun nid _ -> taint nid) candidate;
    let ctx = Atomic.fetch_and_add ctx_counter 1 in
    (* Predicates are built per tested fact over its ancestor cone.
       Cones are mutually independent given the shared per-domain
       arena — the graph, [candidate] and [tainted] are only read
       from here on — so they fan out over the pool, one task per
       cone (work-stealing keeps every domain busy until the last
       cone finishes). The per-cone merge below is a set union / max
       fold, order independent, so the merged result is identical at
       any domain count; and the arena engine's per-cone strong sets
       equal the fresh engine's (see [label_one_shared]), so it is
       also identical across engines. *)
    let label_one t =
      T.with_span "label.cone" @@ fun () ->
      M.inc m_cones 1;
      if not arena then begin
        let _, order = cone g t in
        label_one_fresh ~g ~candidate ~order
      end
      else begin
        let a = get_arena () in
        ensure_scratch a (Ifg.n_nodes g);
        (* allocation-free candidate count of the cone (cap check) *)
        a.a_stamp <- a.a_stamp + 1;
        let stamp = a.a_stamp in
        let seen = a.a_seen in
        let n_vars = ref 0 in
        let rec count id =
          if seen.(id) <> stamp then begin
            seen.(id) <- stamp;
            if Hashtbl.mem candidate id then incr n_vars;
            Ifg.iter_parents g id count
          end
        in
        count t;
        let n_vars = !n_vars in
        if n_vars > max_cone_vars then begin
          (* The cap subset ("first max_cone_vars candidates in
             cone-discovery order") keeps its exact legacy semantics
             on the fresh path. *)
          let _, order = cone g t in
          label_one_fresh ~g ~candidate ~order
        end
        else begin
          M.observe m_cone_vars (float_of_int n_vars);
          if n_vars = 0 then (Element.Id_set.empty, 0, 0)
          else label_one_shared ~a ~g ~ctx ~candidate ~n_vars t
        end
      end
    in
    let work = List.filter (fun t -> tainted.(t)) tested in
    Netcov_parallel.Pool.map pool label_one work
    |> List.iter (fun (s, v, n) ->
           strong := Element.Id_set.union !strong s;
           total_vars := max !total_vars v;
           bdd_nodes := max !bdd_nodes n)
  end;
  let weak = Element.Id_set.diff covered !strong in
  let seconds = Timing.now () -. t0 in
  M.inc m_runs 1;
  M.observe m_seconds seconds;
  {
    covered;
    strong = Element.Id_set.inter !strong covered;
    weak;
    vars = !total_vars;
    bdd_nodes = !bdd_nodes;
    seconds;
  }
