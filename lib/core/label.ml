open Netcov_config
open Netcov_bdd

type result = {
  covered : Element.Id_set.t;
  strong : Element.Id_set.t;
  weak : Element.Id_set.t;
  vars : int;
  bdd_nodes : int;
  seconds : float;
}

(* Multi-source reverse DFS from the tested nodes along parent edges,
   never passing through a disjunctive node: every config node reached
   this way is necessarily strong. *)
let disjunction_free_strong g ~tested =
  let n = Ifg.n_nodes g in
  let visited = Array.make n false in
  let strong = ref Element.Id_set.empty in
  let rec go id =
    if not visited.(id) then begin
      visited.(id) <- true;
      if not (Ifg.is_disj g id) then begin
        (* do not cross disjunctive nodes *)
        (match Ifg.config_eid g id with
        | Some eid -> strong := Element.Id_set.add eid !strong
        | None -> ());
        Ifg.iter_parents g id go
      end
    end
  in
  List.iter go tested;
  !strong

(* Ancestor cone of one node, in reverse-DFS discovery order. *)
let cone g root =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      order := id :: !order;
      Ifg.iter_parents g id go
    end
  in
  go root;
  (seen, List.rev !order)

(* Upper bound on BDD variables per cone; beyond it we conservatively
   leave the remaining candidates weak (sound for strong-labeling: weak
   is the safe default) and log. *)
let max_cone_vars = 8192

let src = Logs.Src.create "netcov.label" ~doc:"strong/weak labeling"

module Log = (val Logs.src_log src : Logs.LOG)

module M = Netcov_obs.Metrics
module T = Netcov_obs.Trace

(* Labeling metrics (docs/OBSERVABILITY.md). BDD apply-cache counters are
   flushed here in bulk from each cone's manager, so the BDD hot path
   keeps its local counters only. *)
let m_runs = M.counter M.default ~help:"labeling passes" ~unit_:"runs" "label.runs"

let m_seconds =
  M.histogram M.default ~help:"wall time of one labeling pass"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "label.seconds"

let m_cones =
  M.counter M.default ~help:"BDD cones labeled (tainted tested facts)"
    ~unit_:"cones" "label.cones"

let m_cone_vars =
  M.histogram M.default ~help:"BDD variables per cone" ~unit_:"variables"
    ~buckets:M.size_buckets "label.cone_vars"

let m_bdd_nodes =
  M.histogram M.default ~help:"BDD nodes allocated per cone" ~unit_:"nodes"
    ~buckets:M.size_buckets "bdd.nodes"

let m_bdd_hits =
  M.counter M.default ~help:"BDD apply-cache hits" ~unit_:"lookups"
    "bdd.cache.hits"

let m_bdd_misses =
  M.counter M.default ~help:"BDD apply-cache misses" ~unit_:"lookups"
    "bdd.cache.misses"

type cone_result = {
  c_covered : Element.Id_set.t;
  c_strong : Element.Id_set.t;
  c_vars : int;
  c_bdd_nodes : int;
  c_capped : bool;
}

(* Isolated labeling of one tested fact's cone, independent of every
   other cone: the candidate set is the cone's config nodes minus the
   root's own disjunction-free strong set (not the global union over
   all roots). For monotone cone predicates, necessity of a variable is
   invariant under fixing other variables to true, so the union of
   isolated per-cone results equals the global [run] result — this is
   what makes per-cone results cacheable across incremental updates
   (lib/incr), where the set of sibling cones changes between runs.
   The only divergence window is [max_cone_vars]: isolated candidate
   sets are supersets of the global ones, so a cone whose config count
   exceeds the cap could cap differently; [c_capped] reports it and
   callers must fall back to {!run}. *)
let run_cone g ~root =
  T.with_span "label.cone" @@ fun () ->
  M.inc m_cones 1;
  let pre_strong = disjunction_free_strong g ~tested:[ root ] in
  let _, order = cone g root in
  let covered = ref Element.Id_set.empty in
  let candidate = Hashtbl.create 64 in
  List.iter
    (fun nid ->
      match Ifg.config_eid g nid with
      | Some eid ->
          covered := Element.Id_set.add eid !covered;
          if not (Element.Id_set.mem eid pre_strong) then
            Hashtbl.replace candidate nid eid
      | None -> ())
    order;
  let capped = Hashtbl.length candidate > max_cone_vars in
  let var_of_node = Hashtbl.create 64 in
  let eid_of_var = Hashtbl.create 64 in
  let n_vars = ref 0 in
  List.iter
    (fun nid ->
      if Hashtbl.mem candidate nid && !n_vars < max_cone_vars then begin
        Hashtbl.replace var_of_node nid !n_vars;
        Hashtbl.replace eid_of_var !n_vars (Hashtbl.find candidate nid);
        incr n_vars
      end)
    order;
  M.observe m_cone_vars (float_of_int !n_vars);
  let strong, bdd_nodes =
    if !n_vars = 0 then (pre_strong, 0)
    else begin
      let m = Bdd.create () in
      let gamma = Hashtbl.create 256 in
      let rec compute id =
        match Hashtbl.find_opt gamma id with
        | Some b -> b
        | None ->
            Hashtbl.replace gamma id (Bdd.bdd_true m);
            let b =
              if Ifg.is_disj g id then
                Ifg.fold_parents g id
                  (fun acc p -> Bdd.bdd_or m acc (compute p))
                  (Bdd.bdd_false m)
              else
                let self =
                  match Hashtbl.find_opt var_of_node id with
                  | Some v -> Bdd.var m v
                  | None -> Bdd.bdd_true m
                in
                Ifg.fold_parents g id
                  (fun acc p -> Bdd.bdd_and m acc (compute p))
                  self
            in
            Hashtbl.replace gamma id b;
            b
      in
      let b = compute root in
      let cone_strong = ref pre_strong in
      List.iter
        (fun v ->
          if Bdd.is_necessary m b ~var:v then
            match Hashtbl.find_opt eid_of_var v with
            | Some eid -> cone_strong := Element.Id_set.add eid !cone_strong
            | None -> ())
        (Bdd.support m b);
      let cs = Bdd.cache_stats m in
      M.inc m_bdd_hits cs.Bdd.hits;
      M.inc m_bdd_misses cs.Bdd.misses;
      M.observe m_bdd_nodes (float_of_int (Bdd.node_count m));
      (!cone_strong, Bdd.node_count m)
    end
  in
  {
    c_covered = !covered;
    c_strong = strong;
    c_vars = !n_vars;
    c_bdd_nodes = bdd_nodes;
    c_capped = capped;
  }

let run ?(disjfree_heuristic = true) ?(pool = Netcov_parallel.Pool.sequential)
    g ~tested =
  T.with_span "label" ~args:[ ("tested", T.I (List.length tested)) ]
  @@ fun () ->
  let t0 = Timing.now () in
  let pre_strong =
    if disjfree_heuristic then disjunction_free_strong g ~tested
    else Element.Id_set.empty
  in
  let config = Ifg.config_nodes g in
  let covered =
    List.fold_left
      (fun s (_, eid) -> Element.Id_set.add eid s)
      Element.Id_set.empty config
  in
  (* Element ids of config nodes that still need a strong/weak verdict. *)
  let candidate = Hashtbl.create 256 in
  List.iter
    (fun (nid, eid) ->
      if not (Element.Id_set.mem eid pre_strong) then
        Hashtbl.replace candidate nid eid)
    config;
  let strong = ref pre_strong in
  let total_vars = ref 0 in
  let bdd_nodes = ref 0 in
  if Hashtbl.length candidate > 0 then begin
    (* Forward closure of the candidate nodes: only tested facts inside
       it have any variable in their cone; the rest are skipped without
       traversal. *)
    let tainted = Array.make (Ifg.n_nodes g) false in
    let rec taint id =
      if not tainted.(id) then begin
        tainted.(id) <- true;
        Ifg.iter_children g id taint
      end
    in
    Hashtbl.iter (fun nid _ -> taint nid) candidate;
    (* Predicates are built per tested fact over its ancestor cone, with
       BDD variables numbered in cone-discovery order so that each
       contribution chain occupies adjacent levels — this keeps the
       BDDs of OR-of-chain predicates (aggregates, ECMP) small.

       Cones are mutually independent — each gets its own BDD manager
       and variable numbering — so they fan out over the pool (the
       graph, [candidate] and [tainted] are only read from here on).
       The per-cone strong sets merge by set union, which is order
       independent, so the merged result is identical at any domain
       count. *)
    let label_one t =
      T.with_span "label.cone" @@ fun () ->
      M.inc m_cones 1;
      let in_cone, order = cone g t in
      ignore in_cone;
      (* var assignment local to this cone *)
      let var_of_node = Hashtbl.create 64 in
      let eid_of_var = Hashtbl.create 64 in
      let n_vars = ref 0 in
      List.iter
        (fun nid ->
          match Hashtbl.find_opt candidate nid with
          | Some eid when !n_vars < max_cone_vars ->
              Hashtbl.replace var_of_node nid !n_vars;
              Hashtbl.replace eid_of_var !n_vars eid;
              incr n_vars
          | Some _ ->
              Log.warn (fun m ->
                  m "cone of tested fact exceeds %d variables; leaving \
                     remainder weak"
                    max_cone_vars)
          | None -> ())
        order;
      M.observe m_cone_vars (float_of_int !n_vars);
      if !n_vars = 0 then (Element.Id_set.empty, 0, 0)
      else begin
        let m = Bdd.create () in
        let gamma = Hashtbl.create 256 in
        let rec compute id =
          match Hashtbl.find_opt gamma id with
          | Some b -> b
          | None ->
              (* mark before recursing: a back edge (impossible in a
                 well-formed IFG) contributes true *)
              Hashtbl.replace gamma id (Bdd.bdd_true m);
              let b =
                if Ifg.is_disj g id then
                  Ifg.fold_parents g id
                    (fun acc p -> Bdd.bdd_or m acc (compute p))
                    (Bdd.bdd_false m)
                else
                  let self =
                    match Hashtbl.find_opt var_of_node id with
                    | Some v -> Bdd.var m v
                    | None -> Bdd.bdd_true m
                  in
                  Ifg.fold_parents g id
                    (fun acc p -> Bdd.bdd_and m acc (compute p))
                    self
              in
              Hashtbl.replace gamma id b;
              b
        in
        let b = compute t in
        let cone_strong = ref Element.Id_set.empty in
        List.iter
          (fun v ->
            if Bdd.is_necessary m b ~var:v then
              match Hashtbl.find_opt eid_of_var v with
              | Some eid -> cone_strong := Element.Id_set.add eid !cone_strong
              | None -> ())
          (Bdd.support m b);
        let cs = Bdd.cache_stats m in
        M.inc m_bdd_hits cs.Bdd.hits;
        M.inc m_bdd_misses cs.Bdd.misses;
        M.observe m_bdd_nodes (float_of_int (Bdd.node_count m));
        (!cone_strong, !n_vars, Bdd.node_count m)
      end
    in
    let work = List.filter (fun t -> tainted.(t)) tested in
    (* One pool task per cone. Static chunking (the previous scheme,
       4 chunks per domain) serialized every cone of a chunk behind
       its slowest sibling, so one deep cone pinned a domain while the
       rest idled; with per-cone tasks the work-stealing deques keep
       every domain busy until the last cone finishes. The per-cone
       merge below is a set union / max fold, order independent, so
       coverage stays byte-identical at any domain count. *)
    Netcov_parallel.Pool.map pool label_one work
    |> List.iter (fun (s, v, n) ->
           strong := Element.Id_set.union !strong s;
           total_vars := max !total_vars v;
           bdd_nodes := max !bdd_nodes n)
  end;
  let weak = Element.Id_set.diff covered !strong in
  let seconds = Timing.now () -. t0 in
  M.inc m_runs 1;
  M.observe m_seconds seconds;
  {
    covered;
    strong = Element.Id_set.inter !strong covered;
    weak;
    vars = !total_vars;
    bdd_nodes = !bdd_nodes;
    seconds;
  }
