(* Dense-id IFG core. Node identity goes through the fact interner
   (one structural hash per add, no key strings); node attributes live
   in growable parallel arrays (bdd.ml style) and adjacency in a shared
   pool of int list-cells, so building the graph allocates no per-node
   records, hashtables or cons cells on the hot path.

   List orders are part of the coverage semantics (BDD variables are
   numbered in cone-discovery order): parent/children lists enumerate
   in reverse insertion order, exactly as the historical record-based
   representation did. *)

type node_id = int
type node_kind = N_fact of Fact.t | N_disj

(* A disjunctive node is identified by its target plus its parent-id
   set (sorted uniq), as the historical "disj:<target>:<ids>" string
   key did. *)
module Disj_tbl = Hashtbl.Make (struct
  type t = int * int list

  let equal (t1, p1) (t2, p2) = Int.equal t1 t2 && List.equal Int.equal p1 p2

  let hash (t, ps) =
    List.fold_left (fun h p -> (h * 31) + p + 1) t ps land max_int
end)

type t = {
  interner : Intern.t;
  (* per-node attributes; [next] slots live *)
  mutable fact_of_node : int array;  (* fact id, or -1 for disjunctive *)
  mutable expanded : bool array;
  mutable parents_head : int array;  (* first adjacency cell, or -1 *)
  mutable children_head : int array;
  mutable next : int;
  (* shared adjacency-cell pool: cell [i] links [cell_node.(i)] into
     some node's parent or child list, continuing at [cell_next.(i)] *)
  mutable cell_node : int array;
  mutable cell_next : int array;
  mutable cells : int;
  (* fact id -> node id (dense direct index), or -1 *)
  mutable node_of_fact : int array;
  (* packed (parent, child) pairs, for idempotent add_edge *)
  edge_set : (int, unit) Hashtbl.t;
  disj_tbl : node_id Disj_tbl.t;
  mutable edges : int;
}

let create ?mode () =
  {
    interner = Intern.create ?mode ();
    fact_of_node = Array.make 1024 (-1);
    expanded = Array.make 1024 false;
    parents_head = Array.make 1024 (-1);
    children_head = Array.make 1024 (-1);
    next = 0;
    cell_node = Array.make 4096 (-1);
    cell_next = Array.make 4096 (-1);
    cells = 0;
    node_of_fact = Array.make 1024 (-1);
    edge_set = Hashtbl.create 4096;
    disj_tbl = Disj_tbl.create 256;
    edges = 0;
  }

let interner g = g.interner

let grow_array ~fill a cap =
  let bigger = Array.make (2 * cap) fill in
  Array.blit a 0 bigger 0 cap;
  bigger

let grow_nodes g =
  let cap = Array.length g.fact_of_node in
  if g.next >= cap then begin
    g.fact_of_node <- grow_array ~fill:(-1) g.fact_of_node cap;
    g.expanded <- grow_array ~fill:false g.expanded cap;
    g.parents_head <- grow_array ~fill:(-1) g.parents_head cap;
    g.children_head <- grow_array ~fill:(-1) g.children_head cap
  end

let grow_cells g =
  let cap = Array.length g.cell_node in
  if g.cells >= cap then begin
    g.cell_node <- grow_array ~fill:(-1) g.cell_node cap;
    g.cell_next <- grow_array ~fill:(-1) g.cell_next cap
  end

let ensure_fact_slot g fid =
  let cap = Array.length g.node_of_fact in
  if fid >= cap then begin
    let bigger = Array.make (max (2 * cap) (fid + 1)) (-1) in
    Array.blit g.node_of_fact 0 bigger 0 cap;
    g.node_of_fact <- bigger
  end

let alloc g fid =
  grow_nodes g;
  let id = g.next in
  g.next <- id + 1;
  g.fact_of_node.(id) <- fid;
  id

let add_fact g f =
  let fid = Intern.intern g.interner f in
  ensure_fact_slot g fid;
  let id = g.node_of_fact.(fid) in
  if id >= 0 then (id, false)
  else begin
    let id = alloc g fid in
    g.node_of_fact.(fid) <- id;
    (id, true)
  end

let find g f =
  match Intern.find g.interner f with
  | None -> None
  | Some fid ->
      if fid < Array.length g.node_of_fact && g.node_of_fact.(fid) >= 0 then
        Some g.node_of_fact.(fid)
      else None

(* Node ids stay well under 2^31, so the pair packs injectively into
   one OCaml int. *)
let pack ~parent ~child = (parent lsl 31) lor child

let push_cell g head_arr owner v =
  grow_cells g;
  let c = g.cells in
  g.cells <- c + 1;
  g.cell_node.(c) <- v;
  g.cell_next.(c) <- head_arr.(owner);
  head_arr.(owner) <- c

let add_edge g ~parent ~child =
  let key = pack ~parent ~child in
  if not (Hashtbl.mem g.edge_set key) then begin
    Hashtbl.add g.edge_set key ();
    push_cell g g.parents_head child parent;
    push_cell g g.children_head parent child;
    g.edges <- g.edges + 1
  end

let add_disj g ~target parents =
  let parent_ids = List.map (fun f -> fst (add_fact g f)) parents in
  let key = (target, List.sort_uniq Int.compare parent_ids) in
  match Disj_tbl.find_opt g.disj_tbl key with
  | Some id -> id
  | None ->
      let id = alloc g (-1) in
      Disj_tbl.add g.disj_tbl key id;
      add_edge g ~parent:id ~child:target;
      List.iter (fun p -> add_edge g ~parent:p ~child:id) parent_ids;
      id

let is_disj g id = g.fact_of_node.(id) < 0

let kind g id =
  let fid = g.fact_of_node.(id) in
  if fid < 0 then N_disj else N_fact (Intern.fact g.interner fid)

let config_eid g id =
  let fid = g.fact_of_node.(id) in
  if fid < 0 then None else Fact.is_config (Intern.fact g.interner fid)

let iter_cells g head f =
  let c = ref head in
  while !c >= 0 do
    f g.cell_node.(!c);
    c := g.cell_next.(!c)
  done

let iter_parents g id f = iter_cells g g.parents_head.(id) f
let iter_children g id f = iter_cells g g.children_head.(id) f

let fold_parents g id f init =
  let acc = ref init in
  iter_parents g id (fun p -> acc := f !acc p);
  !acc

let collect g head =
  let acc = ref [] in
  iter_cells g head (fun n -> acc := n :: !acc);
  List.rev !acc

let parents g id = collect g g.parents_head.(id)
let children g id = collect g g.children_head.(id)
let n_nodes g = g.next
let n_edges g = g.edges

let iter_nodes g f =
  for i = 0 to g.next - 1 do
    f i (kind g i)
  done

let config_nodes g =
  let acc = ref [] in
  for id = g.next - 1 downto 0 do
    match config_eid g id with
    | Some eid -> acc := (id, eid) :: !acc
    | None -> ()
  done;
  !acc

let mark_expanded g id = g.expanded.(id) <- true
let is_expanded g id = g.expanded.(id)

(* Multi-source closure over one adjacency direction, as a flat bool
   array — an explicit int-list stack over the cell pool, no visited
   hashtable, no recursion. *)
let closure head_arr g seeds =
  let reached = Array.make g.next false in
  let stack = ref [] in
  List.iter
    (fun id ->
      if id >= 0 && id < g.next && not reached.(id) then begin
        reached.(id) <- true;
        stack := id :: !stack
      end)
    seeds;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        let c = ref head_arr.(id) in
        while !c >= 0 do
          let n = g.cell_node.(!c) in
          if not reached.(n) then begin
            reached.(n) <- true;
            stack := n :: !stack
          end;
          c := g.cell_next.(!c)
        done
  done;
  reached

let reachable g seeds = closure g.parents_head g seeds
let reverse_reachable g seeds = closure g.children_head g seeds
