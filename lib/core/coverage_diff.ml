open Netcov_config

type t = {
  gained : Element.Id_set.t;
  lost : Element.Id_set.t;
  strengthened : Element.Id_set.t;
  weakened : Element.Id_set.t;
}

let diff ~baseline current =
  let reg = Coverage.registry baseline in
  if Registry.n_elements reg <> Registry.n_elements (Coverage.registry current)
  then invalid_arg "Coverage_diff.diff: different registries";
  let gained = ref Element.Id_set.empty in
  let lost = ref Element.Id_set.empty in
  let strengthened = ref Element.Id_set.empty in
  let weakened = ref Element.Id_set.empty in
  Registry.iter_elements reg (fun e ->
      let id = e.Element.id in
      let add set = set := Element.Id_set.add id !set in
      match (Coverage.element_status baseline id, Coverage.element_status current id) with
      | Coverage.Not_covered, (Coverage.Weak | Coverage.Strong) -> add gained
      | (Coverage.Weak | Coverage.Strong), Coverage.Not_covered -> add lost
      | Coverage.Weak, Coverage.Strong -> add strengthened
      | Coverage.Strong, Coverage.Weak -> add weakened
      | Coverage.Not_covered, Coverage.Not_covered
      | Coverage.Weak, Coverage.Weak
      | Coverage.Strong, Coverage.Strong ->
          ());
  {
    gained = !gained;
    lost = !lost;
    strengthened = !strengthened;
    weakened = !weakened;
  }

type device_delta = {
  d_gained : Element.Id_set.t;
  d_lost : Element.Id_set.t;
  d_strengthened : Element.Id_set.t;
  d_weakened : Element.Id_set.t;
}

let empty_delta =
  {
    d_gained = Element.Id_set.empty;
    d_lost = Element.Id_set.empty;
    d_strengthened = Element.Id_set.empty;
    d_weakened = Element.Id_set.empty;
  }

(* Group a diff by owning device. Elements stay as interned ids
   throughout — the registry maps id -> device directly, no string keys
   are rebuilt or parsed. *)
let by_device reg d =
  let tbl = Hashtbl.create 32 in
  let get dev =
    match Hashtbl.find_opt tbl dev with
    | Some r -> r
    | None ->
        let r = ref empty_delta in
        Hashtbl.replace tbl dev r;
        r
  in
  let scatter set update =
    Element.Id_set.iter
      (fun id ->
        let e = Registry.element reg id in
        let r = get e.Element.device in
        r := update !r id)
      set
  in
  scatter d.gained (fun dd id ->
      { dd with d_gained = Element.Id_set.add id dd.d_gained });
  scatter d.lost (fun dd id ->
      { dd with d_lost = Element.Id_set.add id dd.d_lost });
  scatter d.strengthened (fun dd id ->
      { dd with d_strengthened = Element.Id_set.add id dd.d_strengthened });
  scatter d.weakened (fun dd id ->
      { dd with d_weakened = Element.Id_set.add id dd.d_weakened });
  Hashtbl.fold (fun dev r acc -> (dev, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let delta_is_empty dd =
  Element.Id_set.is_empty dd.d_gained
  && Element.Id_set.is_empty dd.d_lost
  && Element.Id_set.is_empty dd.d_strengthened
  && Element.Id_set.is_empty dd.d_weakened

let is_empty d =
  Element.Id_set.is_empty d.gained
  && Element.Id_set.is_empty d.lost
  && Element.Id_set.is_empty d.strengthened
  && Element.Id_set.is_empty d.weakened

let no_regression d =
  Element.Id_set.is_empty d.lost && Element.Id_set.is_empty d.weakened

let summary reg d =
  let buf = Buffer.create 512 in
  let section title set =
    let n = Element.Id_set.cardinal set in
    if n > 0 then begin
      Buffer.add_string buf (Printf.sprintf "%s: %d element(s)\n" title n);
      Element.Id_set.elements set
      |> List.filteri (fun i _ -> i < 5)
      |> List.iter (fun id ->
             let e = Registry.element reg id in
             Buffer.add_string buf
               (Printf.sprintf "  %s:%s (%s)\n" e.Element.device
                  (Element.name_of e)
                  (Element.etype_to_string (Element.etype_of e))))
    end
  in
  section "newly covered" d.gained;
  section "coverage lost" d.lost;
  section "strengthened (weak -> strong)" d.strengthened;
  section "weakened (strong -> weak)" d.weakened;
  if is_empty d then Buffer.add_string buf "coverage unchanged\n";
  Buffer.contents buf
