open Netcov_config
open Netcov_sim
module Pool = Netcov_parallel.Pool

type tested = { dp_facts : Fact.t list; cp_elements : Element.id list }

let no_tests = { dp_facts = []; cp_elements = [] }

let merge_tested a b =
  (* Deduplicate data plane facts by identity (structural, equivalent
     to the historical key-string dedup — see Fact.equal). *)
  let seen = Fact.Tbl.create 256 in
  let dp_facts =
    List.filter
      (fun f ->
        if Fact.Tbl.mem seen f then false
        else begin
          Fact.Tbl.add seen f ();
          true
        end)
      (a.dp_facts @ b.dp_facts)
  in
  let cp_elements = List.sort_uniq Int.compare (a.cp_elements @ b.cp_elements) in
  { dp_facts; cp_elements }

type timing = {
  total_s : float;
  cpu_total_s : float;
  materialize_s : float;
  sim_s : float;
  label_s : float;
  sim_count : int;
  sim_cache_hits : int;
  sim_cache_misses : int;
  ifg_nodes : int;
  ifg_edges : int;
  bdd_vars : int;
}

type report = {
  coverage : Coverage.t;
  timing : timing;
  dead : Deadcode.report;
}

module M = Netcov_obs.Metrics
module T = Netcov_obs.Trace

let src = Logs.Src.create "netcov.analyze" ~doc:"coverage analysis"

module Log = (val Logs.src_log src : Logs.LOG)

(* Whole-analysis metrics; stage metrics live with their stages. *)
let m_runs = M.counter M.default ~help:"coverage analyses" ~unit_:"runs" "analyze.runs"

let m_seconds =
  M.histogram M.default ~help:"end-to-end wall time of one analysis"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "analyze.seconds"

let m_cache_distinct =
  M.gauge M.default
    ~help:"distinct keys in the targeted-simulation memo cache after an analysis"
    ~unit_:"keys" "sim.cache.distinct_keys"

let m_errors =
  M.counter M.default
    ~help:"per-test analysis failures isolated and excluded during suite runs"
    ~unit_:"failures" "analyze.errors"

(* Key-precision accounting for the sim cache: record how fragmented
   the key space was and, at debug level, which key component
   fragments it (docs/OBSERVABILITY.md). *)
let record_cache_breakdown cache =
  Option.iter
    (fun c ->
      let b = Rules.sim_cache_breakdown c in
      M.set m_cache_distinct (float_of_int b.Rules.kb_keys);
      Log.debug (fun m ->
          m
            "sim cache key breakdown: %d keys = %d hosts x %d chains x %d \
             defaults x %d protocols x %d routes"
            b.Rules.kb_keys b.Rules.kb_hosts b.Rules.kb_chains
            b.Rules.kb_defaults b.Rules.kb_protocols b.Rules.kb_routes))
    cache

let analyze ?pool ?(sim_cache = true) ?(sim_canon = true) ?(label_arena = true)
    ?identity ?diags state tested =
  T.with_span "analyze"
    ~args:
      [
        ("dp_facts", T.I (List.length tested.dp_facts));
        ("cp_elements", T.I (List.length tested.cp_elements));
      ]
  @@ fun () ->
  let pool = Option.value pool ~default:Pool.sequential in
  let t0 = Timing.now () in
  let reg = Stable_state.registry state in
  let cache =
    if sim_cache then Some (Rules.create_sim_cache ~canonical:sim_canon ())
    else None
  in
  let ctx = Rules.make_ctx ?cache ?diags state in
  let g, tested_ids, mstats =
    Materialize.run ?mode:identity ctx ~tested:tested.dp_facts
  in
  record_cache_breakdown cache;
  let label = Label.run ~arena:label_arena ~pool g ~tested:tested_ids in
  let coverage =
    T.with_span "aggregate" @@ fun () ->
    Coverage.of_sets reg ~strong:label.Label.strong ~weak:label.Label.weak
    |> fun cov -> Coverage.with_strong cov tested.cp_elements
  in
  let dead = T.with_span "deadcode" @@ fun () -> Deadcode.analyze reg in
  let total_s = Timing.now () -. t0 in
  M.inc m_runs 1;
  M.observe m_seconds total_s;
  {
    coverage;
    timing =
      {
        total_s;
        cpu_total_s = total_s;
        materialize_s = mstats.Materialize.rule_seconds;
        sim_s = mstats.Materialize.sim_seconds;
        label_s = label.Label.seconds;
        sim_count = mstats.Materialize.sim_count;
        sim_cache_hits = mstats.Materialize.sim_cache_hits;
        sim_cache_misses = mstats.Materialize.sim_cache_misses;
        ifg_nodes = mstats.Materialize.nodes;
        ifg_edges = mstats.Materialize.edges;
        bdd_vars = label.Label.vars;
      };
    dead;
  }

let merge_timing a b =
  {
    (* Per-test analyses may have run concurrently, so their wall times
       do not add up: summing them over-reports elapsed time by up to
       the domain count. The max of the two is a lower bound on the
       suite's wall time; callers that measured the real elapsed time
       pass it to [merge_reports ~wall_s]. CPU time does sum. *)
    total_s = Float.max a.total_s b.total_s;
    cpu_total_s = a.cpu_total_s +. b.cpu_total_s;
    materialize_s = a.materialize_s +. b.materialize_s;
    sim_s = a.sim_s +. b.sim_s;
    label_s = a.label_s +. b.label_s;
    sim_count = a.sim_count + b.sim_count;
    sim_cache_hits = a.sim_cache_hits + b.sim_cache_hits;
    sim_cache_misses = a.sim_cache_misses + b.sim_cache_misses;
    ifg_nodes = a.ifg_nodes + b.ifg_nodes;
    ifg_edges = a.ifg_edges + b.ifg_edges;
    bdd_vars = max a.bdd_vars b.bdd_vars;
  }

let zero_timing =
  {
    total_s = 0.;
    cpu_total_s = 0.;
    materialize_s = 0.;
    sim_s = 0.;
    label_s = 0.;
    sim_count = 0;
    sim_cache_hits = 0;
    sim_cache_misses = 0;
    ifg_nodes = 0;
    ifg_edges = 0;
    bdd_vars = 0;
  }

let empty_report reg =
  { coverage = Coverage.empty reg; timing = zero_timing; dead = Deadcode.analyze reg }

let merge_reports ?wall_s ?registry = function
  | [] -> (
      match registry with
      | None -> invalid_arg "Netcov.merge_reports: empty list"
      | Some reg ->
          (* An all-failed suite under --keep-going still merges into a
             valid zero-coverage report. *)
          let r = empty_report reg in
          let total_s = Option.value wall_s ~default:0. in
          { r with timing = { r.timing with total_s } })
  | r :: rest ->
      (* The merged [dead] field is taken from the first report, which
         is only sound when every report was produced against the same
         element registry — the dead-code analysis depends on nothing
         else. Reports from different registries have incomparable
         element ids, so merging their coverage would be silently
         wrong too; reject the call instead. *)
      let reg = Coverage.registry r.coverage in
      Option.iter
        (fun expected ->
          if expected != reg then
            invalid_arg
              "Netcov.merge_reports: ~registry disagrees with the reports'")
        registry;
      List.iter
        (fun r' ->
          if Coverage.registry r'.coverage != reg then
            invalid_arg
              "Netcov.merge_reports: reports built from different registries")
        rest;
      let merged =
        List.fold_left
          (fun acc r ->
            {
              coverage = Coverage.merge acc.coverage r.coverage;
              timing = merge_timing acc.timing r.timing;
              dead = acc.dead;
            })
          r rest
      in
      match wall_s with
      | None -> merged
      | Some w -> { merged with timing = { merged.timing with total_s = w } }

let analyze_suite ?pool ?(sim_cache = true) ?(sim_canon = true)
    ?(label_arena = true) ?identity state testeds =
  let run pool =
    (* The pool is also handed to each per-test labeling pass: nested
       fan-out is safe (a mapping caller executes from its own deque and
       steals from the others, it never blocks on its batch), and
       cone-granularity tasks keep every domain busy even when the
       suite has fewer tests than the pool has domains. *)
    Pool.map pool
      (fun tested ->
        analyze ~pool ~sim_cache ~sim_canon ~label_arena ?identity state tested)
      testeds
  in
  match pool with Some p -> run p | None -> Pool.with_pool run

type test_failure = {
  tf_index : int;
  tf_label : string;
  tf_error : string;
  tf_backtrace : string;
}

type suite_outcome = { ok : report list; failures : test_failure list }

let analyze_suite_isolated ?pool ?(sim_cache = true) ?(sim_canon = true)
    ?identity ?diags ?labels state testeds =
  let label_of i =
    match labels with
    | Some ls -> ( match List.nth_opt ls i with Some l -> l | None -> Printf.sprintf "test-%d" i)
    | None -> Printf.sprintf "test-%d" i
  in
  let run pool =
    Pool.map pool
      (fun (i, tested) ->
        match analyze ~pool ~sim_cache ~sim_canon ?identity ?diags state tested with
        | r -> Ok r
        | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
        | exception e ->
            let bt = Printexc.get_backtrace () in
            Error
              {
                tf_index = i;
                tf_label = label_of i;
                tf_error = Printexc.to_string e;
                tf_backtrace = bt;
              })
      (List.mapi (fun i t -> (i, t)) testeds)
  in
  let results = match pool with Some p -> run p | None -> Pool.with_pool run in
  let ok = List.filter_map (function Ok r -> Some r | Error _ -> None) results in
  let failures =
    List.filter_map (function Error f -> Some f | Ok _ -> None) results
  in
  List.iter
    (fun f ->
      M.inc m_errors 1;
      Log.warn (fun m -> m "%s failed and was excluded: %s" f.tf_label f.tf_error);
      Option.iter
        (fun sink ->
          sink
            (Diag.error Diag.Test_failure
               (Printf.sprintf "%s failed and was excluded: %s" f.tf_label
                  f.tf_error)))
        diags)
    failures;
  { ok; failures }

let dead_line_pct report =
  let reg = Coverage.registry report.coverage in
  let considered = Registry.considered_lines reg in
  if considered = 0 then 0.
  else
    100.
    *. float_of_int (Deadcode.dead_lines reg report.dead)
    /. float_of_int considered
