open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_policy

(* Targeted-simulation memo cache. The memoized unit is one policy
   chain evaluation — the pure core of every targeted simulation
   (§4.2): key = (device, chain, defaults, canonicalized input route),
   value = the full Eval.result (verdict, transformed route, exercised
   clause ids). Internet2-style designs re-evaluate the same shared
   export/import chains with the same route once per iBGP session, so
   hit rates are substantial even within a single analysis. Caches are
   created per analysis context (hence domain-local under the parallel
   pipeline) and need no locking. *)
(* Key canonicalization: a policy chain only reads the route attributes
   its match conditions name, and only rewrites the ones its actions
   set. Every other attribute passes through the evaluation untouched —
   it influences neither control flow nor the exercised clause set, and
   the output value equals the input value. Stripping those attributes
   from the cache key (replacing them by fixed placeholders) makes
   equivalent simulations share one entry; on a hit the pass-through
   attributes of the cached transformed route are restored from the
   actual input, which is exactly what a fresh evaluation would have
   produced. The per-(device, chain) attribute mask is computed once
   and memoized in the cache. *)
module Attr = struct
  let prefix = 1
  let next_hop = 2
  let as_path = 4
  let local_pref = 8
  let med = 16
  let communities = 32

  (* [origin] and [cluster_len] have no bit: no match condition or
     action can read or write them, so they are always pass-through. *)
  let cond = function
    | Policy_ast.Match_prefix_list _ | Policy_ast.Match_prefix _ -> prefix
    | Policy_ast.Match_community_list _ | Policy_ast.Match_community _ ->
        communities
    | Policy_ast.Match_as_path_list _ -> as_path
    | Policy_ast.Match_protocol _ -> 0
    | Policy_ast.Match_next_hop _ -> next_hop

  let action = function
    | Policy_ast.Accept | Policy_ast.Reject | Policy_ast.Next_term -> 0
    | Policy_ast.Set_local_pref _ -> local_pref
    | Policy_ast.Set_med _ -> med
    | Policy_ast.Add_community _ | Policy_ast.Remove_community _
    | Policy_ast.Delete_community_in _ ->
        communities
    | Policy_ast.Prepend_as _ -> as_path

  (* Attributes the chain can read or write, as a bit set. Written
     attributes must stay in the key too: an attribute modified from
     its input value (community add, AS prepend, a Set on one branch)
     makes the output depend on the input value. *)
  let of_chain (d : Device.t) chain =
    List.fold_left
      (fun m name ->
        match Device.find_policy d name with
        | None -> m
        | Some p ->
            List.fold_left
              (fun m (t : Policy_ast.term) ->
                let m =
                  List.fold_left
                    (fun m c -> m lor cond c)
                    m t.Policy_ast.matches
                in
                List.fold_left
                  (fun m a -> m lor action a)
                  m t.Policy_ast.actions)
              m p.Policy_ast.terms)
      0 chain
end

let canonical_route mask (r : Route.bgp) =
  let keep a = mask land a <> 0 in
  {
    Route.prefix =
      (if keep Attr.prefix then r.Route.prefix else Prefix.default);
    next_hop = (if keep Attr.next_hop then r.Route.next_hop else Ipv4.zero);
    as_path = (if keep Attr.as_path then r.Route.as_path else As_path.empty);
    local_pref = (if keep Attr.local_pref then r.Route.local_pref else 0);
    med = (if keep Attr.med then r.Route.med else 0);
    communities =
      (if keep Attr.communities then r.Route.communities
       else Community.Set.empty);
    origin = Route.Origin_igp;
    cluster_len = 0;
  }

(* Restore the pass-through attributes of a cached result's transformed
   route from the actual input route. *)
let patch_result mask (input : Route.bgp) (r : Eval.result) =
  match r.Eval.route with
  | None -> r
  | Some out ->
      let keep a = mask land a <> 0 in
      let out =
        {
          Route.prefix =
            (if keep Attr.prefix then out.Route.prefix else input.Route.prefix);
          next_hop =
            (if keep Attr.next_hop then out.Route.next_hop
             else input.Route.next_hop);
          as_path =
            (if keep Attr.as_path then out.Route.as_path
             else input.Route.as_path);
          local_pref =
            (if keep Attr.local_pref then out.Route.local_pref
             else input.Route.local_pref);
          med = (if keep Attr.med then out.Route.med else input.Route.med);
          communities =
            (if keep Attr.communities then out.Route.communities
             else input.Route.communities);
          origin = input.Route.origin;
          cluster_len = input.Route.cluster_len;
        }
      in
      { r with Eval.route = Some out }

(* The key is structural, not a formatted string: building strings per
   lookup costs more than the evaluations the cache saves.

   The route is stored RAW and compared/hashed under the memoized
   attribute mask: the previous scheme rebuilt a canonicalized route
   record ([canonical_route]) on EVERY lookup, hit or miss, and that
   per-probe allocation made the canonical cache a measured net
   slowdown (BENCH_parallel.json sim_cache.speedup 0.877). Mask-aware
   equality/hashing give the same hit/miss behavior — kept attributes
   equal iff the canonical routes are equal — with zero allocation on
   the probe path, and [k_hash] is precomputed at key construction so
   the table never re-walks the key. *)
module Sim_key = struct
  type t = {
    k_host : string;
    k_chain : string list;
    k_default : Eval.verdict;
    k_protocol : Route.protocol;
    k_route : Route.bgp;  (* raw input; compared modulo [k_mask] *)
    k_mask : int;  (* read/write attribute mask; -1 = full key *)
    k_hash : int;  (* precomputed, consistent with [equal] *)
  }

  (* Mask-aware route equality. Stripped attributes are pass-through
     for the chain, so ignoring them is exactly what comparing the
     canonical routes did. The community set compares via [Set.equal]
     (tree shape may differ between equal sets); the full-key path
     keeps the historical structural compare, where a shape mismatch
     at worst turns a hit into a miss, never a wrong result. *)
  let route_equal mask (a : Route.bgp) (b : Route.bgp) =
    if mask = -1 then a = b
    else
      let keep x = mask land x <> 0 in
      ((not (keep Attr.prefix)) || a.Route.prefix = b.Route.prefix)
      && ((not (keep Attr.next_hop)) || a.Route.next_hop = b.Route.next_hop)
      && ((not (keep Attr.as_path)) || a.Route.as_path = b.Route.as_path)
      && ((not (keep Attr.local_pref))
         || a.Route.local_pref = b.Route.local_pref)
      && ((not (keep Attr.med)) || a.Route.med = b.Route.med)
      && ((not (keep Attr.communities))
         || Community.Set.equal a.Route.communities b.Route.communities)

  let mix h v = (h * 31) + v + 1

  (* Explicit field-wise hash covering exactly the fields [route_equal]
     compares (the generic hash's meaningful-node budget would stop
     before the route fields); the community set folds element-wise
     (in-order, hence canonical) because tree shape may differ between
     equal sets. *)
  let route_hash mask (r : Route.bgp) =
    if mask = -1 then Route.hash_bgp r
    else
      let keep x = mask land x <> 0 in
      let h = if keep Attr.prefix then Prefix.hash r.Route.prefix else 0 in
      let h =
        mix h (if keep Attr.next_hop then Ipv4.hash r.Route.next_hop else 0)
      in
      let h =
        mix h (if keep Attr.as_path then As_path.hash r.Route.as_path else 0)
      in
      let h = mix h (if keep Attr.local_pref then r.Route.local_pref else 0) in
      let h = mix h (if keep Attr.med then r.Route.med else 0) in
      if keep Attr.communities then
        Community.Set.fold
          (fun c h -> mix h (Community.hash c))
          r.Route.communities h
      else h

  (* Host+chain hash component, memoized per (host, chain) alongside
     the attribute mask so the per-lookup work is default + protocol +
     masked route only. *)
  let base_hash host chain =
    List.fold_left (fun h s -> mix h (Hashtbl.hash s)) (Hashtbl.hash host) chain

  let make_hash ~base ~default ~protocol ~mask route =
    let h = mix base (Hashtbl.hash default) in
    let h = mix h (Hashtbl.hash protocol) in
    mix h (route_hash mask route) land max_int

  let equal a b =
    a.k_hash = b.k_hash && a.k_mask = b.k_mask && a.k_default = b.k_default
    && a.k_protocol = b.k_protocol && a.k_host = b.k_host
    && a.k_chain = b.k_chain
    && route_equal a.k_mask a.k_route b.k_route

  let hash k = k.k_hash
end

module Sim_tbl = Hashtbl.Make (Sim_key)

type sim_cache = {
  tbl : Eval.result Sim_tbl.t;
  mutable c_hits : int;
  mutable c_misses : int;
  canonical : bool;
  (* (host, chain) -> (read/write attribute mask, host+chain hash),
     lazily computed *)
  masks : (string * string list, int * int) Hashtbl.t;
}

let create_sim_cache ?(canonical = true) () =
  {
    tbl = Sim_tbl.create 4096;
    c_hits = 0;
    c_misses = 0;
    canonical;
    masks = Hashtbl.create 64;
  }

let sim_cache_stats c = (c.c_hits, c.c_misses)

(* Selective eviction for the incremental engine (lib/incr): drop every
   entry — and every memoized attribute mask — belonging to a host
   whose device configuration changed. Chain evaluation reads nothing
   but the device, so entries of unchanged hosts stay valid across an
   update. Returns the number of evicted result entries. *)
let sim_cache_evict_hosts c pred =
  let doomed = ref [] in
  Sim_tbl.iter
    (fun k _ -> if pred k.Sim_key.k_host then doomed := k :: !doomed)
    c.tbl;
  List.iter (fun k -> Sim_tbl.remove c.tbl k) !doomed;
  let doomed_masks = ref [] in
  Hashtbl.iter
    (fun ((h, _) as k) _ -> if pred h then doomed_masks := k :: !doomed_masks)
    c.masks;
  List.iter (fun k -> Hashtbl.remove c.masks k) !doomed_masks;
  List.length !doomed

(* Replay-based revalidation, the precise alternative to
   [sim_cache_evict_hosts]: instead of dropping every entry of a changed
   host, re-run each cached evaluation against the host's *new* device
   and keep the entries whose results are unchanged. Sound for
   canonical keys because the replay input — the key's stored raw
   route — is a representative of the key's equivalence class: when
   the chain's read/write attribute mask is unchanged, both the old
   and the new chain treat the stripped attributes as pass-through, so
   equality modulo the mask on the representative implies equality on
   every member of the class (the kept attributes of the output depend
   only on the kept attributes of the input). A changed mask shifts
   the key space itself, so those entries are dropped
   unconditionally. *)

let result_equiv mask (a : Eval.result) (b : Eval.result) =
  a.Eval.verdict = b.Eval.verdict
  && a.Eval.exercised = b.Eval.exercised
  &&
  match (a.Eval.route, b.Eval.route) with
  | None, None -> true
  | Some ra, Some rb ->
      (* pass-through attributes of the stored result come from its
         original (non-canonical) input; compare modulo the mask *)
      if mask = -1 then ra = rb
      else canonical_route mask ra = canonical_route mask rb
  | _ -> false

let sim_cache_revalidate_hosts ?(apply = true) c state pred =
  let checked = ref 0 in
  let doomed = ref [] in
  let fresh_masks = Hashtbl.create 16 in
  let new_mask d mk =
    match Hashtbl.find_opt fresh_masks mk with
    | Some m -> m
    | None ->
        let m = Attr.of_chain d (snd mk) in
        Hashtbl.replace fresh_masks mk m;
        m
  in
  Sim_tbl.iter
    (fun (k : Sim_key.t) r ->
      if pred k.Sim_key.k_host then begin
        incr checked;
        let valid =
          match Stable_state.find_device state k.Sim_key.k_host with
          | exception _ -> false (* host gone from the new state *)
          | d -> (
              let mask =
                if not c.canonical then Some (-1)
                else
                  let mk = (k.Sim_key.k_host, k.Sim_key.k_chain) in
                  let m = new_mask d mk in
                  match Hashtbl.find_opt c.masks mk with
                  | Some (m_old, _) when m_old = m -> Some m
                  | _ -> None
              in
              match mask with
              | None -> false
              | Some mask ->
                  result_equiv mask r
                    (Eval.run_chain d ~chain:k.Sim_key.k_chain
                       ~default:k.Sim_key.k_default
                       ~protocol:k.Sim_key.k_protocol k.Sim_key.k_route))
        in
        if not valid then doomed := k :: !doomed
      end)
    c.tbl;
  if apply then begin
    List.iter (fun k -> Sim_tbl.remove c.tbl k) !doomed;
    (* Memoized masks of the affected hosts are recomputed lazily on
       the next evaluation; a stale mask would canonicalize keys for
       the new device incorrectly. *)
    let stale = ref [] in
    Hashtbl.iter
      (fun ((h, _) as mk) _ -> if pred h then stale := mk :: !stale)
      c.masks;
    List.iter (fun mk -> Hashtbl.remove c.masks mk) !stale
  end;
  (!checked, List.length !doomed)

let sim_cache_length c = Sim_tbl.length c.tbl

(* Key-precision accounting (docs/OBSERVABILITY.md): the cache's hit
   rate is bounded by how many distinct keys the workload produces, and
   the per-field distinct counts show which component fragments the key
   space. [kb_routes] counts the stored raw representatives (one per
   entry's first probe), so equal-under-mask routes of *different*
   (host, chain) pairs may count separately. Debug-path only — walks
   the whole table. *)
type key_breakdown = {
  kb_keys : int;
  kb_hosts : int;
  kb_chains : int;
  kb_defaults : int;
  kb_protocols : int;
  kb_routes : int;
}

let sim_cache_breakdown c =
  let hosts = Hashtbl.create 64 in
  let chains = Hashtbl.create 64 in
  let defaults = Hashtbl.create 4 in
  let protocols = Hashtbl.create 4 in
  let routes = Hashtbl.create 1024 in
  Sim_tbl.iter
    (fun k _ ->
      Hashtbl.replace hosts k.Sim_key.k_host ();
      Hashtbl.replace chains k.Sim_key.k_chain ();
      Hashtbl.replace defaults k.Sim_key.k_default ();
      Hashtbl.replace protocols k.Sim_key.k_protocol ();
      Hashtbl.replace routes k.Sim_key.k_route ())
    c.tbl;
  {
    kb_keys = Sim_tbl.length c.tbl;
    kb_hosts = Hashtbl.length hosts;
    kb_chains = Hashtbl.length chains;
    kb_defaults = Hashtbl.length defaults;
    kb_protocols = Hashtbl.length protocols;
    kb_routes = Hashtbl.length routes;
  }

type ctx = {
  state : Stable_state.t;
  edge_of_key : (string, Session.edge) Hashtbl.t;
  trace_cache : (string, Forward.path list) Hashtbl.t;
  cache : sim_cache option;
  sim_section : Timing.section;
  diags : (Netcov_diag.Diag.t -> unit) option;
  mutable cache_hits : int;  (* cache hits observed by this ctx *)
  mutable cache_misses : int;
}

let make_ctx ?cache ?diags state =
  let edge_of_key = Hashtbl.create 256 in
  List.iter
    (fun (e : Session.edge) -> Hashtbl.replace edge_of_key (Session.edge_key e) e)
    (Stable_state.edges state);
  {
    state;
    edge_of_key;
    trace_cache = Hashtbl.create 256;
    cache;
    sim_section = Timing.make "targeted-sim";
    diags;
    cache_hits = 0;
    cache_misses = 0;
  }

let state ctx = ctx.state
let sim_count ctx = Timing.count ctx.sim_section
let sim_seconds ctx = Timing.total ctx.sim_section
let cache_hits ctx = ctx.cache_hits
let cache_misses ctx = ctx.cache_misses

(* The evaluator injected into Bgp.{export,import,redistribute}_route:
   consult the memo cache before running the policy engine. *)
let chain_eval ctx : Eval.chain_eval =
 fun d ~chain ~default ~protocol route ->
  match ctx.cache with
  | None -> Eval.run_chain d ~chain ~default ~protocol route
  | Some c -> (
      let mask, base =
        if not c.canonical then
          (-1, Sim_key.base_hash d.Device.hostname chain)
        else
          let mk = (d.Device.hostname, chain) in
          match Hashtbl.find_opt c.masks mk with
          | Some mb -> mb
          | None ->
              let mb =
                ( Attr.of_chain d chain,
                  Sim_key.base_hash d.Device.hostname chain )
              in
              Hashtbl.replace c.masks mk mb;
              mb
      in
      let key =
        {
          Sim_key.k_host = d.Device.hostname;
          k_chain = chain;
          k_default = default;
          k_protocol = protocol;
          k_route = route;
          k_mask = mask;
          k_hash = Sim_key.make_hash ~base ~default ~protocol ~mask route;
        }
      in
      match Sim_tbl.find_opt c.tbl key with
      | Some r ->
          ctx.cache_hits <- ctx.cache_hits + 1;
          c.c_hits <- c.c_hits + 1;
          if mask = -1 then r else patch_result mask route r
      | None ->
          ctx.cache_misses <- ctx.cache_misses + 1;
          c.c_misses <- c.c_misses + 1;
          let r = Eval.run_chain d ~chain ~default ~protocol route in
          Sim_tbl.add c.tbl key r;
          r)

type parent_spec = P of Fact.t | P_disj of Fact.t list
type inference = { target : Fact.t; parents : parent_spec list }
type rule = ctx -> Fact.t -> inference list

let config_fact ctx ~host key =
  let reg = Stable_state.registry ctx.state in
  match Registry.find reg ~device:host key with
  | Some id -> Some (Fact.F_config id)
  | None -> None

let config_parents ctx ~host keys =
  List.filter_map
    (fun k -> Option.map (fun f -> P f) (config_fact ctx ~host k))
    keys

(* Wrap a targeted simulation with accounting. *)
let timed_sim ctx f = Timing.record ctx.sim_section f

let find_device_fn ctx host = Stable_state.find_device ctx.state host

let trace ctx ~src ~dst =
  let key = src ^ "->" ^ Ipv4.to_string dst in
  match Hashtbl.find_opt ctx.trace_cache key with
  | Some paths -> paths
  | None ->
      let paths = Stable_state.trace ctx.state ~src ~dst in
      Hashtbl.replace ctx.trace_cache key paths;
      paths

(* Collapse degenerate disjunctions. *)
let disj_of = function [] -> None | [ f ] -> Some (P f) | fs -> Some (P_disj fs)

(* Resolution of an indirect next hop: the main-RIB entries consulted to
   reach [nh] ([f_i <- r_j, f_k] in Table 1). *)
let resolution_parents ctx ~host nh =
  if Ipv4.equal nh Ipv4.zero then []
  else
    match Topology.on_shared_subnet (Stable_state.topology ctx.state) host nh with
    | Some _ -> []
    | None -> (
        match Rib.table_longest_match nh (Stable_state.main_rib ctx.state host) with
        | None -> []
        | Some (_, entries) ->
            Option.to_list
              (disj_of
                 (List.map (fun e -> Fact.F_main_rib { host; entry = e }) entries)))

(* ------------------------------------------------------------------ *)
(* Main RIB rules                                                      *)
(* ------------------------------------------------------------------ *)

let rule_main_rib_bgp ctx fact =
  match fact with
  | Fact.F_main_rib { host; entry } when entry.me_protocol = Route.Bgp ->
      let best = Stable_state.bgp_lookup_best ctx.state host entry.me_prefix in
      let matching =
        match entry.me_nexthop with
        | Rib.Nh_discard ->
            List.filter
              (fun (b : Rib.bgp_entry) -> b.be_source = Rib.From_aggregate)
              best
        | Rib.Nh_ip nh ->
            List.filter
              (fun (b : Rib.bgp_entry) ->
                Ipv4.equal b.be_route.Route.next_hop nh
                &&
                match b.be_source with Rib.Learned _ -> true | _ -> false)
              best
        | Rib.Nh_connected _ -> []
      in
      let proto_parent =
        match matching with
        | [] -> []
        | b :: _ ->
            [
              P
                (Fact.F_bgp_rib
                   { host; route = b.be_route; source = b.be_source });
            ]
      in
      let resolution =
        match entry.me_nexthop with
        | Rib.Nh_ip nh -> resolution_parents ctx ~host nh
        | Rib.Nh_connected _ | Rib.Nh_discard -> []
      in
      [ { target = fact; parents = proto_parent @ resolution } ]
  | _ -> []

let rule_main_rib_connected ctx fact =
  ignore ctx;
  match fact with
  | Fact.F_main_rib { host; entry } when entry.me_protocol = Route.Connected -> (
      match entry.me_nexthop with
      | Rib.Nh_connected ifname ->
          [
            {
              target = fact;
              parents =
                [
                  P
                    (Fact.F_connected_rib
                       { host; prefix = entry.me_prefix; ifname });
                ];
            };
          ]
      | Rib.Nh_ip _ | Rib.Nh_discard -> [])
  | _ -> []

let rule_main_rib_static ctx fact =
  match fact with
  | Fact.F_main_rib { host; entry } when entry.me_protocol = Route.Static ->
      let cfg =
        config_parents ctx ~host
          [ Element.key Static_route (Prefix.to_string entry.me_prefix) ]
      in
      let resolution =
        match entry.me_nexthop with
        | Rib.Nh_ip nh -> resolution_parents ctx ~host nh
        | Rib.Nh_connected _ | Rib.Nh_discard -> []
      in
      [ { target = fact; parents = cfg @ resolution } ]
  | _ -> []

let rule_main_rib_igp ctx fact =
  match fact with
  | Fact.F_main_rib { host; entry } when entry.me_protocol = Route.Igp ->
      let igp_entries = Stable_state.igp_lookup ctx.state host entry.me_prefix in
      let matching =
        List.filter
          (fun (ie : Rib.igp_entry) ->
            match entry.me_nexthop with
            | Rib.Nh_ip nh -> Ipv4.equal ie.ie_nexthop nh
            | Rib.Nh_connected _ | Rib.Nh_discard -> false)
          igp_entries
      in
      let parents =
        match matching with
        | [] -> []
        | ie :: _ -> [ P (Fact.F_igp_rib { host; entry = ie }) ]
      in
      [ { target = fact; parents } ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Protocol RIB rules                                                  *)
(* ------------------------------------------------------------------ *)

let rule_connected_rib ctx fact =
  match fact with
  | Fact.F_connected_rib { host; ifname; _ } ->
      [
        {
          target = fact;
          parents = config_parents ctx ~host [ Element.key Interface ifname ];
        };
      ]
  | _ -> []

let rule_igp_rib ctx fact =
  match fact with
  | Fact.F_igp_rib { host; entry } ->
      let local = config_parents ctx ~host [ Element.key Interface entry.ie_out_if ] in
      let dest =
        config_parents ctx ~host:entry.ie_dest_host
          [ Element.key Interface entry.ie_dest_if ]
      in
      [ { target = fact; parents = local @ dest } ]
  | _ -> []

(* The combined Figure-4 rule: a learned BGP RIB entry pulls in the
   post-import message, the pre-import message, the routing edge, the
   exercised import and export clauses, and the origin entry at the
   sender. *)
let rule_bgp_rib_learned ctx fact =
  match fact with
  | Fact.F_bgp_rib { host; route; source = Rib.Learned send_ip } -> (
      match Stable_state.edge_from ctx.state ~recv_host:host ~send_ip with
      | None -> []
      | Some edge ->
          let ekey = Session.edge_key edge in
          let edge_fact = Fact.F_edge ekey in
          let sender_internal = not (Stable_state.is_external ctx.state edge.send_host) in
          let find_device = find_device_fn ctx in
          let candidates =
            Stable_state.bgp_lookup_best ctx.state edge.send_host
              route.Route.prefix
          in
          let eval = chain_eval ctx in
          let simulate (origin : Rib.bgp_entry) =
            timed_sim ctx (fun () ->
                match Bgp.export_route ~eval find_device edge origin with
                | None, _ -> None
                | Some msg, export_keys ->
                    let imported, import_keys =
                      Bgp.import_route ~eval find_device edge msg
                    in
                    Some (origin, msg, export_keys, imported, import_keys))
          in
          let matches =
            List.filter_map
              (fun origin ->
                match simulate origin with
                | Some (o, msg, ek, Some r, ik) when Route.equal_bgp r route ->
                    Some (o, msg, ek, ik)
                | Some _ | None -> None)
              candidates
          in
          let chosen =
            match matches with
            | m :: _ -> Some m
            | [] -> (
                (* Fall back to any accepted candidate; policies are
                   deterministic so this is defensive. *)
                match List.filter_map simulate candidates with
                | (o, msg, ek, Some _, ik) :: _ -> Some (o, msg, ek, ik)
                | _ -> None)
          in
          let post_msg = Fact.F_msg { kind = Post_import; edge = ekey; route } in
          let base = [ { target = fact; parents = [ P post_msg ] } ] in
          (match chosen with
          | None ->
              (* No reproducible origin (e.g. sender withdrew): tie the
                 entry to the edge alone. *)
              base
              @ [ { target = post_msg; parents = [ P edge_fact ] } ]
          | Some (origin, pre_route, export_keys, import_keys) ->
              let pre_msg =
                Fact.F_msg { kind = Pre_import; edge = ekey; route = pre_route }
              in
              let import_clauses = config_parents ctx ~host import_keys in
              let post_inf =
                {
                  target = post_msg;
                  parents = (P pre_msg :: P edge_fact :: import_clauses);
                }
              in
              let pre_parents =
                if sender_internal then
                  let export_clauses =
                    config_parents ctx ~host:edge.send_host export_keys
                  in
                  P
                    (Fact.F_bgp_rib
                       {
                         host = edge.send_host;
                         route = origin.be_route;
                         source = origin.be_source;
                       })
                  :: P edge_fact :: export_clauses
                else [ P edge_fact ]
              in
              base @ [ post_inf; { target = pre_msg; parents = pre_parents } ]))
  | _ -> []

let rule_bgp_rib_network ctx fact =
  match fact with
  | Fact.F_bgp_rib { host; route; source = Rib.From_network } ->
      let cfg =
        config_parents ctx ~host
          [ Element.key Bgp_network (Prefix.to_string route.Route.prefix) ]
      in
      let mains =
        Stable_state.main_lookup ctx.state host route.Route.prefix
        |> List.filter (fun (e : Rib.main_entry) -> e.me_protocol <> Route.Bgp)
        |> List.map (fun e -> Fact.F_main_rib { host; entry = e })
      in
      [ { target = fact; parents = cfg @ Option.to_list (disj_of mains) } ]
  | _ -> []

let rule_bgp_rib_redistribute ctx fact =
  match fact with
  | Fact.F_bgp_rib { host; route; source = Rib.From_redistribute proto } ->
      let d = Stable_state.find_device ctx.state host in
      let rd_cfg =
        match d.bgp with
        | None -> None
        | Some b ->
            List.find_opt
              (fun (r : Device.redistribute) -> r.rd_from = proto)
              b.redistributes
      in
      let mains =
        Stable_state.main_lookup ctx.state host route.Route.prefix
        |> List.filter (fun (e : Rib.main_entry) -> e.me_protocol = proto)
      in
      let clause_parents =
        match (rd_cfg, mains) with
        | Some rd, me :: _ ->
            let _, keys =
              timed_sim ctx (fun () ->
                  Bgp.redistribute_route ~eval:(chain_eval ctx)
                    (find_device_fn ctx) host rd me)
            in
            config_parents ctx ~host keys
        | _, _ -> []
      in
      let main_parents =
        Option.to_list
          (disj_of (List.map (fun e -> Fact.F_main_rib { host; entry = e }) mains))
      in
      [
        {
          target = fact;
          parents =
            (P (Fact.F_redist_edge { host; proto }) :: main_parents)
            @ clause_parents;
        };
      ]
  | _ -> []

let rule_redist_edge ctx fact =
  match fact with
  | Fact.F_redist_edge { host; proto } ->
      [
        {
          target = fact;
          parents =
            config_parents ctx ~host
              [ Element.key Bgp_redistribute (Route.protocol_to_string proto) ];
        };
      ]
  | _ -> []

let rule_bgp_rib_aggregate ctx fact =
  match fact with
  | Fact.F_bgp_rib { host; route; source = Rib.From_aggregate } ->
      let cfg =
        config_parents ctx ~host
          [ Element.key Bgp_aggregate (Prefix.to_string route.Route.prefix) ]
      in
      let contributors =
        Prefix_trie.subsumed route.Route.prefix
          (Stable_state.bgp_rib ctx.state host)
        |> List.concat_map (fun (p, entries) ->
               if Prefix.len p > Prefix.len route.Route.prefix then
                 List.filter_map
                   (fun (b : Rib.bgp_entry) ->
                     if b.be_best && b.be_source <> Rib.From_aggregate then
                       Some
                         (Fact.F_bgp_rib
                            { host; route = b.be_route; source = b.be_source })
                     else None)
                   entries
               else [])
      in
      [ { target = fact; parents = cfg @ Option.to_list (disj_of contributors) } ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Edge, path and ACL rules                                            *)
(* ------------------------------------------------------------------ *)

let peering_config_parents ctx ~host ~peer_ip =
  let reg = Stable_state.registry ctx.state in
  match Registry.device_opt reg host with
  | None -> []
  | Some d when d.is_external -> []
  | Some d -> (
      match d.bgp with
      | None -> []
      | Some b -> (
          match
            List.find_opt
              (fun (n : Device.neighbor) -> Ipv4.equal n.nb_ip peer_ip)
              b.neighbors
          with
          | None -> []
          | Some nb ->
              let peer =
                config_parents ctx ~host
                  [ Element.key Bgp_peer (Ipv4.to_string nb.nb_ip) ]
              in
              let group =
                match nb.nb_group with
                | Some g -> config_parents ctx ~host [ Element.key Bgp_peer_group g ]
                | None -> []
              in
              peer @ group))

let rule_edge ctx fact =
  match fact with
  | Fact.F_edge key -> (
      match Hashtbl.find_opt ctx.edge_of_key key with
      | None -> []
      | Some edge ->
          let topo = Stable_state.topology ctx.state in
          let recv_side =
            peering_config_parents ctx ~host:edge.recv_host ~peer_ip:edge.send_ip
          in
          let send_side =
            peering_config_parents ctx ~host:edge.send_host ~peer_ip:edge.recv_ip
          in
          let interface_parents =
            if edge.multihop then []
            else
              let local_if host ip =
                match Topology.on_shared_subnet topo host ip with
                | Some ep ->
                    config_parents ctx ~host [ Element.key Interface ep.ifname ]
                | None -> []
              in
              local_if edge.recv_host edge.send_ip
              @ local_if edge.send_host edge.recv_ip
          in
          let path_parents =
            if not edge.multihop then []
            else
              let direction src dst =
                let paths = trace ctx ~src ~dst in
                let facts =
                  List.mapi (fun i p -> (i, p)) paths
                  |> List.filter (fun (_, (p : Forward.path)) -> p.reached)
                  |> List.map (fun (idx, _) -> Fact.F_path { src; dst; idx })
                in
                Option.to_list (disj_of facts)
              in
              direction edge.send_host edge.recv_ip
              @ direction edge.recv_host edge.send_ip
          in
          [
            {
              target = fact;
              parents = recv_side @ send_side @ interface_parents @ path_parents;
            };
          ])
  | _ -> []

let rule_path ctx fact =
  match fact with
  | Fact.F_path { src; dst; idx } -> (
      let paths = trace ctx ~src ~dst in
      match List.nth_opt paths idx with
      | None -> []
      | Some path ->
          let hop_parents =
            List.concat_map
              (fun (h : Forward.hop) ->
                List.map
                  (fun entry -> P (Fact.F_main_rib { host = h.hop_host; entry }))
                  h.hop_entries
                @ List.map
                    (fun (a : Forward.acl_use) ->
                      P
                        (Fact.F_acl
                           { host = a.au_host; acl = a.au_acl; rule = a.au_rule }))
                    h.hop_acls)
              path.hops
          in
          [ { target = fact; parents = hop_parents } ])
  | _ -> []

let rule_acl ctx fact =
  match fact with
  | Fact.F_acl { host; acl; _ } ->
      [
        {
          target = fact;
          parents = config_parents ctx ~host [ Element.key Acl_def acl ];
        };
      ]
  | _ -> []

(* Guarded application: without a diag sink a crashing rule propagates
   (seed behaviour, byte-identical); with one, the failure becomes a
   [Sim_failure] diagnostic attached to the offending fact and the rule
   contributes no inferences — the fact simply keeps fewer parents. *)
let apply_rule ctx (name, (rule : rule)) fact =
  match ctx.diags with
  | None -> rule ctx fact
  | Some sink -> (
      try rule ctx fact with
      | (Stack_overflow | Out_of_memory) as e -> raise e
      | e ->
          sink
            (Netcov_diag.Diag.error
               ?device:(Fact.host_of fact)
               ~fact:(Fact.key fact) Netcov_diag.Diag.Sim_failure
               (Printf.sprintf "rule %s failed: %s" name (Printexc.to_string e)));
          [])

let all_rules : (string * rule) list =
  [
    ("main-rib-bgp", rule_main_rib_bgp);
    ("main-rib-connected", rule_main_rib_connected);
    ("main-rib-static", rule_main_rib_static);
    ("main-rib-igp", rule_main_rib_igp);
    ("connected-rib", rule_connected_rib);
    ("igp-rib", rule_igp_rib);
    ("bgp-rib-learned", rule_bgp_rib_learned);
    ("bgp-rib-network", rule_bgp_rib_network);
    ("bgp-rib-redistribute", rule_bgp_rib_redistribute);
    ("redist-edge", rule_redist_edge);
    ("bgp-rib-aggregate", rule_bgp_rib_aggregate);
    ("edge", rule_edge);
    ("path", rule_path);
    ("acl", rule_acl);
  ]
