(** Network facts — the vertices of the information flow graph
    (paper Table 1). *)

open Netcov_types
open Netcov_config
open Netcov_sim

type msg_kind = Pre_import | Post_import

type t =
  | F_config of Element.id
      (** a configuration element (leaf of the IFG) *)
  | F_main_rib of { host : string; entry : Rib.main_entry }
  | F_bgp_rib of { host : string; route : Route.bgp; source : Rib.bgp_source }
  | F_connected_rib of { host : string; prefix : Prefix.t; ifname : string }
  | F_igp_rib of { host : string; entry : Rib.igp_entry }
  | F_acl of { host : string; acl : string; rule : int option }
  | F_msg of { kind : msg_kind; edge : string; route : Route.bgp }
      (** a routing message on a directed edge (auxiliary fact) *)
  | F_edge of string  (** inter-device routing edge, by session key *)
  | F_redist_edge of { host : string; proto : Route.protocol }
      (** intra-device routing edge modeling redistribution *)
  | F_path of { src : string; dst : Ipv4.t; idx : int }
      (** the [idx]-th enumerated forwarding path src → dst *)

(** Canonical string identity; equal facts have equal keys. Allocates a
    fresh string per call — reserved for the export/debug boundary
    (JSON/LCOV/HTML, counterexample printing); hot-path identity goes
    through {!equal}/{!hash}/{!Tbl} and the {!Intern} table. *)
val key : t -> string

(** Host a fact lives on, when host-bound. Messages and inter-device
    edges belong to their receiving side. *)
val host_of : t -> string option

val is_config : t -> Element.id option
val pp : Format.formatter -> t -> unit

(** Structural equality, allocation-free, equivalent to comparing
    {!key} strings: it projects exactly the fields [key] prints (a
    main-RIB fact ignores its metric; an IGP-RIB fact ignores cost and
    destination endpoint). *)
val equal : t -> t -> bool

(** Structural hash compatible with {!equal} (same field projection);
    canonical in community sets. *)
val hash : t -> int

(** Hash table keyed by fact identity — the allocation-free
    replacement for [(Fact.key f, _) Hashtbl.t] dedup tables. *)
module Tbl : Hashtbl.S with type key = t
