(** Coverage regression analysis: compare two coverage runs over the
    same registry (e.g. before/after a test-suite change, or across two
    branches of the configuration), in the spirit of diff-cover. *)

open Netcov_config

type t = {
  gained : Element.Id_set.t;  (** newly covered elements *)
  lost : Element.Id_set.t;  (** elements no longer covered *)
  strengthened : Element.Id_set.t;  (** weak → strong *)
  weakened : Element.Id_set.t;  (** strong → weak *)
}

(** [diff ~baseline current] classifies every element. Raises
    [Invalid_argument] when the two runs cover different registries
    (element counts differ). *)
val diff : baseline:Coverage.t -> Coverage.t -> t

(** One device's slice of a diff; the same interned element ids as the
    whole-network sets, never re-derived string keys. *)
type device_delta = {
  d_gained : Element.Id_set.t;
  d_lost : Element.Id_set.t;
  d_strengthened : Element.Id_set.t;
  d_weakened : Element.Id_set.t;
}

(** [by_device reg d] groups a diff by owning device (sorted by device
    name; only devices with at least one changed element appear). *)
val by_device : Registry.t -> t -> (string * device_delta) list

val delta_is_empty : device_delta -> bool
val is_empty : t -> bool

(** No element got worse (lost or weakened) — the regression gate. *)
val no_regression : t -> bool

(** Human-readable summary listing a few exemplar elements per class. *)
val summary : Registry.t -> t -> string
