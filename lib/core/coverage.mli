(** Coverage accounting: element status, line-level mapping, and the
    aggregations behind the paper's outputs (file-level table, per-type
    breakdown, dead-code share). *)

open Netcov_config

(** Coverage status of one configuration element, ordered by strength
    ([Strong] > [Weak] > [Not_covered]). *)
type status = Not_covered | Weak | Strong

(** Lowercase name of a status ("strong", "weak", "not-covered"). *)
val status_to_string : status -> string

(** A coverage map: a status for every element of one registry. *)
type t

(** The registry this coverage map was computed over. *)
val registry : t -> Registry.t

(** [of_sets reg ~strong ~weak] builds a coverage map; strong wins when
    an element appears in both. *)
val of_sets :
  Registry.t -> strong:Element.Id_set.t -> weak:Element.Id_set.t -> t

(** Coverage map with every element [Not_covered]. *)
val empty : Registry.t -> t

(** Union of two runs over the same registry: per element the stronger
    status wins. *)
val merge : t -> t -> t

(** Status of one element ([Not_covered] for unknown ids). *)
val element_status : t -> Element.id -> status

(** Mark additional elements strong (directly tested by control-plane
    tests). *)
val with_strong : t -> Element.id list -> t

(** Line-level totals over one coverage map (the paper reports
    line percentages, not element percentages). *)
type line_stats = {
  strong_lines : int;
  weak_lines : int;
  considered : int;  (** denominator: element-owned lines *)
  total : int;  (** all configuration lines *)
}

(** Covered lines: strong + weak. *)
val covered_lines : line_stats -> int

(** Fraction of considered lines covered (strong + weak). *)
val pct : line_stats -> float

(** Network-wide line totals. *)
val line_stats : t -> line_stats

(** Per-device line totals, in registry device order. *)
val device_stats : t -> (string * line_stats) list

(** Per element type: (covered elements, total elements, covered lines,
    considered lines). *)
type type_stats = {
  elems_covered : int;
  elems_total : int;
  lines_strong : int;
  lines_weak : int;
  lines_total : int;
}

(** Totals grouped by fine-grained element type. *)
val etype_stats : t -> (Element.etype * type_stats) list

(** Totals grouped by the paper's Figure 7 buckets (Interfaces, BGP,
    Routing policies, Match lists). *)
val bucket_stats : t -> (Element.bucket * type_stats) list

(** Status of a specific 1-based line of a device ([None] when the line
    is unconsidered). *)
val line_status : t -> string -> int -> status option

(** Elements that are covered (weak or strong). *)
val covered_elements : t -> Element.Id_set.t
