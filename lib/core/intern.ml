module M = Netcov_obs.Metrics

(* Fact interning: dense int identities for the IFG core.

   Identity mode Structural hashes the fact variant itself (Fact.hash /
   Fact.equal); By_key reproduces the historical string identity
   (Fact.key into a string-keyed table) and exists only as the
   reference side of the differential oracle and the before/after
   benchmark. The two modes assign the same ids for the same intern
   sequence because Fact.equal is pinned to the projection Fact.key
   prints.

   Domain safety and contention: the forward direction (fact -> id) is
   hash-sharded — [n_shards] independent mutex+table pairs, a fact's
   shard chosen by its hash — so concurrent interning from the pool's
   domains contends only when two domains hit the same shard, not on
   every call. Ids stay globally dense: a single atomic allocator
   hands them out, and a [published] watermark is advanced in id order
   (CAS spin) after each slot of the reverse array is written, so
   every id below the watermark has a readable fact. The reverse
   direction (id -> fact) is completely lock-free: the spine is an
   array of fixed-size chunks and growth copies only chunk pointers,
   never facts, so a published slot stays valid forever. This matters
   because [Ifg.kind]/[Ifg.config_eid] hit the reverse direction on
   every parallel labeling step — under the old single mutex that was
   the pool's hottest lock. [intern.lock.contended] counts shard-lock
   contention (a failed try-lock) so the claim is measurable. *)

let n_shards = 16

let m_contended =
  M.counter M.default
    ~help:"interner shard-lock acquisitions that had to wait"
    ~unit_:"acquisitions" "intern.lock.contended"

type mode = Structural | By_key

type shard = {
  sh_mutex : Mutex.t;
  sh_tbl : int Fact.Tbl.t;  (* Structural mode *)
  sh_by_key : (string, int) Hashtbl.t;  (* By_key mode *)
}

(* Reverse array: chunked so growth never invalidates written slots.
   [spine] is swapped wholesale under [spine_mutex] when a new chunk is
   needed; readers load it atomically and index without locking. *)
let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits

type t = {
  mode : mode;
  shards : shard array;
  next : int Atomic.t;  (* id allocator *)
  published : int Atomic.t;  (* every id < published has its slot set *)
  spine : Fact.t array array Atomic.t;
  spine_mutex : Mutex.t;  (* guards spine growth only *)
}

let dummy_fact = Fact.F_edge ""

let create ?(mode = Structural) () =
  {
    mode;
    shards =
      Array.init n_shards (fun _ ->
          {
            sh_mutex = Mutex.create ();
            sh_tbl = Fact.Tbl.create 512;
            sh_by_key = Hashtbl.create 512;
          });
    next = Atomic.make 0;
    published = Atomic.make 0;
    spine = Atomic.make [| Array.make chunk_size dummy_fact |];
    spine_mutex = Mutex.create ();
  }

let mode t = t.mode
let length t = Atomic.get t.published

let shard_of t fact =
  (* By_key identity must shard by the key string, not the variant:
     two facts with equal keys always land in the same shard. In
     Structural mode Fact.hash is pinned to the key projection, so the
     variant hash is the cheaper equivalent. *)
  match t.mode with
  | Structural -> Fact.hash fact land (n_shards - 1)
  | By_key -> Hashtbl.hash (Fact.key fact) land (n_shards - 1)

let lock_shard sh =
  if not (Mutex.try_lock sh.sh_mutex) then begin
    M.inc m_contended 1;
    Mutex.lock sh.sh_mutex
  end

(* Ensure the chunk holding [id] exists. Only the grower swaps the
   spine, and the old chunks are reused in the new spine, so readers
   holding a stale spine still see every slot they could have been
   told about. *)
let ensure_chunk t id =
  let chunk = id lsr chunk_bits in
  if chunk >= Array.length (Atomic.get t.spine) then begin
    Mutex.lock t.spine_mutex;
    let spine = Atomic.get t.spine in
    if chunk >= Array.length spine then begin
      let n_old = Array.length spine in
      let n_new = max (chunk + 1) (2 * n_old) in
      let bigger =
        Array.init n_new (fun i ->
            if i < n_old then spine.(i) else Array.make chunk_size dummy_fact)
      in
      Atomic.set t.spine bigger
    end;
    Mutex.unlock t.spine_mutex
  end

(* Write the slot, then advance the dense publication watermark. The
   CAS only succeeds for the id exactly at the watermark, so slots are
   published in id order and [length]/[fact]/[iter] never observe a
   gap. The spin is bounded by how far ahead this domain's allocation
   raced the slower writers below it; single-domain use never spins. *)
let publish t id fact =
  ensure_chunk t id;
  let chunk = (Atomic.get t.spine).(id lsr chunk_bits) in
  chunk.(id land (chunk_size - 1)) <- fact;
  while not (Atomic.compare_and_set t.published id (id + 1)) do
    Domain.cpu_relax ()
  done

let intern t fact =
  let sh = t.shards.(shard_of t fact) in
  lock_shard sh;
  let existing =
    match t.mode with
    | Structural -> Fact.Tbl.find_opt sh.sh_tbl fact
    | By_key -> Hashtbl.find_opt sh.sh_by_key (Fact.key fact)
  in
  match existing with
  | Some id ->
      Mutex.unlock sh.sh_mutex;
      id
  | None ->
      let id = Atomic.fetch_and_add t.next 1 in
      (match t.mode with
      | Structural -> Fact.Tbl.add sh.sh_tbl fact id
      | By_key -> Hashtbl.add sh.sh_by_key (Fact.key fact) id);
      (* publish before releasing the shard lock: a second interner of
         the same fact must not return an id whose reverse slot is
         still unwritten *)
      (match publish t id fact with
      | () -> Mutex.unlock sh.sh_mutex
      | exception e ->
          Mutex.unlock sh.sh_mutex;
          raise e);
      id

let find t fact =
  let sh = t.shards.(shard_of t fact) in
  lock_shard sh;
  let r =
    match t.mode with
    | Structural -> Fact.Tbl.find_opt sh.sh_tbl fact
    | By_key -> Hashtbl.find_opt sh.sh_by_key (Fact.key fact)
  in
  Mutex.unlock sh.sh_mutex;
  r

let fact t id =
  (* Lock-free: read the watermark first; everything below it is
     written, and spine swaps preserve old chunks. *)
  let n = Atomic.get t.published in
  if id < 0 || id >= n then
    invalid_arg (Printf.sprintf "Intern.fact: id %d out of [0, %d)" id n)
  else (Atomic.get t.spine).(id lsr chunk_bits).(id land (chunk_size - 1))

let iter t f =
  (* Snapshot the watermark, then iterate lock-free: ids are never
     reassigned and published slots never mutate. *)
  let n = Atomic.get t.published in
  let spine = Atomic.get t.spine in
  for id = 0 to n - 1 do
    f id spine.(id lsr chunk_bits).(id land (chunk_size - 1))
  done
