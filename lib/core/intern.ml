(* Fact interning: dense int identities for the IFG core.

   Identity mode Structural hashes the fact variant itself (Fact.hash /
   Fact.equal); By_key reproduces the historical string identity
   (Fact.key into a string-keyed table) and exists only as the
   reference side of the differential oracle and the before/after
   benchmark. The two modes assign the same ids for the same intern
   sequence because Fact.equal is pinned to the projection Fact.key
   prints.

   Domain safety: a single mutex guards the table and the reverse
   array. The coverage pipeline interns from one domain per analysis,
   so the lock is uncontended there; sharing one interner across
   domains is supported (and unit-tested) for future sharded IFGs. *)

type mode = Structural | By_key

type t = {
  mode : mode;
  mutex : Mutex.t;
  tbl : int Fact.Tbl.t;  (* Structural mode *)
  by_key : (string, int) Hashtbl.t;  (* By_key mode *)
  mutable facts : Fact.t array;  (* id -> fact; only [next] live *)
  mutable next : int;
}

let create ?(mode = Structural) () =
  {
    mode;
    mutex = Mutex.create ();
    tbl = Fact.Tbl.create 4096;
    by_key = Hashtbl.create 4096;
    facts = Array.make 1024 (Fact.F_edge "");
    next = 0;
  }

let mode t = t.mode
let length t = t.next

let grow t =
  let cap = Array.length t.facts in
  if t.next >= cap then begin
    let bigger = Array.make (cap * 2) (Fact.F_edge "") in
    Array.blit t.facts 0 bigger 0 cap;
    t.facts <- bigger
  end

let locked t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let alloc t fact =
  grow t;
  let id = t.next in
  t.facts.(id) <- fact;
  t.next <- id + 1;
  id

let intern t fact =
  locked t @@ fun () ->
  match t.mode with
  | Structural -> (
      match Fact.Tbl.find_opt t.tbl fact with
      | Some id -> id
      | None ->
          let id = alloc t fact in
          Fact.Tbl.add t.tbl fact id;
          id)
  | By_key -> (
      let k = Fact.key fact in
      match Hashtbl.find_opt t.by_key k with
      | Some id -> id
      | None ->
          let id = alloc t fact in
          Hashtbl.add t.by_key k id;
          id)

let find t fact =
  locked t @@ fun () ->
  match t.mode with
  | Structural -> Fact.Tbl.find_opt t.tbl fact
  | By_key -> Hashtbl.find_opt t.by_key (Fact.key fact)

let fact t id =
  locked t @@ fun () ->
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Intern.fact: id %d out of [0, %d)" id t.next)
  else t.facts.(id)

let iter t f =
  (* Snapshot the live extent under the lock, then iterate without it:
     ids are never reassigned and slots below [n] never mutate. *)
  let n, facts = locked t (fun () -> (t.next, t.facts)) in
  for id = 0 to n - 1 do
    f id facts.(id)
  done
