(** Strong/weak coverage labeling (§4.3).

    Each config element in the materialized IFG is covered. An element is
    {e strongly} covered when some tested fact could not be derived
    without it (necessity, [¬x ⇒ ¬Γ(t)]); otherwise it is {e weakly}
    covered (its contribution routes only through disjunctive choices
    with alternatives).

    Implementation: Boolean predicates over config variables are built
    bottom-up as BDDs — conjunction at normal nodes, disjunction at
    disjunctive nodes — and necessity reduces to a cofactor constancy
    check. Config facts with a disjunction-free path to a tested fact are
    pre-classified strong and their variables replaced by constant true
    (the paper's variable-reduction heuristic).

    The BDD work runs in a {e persistent per-domain arena}: one
    hash-consed node store per worker domain (Domain-local, no locks)
    reused across cones, passes and suites, with a cross-cone gamma
    memo so the shared ancestry of overlapping cones is translated to
    BDD once per domain, and a single bottom-up essential-variables
    pass ([Bdd.essential_vars]) instead of one restrict traversal per
    support variable. Arenas are trimmed automatically at a node-count
    watermark (and explicitly via {!trim_arena}), so warm sessions
    ([lib/incr], [netcov serve]) keep a bounded footprint. The legacy
    fresh-manager-per-cone engine is retained ([run ~arena:false]) as
    the differential reference; both engines produce byte-identical
    reports (docs/PERFORMANCE.md, "labeling engine").

    Each pass is wrapped in a [label] trace span with one [label.cone]
    child span per labeled cone; volumes land in the [label.*] and
    [bdd.*] metrics — including [bdd.gamma.hits]/[bdd.gamma.misses] and
    [bdd.arena.nodes]/[bdd.arena.trims] ([docs/OBSERVABILITY.md]). *)

open Netcov_config

(** Outcome of one labeling pass over a materialized IFG. *)
type result = {
  covered : Element.Id_set.t;  (** all config elements in the IFG *)
  strong : Element.Id_set.t;
  weak : Element.Id_set.t;
  vars : int;  (** BDD variables after the heuristic *)
  bdd_nodes : int;
      (** max BDD node count observed after labeling a cone: the
          per-domain arena's size under [~arena:true], the largest
          private manager under [~arena:false] *)
  seconds : float;
}

(** [disjfree_heuristic] (default true) controls the paper's
    variable-reduction heuristic; disabling it is exposed for the
    ablation benchmark only — results are identical.

    [arena] (default true) selects the shared per-domain arena engine;
    [~arena:false] is the legacy fresh-manager-per-cone engine kept as
    the differential reference — results are byte-identical (the
    `label-arena` oracle and [@bench-label-smoke] assert it).

    [pool] fans the per-tested-fact cone predicates out across domains
    (each domain owns a private arena); results are identical at any
    domain count because per-cone strong sets merge by set union.
    Default: sequential. *)
val run :
  ?disjfree_heuristic:bool ->
  ?arena:bool ->
  ?pool:Netcov_parallel.Pool.t ->
  Ifg.t ->
  tested:Ifg.node_id list ->
  result

(** Isolated labeling of one tested fact's ancestor cone. *)
type cone_result = {
  c_covered : Element.Id_set.t;  (** config elements in the cone *)
  c_strong : Element.Id_set.t;  (** subset of [c_covered] *)
  c_vars : int;
  c_bdd_nodes : int;
  c_capped : bool;
      (** the cone hit the per-cone BDD variable cap; the result is
          still sound (capped candidates stay weak) but may diverge
          from {!run}'s global labeling — callers needing equality must
          fall back to {!run} *)
}

(** [run_cone g ~root] labels the cone of one tested fact independently
    of any other tested fact. The union over roots of [c_covered] /
    [c_strong] equals {!run}'s [covered] / [strong] (unless a cone is
    [c_capped]): necessity of a monotone predicate's variable is
    invariant under fixing sibling-cone variables to true. This is the
    unit of reuse for the incremental engine (lib/incr).

    Runs in the calling domain's persistent arena (the root-specific
    candidate set keeps gamma private per call, but hash-consed nodes
    and the warm apply cache are shared with every other pass on this
    domain). *)
val run_cone : Ifg.t -> root:Ifg.node_id -> cone_result

(** Trim the calling domain's BDD arena now: drop all nodes, the gamma
    memo and the apply cache, shrinking back to the creation footprint.
    Safe whenever no labeling call is active on this domain. Arenas
    also self-trim at the watermark on entry to any labeling task. *)
val trim_arena : unit -> unit

(** Node count of the calling domain's arena (tests, diagnostics). *)
val arena_node_count : unit -> int

(** Override the per-domain auto-trim watermark (nodes; default
    [1 lsl 20]). Raises [Invalid_argument] on values < 2. *)
val set_arena_watermark : int -> unit
