(** Strong/weak coverage labeling (§4.3).

    Each config element in the materialized IFG is covered. An element is
    {e strongly} covered when some tested fact could not be derived
    without it (necessity, [¬x ⇒ ¬Γ(t)]); otherwise it is {e weakly}
    covered (its contribution routes only through disjunctive choices
    with alternatives).

    Implementation: Boolean predicates over config variables are built
    bottom-up as BDDs — conjunction at normal nodes, disjunction at
    disjunctive nodes — and necessity reduces to a cofactor constancy
    check. Config facts with a disjunction-free path to a tested fact are
    pre-classified strong and their variables replaced by constant true
    (the paper's variable-reduction heuristic).

    Each pass is wrapped in a [label] trace span with one [label.cone]
    child span per labeled cone; volumes land in the [label.*] and
    [bdd.*] metrics ([docs/OBSERVABILITY.md]). *)

open Netcov_config

(** Outcome of one labeling pass over a materialized IFG. *)
type result = {
  covered : Element.Id_set.t;  (** all config elements in the IFG *)
  strong : Element.Id_set.t;
  weak : Element.Id_set.t;
  vars : int;  (** BDD variables after the heuristic *)
  bdd_nodes : int;
  seconds : float;
}

(** [disjfree_heuristic] (default true) controls the paper's
    variable-reduction heuristic; disabling it is exposed for the
    ablation benchmark only — results are identical.

    [pool] fans the per-tested-fact cone predicates out across domains
    (each cone already owns a private BDD manager); results are
    identical at any domain count because per-cone strong sets merge by
    set union. Default: sequential. *)
val run :
  ?disjfree_heuristic:bool ->
  ?pool:Netcov_parallel.Pool.t ->
  Ifg.t ->
  tested:Ifg.node_id list ->
  result

(** Isolated labeling of one tested fact's ancestor cone. *)
type cone_result = {
  c_covered : Element.Id_set.t;  (** config elements in the cone *)
  c_strong : Element.Id_set.t;  (** subset of [c_covered] *)
  c_vars : int;
  c_bdd_nodes : int;
  c_capped : bool;
      (** the cone hit the per-cone BDD variable cap; the result is
          still sound (capped candidates stay weak) but may diverge
          from {!run}'s global labeling — callers needing equality must
          fall back to {!run} *)
}

(** [run_cone g ~root] labels the cone of one tested fact independently
    of any other tested fact. The union over roots of [c_covered] /
    [c_strong] equals {!run}'s [covered] / [strong] (unless a cone is
    [c_capped]): necessity of a monotone predicate's variable is
    invariant under fixing sibling-cone variables to true. This is the
    unit of reuse for the incremental engine (lib/incr). *)
val run_cone : Ifg.t -> root:Ifg.node_id -> cone_result
