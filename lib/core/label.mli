(** Strong/weak coverage labeling (§4.3).

    Each config element in the materialized IFG is covered. An element is
    {e strongly} covered when some tested fact could not be derived
    without it (necessity, [¬x ⇒ ¬Γ(t)]); otherwise it is {e weakly}
    covered (its contribution routes only through disjunctive choices
    with alternatives).

    Implementation: Boolean predicates over config variables are built
    bottom-up as BDDs — conjunction at normal nodes, disjunction at
    disjunctive nodes — and necessity reduces to a cofactor constancy
    check. Config facts with a disjunction-free path to a tested fact are
    pre-classified strong and their variables replaced by constant true
    (the paper's variable-reduction heuristic).

    Each pass is wrapped in a [label] trace span with one [label.cone]
    child span per labeled cone; volumes land in the [label.*] and
    [bdd.*] metrics ([docs/OBSERVABILITY.md]). *)

open Netcov_config

(** Outcome of one labeling pass over a materialized IFG. *)
type result = {
  covered : Element.Id_set.t;  (** all config elements in the IFG *)
  strong : Element.Id_set.t;
  weak : Element.Id_set.t;
  vars : int;  (** BDD variables after the heuristic *)
  bdd_nodes : int;
  seconds : float;
}

(** [disjfree_heuristic] (default true) controls the paper's
    variable-reduction heuristic; disabling it is exposed for the
    ablation benchmark only — results are identical.

    [pool] fans the per-tested-fact cone predicates out across domains
    (each cone already owns a private BDD manager); results are
    identical at any domain count because per-cone strong sets merge by
    set union. Default: sequential. *)
val run :
  ?disjfree_heuristic:bool ->
  ?pool:Netcov_parallel.Pool.t ->
  Ifg.t ->
  tested:Ifg.node_id list ->
  result
