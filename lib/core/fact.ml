open Netcov_types
open Netcov_config
open Netcov_sim

type msg_kind = Pre_import | Post_import

type t =
  | F_config of Element.id
  | F_main_rib of { host : string; entry : Rib.main_entry }
  | F_bgp_rib of { host : string; route : Route.bgp; source : Rib.bgp_source }
  | F_connected_rib of { host : string; prefix : Prefix.t; ifname : string }
  | F_igp_rib of { host : string; entry : Rib.igp_entry }
  | F_acl of { host : string; acl : string; rule : int option }
  | F_msg of { kind : msg_kind; edge : string; route : Route.bgp }
  | F_edge of string
  | F_redist_edge of { host : string; proto : Route.protocol }
  | F_path of { src : string; dst : Ipv4.t; idx : int }

let route_key (r : Route.bgp) =
  Printf.sprintf "%s|%s|%s|%d|%d|%s|%s|%d"
    (Prefix.to_string r.prefix)
    (Ipv4.to_string r.next_hop)
    (As_path.to_string r.as_path)
    r.local_pref r.med
    (String.concat ","
       (List.map Community.to_string (Community.Set.elements r.communities)))
    (Route.origin_to_string r.origin)
    r.cluster_len

let key = function
  | F_config id -> Printf.sprintf "cfg:%d" id
  | F_main_rib { host; entry } ->
      Printf.sprintf "main:%s:%s:%s:%s" host
        (Prefix.to_string entry.me_prefix)
        (Rib.nexthop_to_string entry.me_nexthop)
        (Route.protocol_to_string entry.me_protocol)
  | F_bgp_rib { host; route; source } ->
      Printf.sprintf "bgp:%s:%s:%s" host (route_key route)
        (Rib.bgp_source_to_string source)
  | F_connected_rib { host; prefix; ifname } ->
      Printf.sprintf "conn:%s:%s:%s" host (Prefix.to_string prefix) ifname
  | F_igp_rib { host; entry } ->
      Printf.sprintf "igp:%s:%s:%s:%s" host
        (Prefix.to_string entry.ie_prefix)
        (Ipv4.to_string entry.ie_nexthop)
        entry.ie_out_if
  | F_acl { host; acl; rule } ->
      Printf.sprintf "acl:%s:%s:%s" host acl
        (match rule with Some i -> string_of_int i | None -> "default")
  | F_msg { kind; edge; route } ->
      Printf.sprintf "msg:%s:%s:%s"
        (match kind with Pre_import -> "pre" | Post_import -> "post")
        edge (route_key route)
  | F_edge k -> "edge:" ^ k
  | F_redist_edge { host; proto } ->
      Printf.sprintf "redist-edge:%s:%s" host (Route.protocol_to_string proto)
  | F_path { src; dst; idx } ->
      Printf.sprintf "path:%s:%s:%d" src (Ipv4.to_string dst) idx

let host_of = function
  | F_config _ -> None
  | F_main_rib { host; _ }
  | F_bgp_rib { host; _ }
  | F_connected_rib { host; _ }
  | F_igp_rib { host; _ }
  | F_acl { host; _ }
  | F_redist_edge { host; _ } ->
      Some host
  | F_msg _ | F_edge _ -> None
  | F_path { src; _ } -> Some src

let is_config = function F_config id -> Some id | _ -> None
let pp fmt f = Format.pp_print_string fmt (key f)

(* Structural identity, allocation-free. MUST project exactly the
   fields [key] prints — fact identity is part of the coverage
   semantics (it decides which derivations share an IFG node), so
   [equal a b <=> String.equal (key a) (key b)] is an invariant pinned
   by the intern-reference oracle. In particular:
   - a main-RIB fact ignores [me_metric];
   - an IGP-RIB fact ignores [ie_cost], [ie_dest_host], [ie_dest_if]. *)

let nexthop_equal a b =
  match (a, b) with
  | Rib.Nh_connected x, Rib.Nh_connected y -> String.equal x y
  | Rib.Nh_ip x, Rib.Nh_ip y -> Ipv4.equal x y
  | Rib.Nh_discard, Rib.Nh_discard -> true
  | (Rib.Nh_connected _ | Rib.Nh_ip _ | Rib.Nh_discard), _ -> false

let source_equal a b =
  match (a, b) with
  | Rib.Learned x, Rib.Learned y -> Ipv4.equal x y
  | Rib.From_network, Rib.From_network -> true
  | Rib.From_aggregate, Rib.From_aggregate -> true
  | Rib.From_redistribute p, Rib.From_redistribute q -> p = q
  | ( ( Rib.Learned _ | Rib.From_network | Rib.From_aggregate
      | Rib.From_redistribute _ ),
      _ ) ->
      false

let equal a b =
  match (a, b) with
  | F_config i, F_config j -> Int.equal i j
  | F_main_rib a, F_main_rib b ->
      String.equal a.host b.host
      && Prefix.equal a.entry.Rib.me_prefix b.entry.Rib.me_prefix
      && nexthop_equal a.entry.Rib.me_nexthop b.entry.Rib.me_nexthop
      && a.entry.Rib.me_protocol = b.entry.Rib.me_protocol
  | F_bgp_rib a, F_bgp_rib b ->
      String.equal a.host b.host
      && Route.equal_bgp a.route b.route
      && source_equal a.source b.source
  | F_connected_rib a, F_connected_rib b ->
      String.equal a.host b.host
      && Prefix.equal a.prefix b.prefix
      && String.equal a.ifname b.ifname
  | F_igp_rib a, F_igp_rib b ->
      String.equal a.host b.host
      && Prefix.equal a.entry.Rib.ie_prefix b.entry.Rib.ie_prefix
      && Ipv4.equal a.entry.Rib.ie_nexthop b.entry.Rib.ie_nexthop
      && String.equal a.entry.Rib.ie_out_if b.entry.Rib.ie_out_if
  | F_acl a, F_acl b ->
      String.equal a.host b.host
      && String.equal a.acl b.acl
      && Option.equal Int.equal a.rule b.rule
  | F_msg a, F_msg b ->
      a.kind = b.kind
      && String.equal a.edge b.edge
      && Route.equal_bgp a.route b.route
  | F_edge a, F_edge b -> String.equal a b
  | F_redist_edge a, F_redist_edge b ->
      String.equal a.host b.host && a.proto = b.proto
  | F_path a, F_path b ->
      String.equal a.src b.src && Ipv4.equal a.dst b.dst && Int.equal a.idx b.idx
  | ( ( F_config _ | F_main_rib _ | F_bgp_rib _ | F_connected_rib _
      | F_igp_rib _ | F_acl _ | F_msg _ | F_edge _ | F_redist_edge _
      | F_path _ ),
      _ ) ->
      false

(* Hash over the same projection as [equal]; strings are stored data
   ([Hashtbl.hash] folds their bytes without allocating), never built
   here. Each constructor gets a distinct salt. *)

let mix h v = (h * 31) + v + 1

let nexthop_hash = function
  | Rib.Nh_connected ifname -> mix 1 (Hashtbl.hash ifname)
  | Rib.Nh_ip ip -> mix 2 (Ipv4.hash ip)
  | Rib.Nh_discard -> 3

let source_hash = function
  | Rib.Learned ip -> mix 1 (Ipv4.hash ip)
  | Rib.From_network -> 2
  | Rib.From_aggregate -> 3
  | Rib.From_redistribute p -> mix 4 (Hashtbl.hash p)

let hash = function
  | F_config id -> mix 0x11 id
  | F_main_rib { host; entry } ->
      mix
        (mix (mix (mix 0x22 (Hashtbl.hash host)) (Prefix.hash entry.Rib.me_prefix))
           (nexthop_hash entry.Rib.me_nexthop))
        (Hashtbl.hash entry.Rib.me_protocol)
  | F_bgp_rib { host; route; source } ->
      mix (mix (mix 0x33 (Hashtbl.hash host)) (Route.hash_bgp route)) (source_hash source)
  | F_connected_rib { host; prefix; ifname } ->
      mix (mix (mix 0x44 (Hashtbl.hash host)) (Prefix.hash prefix)) (Hashtbl.hash ifname)
  | F_igp_rib { host; entry } ->
      mix
        (mix
           (mix (mix 0x55 (Hashtbl.hash host)) (Prefix.hash entry.Rib.ie_prefix))
           (Ipv4.hash entry.Rib.ie_nexthop))
        (Hashtbl.hash entry.Rib.ie_out_if)
  | F_acl { host; acl; rule } ->
      mix
        (mix (mix 0x66 (Hashtbl.hash host)) (Hashtbl.hash acl))
        (match rule with Some i -> i + 2 | None -> 1)
  | F_msg { kind; edge; route } ->
      mix
        (mix (mix 0x77 (match kind with Pre_import -> 1 | Post_import -> 2))
           (Hashtbl.hash edge))
        (Route.hash_bgp route)
  | F_edge k -> mix 0x88 (Hashtbl.hash k)
  | F_redist_edge { host; proto } ->
      mix (mix 0x99 (Hashtbl.hash host)) (Hashtbl.hash proto)
  | F_path { src; dst; idx } ->
      mix (mix (mix 0xaa (Hashtbl.hash src)) (Ipv4.hash dst)) idx

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash f = hash f land max_int
end)
