(** The information flow graph: a DAG whose vertices are facts (plus
    disjunctive nodes for non-deterministic contributions, §4.3) and
    whose edges point from contributor to derived fact.

    Fact identity is interned ({!Intern}) to dense ids on entry: adding
    a fact costs one structural hash, never a key-string construction.
    Node attributes and adjacency live in flat int arrays; traversals
    should prefer the [iter_*]/[fold_*] forms, which walk adjacency
    without allocating lists. *)

type node_id = int

type node_kind =
  | N_fact of Fact.t
  | N_disj  (** contribution holds if any parent holds *)

type t

(** [create ()] is an empty graph with a fresh interner. [mode]
    selects the fact-identity mode (default
    {!Intern.Structural}); {!Intern.By_key} reproduces the historical
    string-keyed identity for differential testing. *)
val create : ?mode:Intern.mode -> unit -> t

(** The graph's fact interner (export/debug: reverse id lookup). *)
val interner : t -> Intern.t

(** [add_fact g f] returns the node for [f], creating it if new; the
    boolean is [true] when the node is new. *)
val add_fact : t -> Fact.t -> node_id * bool

(** [find g f] is the node of [f] if materialized. *)
val find : t -> Fact.t -> node_id option

(** [add_disj g ~target parents] creates (or reuses) the disjunctive
    node grouping [parents] under [target], wiring parent and target
    edges. Parents are created as needed. *)
val add_disj : t -> target:node_id -> Fact.t list -> node_id

(** [add_edge g ~parent ~child] records that [parent] contributes to
    [child] (idempotent). *)
val add_edge : t -> parent:node_id -> child:node_id -> unit

val kind : t -> node_id -> node_kind

(** [is_disj g id] without materializing a {!node_kind} (hot paths). *)
val is_disj : t -> node_id -> bool

(** Element id when the node is a config fact (hot-path equivalent of
    matching {!kind} against [N_fact] + {!Fact.is_config}). *)
val config_eid : t -> node_id -> Netcov_config.Element.id option

(** Contributors of a node, in reverse insertion order. *)
val parents : t -> node_id -> node_id list

(** Facts this node contributes to, in reverse insertion order. *)
val children : t -> node_id -> node_id list

(** Allocation-free adjacency walks, same order as {!parents} /
    {!children}. *)
val iter_parents : t -> node_id -> (node_id -> unit) -> unit

val iter_children : t -> node_id -> (node_id -> unit) -> unit
val fold_parents : t -> node_id -> ('a -> node_id -> 'a) -> 'a -> 'a
val n_nodes : t -> int
val n_edges : t -> int

(** Iterate all nodes. *)
val iter_nodes : t -> (node_id -> node_kind -> unit) -> unit

(** Config-element nodes present in the graph, ascending node id. *)
val config_nodes : t -> (node_id * Netcov_config.Element.id) list

(** Expansion bookkeeping for the materialization loop. *)
val mark_expanded : t -> node_id -> unit

val is_expanded : t -> node_id -> bool

(** [reachable g seeds] is the ancestor closure of [seeds] along parent
    edges — the union of the seeds' contribution cones, seeds included.
    The result has one slot per node ([n_nodes g]); out-of-range seeds
    are ignored. The walk is iterative over the flat adjacency arrays
    (no recursion, no per-node allocation beyond the result). *)
val reachable : t -> node_id list -> bool array

(** [reverse_reachable g seeds] is the dual of {!reachable}: the
    descendant closure along child edges — every node whose ancestor
    cone contains a seed. For seeds that are config-element nodes this
    is exactly the set of facts (and tested roots) a configuration
    change to those elements can invalidate:
    [(reachable g [x]).(y)] iff [(reverse_reachable g [y]).(x)]. *)
val reverse_reachable : t -> node_id list -> bool array
