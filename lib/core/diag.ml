(* Re-export: the diagnostic channel lives in [Netcov_diag] (below the
   parsers in the library stack); core users reach it as
   [Netcov_core.Diag]. *)
include Netcov_diag.Diag
