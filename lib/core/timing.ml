(* Absorbed by the observability layer: the implementation lives in
   [Netcov_obs.Timing]; this module remains so existing [Netcov_core]
   users keep their unqualified [Timing] references. *)
include Netcov_obs.Timing
