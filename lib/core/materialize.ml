type stats = {
  nodes : int;
  edges : int;
  rule_seconds : float;
  sim_count : int;
  sim_seconds : float;
  sim_cache_hits : int;
  sim_cache_misses : int;
  iterations : int;
}

module M = Netcov_obs.Metrics
module T = Netcov_obs.Trace

(* Materialization metrics (docs/OBSERVABILITY.md); the per-run [stats]
   record remains the per-analysis view, the registry the cumulative
   cross-domain one. *)
let m_runs = M.counter M.default ~help:"IFG materializations" ~unit_:"runs" "materialize.runs"

let m_seconds =
  M.histogram M.default ~help:"wall time of one materialization"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "materialize.seconds"

let m_iterations =
  M.counter M.default ~help:"worklist nodes popped, summed over runs"
    ~unit_:"nodes" "materialize.iterations"

let m_nodes =
  M.histogram M.default ~help:"IFG nodes per materialization" ~unit_:"nodes"
    ~buckets:M.size_buckets "materialize.ifg_nodes"

let m_edges =
  M.histogram M.default ~help:"IFG edges per materialization" ~unit_:"edges"
    ~buckets:M.size_buckets "materialize.ifg_edges"

let m_sims =
  M.counter M.default ~help:"targeted policy simulations" ~unit_:"simulations"
    "sim.targeted.count"

let m_sim_seconds =
  M.histogram M.default ~help:"targeted-simulation wall time per materialization"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "sim.targeted.seconds"

let m_cache_hits =
  M.counter M.default ~help:"targeted-simulation memo cache hits"
    ~unit_:"lookups" "sim.cache.hits"

let m_cache_misses =
  M.counter M.default ~help:"targeted-simulation memo cache misses"
    ~unit_:"lookups" "sim.cache.misses"

let rule_counters =
  lazy
    (List.map
       (fun (name, _) ->
         ( name,
           M.counter M.default ~help:"inferences emitted per rule"
             ~unit_:"inferences"
             ~labels:[ ("rule", name) ]
             "materialize.inferences" ))
       Rules.all_rules)

let expandable ctx fact =
  match fact with
  | Fact.F_config _ -> false
  | _ -> (
      match Fact.host_of fact with
      | Some h -> not (Netcov_sim.Stable_state.is_external (Rules.state ctx) h)
      | None -> true)

let run ?mode ctx ~tested =
  T.with_span "materialize" ~args:[ ("tested", T.I (List.length tested)) ]
  @@ fun () ->
  let rule_counters = Lazy.force rule_counters in
  let g = Ifg.create ?mode () in
  let queue = Queue.create () in
  let enqueue_fact f =
    let id, is_new = Ifg.add_fact g f in
    if is_new then Queue.add id queue;
    id
  in
  let tested_ids = List.map enqueue_fact tested in
  let iterations = ref 0 in
  let apply_inference (inf : Rules.inference) =
    let target_id = enqueue_fact inf.target in
    List.iter
      (fun spec ->
        match (spec : Rules.parent_spec) with
        | Rules.P f ->
            let pid = enqueue_fact f in
            Ifg.add_edge g ~parent:pid ~child:target_id
        | Rules.P_disj [] -> ()
        | Rules.P_disj [ f ] ->
            let pid = enqueue_fact f in
            Ifg.add_edge g ~parent:pid ~child:target_id
        | Rules.P_disj fs ->
            (* Materialize members first so new ones enter the
               worklist. *)
            List.iter (fun f -> ignore (enqueue_fact f)) fs;
            ignore (Ifg.add_disj g ~target:target_id fs))
      inf.parents
  in
  let (), rule_seconds =
    Timing.time (fun () ->
        while not (Queue.is_empty queue) do
          incr iterations;
          let id = Queue.pop queue in
          if not (Ifg.is_expanded g id) then begin
            Ifg.mark_expanded g id;
            match Ifg.kind g id with
            | Ifg.N_disj -> ()
            | Ifg.N_fact f ->
                if expandable ctx f then
                  List.iter2
                    (fun named_rule (_, counter) ->
                      let infs = Rules.apply_rule ctx named_rule f in
                      if infs <> [] then M.inc counter (List.length infs);
                      List.iter apply_inference infs)
                    Rules.all_rules rule_counters
          end
        done)
  in
  let stats =
    {
      nodes = Ifg.n_nodes g;
      edges = Ifg.n_edges g;
      rule_seconds;
      sim_count = Rules.sim_count ctx;
      sim_seconds = Rules.sim_seconds ctx;
      sim_cache_hits = Rules.cache_hits ctx;
      sim_cache_misses = Rules.cache_misses ctx;
      iterations = !iterations;
    }
  in
  (* Flush the per-run stats into the cumulative registry in bulk: the
     worklist itself stays free of registry traffic. *)
  M.inc m_runs 1;
  M.observe m_seconds stats.rule_seconds;
  M.inc m_iterations stats.iterations;
  M.observe m_nodes (float_of_int stats.nodes);
  M.observe m_edges (float_of_int stats.edges);
  M.inc m_sims stats.sim_count;
  M.observe m_sim_seconds stats.sim_seconds;
  M.inc m_cache_hits stats.sim_cache_hits;
  M.inc m_cache_misses stats.sim_cache_misses;
  (g, tested_ids, stats)
