type stats = {
  nodes : int;
  edges : int;
  rule_seconds : float;
  sim_count : int;
  sim_seconds : float;
  sim_cache_hits : int;
  sim_cache_misses : int;
  iterations : int;
}

let expandable ctx fact =
  match fact with
  | Fact.F_config _ -> false
  | _ -> (
      match Fact.host_of fact with
      | Some h -> not (Netcov_sim.Stable_state.is_external (Rules.state ctx) h)
      | None -> true)

let run ctx ~tested =
  let g = Ifg.create () in
  let queue = Queue.create () in
  let enqueue_fact f =
    let id, is_new = Ifg.add_fact g f in
    if is_new then Queue.add id queue;
    id
  in
  let tested_ids = List.map enqueue_fact tested in
  let iterations = ref 0 in
  let apply_inference (inf : Rules.inference) =
    let target_id = enqueue_fact inf.target in
    List.iter
      (fun spec ->
        match (spec : Rules.parent_spec) with
        | Rules.P f ->
            let pid = enqueue_fact f in
            Ifg.add_edge g ~parent:pid ~child:target_id
        | Rules.P_disj [] -> ()
        | Rules.P_disj [ f ] ->
            let pid = enqueue_fact f in
            Ifg.add_edge g ~parent:pid ~child:target_id
        | Rules.P_disj fs ->
            (* Materialize members first so new ones enter the
               worklist. *)
            List.iter (fun f -> ignore (enqueue_fact f)) fs;
            ignore (Ifg.add_disj g ~target:target_id fs))
      inf.parents
  in
  let (), rule_seconds =
    Timing.time (fun () ->
        while not (Queue.is_empty queue) do
          incr iterations;
          let id = Queue.pop queue in
          if not (Ifg.is_expanded g id) then begin
            Ifg.mark_expanded g id;
            match Ifg.kind g id with
            | Ifg.N_disj -> ()
            | Ifg.N_fact f ->
                if expandable ctx f then
                  List.iter
                    (fun rule -> List.iter apply_inference (rule ctx f))
                    Rules.all_rules
          end
        done)
  in
  ( g,
    tested_ids,
    {
      nodes = Ifg.n_nodes g;
      edges = Ifg.n_edges g;
      rule_seconds;
      sim_count = Rules.sim_count ctx;
      sim_seconds = Rules.sim_seconds ctx;
      sim_cache_hits = Rules.cache_hits ctx;
      sim_cache_misses = Rules.cache_misses ctx;
      iterations = !iterations;
    } )
