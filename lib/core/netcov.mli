(** NetCov public entry point: given a stable network state and what a
    test suite tested, compute configuration coverage.

    Every analysis is wrapped in an [analyze] trace span and counted in
    the [analyze.*] metrics of {!Netcov_obs} (catalog in
    [docs/OBSERVABILITY.md]); observability output never changes the
    computed report. *)

open Netcov_config

(** What the test suite tested: data plane facts (RIB entries inspected
    by data plane tests) and configuration elements exercised directly
    by control plane tests. *)
type tested = { dp_facts : Fact.t list; cp_elements : Element.id list }

(** The empty test description: analyzing it yields zero coverage. *)
val no_tests : tested

(** Union of two test descriptions; data plane facts are deduplicated
    by fact identity, element ids sorted and deduplicated. *)
val merge_tested : tested -> tested -> tested

(** Wall-clock and volume breakdown of one analysis (the per-run view;
    the cumulative cross-run view lives in the {!Netcov_obs.Metrics}
    registry). *)
type timing = {
  total_s : float;
      (** Elapsed wall-clock time. For a single {!analyze} run this is
          the measured end-to-end time; for a merged suite report it is
          the value passed to [merge_reports ~wall_s], or — when the
          caller did not measure — the max of the per-test wall times,
          a lower bound (per-test analyses may have run concurrently,
          so their wall times must not be summed). *)
  cpu_total_s : float;
      (** Sum of per-analysis wall times: total compute spent. Equals
          [total_s] for a single run; for a suite merged from a
          parallel pool it can exceed [total_s] by up to the domain
          count. *)
  materialize_s : float;  (** IFG walk + stable-state lookups *)
  sim_s : float;  (** targeted simulations (subset of materialize) *)
  label_s : float;  (** BDD strong/weak labeling *)
  sim_count : int;
  sim_cache_hits : int;
      (** policy-chain evaluations answered by the targeted-simulation
          memo cache *)
  sim_cache_misses : int;
  ifg_nodes : int;
  ifg_edges : int;
  bdd_vars : int;
}

(** Everything one analysis produces: the coverage map, its timing
    breakdown and the registry's dead-code report. *)
type report = {
  coverage : Coverage.t;
  timing : timing;
  dead : Deadcode.report;
}

(** [analyze state tested] runs the full pipeline: lazy IFG
    materialization from the tested data plane facts, strong/weak
    labeling, and direct marking of control-plane-tested elements.

    [pool] parallelizes the labeling pass across its domains (default:
    sequential). [sim_cache] (default true) memoizes targeted policy
    simulations within this analysis; [sim_canon] (default true) keys
    that memo cache by canonicalized routes — attributes the policy
    chain neither reads nor writes are stripped from the key (see
    {!Rules.create_sim_cache}). [label_arena] (default true) selects
    the shared per-domain BDD arena for the labeling pass;
    [~label_arena:false] is the legacy fresh-manager-per-cone engine
    kept as the differential reference (see {!Label.run}). [identity]
    selects the IFG's fact-identity mode (default {!Intern.Structural};
    {!Intern.By_key} is the string-keyed reference for differential
    testing). None of these options changes the report, only the wall
    time.

    [diags] installs a diagnostic sink on the rule context: with one, a
    crashing inference rule (unknown device, policy-eval failure, …)
    degrades to a [Sim_failure] diagnostic attached to the offending
    fact instead of aborting the analysis (see {!Rules.apply_rule}).
    Without it, behaviour — including raising — is unchanged. *)
val analyze :
  ?pool:Netcov_parallel.Pool.t ->
  ?sim_cache:bool ->
  ?sim_canon:bool ->
  ?label_arena:bool ->
  ?identity:Intern.mode ->
  ?diags:(Diag.t -> unit) ->
  Netcov_sim.Stable_state.t ->
  tested ->
  report

(** [analyze_suite state testeds] analyzes every test of a suite —
    fanning the per-test materialize/label pipelines out across the
    pool's domains — and returns the per-test reports in input order.
    When [pool] is omitted a pool of [Pool.default_domains ()] domains
    is created for the call ([NETCOV_DOMAINS=1] forces sequential).

    The per-test reports are identical at any domain count: per-test
    analyses share only the immutable stable state. *)
val analyze_suite :
  ?pool:Netcov_parallel.Pool.t ->
  ?sim_cache:bool ->
  ?sim_canon:bool ->
  ?label_arena:bool ->
  ?identity:Intern.mode ->
  Netcov_sim.Stable_state.t ->
  tested list ->
  report list

(** One test whose analysis raised and was excluded from the suite. *)
type test_failure = {
  tf_index : int;  (** position in the input [tested list] *)
  tf_label : string;  (** caller-supplied label, or ["test-<index>"] *)
  tf_error : string;  (** [Printexc.to_string] of the exception *)
  tf_backtrace : string;  (** captured backtrace, possibly empty *)
}

(** Outcome of a fault-isolated suite run: reports of the surviving
    tests (in input order) plus a record per excluded test. *)
type suite_outcome = { ok : report list; failures : test_failure list }

(** Like {!analyze_suite}, but with per-test fault isolation: a test
    whose analysis raises is caught, recorded as a {!test_failure},
    counted in the [analyze.errors] metric, reported as a
    [Test_failure] diagnostic when [diags] is given — and excluded. The
    surviving tests' reports are byte-identical to running them alone
    ([Stack_overflow]/[Out_of_memory] still propagate). [labels] names
    the tests for failure records, matched by position. *)
val analyze_suite_isolated :
  ?pool:Netcov_parallel.Pool.t ->
  ?sim_cache:bool ->
  ?sim_canon:bool ->
  ?identity:Intern.mode ->
  ?diags:(Diag.t -> unit) ->
  ?labels:string list ->
  Netcov_sim.Stable_state.t ->
  tested list ->
  suite_outcome

(** Deterministic left-to-right merge of per-test reports into a suite
    report: per element the stronger coverage status wins (equal to
    analyzing the union of the tests' tested facts); [cpu_total_s],
    stage timings and counters are summed ([bdd_vars] is the max).

    Wall time does not sum across reports that may have run in
    parallel: merged [total_s] is [wall_s] when given (callers that
    timed the whole suite should pass it), otherwise the max of the
    inputs' [total_s] — a lower bound on true elapsed time.

    Invariant: all reports must come from analyses of the same element
    registry. The merged [dead] report is taken from the first input
    (dead-code analysis depends only on the registry), and coverage
    element ids are only comparable within one registry — merging
    reports whose coverages disagree on the registry raises
    [Invalid_argument].

    The empty list raises [Invalid_argument] unless [registry] is
    given, in which case it merges into the documented empty report:
    zero coverage over that registry, zero timing ([total_s] is
    [wall_s] when given), and the registry's dead-code report — so an
    all-failed suite under [--keep-going] still emits a valid report.
    With both [registry] and a non-empty list, the two must agree. *)
val merge_reports :
  ?wall_s:float -> ?registry:Registry.t -> report list -> report

(** Dead-code line share over considered lines, percent. *)
val dead_line_pct : report -> float
