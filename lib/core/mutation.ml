open Netcov_types
open Netcov_config
open Netcov_sim
module Pool = Netcov_parallel.Pool

(* ------------------------------------------------------------------ *)
(* Element surgery *)

(* Remove exactly the [nth] entry matching [name] (0-based among
   matches). Registry elements group every same-keyed entry under one
   element, so a delete mutant must pick one occurrence — removing all
   of them at once (the historical behavior) turns two ECMP static
   routes to one prefix into a single over-strong mutant and inflates
   kill counts. *)
let remove_nth_named name_of name nth lst =
  let rec go seen acc = function
    | [] -> None
    | x :: rest ->
        if name_of x = name then
          if seen = nth then Some (List.rev_append acc rest)
          else go (seen + 1) (x :: acc) rest
        else go seen (x :: acc) rest
  in
  go 0 [] lst

let count_named name_of name lst =
  List.length (List.filter (fun x -> name_of x = name) lst)

(* Route_policy_clause keys are "POLICY/term". *)
let policy_term_of_key name =
  match String.index_opt name '/' with
  | None -> None
  | Some i ->
      Some
        ( String.sub name 0 i,
          String.sub name (i + 1) (String.length name - i - 1) )

let occurrences (d : Device.t) (key : Element.key) =
  let bgp f = match d.bgp with None -> 0 | Some b -> f b in
  match key.etype with
  | Element.Interface ->
      count_named (fun (i : Device.interface) -> i.if_name) key.name
        d.interfaces
  | Element.Bgp_peer ->
      bgp (fun b ->
          count_named
            (fun (n : Device.neighbor) -> Ipv4.to_string n.nb_ip)
            key.name b.neighbors)
  | Element.Bgp_peer_group ->
      bgp (fun b ->
          count_named (fun (g : Device.peer_group) -> g.pg_name) key.name
            b.groups)
  | Element.Route_policy_clause -> (
      match policy_term_of_key key.name with
      | None -> 0
      | Some (pol, term) ->
          List.fold_left
            (fun acc (p : Policy_ast.policy) ->
              if p.pol_name <> pol then acc
              else
                acc
                + count_named
                    (fun (t : Policy_ast.term) -> t.term_name)
                    term p.terms)
            0 d.policies)
  | Element.Prefix_list ->
      count_named (fun (p : Device.prefix_list) -> p.pl_name) key.name
        d.prefix_lists
  | Element.Community_list ->
      count_named (fun (c : Device.community_list) -> c.cl_name) key.name
        d.community_lists
  | Element.As_path_list ->
      count_named (fun (a : Device.as_path_list) -> a.al_name) key.name
        d.as_path_lists
  | Element.Static_route ->
      count_named
        (fun (s : Device.static_route) -> Prefix.to_string s.st_prefix)
        key.name d.static_routes
  | Element.Bgp_network -> bgp (fun b -> count_named Prefix.to_string key.name b.networks)
  | Element.Bgp_aggregate ->
      bgp (fun b ->
          count_named
            (fun (a : Device.aggregate) -> Prefix.to_string a.ag_prefix)
            key.name b.aggregates)
  | Element.Bgp_redistribute ->
      bgp (fun b ->
          count_named
            (fun (r : Device.redistribute) -> Route.protocol_to_string r.rd_from)
            key.name b.redistributes)
  | Element.Acl_def ->
      count_named (fun (a : Device.acl) -> a.acl_name) key.name d.acls

let delete_element ?(occurrence = 0) (d : Device.t) (key : Element.key) =
  let with_bgp f =
    match d.bgp with
    | None -> None
    | Some b -> Option.map (fun b -> { d with Device.bgp = Some b }) (f b)
  in
  match key.etype with
  | Element.Interface ->
      Option.map
        (fun interfaces -> { d with Device.interfaces })
        (remove_nth_named (fun (i : Device.interface) -> i.if_name) key.name
           occurrence d.interfaces)
  | Element.Bgp_peer ->
      with_bgp (fun b ->
          Option.map
            (fun neighbors -> { b with Device.neighbors })
            (remove_nth_named
               (fun (n : Device.neighbor) -> Ipv4.to_string n.nb_ip)
               key.name occurrence b.neighbors))
  | Element.Bgp_peer_group ->
      (* JunOS semantics: neighbors are defined inside their group, so
         deleting the group deletes its members too — unless another
         same-named group definition remains to hold them. *)
      with_bgp (fun b ->
          Option.map
            (fun groups ->
              let still =
                List.exists
                  (fun (g : Device.peer_group) -> g.pg_name = key.name)
                  groups
              in
              {
                b with
                Device.groups;
                neighbors =
                  (if still then b.neighbors
                   else
                     List.filter
                       (fun (n : Device.neighbor) ->
                         n.nb_group <> Some key.name)
                       b.neighbors);
              })
            (remove_nth_named (fun (g : Device.peer_group) -> g.pg_name)
               key.name occurrence b.groups))
  | Element.Route_policy_clause -> (
      match policy_term_of_key key.name with
      | None -> None
      | Some (pol, term) ->
          let seen = ref 0 in
          let removed = ref false in
          let policies =
            List.map
              (fun (p : Policy_ast.policy) ->
                if p.pol_name <> pol then p
                else
                  let terms =
                    List.filter
                      (fun (t : Policy_ast.term) ->
                        if t.term_name = term && not !removed then
                          if !seen = occurrence then begin
                            removed := true;
                            false
                          end
                          else begin
                            incr seen;
                            true
                          end
                        else true)
                      p.terms
                  in
                  { p with Policy_ast.terms })
              d.policies
          in
          if !removed then Some { d with Device.policies } else None)
  | Element.Prefix_list ->
      Option.map
        (fun prefix_lists -> { d with Device.prefix_lists })
        (remove_nth_named (fun (p : Device.prefix_list) -> p.pl_name) key.name
           occurrence d.prefix_lists)
  | Element.Community_list ->
      Option.map
        (fun community_lists -> { d with Device.community_lists })
        (remove_nth_named (fun (c : Device.community_list) -> c.cl_name)
           key.name occurrence d.community_lists)
  | Element.As_path_list ->
      Option.map
        (fun as_path_lists -> { d with Device.as_path_lists })
        (remove_nth_named (fun (a : Device.as_path_list) -> a.al_name)
           key.name occurrence d.as_path_lists)
  | Element.Static_route ->
      Option.map
        (fun static_routes -> { d with Device.static_routes })
        (remove_nth_named
           (fun (s : Device.static_route) -> Prefix.to_string s.st_prefix)
           key.name occurrence d.static_routes)
  | Element.Bgp_network ->
      with_bgp (fun b ->
          Option.map
            (fun networks -> { b with Device.networks })
            (remove_nth_named Prefix.to_string key.name occurrence b.networks))
  | Element.Bgp_aggregate ->
      with_bgp (fun b ->
          Option.map
            (fun aggregates -> { b with Device.aggregates })
            (remove_nth_named
               (fun (a : Device.aggregate) -> Prefix.to_string a.ag_prefix)
               key.name occurrence b.aggregates))
  | Element.Bgp_redistribute ->
      with_bgp (fun b ->
          Option.map
            (fun redistributes -> { b with Device.redistributes })
            (remove_nth_named
               (fun (r : Device.redistribute) ->
                 Route.protocol_to_string r.rd_from)
               key.name occurrence b.redistributes))
  | Element.Acl_def ->
      Option.map
        (fun acls -> { d with Device.acls })
        (remove_nth_named (fun (a : Device.acl) -> a.acl_name) key.name
           occurrence d.acls)

(* ------------------------------------------------------------------ *)
(* Typed mutation operators *)

type operator = {
  op_name : string;
  op_describe : string;
  op_mutate : Device.t -> Element.key -> Device.t list;
}

let op_delete =
  {
    op_name = "delete";
    op_describe =
      "remove one occurrence of the element (the paper's §3.1 mutant); \
       one mutant per same-keyed occurrence";
    op_mutate =
      (fun d key ->
        List.filter_map
          (fun i -> delete_element ~occurrence:i d key)
          (List.init (occurrences d key) Fun.id));
  }

(* Rewrite the first term of the element's policy clause with [f];
   one mutant when [f] changed anything. *)
let map_clause d key f =
  match (key.Element.etype, policy_term_of_key key.Element.name) with
  | Element.Route_policy_clause, Some (pol, term) ->
      let done_ = ref false in
      let policies =
        List.map
          (fun (p : Policy_ast.policy) ->
            if p.pol_name <> pol || !done_ then p
            else
              let terms =
                List.map
                  (fun (t : Policy_ast.term) ->
                    if t.term_name = term && not !done_ then
                      match f t with
                      | Some t' ->
                          done_ := true;
                          t'
                      | None -> t
                    else t)
                  p.terms
              in
              { p with Policy_ast.terms })
          d.Device.policies
      in
      if !done_ then [ { d with Device.policies } ] else []
  | _ -> []

let flip_actions actions =
  let changed = ref false in
  let actions =
    List.map
      (function
        | Policy_ast.Accept ->
            changed := true;
            Policy_ast.Reject
        | Policy_ast.Reject ->
            changed := true;
            Policy_ast.Accept
        | a -> a)
      actions
  in
  if !changed then Some actions else None

let op_flip_policy_action =
  {
    op_name = "flip-policy-action";
    op_describe = "swap accept and reject in the clause's action list";
    op_mutate =
      (fun d key ->
        map_clause d key (fun t ->
            Option.map
              (fun actions -> { t with Policy_ast.actions })
              (flip_actions t.Policy_ast.actions)));
  }

let perturb_actions delta actions ~pick =
  let changed = ref false in
  let actions =
    List.map
      (fun a ->
        match pick a with
        | Some mk when not !changed ->
            changed := true;
            mk delta
        | _ -> a)
      actions
  in
  if !changed then Some actions else None

let op_perturb_local_pref =
  {
    op_name = "perturb-local-pref";
    op_describe =
      "add 50 to a set-local-pref action, or to a peer group's local-pref";
    op_mutate =
      (fun d key ->
        match key.Element.etype with
        | Element.Route_policy_clause ->
            map_clause d key (fun t ->
                Option.map
                  (fun actions -> { t with Policy_ast.actions })
                  (perturb_actions 50 t.Policy_ast.actions ~pick:(function
                    | Policy_ast.Set_local_pref n ->
                        Some (fun d -> Policy_ast.Set_local_pref (n + d))
                    | _ -> None)))
        | Element.Bgp_peer_group -> (
            match d.Device.bgp with
            | None -> []
            | Some b ->
                let done_ = ref false in
                let groups =
                  List.map
                    (fun (g : Device.peer_group) ->
                      match g.pg_local_pref with
                      | Some n when g.pg_name = key.Element.name && not !done_
                        ->
                          done_ := true;
                          { g with Device.pg_local_pref = Some (n + 50) }
                      | _ -> g)
                    b.groups
                in
                if !done_ then
                  [ { d with Device.bgp = Some { b with Device.groups } } ]
                else [])
        | _ -> []);
  }

let op_perturb_med =
  {
    op_name = "perturb-med";
    op_describe = "add 50 to a set-med action in the clause";
    op_mutate =
      (fun d key ->
        map_clause d key (fun t ->
            Option.map
              (fun actions -> { t with Policy_ast.actions })
              (perturb_actions 50 t.Policy_ast.actions ~pick:(function
                | Policy_ast.Set_med n ->
                    Some (fun d -> Policy_ast.Set_med (n + d))
                | _ -> None))));
  }

let op_widen_prefix_bounds =
  {
    op_name = "widen-prefix-bounds";
    op_describe = "raise the first entry's le bound to 32 (match more)";
    op_mutate =
      (fun d key ->
        match key.Element.etype with
        | Element.Prefix_list ->
            let done_ = ref false in
            let prefix_lists =
              List.map
                (fun (pl : Device.prefix_list) ->
                  if pl.pl_name <> key.Element.name || !done_ then pl
                  else
                    {
                      pl with
                      Device.pl_entries =
                        List.map
                          (fun (e : Device.prefix_list_entry) ->
                            if (not !done_) && e.ple_le <> Some 32 then begin
                              done_ := true;
                              { e with Device.ple_le = Some 32 }
                            end
                            else e)
                          pl.pl_entries;
                    })
                d.Device.prefix_lists
            in
            if !done_ then [ { d with Device.prefix_lists } ] else []
        | _ -> []);
  }

let op_narrow_prefix_bounds =
  {
    op_name = "narrow-prefix-bounds";
    op_describe =
      "drop the first entry's ge/le bounds, making it exact-match only";
    op_mutate =
      (fun d key ->
        match key.Element.etype with
        | Element.Prefix_list ->
            let done_ = ref false in
            let prefix_lists =
              List.map
                (fun (pl : Device.prefix_list) ->
                  if pl.pl_name <> key.Element.name || !done_ then pl
                  else
                    {
                      pl with
                      Device.pl_entries =
                        List.map
                          (fun (e : Device.prefix_list_entry) ->
                            if
                              (not !done_)
                              && (e.ple_ge <> None || e.ple_le <> None)
                            then begin
                              done_ := true;
                              { e with Device.ple_ge = None; ple_le = None }
                            end
                            else e)
                          pl.pl_entries;
                    })
                d.Device.prefix_lists
            in
            if !done_ then [ { d with Device.prefix_lists } ] else []
        | _ -> []);
  }

let op_swap_acl_action =
  {
    op_name = "swap-acl-action";
    op_describe = "flip the first rule of the ACL between permit and deny";
    op_mutate =
      (fun d key ->
        match key.Element.etype with
        | Element.Acl_def ->
            let done_ = ref false in
            let acls =
              List.map
                (fun (a : Device.acl) ->
                  if a.acl_name <> key.Element.name || !done_ then a
                  else
                    match a.rules with
                    | [] -> a
                    | r :: rest ->
                        done_ := true;
                        {
                          a with
                          Device.rules =
                            { r with Device.permit = not r.Device.permit }
                            :: rest;
                        })
                d.Device.acls
            in
            if !done_ then [ { d with Device.acls } ] else []
        | _ -> []);
  }

let op_drop_community =
  {
    op_name = "drop-community";
    op_describe = "remove the first member of the community list";
    op_mutate =
      (fun d key ->
        match key.Element.etype with
        | Element.Community_list ->
            let done_ = ref false in
            let community_lists =
              List.map
                (fun (c : Device.community_list) ->
                  if c.cl_name <> key.Element.name || !done_ then c
                  else
                    match c.cl_members with
                    | [] -> c
                    | _ :: rest ->
                        done_ := true;
                        { c with Device.cl_members = rest })
                d.Device.community_lists
            in
            if !done_ then [ { d with Device.community_lists } ] else []
        | _ -> []);
  }

let all_operators =
  [
    op_delete;
    op_flip_policy_action;
    op_widen_prefix_bounds;
    op_narrow_prefix_bounds;
    op_swap_acl_action;
    op_perturb_local_pref;
    op_perturb_med;
    op_drop_community;
  ]

(* Deletion alone is the paper's §3.1 definition; it stays the default
   so mutation coverage remains comparable to IFG coverage (the
   semantic operators deliberately probe behaviors IFG does not
   label). *)
let default_operators = [ op_delete ]

let operator op_name =
  List.find_opt (fun o -> o.op_name = op_name) all_operators

(* ------------------------------------------------------------------ *)
(* Mutants *)

type mutant = {
  mu_element : Element.t;
  mu_op : string;
  mu_device : Device.t;
}

let mutants_of ?(operators = default_operators) reg id =
  let e = Registry.element reg id in
  match Registry.device_opt reg e.Element.device with
  | None -> None
  | Some d ->
      Some
        (List.concat_map
           (fun op ->
             List.map
               (fun d' -> { mu_element = e; mu_op = op.op_name; mu_device = d' })
               (op.op_mutate d e.Element.ekey))
           operators)

let mutant_devices reg m =
  List.map
    (fun (d : Device.t) ->
      if d.hostname = m.mu_element.Element.device then m.mu_device else d)
    (Registry.devices reg)

let mutant_registry reg m = Registry.build (mutant_devices reg m)

(* ------------------------------------------------------------------ *)
(* Oracles over stable states *)

let fact_holds state (f : Fact.t) =
  match f with
  | Fact.F_main_rib { host; entry } ->
      List.exists
        (fun e -> Rib.compare_main e entry = 0)
        (Stable_state.main_lookup state host entry.me_prefix)
  | Fact.F_bgp_rib { host; route; source } ->
      List.exists
        (fun (e : Rib.bgp_entry) ->
          Route.equal_bgp e.be_route route
          &&
          match (e.be_source, source) with
          | Rib.Learned a, Rib.Learned b -> Ipv4.equal a b
          | a, b -> a = b)
        (Stable_state.bgp_lookup state host route.Route.prefix)
  | Fact.F_path { src; dst; _ } -> Stable_state.reachable state ~src ~dst
  | Fact.F_igp_rib { host; entry } ->
      List.exists
        (fun e -> Rib.compare_igp e entry = 0)
        (Stable_state.igp_lookup state host entry.ie_prefix)
  | Fact.F_connected_rib { host; prefix; ifname } -> (
      match Stable_state.main_lookup state host prefix with
      | entries ->
          List.exists
            (fun (e : Rib.main_entry) ->
              e.me_nexthop = Rib.Nh_connected ifname)
            entries)
  | Fact.F_config _ | Fact.F_acl _ | Fact.F_msg _ | Fact.F_edge _
  | Fact.F_redist_edge _ ->
      true

let facts_oracle facts state = List.for_all (fact_holds state) facts

(* ------------------------------------------------------------------ *)
(* Execution *)

type mode = Scratch | Warm

type outcome = {
  o_element : Element.id;
  o_op : string;
  o_killed : bool;
  o_seconds : float;
}

type result = {
  killed : Element.Id_set.t;
  survived : Element.Id_set.t;
  skipped : Element.Id_set.t;
  mutants_run : int;
  seconds : float;
  outcomes : outcome list;
}

(* Expected failure modes of a mutant network: a broken configuration
   may legitimately make simulation or oracle evaluation raise. Anything
   outside this list (Out_of_memory, Stack_overflow, Assert_failure,
   ...) is an engine bug and must propagate, not masquerade as a
   verdict. *)
let is_domain_exn = function
  | Failure _ | Invalid_argument _ | Not_found -> true
  | _ -> false

let competitor_prone = function
  | Element.Route_policy_clause | Element.Prefix_list | Element.Community_list
  | Element.As_path_list | Element.Acl_def | Element.Interface ->
      true
  | Element.Bgp_peer | Element.Bgp_peer_group | Element.Static_route
  | Element.Bgp_network | Element.Bgp_aggregate | Element.Bgp_redistribute ->
      false

let masking_prone = function
  | Element.Route_policy_clause | Element.Prefix_list | Element.Community_list
  | Element.As_path_list | Element.Acl_def ->
      true
  | Element.Interface | Element.Bgp_peer | Element.Bgp_peer_group
  | Element.Static_route | Element.Bgp_network | Element.Bgp_aggregate
  | Element.Bgp_redistribute ->
      false

(* Deleting an interface is an environmental change the control plane
   is built to heal: the IGP reroutes around the missing link, multihop
   sessions re-establish over the surviving paths, and the tested facts
   come back identical. IFG coverage still marks the interface strong —
   it sat on the realized session-enabling or forwarding path — so on
   redundant topologies (any backbone ring, any fat-tree) strong
   interfaces legitimately survive deletion. *)
let reroute_prone = function
  | Element.Interface -> true
  | Element.Route_policy_clause | Element.Prefix_list | Element.Community_list
  | Element.As_path_list | Element.Acl_def | Element.Bgp_peer
  | Element.Bgp_peer_group | Element.Static_route | Element.Bgp_network
  | Element.Bgp_aggregate | Element.Bgp_redistribute ->
      false

let run reg ~oracle ?elements ?(operators = default_operators)
    ?(mode = Warm) ?(pool = Pool.sequential) ?diags () =
  let t0 = Unix.gettimeofday () in
  let baseline_state = Stable_state.compute ?diags reg in
  (* Every warm mutant is seeded from [baseline_state]: prime its import
     memo once (about one BGP round) before fanning out, so each mutant
     replays the imports its cone did not touch. Read-only after
     priming, hence safe under the domain pool. *)
  if mode = Warm then Stable_state.prime baseline_state;
  let baseline = oracle baseline_state in
  let element_ids =
    match elements with
    | Some ids -> ids
    | None ->
        List.rev (Registry.fold_elements reg (fun acc e -> e.Element.id :: acc) [])
  in
  let report_failure (m : mutant) exn =
    match diags with
    | None -> ()
    | Some sink ->
        let line =
          match m.mu_element.Element.lines with [] -> None | l :: _ -> Some l
        in
        sink
          (Netcov_diag.Diag.error ~device:m.mu_element.Element.device ?line
             Netcov_diag.Diag.Sim_failure
             (Printf.sprintf "mutant %s of %s (%s) crashed: %s" m.mu_op
                m.mu_element.Element.ekey.Element.name
                (Element.etype_to_string m.mu_element.Element.ekey.Element.etype)
                (Printexc.to_string exn)))
  in
  let run_mutant (m : mutant) =
    let devs = mutant_devices reg m in
    match
      let state =
        match mode with
        | Warm -> Stable_state.update_devices ?diags baseline_state devs
        | Scratch -> Stable_state.compute ?diags (Registry.build devs)
      in
      oracle state
    with
    | verdict -> verdict <> baseline
    | exception exn when is_domain_exn exn ->
        (* The mutant broke the network so badly the pipeline raised:
           that is a behavior change, i.e. killed — but an attributed,
           reported one, never a silently swallowed engine crash. *)
        report_failure m exn;
        true
  in
  let eval_element id =
    let e = Registry.element reg id in
    match Registry.device_opt reg e.Element.device with
    | None ->
        (* Element of a device the registry cannot resolve: there is no
           mutant to build, and recomputing the baseline would record a
           phantom no-op as survived. *)
        (id, `Skipped, [])
    | Some d ->
        let ms =
          List.concat_map
            (fun op ->
              List.map
                (fun d' ->
                  { mu_element = e; mu_op = op.op_name; mu_device = d' })
                (op.op_mutate d e.Element.ekey))
            operators
        in
        if ms = [] then (id, `Skipped, [])
        else
          let outcomes =
            List.map
              (fun m ->
                let t1 = Unix.gettimeofday () in
                let o_killed = run_mutant m in
                {
                  o_element = id;
                  o_op = m.mu_op;
                  o_killed;
                  o_seconds = Unix.gettimeofday () -. t1;
                })
              ms
          in
          let any = List.exists (fun o -> o.o_killed) outcomes in
          (id, (if any then `Killed else `Survived), outcomes)
  in
  let per_element = Pool.map pool eval_element element_ids in
  let killed = ref Element.Id_set.empty in
  let survived = ref Element.Id_set.empty in
  let skipped = ref Element.Id_set.empty in
  let outcomes = ref [] in
  let mutants = ref 0 in
  List.iter
    (fun (id, verdict, os) ->
      (match verdict with
      | `Killed -> killed := Element.Id_set.add id !killed
      | `Survived -> survived := Element.Id_set.add id !survived
      | `Skipped -> skipped := Element.Id_set.add id !skipped);
      mutants := !mutants + List.length os;
      outcomes := List.rev_append os !outcomes)
    per_element;
  {
    killed = !killed;
    survived = !survived;
    skipped = !skipped;
    mutants_run = !mutants;
    seconds = Unix.gettimeofday () -. t0;
    outcomes = List.rev !outcomes;
  }
