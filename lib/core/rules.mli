(** Inference rules: each maps a materialized IFG fact to the parent
    facts that contribute to it (Table 1), using stable-state lookups
    backward and targeted policy simulations forward (§4.2). *)

open Netcov_config
open Netcov_sim

(** Shared context: the stable state plus memo caches and counters for
    the targeted simulations (reported by Figure 10(a)'s breakdown). *)
type ctx

(** Memo cache for targeted policy simulations. Key: (device, policy
    chain, evaluation defaults, canonicalized input route); value: the
    verdict, the transformed route and the exercised clause ids. Safe
    to reuse across analyses {e of the same stable state} within one
    domain; never share one across domains — create one per analysis
    instead (the cache never changes results, only skips re-runs). *)
type sim_cache

val create_sim_cache : unit -> sim_cache

(** Lifetime (hits, misses) of the cache across every ctx that used
    it. *)
val sim_cache_stats : sim_cache -> int * int

(** Distinct-count breakdown of the cache's key space: total distinct
    keys plus distinct values per key component. Identifies over-precise
    key components when the hit rate is low (fed into the
    [sim.cache.distinct_keys] gauge and the debug log —
    docs/OBSERVABILITY.md). Walks the whole table; debug path only. *)
type key_breakdown = {
  kb_keys : int;
  kb_hosts : int;
  kb_chains : int;
  kb_defaults : int;
  kb_protocols : int;
  kb_routes : int;
}

val sim_cache_breakdown : sim_cache -> key_breakdown

(** [make_ctx ?cache state]: when [cache] is omitted every simulation
    is recomputed (seed behaviour). [diags] installs a diagnostic sink:
    with one, a crashing rule application degrades to a [Sim_failure]
    diagnostic (see {!apply_rule}) instead of aborting the analysis. *)
val make_ctx :
  ?cache:sim_cache ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  Stable_state.t ->
  ctx

val state : ctx -> Stable_state.t

(** Number of targeted policy simulations run so far. *)
val sim_count : ctx -> int

(** Wall-clock seconds spent inside targeted simulations. *)
val sim_seconds : ctx -> float

(** Sim-cache hits/misses observed through this ctx (zero when no cache
    was supplied). *)
val cache_hits : ctx -> int

val cache_misses : ctx -> int

(** A parent contribution: conjunctive, or a disjunctive group of
    alternatives (any one of which suffices, §4.3). *)
type parent_spec = P of Fact.t | P_disj of Fact.t list

(** Parents inferred for one target fact. A rule may emit inferences for
    intermediate facts it materialized on the fly (e.g. the pre-import
    message in Figure 4). *)
type inference = { target : Fact.t; parents : parent_spec list }

type rule = ctx -> Fact.t -> inference list

(** The rule set, each paired with a stable name (used as the [rule]
    label of the [materialize.inferences] metric — see
    [docs/OBSERVABILITY.md]); applied exhaustively to each dirty node
    by {!Materialize}. *)
val all_rules : (string * rule) list

(** [apply_rule ctx (name, rule) fact] applies one named rule. Without
    a diag sink on [ctx] this is exactly [rule ctx fact]. With one, any
    exception the rule raises (unknown device, policy-eval failure, …)
    is reported as an [Error]-severity [Sim_failure] diagnostic carrying
    the fact's key and host, and the application yields no inferences —
    the offending fact keeps whatever parents other rules find. *)
val apply_rule : ctx -> string * rule -> Fact.t -> inference list

(** [config_fact ctx ~host key] resolves an element key to a config fact,
    [None] when the device is external or the key unknown. *)
val config_fact : ctx -> host:string -> Element.key -> Fact.t option
