(** Inference rules: each maps a materialized IFG fact to the parent
    facts that contribute to it (Table 1), using stable-state lookups
    backward and targeted policy simulations forward (§4.2). *)

open Netcov_config
open Netcov_sim

(** Shared context: the stable state plus memo caches and counters for
    the targeted simulations (reported by Figure 10(a)'s breakdown). *)
type ctx

(** Memo cache for targeted policy simulations. Key: (device, policy
    chain, evaluation defaults, canonicalized input route); value: the
    verdict, the transformed route and the exercised clause ids. Safe
    to reuse across analyses {e of the same stable state} within one
    domain; never share one across domains — create one per analysis
    instead (the cache never changes results, only skips re-runs). *)
type sim_cache

(** [canonical] (default true) strips route attributes the policy chain
    neither reads nor writes from the cache key — per-chain read/write
    sets are computed once from the device's policy ASTs — so
    simulations that differ only in pass-through attributes share one
    entry. On a hit the pass-through attributes of the cached
    transformed route are restored from the actual input, reproducing a
    fresh evaluation exactly. [~canonical:false] keeps the historical
    full-route key (differential testing, before/after benchmarks). *)
val create_sim_cache : ?canonical:bool -> unit -> sim_cache

(** Lifetime (hits, misses) of the cache across every ctx that used
    it. *)
val sim_cache_stats : sim_cache -> int * int

(** [sim_cache_evict_hosts c pred] drops every cached evaluation (and
    memoized attribute mask) whose host satisfies [pred], returning the
    number of evicted entries. Evaluations read nothing but the host's
    device, so entries of hosts with unchanged configuration stay valid
    across a configuration update (lib/incr). *)
val sim_cache_evict_hosts : sim_cache -> (string -> bool) -> int

(** [sim_cache_revalidate_hosts c state pred] is the precise alternative
    to {!sim_cache_evict_hosts}: every cached evaluation whose host
    satisfies [pred] is replayed against the host's device in [state]
    (the *new* stable state) and kept when the result is unchanged.
    Entries whose chain now behaves differently — or whose chain's
    read/write attribute mask changed, shifting the canonical key
    space — are dropped, as are entries of hosts absent from [state].
    Returns [(checked, dropped)]; [dropped = 0] certifies that every
    cached evaluation of the selected hosts is unaffected by the
    configuration change (the incremental engine's fast-path witness,
    docs/INCREMENTAL.md). [~apply:false] only measures, mutating
    nothing. *)
val sim_cache_revalidate_hosts :
  ?apply:bool -> sim_cache -> Stable_state.t -> (string -> bool) -> int * int

(** Live entries in the cache. *)
val sim_cache_length : sim_cache -> int

(** Distinct-count breakdown of the cache's key space: total distinct
    keys plus distinct values per key component. Identifies over-precise
    key components when the hit rate is low (fed into the
    [sim.cache.distinct_keys] gauge and the debug log —
    docs/OBSERVABILITY.md). Walks the whole table; debug path only. *)
type key_breakdown = {
  kb_keys : int;
  kb_hosts : int;
  kb_chains : int;
  kb_defaults : int;
  kb_protocols : int;
  kb_routes : int;
}

val sim_cache_breakdown : sim_cache -> key_breakdown

(** [make_ctx ?cache state]: when [cache] is omitted every simulation
    is recomputed (seed behaviour). [diags] installs a diagnostic sink:
    with one, a crashing rule application degrades to a [Sim_failure]
    diagnostic (see {!apply_rule}) instead of aborting the analysis. *)
val make_ctx :
  ?cache:sim_cache ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  Stable_state.t ->
  ctx

val state : ctx -> Stable_state.t

(** Number of targeted policy simulations run so far. *)
val sim_count : ctx -> int

(** Wall-clock seconds spent inside targeted simulations. *)
val sim_seconds : ctx -> float

(** Sim-cache hits/misses observed through this ctx (zero when no cache
    was supplied). *)
val cache_hits : ctx -> int

val cache_misses : ctx -> int

(** A parent contribution: conjunctive, or a disjunctive group of
    alternatives (any one of which suffices, §4.3). *)
type parent_spec = P of Fact.t | P_disj of Fact.t list

(** Parents inferred for one target fact. A rule may emit inferences for
    intermediate facts it materialized on the fly (e.g. the pre-import
    message in Figure 4). *)
type inference = { target : Fact.t; parents : parent_spec list }

type rule = ctx -> Fact.t -> inference list

(** The rule set, each paired with a stable name (used as the [rule]
    label of the [materialize.inferences] metric — see
    [docs/OBSERVABILITY.md]); applied exhaustively to each dirty node
    by {!Materialize}. *)
val all_rules : (string * rule) list

(** [apply_rule ctx (name, rule) fact] applies one named rule. Without
    a diag sink on [ctx] this is exactly [rule ctx fact]. With one, any
    exception the rule raises (unknown device, policy-eval failure, …)
    is reported as an [Error]-severity [Sim_failure] diagnostic carrying
    the fact's key and host, and the application yields no inferences —
    the offending fact keeps whatever parents other rules find. *)
val apply_rule : ctx -> string * rule -> Fact.t -> inference list

(** [config_fact ctx ~host key] resolves an element key to a config fact,
    [None] when the device is external or the key unknown. *)
val config_fact : ctx -> host:string -> Element.key -> Fact.t option
