(** Lazy IFG materialization — Algorithm 1. Starting from the tested
    facts, repeatedly applies every inference rule to dirty nodes until
    no new facts are derived. Expansion stops at facts on external
    (environment) devices, which become leaves.

    Each run is wrapped in a [materialize] trace span; run totals are
    flushed into the [materialize.*] and [sim.targeted.*]/[sim.cache.*]
    metrics, with per-rule inference counts under
    [materialize.inferences{rule=...}] (see [docs/OBSERVABILITY.md]). *)

(** Per-run volume and timing, returned alongside the graph. *)
type stats = {
  nodes : int;
  edges : int;
  rule_seconds : float;  (** total time in rule application *)
  sim_count : int;
  sim_seconds : float;
  sim_cache_hits : int;
      (** chain evaluations answered by the targeted-simulation memo
          cache (0 when the ctx has no cache) *)
  sim_cache_misses : int;
  iterations : int;  (** worklist passes *)
}

(** [run ctx ~tested] materializes the IFG reachable (backwards) from
    the tested facts and returns the node ids of the tested facts.
    [mode] selects the graph's fact-identity mode (default
    {!Intern.Structural}; {!Intern.By_key} is the string-keyed
    reference for differential testing). *)
val run :
  ?mode:Intern.mode ->
  Rules.ctx ->
  tested:Fact.t list ->
  Ifg.t * Ifg.node_id list * stats
