open Netcov_config

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A tiny JSON tree, enough for stable-ordered emission. *)
type json =
  | J_str of string
  | J_int of int
  | J_float of float
  | J_list of json list
  | J_obj of (string * json) list
  | J_raw of string  (* pre-encoded JSON, spliced verbatim *)

let rec emit buf = function
  | J_raw s -> Buffer.add_string buf s
  | J_str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_float f -> Buffer.add_string buf (Printf.sprintf "%.4f" f)
  | J_list items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  emit buf j;
  Buffer.contents buf

let line_stats_json (s : Coverage.line_stats) =
  J_obj
    [
      ("covered", J_int (Coverage.covered_lines s));
      ("strong", J_int s.Coverage.strong_lines);
      ("weak", J_int s.Coverage.weak_lines);
      ("considered", J_int s.Coverage.considered);
      ("total", J_int s.Coverage.total);
      ("percent", J_float (Coverage.pct s));
    ]

let coverage_json cov =
  let reg = Coverage.registry cov in
  let devices =
    List.map
      (fun (host, s) -> J_obj [ ("device", J_str host); ("lines", line_stats_json s) ])
      (Coverage.device_stats cov)
  in
  let types =
    List.map
      (fun (et, (s : Coverage.type_stats)) ->
        J_obj
          [
            ("type", J_str (Element.etype_to_string et));
            ("elements_covered", J_int s.elems_covered);
            ("elements_total", J_int s.elems_total);
            ("lines_strong", J_int s.lines_strong);
            ("lines_weak", J_int s.lines_weak);
            ("lines_total", J_int s.lines_total);
          ])
      (Coverage.etype_stats cov)
  in
  let elements =
    Registry.fold_elements reg
      (fun acc e ->
        J_obj
          [
            ("id", J_int e.Element.id);
            ("device", J_str e.Element.device);
            ("type", J_str (Element.etype_to_string (Element.etype_of e)));
            ("name", J_str (Element.name_of e));
            ("lines", J_int (Element.line_count e));
            ( "status",
              J_str
                (Coverage.status_to_string
                   (Coverage.element_status cov e.Element.id)) );
          ]
        :: acc)
      []
    |> List.rev
  in
  J_obj
    [
      ("overall", line_stats_json (Coverage.line_stats cov));
      ("devices", J_list devices);
      ("types", J_list types);
      ("elements", J_list elements);
    ]

let coverage cov = to_string (coverage_json cov)

let timing_json (t : Netcov.timing) =
  J_obj
    [
      ("total_s", J_float t.Netcov.total_s);
      ("cpu_total_s", J_float t.Netcov.cpu_total_s);
      ("materialize_s", J_float t.Netcov.materialize_s);
      ("sim_s", J_float t.Netcov.sim_s);
      ("label_s", J_float t.Netcov.label_s);
      ("sim_count", J_int t.Netcov.sim_count);
      ("sim_cache_hits", J_int t.Netcov.sim_cache_hits);
      ("sim_cache_misses", J_int t.Netcov.sim_cache_misses);
      ("ifg_nodes", J_int t.Netcov.ifg_nodes);
      ("ifg_edges", J_int t.Netcov.ifg_edges);
      ("bdd_vars", J_int t.Netcov.bdd_vars);
    ]

let timing t = to_string (timing_json t)

let failure_json (f : Netcov.test_failure) =
  J_obj
    [
      ("index", J_int f.Netcov.tf_index);
      ("label", J_str f.Netcov.tf_label);
      ("error", J_str f.Netcov.tf_error);
      ("backtrace", J_str f.Netcov.tf_backtrace);
    ]

let report ?(diags = []) ?(failures = []) (r : Netcov.report) =
  let dead =
    List.map
      (fun (id, reason) ->
        J_obj
          [
            ("element", J_int id);
            ("reason", J_str (Deadcode.reason_to_string reason));
          ])
      r.Netcov.dead.Deadcode.details
  in
  to_string
    (J_obj
       [
         ("coverage", coverage_json r.Netcov.coverage);
         ("timing", timing_json r.Netcov.timing);
         ("dead", J_list dead);
         ("diagnostics", J_list (List.map (fun d -> J_raw (Diag.to_json d)) diags));
         ("failures", J_list (List.map failure_json failures));
       ])
