type dev_info = {
  device : Device.t;
  text : string array;
  owners : Element.id option array;
  element_ids : Element.id list;
}

type t = {
  infos : (string, dev_info) Hashtbl.t;
  order : string list;
  elements : Element.t array;
  by_key : (string * Element.key, Element.id) Hashtbl.t;
}

let emit_for (d : Device.t) =
  match d.syntax with
  | Device.Junos -> Emit_junos.emit d
  | Device.Ios -> Emit_ios.emit d

let build devices =
  let infos = Hashtbl.create 64 in
  let by_key = Hashtbl.create 4096 in
  let elements_rev = ref [] in
  let next_id = ref 0 in
  let register (d : Device.t) (key_lines : (Element.key * int list) list) =
    List.rev_map
      (fun (ekey, lines) ->
        let id = !next_id in
        incr next_id;
        let e = { Element.id; device = d.hostname; ekey; lines = List.rev lines } in
        elements_rev := e :: !elements_rev;
        Hashtbl.replace by_key (d.hostname, ekey) id;
        id)
      (List.rev key_lines)
    |> List.rev
  in
  List.iter
    (fun (d : Device.t) ->
      if Hashtbl.mem infos d.hostname then
        invalid_arg ("Registry.build: duplicate hostname " ^ d.hostname);
      let text, key_owners = emit_for d in
      let owners = Array.make (Array.length text) None in
      let element_ids =
        if d.is_external then []
        else begin
          (* Collect owned line numbers per key, in first-appearance
             order. *)
          let tbl : (Element.key, int list ref) Hashtbl.t = Hashtbl.create 64 in
          let order = ref [] in
          Array.iteri
            (fun i ko ->
              match ko with
              | None -> ()
              | Some k ->
                  let cell =
                    match Hashtbl.find_opt tbl k with
                    | Some c -> c
                    | None ->
                        let c = ref [] in
                        Hashtbl.add tbl k c;
                        order := k :: !order;
                        c
                  in
                  cell := (i + 1) :: !cell)
            key_owners;
          let key_lines =
            List.rev_map (fun k -> (k, !(Hashtbl.find tbl k))) !order
          in
          let ids = register d key_lines in
          (* Fill the per-line id map. *)
          Array.iteri
            (fun i ko ->
              match ko with
              | None -> ()
              | Some k -> owners.(i) <- Hashtbl.find_opt by_key (d.hostname, k))
            key_owners;
          ids
        end
      in
      Hashtbl.replace infos d.hostname { device = d; text; owners; element_ids })
    devices;
  {
    infos;
    order = List.map (fun (d : Device.t) -> d.hostname) devices;
    elements = Array.of_list (List.rev !elements_rev);
    by_key;
  }

let build_lenient devices =
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  let kept =
    List.filter
      (fun (d : Device.t) ->
        if Hashtbl.mem seen d.hostname then begin
          diags :=
            Netcov_diag.Diag.error ~device:d.hostname
              Netcov_diag.Diag.Duplicate_host
              (Printf.sprintf
                 "duplicate hostname %s: kept the first definition, dropped \
                  this one"
                 d.hostname)
            :: !diags;
          false
        end
        else begin
          Hashtbl.add seen d.hostname ();
          true
        end)
      devices
  in
  (build kept, List.rev !diags)

let info t host =
  match Hashtbl.find_opt t.infos host with
  | Some i -> i
  | None -> invalid_arg ("Registry: unknown device " ^ host)

let device t host = (info t host).device
let device_opt t host = Option.map (fun i -> i.device) (Hashtbl.find_opt t.infos host)
let devices t = List.map (fun h -> (info t h).device) t.order

let internal_devices t =
  List.filter (fun (d : Device.t) -> not d.is_external) (devices t)

let is_external t host = (device t host).is_external
let n_elements t = Array.length t.elements
let element t id = t.elements.(id)
let iter_elements t f = Array.iter f t.elements
let fold_elements t f acc = Array.fold_left f acc t.elements
let find t ~device key = Hashtbl.find_opt t.by_key (device, key)

let find_exn t ~device key =
  match find t ~device key with
  | Some id -> id
  | None ->
      invalid_arg
        (Format.asprintf "Registry.find_exn: %s %a not found" device
           Element.pp_key key)

let elements_of_device t host = (info t host).element_ids
let text t host = (info t host).text

let line_owner t host n =
  let i = info t host in
  if n < 1 || n > Array.length i.owners then None else i.owners.(n - 1)

let internal_infos t =
  List.filter_map
    (fun h ->
      let i = info t h in
      if i.device.is_external then None else Some i)
    t.order

let device_total_lines t host = Array.length (info t host).text

let device_considered_lines t host =
  Array.fold_left
    (fun acc o -> match o with Some _ -> acc + 1 | None -> acc)
    0 (info t host).owners

let total_lines t =
  List.fold_left (fun acc i -> acc + Array.length i.text) 0 (internal_infos t)

let considered_lines t =
  List.fold_left
    (fun acc i ->
      acc
      + Array.fold_left
          (fun n o -> match o with Some _ -> n + 1 | None -> n)
          0 i.owners)
    0 (internal_infos t)
