open Netcov_types

type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Fail of error

let fail line message = raise (Fail { line; message })

let ipv4 at s =
  match Ipv4.of_string_opt s with
  | Some a -> a
  | None -> fail at (Printf.sprintf "bad address %S" s)

let int_at at s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail at (Printf.sprintf "bad number %S" s)

let prefix_of_mask at addr mask =
  match Masks.len_of_netmask (ipv4 at mask) with
  | Some len -> Prefix.make (ipv4 at addr) len
  | None -> fail at (Printf.sprintf "bad netmask %S" mask)

let prefix_of_wildcard at addr wc =
  match Masks.len_of_wildcard (ipv4 at wc) with
  | Some len -> Prefix.make (ipv4 at addr) len
  | None -> fail at (Printf.sprintf "bad wildcard %S" wc)

let prefix at s =
  match Prefix.of_string_opt s with
  | Some p -> p
  | None -> fail at (Printf.sprintf "bad prefix %S" s)

let is_ip s = Ipv4.of_string_opt s <> None

(* Mutable builders keyed by name, preserving first-seen order. *)
module Builder = struct
  type 'a t = { tbl : (string, 'a) Hashtbl.t; mutable order : string list }

  let create () = { tbl = Hashtbl.create 16; order = [] }

  let get b key ~default =
    match Hashtbl.find_opt b.tbl key with
    | Some v -> v
    | None ->
        b.order <- key :: b.order;
        Hashtbl.replace b.tbl key default;
        default

  let set b key v =
    if not (Hashtbl.mem b.tbl key) then b.order <- key :: b.order;
    Hashtbl.replace b.tbl key v

  let to_list b =
    List.rev_map (fun k -> Hashtbl.find b.tbl k) b.order
end

type rm_entry = {
  rm_term : string;
  rm_deny : bool;
  mutable rm_matches : Policy_ast.match_cond list;
  mutable rm_sets : Policy_ast.action list;
  mutable rm_continue : bool;
}

type section =
  | Top
  | In_interface of string
  | In_acl of string
  | In_bgp
  | In_route_map of string * rm_entry

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

(* Core of the parser. Raises [Fail] on the first bad line when
   [on_error] is absent; with [on_error] every failing line is reported
   through it and skipped, and parsing continues (per-stanza recovery:
   the section state is whatever the last good line left it at). *)
let parse_gen ?(hostname = "device") ?on_error text =
  let lines = String.split_on_char '\n' text in
    let hostname = ref hostname in
    let interfaces : (string * Device.interface ref) list ref = ref [] in
    let statics = ref [] in
    let acls = Builder.create () in
    let prefix_lists = Builder.create () in
    let community_lists = Builder.create () in
    let as_path_lists = Builder.create () in
    let route_maps : (string * rm_entry list ref) list ref = ref [] in
    let bgp_local_as = ref None in
    let bgp_router_id = ref Ipv4.zero in
    let bgp_multipath = ref 1 in
    let bgp_networks = ref [] in
    let bgp_aggregates = ref [] in
    let bgp_redistributes = ref [] in
    let groups : (string * Device.peer_group ref) list ref = ref [] in
    let neighbors : (int * Device.neighbor ref) list ref = ref [] in
    let section = ref Top in
    let find_iface name =
      match List.assoc_opt name !interfaces with
      | Some r -> r
      | None ->
          let r = ref (Device.interface name) in
          interfaces := !interfaces @ [ (name, r) ];
          r
    in
    let find_group name at =
      ignore at;
      match List.assoc_opt name !groups with
      | Some r -> r
      | None ->
          let r =
            ref
              {
                Device.pg_name = name;
                pg_remote_as = None;
                pg_import = [];
                pg_export = [];
                pg_local_pref = None;
                pg_description = None;
              }
          in
          groups := !groups @ [ (name, r) ];
          r
    in
    let find_neighbor ip at =
      let key = Ipv4.to_int (ipv4 at ip) in
      match List.assoc_opt key !neighbors with
      | Some r -> r
      | None ->
          let r =
            ref
              {
                Device.nb_ip = ipv4 at ip;
                nb_remote_as = 0;
                nb_group = None;
                nb_import = [];
                nb_export = [];
                nb_local_addr = None;
                nb_next_hop_self = false;
                nb_rr_client = false;
                nb_description = None;
              }
          in
          neighbors := !neighbors @ [ (key, r) ];
          r
    in
    let find_route_map name =
      match List.assoc_opt name !route_maps with
      | Some r -> r
      | None ->
          let r = ref [] in
          route_maps := !route_maps @ [ (name, r) ];
          r
    in
    let parse_match at rest =
      match rest with
      | [ "ip"; "address"; "prefix-list"; n ] -> Policy_ast.Match_prefix_list n
      | [ "ip"; "address"; "prefix"; p; "exact" ] ->
          Policy_ast.Match_prefix (prefix at p, Policy_ast.Exact)
      | [ "ip"; "address"; "prefix"; p; "orlonger" ] ->
          Policy_ast.Match_prefix (prefix at p, Policy_ast.Orlonger)
      | [ "ip"; "address"; "prefix"; p; "upto"; l ] ->
          Policy_ast.Match_prefix (prefix at p, Policy_ast.Upto (int_at at l))
      | [ "community"; n ] -> Policy_ast.Match_community_list n
      | [ "community-literal"; c ] ->
          Policy_ast.Match_community (Community.of_string c)
      | [ "as-path"; n ] -> Policy_ast.Match_as_path_list n
      | [ "source-protocol"; p ] -> (
          match Route.protocol_of_string p with
          | Some p -> Policy_ast.Match_protocol p
          | None -> fail at "source-protocol")
      | [ "ip"; "next-hop"; ip ] -> Policy_ast.Match_next_hop (ipv4 at ip)
      | _ -> fail at ("unknown match: " ^ String.concat " " rest)
    in
    let parse_set at rest =
      match rest with
      | [ "local-preference"; n ] -> Policy_ast.Set_local_pref (int_at at n)
      | [ "metric"; n ] -> Policy_ast.Set_med (int_at at n)
      | [ "community"; c; "additive" ] ->
          Policy_ast.Add_community (Community.of_string c)
      | [ "community-remove"; c ] ->
          Policy_ast.Remove_community (Community.of_string c)
      | [ "comm-list"; n; "delete" ] -> Policy_ast.Delete_community_in n
      | "as-path" :: "prepend" :: (asn :: _ as all) ->
          Policy_ast.Prepend_as (int_at at asn, List.length all)
      | _ -> fail at ("unknown set: " ^ String.concat " " rest)
    in
    List.iteri
      (fun i raw ->
        let at = i + 1 in
        let line = if raw <> "" && raw.[0] = ' ' then raw else String.trim raw in
        let indented = String.length raw > 0 && raw.[0] = ' ' in
        let w = words line in
        let handle () =
          match (w, indented, !section) with
        | [], _, _ -> ()
        | "!" :: _, _, _ -> section := Top
        | [ "end" ], _, _ -> section := Top
        | [ "hostname"; h ], false, _ -> hostname := h
        | "version" :: _, false, _ | "service" :: _, false, _ -> ()
        | [ "ip"; "access-list"; "extended"; name ], false, _ ->
            ignore (Builder.get acls name ~default:[]);
            section := In_acl name
        | (("permit" | "deny") as verb) :: [ "ip"; "any"; a; wc ], true, In_acl name
          ->
            let rule =
              {
                Device.permit = verb = "permit";
                rule_prefix = prefix_of_wildcard at a wc;
              }
            in
            Builder.set acls name (Builder.get acls name ~default:[] @ [ rule ])
        | [ "interface"; name ], false, _ -> (
            section := In_interface name;
            ignore (find_iface name))
        | [ "description" ], true, In_interface _ -> ()
        | "description" :: rest, true, In_interface name ->
            let r = find_iface name in
            r := { !r with Device.description = Some (String.concat " " rest) }
        | [ "ip"; "address"; a; m ], true, In_interface name ->
            let r = find_iface name in
            let p = prefix_of_mask at a m in
            r := { !r with Device.address = Some (ipv4 at a, Prefix.len p) }
        | [ "no"; "ip"; "address" ], true, In_interface _ -> ()
        | [ "ip"; "access-group"; acl; "in" ], true, In_interface name ->
            let r = find_iface name in
            r := { !r with Device.in_acl = Some acl }
        | [ "ip"; "access-group"; acl; "out" ], true, In_interface name ->
            let r = find_iface name in
            r := { !r with Device.out_acl = Some acl }
        | [ "ip"; "ospf"; "1"; "area"; "0"; "cost"; n ], true, In_interface name
          ->
            let r = find_iface name in
            r := { !r with Device.igp_enabled = true; igp_metric = int_at at n }
        | [ "no"; "shutdown" ], true, In_interface _ -> ()
        | [ "router"; "bgp"; asn ], false, _ ->
            bgp_local_as := Some (int_at at asn);
            section := In_bgp
        | [ "bgp"; "router-id"; a ], true, In_bgp -> bgp_router_id := ipv4 at a
        | [ "bgp"; "log-neighbor-changes" ], true, In_bgp -> ()
        | [ "maximum-paths"; n ], true, In_bgp -> bgp_multipath := int_at at n
        | [ "network"; a; "mask"; m ], true, In_bgp ->
            bgp_networks := prefix_of_mask at a m :: !bgp_networks
        | "aggregate-address" :: a :: m :: rest, true, In_bgp ->
            bgp_aggregates :=
              {
                Device.ag_prefix = prefix_of_mask at a m;
                ag_summary_only = rest = [ "summary-only" ];
              }
              :: !bgp_aggregates
        | "redistribute" :: proto :: rest, true, In_bgp -> (
            match Route.protocol_of_string proto with
            | None -> fail at ("redistribute " ^ proto)
            | Some proto ->
                let rd_policy =
                  match rest with [ "route-map"; rm ] -> Some rm | _ -> None
                in
                bgp_redistributes :=
                  { Device.rd_from = proto; rd_policy } :: !bgp_redistributes)
        | "neighbor" :: target :: rest, true, In_bgp -> (
            if is_ip target then begin
              let r = find_neighbor target at in
              match rest with
              | [ "remote-as"; asn ] ->
                  r := { !r with Device.nb_remote_as = int_at at asn }
              | [ "peer-group"; g ] -> r := { !r with Device.nb_group = Some g }
              | "description" :: d ->
                  r := { !r with Device.nb_description = Some (String.concat " " d) }
              | [ "update-source"; a ] ->
                  r := { !r with Device.nb_local_addr = Some (ipv4 at a) }
              | [ "next-hop-self" ] ->
                  r := { !r with Device.nb_next_hop_self = true }
              | [ "route-reflector-client" ] ->
                  r := { !r with Device.nb_rr_client = true }
              | [ "route-map"; rm; "in" ] ->
                  r := { !r with Device.nb_import = !r.Device.nb_import @ [ rm ] }
              | [ "route-map"; rm; "out" ] ->
                  r := { !r with Device.nb_export = !r.Device.nb_export @ [ rm ] }
              | _ -> fail at ("unknown neighbor option: " ^ String.concat " " rest)
            end
            else
              let r = find_group target at in
              match rest with
              | [ "peer-group" ] -> ()
              | [ "remote-as"; asn ] ->
                  r := { !r with Device.pg_remote_as = Some (int_at at asn) }
              | "description" :: d ->
                  r := { !r with Device.pg_description = Some (String.concat " " d) }
              | [ "local-preference"; n ] ->
                  r := { !r with Device.pg_local_pref = Some (int_at at n) }
              | [ "route-map"; rm; "in" ] ->
                  r := { !r with Device.pg_import = !r.Device.pg_import @ [ rm ] }
              | [ "route-map"; rm; "out" ] ->
                  r := { !r with Device.pg_export = !r.Device.pg_export @ [ rm ] }
              | _ -> fail at ("unknown group option: " ^ String.concat " " rest))
        | [ "ip"; "route"; a; m; nh ], false, _ ->
            statics :=
              { Device.st_prefix = prefix_of_mask at a m; st_next_hop = ipv4 at nh }
              :: !statics
        | "ip" :: "prefix-list" :: name :: "seq" :: _ :: "permit" :: p :: rest, false, _
          ->
            let base = prefix at p in
            let rec bounds ge le = function
              | "ge" :: v :: tl -> bounds (Some (int_at at v)) le tl
              | "le" :: v :: tl -> bounds ge (Some (int_at at v)) tl
              | [] -> (ge, le)
              | _ -> fail at "prefix-list bounds"
            in
            let ge, le = bounds None None rest in
            Builder.set prefix_lists name
              (Builder.get prefix_lists name ~default:[]
              @ [ { Device.ple_prefix = base; ple_ge = ge; ple_le = le } ])
        | [ "ip"; "community-list"; "standard"; name; "permit"; c ], false, _ ->
            Builder.set community_lists name
              (Builder.get community_lists name ~default:[] @ [ Community.of_string c ])
        | "ip" :: "as-path" :: "access-list" :: name :: "permit" :: re, false, _
          ->
            Builder.set as_path_lists name
              (Builder.get as_path_lists name ~default:[]
              @ [ As_regex.compile (String.concat " " re) ])
        | [ "route-map"; name; verb; seq ], false, _ ->
            let entry =
              {
                rm_term = seq;
                rm_deny = verb = "deny";
                rm_matches = [];
                rm_sets = [];
                rm_continue = false;
              }
            in
            let r = find_route_map name in
            r := !r @ [ entry ];
            section := In_route_map (name, entry)
        | "match" :: rest, true, In_route_map (_, entry) ->
            entry.rm_matches <- entry.rm_matches @ [ parse_match at rest ]
        | [ "continue" ], true, In_route_map (_, entry) -> entry.rm_continue <- true
        | "set" :: rest, true, In_route_map (_, entry) ->
            entry.rm_sets <- entry.rm_sets @ [ parse_set at rest ]
          | _, _, _ -> fail at (Printf.sprintf "cannot parse %S" line)
        in
        let guarded () =
          (* [Community.of_string] and [As_regex.compile] raise bare
             [Failure]/[Invalid_argument]; pin whatever escapes the
             dispatch to this line so it never surfaces as a backtrace. *)
          try handle () with
          | Fail _ as e -> raise e
          | Failure m | Invalid_argument m -> fail at m
        in
        match on_error with
        | None -> guarded ()
        | Some report -> ( try guarded () with Fail e -> report e))
      lines;
    let policies =
      List.map
        (fun (name, entries) ->
          {
            Policy_ast.pol_name = name;
            terms =
              List.map
                (fun e ->
                  let terminator =
                    if e.rm_continue then [ Policy_ast.Next_term ]
                    else if e.rm_deny then [ Policy_ast.Reject ]
                    else [ Policy_ast.Accept ]
                  in
                  {
                    Policy_ast.term_name = e.rm_term;
                    matches = e.rm_matches;
                    actions = e.rm_sets @ terminator;
                  })
                !entries;
          })
        !route_maps
    in
    let bgp =
      Option.map
        (fun local_as ->
          {
            Device.local_as;
            router_id = !bgp_router_id;
            networks = List.rev !bgp_networks;
            aggregates = List.rev !bgp_aggregates;
            redistributes = List.rev !bgp_redistributes;
            groups = List.map (fun (_, r) -> !r) !groups;
            neighbors = List.map (fun (_, r) -> !r) !neighbors;
            multipath = !bgp_multipath;
          })
        !bgp_local_as
    in
    Device.make ~syntax:Device.Ios
      ~interfaces:(List.map (fun (_, r) -> !r) !interfaces)
      ~static_routes:(List.rev !statics)
      ~acls:
        (List.map
           (fun (name, rules) -> { Device.acl_name = name; rules })
           (List.combine (List.rev acls.Builder.order) (Builder.to_list acls)))
      ~prefix_lists:
        (List.map2
           (fun name entries -> { Device.pl_name = name; pl_entries = entries })
           (List.rev prefix_lists.Builder.order)
           (Builder.to_list prefix_lists))
      ~community_lists:
        (List.map2
           (fun name members -> { Device.cl_name = name; cl_members = members })
           (List.rev community_lists.Builder.order)
           (Builder.to_list community_lists))
      ~as_path_lists:
        (List.map2
           (fun name patterns -> { Device.al_name = name; al_patterns = patterns })
           (List.rev as_path_lists.Builder.order)
           (Builder.to_list as_path_lists))
      ~policies ?bgp !hostname

let parse ?hostname text =
  match parse_gen ?hostname text with
  | d -> Ok d
  | exception Fail e -> Error e

let parse_lenient ?file ?hostname text =
  let module D = Netcov_diag.Diag in
  let errs = ref [] in
  match parse_gen ?hostname ~on_error:(fun e -> errs := e :: !errs) text with
  | d ->
      let diags =
        List.rev_map
          (fun (e : error) ->
            D.warning ?file ~line:e.line ~device:d.Device.hostname
              D.Parse_recovered
              (Printf.sprintf "skipped line: %s" e.message))
          !errs
      in
      Ok (d, diags)
  | exception Fail e -> Error (D.error ?file ~line:e.line D.Parse_error e.message)

let parse_exn ?hostname text =
  match parse ?hostname text with
  | Ok d -> d
  | Error e -> invalid_arg ("Parse_ios: " ^ error_to_string e)
