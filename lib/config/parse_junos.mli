(** Parser for the JunOS-like concrete syntax produced by
    {!Emit_junos}. Together they form a round-trippable pipeline, so
    NetCov can ingest either device ASTs or raw configuration text. *)

type error = { line : int; message : string }

val error_to_string : error -> string

(** [parse ~hostname text] parses a full configuration. The hostname
    inside the text ([host-name]) wins over [~hostname] when present. *)
val parse : ?hostname:string -> string -> (Device.t, error) result

(** Lenient parse: the block-tree stage stays fatal (an unbalanced
    file has no usable structure, so it yields [Error]), but each
    element-level interpreter — interface, policy-statement,
    prefix-list, community list, as-path-group, filter, BGP stanza —
    recovers independently. A failing element is dropped and reported
    as a [Parse_recovered] warning; its siblings still parse. *)
val parse_lenient :
  ?file:string ->
  ?hostname:string ->
  string ->
  (Device.t * Netcov_diag.Diag.t list, Netcov_diag.Diag.t) result

val parse_exn : ?hostname:string -> string -> Device.t
