open Netcov_types

type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Fail of error

let fail line message = raise (Fail { line; message })

(* ------------------------------------------------------------------ *)
(* Block tree                                                          *)
(* ------------------------------------------------------------------ *)

type node = { head : string list; body : node list; at : int }

(* Tokenize one line into words, keeping quoted strings as single
   tokens (quotes stripped). *)
let words_of_line at line =
  let n = String.length line in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    (match line.[!i] with
    | ' ' | '\t' -> flush ()
    | '"' ->
        flush ();
        incr i;
        let start = !i in
        while !i < n && line.[!i] <> '"' do
          incr i
        done;
        if !i >= n then fail at "unterminated string";
        out := String.sub line start (!i - start) :: !out
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !out

let strip_comment line =
  match String.index_opt line '/' with
  | Some i
    when i + 1 < String.length line
         && line.[i + 1] = '*'
         && String.length line >= i + 2 -> (
      (* single-line comment: drop from the opener on *)
      match String.index_opt line '*' with
      | Some _ -> String.sub line 0 i
      | None -> line)
  | _ -> line

let parse_tree text =
  let lines = String.split_on_char '\n' text in
  let rec parse_block ~top acc at = function
    | [] -> if top then (List.rev acc, [], at) else fail at "unexpected end of input inside a block"
    | raw :: rest -> (
        let line = String.trim (strip_comment raw) in
        if line = "" then parse_block ~top acc (at + 1) rest
        else if line = "}" then
          if top then fail at "unmatched '}'" else (List.rev acc, rest, at + 1)
        else if String.length line >= 1 && line.[String.length line - 1] = '{'
        then begin
          let head = words_of_line at (String.sub line 0 (String.length line - 1)) in
          let body, rest', at' = parse_block ~top:false [] (at + 1) rest in
          parse_block ~top ({ head; body; at } :: acc) at' rest'
        end
        else
          let stmt =
            if line.[String.length line - 1] = ';' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          match words_of_line at stmt with
          | [] -> parse_block ~top acc (at + 1) rest
          | head -> parse_block ~top ({ head; body = []; at } :: acc) (at + 1) rest)
  in
  let nodes, _, _ = parse_block ~top:true [] 1 lines in
  nodes

let find_blocks name nodes =
  List.filter (fun n -> match n.head with h :: _ -> h = name | [] -> false) nodes

let find_block name nodes =
  match find_blocks name nodes with n :: _ -> Some n | [] -> None

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)
(* ------------------------------------------------------------------ *)

let ipv4 at s =
  match Ipv4.of_string_opt s with
  | Some a -> a
  | None -> fail at (Printf.sprintf "bad address %S" s)

let prefix at s =
  match Prefix.of_string_opt s with
  | Some p -> p
  | None -> fail at (Printf.sprintf "bad prefix %S" s)

let int_at at s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail at (Printf.sprintf "bad number %S" s)

(* Policy chain between [ ... ] or a single name. *)
let chain at = function
  | "[" :: rest ->
      let rec go acc = function
        | [ "]" ] | [] -> List.rev acc
        | "]" :: _ -> List.rev acc
        | x :: tl -> go (x :: acc) tl
      in
      go [] rest
  | [ one ] -> [ one ]
  | _ -> fail at "expected policy chain"

let parse_interface (n : node) : Device.interface =
  let name = match n.head with [ x ] -> x | _ -> fail n.at "interface name" in
  let description = ref None in
  let address = ref None in
  let in_acl = ref None and out_acl = ref None in
  let rec walk nodes =
    List.iter
      (fun c ->
        match c.head with
        | [ "family"; "inet6" ] -> ()  (* IPv6 is not modeled (§5) *)
        | _ ->
        (match c.head with
        | [ "description"; d ] -> description := Some d
        | [ "address"; a ] ->
            let p = prefix c.at a in
            (* keep the literal host address, not the canonical base *)
            let ip =
              match String.index_opt a '/' with
              | Some i -> ipv4 c.at (String.sub a 0 i)
              | None -> fail c.at "address needs /len"
            in
            address := Some (ip, Prefix.len p)
        | [ "filter"; "input"; f ] -> in_acl := Some f
        | [ "filter"; "output"; f ] -> out_acl := Some f
        | _ -> ());
        walk c.body)
      nodes
  in
  walk n.body;
  {
    Device.if_name = name;
    address = !address;
    description = !description;
    in_acl = !in_acl;
    out_acl = !out_acl;
    igp_enabled = false;
    igp_metric = 10;
  }

let parse_match at (w : string list) : Policy_ast.match_cond option =
  match w with
  | [ "prefix-list"; n ] -> Some (Policy_ast.Match_prefix_list n)
  | [ "route-filter"; p; "exact" ] ->
      Some (Policy_ast.Match_prefix (prefix at p, Policy_ast.Exact))
  | [ "route-filter"; p; "orlonger" ] ->
      Some (Policy_ast.Match_prefix (prefix at p, Policy_ast.Orlonger))
  | [ "route-filter"; p; "upto"; l ] ->
      let l =
        if String.length l > 1 && l.[0] = '/' then
          int_at at (String.sub l 1 (String.length l - 1))
        else int_at at l
      in
      Some (Policy_ast.Match_prefix (prefix at p, Policy_ast.Upto l))
  | [ "community"; n ] -> Some (Policy_ast.Match_community_list n)
  | [ "community-literal"; c ] -> (
      match Community.of_string_opt c with
      | Some c -> Some (Policy_ast.Match_community c)
      | None -> fail at "bad community")
  | [ "as-path-group"; n ] -> Some (Policy_ast.Match_as_path_list n)
  | [ "protocol"; p ] -> (
      match Route.protocol_of_string p with
      | Some p -> Some (Policy_ast.Match_protocol p)
      | None -> fail at ("unknown protocol " ^ p))
  | [ "next-hop"; ip ] -> Some (Policy_ast.Match_next_hop (ipv4 at ip))
  | _ -> None

let parse_action at (w : string list) : Policy_ast.action option =
  match w with
  | [ "accept" ] -> Some Policy_ast.Accept
  | [ "reject" ] -> Some Policy_ast.Reject
  | [ "next"; "term" ] -> Some Policy_ast.Next_term
  | [ "local-preference"; n ] -> Some (Policy_ast.Set_local_pref (int_at at n))
  | [ "metric"; n ] -> Some (Policy_ast.Set_med (int_at at n))
  | [ "community"; "add"; c ] ->
      Some (Policy_ast.Add_community (Community.of_string c))
  | [ "community"; "remove"; c ] ->
      Some (Policy_ast.Remove_community (Community.of_string c))
  | [ "community"; "delete"; n ] -> Some (Policy_ast.Delete_community_in n)
  | [ "as-path-prepend"; spec ] -> (
      match
        String.split_on_char ' ' spec |> List.filter (fun s -> s <> "")
      with
      | [] -> fail at "empty as-path-prepend"
      | asn :: _ as all -> Some (Policy_ast.Prepend_as (int_at at asn, List.length all)))
  | _ -> None

let parse_policy (n : node) : Policy_ast.policy =
  let name =
    match n.head with
    | [ "policy-statement"; x ] -> x
    | _ -> fail n.at "policy-statement"
  in
  let terms =
    List.filter_map
      (fun t ->
        match t.head with
        | [ "term"; tname ] ->
            let matches =
              match find_block "from" t.body with
              | None -> []
              | Some f -> List.filter_map (fun c -> parse_match c.at c.head) f.body
            in
            let actions =
              match find_block "then" t.body with
              | None -> []
              | Some th ->
                  List.filter_map (fun c -> parse_action c.at c.head) th.body
            in
            Some { Policy_ast.term_name = tname; matches; actions }
        | _ -> None)
      n.body
  in
  { Policy_ast.pol_name = name; terms }

let parse_prefix_list (n : node) : Device.prefix_list =
  let name =
    match n.head with [ "prefix-list"; x ] -> x | _ -> fail n.at "prefix-list"
  in
  let entries =
    List.filter_map
      (fun c ->
        match c.head with
        | p :: rest ->
            let base = prefix c.at p in
            let rec bounds ge le = function
              | "ge" :: v :: tl -> bounds (Some (int_at c.at v)) le tl
              | "le" :: v :: tl -> bounds ge (Some (int_at c.at v)) tl
              | [] -> (ge, le)
              | _ -> fail c.at "bad prefix-list entry"
            in
            let ge, le = bounds None None rest in
            Some { Device.ple_prefix = base; ple_ge = ge; ple_le = le }
        | [] -> None)
      n.body
  in
  { Device.pl_name = name; pl_entries = entries }

let parse_neighbor ~group at head body : Device.neighbor =
  let ip = match head with [ "neighbor"; x ] -> ipv4 at x | _ -> fail at "neighbor" in
  let remote_as = ref 0 in
  let import = ref [] and export = ref [] in
  let local_addr = ref None in
  let nhs = ref false in
  let rr_client = ref false in
  let description = ref None in
  List.iter
    (fun c ->
      match c.head with
      | [ "peer-as"; n ] -> remote_as := int_at c.at n
      | "import" :: rest -> import := chain c.at rest
      | "export" :: rest -> export := chain c.at rest
      | [ "local-address"; a ] -> local_addr := Some (ipv4 c.at a)
      | [ "next-hop-self" ] -> nhs := true
      | [ "route-reflector-client" ] -> rr_client := true
      | [ "description"; d ] -> description := Some d
      | _ -> ())
    body;
  {
    Device.nb_ip = ip;
    nb_remote_as = !remote_as;
    nb_group = group;
    nb_import = !import;
    nb_export = !export;
    nb_local_addr = !local_addr;
    nb_next_hop_self = !nhs;
    nb_rr_client = !rr_client;
    nb_description = !description;
  }

(* Core of the parser. The block-tree stage is always fatal (an
   unbalanced file has no usable structure), but with [on_error] each
   element-level interpreter (interface, policy, list, filter, BGP
   stanza) recovers independently: a failing element is reported and
   dropped, its siblings still parse. *)
let parse_gen ?(hostname = "device") ?on_error text =
    let tree = parse_tree text in
    let attempt_filter_map f nodes =
      List.filter_map
        (fun n ->
          let run () =
            (* pin bare [Failure]/[Invalid_argument] (e.g. from
               [Community.of_string]) to this element's line *)
            try f n with
            | Fail _ as e -> raise e
            | Failure m | Invalid_argument m -> fail n.at m
          in
          match on_error with
          | None -> run ()
          | Some report -> (
              try run () with
              | Fail e ->
                  report e;
                  None))
        nodes
    in
    let attempt_map f nodes = attempt_filter_map (fun n -> Some (f n)) nodes in
    let attempt_iter f nodes =
      ignore
        (attempt_filter_map
           (fun n ->
             f n;
             None)
           nodes)
    in
    (* hostname *)
    let hostname =
      match find_block "system" tree with
      | Some sys -> (
          match
            List.find_opt
              (fun c -> match c.head with "host-name" :: _ -> true | _ -> false)
              sys.body
          with
          | Some { head = [ _; h ]; _ } -> h
          | _ -> hostname)
      | None -> hostname
    in
    (* interfaces *)
    let interfaces =
      match find_block "interfaces" tree with
      | None -> []
      | Some blk -> attempt_map parse_interface blk.body
    in
    (* IS-IS participation back-annotates interfaces *)
    let protocols = find_block "protocols" tree in
    let isis_metrics =
      match Option.bind protocols (fun p -> find_block "isis" p.body) with
      | None -> []
      | Some isis ->
          attempt_filter_map
            (fun c ->
              match c.head with
              | [ "interface"; ifname ] ->
                  let base =
                    match String.index_opt ifname '.' with
                    | Some i -> String.sub ifname 0 i
                    | None -> ifname
                  in
                  let metric =
                    List.fold_left
                      (fun acc m ->
                        match m.head with
                        | [ "level"; "2"; "metric"; v ] -> int_at m.at v
                        | _ -> acc)
                      10 c.body
                  in
                  Some (base, metric)
              | _ -> None)
            isis.body
    in
    let interfaces =
      List.map
        (fun (i : Device.interface) ->
          match List.assoc_opt i.if_name isis_metrics with
          | Some metric -> { i with igp_enabled = true; igp_metric = metric }
          | None -> i)
        interfaces
    in
    (* routing-options *)
    let routing = find_block "routing-options" tree in
    let router_id =
      Option.bind routing (fun r ->
          List.find_map
            (fun c ->
              match c.head with
              | [ "router-id"; a ] -> Some (ipv4 c.at a)
              | _ -> None)
            r.body)
    in
    let local_as =
      Option.bind routing (fun r ->
          List.find_map
            (fun c ->
              match c.head with
              | [ "autonomous-system"; n ] -> Some (int_at c.at n)
              | _ -> None)
            r.body)
    in
    let static_routes =
      match Option.bind routing (fun r -> find_block "static" r.body) with
      | None -> []
      | Some s ->
          attempt_filter_map
            (fun c ->
              match c.head with
              | [ "route"; p; "next-hop"; nh ] ->
                  Some
                    { Device.st_prefix = prefix c.at p; st_next_hop = ipv4 c.at nh }
              | _ -> None)
            s.body
    in
    (* policy-options *)
    let pol_opts = find_block "policy-options" tree in
    let policies =
      match pol_opts with
      | None -> []
      | Some po -> attempt_map parse_policy (find_blocks "policy-statement" po.body)
    in
    let prefix_lists =
      match pol_opts with
      | None -> []
      | Some po -> attempt_map parse_prefix_list (find_blocks "prefix-list" po.body)
    in
    let community_lists =
      match pol_opts with
      | None -> []
      | Some po ->
          attempt_filter_map
            (fun c ->
              match c.head with
              | "community" :: name :: "members" :: rest ->
                  let members =
                    List.filter (fun w -> w <> "[" && w <> "]") rest
                    |> List.map Community.of_string
                  in
                  Some { Device.cl_name = name; cl_members = members }
              | _ -> None)
            po.body
    in
    let as_path_lists =
      match pol_opts with
      | None -> []
      | Some po ->
          attempt_map
            (fun g ->
              let name =
                match g.head with
                | [ "as-path-group"; x ] -> x
                | _ -> fail g.at "as-path-group"
              in
              let patterns =
                List.filter_map
                  (fun c ->
                    match c.head with
                    | [ "as-path"; _; re ] -> Some (As_regex.compile re)
                    | _ -> None)
                  g.body
              in
              { Device.al_name = name; al_patterns = patterns })
            (find_blocks "as-path-group" po.body)
    in
    (* firewall filters *)
    let acls =
      match find_block "firewall" tree with
      | None -> []
      | Some fw ->
          attempt_map
            (fun f ->
              let name =
                match f.head with [ "filter"; x ] -> x | _ -> fail f.at "filter"
              in
              let rules =
                List.filter_map
                  (fun t ->
                    match t.head with
                    | [ "term"; _ ] ->
                        let dst =
                          Option.bind (find_block "from" t.body) (fun fr ->
                              List.find_map
                                (fun c ->
                                  match c.head with
                                  | [ "destination-address"; p ] ->
                                      Some (prefix c.at p)
                                  | _ -> None)
                                fr.body)
                        in
                        let permit =
                          List.exists
                            (fun c -> c.head = [ "then"; "accept" ])
                            t.body
                        in
                        Option.map
                          (fun p -> { Device.permit; rule_prefix = p })
                          dst
                    | _ -> None)
                  f.body
              in
              { Device.acl_name = name; rules })
            (find_blocks "filter" fw.body)
    in
    (* BGP *)
    let bgp =
      match Option.bind protocols (fun p -> find_block "bgp" p.body) with
      | None -> None
      | Some bgp_blk ->
          let networks = ref [] in
          let aggregates = ref [] in
          let redistributes = ref [] in
          let groups = ref [] in
          let neighbors = ref [] in
          let multipath = ref 1 in
          attempt_iter
            (fun c ->
              match c.head with
              | [ "network"; p ] -> networks := prefix c.at p :: !networks
              | [ "aggregate"; p ] ->
                  aggregates :=
                    { Device.ag_prefix = prefix c.at p; ag_summary_only = false }
                    :: !aggregates
              | [ "aggregate"; p; "summary-only" ] ->
                  aggregates :=
                    { Device.ag_prefix = prefix c.at p; ag_summary_only = true }
                    :: !aggregates
              | [ "redistribute"; proto ] -> (
                  match Route.protocol_of_string proto with
                  | Some proto ->
                      redistributes :=
                        { Device.rd_from = proto; rd_policy = None }
                        :: !redistributes
                  | None -> fail c.at "redistribute protocol")
              | [ "redistribute"; proto; "policy"; pol ] -> (
                  match Route.protocol_of_string proto with
                  | Some proto ->
                      redistributes :=
                        { Device.rd_from = proto; rd_policy = Some pol }
                        :: !redistributes
                  | None -> fail c.at "redistribute protocol")
              | [ "maximum-paths"; n ] -> multipath := int_at c.at n
              | [ "multipath" ] -> ()
              | [ "group"; gname ] ->
                  let remote_as = ref None in
                  let import = ref [] and export = ref [] in
                  let lp = ref None in
                  let descr = ref None in
                  List.iter
                    (fun g ->
                      match g.head with
                      | [ "peer-as"; n ] -> remote_as := Some (int_at g.at n)
                      | [ "local-preference"; n ] -> lp := Some (int_at g.at n)
                      | "import" :: rest -> import := chain g.at rest
                      | "export" :: rest -> export := chain g.at rest
                      | [ "description"; d ] -> descr := Some d
                      | "neighbor" :: _ ->
                          neighbors :=
                            parse_neighbor ~group:(Some gname) g.at g.head g.body
                            :: !neighbors
                      | _ -> ())
                    c.body;
                  groups :=
                    {
                      Device.pg_name = gname;
                      pg_remote_as = !remote_as;
                      pg_import = !import;
                      pg_export = !export;
                      pg_local_pref = !lp;
                      pg_description = !descr;
                    }
                    :: !groups
              | "neighbor" :: _ ->
                  neighbors := parse_neighbor ~group:None c.at c.head c.body :: !neighbors
              | _ -> ())
            bgp_blk.body;
          Some
            {
              Device.local_as = Option.value local_as ~default:0;
              router_id = Option.value router_id ~default:Ipv4.zero;
              networks = List.rev !networks;
              aggregates = List.rev !aggregates;
              redistributes = List.rev !redistributes;
              groups = List.rev !groups;
              neighbors = List.rev !neighbors;
              multipath = !multipath;
            }
    in
    Device.make ~syntax:Device.Junos ~interfaces ~static_routes ~acls
      ~prefix_lists ~community_lists ~as_path_lists ~policies ?bgp hostname

let parse ?hostname text =
  match parse_gen ?hostname text with
  | d -> Ok d
  | exception Fail e -> Error e

let parse_lenient ?file ?hostname text =
  let module D = Netcov_diag.Diag in
  let errs = ref [] in
  match parse_gen ?hostname ~on_error:(fun e -> errs := e :: !errs) text with
  | d ->
      let diags =
        List.rev_map
          (fun (e : error) ->
            D.warning ?file ~line:e.line ~device:d.Device.hostname
              D.Parse_recovered
              (Printf.sprintf "skipped element: %s" e.message))
          !errs
      in
      Ok (d, diags)
  | exception Fail e -> Error (D.error ?file ~line:e.line D.Parse_error e.message)

let parse_exn ?hostname text =
  match parse ?hostname text with
  | Ok d -> d
  | Error e -> invalid_arg ("Parse_junos: " ^ error_to_string e)
