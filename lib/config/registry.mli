(** Network-wide configuration registry: every device's rendered
    configuration text, plus globally-numbered configuration elements and
    the per-line ownership map. This is what NetCov extracts via Batfish
    in the paper (§5). *)

type t

(** [build devices] renders each device with the emitter matching its
    syntax, assigns globally unique element ids, and indexes ownership.
    Elements of external (environment stub) devices are not registered:
    they are outside the coverage domain. Raises [Invalid_argument] on
    duplicate hostnames. *)
val build : Device.t list -> t

(** Like {!build}, but duplicate hostnames degrade instead of raising:
    the first definition wins, each later one is dropped and reported
    as a [Duplicate_host] error diagnostic. *)
val build_lenient : Device.t list -> t * Netcov_diag.Diag.t list

val device : t -> string -> Device.t
val device_opt : t -> string -> Device.t option

(** All devices, in build order. *)
val devices : t -> Device.t list

(** Devices inside the coverage domain. *)
val internal_devices : t -> Device.t list

val is_external : t -> string -> bool

(** Number of registered elements; ids run from 0 to [n_elements - 1]. *)
val n_elements : t -> int

val element : t -> Element.id -> Element.t
val iter_elements : t -> (Element.t -> unit) -> unit
val fold_elements : t -> ('a -> Element.t -> 'a) -> 'a -> 'a

(** [find t ~device key] resolves an element id; [None] when the device
    is external or the key does not exist. *)
val find : t -> device:string -> Element.key -> Element.id option

val find_exn : t -> device:string -> Element.key -> Element.id

(** Element ids belonging to one device. *)
val elements_of_device : t -> string -> Element.id list

(** Rendered configuration lines of a device. *)
val text : t -> string -> string array

(** [line_owner t host n] is the element owning 1-based line [n]. *)
val line_owner : t -> string -> int -> Element.id option

(** Line counts over internal devices. *)
val total_lines : t -> int

(** Lines owned by some element (the "considered" denominator). *)
val considered_lines : t -> int

val device_total_lines : t -> string -> int
val device_considered_lines : t -> string -> int
