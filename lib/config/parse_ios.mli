(** Parser for the IOS-like concrete syntax produced by {!Emit_ios};
    round-trips with it. *)

type error = { line : int; message : string }

val error_to_string : error -> string

(** Strict parse: the first unparseable line aborts with [Error].
    Helper failures (bad communities, as-path regexes) are pinned to
    their line — [parse] never lets an exception escape. *)
val parse : ?hostname:string -> string -> (Device.t, error) result

(** Lenient parse with per-stanza recovery: every unparseable line is
    skipped and reported as a [Parse_recovered] warning (with [?file]
    and line provenance), and the rest of the configuration still
    parses. Only catastrophic failures — nothing recoverable
    line-by-line — yield [Error]. *)
val parse_lenient :
  ?file:string ->
  ?hostname:string ->
  string ->
  (Device.t * Netcov_diag.Diag.t list, Netcov_diag.Diag.t) result

val parse_exn : ?hostname:string -> string -> Device.t
