(* Nodes live in growable parallel arrays; ids 0 and 1 are the FALSE and
   TRUE terminals. Structural uniqueness is enforced through the unique
   table, so equality of handles is integer equality.

   The manager is built to be *persistent*: the labeling engine keeps
   one arena per worker domain alive across many cones and suites
   (lib/core/label.ml) instead of creating a throwaway manager per
   cone. Three features support that lifecycle:

   - The apply cache is two-way set-associative and resizes with the
     node store: a colliding insert evicts only the older of its set's
     two entries (direct mapping thrashed once distinct live pairs
     outnumbered slots), and the set count doubles as the arena grows
     so long-lived arenas keep a cache proportional to their working
     set instead of the cone-sized default.
   - [trim] is a mark-compact GC over caller-supplied roots, so an
     arena can be cut back to its live nodes (or fully reset) between
     suites rather than growing monotonically.
   - [essential_vars] computes every necessary variable of a node in
     one bottom-up pass, replacing the per-variable [is_necessary]
     restrict loop (kept as the differential reference).

   Cache keys are a single packed int: 3 bits of op code, 29 bits per
   operand (node id or variable index). *)

type node = int

type manager = {
  mutable var_ : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  (* Two ways per set: a set s owns entries 2s and 2s+1, way 0 the
     most recently used. -1 = empty. *)
  mutable cache_key : int array;
  mutable cache_val : int array;
  mutable cache_mask : int;  (* set-index mask *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  cache_floor : int;  (* entries a trim shrinks back to, from [create] *)
  mutable trims : int;
}

let terminal_var = max_int

(* Operands must fit in 29 bits for the packed cache key. Node ids
   reach this only past half a billion nodes (hundreds of GB of node
   arrays); variable indices are validated in [var]. *)
let max_operand = (1 lsl 29) - 1

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 256

(* The apply cache stops doubling at 2^21 entries (two 16 MiB arrays):
   beyond that, extra capacity buys little over the lossy eviction. *)
let max_cache_entries = 1 lsl 21

let mk_cache entries =
  let e = round_pow2 (max 256 (min max_cache_entries entries)) in
  (Array.make e (-1), Array.make e 0, (e / 2) - 1)

(* Default slot count keeps manager creation cheap: 2^12 entries = two
   32 KiB arrays — it grows with the arena anyway. A persistent arena
   should pass a larger [cache_size]: the apply working set of many
   cones sharing hash-consed nodes is far bigger than the node count,
   and [cache_size] is also the floor a [trim] shrinks back to. *)
let create ?(cache_size = 1 lsl 12) () =
  let n = 1024 in
  let ck, cv, cm = mk_cache cache_size in
  let m =
    {
      var_ = Array.make n 0;
      lo = Array.make n 0;
      hi = Array.make n 0;
      next = 2;
      unique = Hashtbl.create 4096;
      cache_key = ck;
      cache_val = cv;
      cache_mask = cm;
      cache_hits = 0;
      cache_misses = 0;
      cache_floor = round_pow2 (max 256 (min max_cache_entries cache_size));
      trims = 0;
    }
  in
  m.var_.(0) <- terminal_var;
  m.var_.(1) <- terminal_var;
  m

type cache_stats = { hits : int; misses : int; slots : int }

let cache_stats m =
  {
    hits = m.cache_hits;
    misses = m.cache_misses;
    slots = Array.length m.cache_key;
  }

let bdd_false (_ : manager) = 0
let bdd_true (_ : manager) = 1
let is_false n = n = 0
let is_true n = n = 1
let equal (a : node) (b : node) = a = b

let slot m key =
  let h = (key * 0x9E3779B1) land max_int in
  (h lxor (h lsr 17)) land m.cache_mask

(* Insert without touching the hit/miss counters (also used when
   rehashing into a resized cache). Way 0 gets the new entry; the
   previous way-0 occupant is demoted, evicting way 1. *)
let cache_add m key v =
  let i = slot m key * 2 in
  if m.cache_key.(i) <> key then begin
    m.cache_key.(i + 1) <- m.cache_key.(i);
    m.cache_val.(i + 1) <- m.cache_val.(i)
  end;
  m.cache_key.(i) <- key;
  m.cache_val.(i) <- v;
  v

let cache_find m key =
  let i = slot m key * 2 in
  if m.cache_key.(i) = key then begin
    m.cache_hits <- m.cache_hits + 1;
    Some m.cache_val.(i)
  end
  else if m.cache_key.(i + 1) = key then begin
    (* promote to way 0 *)
    let v = m.cache_val.(i + 1) in
    m.cache_key.(i + 1) <- m.cache_key.(i);
    m.cache_val.(i + 1) <- m.cache_val.(i);
    m.cache_key.(i) <- key;
    m.cache_val.(i) <- v;
    m.cache_hits <- m.cache_hits + 1;
    Some v
  end
  else begin
    m.cache_misses <- m.cache_misses + 1;
    None
  end

let resize_cache m entries =
  let old_key = m.cache_key and old_val = m.cache_val in
  let ck, cv, cm = mk_cache entries in
  m.cache_key <- ck;
  m.cache_val <- cv;
  m.cache_mask <- cm;
  Array.iteri
    (fun i key -> if key >= 0 then ignore (cache_add m key old_val.(i)))
    old_key

let grow m =
  let cap = Array.length m.var_ in
  if m.next >= cap then begin
    let ncap = cap * 2 in
    let copy a = Array.append a (Array.make (ncap - cap) 0) in
    m.var_ <- copy m.var_;
    m.lo <- copy m.lo;
    m.hi <- copy m.hi
  end;
  (* Keep at least one cache entry per node (up to the cap): a
     persistent arena's working set scales with its node count, and a
     cone-sized cache under a million-node arena would thrash. *)
  let entries = Array.length m.cache_key in
  if m.next >= entries && entries < max_cache_entries then
    resize_cache m (entries * 2)

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some id -> id
    | None ->
        grow m;
        let id = m.next in
        if id > max_operand then failwith "Bdd: node id space exhausted";
        m.next <- id + 1;
        m.var_.(id) <- v;
        m.lo.(id) <- lo;
        m.hi.(id) <- hi;
        Hashtbl.add m.unique (v, lo, hi) id;
        id

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  if i > max_operand then invalid_arg "Bdd.var: index too large";
  mk m i 0 1

(* Single-int cache key: | b:29 | a:29 | op:3 |. *)
let pack op a b = (b lsl 32) lor (a lsl 3) lor op

(* op codes for the apply cache *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3

let rec apply m op a b =
  let terminal =
    if op = op_and then
      if a = 0 || b = 0 then Some 0
      else if a = 1 then Some b
      else if b = 1 then Some a
      else if a = b then Some a
      else None
    else if op = op_or then
      if a = 1 || b = 1 then Some 1
      else if a = 0 then Some b
      else if b = 0 then Some a
      else if a = b then Some a
      else None
    else if a = b then Some 0
    else if a = 0 then Some b
    else if b = 0 then Some a
    else None
  in
  match terminal with
  | Some r -> r
  | None -> (
      (* commutative ops: canonicalize the key *)
      let a, b = if a <= b then (a, b) else (b, a) in
      let key = pack op a b in
      match cache_find m key with
      | Some r -> r
      | None ->
          let va = m.var_.(a) and vb = m.var_.(b) in
          let v = min va vb in
          let a_lo, a_hi = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
          let b_lo, b_hi = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
          let r = mk m v (apply m op a_lo b_lo) (apply m op a_hi b_hi) in
          cache_add m key r)

let bdd_and m a b = apply m op_and a b
let bdd_or m a b = apply m op_or a b
let bdd_xor m a b = apply m op_xor a b

let rec bdd_not m a =
  if a = 0 then 1
  else if a = 1 then 0
  else
    let key = pack op_not a 0 in
    match cache_find m key with
    | Some r -> r
    | None ->
        let r = mk m m.var_.(a) (bdd_not m m.lo.(a)) (bdd_not m m.hi.(a)) in
        cache_add m key r

let conj m nodes = List.fold_left (bdd_and m) 1 nodes
let disj m nodes = List.fold_left (bdd_or m) 0 nodes

let op_restrict0 = 4
let op_restrict1 = 5

let rec restrict m n ~var:v ~value =
  if n < 2 then n
  else
    let nv = m.var_.(n) in
    if nv > v then n
    else if nv = v then if value then m.hi.(n) else m.lo.(n)
    else
      let recompute () =
        mk m nv
          (restrict m m.lo.(n) ~var:v ~value)
          (restrict m m.hi.(n) ~var:v ~value)
      in
      if v > max_operand then recompute ()
      else
        let op = if value then op_restrict1 else op_restrict0 in
        let key = pack op n v in
        match cache_find m key with
        | Some r -> r
        | None -> cache_add m key (recompute ())

let is_necessary m n ~var:v = is_false (restrict m n ~var:v ~value:false)

let support m n =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.var_.(n) ();
      go m.lo.(n);
      go m.hi.(n)
    end
  in
  go n;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

(* Every necessary variable of [n] in one bottom-up pass.

   v is necessary for f when f|v<-0 = false. Over the ROBDD structure
   this satisfies a local recurrence: for an internal node
   n = (v_n, lo, hi),

     ess(n) = (ess(lo) /\ ess(hi)) \/ { v_n when lo = FALSE }

   with ess(FALSE) = all variables and ess(TRUE) = {} — for v = v_n
   the cofactor is lo itself (lo = FALSE iff necessary; v_n cannot
   appear in lo or hi by variable ordering, so the intersection never
   contributes it), and for v > v_n the cofactor
   mk(v_n, lo|v<-0, hi|v<-0) is FALSE iff both branch cofactors are.
   Variables above v_n (absent from n's support) are never necessary
   for a non-FALSE node, so bitsets over the node's support suffice.

   One DFS collects the reachable nodes and the support; a second pass
   in ascending node-id order (children are always created before
   their parents, so ids are topologically sorted) folds the bitsets —
   linear in reachable nodes, versus support × restrict traversals for
   the per-variable loop. Terminals return [], matching what the
   restrict-based loop over an empty support computed. *)
let essential_vars m root =
  if root < 2 then []
  else begin
    let seen = Hashtbl.create 256 in
    let order = ref [] in
    let rec go n =
      if n >= 2 && not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        go m.lo.(n);
        go m.hi.(n);
        (* children first: ids prepend in post-order *)
        order := n :: !order
      end
    in
    go root;
    let nodes = List.rev !order in
    (* dense indexing of the support *)
    let support_vars =
      let vars = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace vars m.var_.(n) ()) nodes;
      List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])
    in
    let idx = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.add idx v i) support_vars;
    let nv = List.length support_vars in
    let words = (nv + 62) / 63 in
    let full = Array.make words (-1) in
    let empty = Array.make words 0 in
    let ess = Hashtbl.create 256 in
    let ess_of n =
      if n = 0 then full else if n = 1 then empty else Hashtbl.find ess n
    in
    List.iter
      (fun n ->
        let el = ess_of m.lo.(n) and eh = ess_of m.hi.(n) in
        let e = Array.make words 0 in
        for w = 0 to words - 1 do
          e.(w) <- el.(w) land eh.(w)
        done;
        if m.lo.(n) = 0 then begin
          let i = Hashtbl.find idx m.var_.(n) in
          e.(i / 63) <- e.(i / 63) lor (1 lsl (i mod 63))
        end;
        Hashtbl.add ess n e)
      nodes;
    let e = ess_of root in
    List.filteri
      (fun i _ -> e.(i / 63) land (1 lsl (i mod 63)) <> 0)
      support_vars
  end

let eval m n assignment =
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if assignment m.var_.(n) then go m.hi.(n)
    else go m.lo.(n)
  in
  go n

let node_count m = m.next
let trims m = m.trims

(* Mark-compact GC. Every node reachable from [roots] survives under a
   fresh dense id (ascending old-id order, so children keep smaller ids
   than parents); everything else is freed by shrinking the node
   arrays. The unique table is rebuilt and the apply cache flushed —
   both held stale ids. Handles not in [roots] are invalidated. *)
let trim m roots =
  let mark = Array.make m.next false in
  mark.(0) <- true;
  mark.(1) <- true;
  let rec go n =
    if not mark.(n) then begin
      mark.(n) <- true;
      go m.lo.(n);
      go m.hi.(n)
    end
  in
  List.iter
    (fun r ->
      if r < 0 || r >= m.next then invalid_arg "Bdd.trim: foreign node";
      go r)
    roots;
  let remap = Array.make m.next (-1) in
  remap.(0) <- 0;
  remap.(1) <- 1;
  let nxt = ref 2 in
  for n = 2 to m.next - 1 do
    if mark.(n) then begin
      let id = !nxt in
      incr nxt;
      (* in-place: id <= n and lo/hi < n are already remapped *)
      m.var_.(id) <- m.var_.(n);
      m.lo.(id) <- remap.(m.lo.(n));
      m.hi.(id) <- remap.(m.hi.(n));
      remap.(n) <- id
    end
  done;
  m.next <- !nxt;
  let cap = max 1024 (round_pow2 m.next) in
  if cap < Array.length m.var_ then begin
    m.var_ <- Array.sub m.var_ 0 cap;
    m.lo <- Array.sub m.lo 0 cap;
    m.hi <- Array.sub m.hi 0 cap
  end;
  Hashtbl.reset m.unique;
  for id = 2 to m.next - 1 do
    Hashtbl.add m.unique (m.var_.(id), m.lo.(id), m.hi.(id)) id
  done;
  let ck, cv, cm = mk_cache (max m.cache_floor (2 * m.next)) in
  m.cache_key <- ck;
  m.cache_val <- cv;
  m.cache_mask <- cm;
  m.trims <- m.trims + 1;
  List.map (fun r -> remap.(r)) roots

let reset m = ignore (trim m [])

let any_sat m n =
  let rec go n acc =
    if n = 0 then None
    else if n = 1 then Some (List.rev acc)
    else if m.lo.(n) <> 0 then go m.lo.(n) ((m.var_.(n), false) :: acc)
    else go m.hi.(n) ((m.var_.(n), true) :: acc)
  in
  go n []
