(* Nodes live in growable parallel arrays; ids 0 and 1 are the FALSE and
   TRUE terminals. Structural uniqueness is enforced through the unique
   table, so equality of handles is integer equality.

   The apply cache is a direct-mapped array keyed by a single packed
   int: 3 bits of op code, 29 bits per operand (node id or variable
   index). A colliding insert overwrites its slot, so eviction is O(1)
   and always discards the older of the two entries — unlike the
   previous [Hashtbl.reset]-when-full scheme, which dropped the entire
   cache mid-operation and forced repeated cold restarts. *)

type node = int

type manager = {
  mutable var_ : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  cache_key : int array;  (* packed key per slot; -1 = empty *)
  cache_val : int array;
  cache_mask : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let terminal_var = max_int

(* Operands must fit in 29 bits for the packed cache key. Node ids
   reach this only past half a billion nodes (hundreds of GB of node
   arrays); variable indices are validated in [var]. *)
let max_operand = (1 lsl 29) - 1

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 256

(* Default slot count keeps manager creation cheap (the labeler makes
   one manager per tested-fact cone): 2^12 slots = two 32 KiB arrays. *)
let create ?(cache_size = 1 lsl 12) () =
  let n = 1024 in
  let csize = round_pow2 (max 256 cache_size) in
  let m =
    {
      var_ = Array.make n 0;
      lo = Array.make n 0;
      hi = Array.make n 0;
      next = 2;
      unique = Hashtbl.create 4096;
      cache_key = Array.make csize (-1);
      cache_val = Array.make csize 0;
      cache_mask = csize - 1;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  m.var_.(0) <- terminal_var;
  m.var_.(1) <- terminal_var;
  m

type cache_stats = { hits : int; misses : int; slots : int }

let cache_stats m =
  { hits = m.cache_hits; misses = m.cache_misses; slots = m.cache_mask + 1 }

let bdd_false (_ : manager) = 0
let bdd_true (_ : manager) = 1
let is_false n = n = 0
let is_true n = n = 1
let equal (a : node) (b : node) = a = b

let grow m =
  let cap = Array.length m.var_ in
  if m.next >= cap then begin
    let ncap = cap * 2 in
    let copy a = Array.append a (Array.make (ncap - cap) 0) in
    m.var_ <- copy m.var_;
    m.lo <- copy m.lo;
    m.hi <- copy m.hi
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some id -> id
    | None ->
        grow m;
        let id = m.next in
        if id > max_operand then failwith "Bdd: node id space exhausted";
        m.next <- id + 1;
        m.var_.(id) <- v;
        m.lo.(id) <- lo;
        m.hi.(id) <- hi;
        Hashtbl.add m.unique (v, lo, hi) id;
        id

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  if i > max_operand then invalid_arg "Bdd.var: index too large";
  mk m i 0 1

(* Single-int cache key: | b:29 | a:29 | op:3 |. *)
let pack op a b = (b lsl 32) lor (a lsl 3) lor op

let slot m key =
  let h = (key * 0x9E3779B1) land max_int in
  (h lxor (h lsr 17)) land m.cache_mask

let cache_find m key =
  let i = slot m key in
  if m.cache_key.(i) = key then begin
    m.cache_hits <- m.cache_hits + 1;
    Some m.cache_val.(i)
  end
  else begin
    m.cache_misses <- m.cache_misses + 1;
    None
  end

let cache_add m key v =
  let i = slot m key in
  m.cache_key.(i) <- key;
  m.cache_val.(i) <- v;
  v

(* op codes for the apply cache *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3

let rec apply m op a b =
  let terminal =
    if op = op_and then
      if a = 0 || b = 0 then Some 0
      else if a = 1 then Some b
      else if b = 1 then Some a
      else if a = b then Some a
      else None
    else if op = op_or then
      if a = 1 || b = 1 then Some 1
      else if a = 0 then Some b
      else if b = 0 then Some a
      else if a = b then Some a
      else None
    else if a = b then Some 0
    else if a = 0 then Some b
    else if b = 0 then Some a
    else None
  in
  match terminal with
  | Some r -> r
  | None -> (
      (* commutative ops: canonicalize the key *)
      let a, b = if a <= b then (a, b) else (b, a) in
      let key = pack op a b in
      match cache_find m key with
      | Some r -> r
      | None ->
          let va = m.var_.(a) and vb = m.var_.(b) in
          let v = min va vb in
          let a_lo, a_hi = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
          let b_lo, b_hi = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
          let r = mk m v (apply m op a_lo b_lo) (apply m op a_hi b_hi) in
          cache_add m key r)

let bdd_and m a b = apply m op_and a b
let bdd_or m a b = apply m op_or a b
let bdd_xor m a b = apply m op_xor a b

let rec bdd_not m a =
  if a = 0 then 1
  else if a = 1 then 0
  else
    let key = pack op_not a 0 in
    match cache_find m key with
    | Some r -> r
    | None ->
        let r = mk m m.var_.(a) (bdd_not m m.lo.(a)) (bdd_not m m.hi.(a)) in
        cache_add m key r

let conj m nodes = List.fold_left (bdd_and m) 1 nodes
let disj m nodes = List.fold_left (bdd_or m) 0 nodes

let op_restrict0 = 4
let op_restrict1 = 5

let rec restrict m n ~var:v ~value =
  if n < 2 then n
  else
    let nv = m.var_.(n) in
    if nv > v then n
    else if nv = v then if value then m.hi.(n) else m.lo.(n)
    else
      let recompute () =
        mk m nv
          (restrict m m.lo.(n) ~var:v ~value)
          (restrict m m.hi.(n) ~var:v ~value)
      in
      if v > max_operand then recompute ()
      else
        let op = if value then op_restrict1 else op_restrict0 in
        let key = pack op n v in
        match cache_find m key with
        | Some r -> r
        | None -> cache_add m key (recompute ())

let is_necessary m n ~var:v = is_false (restrict m n ~var:v ~value:false)

let support m n =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.var_.(n) ();
      go m.lo.(n);
      go m.hi.(n)
    end
  in
  go n;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let eval m n assignment =
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if assignment m.var_.(n) then go m.hi.(n)
    else go m.lo.(n)
  in
  go n

let node_count m = m.next

let any_sat m n =
  let rec go n acc =
    if n = 0 then None
    else if n = 1 then Some (List.rev acc)
    else if m.lo.(n) <> 0 then go m.lo.(n) ((m.var_.(n), false) :: acc)
    else go m.hi.(n) ((m.var_.(n), true) :: acc)
  in
  go n []
