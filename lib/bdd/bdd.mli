(** Reduced ordered binary decision diagrams with hash-consing and an
    apply cache — the CUDD stand-in used by the strong/weak coverage
    labeling (§4.3). Variables are non-negative integers ordered by
    index.

    Managers are built to live long: the labeling engine keeps one
    arena per worker domain across cones and suites (see
    [lib/core/label.ml]), relying on {!trim}/{!reset} to cut it back
    and on the apply cache resizing with the node store. *)

type manager

(** A node handle, valid only with the manager that created it, and
    only until the next {!trim}/{!reset} of that manager that does not
    list it as a root. *)
type node

(** [create ()] makes a fresh manager. [cache_size] tunes the initial
    apply-cache entry count (default 1 shl 12; rounded up to a power of
    two). The cache is two-way set-associative with single-int packed
    keys — a colliding insert evicts only the older entry of its set —
    and doubles alongside the node store (up to two 16 MiB arrays) so
    persistent arenas keep a cache proportional to their working set. *)
val create : ?cache_size:int -> unit -> manager

(** Apply-cache effectiveness counters, cumulative for the manager's
    lifetime (they survive {!trim}). [slots] is the current entry
    count. *)
type cache_stats = { hits : int; misses : int; slots : int }

val cache_stats : manager -> cache_stats

val bdd_true : manager -> node
val bdd_false : manager -> node

(** [var m i] is the BDD of variable [i]. *)
val var : manager -> int -> node

val bdd_not : manager -> node -> node
val bdd_and : manager -> node -> node -> node
val bdd_or : manager -> node -> node -> node
val bdd_xor : manager -> node -> node -> node

(** n-ary forms, convenient for predicate construction. *)
val conj : manager -> node list -> node

val disj : manager -> node list -> node

(** [restrict m n ~var ~value] is the cofactor of [n] with [var] fixed
    to [value]. *)
val restrict : manager -> node -> var:int -> value:bool -> node

val is_true : node -> bool
val is_false : node -> bool
val equal : node -> node -> bool

(** [is_necessary m n ~var] is true iff setting [var] to false forces
    [n] to false — [¬var ⇒ ¬n], the necessity test of §4.3. Kept as
    the differential reference for {!essential_vars}. *)
val is_necessary : manager -> node -> var:int -> bool

(** Variables appearing in the BDD (the support). *)
val support : manager -> node -> int list

(** [essential_vars m n] is every variable [v] with
    [is_necessary m n ~var:v], in ascending order, computed in a single
    bottom-up pass linear in the nodes reachable from [n] (bitset per
    node over [n]'s support) instead of one restrict traversal per
    support variable. Terminals yield [[]] — matching the restrict
    loop over their empty support, even though every variable is
    vacuously necessary for FALSE. *)
val essential_vars : manager -> node -> int list

(** [eval m n assignment] evaluates under a total assignment function. *)
val eval : manager -> node -> (int -> bool) -> bool

(** Number of unique nodes allocated so far (diagnostics, perf
    reporting). Decreases only at {!trim}/{!reset}. *)
val node_count : manager -> int

(** [trim m roots] garbage-collects the manager: every node reachable
    from [roots] is kept (compacted in place, unique table rebuilt,
    apply cache flushed, node arrays shrunk) and the surviving handles
    are returned in input order. All other handles — including any
    cached outside — are invalidated. Raises [Invalid_argument] on a
    handle outside the manager. *)
val trim : manager -> node list -> node list

(** [reset m] is [trim m []]: drop every node and shrink back to the
    creation footprint. *)
val reset : manager -> unit

(** Number of {!trim}/{!reset} calls so far. *)
val trims : manager -> int

(** [any_sat m n] is a satisfying partial assignment as
    [(var, value)] pairs, or [None] when unsatisfiable. *)
val any_sat : manager -> node -> (int * bool) list option
