(** Reduced ordered binary decision diagrams with hash-consing and an
    apply cache — the CUDD stand-in used by the strong/weak coverage
    labeling (§4.3). Variables are non-negative integers ordered by
    index. *)

type manager

(** A node handle, valid only with the manager that created it. *)
type node

(** [create ()] makes a fresh manager. [cache_size] tunes the apply
    cache slot count (default 1 shl 12; rounded up to a power of two).
    The cache is direct-mapped with single-int packed keys: a colliding
    insert evicts only its own slot, keeping recent results warm
    instead of flushing the whole cache when full. *)
val create : ?cache_size:int -> unit -> manager

(** Apply-cache effectiveness counters, cumulative for the manager's
    lifetime. [slots] is the fixed slot count. *)
type cache_stats = { hits : int; misses : int; slots : int }

val cache_stats : manager -> cache_stats

val bdd_true : manager -> node
val bdd_false : manager -> node

(** [var m i] is the BDD of variable [i]. *)
val var : manager -> int -> node

val bdd_not : manager -> node -> node
val bdd_and : manager -> node -> node -> node
val bdd_or : manager -> node -> node -> node
val bdd_xor : manager -> node -> node -> node

(** n-ary forms, convenient for predicate construction. *)
val conj : manager -> node list -> node

val disj : manager -> node list -> node

(** [restrict m n ~var ~value] is the cofactor of [n] with [var] fixed
    to [value]. *)
val restrict : manager -> node -> var:int -> value:bool -> node

val is_true : node -> bool
val is_false : node -> bool
val equal : node -> node -> bool

(** [is_necessary m n ~var] is true iff setting [var] to false forces
    [n] to false — [¬var ⇒ ¬n], the necessity test of §4.3. *)
val is_necessary : manager -> node -> var:int -> bool

(** Variables appearing in the BDD (the support). *)
val support : manager -> node -> int list

(** [eval m n assignment] evaluates under a total assignment function. *)
val eval : manager -> node -> (int -> bool) -> bool

(** Number of unique nodes allocated so far (diagnostics, perf
    reporting). *)
val node_count : manager -> int

(** [any_sat m n] is a satisfying partial assignment as
    [(var, value)] pairs, or [None] when unsatisfiable. *)
val any_sat : manager -> node -> (int * bool) list option
