(** The daemon's registry of warm networks.

    Each uploaded network owns one {!entry}: a live
    {!Netcov_incr.Incr.session} (registry, interner, BDD tables and the
    persistent targeted-simulation memo cache stay warm across
    requests), the test-suite specs registered against it, and the
    diagnostics of its most recent parse. Entries are found under a
    server-assigned id (["n1"], ["n2"], …).

    Concurrency model (documented in [docs/SERVE.md]): the table itself
    is guarded by one mutex — lookups, inserts and removals are cheap
    and serialized. Each entry carries its own lock; every handler that
    touches an entry's mutable state (analysis, suite registration,
    config update, coverage read) runs under {!with_entry}. Requests
    against {e different} networks therefore proceed in parallel on
    different pool domains, while requests against the same network
    serialize — an [Incr] session is single-writer by construction. *)

open Netcov_types

(** One registered test, as uploaded (compiled against the session's
    current stable state on every update; see [docs/SERVE.md]). *)
type test_spec =
  | Dp_upper_bound
      (** the hypothetical test inspecting every forwarding rule
          ({!Netcov_dpcov.Dpcov.all_data_plane_tested}) *)
  | Rib of { host : string; prefix : Prefix.t }
      (** the main-RIB entries of [host] covering [prefix] — what a
          data-plane test that looks up [prefix] on [host] exercises *)
  | Element of { device : string; line : int }
      (** direct control-plane coverage of the element owning the given
          configuration line of [device] *)

type suite = { su_name : string; su_tests : test_spec list }

type entry = {
  e_id : string;
  e_name : string;
  e_syntax : [ `Junos | `Ios ];
  e_lock : Mutex.t;  (** held via {!with_entry} for all mutable access *)
  e_session : Netcov_incr.Incr.session;
  mutable e_suites : suite list;  (** registration order *)
  mutable e_diags : Netcov_diag.Diag.t list;
      (** diagnostics of the latest accepted upload/update, embedded in
          coverage reports *)
  mutable e_updates : int;  (** completed [/update] calls *)
  e_created_s : float;  (** [Unix.gettimeofday] at creation *)
}

type t

(** [create ~max_networks ()] is an empty table admitting at most
    [max_networks] concurrent entries (the [serve.networks] gauge
    tracks the population). *)
val create : max_networks:int -> unit -> t

val max_networks : t -> int
val count : t -> int

(** [add t ~name ~syntax ~session ~diags] registers a network under a
    fresh id, or [Error `Full] at capacity ([remove] frees a slot). *)
val add :
  t ->
  name:string ->
  syntax:[ `Junos | `Ios ] ->
  session:Netcov_incr.Incr.session ->
  diags:Netcov_diag.Diag.t list ->
  (entry, [ `Full ]) result

val find : t -> string -> entry option

(** [remove t id] deletes the entry; [false] when [id] is unknown. *)
val remove : t -> string -> bool

(** Entries in id (creation) order. *)
val list : t -> entry list

(** [with_entry e f] runs [f ()] holding [e]'s lock. Not reentrant. *)
val with_entry : entry -> (unit -> 'a) -> 'a
