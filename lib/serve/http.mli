(** Minimal HTTP/1.1 request parser and response writer over raw file
    descriptors — just enough protocol for the [netcov serve] JSON API,
    with no external dependency (stdlib [Unix] only).

    Scope (documented limits, not accidents): requests are
    [Content-Length]-framed — [Transfer-Encoding: chunked] is rejected
    with [Bad_request]; header lines must end in CRLF; [Expect:
    100-continue] is not acknowledged. Responses always carry an
    explicit [Content-Length]. Keep-alive follows HTTP/1.1 defaults
    (persistent unless [Connection: close]; HTTP/1.0 only with
    [Connection: keep-alive]).

    Every size limit is explicit in {!limits} and enforced while
    reading, so a hostile peer can neither balloon memory nor stall the
    parser past the socket's receive timeout (failure semantics in
    [docs/SERVE.md]). *)

(** A parsed request. Header names are lowercased; values are trimmed.
    [path] is the percent-decoded target without its query string;
    [query] the decoded [k=v] pairs after [?], in order. *)
type request = {
  meth : string;  (** verb, uppercased: ["GET"], ["POST"], … *)
  path : string;
  query : (string * string) list;
  version : string;  (** ["HTTP/1.0"] or ["HTTP/1.1"] *)
  headers : (string * string) list;
  body : string;
}

(** Parser size limits, enforced during the read. *)
type limits = {
  max_request_line : int;  (** bytes, request line incl. CRLF *)
  max_header_bytes : int;  (** bytes, one header line incl. CRLF *)
  max_headers : int;  (** header count *)
  max_body : int;  (** bytes, declared [Content-Length] *)
}

(** 8 KiB request line and header lines, 128 headers, 64 MiB body —
    room for a few thousand uploaded router configurations. *)
val default_limits : limits

(** Why a request could not be parsed. [Eof] is the peer closing
    between requests (the clean end of a keep-alive connection);
    [Timeout] is the socket receive timeout expiring mid-read;
    [Too_large] names the exceeded limit (HTTP 413/431); [Bad_request]
    is malformed syntax (HTTP 400). *)
type error =
  | Eof
  | Timeout
  | Too_large of string
  | Bad_request of string

(** A buffered byte source. {!of_fd} reads from a socket (honouring its
    [SO_RCVTIMEO]); {!of_string} feeds canned bytes, which is how the
    parser unit tests drive malformed inputs. One reader must serve all
    requests of a connection — buffered bytes carry over. *)
type reader

val of_fd : Unix.file_descr -> reader
val of_string : string -> reader

(** [read_request r] parses the next request off the reader. *)
val read_request : ?limits:limits -> reader -> (request, error) result

(** [header req name] is the value of header [name]
    (case-insensitive). *)
val header : request -> string -> string option

(** [query_param req name] is the first query-string value of [name]. *)
val query_param : request -> string -> string option

(** Whether the connection should persist after answering [req]. *)
val keep_alive : request -> bool

(** [status_text 404] is ["Not Found"] (the handful of codes the API
    uses; anything unknown renders as ["Status"]). *)
val status_text : int -> string

(** [response ~status ~keep_alive body] is the serialized response:
    status line, [Content-Type] (default [application/json]),
    [Content-Length], [Connection], [extra] headers verbatim, then
    [body]. Exposed for the writer unit tests. *)
val response :
  ?content_type:string ->
  ?extra:(string * string) list ->
  status:int ->
  keep_alive:bool ->
  string ->
  string

(** [write_response fd …] writes {!response} to [fd], looping over
    partial writes. Raises [Unix.Unix_error] (e.g. [EPIPE]) when the
    peer is gone; the connection loop treats that as a closed
    connection. *)
val write_response :
  Unix.file_descr ->
  ?content_type:string ->
  ?extra:(string * string) list ->
  status:int ->
  keep_alive:bool ->
  string ->
  unit
