(** The daemon's JSON API: route dispatch and handlers over a
    {!Session_table.t}. Transport-free — {!handle} maps one parsed
    {!Http.request} to one response, so the full API is exercisable
    without a socket (the loopback tests still go through real
    sockets; the unit tests do not have to).

    Routes (full reference with schemas and transcripts in
    [docs/SERVE.md]):

    - [POST /v1/networks] — upload configurations, parsed leniently;
      diagnostics ride in the response
    - [GET /v1/networks] — list registered networks
    - [GET /v1/networks/:id] — one network's status
    - [DELETE /v1/networks/:id] — forget a network
    - [POST /v1/networks/:id/suites] — register test suites
    - [POST /v1/networks/:id/update] — apply a configuration delta
      through the warm incremental session
    - [GET /v1/networks/:id/coverage] — coverage report
      ([?format=report|coverage|lcov])
    - [GET /metrics] — the observability registry as JSON
    - [GET /healthz] — liveness

    Failure semantics: every non-2xx response has the body
    [{"error":{"code":…,"message":…,"diagnostics":[…]}}] with the
    [diagnostics] array always present (empty when none apply) —
    mirroring the always-present sections of partial coverage reports
    ([docs/ERRORS.md]). Handler exceptions degrade to a 500 with the
    exception text; they never kill the connection's domain.

    Every call records the per-route [http.requests] counter and
    [http.request_seconds] histogram ([docs/OBSERVABILITY.md]). *)

type t

(** [create ~table ()] is an API instance serving [table]. *)
val create : table:Session_table.t -> unit -> t

val table : t -> Session_table.t

(** A response ready for {!Http.write_response}. [route] is the
    matched route template (e.g. ["/v1/networks/:id/coverage"]) —
    the label under which the request was counted, and what the
    request log prints. *)
type response = {
  status : int;
  content_type : string;
  body : string;
  route : string;
}

(** [handle t req] dispatches and runs one request. Never raises. *)
val handle : t -> Http.request -> response
