open Netcov_types
module M = Netcov_obs.Metrics

let m_networks =
  M.gauge M.default ~help:"networks currently registered with the daemon"
    ~unit_:"networks" "serve.networks"

type test_spec =
  | Dp_upper_bound
  | Rib of { host : string; prefix : Prefix.t }
  | Element of { device : string; line : int }

type suite = { su_name : string; su_tests : test_spec list }

type entry = {
  e_id : string;
  e_name : string;
  e_syntax : [ `Junos | `Ios ];
  e_lock : Mutex.t;
  e_session : Netcov_incr.Incr.session;
  mutable e_suites : suite list;
  mutable e_diags : Netcov_diag.Diag.t list;
  mutable e_updates : int;
  e_created_s : float;
}

type t = {
  mu : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable next_id : int;
  cap : int;
}

let create ~max_networks () =
  { mu = Mutex.create (); entries = Hashtbl.create 16; next_id = 1;
    cap = max 1 max_networks }

let max_networks t = t.cap

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let count t = locked t (fun () -> Hashtbl.length t.entries)

let add t ~name ~syntax ~session ~diags =
  locked t @@ fun () ->
  if Hashtbl.length t.entries >= t.cap then Error `Full
  else begin
    let id = "n" ^ string_of_int t.next_id in
    t.next_id <- t.next_id + 1;
    let e =
      {
        e_id = id;
        e_name = (if name = "" then id else name);
        e_syntax = syntax;
        e_lock = Mutex.create ();
        e_session = session;
        e_suites = [];
        e_diags = diags;
        e_updates = 0;
        e_created_s = Unix.gettimeofday ();
      }
    in
    Hashtbl.replace t.entries id e;
    M.set m_networks (float_of_int (Hashtbl.length t.entries));
    Ok e
  end

let find t id = locked t (fun () -> Hashtbl.find_opt t.entries id)

let remove t id =
  locked t @@ fun () ->
  let existed = Hashtbl.mem t.entries id in
  if existed then begin
    Hashtbl.remove t.entries id;
    M.set m_networks (float_of_int (Hashtbl.length t.entries))
  end;
  existed

(* Ids are "n<counter>", so numeric order is creation order. *)
let list t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b ->
         let num e =
           int_of_string_opt
             (String.sub e.e_id 1 (String.length e.e_id - 1))
           |> Option.value ~default:0
         in
         compare (num a) (num b))

let with_entry e f =
  Mutex.lock e.e_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.e_lock) f
