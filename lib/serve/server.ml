module Pool = Netcov_parallel.Pool
module M = Netcov_obs.Metrics
module J = Netcov_core.Json_export

let src = Logs.Src.create "netcov.serve" ~doc:"coverage-as-a-service daemon"

module Log = (val Logs.src_log src : Logs.LOG)

let m_conns =
  M.counter M.default ~help:"TCP connections accepted" ~unit_:"connections"
    "serve.connections"

let m_bytes_out =
  M.counter M.default ~help:"HTTP response bytes written" ~unit_:"bytes"
    "http.response_bytes"

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  api : Api.t;
  pool : Pool.t;
  idle_timeout_s : float;
  stop : bool Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_mu : Mutex.t;
  log_mu : Mutex.t;
}

let create ?(host = "127.0.0.1") ?(port = 8080) ?(max_networks = 64) ?handlers
    ?(idle_timeout_s = 30.) () =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found ->
        invalid_arg (Printf.sprintf "Server.create: unknown host %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let table = Session_table.create ~max_networks () in
  let t =
    {
      listen_fd = fd;
      bound_port;
      api = Api.create ~table ();
      pool = Pool.create ?domains:handlers ();
      idle_timeout_s;
      stop = Atomic.make false;
      pipe_r;
      pipe_w;
      conns = Hashtbl.create 64;
      conns_mu = Mutex.create ();
      log_mu = Mutex.create ();
    }
  in
  (* A connection task that escapes [handle_conn]'s own containment
     must surface in the daemon's log stream (and the
     pool.tasks.failed metric), not a bare stderr line. *)
  Pool.set_failure_handler t.pool (fun d ->
      Mutex.lock t.log_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.log_mu)
        (fun () ->
          Log.err (fun m -> m "%s" (Netcov_core.Diag.to_string d))));
  t

let port t = t.bound_port
let api t = t.api

(* The Logs machinery is not domain-safe; every log call from a handler
   domain funnels through one mutex so lines never interleave. *)
let log_info t f =
  Mutex.lock t.log_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.log_mu) (fun () ->
      Log.info f)

let register_conn t fd =
  Mutex.lock t.conns_mu;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.conns_mu

let unregister_conn t fd =
  Mutex.lock t.conns_mu;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.conns_mu

let peer_string = function
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX s -> s

let transport_error_body message =
  J.to_string
    (J.J_obj
       [
         ( "error",
           J.J_obj
             [
               ("code", J.J_str "bad-request");
               ("message", J.J_str message);
               ("diagnostics", J.J_raw "[]");
             ] );
       ])

(* One connection: keep-alive request loop until the peer closes, a
   parse error, the idle timeout, or shutdown. Runs on a pool domain. *)
let handle_conn t fd peer =
  let finally () =
    unregister_conn t fd;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally @@ fun () ->
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout_s
   with Unix.Unix_error _ -> ());
  let reader = Http.of_fd fd in
  let write ?content_type ~status ~keep_alive body =
    Http.write_response fd ?content_type ~status ~keep_alive body;
    M.inc m_bytes_out (String.length body)
  in
  let rec loop () =
    match Http.read_request reader with
    | Error (Http.Eof | Http.Timeout) -> ()
    | Error (Http.Too_large what) ->
        (* request line / header overflows are 431, body overflows 413 *)
        let status = if what = "body" then 413 else 431 in
        write ~status ~keep_alive:false
          (transport_error_body (Printf.sprintf "%s too large" what))
    | Error (Http.Bad_request msg) ->
        write ~status:400 ~keep_alive:false (transport_error_body msg)
    | Ok req ->
        let t0 = Unix.gettimeofday () in
        let resp = Api.handle t.api req in
        let keep_alive = Http.keep_alive req && not (Atomic.get t.stop) in
        write ~content_type:resp.Api.content_type ~status:resp.Api.status
          ~keep_alive resp.Api.body;
        log_info t (fun m ->
            m "remote=%s method=%s path=%s route=%s status=%d bytes=%d \
               dur_ms=%.2f"
              (peer_string peer) req.Http.meth req.Http.path resp.Api.route
              resp.Api.status
              (String.length resp.Api.body)
              (1000. *. (Unix.gettimeofday () -. t0)));
        if keep_alive then loop ()
  in
  try loop () with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  | e ->
      (* A handler bug must not take the worker domain down; log and
         drop the connection. Api.handle already catches its own
         exceptions, so this is transport-layer only. *)
      log_info t (fun m ->
          m "remote=%s error=%S" (peer_string peer) (Printexc.to_string e))

let shutdown t =
  if not (Atomic.exchange t.stop true) then
    try ignore (Unix.write t.pipe_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

let serve t =
  log_info t (fun m ->
      m "listening port=%d handlers=%d max_networks=%d" t.bound_port
        (Pool.domains t.pool)
        (Session_table.max_networks (Api.table t.api)));
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if List.mem t.pipe_r ready then () (* shutdown requested *)
          else begin
            (match Unix.accept t.listen_fd with
            | exception
                Unix.Unix_error
                  ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                    | Unix.EWOULDBLOCK ),
                    _,
                    _ ) ->
                ()
            | fd, peer ->
                M.inc m_conns 1;
                register_conn t fd;
                Pool.submit t.pool (fun () -> handle_conn t fd peer));
            loop ()
          end
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Wake handlers blocked in a read so the pool can drain: half-close
     every live connection's receive side; in-flight responses still
     write out. *)
  Mutex.lock t.conns_mu;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.conns_mu;
  Pool.teardown t.pool;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  log_info t (fun m -> m "shutdown complete")
