(** The long-running daemon: socket lifecycle, connection fan-out and
    graceful shutdown around {!Api.handle}.

    Architecture (one paragraph; the operator view is
    [docs/SERVE.md]): {!create} binds and listens; {!serve} runs the
    accept loop on the calling domain and {!Netcov_parallel.Pool.submit}s
    each accepted connection to a handler pool, so up to [handlers]
    connections are served concurrently — each on its own domain, with
    keep-alive, a per-read idle timeout, and parse-size limits from
    {!Http.default_limits}. All handlers share one mutex-guarded
    {!Session_table.t}; requests against different networks run in
    parallel, requests against one network serialize on its entry lock.
    {!shutdown} is signal-safe: the CLI installs it as the SIGINT/SIGTERM
    handler. It stops the accept loop via a self-pipe, half-closes every
    live connection so blocked reads wake, and {!serve} then drains the
    handler pool before returning — in-flight requests finish, new ones
    are refused.

    Observability: every request is logged on the [netcov.serve] Logs
    source ([remote= method= path= route= status= bytes= dur_ms=] pairs)
    and counted in the [http.*] / [serve.*] metrics
    ([docs/OBSERVABILITY.md]). *)

type t

(** [create ()] binds [host]:[port] (default [127.0.0.1]:8080) and
    listens. [port = 0] picks an ephemeral port — read it back with
    {!port} (how the loopback tests run). [max_networks] caps the
    session table (default 64); [handlers] sizes the connection pool
    (default {!Netcov_parallel.Pool.default_domains}); [idle_timeout_s]
    is the per-read socket timeout after which an idle keep-alive
    connection is dropped (default 30). Raises [Unix.Unix_error] when
    the address is unavailable ([EADDRINUSE], …). *)
val create :
  ?host:string ->
  ?port:int ->
  ?max_networks:int ->
  ?handlers:int ->
  ?idle_timeout_s:float ->
  unit ->
  t

(** The port actually bound (resolves [port = 0]). *)
val port : t -> int

val api : t -> Api.t

(** [serve t] runs the accept loop until {!shutdown}, then tears the
    handler pool down (draining in-flight connections) and closes the
    listening socket. Call at most once. *)
val serve : t -> unit

(** [shutdown t] requests a graceful stop; safe to call from any
    domain or from a signal handler. Idempotent. Returns immediately —
    {!serve} returning is the completion signal. *)
val shutdown : t -> unit
