open Netcov_config
open Netcov_sim
open Netcov_core
module Diag = Netcov_diag.Diag
module Incr = Netcov_incr.Incr
module Registry_diff = Netcov_incr.Registry_diff
module Dpcov = Netcov_dpcov.Dpcov
module M = Netcov_obs.Metrics
module J = Json_export

type t = { tbl : Session_table.t; started_s : float }

let create ~table () = { tbl = table; started_s = Unix.gettimeofday () }
let table t = t.tbl

type response = {
  status : int;
  content_type : string;
  body : string;
  route : string;
}

(* Handlers signal user errors by raising; [handle] turns them into the
   uniform error envelope. *)
exception Reply of int * string (* code *) * string (* message *) * Diag.t list

let fail ?(diags = []) status code message =
  raise (Reply (status, code, message, diags))

let json ?(status = 200) body =
  { status; content_type = "application/json"; body; route = "" }

let error_body ~code ~message ~diags =
  J.to_string
    (J.J_obj
       [
         ( "error",
           J.J_obj
             [
               ("code", J.J_str code);
               ("message", J.J_str message);
               ("diagnostics", J.J_raw (Diag.list_to_json diags));
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Request JSON helpers (over the stdlib-only Json_import reader).     *)

let parse_body (req : Http.request) =
  match Json_import.parse req.body with
  | Ok j -> j
  | Error msg -> fail 400 "bad-json" ("request body is not valid JSON: " ^ msg)

let member_str j name =
  Option.bind (Json_import.member name j) Json_import.to_str

let member_int j name =
  Option.bind (Json_import.member name j) Json_import.to_int

let syntax_of_json j =
  match member_str j "syntax" with
  | None | Some "junos" -> `Junos
  | Some "ios" -> `Ios
  | Some other ->
      fail 400 "bad-request"
        (Printf.sprintf "unknown syntax %S (want \"junos\" or \"ios\")" other)

let syntax_to_string = function `Junos -> "junos" | `Ios -> "ios"

(* The uploaded configuration set: [{"file": "r1.cfg", "text": "…"}]. *)
let configs_of_json j =
  let bad () =
    fail 400 "bad-request"
      "\"configs\" must be a non-empty array of {\"file\", \"text\"} objects"
  in
  match Option.bind (Json_import.member "configs" j) Json_import.to_list with
  | None | Some [] -> bad ()
  | Some items ->
      List.map
        (fun item ->
          match (member_str item "file", member_str item "text") with
          | Some file, Some text when file <> "" -> (file, text)
          | _ -> bad ())
        items

(* ------------------------------------------------------------------ *)
(* Parse + simulate one uploaded configuration set. Lenient per PR 5:
   recoverable problems become diagnostics in the response; an
   unrecoverable file fails the whole request with 422 and the
   collected diagnostics, leaving any existing session untouched. *)

let build_state ~syntax configs =
  let coll = Diag.collector () in
  let fatals = ref [] in
  let devices =
    List.filter_map
      (fun (file, text) ->
        let hostname = Filename.remove_extension file in
        let parsed =
          match syntax with
          | `Junos -> Parse_junos.parse_lenient ~file ~hostname text
          | `Ios -> Parse_ios.parse_lenient ~file ~hostname text
        in
        match parsed with
        | Ok (d, warns) ->
            List.iter (Diag.add coll) warns;
            Some d
        | Error diag ->
            Diag.add coll diag;
            fatals := diag :: !fatals;
            None)
      configs
  in
  if !fatals <> [] then
    fail 422 "parse-failed"
      (Printf.sprintf "%d configuration file(s) failed to parse"
         (List.length !fatals))
      ~diags:(Diag.items coll);
  let reg, reg_diags = Registry.build_lenient devices in
  List.iter (Diag.add coll) reg_diags;
  let state = Stable_state.compute ~diags:(Diag.add coll) reg in
  (state, List.length devices, Diag.items coll)

(* ------------------------------------------------------------------ *)
(* Test-suite specs: uploaded as JSON, compiled against a stable state
   on every update (a spec outliving the device or prefix it names
   compiles to the empty test — registered suites never make an update
   fail; see docs/SERVE.md). *)

let spec_of_json j =
  match member_str j "kind" with
  | Some "dp-upper-bound" -> Session_table.Dp_upper_bound
  | Some "rib" -> (
      match (member_str j "host", member_str j "prefix") with
      | Some host, Some prefix -> (
          match
            try Some (Netcov_types.Prefix.of_string prefix) with _ -> None
          with
          | Some p -> Session_table.Rib { host; prefix = p }
          | None ->
              fail 400 "bad-request"
                (Printf.sprintf "malformed prefix %S in rib test" prefix))
      | _ -> fail 400 "bad-request" "rib test wants \"host\" and \"prefix\"")
  | Some "element" -> (
      match (member_str j "device", member_int j "line") with
      | Some device, Some line -> Session_table.Element { device; line }
      | _ ->
          fail 400 "bad-request" "element test wants \"device\" and \"line\"")
  | Some other ->
      fail 400 "bad-request"
        (Printf.sprintf
           "unknown test kind %S (want \"dp-upper-bound\", \"rib\" or \
            \"element\")"
           other)
  | None -> fail 400 "bad-request" "test is missing \"kind\""

let suites_of_json j =
  match Option.bind (Json_import.member "suites" j) Json_import.to_list with
  | None | Some [] ->
      fail 400 "bad-request" "\"suites\" must be a non-empty array"
  | Some items ->
      List.map
        (fun item ->
          let name =
            Option.value (member_str item "name") ~default:"unnamed"
          in
          match
            Option.bind (Json_import.member "tests" item) Json_import.to_list
          with
          | None | Some [] ->
              fail 400 "bad-request"
                (Printf.sprintf "suite %S has no \"tests\" array" name)
          | Some tests ->
              {
                Session_table.su_name = name;
                su_tests = List.map spec_of_json tests;
              })
        items

let compile_spec state reg = function
  | Session_table.Dp_upper_bound -> Dpcov.all_data_plane_tested state
  | Session_table.Rib { host; prefix } ->
      let entries =
        try Stable_state.main_lookup state host prefix with _ -> []
      in
      {
        Netcov.dp_facts =
          List.map (fun entry -> Fact.F_main_rib { host; entry }) entries;
        cp_elements = [];
      }
  | Session_table.Element { device; line } ->
      let owner = try Registry.line_owner reg device line with _ -> None in
      {
        Netcov.dp_facts = [];
        cp_elements = (match owner with Some id -> [ id ] | None -> []);
      }

(* One tested per registered test, suites flattened in registration
   order — the positional contract [Incr.update] reuses across. *)
let compile_suites state reg suites =
  List.concat_map
    (fun (s : Session_table.suite) ->
      List.map (compile_spec state reg) s.su_tests)
    suites

let n_tests suites =
  List.fold_left
    (fun a (s : Session_table.suite) -> a + List.length s.su_tests)
    0 suites

(* ------------------------------------------------------------------ *)
(* Response fragments.                                                 *)

let coverage_pct session =
  Coverage.pct (Coverage.line_stats (Incr.report session).Netcov.coverage)

let stats_json (s : Incr.stats) =
  J.J_obj
    [
      ("changed", J.J_int s.Incr.s_changed);
      ("added", J.J_int s.Incr.s_added);
      ("removed", J.J_int s.Incr.s_removed);
      ("dirty_cones", J.J_int s.Incr.s_dirty_cones);
      ("reused_cones", J.J_int s.Incr.s_reused);
      ("relabeled_cones", J.J_int s.Incr.s_relabeled);
      ("full_fallbacks", J.J_int s.Incr.s_full_fallbacks);
      ("evicted_sim_entries", J.J_int s.Incr.s_evicted_sim);
      ("evicted_label_entries", J.J_int s.Incr.s_evicted_labels);
      ("sim_cache_hits", J.J_int s.Incr.s_sim_hits);
      ("sim_cache_misses", J.J_int s.Incr.s_sim_misses);
      ("reuse_ratio", J.J_float s.Incr.s_reuse_ratio);
      ("seconds", J.J_float s.Incr.s_seconds);
    ]

let entry_summary (e : Session_table.entry) =
  let reg = Incr.registry e.Session_table.e_session in
  J.J_obj
    [
      ("id", J.J_str e.Session_table.e_id);
      ("name", J.J_str e.Session_table.e_name);
      ("syntax", J.J_str (syntax_to_string e.Session_table.e_syntax));
      ("devices", J.J_int (List.length (Registry.devices reg)));
      ("elements", J.J_int (Registry.n_elements reg));
      ("suites", J.J_int (List.length e.Session_table.e_suites));
      ("tests", J.J_int (n_tests e.Session_table.e_suites));
      ("updates", J.J_int e.Session_table.e_updates);
      ("coverage_pct", J.J_float (coverage_pct e.Session_table.e_session));
    ]

(* ------------------------------------------------------------------ *)
(* Handlers.                                                           *)

let healthz t =
  json
    (J.to_string
       (J.J_obj
          [
            ("status", J.J_str "ok");
            ("networks", J.J_int (Session_table.count t.tbl));
            ("max_networks", J.J_int (Session_table.max_networks t.tbl));
            ("uptime_s", J.J_float (Unix.gettimeofday () -. t.started_s));
          ]))

let metrics () = json (M.to_json M.default)

let list_networks t =
  json
    (J.to_string
       (J.J_obj
          [
            ( "networks",
              J.J_list (List.map entry_summary (Session_table.list t.tbl)) );
          ]))

let upload t req =
  let j = parse_body req in
  let name = Option.value (member_str j "name") ~default:"" in
  let syntax = syntax_of_json j in
  let configs = configs_of_json j in
  let state, n_devices, diags = build_state ~syntax configs in
  let session, _stats = Incr.create state [] in
  match Session_table.add t.tbl ~name ~syntax ~session ~diags with
  | Error `Full ->
      fail 409 "too-many-networks"
        (Printf.sprintf
           "network table is full (%d registered, --max-networks %d); DELETE \
            one first"
           (Session_table.count t.tbl)
           (Session_table.max_networks t.tbl))
  | Ok e ->
      let reg = Stable_state.registry state in
      json ~status:201
        (J.to_string
           (J.J_obj
              [
                ("id", J.J_str e.Session_table.e_id);
                ("name", J.J_str e.Session_table.e_name);
                ("syntax", J.J_str (syntax_to_string syntax));
                ("devices", J.J_int n_devices);
                ("elements", J.J_int (Registry.n_elements reg));
                ("considered_lines", J.J_int (Registry.considered_lines reg));
                ("diagnostics", J.J_raw (Diag.list_to_json diags));
              ]))

let find_network t id =
  match Session_table.find t.tbl id with
  | Some e -> e
  | None -> fail 404 "unknown-network" (Printf.sprintf "no network %S" id)

let network_detail e =
  Session_table.with_entry e @@ fun () ->
  let suites =
    J.J_list
      (List.map
         (fun (s : Session_table.suite) ->
           J.J_obj
             [
               ("name", J.J_str s.Session_table.su_name);
               ("tests", J.J_int (List.length s.Session_table.su_tests));
             ])
         e.Session_table.e_suites)
  in
  match entry_summary e with
  | J.J_obj fields -> json (J.to_string (J.J_obj (fields @ [ ("suite_details", suites) ])))
  | _ -> assert false

let register_suites e req =
  let j = parse_body req in
  let new_suites = suites_of_json j in
  Session_table.with_entry e @@ fun () ->
  let session = e.Session_table.e_session in
  let state = Incr.state session in
  let reg = Incr.registry session in
  e.Session_table.e_suites <- e.Session_table.e_suites @ new_suites;
  let testeds = compile_suites state reg e.Session_table.e_suites in
  let stats = Incr.update session state testeds in
  json
    (J.to_string
       (J.J_obj
          [
            ("id", J.J_str e.Session_table.e_id);
            ("suites", J.J_int (List.length e.Session_table.e_suites));
            ("tests", J.J_int (n_tests e.Session_table.e_suites));
            ("incr", stats_json stats);
            ("coverage_pct", J.J_float (coverage_pct session));
          ]))

let update e req =
  let j = parse_body req in
  let configs = configs_of_json j in
  (* The upload fixed the network's syntax; a mixed-syntax update is
     almost certainly a client bug, so re-specifying a different one is
     rejected rather than silently honoured. *)
  (match member_str j "syntax" with
  | Some s when s <> syntax_to_string e.Session_table.e_syntax ->
      fail 400 "bad-request"
        (Printf.sprintf "network %s is %S; cannot update with %S configs"
           e.Session_table.e_id
           (syntax_to_string e.Session_table.e_syntax)
           s)
  | _ -> ());
  let state, n_devices, diags =
    build_state ~syntax:e.Session_table.e_syntax configs
  in
  Session_table.with_entry e @@ fun () ->
  let session = e.Session_table.e_session in
  let reg = Stable_state.registry state in
  let testeds = compile_suites state reg e.Session_table.e_suites in
  let stats = Incr.update session state testeds in
  e.Session_table.e_diags <- diags;
  e.Session_table.e_updates <- e.Session_table.e_updates + 1;
  let diff_json =
    match Incr.last_diff session with
    | None -> J.J_obj []
    | Some d ->
        J.J_obj
          [
            ("changed", J.J_int (List.length d.Registry_diff.changed));
            ("added", J.J_int (List.length d.Registry_diff.added));
            ("removed", J.J_int (List.length d.Registry_diff.removed));
            ( "devices_changed",
              J.J_list
                (List.map
                   (fun h -> J.J_str h)
                   d.Registry_diff.devices_changed) );
          ]
  in
  json
    (J.to_string
       (J.J_obj
          [
            ("id", J.J_str e.Session_table.e_id);
            ("update", J.J_int e.Session_table.e_updates);
            ("devices", J.J_int n_devices);
            ("diff", diff_json);
            ("incr", stats_json stats);
            ("coverage_pct", J.J_float (coverage_pct session));
            ("diagnostics", J.J_raw (Diag.list_to_json diags));
          ]))

let coverage e req =
  Session_table.with_entry e @@ fun () ->
  let session = e.Session_table.e_session in
  let rep = Incr.report session in
  match Option.value (Http.query_param req "format") ~default:"report" with
  | "report" ->
      json
        (J.report ~diags:e.Session_table.e_diags ~failures:[] rep)
  | "coverage" -> json (J.coverage rep.Netcov.coverage)
  | "lcov" ->
      {
        status = 200;
        content_type = "text/plain";
        body = Lcov.report rep.Netcov.coverage;
        route = "";
      }
  | other ->
      fail 400 "bad-request"
        (Printf.sprintf
           "unknown format %S (want \"report\", \"coverage\" or \"lcov\")"
           other)

let delete t id =
  if Session_table.remove t.tbl id then
    json (J.to_string (J.J_obj [ ("id", J.J_str id); ("deleted", J.J_raw "true") ]))
  else fail 404 "unknown-network" (Printf.sprintf "no network %S" id)

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* (route template, handler thunk); 405 carries the template of the
   path it hit so the metrics label stays low-cardinality. *)
let dispatch t (req : Http.request) =
  let meth = req.meth in
  let not_allowed route = (route, fun () -> fail 405 "method-not-allowed"
      (Printf.sprintf "%s is not supported on %s" meth route)) in
  match (meth, segments req.path) with
  | "GET", [ "healthz" ] -> ("/healthz", fun () -> healthz t)
  | "GET", [ "metrics" ] -> ("/metrics", fun () -> metrics ())
  | _, [ "healthz" ] -> not_allowed "/healthz"
  | _, [ "metrics" ] -> not_allowed "/metrics"
  | "POST", [ "v1"; "networks" ] -> ("/v1/networks", fun () -> upload t req)
  | "GET", [ "v1"; "networks" ] -> ("/v1/networks", fun () -> list_networks t)
  | _, [ "v1"; "networks" ] -> not_allowed "/v1/networks"
  | "GET", [ "v1"; "networks"; id ] ->
      ("/v1/networks/:id", fun () -> network_detail (find_network t id))
  | "DELETE", [ "v1"; "networks"; id ] ->
      ("/v1/networks/:id", fun () -> delete t id)
  | _, [ "v1"; "networks"; _ ] -> not_allowed "/v1/networks/:id"
  | "POST", [ "v1"; "networks"; id; "suites" ] ->
      ( "/v1/networks/:id/suites",
        fun () -> register_suites (find_network t id) req )
  | _, [ "v1"; "networks"; _; "suites" ] ->
      not_allowed "/v1/networks/:id/suites"
  | "POST", [ "v1"; "networks"; id; "update" ] ->
      ( "/v1/networks/:id/update",
        fun () -> update (find_network t id) req )
  | _, [ "v1"; "networks"; _; "update" ] ->
      not_allowed "/v1/networks/:id/update"
  | "GET", [ "v1"; "networks"; id; "coverage" ] ->
      ( "/v1/networks/:id/coverage",
        fun () -> coverage (find_network t id) req )
  | _, [ "v1"; "networks"; _; "coverage" ] ->
      not_allowed "/v1/networks/:id/coverage"
  | _ ->
      ( "(unmatched)",
        fun () ->
          fail 404 "not-found"
            (Printf.sprintf "no route for %s %s" meth req.path) )

let handle t req =
  let route, run = dispatch t req in
  let hist =
    M.histogram M.default ~help:"HTTP request latency, by route"
      ~unit_:"seconds" ~buckets:M.seconds_buckets
      ~labels:[ ("route", route) ]
      "http.request_seconds"
  in
  let resp =
    M.time hist @@ fun () ->
    match run () with
    | resp -> { resp with route }
    | exception Reply (status, code, message, diags) ->
        {
          status;
          content_type = "application/json";
          body = error_body ~code ~message ~diags;
          route;
        }
    | exception e ->
        {
          status = 500;
          content_type = "application/json";
          body =
            error_body ~code:"internal"
              ~message:(Printexc.to_string e)
              ~diags:[];
          route;
        }
  in
  M.inc
    (M.counter M.default ~help:"HTTP requests served, by route and status"
       ~unit_:"requests"
       ~labels:
         [
           ("method", req.meth);
           ("route", route);
           ("status", string_of_int resp.status);
         ]
       "http.requests")
    1;
  resp
