type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type limits = {
  max_request_line : int;
  max_header_bytes : int;
  max_headers : int;
  max_body : int;
}

let default_limits =
  {
    max_request_line = 8192;
    max_header_bytes = 8192;
    max_headers = 128;
    max_body = 64 * 1024 * 1024;
  }

type error =
  | Eof
  | Timeout
  | Too_large of string
  | Bad_request of string

exception Fail of error

(* ------------------------------------------------------------------ *)
(* Buffered reader. [fill buf pos len] returns 0 at EOF and raises
   [Fail Timeout] when the fd's receive timeout expires. Unconsumed
   bytes stay in [data] across requests (keep-alive pipelining). *)

type reader = {
  fill : bytes -> int -> int -> int;
  mutable data : bytes;
  mutable pos : int;  (* next unread byte *)
  mutable len : int;  (* bytes valid in [data] *)
}

let of_fd fd =
  let fill buf pos len =
    try Unix.read fd buf pos len with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Fail Timeout)
    | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  { fill; data = Bytes.create 8192; pos = 0; len = 0 }

let of_string s =
  let consumed = ref false in
  let fill buf pos len =
    if !consumed then 0
    else begin
      consumed := true;
      let n = min len (String.length s) in
      Bytes.blit_string s 0 buf pos n;
      (* a string longer than [len] would be silently truncated; the
         initial buffer below is sized to the string to prevent that *)
      n
    end
  in
  {
    fill;
    data = Bytes.create (max 1 (String.length s));
    pos = 0;
    len = 0;
  }

let refill r =
  if r.pos > 0 then begin
    (* compact before growing: long-lived connections reuse the buffer *)
    Bytes.blit r.data r.pos r.data 0 (r.len - r.pos);
    r.len <- r.len - r.pos;
    r.pos <- 0
  end;
  if r.len = Bytes.length r.data then begin
    let bigger = Bytes.create (2 * Bytes.length r.data) in
    Bytes.blit r.data 0 bigger 0 r.len;
    r.data <- bigger
  end;
  let n = r.fill r.data r.len (Bytes.length r.data - r.len) in
  r.len <- r.len + n;
  n > 0

(* One CRLF-terminated line, without the CRLF. [limit] bounds the line
   length including its terminator. [what] names the limit in errors. *)
let read_line r ~limit ~what =
  (* Rescans from [r.pos] after every refill: [refill] compacts the
     buffer, so absolute indices do not survive it. Lines are bounded
     by [limit], so the rescan cost is bounded too. *)
  let rec find_nl () =
    let i = ref r.pos in
    while !i < r.len && Bytes.get r.data !i <> '\n' do incr i done;
    if !i < r.len then Some !i
    else if r.len - r.pos >= limit then raise (Fail (Too_large what))
    else if refill r then find_nl ()
    else None
  in
  match find_nl () with
  | None -> if r.pos = r.len then None else raise (Fail (Bad_request "truncated line"))
  | Some nl ->
      if nl + 1 - r.pos > limit then raise (Fail (Too_large what));
      if nl = r.pos || Bytes.get r.data (nl - 1) <> '\r' then
        raise (Fail (Bad_request "bare LF in request (CRLF required)"));
      let line = Bytes.sub_string r.data r.pos (nl - 1 - r.pos) in
      r.pos <- nl + 1;
      Some line

let read_exact r n =
  let out = Buffer.create n in
  let rec go () =
    let avail = r.len - r.pos in
    let take = min avail (n - Buffer.length out) in
    Buffer.add_subbytes out r.data r.pos take;
    r.pos <- r.pos + take;
    if Buffer.length out < n then
      if refill r then go ()
      else raise (Fail (Bad_request "truncated body (peer closed early)"))
  in
  go ();
  Buffer.contents out

(* ------------------------------------------------------------------ *)

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Fail (Bad_request "malformed percent-encoding"))
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= n then raise (Fail (Bad_request "malformed percent-encoding"));
        Buffer.add_char buf (Char.chr ((16 * hex s.[!i + 1]) + hex s.[!i + 2]));
        i := !i + 2
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let split_target target =
  let path, qs =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
  in
  let query =
    if qs = "" then []
    else
      String.split_on_char '&' qs
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | None -> (percent_decode kv, "")
             | Some i ->
                 ( percent_decode (String.sub kv 0 i),
                   percent_decode
                     (String.sub kv (i + 1) (String.length kv - i - 1)) ))
  in
  (percent_decode path, query)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if meth = "" || String.exists (fun c -> c < '!' || c > '~') meth then
        raise (Fail (Bad_request "malformed method"));
      if not (String.length version = 8 && String.sub version 0 7 = "HTTP/1.")
      then raise (Fail (Bad_request "unsupported HTTP version"));
      if target = "" || target.[0] <> '/' then
        raise (Fail (Bad_request "target must be an absolute path"));
      let path, query = split_target target in
      (String.uppercase_ascii meth, path, query, version)
  | _ -> raise (Fail (Bad_request "malformed request line"))

let parse_header line =
  match String.index_opt line ':' with
  | None | Some 0 -> raise (Fail (Bad_request "malformed header (missing colon)"))
  | Some i ->
      let name = String.sub line 0 i in
      if String.exists (fun c -> c <= ' ' || c > '~') name then
        raise (Fail (Bad_request "malformed header name"));
      ( String.lowercase_ascii name,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let find_header headers name =
  List.assoc_opt (String.lowercase_ascii name) headers

let read_request ?(limits = default_limits) r =
  try
    match
      read_line r ~limit:limits.max_request_line ~what:"request line"
    with
    | None -> Error Eof
    | Some line ->
        let meth, path, query, version = parse_request_line line in
        let headers = ref [] in
        let n = ref 0 in
        let rec loop () =
          match
            read_line r ~limit:limits.max_header_bytes ~what:"header line"
          with
          | None -> raise (Fail (Bad_request "truncated headers"))
          | Some "" -> ()
          | Some line ->
              incr n;
              if !n > limits.max_headers then
                raise (Fail (Too_large "header count"));
              headers := parse_header line :: !headers;
              loop ()
        in
        loop ();
        let headers = List.rev !headers in
        if find_header headers "transfer-encoding" <> None then
          raise (Fail (Bad_request "chunked transfer encoding not supported"));
        let body =
          match find_header headers "content-length" with
          | None -> ""
          | Some v -> (
              match int_of_string_opt (String.trim v) with
              | None -> raise (Fail (Bad_request "malformed content-length"))
              | Some n when n < 0 ->
                  raise (Fail (Bad_request "malformed content-length"))
              | Some n when n > limits.max_body ->
                  raise (Fail (Too_large "body"))
              | Some n -> read_exact r n)
        in
        Ok { meth; path; query; version; headers; body }
  with Fail e -> Error e

let header req name = find_header req.headers name
let query_param req name = List.assoc_opt name req.query

let keep_alive req =
  let conn =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match (req.version, conn) with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let response ?(content_type = "application/json") ?(extra = []) ~status
    ~keep_alive body =
  let buf = Buffer.create (256 + String.length body) in
  Printf.bprintf buf "HTTP/1.1 %d %s\r\n" status (status_text status);
  Printf.bprintf buf "content-type: %s\r\n" content_type;
  Printf.bprintf buf "content-length: %d\r\n" (String.length body);
  Printf.bprintf buf "connection: %s\r\n"
    (if keep_alive then "keep-alive" else "close");
  List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) extra;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let write_response fd ?content_type ?extra ~status ~keep_alive body =
  let s = response ?content_type ?extra ~status ~keep_alive body in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done
