(** A small fixed-size domain work pool (OCaml 5 [Domain]s), dependency
    free. Built for coarse-grained fan-out: per-test coverage analyses
    and per-cone labeling passes, which are independent of each other.

    Properties:

    - {b Ordered results}: [map] returns results positionally, in input
      order, regardless of execution interleaving.
    - {b Exception propagation}: the first exception raised by a worker
      is re-raised (with its backtrace) in the calling domain once the
      map has drained. Later failures never mask the first, and once a
      failure is recorded the map's remaining queued items are cancelled
      — drained without running the task function.
    - {b Help-first scheduling}: the caller of [map] executes queued
      tasks itself while waiting, so a task may itself call [map] on the
      same pool (nested fan-out) without deadlock or extra domains.
    - {b Sequential fallback}: a pool with [domains <= 1] spawns no
      domains and [map] degenerates to [List.map]. Setting the
      [NETCOV_DOMAINS] environment variable overrides the default
      domain count ([NETCOV_DOMAINS=1] forces sequential execution
      everywhere a default-sized pool is used).

    Parallel [map] calls are wrapped in a [pool.map] trace span and
    counted in the [pool.*] metrics, with per-executor task counts
    under [pool.tasks.executed{executor=...}] — the data behind the
    scheduling-overhead analysis in [docs/OBSERVABILITY.md]. A
    sequential pool records nothing. *)

type t

(** Domain count used by [create] when [?domains] is omitted: the
    [NETCOV_DOMAINS] environment variable when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()] capped at
    8. A set-but-invalid [NETCOV_DOMAINS] falls back to the default
    and warns once on stderr, naming the rejected value. *)
val default_domains : unit -> int

(** [create ~domains ()] spawns [domains - 1] worker domains (the
    caller participates as the last worker during [map]). [domains] is
    clamped to at least 1; when omitted it is [default_domains ()]. *)
val create : ?domains:int -> unit -> t

(** Number of domains participating in [map] (workers + caller). *)
val domains : t -> int

(** The shared sequential pool: no domains, [map] is [List.map]. *)
val sequential : t

(** [map pool f xs] applies [f] to every element of [xs], distributing
    the applications over the pool's domains, and returns the results
    in input order. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit pool task] enqueues a fire-and-forget task on the pool's
    shared queue: some worker domain (or a concurrent [map] caller in
    its help-first drain) eventually runs it. Unlike [map] there is no
    result and no completion signal; an exception escaping [task] is
    printed to stderr and swallowed — it must not kill the worker.
    On a sequential pool the task runs synchronously in the caller.

    This is what [netcov serve] uses to fan connection handling out
    over the pool: each accepted connection becomes one long-lived
    task, so at most [domains t] connections are served concurrently
    and the rest queue. Do not call [map] on a pool that also serves
    long-blocking submitted tasks — the help-first drain could pick
    one up and block the mapping caller behind it. [teardown] drains
    already-queued submitted tasks before returning. *)
val submit : t -> (unit -> unit) -> unit

(** Signals workers to exit after the queue drains and joins them.
    Idempotent; [map] must not be called afterwards. *)
val teardown : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and guarantees
    teardown. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a
