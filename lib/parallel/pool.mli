(** A fixed-size domain work pool (OCaml 5 [Domain]s) scheduling at
    task granularity: each participating domain owns a deque, owners
    push and pop LIFO, and idle domains steal FIFO from the others
    (help-first work stealing). Built for the coverage pipeline's
    nested fan-out — per-test analyses that each fan out per-cone
    labeling — where a long cone must not serialize a domain and
    concurrent producers must not contend on one shared queue.

    Properties:

    - {b Ordered results}: [map] returns results positionally, in input
      order, regardless of execution interleaving.
    - {b Exception propagation}: the first exception raised by a worker
      is re-raised (with its backtrace) in the calling domain once the
      map has drained. Later failures never mask the first, and once a
      failure is recorded the map's remaining queued items are cancelled
      — drained without running the task function.
    - {b Help-first scheduling}: the caller of [map] executes queued
      tasks itself while waiting, so a task may itself call [map] on the
      same pool (nested fan-out) without deadlock or extra domains. A
      nested map pushes to the executing domain's own deque and drains
      it LIFO, so the deepest fan-out stays local and cache-warm.
    - {b Sequential fallback}: a pool with [domains <= 1] spawns no
      domains and [map] degenerates to [List.map]. Setting the
      [NETCOV_DOMAINS] environment variable overrides the default
      domain count ([NETCOV_DOMAINS=1] forces sequential execution
      everywhere a default-sized pool is used).

    Parallel [map] calls are wrapped in a [pool.map] trace span and
    counted in the [pool.*] metrics: per-executor task counts under
    [pool.tasks.executed{executor=...}], cross-deque steals under
    [pool.tasks.stolen], blocking under [pool.sleeps], and submit
    failures under [pool.tasks.failed] — the data behind the
    scheduling analysis in [docs/OBSERVABILITY.md]. A sequential pool
    records only submit failures. *)

type t

(** Domain count used by [create] when [?domains] is omitted: the
    [NETCOV_DOMAINS] environment variable when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()] — the full
    hardware parallelism, uncapped. The chosen count and its source
    are logged at debug level on the [netcov.pool] source. A
    set-but-invalid [NETCOV_DOMAINS] falls back to the default and
    warns once on stderr, naming the rejected value. *)
val default_domains : unit -> int

(** [create ~domains ()] spawns [domains - 1] worker domains (the
    caller participates as the last deque owner during [map]).
    [domains] is clamped to at least 1; when omitted it is
    [default_domains ()]. *)
val create : ?domains:int -> unit -> t

(** Number of domains participating in [map] (workers + caller). *)
val domains : t -> int

(** The shared sequential pool: no domains, [map] is [List.map]. *)
val sequential : t

(** [map pool f xs] applies [f] to every element of [xs], distributing
    the applications over the pool's domains, and returns the results
    in input order. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit pool task] enqueues a fire-and-forget task on the pool's
    shared submit queue: some worker domain eventually runs it. Unlike
    [map] there is no result and no completion signal. An exception
    escaping [task] must not kill the worker: it is counted in
    [pool.tasks.failed] and routed to the handler installed with
    {!set_failure_handler} as a [Diag.Internal] error diagnostic (or
    printed to stderr when no handler is installed). On a sequential
    pool the task runs synchronously in the caller, with the same
    failure containment.

    This is what [netcov serve] uses to fan connection handling out
    over the pool: each accepted connection becomes one long-lived
    task, so at most [domains t - 1] connections are served
    concurrently and the rest queue. Submitted tasks live on a
    separate queue from [map] items: a concurrent [map]'s help-first
    drain never picks one up (so a mapping caller cannot block behind
    a long-lived connection), and workers prefer deque work, so map
    items jump ahead of queued submits. [teardown] drains
    already-queued submitted tasks before returning. *)
val submit : t -> (unit -> unit) -> unit

(** [set_failure_handler pool h] routes subsequent {!submit} task
    failures to [h] instead of stderr. [h] runs on the domain where
    the task failed and must be domain-safe; an exception escaping [h]
    is swallowed (with a stderr note). Intended for hosts like
    [netcov serve] that surface pool failures through their own
    diagnostics channel. *)
val set_failure_handler : t -> (Netcov_diag.Diag.t -> unit) -> unit

(** Signals workers to exit after all deques and the submit queue
    drain, then joins them. Idempotent; [map] must not be called
    afterwards. *)
val teardown : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and guarantees
    teardown. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a
