module M = Netcov_obs.Metrics
module T = Netcov_obs.Trace
module Diag = Netcov_diag.Diag

let src = Logs.Src.create "netcov.pool" ~doc:"domain work pool"

module Log = (val Logs.src_log src : Logs.LOG)

(* Pool scheduling metrics (docs/OBSERVABILITY.md). Sequential pools
   bypass the scheduler entirely and record only submit failures. *)
let m_maps =
  M.counter M.default ~help:"parallel Pool.map calls" ~unit_:"calls" "pool.maps"

let m_queued =
  M.counter M.default ~help:"tasks pushed to the pool (map items + submits)"
    ~unit_:"tasks" "pool.tasks.queued"

let m_stolen =
  M.counter M.default
    ~help:"tasks taken from another domain's deque (work stealing)"
    ~unit_:"tasks" "pool.tasks.stolen"

let m_sleeps =
  M.counter M.default
    ~help:"times a domain found no runnable task and blocked"
    ~unit_:"sleeps" "pool.sleeps"

let m_failed =
  M.counter M.default ~help:"Pool.submit tasks that raised" ~unit_:"tasks"
    "pool.tasks.failed"

(* The caller of [map] draining tasks itself is the help-first path;
   worker counters are registered per worker index at spawn. *)
let m_exec_caller =
  M.counter M.default ~help:"tasks executed by the calling domain (help-first)"
    ~unit_:"tasks"
    ~labels:[ ("executor", "caller") ]
    "pool.tasks.executed"

let exec_worker_counter i =
  M.counter M.default ~help:"tasks executed by a spawned worker domain"
    ~unit_:"tasks"
    ~labels:[ ("executor", "worker-" ^ string_of_int i) ]
    "pool.tasks.executed"

type task = unit -> unit

let no_task : task = fun () -> ()

(* ------------------------------------------------------------------ *)
(* Per-domain deques.

   Each participating domain owns one deque slot: workers get slots
   [0 .. n-2] and every non-worker caller shares the last slot. The
   owner pushes and pops at the tail (LIFO: the freshest task is the
   one whose data is hottest, and nested [map]s drain their own items
   first); thieves steal from the head (FIFO: the oldest task is the
   best candidate to be a large unstarted subtree). A plain mutex per
   deque keeps the memory-model reasoning trivial; the point of the
   design is not lock-freedom but that [n] pushers contend on [n]
   deques instead of one shared queue. *)
type deque = {
  dq_mutex : Mutex.t;
  mutable buf : task array;  (* power-of-two capacity ring *)
  mutable head : int;  (* next steal index (free-running) *)
  mutable tail : int;  (* next push index (free-running) *)
}

let deque_create () =
  { dq_mutex = Mutex.create (); buf = Array.make 64 no_task; head = 0; tail = 0 }

let dq_grow d =
  let cap = Array.length d.buf in
  if d.tail - d.head >= cap then begin
    let bigger = Array.make (cap * 2) no_task in
    for i = d.head to d.tail - 1 do
      bigger.(i land ((cap * 2) - 1)) <- d.buf.(i land (cap - 1))
    done;
    d.buf <- bigger
  end

let dq_push d task =
  Mutex.lock d.dq_mutex;
  dq_grow d;
  d.buf.(d.tail land (Array.length d.buf - 1)) <- task;
  d.tail <- d.tail + 1;
  Mutex.unlock d.dq_mutex

let dq_pop_back d =
  Mutex.lock d.dq_mutex;
  let r =
    if d.tail = d.head then None
    else begin
      d.tail <- d.tail - 1;
      let i = d.tail land (Array.length d.buf - 1) in
      let t = d.buf.(i) in
      d.buf.(i) <- no_task;
      Some t
    end
  in
  Mutex.unlock d.dq_mutex;
  r

let dq_steal_front d =
  Mutex.lock d.dq_mutex;
  let r =
    if d.tail = d.head then None
    else begin
      let i = d.head land (Array.length d.buf - 1) in
      let t = d.buf.(i) in
      d.buf.(i) <- no_task;
      d.head <- d.head + 1;
      Some t
    end
  in
  Mutex.unlock d.dq_mutex;
  r

(* ------------------------------------------------------------------ *)
(* Shared pool state.

   [dq_work] counts tasks resident in deques (not submits, which live
   on [submit_q] under [mutex]); [waiters] counts domains blocked (or
   about to block) on [activity]. Together they implement the classic
   Dekker-style sleep protocol over OCaml's SC atomics: a producer
   increments [dq_work] {e then} reads [waiters]; a sleeper increments
   [waiters] {e then} re-reads [dq_work] before waiting. Whichever
   order the two interleave in, either the producer sees the waiter
   (and broadcasts under the mutex) or the sleeper sees the work (and
   skips the wait) — no lost wakeups, and the uncontended fast path
   touches no mutex at all. *)
type shared = {
  id : int;  (* distinguishes pools in domain-local slot lookup *)
  deques : deque array;  (* length n_domains; last slot = callers *)
  submit_q : task Queue.t;  (* fire-and-forget tasks, serve's path *)
  mutex : Mutex.t;  (* guards submit_q, closing, and [activity] *)
  activity : Condition.t;
  mutable closing : bool;
  dq_work : int Atomic.t;
  waiters : int Atomic.t;
}

type t = {
  n_domains : int;
  shared : shared option;  (* [None]: sequential pool *)
  mutable workers : unit Domain.t list;
  mutable torn_down : bool;
  on_failure : (Diag.t -> unit) option Atomic.t;
}

let pool_ids = Atomic.make 0

(* Which deque slot the current domain owns, per pool. Workers record
   their slot at spawn; any other domain (the pool's creator, a test
   runner thread) maps and steals through the shared caller slot. *)
let slot_key : (int * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let caller_slot shared = Array.length shared.deques - 1

let slot_of shared =
  match Domain.DLS.get slot_key with
  | Some (id, s) when id = shared.id -> s
  | _ -> caller_slot shared

(* Producer side of the sleep protocol: account for [n] new deque
   tasks, then wake sleepers iff there are any. *)
let announce_work shared n =
  ignore (Atomic.fetch_and_add shared.dq_work n);
  if Atomic.get shared.waiters > 0 then begin
    Mutex.lock shared.mutex;
    Condition.broadcast shared.activity;
    Mutex.unlock shared.mutex
  end

(* Take one deque task: own slot LIFO first, then round-robin steals.
   Decrements [dq_work] exactly when a task is taken, so [dq_work] > 0
   always means some deque holds a runnable task. *)
let find_task shared slot =
  let n = Array.length shared.deques in
  let found = ref (dq_pop_back shared.deques.(slot)) in
  let i = ref 1 in
  while !found = None && !i < n do
    (match dq_steal_front shared.deques.((slot + !i) mod n) with
    | Some _ as r ->
        M.inc m_stolen 1;
        found := r
    | None -> ());
    incr i
  done;
  (match !found with Some _ -> Atomic.decr shared.dq_work | None -> ());
  !found

(* An invalid NETCOV_DOMAINS would otherwise be indistinguishable from
   an unset one — the user asked for a domain count and silently got
   the default. Warn once per process, not per pool. *)
let warned_bad_env = Atomic.make false

let env_domains () =
  match Sys.getenv_opt "NETCOV_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          if not (Atomic.exchange warned_bad_env true) then
            Printf.eprintf
              "netcov: ignoring invalid NETCOV_DOMAINS=%S (want a positive \
               integer); using the default domain count\n%!"
              s;
          None)

let default_domains () =
  match env_domains () with
  | Some n ->
      Log.debug (fun m -> m "domain count %d (NETCOV_DOMAINS)" n);
      n
  | None ->
      let n = max 1 (Domain.recommended_domain_count ()) in
      Log.debug (fun m ->
          m "domain count %d (Domain.recommended_domain_count)" n);
      n

let domains t = t.n_domains

let sequential =
  {
    n_domains = 1;
    shared = None;
    workers = [];
    torn_down = false;
    on_failure = Atomic.make None;
  }

let set_failure_handler t handler =
  Atomic.set t.on_failure (Some handler)

let report_submit_failure t exn bt =
  M.inc m_failed 1;
  let message =
    Printf.sprintf "Pool.submit task raised %s" (Printexc.to_string exn)
  in
  match Atomic.get t.on_failure with
  | Some handler -> (
      let diag = Diag.error Diag.Internal message in
      try handler diag
      with _ ->
        (* a crashing handler must not take the worker down either *)
        Printf.eprintf "netcov: %s (and the failure handler raised)\n%!"
          message)
  | None ->
      Printf.eprintf "netcov: %s\n%s%!" message
        (Printexc.raw_backtrace_to_string bt)

let worker_loop ~index shared =
  Domain.DLS.set slot_key (Some (shared.id, index));
  let executed = exec_worker_counter index in
  let rec loop () =
    match find_task shared index with
    | Some task ->
        task ();
        M.inc executed 1;
        loop ()
    | None ->
        Mutex.lock shared.mutex;
        if not (Queue.is_empty shared.submit_q) then begin
          let task = Queue.pop shared.submit_q in
          Mutex.unlock shared.mutex;
          task ();
          M.inc executed 1;
          loop ()
        end
        else if shared.closing && Atomic.get shared.dq_work = 0 then
          (* nothing left to drain anywhere: exit *)
          Mutex.unlock shared.mutex
        else begin
          Atomic.incr shared.waiters;
          (* Re-check after registering as a waiter (Dekker, see
             [shared]); spurious wakeups are fine — the outer loop
             re-examines everything. *)
          if
            Atomic.get shared.dq_work = 0
            && Queue.is_empty shared.submit_q
            && not shared.closing
          then begin
            M.inc m_sleeps 1;
            Condition.wait shared.activity shared.mutex
          end;
          Atomic.decr shared.waiters;
          Mutex.unlock shared.mutex;
          loop ()
        end
  in
  loop ()

let create ?domains () =
  let n =
    max 1 (match domains with Some n -> n | None -> default_domains ())
  in
  if n <= 1 then
    {
      n_domains = 1;
      shared = None;
      workers = [];
      torn_down = false;
      on_failure = Atomic.make None;
    }
  else begin
    let shared =
      {
        id = Atomic.fetch_and_add pool_ids 1;
        deques = Array.init n (fun _ -> deque_create ());
        submit_q = Queue.create ();
        mutex = Mutex.create ();
        activity = Condition.create ();
        closing = false;
        dq_work = Atomic.make 0;
        waiters = Atomic.make 0;
      }
    in
    let workers =
      List.init (n - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop ~index:i shared))
    in
    {
      n_domains = n;
      shared = Some shared;
      workers;
      torn_down = false;
      on_failure = Atomic.make None;
    }
  end

let map t f xs =
  match t.shared with
  | None -> List.map f xs
  | Some shared ->
      let items = Array.of_list xs in
      let n = Array.length items in
      if n = 0 then []
      else if n = 1 then [ f items.(0) ]
      else
        T.with_span "pool.map" ~args:[ ("items", T.I n) ]
        @@ fun () ->
        begin
        M.inc m_maps 1;
        M.inc m_queued n;
        let results = Array.make n None in
        let remaining = Atomic.make n in
        let failure = Atomic.make None in
        let run_item i =
          (* Cancel cleanly: once a task has failed this map's result
             can only be the re-raised exception, so queued items are
             drained without running [f] — the first failure wins and
             is never masked by later ones. *)
          (if Atomic.get failure = None then
             match f items.(i) with
             | r -> results.(i) <- Some r
             | exception e ->
                 let bt = Printexc.get_raw_backtrace () in
                 ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          (* the release fence publishing results.(i) to the caller;
             also the producer side of the caller's sleep predicate
             ([remaining = 0] ends the drain), hence the waiter check *)
          Atomic.decr remaining;
          if Atomic.get shared.waiters > 0 then begin
            Mutex.lock shared.mutex;
            Condition.broadcast shared.activity;
            Mutex.unlock shared.mutex
          end
        in
        (* Every item goes to the calling domain's own deque: nested
           maps running on different workers push to different deques,
           which is exactly the contention the per-domain design
           removes. Thieves pull from the head, so under stealing the
           oldest items fan out first while the owner works LIFO. *)
        let slot = slot_of shared in
        let dq = shared.deques.(slot) in
        for i = 0 to n - 1 do
          dq_push dq (fun () -> run_item i)
        done;
        announce_work shared n;
        (* Help until every item of THIS map has finished. Tasks from
           other (nested) maps may be executed along the way — that is
           what makes nested [map] deadlock-free. Submitted tasks are
           never picked up here: they may block indefinitely (serve's
           connection handlers) and belong to the workers. *)
        let rec drain () =
          if Atomic.get remaining > 0 then begin
            (match find_task shared slot with
            | Some task ->
                task ();
                M.inc m_exec_caller 1
            | None ->
                Mutex.lock shared.mutex;
                Atomic.incr shared.waiters;
                if Atomic.get shared.dq_work = 0 && Atomic.get remaining > 0
                then begin
                  M.inc m_sleeps 1;
                  Condition.wait shared.activity shared.mutex
                end;
                Atomic.decr shared.waiters;
                Mutex.unlock shared.mutex);
            drain ()
          end
        in
        drain ();
        (match Atomic.get failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        Array.to_list
          (Array.map
             (function
               | Some r -> r
               | None ->
                   (* Unreachable: [remaining] hit zero with no recorded
                      failure, so every slot was filled. *)
                   failwith
                     "Pool.map: result slot empty after all tasks \
                      completed without failure (pool invariant broken)")
             results)
      end

let submit t task =
  let guarded () =
    try task ()
    with e ->
      (* Fire-and-forget tasks have no caller to re-raise into; a
         crash must not take the worker domain (or, on a sequential
         pool, the submitting caller) down with it. *)
      let bt = Printexc.get_raw_backtrace () in
      report_submit_failure t e bt
  in
  match t.shared with
  | None -> guarded ()
  | Some shared ->
      M.inc m_queued 1;
      Mutex.lock shared.mutex;
      Queue.add guarded shared.submit_q;
      Condition.broadcast shared.activity;
      Mutex.unlock shared.mutex

let teardown t =
  match t.shared with
  | None -> ()
  | Some shared ->
      if not t.torn_down then begin
        t.torn_down <- true;
        Mutex.lock shared.mutex;
        shared.closing <- true;
        Condition.broadcast shared.activity;
        Mutex.unlock shared.mutex;
        List.iter Domain.join t.workers;
        t.workers <- []
      end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> teardown pool) (fun () -> f pool)
