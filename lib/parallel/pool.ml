module M = Netcov_obs.Metrics
module T = Netcov_obs.Trace

(* Pool scheduling metrics (docs/OBSERVABILITY.md). Sequential pools
   bypass the queue entirely and record nothing. *)
let m_maps =
  M.counter M.default ~help:"parallel Pool.map calls" ~unit_:"calls" "pool.maps"

let m_queued =
  M.counter M.default ~help:"tasks pushed to the shared pool queue"
    ~unit_:"tasks" "pool.tasks.queued"

(* The caller of [map] draining tasks itself is the help-first "steal"
   path; worker counters are registered per worker index at spawn. *)
let m_exec_caller =
  M.counter M.default ~help:"tasks executed by the calling domain (help-first)"
    ~unit_:"tasks"
    ~labels:[ ("executor", "caller") ]
    "pool.tasks.executed"

let exec_worker_counter i =
  M.counter M.default ~help:"tasks executed by a spawned worker domain"
    ~unit_:"tasks"
    ~labels:[ ("executor", "worker-" ^ string_of_int i) ]
    "pool.tasks.executed"

type task = unit -> unit

(* Worker domains block on [activity]; [map] pushes one task per item
   and then helps drain the queue itself. [activity] signals both "a
   task was queued" and "a task completed", so idle helpers block on it
   instead of spinning (spinning starves the workers when domains
   outnumber hardware cores). Tasks never raise: exceptions are
   captured per-map and re-raised by the caller. *)
type shared = {
  queue : task Queue.t;
  mutex : Mutex.t;
  activity : Condition.t;
  mutable closing : bool;
}

type t = {
  n_domains : int;
  shared : shared option;  (* [None]: sequential pool *)
  mutable workers : unit Domain.t list;
  mutable torn_down : bool;
}

(* An invalid NETCOV_DOMAINS would otherwise be indistinguishable from
   an unset one — the user asked for a domain count and silently got
   the default. Warn once per process, not per pool. *)
let warned_bad_env = Atomic.make false

let env_domains () =
  match Sys.getenv_opt "NETCOV_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          if not (Atomic.exchange warned_bad_env true) then
            Printf.eprintf
              "netcov: ignoring invalid NETCOV_DOMAINS=%S (want a positive \
               integer); using the default domain count\n%!"
              s;
          None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let domains t = t.n_domains

let sequential =
  { n_domains = 1; shared = None; workers = []; torn_down = false }

let worker_loop ~index shared =
  let executed = exec_worker_counter index in
  let rec loop () =
    Mutex.lock shared.mutex;
    while Queue.is_empty shared.queue && not shared.closing do
      Condition.wait shared.activity shared.mutex
    done;
    if Queue.is_empty shared.queue then Mutex.unlock shared.mutex
      (* closing, and nothing left to drain *)
    else begin
      let task = Queue.pop shared.queue in
      Mutex.unlock shared.mutex;
      task ();
      M.inc executed 1;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let n =
    max 1 (match domains with Some n -> n | None -> default_domains ())
  in
  if n <= 1 then { n_domains = 1; shared = None; workers = []; torn_down = false }
  else begin
    let shared =
      {
        queue = Queue.create ();
        mutex = Mutex.create ();
        activity = Condition.create ();
        closing = false;
      }
    in
    let workers =
      List.init (n - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop ~index:i shared))
    in
    { n_domains = n; shared = Some shared; workers; torn_down = false }
  end

let try_pop shared =
  Mutex.lock shared.mutex;
  let t =
    if Queue.is_empty shared.queue then None else Some (Queue.pop shared.queue)
  in
  Mutex.unlock shared.mutex;
  t

let map t f xs =
  match t.shared with
  | None -> List.map f xs
  | Some shared ->
      let items = Array.of_list xs in
      let n = Array.length items in
      if n = 0 then []
      else if n = 1 then [ f items.(0) ]
      else
        T.with_span "pool.map" ~args:[ ("items", T.I n) ]
        @@ fun () ->
        begin
        M.inc m_maps 1;
        M.inc m_queued n;
        let results = Array.make n None in
        let remaining = Atomic.make n in
        let failure = Atomic.make None in
        let run_item i =
          (* Cancel cleanly: once a task has failed this map's result
             can only be the re-raised exception, so queued items are
             drained without running [f] — the first failure wins and
             is never masked by later ones. *)
          (if Atomic.get failure = None then
             match f items.(i) with
             | r -> results.(i) <- Some r
             | exception e ->
                 let bt = Printexc.get_raw_backtrace () in
                 ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          (* the release fence publishing results.(i) to the caller *)
          Atomic.decr remaining;
          (* wake helpers blocked waiting for this map to finish *)
          Mutex.lock shared.mutex;
          Condition.broadcast shared.activity;
          Mutex.unlock shared.mutex
        in
        Mutex.lock shared.mutex;
        for i = 0 to n - 1 do
          Queue.add (fun () -> run_item i) shared.queue
        done;
        Condition.broadcast shared.activity;
        Mutex.unlock shared.mutex;
        (* Help until every item of THIS map has finished. Tasks from
           other (nested) maps may be executed along the way — that is
           what makes nested [map] deadlock-free. With the queue empty
           but items still in flight, block on [activity] rather than
           spin: completions and nested pushes both broadcast it under
           the mutex, so no wakeup can be missed. *)
        while Atomic.get remaining > 0 do
          match try_pop shared with
          | Some task ->
              task ();
              M.inc m_exec_caller 1
          | None ->
              Mutex.lock shared.mutex;
              while Queue.is_empty shared.queue && Atomic.get remaining > 0 do
                Condition.wait shared.activity shared.mutex
              done;
              Mutex.unlock shared.mutex
        done;
        (match Atomic.get failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        Array.to_list
          (Array.map
             (function
               | Some r -> r
               | None ->
                   (* Unreachable: [remaining] hit zero with no recorded
                      failure, so every slot was filled. *)
                   failwith
                     "Pool.map: result slot empty after all tasks \
                      completed without failure (pool invariant broken)")
             results)
      end

let submit t task =
  match t.shared with
  | None -> task ()
  | Some shared ->
      let guarded () =
        try task ()
        with e ->
          (* Fire-and-forget tasks have no caller to re-raise into; a
             crash must not take the worker domain down with it. *)
          Printf.eprintf "netcov: Pool.submit task raised %s\n%!"
            (Printexc.to_string e)
      in
      M.inc m_queued 1;
      Mutex.lock shared.mutex;
      Queue.add guarded shared.queue;
      Condition.signal shared.activity;
      Mutex.unlock shared.mutex

let teardown t =
  match t.shared with
  | None -> ()
  | Some shared ->
      if not t.torn_down then begin
        t.torn_down <- true;
        Mutex.lock shared.mutex;
        shared.closing <- true;
        Condition.broadcast shared.activity;
        Mutex.unlock shared.mutex;
        List.iter Domain.join t.workers;
        t.workers <- []
      end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> teardown pool) (fun () -> f pool)
