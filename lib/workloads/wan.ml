open Netcov_types
open Netcov_config

(* Multi-AS wide-area network: [n_ases] autonomous systems, each a
   ring-plus-chords IGP backbone of [routers_per_as] routers whose iBGP
   runs over [n_rr] route reflectors (never a full mesh — this is the
   workload that exercises the reflector code paths at scale), joined
   into a ring of ASes (plus skip-chords) by eBGP border sessions with
   import/export policy chains. Every router originates its /24 LAN,
   so every LAN transits multiple ASes to reach the far side of the
   ring — cone depth the single-AS workloads never produce. *)

type session = {
  ss_local : string;
  ss_remote : string;
  ss_local_ip : Ipv4.t;
  ss_remote_ip : Ipv4.t;
}

type t = {
  devices : Device.t list;
  n_ases : int;
  routers_per_as : int;
  n_rr : int;
  routers : (int * string) list;
  reflectors : string list;
  clients : string list;
  borders : session list;
  lans : (string * Prefix.t) list;
}

let asn a = 65100 + a
let host a r = Printf.sprintf "as%d-r%d" a r
let loopback a r = Ipv4.of_octets 10 (100 + a) 0 (r + 1)
let lan a r = Prefix.make (Ipv4.of_octets 10 a r 0) 24

(* One direction of policy structure per border session: a shared
   sanity chain, then a per-remote-AS preference policy. *)
let wan_in : Policy_ast.policy =
  {
    pol_name = "WAN-IN";
    terms =
      [
        {
          term_name = "block-bogons";
          matches = [ Policy_ast.Match_prefix_list "WAN-BOGONS" ];
          actions = [ Policy_ast.Reject ];
        };
        {
          term_name = "block-default";
          matches = [ Policy_ast.Match_prefix (Prefix.default, Policy_ast.Exact) ];
          actions = [ Policy_ast.Reject ];
        };
        { term_name = "accept"; matches = []; actions = [ Policy_ast.Accept ] };
      ];
  }

let pref_policy remote_a =
  {
    Policy_ast.pol_name = Printf.sprintf "PREF-AS%d" (asn remote_a);
    terms =
      [
        {
          term_name = "lans";
          matches = [ Policy_ast.Match_prefix_list "AS-LANS" ];
          actions =
            [
              Policy_ast.Set_local_pref (95 + (remote_a * 3 mod 20));
              Policy_ast.Accept;
            ];
        };
        { term_name = "rest"; matches = []; actions = [ Policy_ast.Accept ] };
      ];
  }

let no_export_tag = Community.make 65535 666

let wan_out : Policy_ast.policy =
  {
    pol_name = "WAN-OUT";
    terms =
      [
        {
          term_name = "keep-local";
          matches = [ Policy_ast.Match_community no_export_tag ];
          actions = [ Policy_ast.Reject ];
        };
        {
          term_name = "lans";
          matches = [ Policy_ast.Match_prefix_list "AS-LANS" ];
          actions = [ Policy_ast.Accept ];
        };
        { term_name = "deny-rest"; matches = []; actions = [ Policy_ast.Reject ] };
      ];
  }

let bogons =
  List.map Prefix.of_string
    [ "0.0.0.0/8"; "127.0.0.0/8"; "169.254.0.0/16"; "192.0.2.0/24" ]

let generate ?(n_ases = 6) ?(routers_per_as = 10) ?(n_rr = 2) ?(multipath = 1)
    () =
  if n_ases < 3 then invalid_arg "Wan.generate: need at least 3 ASes";
  if routers_per_as < 4 then
    invalid_arg "Wan.generate: need at least 4 routers per AS";
  if n_rr < 1 || n_rr >= routers_per_as then
    invalid_arg "Wan.generate: n_rr out of range";
  let n = routers_per_as in
  (* intra-AS links: a ring plus half-spanning chords *)
  let intra_links =
    List.init n (fun i -> (i, (i + 1) mod n))
    @ (if n >= 6 then List.init (n / 2) (fun i -> (i, i + (n / 2))) else [])
    |> List.filter (fun (i, j) -> i <> j)
    |> List.sort_uniq compare
  in
  (* link l of AS a lives in 172.(16+a').(l).0/30 where a' wraps to
     keep the second octet in range for many ASes *)
  let intra_subnet a l = Ipv4.of_octets (172 + (a / 16)) (16 + (a mod 16)) l 0 in
  let link_idx =
    List.mapi (fun l (i, j) -> ((i, j), l)) intra_links
  in
  (* inter-AS eBGP: a ring of ASes plus skip-2 chords; AS a's exit
     router is its last, the entry router its second-to-last *)
  let border_pairs =
    List.init n_ases (fun a -> (a, (a + 1) mod n_ases))
    @
    if n_ases > 4 then
      List.filteri (fun a _ -> a mod 2 = 0) (List.init n_ases Fun.id)
      |> List.map (fun a -> (a, (a + 2) mod n_ases))
    else []
  in
  let borders =
    List.mapi
      (fun g (a, b) ->
        let base = Ipv4.of_octets 192 (168 + (g / 250)) (g mod 250) 0 in
        {
          ss_local = host a (n - 1);
          ss_remote = host b (n - 2);
          ss_local_ip = Ipv4.succ base;
          ss_remote_ip = Ipv4.add base 2;
        })
      border_pairs
  in
  let make_router a r =
    let name = host a r in
    let lo = loopback a r in
    let loopback_iface =
      Device.interface ~address:(lo, 32) ~description:"loopback"
        ~igp_enabled:true ~igp_metric:0 "lo0"
    in
    let lan_iface =
      Device.interface
        ~address:(Prefix.first_host (lan a r), 24)
        ~description:"customer LAN" "ge-0/1/0"
    in
    let backbone_ifaces =
      List.filter_map
        (fun ((i, j), l) ->
          let addr =
            if i = r then Some (Ipv4.succ (intra_subnet a l))
            else if j = r then Some (Ipv4.add (intra_subnet a l) 2)
            else None
          in
          Option.map
            (fun ip ->
              Device.interface ~address:(ip, 30)
                ~description:(Printf.sprintf "backbone r%d--r%d" i j)
                ~igp_enabled:true ~igp_metric:10
                (Printf.sprintf "xe-0/0/%d" l))
            addr)
        link_idx
    in
    (* (my session address, the peer's, the peer's AS index) *)
    let my_borders =
      List.concat
        (List.map2
           (fun s (pa, pb) ->
             if s.ss_local = name then
               [ (s.ss_local_ip, s.ss_remote_ip, pb) ]
             else if s.ss_remote = name then
               [ (s.ss_remote_ip, s.ss_local_ip, pa) ]
             else [])
           borders border_pairs)
    in
    let border_ifaces =
      List.mapi
        (fun i (my_ip, _, remote_a) ->
          Device.interface ~address:(my_ip, 30)
            ~description:(Printf.sprintf "to AS%d" (asn remote_a))
            (Printf.sprintf "xe-1/0/%d" i))
        my_borders
    in
    let is_rr = r < n_rr in
    let is_border = my_borders <> [] in
    (* Only border routers rewrite next-hop-self into iBGP, so
       eBGP-learned routes carry the egress border's loopback and every
       router resolves them to the same exit via the IGP. Reflectors
       must NOT rewrite (RFC 4456): reflecting with next-hop-self makes
       clients forward to the reflector whose own best points back,
       i.e. hop-by-hop micro-loops. *)
    let ibgp_neighbor ?(client = false) other =
      {
        Device.nb_ip = loopback a other;
        nb_remote_as = asn a;
        nb_group = Some "IBGP";
        nb_import = [];
        nb_export = [];
        nb_local_addr = Some lo;
        nb_next_hop_self = is_border;
        nb_rr_client = client;
        nb_description =
          Some
            ((if client then "iBGP client " else "iBGP to ") ^ host a other);
      }
    in
    let ibgp_neighbors =
      List.concat
        (List.init n (fun other ->
             if other = r then []
             else if is_rr then
               (* reflectors mesh among themselves and serve the rest
                  as clients *)
               [ ibgp_neighbor ~client:(other >= n_rr) other ]
             else if other < n_rr then [ ibgp_neighbor other ]
             else []))
    in
    let ebgp_neighbors =
      List.map
        (fun (_, peer_ip, remote_a) ->
          {
            Device.nb_ip = peer_ip;
            nb_remote_as = asn remote_a;
            nb_group = Some "WAN";
            nb_import = [ Printf.sprintf "PREF-AS%d" (asn remote_a) ];
            nb_export = [];
            nb_local_addr = None;
            nb_next_hop_self = false;
            nb_rr_client = false;
            nb_description = Some (Printf.sprintf "eBGP to AS%d" (asn remote_a));
          })
        my_borders
    in
    let groups =
      {
        Device.pg_name = "IBGP";
        pg_remote_as = Some (asn a);
        pg_import = [];
        pg_export = [];
        pg_local_pref = None;
        pg_description = Some "route-reflection mesh";
      }
      ::
      (if is_border then
         [
           {
             Device.pg_name = "WAN";
             pg_remote_as = None;
             pg_import = [ "WAN-IN" ];
             pg_export = [ "WAN-OUT" ];
             pg_local_pref = None;
             pg_description = Some "inter-AS sessions";
           };
         ]
       else [])
    in
    let prefix_lists =
      if is_border then
        [
          {
            Device.pl_name = "WAN-BOGONS";
            pl_entries =
              List.map
                (fun p ->
                  { Device.ple_prefix = p; ple_ge = None; ple_le = Some 32 })
                bogons;
          };
          {
            Device.pl_name = "AS-LANS";
            pl_entries =
              [
                {
                  Device.ple_prefix = Prefix.make (Ipv4.of_octets 10 0 0 0) 8;
                  ple_ge = Some 24;
                  ple_le = Some 24;
                };
              ];
          };
        ]
      else []
    in
    let policies =
      if is_border then
        wan_in :: wan_out
        :: List.sort_uniq compare
             (List.map (fun (_, _, remote_a) -> pref_policy remote_a) my_borders)
      else []
    in
    Device.make ~syntax:Device.Junos
      ~interfaces:
        ((loopback_iface :: lan_iface :: backbone_ifaces) @ border_ifaces)
      ~prefix_lists ~policies
      ~bgp:
        {
          Device.local_as = asn a;
          router_id = lo;
          networks = [ lan a r ];
          aggregates = [];
          redistributes = [];
          groups;
          neighbors = ibgp_neighbors @ ebgp_neighbors;
          multipath;
        }
      name
  in
  let indices =
    List.concat (List.init n_ases (fun a -> List.init n (fun r -> (a, r))))
  in
  {
    devices = List.map (fun (a, r) -> make_router a r) indices;
    n_ases;
    routers_per_as = n;
    n_rr;
    routers = List.map (fun (a, r) -> (a, host a r)) indices;
    reflectors =
      List.concat
        (List.init n_ases (fun a -> List.init n_rr (fun r -> host a r)));
    clients =
      List.concat
        (List.init n_ases (fun a ->
             List.init (n - n_rr) (fun r -> host a (r + n_rr))));
    borders;
    lans = List.map (fun (a, r) -> (host a r, lan a r)) indices;
  }
