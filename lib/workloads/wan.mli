(** Synthetic multi-AS wide-area network: [n_ases] autonomous systems,
    each a ring-plus-chords IGP backbone whose iBGP runs over [n_rr]
    route reflectors (clients peer only with the reflectors, reflectors
    mesh among themselves; border routers set next-hop-self), joined into a ring of
    ASes plus skip-chords by eBGP border sessions carrying
    import/export policy chains (bogon filtering, per-remote-AS
    local-pref, a LANs-only export allow list). Every router originates
    its /24 LAN, so remote LANs transit several ASes and reflectors —
    the deep-cone mega-workload behind the rr-wan rows of
    BENCH_parallel.json. JunOS-style configurations, no external
    stubs: every device is part of the coverage domain. *)

open Netcov_types
open Netcov_config

(** One inter-AS eBGP session (single direction of description; the
    configuration exists on both ends). *)
type session = {
  ss_local : string;  (** hostname on the lower-indexed AS *)
  ss_remote : string;
  ss_local_ip : Ipv4.t;
  ss_remote_ip : Ipv4.t;
}

type t = {
  devices : Device.t list;
  n_ases : int;
  routers_per_as : int;
  n_rr : int;
  routers : (int * string) list;  (** (AS index, hostname), all routers *)
  reflectors : string list;
  clients : string list;  (** non-reflector routers *)
  borders : session list;  (** inter-AS sessions *)
  lans : (string * Prefix.t) list;  (** originated /24 per router *)
}

(** [generate ()] builds the network. Defaults: 6 ASes of 10 routers
    with 2 reflectors each. [n_ases >= 3], [routers_per_as >= 4],
    [1 <= n_rr < routers_per_as]. Deterministic: no randomness. *)
val generate :
  ?n_ases:int -> ?routers_per_as:int -> ?n_rr:int -> ?multipath:int -> unit -> t
