(** BGP AS paths: sequences of AS numbers, most recent hop first. *)

type asn = int
type t

val empty : t
val of_list : asn list -> t
val to_list : t -> asn list
val length : t -> int

(** [prepend asn ~times path] prepends [asn] [times] times. *)
val prepend : asn -> ?times:int -> t -> t

(** [mem asn path] is true iff [asn] occurs anywhere in the path. *)
val mem : asn -> t -> bool

(** First (most recent) ASN, if any. *)
val head : t -> asn option

(** Last ASN, i.e. the origin AS, if any. *)
val origin : t -> asn option

val to_string : t -> string
val of_string : string -> t
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

(** Folds over every hop; hash-equal whenever {!equal}. *)
val hash : t -> int
