type asn = int
type t = asn list

let empty = []
let of_list l = l
let to_list p = p
let length = List.length

let prepend asn ?(times = 1) p =
  let rec go n acc = if n <= 0 then acc else go (n - 1) (asn :: acc) in
  go times p

let mem asn p = List.exists (Int.equal asn) p
let head = function [] -> None | a :: _ -> Some a

let rec origin = function
  | [] -> None
  | [ a ] -> Some a
  | _ :: rest -> origin rest

let to_string p = String.concat " " (List.map string_of_int p)

let of_string s =
  s
  |> String.split_on_char ' '
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let pp fmt p = Format.pp_print_string fmt (to_string p)
let compare = List.compare Int.compare
let equal a b = compare a b = 0

let hash p =
  (* Unlike [Hashtbl.hash], folds over the whole path: long paths that
     share a recent-hop prefix must not collide systematically. *)
  List.fold_left (fun h asn -> (h * 31) + asn + 1) 17 p
