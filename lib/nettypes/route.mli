(** Routes and BGP path attributes shared by the simulator, the policy
    engine and the coverage core. *)

(** Source protocol of a main-RIB entry. *)
type protocol = Connected | Static | Igp | Bgp

val protocol_to_string : protocol -> string
val protocol_of_string : string -> protocol option
val pp_protocol : Format.formatter -> protocol -> unit
val compare_protocol : protocol -> protocol -> int

(** BGP origin attribute. *)
type origin_kind = Origin_igp | Origin_egp | Origin_incomplete

val origin_to_string : origin_kind -> string
val compare_origin : origin_kind -> origin_kind -> int

(** Preference order used in best-path selection: IGP < EGP < Incomplete
    (lower is better). *)
val origin_rank : origin_kind -> int

(** A BGP route / announcement with its path attributes. *)
type bgp = {
  prefix : Prefix.t;
  next_hop : Ipv4.t;
  as_path : As_path.t;
  local_pref : int;
  med : int;
  communities : Community.Set.t;
  origin : origin_kind;
  cluster_len : int;
      (** length of the route-reflection CLUSTER_LIST; 0 when never
          reflected. Lower is preferred, breaking reflection
          oscillations. *)
}

val default_local_pref : int

(** [originate prefix ~next_hop] makes a locally originated route with
    default attributes. *)
val originate : Prefix.t -> next_hop:Ipv4.t -> bgp

val with_prefix : bgp -> Prefix.t -> bgp
val add_community : bgp -> Community.t -> bgp
val has_community : bgp -> Community.t -> bool
val compare_bgp : bgp -> bgp -> int
val equal_bgp : bgp -> bgp -> bool

(** Structural hash over every attribute, canonical in the community
    set (hash-equal whenever {!equal_bgp}); allocation-free, unlike
    keying on {!bgp_to_string}. *)
val hash_bgp : bgp -> int
val pp_bgp : Format.formatter -> bgp -> unit
val bgp_to_string : bgp -> string
