type protocol = Connected | Static | Igp | Bgp

let protocol_to_string = function
  | Connected -> "connected"
  | Static -> "static"
  | Igp -> "igp"
  | Bgp -> "bgp"

let protocol_of_string = function
  | "connected" -> Some Connected
  | "static" -> Some Static
  | "igp" -> Some Igp
  | "bgp" -> Some Bgp
  | _ -> None

let pp_protocol fmt p = Format.pp_print_string fmt (protocol_to_string p)

let protocol_rank = function Connected -> 0 | Static -> 1 | Igp -> 2 | Bgp -> 3
let compare_protocol a b = Int.compare (protocol_rank a) (protocol_rank b)

type origin_kind = Origin_igp | Origin_egp | Origin_incomplete

let origin_to_string = function
  | Origin_igp -> "igp"
  | Origin_egp -> "egp"
  | Origin_incomplete -> "incomplete"

let origin_rank = function
  | Origin_igp -> 0
  | Origin_egp -> 1
  | Origin_incomplete -> 2

let compare_origin a b = Int.compare (origin_rank a) (origin_rank b)

type bgp = {
  prefix : Prefix.t;
  next_hop : Ipv4.t;
  as_path : As_path.t;
  local_pref : int;
  med : int;
  communities : Community.Set.t;
  origin : origin_kind;
  cluster_len : int;
}

let default_local_pref = 100

let originate prefix ~next_hop =
  {
    prefix;
    next_hop;
    as_path = As_path.empty;
    local_pref = default_local_pref;
    med = 0;
    communities = Community.Set.empty;
    origin = Origin_igp;
    cluster_len = 0;
  }

let with_prefix r prefix = { r with prefix }
let add_community r c = { r with communities = Community.Set.add c r.communities }
let has_community r c = Community.Set.mem c r.communities

let compare_bgp a b =
  let cmp =
    [
      (fun () -> Prefix.compare a.prefix b.prefix);
      (fun () -> Ipv4.compare a.next_hop b.next_hop);
      (fun () -> As_path.compare a.as_path b.as_path);
      (fun () -> Int.compare a.local_pref b.local_pref);
      (fun () -> Int.compare a.med b.med);
      (fun () -> Community.Set.compare a.communities b.communities);
      (fun () -> compare_origin a.origin b.origin);
      (fun () -> Int.compare a.cluster_len b.cluster_len);
    ]
  in
  let rec go = function
    | [] -> 0
    | f :: rest -> ( match f () with 0 -> go rest | c -> c)
  in
  go cmp

let equal_bgp a b = compare_bgp a b = 0

let hash_bgp r =
  (* Covers every field [compare_bgp] compares, so hash-equal whenever
     [equal_bgp]; the community set folds element-wise (in-order, hence
     canonical) because tree shape may differ between equal sets. *)
  let mix h v = (h * 31) + v + 1 in
  let h = mix (Prefix.hash r.prefix) (Ipv4.hash r.next_hop) in
  let h = mix h (As_path.hash r.as_path) in
  let h = mix h r.local_pref in
  let h = mix h r.med in
  let h = Community.Set.fold (fun c h -> mix h (Community.hash c)) r.communities h in
  let h = mix h (origin_rank r.origin) in
  mix h r.cluster_len

let bgp_to_string r =
  Printf.sprintf "%s via %s as-path [%s] lp %d med %d comm {%s} origin %s"
    (Prefix.to_string r.prefix)
    (Ipv4.to_string r.next_hop)
    (As_path.to_string r.as_path)
    r.local_pref r.med
    (String.concat ","
       (List.map Community.to_string (Community.Set.elements r.communities)))
    (origin_to_string r.origin)

let pp_bgp fmt r = Format.pp_print_string fmt (bgp_to_string r)
