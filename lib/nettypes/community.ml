type t = { high : int; low : int }

let make high low =
  if high < 0 || high > 0xFFFF || low < 0 || low > 0xFFFF then
    invalid_arg "Community.make: field out of range";
  { high; low }

let no_export = make 0xFFFF 0xFF01
let no_advertise = make 0xFFFF 0xFF02

let of_string_opt s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let h = String.sub s 0 i in
      let l = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt h, int_of_string_opt l) with
      | Some h, Some l when h >= 0 && h <= 0xFFFF && l >= 0 && l <= 0xFFFF ->
          Some { high = h; low = l }
      | _, _ -> None)

let of_string s =
  match of_string_opt s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Community.of_string: %S" s)

let to_string c = Printf.sprintf "%d:%d" c.high c.low
let pp fmt c = Format.pp_print_string fmt (to_string c)

let compare a b =
  match Int.compare a.high b.high with
  | 0 -> Int.compare a.low b.low
  | c -> c

let equal a b = compare a b = 0
let hash c = (c.high lsl 16) lor c.low

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
