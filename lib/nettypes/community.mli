(** BGP standard communities, [asn:value] pairs of 16-bit fields. *)

type t = private { high : int; low : int }

val make : int -> int -> t

(** Well-known communities. *)
val no_export : t

val no_advertise : t

(** [of_string "65535:666"] parses colon notation. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

(** Injective (both fields are 16-bit), so hash-equal iff {!equal}. *)
val hash : t -> int

module Set : Set.S with type elt = t
