type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type kind =
  | Parse_error
  | Parse_recovered
  | Duplicate_host
  | Unknown_host
  | Policy_eval
  | Sim_failure
  | Test_failure
  | Io_error
  | Internal

let kind_to_string = function
  | Parse_error -> "parse.error"
  | Parse_recovered -> "parse.recovered"
  | Duplicate_host -> "registry.duplicate-host"
  | Unknown_host -> "sim.unknown-host"
  | Policy_eval -> "sim.policy-eval"
  | Sim_failure -> "sim.failure"
  | Test_failure -> "analyze.test-failure"
  | Io_error -> "io.error"
  | Internal -> "internal"

let all_kinds =
  [
    Parse_error;
    Parse_recovered;
    Duplicate_host;
    Unknown_host;
    Policy_eval;
    Sim_failure;
    Test_failure;
    Io_error;
    Internal;
  ]

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

type t = {
  severity : severity;
  kind : kind;
  message : string;
  device : string option;
  file : string option;
  line : int option;
  fact : string option;
}

let make ?device ?file ?line ?fact severity kind message =
  { severity; kind; message; device; file; line; fact }

let error ?device ?file ?line ?fact kind message =
  make ?device ?file ?line ?fact Error kind message

let warning ?device ?file ?line ?fact kind message =
  make ?device ?file ?line ?fact Warning kind message

let info ?device ?file ?line ?fact kind message =
  make ?device ?file ?line ?fact Info kind message

let to_string d =
  let where =
    match (d.file, d.line, d.device) with
    | Some f, Some l, _ -> Printf.sprintf "%s:%d: " f l
    | Some f, None, _ -> Printf.sprintf "%s: " f
    | None, _, Some dev -> Printf.sprintf "%s: " dev
    | None, _, None -> ""
  in
  Printf.sprintf "%s%s: %s" where (severity_to_string d.severity) d.message

let compare a b =
  let opt_cmp cmp a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> cmp x y
  in
  let c = opt_cmp String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = opt_cmp Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = opt_cmp String.compare a.device b.device in
      if c <> 0 then c
      else
        let c = Int.compare (severity_rank b.severity) (severity_rank a.severity) in
        if c <> 0 then c
        else
          let c = String.compare (kind_to_string a.kind) (kind_to_string b.kind) in
          if c <> 0 then c else String.compare a.message b.message

let max_severity = function
  | [] -> None
  | d :: rest ->
      Some
        (List.fold_left
           (fun acc d ->
             if severity_rank d.severity > severity_rank acc then d.severity
             else acc)
           d.severity rest)

let is_error d = d.severity = Error

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v)
  in
  let str_field k v = field k (Printf.sprintf "\"%s\"" (escape_string v)) in
  Buffer.add_char buf '{';
  str_field "severity" (severity_to_string d.severity);
  str_field "kind" (kind_to_string d.kind);
  str_field "message" d.message;
  Option.iter (str_field "device") d.device;
  Option.iter (str_field "file") d.file;
  Option.iter (fun l -> field "line" (string_of_int l)) d.line;
  Option.iter (str_field "fact") d.fact;
  Buffer.add_char buf '}';
  Buffer.contents buf

let list_to_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json ds))

(* Minimal parser for the flat objects [to_json] emits: string and
   integer values only, no nesting. Kept dependency-free on purpose
   (this library sits below everything else in the repo). *)
let of_json s =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' -> fail "expected %C at offset %d, got %C" c !pos c'
    | None -> fail "expected %C, got end of input" c
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape %S" hex
                   in
                   if code > 0xff then fail "non-latin \\u escape %S" hex
                   else Buffer.add_char buf (Char.chr code);
                   pos := !pos + 4
               | c -> fail "bad escape \\%C" c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "expected integer at offset %d" start
  in
  try
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        skip_ws ();
        let value =
          match peek () with
          | Some '"' -> `Str (parse_string ())
          | Some ('-' | '0' .. '9') -> `Int (parse_int ())
          | _ -> fail "field %S: expected string or integer value" key
        in
        fields := (key, value) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}' at offset %d" !pos
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then fail "trailing input at offset %d" !pos;
    let str key =
      match List.assoc_opt key !fields with
      | Some (`Str v) -> Some v
      | Some (`Int _) -> fail "field %S: expected a string" key
      | None -> None
    in
    let int key =
      match List.assoc_opt key !fields with
      | Some (`Int v) -> Some v
      | Some (`Str _) -> fail "field %S: expected an integer" key
      | None -> None
    in
    let req key =
      match str key with Some v -> v | None -> fail "missing field %S" key
    in
    let severity =
      let v = req "severity" in
      match severity_of_string v with
      | Some sv -> sv
      | None -> fail "unknown severity %S" v
    in
    let kind =
      let v = req "kind" in
      match kind_of_string v with
      | Some k -> k
      | None -> fail "unknown kind %S" v
    in
    Ok
      {
        severity;
        kind;
        message = req "message";
        device = str "device";
        file = str "file";
        line = int "line";
        fact = str "fact";
      }
  with Bad msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

type collector = { mutex : Mutex.t; mutable rev_items : t list; mutable count : int }

let collector () = { mutex = Mutex.create (); rev_items = []; count = 0 }

let add c d =
  Mutex.lock c.mutex;
  c.rev_items <- d :: c.rev_items;
  c.count <- c.count + 1;
  Mutex.unlock c.mutex

let sink c = add c

let items c =
  Mutex.lock c.mutex;
  let out = List.rev c.rev_items in
  Mutex.unlock c.mutex;
  out

let length c = c.count
