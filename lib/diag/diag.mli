(** Structured diagnostics: the error channel of the analysis pipeline.

    A diagnostic is a typed, carry-able description of something that
    went wrong (or was recovered from) while parsing, registering,
    simulating or analyzing a network — severity, a stable kind, human
    message, and provenance (device, file, line, offending fact).
    Producers push diagnostics into a {!collector} (or any
    [t -> unit] sink) instead of raising, so one malformed stanza,
    unknown hostname or crashing targeted simulation degrades the run
    instead of aborting it; consumers print them as
    [file:line: severity: message] lines or embed their stable JSON
    encoding in partial coverage reports.

    The catalog of kinds, severities, exit codes and the
    partial-report schema lives in [docs/ERRORS.md]. *)

(** Severity, ordered: [Info < Warning < Error]. *)
type severity = Info | Warning | Error

val severity_to_string : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val severity_of_string : string -> severity option

(** What went wrong, as a stable machine-readable classification.
    String forms (used in JSON and metrics labels) are dotted:
    [parse.error], [parse.recovered], [registry.duplicate-host],
    [sim.unknown-host], [sim.policy-eval], [analyze.test-failure],
    [io.error], [internal]. *)
type kind =
  | Parse_error  (** input rejected outright by a parser *)
  | Parse_recovered
      (** a malformed stanza was skipped; the rest of the file parsed *)
  | Duplicate_host  (** two devices share a hostname; the later one lost *)
  | Unknown_host  (** a hostname that resolves to no known device *)
  | Policy_eval  (** a policy-chain evaluation failed *)
  | Sim_failure  (** a targeted simulation or inference rule crashed *)
  | Test_failure  (** a per-test analysis raised and was excluded *)
  | Io_error  (** file system failure while reading input *)
  | Internal  (** anything that escaped classification *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** One diagnostic. All provenance fields are optional: parsers fill
    [file]/[line], the simulator fills [device], the coverage core
    fills [fact] (the offending fact's {e key} string). *)
type t = {
  severity : severity;
  kind : kind;
  message : string;
  device : string option;
  file : string option;
  line : int option;
  fact : string option;
}

val make :
  ?device:string ->
  ?file:string ->
  ?line:int ->
  ?fact:string ->
  severity ->
  kind ->
  string ->
  t

(** [error kind msg] = [make Error kind msg]; likewise {!warning} and
    {!info}. *)
val error :
  ?device:string -> ?file:string -> ?line:int -> ?fact:string -> kind -> string -> t

val warning :
  ?device:string -> ?file:string -> ?line:int -> ?fact:string -> kind -> string -> t

val info :
  ?device:string -> ?file:string -> ?line:int -> ?fact:string -> kind -> string -> t

(** GCC-style one-liner: [file:line: severity: message]. Provenance
    degrades left-to-right — without a line: [file: severity: message];
    without a file the device stands in; with neither:
    [severity: message]. *)
val to_string : t -> string

(** Provenance-major ordering (file, line, device, severity
    descending, kind, message) — stable sort key for reports. *)
val compare : t -> t -> int

(** Highest severity present, [None] on the empty list. *)
val max_severity : t list -> severity option

val is_error : t -> bool

(** {2 JSON}

    The encoding is a flat object with the string forms of severity
    and kind; absent provenance fields are omitted. [of_json] inverts
    [to_json] exactly ([of_json (to_json d) = Ok d]) and rejects
    anything that is not a diagnostic object. *)

val to_json : t -> string

val of_json : string -> (t, string) result

val list_to_json : t list -> string

(** {2 Collector}

    A mutex-guarded sink, safe to share across the pool's domains
    (per-cone labeling and nested fan-out may emit concurrently). *)

type collector

val collector : unit -> collector

val add : collector -> t -> unit

(** [sink c] is [add c] as a plain function, the shape producers take. *)
val sink : collector -> t -> unit

(** Collected diagnostics in insertion order. *)
val items : collector -> t list

val length : collector -> int
