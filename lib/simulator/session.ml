open Netcov_types
open Netcov_config

type edge = {
  send_host : string;
  send_ip : Ipv4.t;
  recv_host : string;
  recv_ip : Ipv4.t;
  ebgp : bool;
  multihop : bool;
}

let edge_key e =
  Printf.sprintf "%s/%s->%s/%s" e.send_host (Ipv4.to_string e.send_ip)
    e.recv_host (Ipv4.to_string e.recv_ip)

let pp_edge fmt e = Format.pp_print_string fmt (edge_key e)

(* Field-wise, allocation-free total order (warm updates sort the full
   edge list per mutant). Only consistency with equality matters to
   callers; the order itself is arbitrary. *)
let compare_edge a b =
  match String.compare a.send_host b.send_host with
  | 0 -> (
      match Ipv4.compare a.send_ip b.send_ip with
      | 0 -> (
          match String.compare a.recv_host b.recv_host with
          | 0 -> Ipv4.compare a.recv_ip b.recv_ip
          | c -> c)
      | c -> c)
  | c -> c

let find_neighbor (d : Device.t) ip =
  match d.bgp with
  | None -> None
  | Some b ->
      List.find_opt (fun (n : Device.neighbor) -> Ipv4.equal n.nb_ip ip) b.neighbors

(* The local address a device uses toward neighbor [nb]: the configured
   local address, or the local interface on the subnet shared with the
   neighbor's address. *)
let local_session_addr (topo : Topology.t) (d : Device.t) (nb : Device.neighbor) =
  match nb.nb_local_addr with
  | Some a -> Some a
  | None ->
      Option.map
        (fun (e : Topology.endpoint) -> e.ip)
        (Topology.on_shared_subnet topo d.hostname nb.nb_ip)

let establish_scan devices topo ~reach ~scan =
  let dev_tbl = Hashtbl.create 64 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace dev_tbl d.hostname d) devices;
  let owner_of_ip ip =
    Option.bind (Topology.endpoint_of_ip topo ip) (fun (e : Topology.endpoint) ->
        Hashtbl.find_opt dev_tbl e.host)
  in
  let edges = ref [] in
  List.iter
    (fun (d : Device.t) ->
      match d.bgp with
      | None -> ()
      | Some b ->
          List.iter
            (fun (nb : Device.neighbor) ->
              match (owner_of_ip nb.nb_ip, local_session_addr topo d nb) with
              | None, _ | _, None -> ()
              | Some remote_dev, Some local_ip -> (
                  (* The remote side must configure a neighbor at our
                     session address, with consistent AS numbers. *)
                  match (find_neighbor remote_dev local_ip, remote_dev.bgp) with
                  | None, _ | _, None -> ()
                  | Some remote_nb, Some remote_bgp ->
                      let as_ok =
                        nb.nb_remote_as = remote_bgp.local_as
                        && remote_nb.nb_remote_as = b.local_as
                      in
                      let direct =
                        Topology.on_shared_subnet topo d.hostname nb.nb_ip <> None
                      in
                      let reachable =
                        direct
                        || (reach d.hostname nb.nb_ip
                           && reach remote_dev.hostname local_ip)
                      in
                      if as_ok && reachable then
                        (* Record the edge from remote -> local; the
                           symmetric direction is found when iterating the
                           remote device. *)
                        edges :=
                          {
                            send_host = remote_dev.hostname;
                            send_ip = nb.nb_ip;
                            recv_host = d.hostname;
                            recv_ip = local_ip;
                            ebgp = nb.nb_remote_as <> b.local_as;
                            multihop = not direct;
                          }
                          :: !edges))
            b.neighbors)
    scan;
  !edges

let establish devices topo ~reach =
  List.sort_uniq compare_edge (establish_scan devices topo ~reach ~scan:devices)

let establish_delta devices topo ~reach ~affected ~prev =
  (* An edge's existence and attributes depend only on its two
     endpoints' configurations and pre-BGP reachability, plus the
     topology — and of the topology only the endpoints' own interface
     addressing and the ownership of the addresses they name, all of
     which can move only when one of the two hosts is affected. The
     per-device scan emits the edges {e received} by the scanned
     device, so it must rerun for every host whose incoming edges
     could move: the affected hosts themselves, any host with a
     neighbor statement addressed at an interface an affected host now
     owns, and any previous receiver of an affected sender (whose
     sender-side endpoint may have disappeared altogether — the
     ownership probe below, which runs against the new topology, no
     longer sees it). Every other host's incoming edges carry over
     from [prev]. *)
  let is_affected h = Hashtbl.mem affected h in
  let prev_recv_of_affected = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if is_affected e.send_host then
        Hashtbl.replace prev_recv_of_affected e.recv_host ())
    prev;
  let needs_rescan (d : Device.t) =
    is_affected d.hostname
    || Hashtbl.mem prev_recv_of_affected d.hostname
    ||
    match d.bgp with
    | None -> false
    | Some b ->
        List.exists
          (fun (nb : Device.neighbor) ->
            match Topology.endpoint_of_ip topo nb.nb_ip with
            | Some (e : Topology.endpoint) -> is_affected e.host
            | None -> false)
          b.neighbors
  in
  let scan = List.filter needs_rescan devices in
  let rescanned = Hashtbl.create 16 in
  List.iter
    (fun (d : Device.t) -> Hashtbl.replace rescanned d.hostname ())
    scan;
  let kept =
    List.filter (fun e -> not (Hashtbl.mem rescanned e.recv_host)) prev
  in
  List.sort_uniq compare_edge
    (kept @ establish_scan devices topo ~reach ~scan)

let recv_neighbor (d : Device.t) (e : edge) = find_neighbor d e.send_ip
let send_neighbor (d : Device.t) (e : edge) = find_neighbor d e.recv_ip
