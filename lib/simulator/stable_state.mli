(** The stable network state consumed by NetCov: configurations, main
    and protocol RIBs, active routing edges, and data-plane forwarding —
    everything §4's inference rules look up. *)

open Netcov_types
open Netcov_config

type t

(** [compute registry] builds the topology from interface addressing and
    runs the control plane to a fixed point.

    [down] lists failed interfaces as [(host, ifname)] pairs: they lose
    their addresses for the purposes of topology, connected routes, IGP
    and sessions, while the registry (the coverage domain) is untouched —
    this models an environmental failure, not a configuration change.

    [diags] is passed through to {!Bgp.run}: with a sink, unknown
    hostnames degrade to external stubs and are reported instead of
    raising. *)
val compute :
  ?max_rounds:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  ?down:(string * string) list ->
  Registry.t ->
  t

(** [update prev reg] recomputes the stable state for [reg], warm-started
    from [prev]: the BGP fixed point is seeded with [prev]'s converged
    tables and only the cone affected by the device edits is replayed
    (topology and IGP are reused when no edited device touches its
    interface stanzas). [prev]'s [down] list carries over. Falls back to
    a full {!compute} when the host set changed. The result matches
    {!compute} whenever the synchronous iteration's fixed point is
    unique, which holds for the deterministic selection used here; the
    equivalence is differentially enforced by the [@mutation-smoke] gate
    and the [mutation-falsifiability] oracle. *)
val update :
  ?max_rounds:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  t ->
  Registry.t ->
  t

(** [update_devices prev devices] is {!update} with raw device
    configurations standing in for a registry build: the simulation uses
    [devices], while the {e registry} (the coverage domain, what
    {!registry} returns) remains [prev]'s — a simulation-level override
    with the same contract as [down]. This is the mutant fast path:
    mutation coverage perturbs one device and asks only simulation
    questions of the result, so skipping [Registry.build] per mutant is
    sound and is where most of the per-mutant speedup comes from. *)
val update_devices :
  ?max_rounds:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  t ->
  Device.t list ->
  t

(** [prime t] builds the per-(edge, prefix) import memo for [t]
    ({!Bgp.build_import_memo}) so that warm {!update}s seeded from [t]
    replay unchanged imports instead of re-evaluating policy chains.
    Idempotent; costs about one BGP round. The memo is immutable once
    primed, so one primed state can serve many parallel updates.
    States returned by {!update} are never primed — a memo is only
    valid for the exact state it was built on. *)
val prime : t -> unit

val registry : t -> Registry.t
val topology : t -> Topology.t
val rounds : t -> int

val find_device : t -> string -> Device.t
val is_external : t -> string -> bool

val main_rib : t -> string -> Rib.main_entry Rib.table
val bgp_rib : t -> string -> Rib.bgp_entry Rib.table
val igp_rib : t -> string -> Rib.igp_entry Rib.table

(** All established directed routing edges. *)
val edges : t -> Session.edge list

(** [edge_from t ~recv_host ~send_ip] resolves the unique edge whose
    receiver is [recv_host] and whose sender session address is
    [send_ip] — the lookup in Figure 4. *)
val edge_from : t -> recv_host:string -> send_ip:Ipv4.t -> Session.edge option

val edges_in : t -> string -> Session.edge list
val edges_out : t -> string -> Session.edge list

(** Exact-prefix lookups. *)
val main_lookup : t -> string -> Prefix.t -> Rib.main_entry list

val bgp_lookup : t -> string -> Prefix.t -> Rib.bgp_entry list

(** Best entries only, Figure 3's [status='BEST'] filter. *)
val bgp_lookup_best : t -> string -> Prefix.t -> Rib.bgp_entry list

val igp_lookup : t -> string -> Prefix.t -> Rib.igp_entry list

(** Data-plane forwarding. *)
val forward_env : t -> Forward.env

val trace : ?max_paths:int -> t -> src:string -> dst:Ipv4.t -> Forward.path list
val reachable : ?max_paths:int -> t -> src:string -> dst:Ipv4.t -> bool

(** [owner_of_ip t ip] is the device/interface carrying [ip]. *)
val owner_of_ip : t -> Ipv4.t -> (string * string) option

(** Total entries across main RIBs of all devices (scale metric used by
    Figure 10(b)). *)
val total_main_entries : t -> int

val total_bgp_entries : t -> int

(** Hosts in the coverage domain (internal devices). *)
val internal_hosts : t -> string list

val all_hosts : t -> string list
