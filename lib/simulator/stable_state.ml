open Netcov_types
open Netcov_config

type t = {
  reg : Registry.t;
  topo : Topology.t;
  sim : Bgp.result;
  edge_index : (string, Session.edge) Hashtbl.t;
  (* devices as simulated: interface failures applied (the registry keeps
     the unmodified configurations for coverage) *)
  sim_devices : (string, Device.t) Hashtbl.t;
  down : (string * string) list;
  mutable import_memo : Bgp.import_memo option;
      (* primed lazily by [prime]; always [None] on a freshly assembled
         state — a memo is only valid for warm updates seeded from the
         exact state it was primed on, so it never carries over *)
}

let edge_index_key ~recv_host ~send_ip =
  recv_host ^ "<-" ^ Ipv4.to_string send_ip

let apply_down down devices =
  if down = [] then devices
  else
    List.map
      (fun (d : Device.t) ->
        let failed ifname = List.mem (d.hostname, ifname) down in
        {
          d with
          Device.interfaces =
            List.map
              (fun (i : Device.interface) ->
                if failed i.if_name then
                  { i with Device.address = None; igp_enabled = false }
                else i)
              d.interfaces;
        })
      devices

module M = Netcov_obs.Metrics

(* Convergence metrics (docs/OBSERVABILITY.md). *)
let m_runs = M.counter M.default ~help:"stable-state computations" ~unit_:"runs" "sim.runs"

let m_rounds =
  M.counter M.default ~help:"BGP convergence rounds, summed over runs"
    ~unit_:"rounds" "sim.rounds"

let m_seconds =
  M.histogram M.default ~help:"wall time of one stable-state computation"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "sim.seconds"

let m_rib_entries =
  M.gauge M.default ~help:"main-RIB entries in the last computed stable state"
    ~unit_:"entries" "sim.rib_entries"

let m_edges =
  M.gauge M.default ~help:"routing edges in the last computed stable state"
    ~unit_:"edges" "sim.bgp_edges"

let record_metrics t dt =
  M.inc m_runs 1;
  M.inc m_rounds t.sim.rounds;
  M.observe m_seconds dt;
  M.set m_rib_entries
    (float_of_int
       (Hashtbl.fold (fun _ table acc -> acc + Rib.table_count table) t.sim.main_ribs 0));
  M.set m_edges (float_of_int (List.length t.sim.edges));
  t

let assemble reg down topo sim devices =
  let edge_index = Hashtbl.create 256 in
  List.iter
    (fun (e : Session.edge) ->
      Hashtbl.replace edge_index
        (edge_index_key ~recv_host:e.recv_host ~send_ip:e.send_ip)
        e)
    sim.Bgp.edges;
  let sim_devices = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) -> Hashtbl.replace sim_devices d.hostname d)
    devices;
  { reg; topo; sim; edge_index; sim_devices; down; import_memo = None }

let compute ?max_rounds ?diags ?(down = []) reg =
  let n_devices = List.length (Registry.devices reg) in
  Netcov_obs.Trace.with_span "simulate"
    ~args:[ ("devices", Netcov_obs.Trace.I n_devices) ]
  @@ fun () ->
  let t, dt =
    Netcov_obs.Timing.time (fun () ->
        let devices = apply_down down (Registry.devices reg) in
        let topo = Topology.build devices in
        let sim = Bgp.run ?max_rounds ?diags devices topo in
        assemble reg down topo sim devices)
  in
  record_metrics t dt

(* Warm restart: seed the BGP fixed point from [prev]'s converged
   tables and replay only the cone affected by the device edits. A
   host's round function is determined by its configuration, its
   pre-BGP main RIB, and its in-edge set, so the dirty seed is exactly
   the hosts where one of those three differs; Bgp.fixed_point then
   adds receivers of dirty senders in round one (export policies are
   evaluated receiver-side) and propagates normally. Topology and IGP
   depend only on interface stanzas and are reused when no edited
   device touches them. Exact whenever the synchronous iteration's
   fixed point is unique — differentially gated by @mutation-smoke and
   the mutation-falsifiability oracle. *)

let main_tables_equal a b =
  Prefix_trie.equal
    (fun xs ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun x y -> Rib.compare_main x y = 0) xs ys)
    a b

let edges_in_map edges =
  let t = Hashtbl.create 64 in
  List.iter
    (fun (e : Session.edge) ->
      let cur = Option.value (Hashtbl.find_opt t e.recv_host) ~default:[] in
      Hashtbl.replace t e.recv_host (cur @ [ e ]))
    edges;
  t

let update_core ?max_rounds ?diags prev reg raw_devices =
  let devices = apply_down prev.down raw_devices in
  let same_hosts =
    List.length devices = Hashtbl.length prev.sim_devices
    && List.for_all
         (fun (d : Device.t) -> Hashtbl.mem prev.sim_devices d.hostname)
         devices
  in
  if not same_hosts then
    (* Host added or removed: the cheap dirty analysis below assumes a
       stable host set; fall back to a full computation. *)
    compute ?max_rounds ?diags ~down:prev.down reg
  else
    Netcov_obs.Trace.with_span "simulate.update"
      ~args:[ ("devices", Netcov_obs.Trace.I (List.length devices)) ]
    @@ fun () ->
    let t, dt =
      Netcov_obs.Timing.time (fun () ->
          let changed =
            List.filter
              (fun (d : Device.t) ->
                match Hashtbl.find_opt prev.sim_devices d.hostname with
                | Some old -> old <> d
                | None -> true)
              devices
          in
          let ifaces_same =
            List.for_all
              (fun (d : Device.t) ->
                match Hashtbl.find_opt prev.sim_devices d.hostname with
                | Some old -> old.Device.interfaces = d.Device.interfaces
                | None -> false)
              changed
          in
          let topo, igp_ribs =
            if ifaces_same then (prev.topo, prev.sim.Bgp.igp_ribs)
            else
              let topo = Topology.build devices in
              (topo, Igp.compute devices topo)
          in
          let pre_mains =
            if ifaces_same then (
              (* IGP tables unchanged: only edited devices can see a
                 different pre-BGP main RIB. *)
              let pm = Hashtbl.copy prev.sim.Bgp.pre_mains in
              let fresh = Bgp.compute_pre_mains changed igp_ribs in
              Hashtbl.iter (fun h t -> Hashtbl.replace pm h t) fresh;
              pm)
            else Bgp.compute_pre_mains devices igp_ribs
          in
          let dirty = Hashtbl.create 16 in
          List.iter
            (fun (d : Device.t) -> Hashtbl.replace dirty d.hostname ())
            changed;
          let pre_check = if ifaces_same then changed else devices in
          List.iter
            (fun (d : Device.t) ->
              if not (Hashtbl.mem dirty d.hostname) then
                let old =
                  Option.value
                    (Hashtbl.find_opt prev.sim.Bgp.pre_mains d.hostname)
                    ~default:Prefix_trie.empty
                in
                let now =
                  Option.value
                    (Hashtbl.find_opt pre_mains d.hostname)
                    ~default:Prefix_trie.empty
                in
                if not (main_tables_equal old now) then
                  Hashtbl.replace dirty d.hostname ())
            pre_check;
          let edges =
            (* [dirty] at this point holds exactly the hosts whose
               config (interfaces included) or pre-BGP main RIB moved
               — establish_delta's [affected] contract. *)
            Session.establish_delta devices topo
              ~reach:(Bgp.reach_of pre_mains) ~affected:dirty
              ~prev:prev.sim.Bgp.edges
          in
          let prev_in = edges_in_map prev.sim.Bgp.edges in
          let now_in = edges_in_map edges in
          List.iter
            (fun (d : Device.t) ->
              if not (Hashtbl.mem dirty d.hostname) then
                let old =
                  Option.value (Hashtbl.find_opt prev_in d.hostname) ~default:[]
                in
                let now =
                  Option.value (Hashtbl.find_opt now_in d.hostname) ~default:[]
                in
                if old <> now then Hashtbl.replace dirty d.hostname ())
            devices;
          let warm =
            {
              Bgp.w_tables = prev.sim.Bgp.bgp_ribs;
              w_dirty = dirty;
              w_main_reuse = prev.sim.Bgp.main_ribs;
              w_memo = prev.import_memo;
            }
          in
          let sim =
            Bgp.fixed_point ?max_rounds ?diags ~warm devices ~igp_ribs
              ~pre_mains ~edges
          in
          assemble reg prev.down topo sim devices)
    in
    record_metrics t dt

let update ?max_rounds ?diags prev reg =
  update_core ?max_rounds ?diags prev reg (Registry.devices reg)

let update_devices ?max_rounds ?diags prev devices =
  update_core ?max_rounds ?diags prev prev.reg devices

let registry t = t.reg
let topology t = t.topo
let rounds t = t.sim.rounds
let find_device t host =
  match Hashtbl.find_opt t.sim_devices host with
  | Some d -> d
  | None -> Registry.device t.reg host
let is_external t host = Registry.is_external t.reg host

(* Idempotent: prime once, then every [update]/[update_devices] seeded
   from [t] replays unchanged (edge, prefix) imports from the memo. The
   memo is immutable after priming, so a primed state can serve many
   parallel warm updates (one domain per mutant) without synchronization.
   Derived states come out with [import_memo = None] — re-prime them if
   they will seed further batches. *)
let prime t =
  match t.import_memo with
  | Some _ -> ()
  | None ->
      t.import_memo <-
        Some
          (Bgp.build_import_memo (find_device t) ~edges:t.sim.Bgp.edges
             ~pre_mains:t.sim.Bgp.pre_mains ~bgp_ribs:t.sim.Bgp.bgp_ribs)

let table_of tbl host =
  Option.value (Hashtbl.find_opt tbl host) ~default:Prefix_trie.empty

let main_rib t host = table_of t.sim.main_ribs host
let bgp_rib t host = table_of t.sim.bgp_ribs host
let igp_rib t host = table_of t.sim.igp_ribs host
let edges t = t.sim.edges

let edge_from t ~recv_host ~send_ip =
  Hashtbl.find_opt t.edge_index (edge_index_key ~recv_host ~send_ip)

let edges_in t host =
  List.filter (fun (e : Session.edge) -> e.recv_host = host) t.sim.edges

let edges_out t host =
  List.filter (fun (e : Session.edge) -> e.send_host = host) t.sim.edges

let main_lookup t host p = Rib.table_find p (main_rib t host)
let bgp_lookup t host p = Rib.table_find p (bgp_rib t host)

let bgp_lookup_best t host p =
  List.filter (fun (e : Rib.bgp_entry) -> e.be_best) (bgp_lookup t host p)

let igp_lookup t host p = Rib.table_find p (igp_rib t host)

let forward_env t =
  {
    Forward.find_device = (fun h -> Hashtbl.find_opt t.sim_devices h);
    main_rib = (fun h -> main_rib t h);
    topo = t.topo;
  }

let trace ?max_paths t ~src ~dst = Forward.trace ?max_paths (forward_env t) ~src ~dst

let reachable ?max_paths t ~src ~dst =
  Forward.reachable ?max_paths (forward_env t) ~src ~dst

let owner_of_ip t ip =
  Option.map
    (fun (e : Topology.endpoint) -> (e.host, e.ifname))
    (Topology.endpoint_of_ip t.topo ip)

let total_main_entries t =
  Hashtbl.fold (fun _ table acc -> acc + Rib.table_count table) t.sim.main_ribs 0

let total_bgp_entries t =
  Hashtbl.fold (fun _ table acc -> acc + Rib.table_count table) t.sim.bgp_ribs 0

let internal_hosts t =
  List.map (fun (d : Device.t) -> d.hostname) (Registry.internal_devices t.reg)

let all_hosts t =
  List.map (fun (d : Device.t) -> d.hostname) (Registry.devices t.reg)
