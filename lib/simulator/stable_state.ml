open Netcov_types
open Netcov_config

type t = {
  reg : Registry.t;
  topo : Topology.t;
  sim : Bgp.result;
  edge_index : (string, Session.edge) Hashtbl.t;
  (* devices as simulated: interface failures applied (the registry keeps
     the unmodified configurations for coverage) *)
  sim_devices : (string, Device.t) Hashtbl.t;
}

let edge_index_key ~recv_host ~send_ip =
  recv_host ^ "<-" ^ Ipv4.to_string send_ip

let apply_down down devices =
  if down = [] then devices
  else
    List.map
      (fun (d : Device.t) ->
        let failed ifname = List.mem (d.hostname, ifname) down in
        {
          d with
          Device.interfaces =
            List.map
              (fun (i : Device.interface) ->
                if failed i.if_name then
                  { i with Device.address = None; igp_enabled = false }
                else i)
              d.interfaces;
        })
      devices

module M = Netcov_obs.Metrics

(* Convergence metrics (docs/OBSERVABILITY.md). *)
let m_runs = M.counter M.default ~help:"stable-state computations" ~unit_:"runs" "sim.runs"

let m_rounds =
  M.counter M.default ~help:"BGP convergence rounds, summed over runs"
    ~unit_:"rounds" "sim.rounds"

let m_seconds =
  M.histogram M.default ~help:"wall time of one stable-state computation"
    ~unit_:"seconds" ~buckets:M.seconds_buckets "sim.seconds"

let m_rib_entries =
  M.gauge M.default ~help:"main-RIB entries in the last computed stable state"
    ~unit_:"entries" "sim.rib_entries"

let m_edges =
  M.gauge M.default ~help:"routing edges in the last computed stable state"
    ~unit_:"edges" "sim.bgp_edges"

let compute ?max_rounds ?diags ?(down = []) reg =
  let n_devices = List.length (Registry.devices reg) in
  Netcov_obs.Trace.with_span "simulate"
    ~args:[ ("devices", Netcov_obs.Trace.I n_devices) ]
  @@ fun () ->
  let t, dt =
    Netcov_obs.Timing.time (fun () ->
        let devices = apply_down down (Registry.devices reg) in
        let topo = Topology.build devices in
        let sim = Bgp.run ?max_rounds ?diags devices topo in
        let edge_index = Hashtbl.create 256 in
        List.iter
          (fun (e : Session.edge) ->
            Hashtbl.replace edge_index
              (edge_index_key ~recv_host:e.recv_host ~send_ip:e.send_ip)
              e)
          sim.edges;
        let sim_devices = Hashtbl.create 64 in
        List.iter
          (fun (d : Device.t) -> Hashtbl.replace sim_devices d.hostname d)
          devices;
        { reg; topo; sim; edge_index; sim_devices })
  in
  M.inc m_runs 1;
  M.inc m_rounds t.sim.rounds;
  M.observe m_seconds dt;
  M.set m_rib_entries
    (float_of_int
       (Hashtbl.fold (fun _ table acc -> acc + Rib.table_count table) t.sim.main_ribs 0));
  M.set m_edges (float_of_int (List.length t.sim.edges));
  t

let registry t = t.reg
let topology t = t.topo
let rounds t = t.sim.rounds
let find_device t host =
  match Hashtbl.find_opt t.sim_devices host with
  | Some d -> d
  | None -> Registry.device t.reg host
let is_external t host = Registry.is_external t.reg host

let table_of tbl host =
  Option.value (Hashtbl.find_opt tbl host) ~default:Prefix_trie.empty

let main_rib t host = table_of t.sim.main_ribs host
let bgp_rib t host = table_of t.sim.bgp_ribs host
let igp_rib t host = table_of t.sim.igp_ribs host
let edges t = t.sim.edges

let edge_from t ~recv_host ~send_ip =
  Hashtbl.find_opt t.edge_index (edge_index_key ~recv_host ~send_ip)

let edges_in t host =
  List.filter (fun (e : Session.edge) -> e.recv_host = host) t.sim.edges

let edges_out t host =
  List.filter (fun (e : Session.edge) -> e.send_host = host) t.sim.edges

let main_lookup t host p = Rib.table_find p (main_rib t host)
let bgp_lookup t host p = Rib.table_find p (bgp_rib t host)

let bgp_lookup_best t host p =
  List.filter (fun (e : Rib.bgp_entry) -> e.be_best) (bgp_lookup t host p)

let igp_lookup t host p = Rib.table_find p (igp_rib t host)

let forward_env t =
  {
    Forward.find_device = (fun h -> Hashtbl.find_opt t.sim_devices h);
    main_rib = (fun h -> main_rib t h);
    topo = t.topo;
  }

let trace ?max_paths t ~src ~dst = Forward.trace ?max_paths (forward_env t) ~src ~dst

let reachable ?max_paths t ~src ~dst =
  Forward.reachable ?max_paths (forward_env t) ~src ~dst

let owner_of_ip t ip =
  Option.map
    (fun (e : Topology.endpoint) -> (e.host, e.ifname))
    (Topology.endpoint_of_ip t.topo ip)

let total_main_entries t =
  Hashtbl.fold (fun _ table acc -> acc + Rib.table_count table) t.sim.main_ribs 0

let total_bgp_entries t =
  Hashtbl.fold (fun _ table acc -> acc + Rib.table_count table) t.sim.bgp_ribs 0

let internal_hosts t =
  List.map (fun (d : Device.t) -> d.hostname) (Registry.internal_devices t.reg)

let all_hosts t =
  List.map (fun (d : Device.t) -> d.hostname) (Registry.devices t.reg)
