(** BGP session establishment. A session comes up when both sides
    configure each other consistently and each side can reach the other's
    session address — directly for single-hop eBGP, via
    connected/static/IGP routes for multihop iBGP (§4.1's routing-edge
    facts; paths enabling a session are themselves IFG facts). *)

open Netcov_types
open Netcov_config

(** One directed routing edge: messages flow send → recv. *)
type edge = {
  send_host : string;
  send_ip : Ipv4.t;  (** session address on the sender *)
  recv_host : string;
  recv_ip : Ipv4.t;
  ebgp : bool;
  multihop : bool;  (** session addresses not on a shared subnet *)
}

val edge_key : edge -> string
val pp_edge : Format.formatter -> edge -> unit
val compare_edge : edge -> edge -> int

(** [establish devices topo pre_bgp_ribs] computes all directed edges.
    [reach host ip] must report whether [host] can reach [ip] using
    pre-BGP routes (connected / static / IGP). *)
val establish :
  Device.t list ->
  Topology.t ->
  reach:(string -> Ipv4.t -> bool) ->
  edge list

(** [establish_delta devices topo ~reach ~affected ~prev] recomputes
    {!establish} incrementally for a warm update: [affected] holds every
    host whose device configuration (including interfaces — so any host
    whose topology endpoints moved), or pre-BGP reachability differs
    from the run that produced the [prev] edges. Only the affected
    hosts, the hosts whose neighbor statements point at an interface an
    affected host owns, and the previous receivers of affected senders
    are rescanned; everything else carries over. The result equals a
    full [establish devices topo ~reach]. *)
val establish_delta :
  Device.t list ->
  Topology.t ->
  reach:(string -> Ipv4.t -> bool) ->
  affected:(string, unit) Hashtbl.t ->
  prev:edge list ->
  edge list

(** Config lookups for an edge. *)

(** The receiver-side neighbor statement matching the sender's address. *)
val recv_neighbor : Device.t -> edge -> Device.neighbor option

(** The sender-side neighbor statement matching the receiver's address. *)
val send_neighbor : Device.t -> edge -> Device.neighbor option
