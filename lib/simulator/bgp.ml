open Netcov_types
open Netcov_config
open Netcov_policy

let src = Logs.Src.create "netcov.sim.bgp" ~doc:"BGP fixed point"

module Log = (val Logs.src_log src : Logs.LOG)

type find_device = string -> Device.t

let self_next_hop = Ipv4.zero

(* ------------------------------------------------------------------ *)
(* Targeted simulations                                                *)
(* ------------------------------------------------------------------ *)

let is_local_source (s : Rib.bgp_source) =
  match s with
  | Rib.Learned _ -> false
  | Rib.From_network | Rib.From_aggregate | Rib.From_redistribute _ -> true

(* Was the entry learned from a neighbor the sender treats as a
   route-reflector client? *)
let learned_from_client (sd : Device.t) (entry : Rib.bgp_entry) =
  match (entry.be_source, sd.bgp) with
  | Rib.Learned ip, Some b ->
      List.exists
        (fun (n : Device.neighbor) -> Ipv4.equal n.nb_ip ip && n.nb_rr_client)
        b.neighbors
  | _, _ -> false

let exportable (sd : Device.t) (nb : Device.neighbor) (e : Session.edge)
    (entry : Rib.bgp_entry) =
  (* iBGP rule: routes learned from an iBGP peer are not re-advertised
     to iBGP peers (full mesh), unless the sender is a route reflector:
     anything may be reflected to a client, and client routes may be
     reflected to every iBGP peer. *)
  let ibgp_learned =
    (not entry.be_from_ebgp)
    && match entry.be_source with Rib.Learned _ -> true | _ -> false
  in
  let ibgp_rule =
    e.ebgp || (not ibgp_learned) || nb.nb_rr_client
    || learned_from_client sd entry
  in
  let no_export_rule =
    not (e.ebgp && Route.has_community entry.be_route Community.no_export)
  in
  ibgp_rule && no_export_rule

(* summary-only aggregation suppresses the advertisement of strictly
   more specific prefixes (the aggregate itself is advertised). *)
let suppressed_by_summary (b : Device.bgp_config) (entry : Rib.bgp_entry) =
  entry.be_source <> Rib.From_aggregate
  && List.exists
       (fun (a : Device.aggregate) ->
         a.ag_summary_only
         && Prefix.subsumes a.ag_prefix entry.be_route.Route.prefix
         && Prefix.len entry.be_route.Route.prefix > Prefix.len a.ag_prefix)
       b.aggregates

(* Default chain evaluator: the raw policy engine. The coverage core
   substitutes a memoizing wrapper via [?eval]. *)
let default_eval : Eval.chain_eval =
 fun d ~chain ~default ~protocol route ->
  Eval.run_chain d ~chain ~default ~protocol route

let export_route ?(eval = default_eval) (find_device : find_device)
    (e : Session.edge) (entry : Rib.bgp_entry) =
  let sd = find_device e.send_host in
  match (Session.send_neighbor sd e, sd.bgp) with
  | None, _ | _, None -> (None, [])
  | Some nb, _ when not (exportable sd nb e entry) -> (None, [])
  | Some _, Some b when suppressed_by_summary b entry -> (None, [])
  | Some nb, Some b -> (
        let chain = Device.neighbor_export sd nb in
        let { Eval.verdict; route; exercised } =
          eval sd ~chain ~default:Eval.Accepted ~protocol:Route.Bgp
            entry.be_route
        in
        match (verdict, route) with
        | Eval.Rejected, _ | _, None -> (None, exercised)
        | Eval.Accepted, Some r ->
            let r =
              if e.ebgp then
                {
                  r with
                  Route.as_path = As_path.prepend b.local_as r.as_path;
                  next_hop = e.send_ip;
                  cluster_len = 0;
                }
              else
                (* reflecting an iBGP-learned route grows CLUSTER_LIST *)
                let reflected =
                  (not entry.be_from_ebgp)
                  &&
                  match entry.be_source with
                  | Rib.Learned _ -> true
                  | _ -> false
                in
                let r =
                  if reflected then
                    { r with Route.cluster_len = r.Route.cluster_len + 1 }
                  else r
                in
                if nb.nb_next_hop_self || Ipv4.equal r.Route.next_hop self_next_hop
                then { r with Route.next_hop = e.send_ip }
                else r
            in
            (Some r, exercised))

let import_route ?(eval = default_eval) (find_device : find_device)
    (e : Session.edge) (msg : Route.bgp) =
  let rd = find_device e.recv_host in
  match (Session.recv_neighbor rd e, rd.bgp) with
  | None, _ | _, None -> (None, [])
  | Some nb, Some b -> (
      if e.ebgp && As_path.mem b.local_as msg.Route.as_path then (None, [])
      else
        let msg =
          if e.ebgp then
            let lp =
              match Device.neighbor_group rd nb with
              | Some g -> Option.value g.pg_local_pref ~default:Route.default_local_pref
              | None -> Route.default_local_pref
            in
            { msg with Route.local_pref = lp }
          else msg
        in
        let chain = Device.neighbor_import rd nb in
        let { Eval.verdict; route; exercised } =
          eval rd ~chain ~default:Eval.Accepted ~protocol:Route.Bgp msg
        in
        match (verdict, route) with
        | Eval.Rejected, _ | _, None -> (None, exercised)
        | Eval.Accepted, Some r -> (Some r, exercised))

let redistribute_route ?(eval = default_eval) (find_device : find_device) host
    (rd : Device.redistribute) (me : Rib.main_entry) =
  let d = find_device host in
  let base =
    {
      (Route.originate me.Rib.me_prefix ~next_hop:self_next_hop) with
      Route.origin = Route.Origin_incomplete;
    }
  in
  match rd.rd_policy with
  | None -> (Some base, [])
  | Some pol -> (
      let { Eval.verdict; route; exercised } =
        eval d ~chain:[ pol ] ~default:Eval.Rejected
          ~protocol:me.Rib.me_protocol base
      in
      match (verdict, route) with
      | Eval.Rejected, _ | _, None -> (None, exercised)
      | Eval.Accepted, Some r -> (Some r, exercised))

(* ------------------------------------------------------------------ *)
(* Best-path selection                                                 *)
(* ------------------------------------------------------------------ *)

let preference_compare (a : Rib.bgp_entry) (b : Rib.bgp_entry) =
  let local e = if is_local_source e.Rib.be_source then 0 else 1 in
  let cmps =
    [
      (fun () -> Int.compare (local a) (local b));
      (fun () ->
        Int.compare b.be_route.Route.local_pref a.be_route.Route.local_pref);
      (fun () ->
        Int.compare
          (As_path.length a.be_route.Route.as_path)
          (As_path.length b.be_route.Route.as_path));
      (fun () ->
        Int.compare
          (Route.origin_rank a.be_route.Route.origin)
          (Route.origin_rank b.be_route.Route.origin));
      (fun () -> Int.compare a.be_route.Route.med b.be_route.Route.med);
      (fun () ->
        Bool.compare (not a.be_from_ebgp) (not b.be_from_ebgp));
      (fun () ->
        Int.compare a.be_route.Route.cluster_len b.be_route.Route.cluster_len);
      (fun () -> Int.compare a.be_igp_cost b.be_igp_cost);
      (fun () -> Ipv4.compare a.be_peer_id b.be_peer_id);
    ]
  in
  let rec go = function
    | [] -> 0
    | f :: rest -> ( match f () with 0 -> go rest | c -> c)
  in
  go cmps

(* Multipath-eligible with the winner: equal through the IGP-cost step
   (everything except the final peer-id tie break). *)
let multipath_equal (a : Rib.bgp_entry) (b : Rib.bgp_entry) =
  is_local_source a.Rib.be_source = is_local_source b.Rib.be_source
  && a.be_route.Route.local_pref = b.be_route.Route.local_pref
  && As_path.length a.be_route.Route.as_path
     = As_path.length b.be_route.Route.as_path
  && Route.origin_rank a.be_route.Route.origin
     = Route.origin_rank b.be_route.Route.origin
  && a.be_route.Route.med = b.be_route.Route.med
  && a.be_from_ebgp = b.be_from_ebgp
  && a.be_route.Route.cluster_len = b.be_route.Route.cluster_len
  && a.be_igp_cost = b.be_igp_cost

let select_best ~multipath entries =
  match List.sort preference_compare entries with
  | [] -> []
  | winner :: _ as sorted ->
      let n_best = ref 0 in
      List.map
        (fun e ->
          let best =
            !n_best < max 1 multipath && multipath_equal winner e
          in
          if best then incr n_best;
          { e with Rib.be_best = best })
        sorted

(* Canonical selected group for one prefix. The [sort_uniq] on the way
   in makes selection independent of candidate arrival order (a
   sender's several ECMP best paths export as identical messages:
   deduplicating keeps duplicates from consuming the multipath
   budget); the one on the way out canonicalizes the stored group so
   structural comparison is meaningful. *)
let select_group (b : Device.bgp_config) entries =
  select_best ~multipath:b.multipath
    (List.sort_uniq Rib.compare_bgp_entry entries)
  |> List.sort_uniq Rib.compare_bgp_entry

let groups_equal xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun x y -> Rib.compare_bgp_entry x y = 0) xs ys

(* A prefix set keyed by canonical text. *)
type pset = (string, Prefix.t) Hashtbl.t

let pset_add (s : pset) p = Hashtbl.replace s (Prefix.to_string p) p

(* Prefixes at which the two tables' groups differ. *)
let bgp_tables_diff a b : pset =
  let acc = Hashtbl.create 8 in
  Prefix_trie.iter
    (fun p xs ->
      match Prefix_trie.find_opt p b with
      | None -> pset_add acc p
      | Some ys -> if not (groups_equal xs ys) then pset_add acc p)
    a;
  Prefix_trie.iter
    (fun p _ -> if not (Prefix_trie.mem p a) then pset_add acc p)
    b;
  acc

(* ------------------------------------------------------------------ *)
(* Fixed point                                                         *)
(* ------------------------------------------------------------------ *)

type result = {
  bgp_ribs : (string, Rib.bgp_entry Rib.table) Hashtbl.t;
  main_ribs : (string, Rib.main_entry Rib.table) Hashtbl.t;
  igp_ribs : (string, Rib.igp_entry Rib.table) Hashtbl.t;
  pre_mains : (string, Rib.main_entry Rib.table) Hashtbl.t;
  edges : Session.edge list;
  rounds : int;
}

let connected_entries (d : Device.t) =
  List.map
    (fun ((i : Device.interface), p) ->
      {
        Rib.me_prefix = p;
        me_nexthop = Rib.Nh_connected i.if_name;
        me_protocol = Route.Connected;
        me_metric = 0;
      })
    (Device.connected_prefixes d)

let static_entries (d : Device.t) =
  List.map
    (fun (s : Device.static_route) ->
      {
        Rib.me_prefix = s.st_prefix;
        me_nexthop = Rib.Nh_ip s.st_next_hop;
        me_protocol = Route.Static;
        me_metric = 0;
      })
    d.static_routes

let igp_entries table =
  List.map
    (fun (_, (e : Rib.igp_entry)) ->
      {
        Rib.me_prefix = e.ie_prefix;
        me_nexthop = Rib.Nh_ip e.ie_nexthop;
        me_protocol = Route.Igp;
        me_metric = e.ie_cost;
      })
    (Rib.table_entries table)

(* Keep only the best-protocol entries of one prefix's group,
   deduplicated. A pure per-group function: [normalize_main] maps it
   over a whole table, [patch_main] applies it to single groups. *)
let normalize_group entries =
  match List.sort_uniq Rib.compare_main entries with
  | [] -> []
  | sorted ->
      let best_proto =
        List.fold_left
          (fun acc (e : Rib.main_entry) ->
            if Route.compare_protocol e.me_protocol acc < 0 then e.me_protocol
            else acc)
          Route.Bgp sorted
      in
      List.filter (fun (e : Rib.main_entry) -> e.me_protocol = best_proto) sorted

let normalize_main table = Prefix_trie.map normalize_group table

(* Pre-BGP main RIB: connected beats static beats IGP per prefix. *)
let pre_bgp_main (d : Device.t) igp_table =
  let all = connected_entries d @ static_entries d @ igp_entries igp_table in
  List.fold_left
    (fun t (e : Rib.main_entry) -> Rib.table_add e.me_prefix e t)
    Prefix_trie.empty all
  |> normalize_main

let igp_cost_to main_rib ip =
  if Ipv4.equal ip self_next_hop then 0
  else
    match Rib.table_longest_match ip main_rib with
    | Some (_, e :: _) -> e.Rib.me_metric
    | Some (_, []) | None -> 0

(* The per-(edge, prefix-group) import pipeline: the sender's best
   entries, filtered and transformed by the export then import
   simulations, as receiver-side candidate entries. *)
let import_candidates (find_device : find_device) (e : Session.edge) ~pre_main
    sender_entries =
  List.filter_map
    (fun (se : Rib.bgp_entry) ->
      if not se.be_best then None
      else
        match export_route find_device e se with
        | None, _ -> None
        | Some msg, _ -> (
            match import_route find_device e msg with
            | None, _ -> None
            | Some r, _ ->
                Some
                  {
                    Rib.be_route = r;
                    be_source = Rib.Learned e.send_ip;
                    be_from_ebgp = e.ebgp;
                    be_igp_cost = igp_cost_to pre_main r.Route.next_hop;
                    be_peer_id = e.send_ip;
                    be_best = false;
                  }))
    sender_entries

(* Memo of [import_candidates], two-level — edge key, then canonical
   prefix text — carrying the sender group each entry was computed
   from. A lookup is valid only when the current group is
   {e physically} the stored one ([==]): that holds exactly for groups
   untouched since the memo's state, because the warm iteration
   splices recomputed prefixes and structurally shares the rest. The
   caller additionally gates on the warm dirty seed so both endpoints'
   configurations and the receiver's pre-BGP main RIB match prime
   time. Two levels keep the hot path allocation-free: the edge key is
   built once per edge, and the scope iteration already carries the
   prefix text. *)
type import_memo =
  ( string,
    (string, Rib.bgp_entry list * Rib.bgp_entry list) Hashtbl.t )
  Hashtbl.t

(* Prime a memo from a converged state: one [import_candidates] per
   (edge, sender prefix) — about one round's worth of policy work, paid
   once and read by every warm replay seeded from this state. *)
let build_import_memo (find_device : find_device) ~edges ~pre_mains ~bgp_ribs :
    import_memo =
  let memo : import_memo = Hashtbl.create 1024 in
  List.iter
    (fun (e : Session.edge) ->
      let pre_main =
        Option.value
          (Hashtbl.find_opt pre_mains e.Session.recv_host)
          ~default:Prefix_trie.empty
      in
      match Hashtbl.find_opt bgp_ribs e.Session.send_host with
      | None -> ()
      | Some sender_table ->
          let inner = Hashtbl.create 64 in
          Prefix_trie.iter
            (fun p group ->
              Hashtbl.replace inner (Prefix.to_string p)
                (group, import_candidates find_device e ~pre_main group))
            sender_table;
          Hashtbl.replace memo (Session.edge_key e) inner)
    edges;
  memo

(* One synchronous round for one host: local origination + imports from
   the previous round's sender states. *)
let host_round (find_device : find_device) (d : Device.t) ~edges_in
    ~(prev_bgp : string -> Rib.bgp_entry Rib.table) ~pre_main =
  match d.bgp with
  | None -> Prefix_trie.empty
  | Some b ->
      let entries = ref [] in
      let push e = entries := e :: !entries in
      (* network statements: pull exact main-RIB entries into BGP *)
      List.iter
        (fun p ->
          match Rib.table_find p pre_main with
          | [] -> ()
          | me :: _ ->
              if me.Rib.me_protocol <> Route.Bgp then
                push
                  {
                    Rib.be_route = Route.originate p ~next_hop:self_next_hop;
                    be_source = Rib.From_network;
                    be_from_ebgp = false;
                    be_igp_cost = 0;
                    be_peer_id = b.router_id;
                    be_best = false;
                  })
        b.networks;
      (* redistribution *)
      List.iter
        (fun (rd : Device.redistribute) ->
          List.iter
            (fun (_, (me : Rib.main_entry)) ->
              if me.me_protocol = rd.rd_from then
                match redistribute_route find_device d.hostname rd me with
                | Some r, _ ->
                    push
                      {
                        Rib.be_route = r;
                        be_source = Rib.From_redistribute rd.rd_from;
                        be_from_ebgp = false;
                        be_igp_cost = 0;
                        be_peer_id = b.router_id;
                        be_best = false;
                      }
                | None, _ -> ())
            (Rib.table_entries pre_main))
        b.redistributes;
      (* imports over established edges (sender state from previous round) *)
      List.iter
        (fun (e : Session.edge) ->
          (* All the sender's current best routes, filtered and
             transformed by the export simulation. *)
          Prefix_trie.iter
            (fun _ sender_entries ->
              List.iter push
                (import_candidates find_device e ~pre_main sender_entries))
            (prev_bgp e.send_host))
        edges_in;
      (* aggregates: active iff a strictly more specific BGP entry
         exists among what we have so far *)
      let base = !entries in
      List.iter
        (fun (a : Device.aggregate) ->
          let has_contributor =
            List.exists
              (fun (e : Rib.bgp_entry) ->
                Prefix.subsumes a.ag_prefix e.be_route.Route.prefix
                && Prefix.len e.be_route.Route.prefix > Prefix.len a.ag_prefix)
              base
          in
          if has_contributor then
            push
              {
                Rib.be_route =
                  {
                    (Route.originate a.ag_prefix ~next_hop:self_next_hop) with
                    Route.origin = Route.Origin_incomplete;
                  };
                be_source = Rib.From_aggregate;
                be_from_ebgp = false;
                be_igp_cost = 0;
                be_peer_id = b.router_id;
                be_best = false;
              })
        b.aggregates;
      (* group by prefix, select best *)
      let by_prefix = Hashtbl.create 64 in
      List.iter
        (fun (e : Rib.bgp_entry) ->
          let k = Prefix.to_string e.be_route.Route.prefix in
          let cur = Option.value (Hashtbl.find_opt by_prefix k) ~default:[] in
          Hashtbl.replace by_prefix k (e :: cur))
        !entries;
      Hashtbl.fold
        (fun _ es table ->
          match es with
          | [] -> table
          | first :: _ ->
              Prefix_trie.add first.Rib.be_route.Route.prefix
                (select_group b es) table)
        by_prefix Prefix_trie.empty

(* Scoped variant of [host_round] for warm starts: recompute only the
   groups at the [scope] prefixes and splice them into [prev_self],
   the host's previous-round table. Exact because a prefix's group is
   a per-prefix function of the round's inputs — local origination at
   p, each in-sender's previous-round group at p (export and import
   transforms never rewrite a route's prefix), and best-path selection
   within the group. Aggregates are the one cross-prefix coupling
   (their activation scans contributors under the aggregate prefix),
   so a host configured with any aggregate takes the full round. *)
let host_round_scoped (find_device : find_device) (d : Device.t) ~edges_in
    ~(prev_bgp : string -> Rib.bgp_entry Rib.table) ~pre_main ~(scope : pset)
    ~prev_self ~base_self ~self_clean
    ~(memo : (import_memo * (Session.edge -> bool)) option) =
  match d.bgp with
  | None -> Prefix_trie.empty
  | Some b when b.aggregates <> [] ->
      host_round find_device d ~edges_in ~prev_bgp ~pre_main
  | Some b ->
      let in_scope p = Hashtbl.mem scope (Prefix.to_string p) in
      let fresh : (string, Rib.bgp_entry list) Hashtbl.t = Hashtbl.create 16 in
      let push (e : Rib.bgp_entry) =
        let k = Prefix.to_string e.be_route.Route.prefix in
        let cur = Option.value (Hashtbl.find_opt fresh k) ~default:[] in
        Hashtbl.replace fresh k (e :: cur)
      in
      List.iter
        (fun p ->
          if in_scope p then
            match Rib.table_find p pre_main with
            | [] -> ()
            | me :: _ ->
                if me.Rib.me_protocol <> Route.Bgp then
                  push
                    {
                      Rib.be_route = Route.originate p ~next_hop:self_next_hop;
                      be_source = Rib.From_network;
                      be_from_ebgp = false;
                      be_igp_cost = 0;
                      be_peer_id = b.router_id;
                      be_best = false;
                    })
        b.networks;
      List.iter
        (fun (rd : Device.redistribute) ->
          List.iter
            (fun (_, (me : Rib.main_entry)) ->
              if in_scope me.me_prefix && me.me_protocol = rd.rd_from then
                match redistribute_route find_device d.hostname rd me with
                | Some r, _ ->
                    push
                      {
                        Rib.be_route = r;
                        be_source = Rib.From_redistribute rd.rd_from;
                        be_from_ebgp = false;
                        be_igp_cost = 0;
                        be_peer_id = b.router_id;
                        be_best = false;
                      }
                | None, _ -> ())
            (Rib.table_entries pre_main))
        b.redistributes;
      (* Per-edge context, resolved once per round: the sender's table,
         the memo's inner (prefix → candidates) table, and whether the
         memo admits the edge (both endpoints outside the dirty seed,
         so configurations and the receiver's pre-BGP main RIB match
         prime time). *)
      let edge_ctxs =
        List.map
          (fun (e : Session.edge) ->
            let inner, admit =
              match memo with
              | Some (m, admits) ->
                  (Hashtbl.find_opt m (Session.edge_key e), admits e)
              | None -> (None, false)
            in
            (e, prev_bgp e.send_host, inner, admit))
          edges_in
      in
      Hashtbl.fold
        (fun k p table ->
          (* [stable] tracks whether every input at this prefix provably
             equals the memo's baseline: the host's own previous group
             is physically the baseline one, and each edge contributes
             either a verbatim memo hit or candidates structurally equal
             to the cached ones. Local origination cannot diverge when
             [self_clean] — the host is outside the dirty seed, so its
             configuration and pre-BGP main RIB are unchanged (a seeded
             host reached here via later-round table dirt forfeits the
             shortcut). When stable, the previous binding IS this
             round's output: skip selection and keep the table untouched
             (preserving physical identity for downstream memo hits). *)
          let stable =
            ref
              (self_clean
              && Rib.table_find p prev_self == Rib.table_find p base_self)
          in
          let cands =
            ref (Option.value (Hashtbl.find_opt fresh k) ~default:[])
          in
          List.iter
            (fun ((e : Session.edge), sender_table, inner, admit) ->
              let group = Rib.table_find p sender_table in
              let cs =
                match inner with
                | None ->
                    stable := false;
                    import_candidates find_device e ~pre_main group
                | Some t -> (
                    match Hashtbl.find_opt t k with
                    | Some (g0, cached) when admit && g0 == group -> cached
                    | Some (_, cached) ->
                        let cs =
                          import_candidates find_device e ~pre_main group
                        in
                        if !stable && not (groups_equal cs cached) then
                          stable := false;
                        cs
                    | None ->
                        (* no baseline binding: the edge contributed
                           nothing at prime time *)
                        let cs =
                          import_candidates find_device e ~pre_main group
                        in
                        if cs <> [] then stable := false;
                        cs)
              in
              if cs <> [] then cands := cs @ !cands)
            edge_ctxs;
          if !stable then table
          else
            match !cands with
            | [] -> Prefix_trie.remove p table
            | es -> Prefix_trie.add p (select_group b es) table)
        scope prev_self

(* The main-RIB entries one prefix's BGP group installs: the best
   learned routes as next-hop entries, aggregates as discard routes,
   deduplicated and capped by the multipath budget. Locally originated
   network/redistributed entries do not re-install (their source routes
   are already present). *)
let bgp_installs ~multipath p entries =
  let best = List.filter (fun (e : Rib.bgp_entry) -> e.be_best) entries in
  let installs =
    List.filter_map
      (fun (e : Rib.bgp_entry) ->
        match e.be_source with
        | Rib.Learned _ ->
            Some
              {
                Rib.me_prefix = p;
                me_nexthop = Rib.Nh_ip e.be_route.Route.next_hop;
                me_protocol = Route.Bgp;
                me_metric = 0;
              }
        | Rib.From_aggregate ->
            Some
              {
                Rib.me_prefix = p;
                me_nexthop = Rib.Nh_discard;
                me_protocol = Route.Bgp;
                me_metric = 0;
              }
        | Rib.From_network | Rib.From_redistribute _ -> None)
      best
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  take (max 1 multipath) (List.sort_uniq Rib.compare_main installs)

(* Install BGP best routes into the pre-BGP main RIB. *)
let build_main (d : Device.t) pre_main bgp_table =
  let multipath = match d.bgp with Some b -> b.multipath | None -> 1 in
  Prefix_trie.fold
    (fun p entries table ->
      let existing = Rib.table_find p table in
      let has_better =
        List.exists
          (fun (e : Rib.main_entry) -> e.me_protocol <> Route.Bgp)
          existing
      in
      if has_better then table
      else
        let installs = bgp_installs ~multipath p entries in
        if installs = [] then table else Prefix_trie.add p installs table)
    bgp_table pre_main

(* Incremental [build_main] for warm starts: [old_main] was built from
   the {e same} [pre_main] (the warm contract marks any host whose
   pre-BGP main RIB moved as fully dirty, and those rebuild from
   scratch) and the baseline BGP table, which differs from [bgp_table]
   at most at the [changed] prefixes. Each main group is a per-prefix
   function of pre_main@p and the BGP group at p, so patching exactly
   those prefixes reproduces [build_main]'s output. *)
let patch_main (d : Device.t) pre_main bgp_table ~changed ~old_main =
  let multipath = match d.bgp with Some b -> b.multipath | None -> 1 in
  Hashtbl.fold
    (fun _ p table ->
      let pre = normalize_group (Rib.table_find p pre_main) in
      let has_better =
        List.exists (fun (e : Rib.main_entry) -> e.me_protocol <> Route.Bgp) pre
      in
      let group =
        if has_better then pre
        else
          match bgp_installs ~multipath p (Rib.table_find p bgp_table) with
          | [] -> pre
          | installs -> installs
      in
      if group = [] then Prefix_trie.remove p table
      else Prefix_trie.add p group table)
    changed old_main

let compute_pre_mains devices igp_ribs =
  let igp_of h =
    Option.value (Hashtbl.find_opt igp_ribs h) ~default:Prefix_trie.empty
  in
  let pre_mains = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      Hashtbl.replace pre_mains d.hostname (pre_bgp_main d (igp_of d.hostname)))
    devices;
  pre_mains

let reach_of pre_mains host ip =
  match Hashtbl.find_opt pre_mains host with
  | None -> false
  | Some t -> Rib.table_longest_match ip t <> None

type warm = {
  w_tables : (string, Rib.bgp_entry Rib.table) Hashtbl.t;
  w_dirty : (string, unit) Hashtbl.t;
  w_main_reuse : (string, Rib.main_entry Rib.table) Hashtbl.t;
  w_memo : import_memo option;
      (** import memo primed from the state that produced [w_tables];
          read-only here (misses recompute, never populate) *)
}

let fixed_point ?(max_rounds = 64) ?diags ?warm devices ~igp_ribs ~pre_mains
    ~edges =
  let dev_tbl = Hashtbl.create 64 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace dev_tbl d.hostname d) devices;
  let find_device h =
    match Hashtbl.find_opt dev_tbl h with
    | Some d -> d
    | None -> (
        match diags with
        | None -> invalid_arg ("Bgp.run: unknown device " ^ h)
        | Some sink ->
            (* Degrade: report once, then stand in an external stub so
               the session's routes simply stop propagating there. *)
            sink
              (Netcov_diag.Diag.error ~device:h Netcov_diag.Diag.Unknown_host
                 (Printf.sprintf
                    "unknown device %s: substituting an external stub" h));
            let stub = Device.make ~is_external:true h in
            Hashtbl.replace dev_tbl h stub;
            stub)
  in
  let edges_in_of = Hashtbl.create 64 in
  List.iter
    (fun (e : Session.edge) ->
      let cur = Option.value (Hashtbl.find_opt edges_in_of e.recv_host) ~default:[] in
      Hashtbl.replace edges_in_of e.recv_host (cur @ [ e ]))
    edges;
  let bgp_state = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      let init =
        match warm with
        | None -> Prefix_trie.empty
        | Some w ->
            Option.value
              (Hashtbl.find_opt w.w_tables d.hostname)
              ~default:Prefix_trie.empty
      in
      Hashtbl.replace bgp_state d.hostname init)
    devices;
  let rounds = ref 0 in
  (* Dirty-host convergence: a host's round output is a pure function
     of its pre-BGP main RIB and its in-edge senders' previous-round
     tables, so only hosts with a sender in last round's changed set
     can produce a different table this round. [dirty] holds last
     round's changed hosts (initially every host, standing in for the
     transition into the empty initial state); hosts without a dirty
     sender keep their tables without recomputation or recomparison.
     Round counts — including the final confirming round — match the
     recompute-everything loop exactly.

     A [warm] start replays only the affected cone of an edit: the
     iteration is seeded with a previous fixed point's tables, and
     [w_dirty] names the hosts whose round {e function} changed (their
     device configuration, pre-BGP main RIB, or in-edge set differs
     from the run that produced [w_tables]). The first round then
     recomputes the dirty hosts themselves {e and} every receiver of a
     dirty sender — the receivers' imports re-evaluate the dirty
     sender's new export configuration even when that sender's own
     table is unchanged — after which ordinary dirty propagation takes
     over. Hosts outside the cone keep their tables untouched. The
     result is a fixed point of the new network; it matches a
     from-scratch run whenever the synchronous iteration's fixed point
     is unique (differentially enforced by the mutation smoke gate and
     the [mutation-falsifiability] oracle). *)
  (* [None] = the host's round function changed (recompute it in full);
     [Some ps] = only its table changed, at exactly the [ps] prefixes. *)
  let dirty : (string, pset option) Hashtbl.t = Hashtbl.create 64 in
  (match warm with
  | None ->
      List.iter
        (fun (d : Device.t) -> Hashtbl.replace dirty d.hostname None)
        devices
  | Some w -> Hashtbl.iter (fun h () -> Hashtbl.replace dirty h None) w.w_dirty);
  (* Hosts whose table may differ from the warm-start tables, with the
     union of their changed prefixes across rounds ([None] = unbounded:
     the seeded dirty hosts), for main-RIB patching below. *)
  (* Memo admission: the cached import is replayable only when neither
     endpoint is in the dirty seed — seeded hosts may differ from the
     memo's state in configuration, pre-BGP main RIB, or edge
     attributes. [w_dirty] is never mutated here, so the gate stays
     valid across rounds. *)
  let memo =
    match warm with
    | None -> None
    | Some { w_memo = None; _ } -> None
    | Some ({ w_memo = Some m; _ } as w) ->
        let admits (e : Session.edge) =
          (not (Hashtbl.mem w.w_dirty e.Session.send_host))
          && not (Hashtbl.mem w.w_dirty e.Session.recv_host)
        in
        Some (m, admits)
  in
  let touched : (string, pset option) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun h _ -> Hashtbl.replace touched h None) dirty;
  let touch h (ps : pset) =
    match Hashtbl.find_opt touched h with
    | Some None -> ()
    | Some (Some acc) -> Hashtbl.iter (fun k p -> Hashtbl.replace acc k p) ps
    | None -> Hashtbl.replace touched h (Some (Hashtbl.copy ps))
  in
  let first = ref true in
  while Hashtbl.length dirty > 0 && !rounds < max_rounds do
    incr rounds;
    Netcov_obs.Trace.with_span "sim.bgp.round"
      ~args:
        [
          ("round", Netcov_obs.Trace.I !rounds);
          ("dirty", Netcov_obs.Trace.I (Hashtbl.length dirty));
        ]
    @@ fun () ->
    let prev_bgp h =
      Option.value (Hashtbl.find_opt bgp_state h) ~default:Prefix_trie.empty
    in
    let edges_in_of_host h =
      Option.value (Hashtbl.find_opt edges_in_of h) ~default:[]
    in
    let has_dirty_sender (d : Device.t) =
      List.exists
        (fun (e : Session.edge) -> Hashtbl.mem dirty e.send_host)
        (edges_in_of_host d.hostname)
    in
    let targets =
      if !first then
        match warm with
        | None -> devices
        | Some _ ->
            List.filter
              (fun (d : Device.t) ->
                Hashtbl.mem dirty d.hostname || has_dirty_sender d)
              devices
      else List.filter has_dirty_sender devices
    in
    first := false;
    (* In a warm run a clean target re-imports only the prefixes its
       dirty senders changed. A fully-dirty sender contributes every
       prefix of its previous-round table: this round reads exactly
       that table, and any prefixes its own recomputation adds arrive
       through next round's diff. Scratch runs (and the dirty hosts
       themselves) take the full round. *)
    let scope_of (d : Device.t) : pset option =
      match warm with
      | None -> None
      | Some _ ->
          if
            match Hashtbl.find_opt dirty d.hostname with
            | Some None -> true
            | _ -> false
          then None
          else begin
            let acc : pset = Hashtbl.create 32 in
            List.iter
              (fun (e : Session.edge) ->
                match Hashtbl.find_opt dirty e.send_host with
                | None -> ()
                | Some (Some ps) ->
                    Hashtbl.iter (fun k p -> Hashtbl.replace acc k p) ps
                | Some None ->
                    Prefix_trie.iter
                      (fun p _ -> pset_add acc p)
                      (prev_bgp e.send_host))
              (edges_in_of_host d.hostname);
            Some acc
          end
    in
    let next =
      List.map
        (fun (d : Device.t) ->
          let edges_in = edges_in_of_host d.hostname in
          let pre_main = Hashtbl.find pre_mains d.hostname in
          let scope = scope_of d in
          let table =
            match scope with
            | None -> host_round find_device d ~edges_in ~prev_bgp ~pre_main
            | Some scope ->
                let base_self, self_clean =
                  match warm with
                  | Some w ->
                      ( Option.value
                          (Hashtbl.find_opt w.w_tables d.hostname)
                          ~default:Prefix_trie.empty,
                        not (Hashtbl.mem w.w_dirty d.hostname) )
                  | None -> (Prefix_trie.empty, false)
                in
                host_round_scoped find_device d ~edges_in ~prev_bgp ~pre_main
                  ~scope ~prev_self:(prev_bgp d.hostname) ~base_self
                  ~self_clean ~memo
          in
          (d.hostname, scope, table))
        targets
    in
    Hashtbl.reset dirty;
    List.iter
      (fun (h, scope, table) ->
        let changed =
          match scope with
          | None -> bgp_tables_diff table (prev_bgp h)
          | Some scope ->
              (* only the scoped groups can have moved *)
              let acc = Hashtbl.create 8 in
              Hashtbl.iter
                (fun k p ->
                  if
                    not
                      (groups_equal (Rib.table_find p table)
                         (Rib.table_find p (prev_bgp h)))
                  then Hashtbl.replace acc k p)
                scope;
              acc
        in
        if Hashtbl.length changed > 0 then begin
          Hashtbl.replace dirty h (Some changed);
          touch h changed
        end)
      next;
    List.iter (fun (h, _, table) -> Hashtbl.replace bgp_state h table) next
  done;
  if Hashtbl.length dirty > 0 then
    Log.warn (fun m -> m "BGP did not converge after %d rounds" max_rounds);
  let main_ribs = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      let rebuild () =
        let pre_main = normalize_main (Hashtbl.find pre_mains d.hostname) in
        build_main d pre_main (Hashtbl.find bgp_state d.hostname)
      in
      let table =
        match warm with
        | None -> rebuild ()
        | Some w -> (
            match Hashtbl.find_opt touched d.hostname with
            | None -> (
                match Hashtbl.find_opt w.w_main_reuse d.hostname with
                | Some t -> t
                | None -> rebuild ())
            | Some None -> rebuild ()
            | Some (Some changed) -> (
                match Hashtbl.find_opt w.w_main_reuse d.hostname with
                | Some old_main ->
                    patch_main d
                      (Hashtbl.find pre_mains d.hostname)
                      (Hashtbl.find bgp_state d.hostname)
                      ~changed ~old_main
                | None -> rebuild ()))
      in
      Hashtbl.replace main_ribs d.hostname table)
    devices;
  { bgp_ribs = bgp_state; main_ribs; igp_ribs; pre_mains; edges; rounds = !rounds }

let run ?max_rounds ?diags devices topo =
  let igp_ribs = Igp.compute devices topo in
  let pre_mains = compute_pre_mains devices igp_ribs in
  let edges = Session.establish devices topo ~reach:(reach_of pre_mains) in
  fixed_point ?max_rounds ?diags devices ~igp_ribs ~pre_mains ~edges
