open Netcov_types
open Netcov_config
open Netcov_policy

let src = Logs.Src.create "netcov.sim.bgp" ~doc:"BGP fixed point"

module Log = (val Logs.src_log src : Logs.LOG)

type find_device = string -> Device.t

let self_next_hop = Ipv4.zero

(* ------------------------------------------------------------------ *)
(* Targeted simulations                                                *)
(* ------------------------------------------------------------------ *)

let is_local_source (s : Rib.bgp_source) =
  match s with
  | Rib.Learned _ -> false
  | Rib.From_network | Rib.From_aggregate | Rib.From_redistribute _ -> true

(* Was the entry learned from a neighbor the sender treats as a
   route-reflector client? *)
let learned_from_client (sd : Device.t) (entry : Rib.bgp_entry) =
  match (entry.be_source, sd.bgp) with
  | Rib.Learned ip, Some b ->
      List.exists
        (fun (n : Device.neighbor) -> Ipv4.equal n.nb_ip ip && n.nb_rr_client)
        b.neighbors
  | _, _ -> false

let exportable (sd : Device.t) (nb : Device.neighbor) (e : Session.edge)
    (entry : Rib.bgp_entry) =
  (* iBGP rule: routes learned from an iBGP peer are not re-advertised
     to iBGP peers (full mesh), unless the sender is a route reflector:
     anything may be reflected to a client, and client routes may be
     reflected to every iBGP peer. *)
  let ibgp_learned =
    (not entry.be_from_ebgp)
    && match entry.be_source with Rib.Learned _ -> true | _ -> false
  in
  let ibgp_rule =
    e.ebgp || (not ibgp_learned) || nb.nb_rr_client
    || learned_from_client sd entry
  in
  let no_export_rule =
    not (e.ebgp && Route.has_community entry.be_route Community.no_export)
  in
  ibgp_rule && no_export_rule

(* summary-only aggregation suppresses the advertisement of strictly
   more specific prefixes (the aggregate itself is advertised). *)
let suppressed_by_summary (b : Device.bgp_config) (entry : Rib.bgp_entry) =
  entry.be_source <> Rib.From_aggregate
  && List.exists
       (fun (a : Device.aggregate) ->
         a.ag_summary_only
         && Prefix.subsumes a.ag_prefix entry.be_route.Route.prefix
         && Prefix.len entry.be_route.Route.prefix > Prefix.len a.ag_prefix)
       b.aggregates

(* Default chain evaluator: the raw policy engine. The coverage core
   substitutes a memoizing wrapper via [?eval]. *)
let default_eval : Eval.chain_eval =
 fun d ~chain ~default ~protocol route ->
  Eval.run_chain d ~chain ~default ~protocol route

let export_route ?(eval = default_eval) (find_device : find_device)
    (e : Session.edge) (entry : Rib.bgp_entry) =
  let sd = find_device e.send_host in
  match (Session.send_neighbor sd e, sd.bgp) with
  | None, _ | _, None -> (None, [])
  | Some nb, _ when not (exportable sd nb e entry) -> (None, [])
  | Some _, Some b when suppressed_by_summary b entry -> (None, [])
  | Some nb, Some b -> (
        let chain = Device.neighbor_export sd nb in
        let { Eval.verdict; route; exercised } =
          eval sd ~chain ~default:Eval.Accepted ~protocol:Route.Bgp
            entry.be_route
        in
        match (verdict, route) with
        | Eval.Rejected, _ | _, None -> (None, exercised)
        | Eval.Accepted, Some r ->
            let r =
              if e.ebgp then
                {
                  r with
                  Route.as_path = As_path.prepend b.local_as r.as_path;
                  next_hop = e.send_ip;
                  cluster_len = 0;
                }
              else
                (* reflecting an iBGP-learned route grows CLUSTER_LIST *)
                let reflected =
                  (not entry.be_from_ebgp)
                  &&
                  match entry.be_source with
                  | Rib.Learned _ -> true
                  | _ -> false
                in
                let r =
                  if reflected then
                    { r with Route.cluster_len = r.Route.cluster_len + 1 }
                  else r
                in
                if nb.nb_next_hop_self || Ipv4.equal r.Route.next_hop self_next_hop
                then { r with Route.next_hop = e.send_ip }
                else r
            in
            (Some r, exercised))

let import_route ?(eval = default_eval) (find_device : find_device)
    (e : Session.edge) (msg : Route.bgp) =
  let rd = find_device e.recv_host in
  match (Session.recv_neighbor rd e, rd.bgp) with
  | None, _ | _, None -> (None, [])
  | Some nb, Some b -> (
      if e.ebgp && As_path.mem b.local_as msg.Route.as_path then (None, [])
      else
        let msg =
          if e.ebgp then
            let lp =
              match Device.neighbor_group rd nb with
              | Some g -> Option.value g.pg_local_pref ~default:Route.default_local_pref
              | None -> Route.default_local_pref
            in
            { msg with Route.local_pref = lp }
          else msg
        in
        let chain = Device.neighbor_import rd nb in
        let { Eval.verdict; route; exercised } =
          eval rd ~chain ~default:Eval.Accepted ~protocol:Route.Bgp msg
        in
        match (verdict, route) with
        | Eval.Rejected, _ | _, None -> (None, exercised)
        | Eval.Accepted, Some r -> (Some r, exercised))

let redistribute_route ?(eval = default_eval) (find_device : find_device) host
    (rd : Device.redistribute) (me : Rib.main_entry) =
  let d = find_device host in
  let base =
    {
      (Route.originate me.Rib.me_prefix ~next_hop:self_next_hop) with
      Route.origin = Route.Origin_incomplete;
    }
  in
  match rd.rd_policy with
  | None -> (Some base, [])
  | Some pol -> (
      let { Eval.verdict; route; exercised } =
        eval d ~chain:[ pol ] ~default:Eval.Rejected
          ~protocol:me.Rib.me_protocol base
      in
      match (verdict, route) with
      | Eval.Rejected, _ | _, None -> (None, exercised)
      | Eval.Accepted, Some r -> (Some r, exercised))

(* ------------------------------------------------------------------ *)
(* Best-path selection                                                 *)
(* ------------------------------------------------------------------ *)

let preference_compare (a : Rib.bgp_entry) (b : Rib.bgp_entry) =
  let local e = if is_local_source e.Rib.be_source then 0 else 1 in
  let cmps =
    [
      (fun () -> Int.compare (local a) (local b));
      (fun () ->
        Int.compare b.be_route.Route.local_pref a.be_route.Route.local_pref);
      (fun () ->
        Int.compare
          (As_path.length a.be_route.Route.as_path)
          (As_path.length b.be_route.Route.as_path));
      (fun () ->
        Int.compare
          (Route.origin_rank a.be_route.Route.origin)
          (Route.origin_rank b.be_route.Route.origin));
      (fun () -> Int.compare a.be_route.Route.med b.be_route.Route.med);
      (fun () ->
        Bool.compare (not a.be_from_ebgp) (not b.be_from_ebgp));
      (fun () ->
        Int.compare a.be_route.Route.cluster_len b.be_route.Route.cluster_len);
      (fun () -> Int.compare a.be_igp_cost b.be_igp_cost);
      (fun () -> Ipv4.compare a.be_peer_id b.be_peer_id);
    ]
  in
  let rec go = function
    | [] -> 0
    | f :: rest -> ( match f () with 0 -> go rest | c -> c)
  in
  go cmps

(* Multipath-eligible with the winner: equal through the IGP-cost step
   (everything except the final peer-id tie break). *)
let multipath_equal (a : Rib.bgp_entry) (b : Rib.bgp_entry) =
  is_local_source a.Rib.be_source = is_local_source b.Rib.be_source
  && a.be_route.Route.local_pref = b.be_route.Route.local_pref
  && As_path.length a.be_route.Route.as_path
     = As_path.length b.be_route.Route.as_path
  && Route.origin_rank a.be_route.Route.origin
     = Route.origin_rank b.be_route.Route.origin
  && a.be_route.Route.med = b.be_route.Route.med
  && a.be_from_ebgp = b.be_from_ebgp
  && a.be_route.Route.cluster_len = b.be_route.Route.cluster_len
  && a.be_igp_cost = b.be_igp_cost

let select_best ~multipath entries =
  match List.sort preference_compare entries with
  | [] -> []
  | winner :: _ as sorted ->
      let n_best = ref 0 in
      List.map
        (fun e ->
          let best =
            !n_best < max 1 multipath && multipath_equal winner e
          in
          if best then incr n_best;
          { e with Rib.be_best = best })
        sorted

(* ------------------------------------------------------------------ *)
(* Fixed point                                                         *)
(* ------------------------------------------------------------------ *)

type result = {
  bgp_ribs : (string, Rib.bgp_entry Rib.table) Hashtbl.t;
  main_ribs : (string, Rib.main_entry Rib.table) Hashtbl.t;
  igp_ribs : (string, Rib.igp_entry Rib.table) Hashtbl.t;
  edges : Session.edge list;
  rounds : int;
}

let connected_entries (d : Device.t) =
  List.map
    (fun ((i : Device.interface), p) ->
      {
        Rib.me_prefix = p;
        me_nexthop = Rib.Nh_connected i.if_name;
        me_protocol = Route.Connected;
        me_metric = 0;
      })
    (Device.connected_prefixes d)

let static_entries (d : Device.t) =
  List.map
    (fun (s : Device.static_route) ->
      {
        Rib.me_prefix = s.st_prefix;
        me_nexthop = Rib.Nh_ip s.st_next_hop;
        me_protocol = Route.Static;
        me_metric = 0;
      })
    d.static_routes

let igp_entries table =
  List.map
    (fun (_, (e : Rib.igp_entry)) ->
      {
        Rib.me_prefix = e.ie_prefix;
        me_nexthop = Rib.Nh_ip e.ie_nexthop;
        me_protocol = Route.Igp;
        me_metric = e.ie_cost;
      })
    (Rib.table_entries table)

(* Keep only the best-protocol entries per prefix, deduplicated. *)
let normalize_main table =
  Prefix_trie.map
    (fun entries ->
      match List.sort_uniq Rib.compare_main entries with
      | [] -> []
      | sorted ->
          let best_proto =
            List.fold_left
              (fun acc (e : Rib.main_entry) ->
                if Route.compare_protocol e.me_protocol acc < 0 then e.me_protocol
                else acc)
              Route.Bgp sorted
          in
          List.filter
            (fun (e : Rib.main_entry) -> e.me_protocol = best_proto)
            sorted)
    table

(* Pre-BGP main RIB: connected beats static beats IGP per prefix. *)
let pre_bgp_main (d : Device.t) igp_table =
  let all = connected_entries d @ static_entries d @ igp_entries igp_table in
  List.fold_left
    (fun t (e : Rib.main_entry) -> Rib.table_add e.me_prefix e t)
    Prefix_trie.empty all
  |> normalize_main

let igp_cost_to main_rib ip =
  if Ipv4.equal ip self_next_hop then 0
  else
    match Rib.table_longest_match ip main_rib with
    | Some (_, e :: _) -> e.Rib.me_metric
    | Some (_, []) | None -> 0

(* One synchronous round for one host: local origination + imports from
   the previous round's sender states. *)
let host_round (find_device : find_device) (d : Device.t) ~edges_in
    ~(prev_bgp : string -> Rib.bgp_entry Rib.table) ~pre_main =
  match d.bgp with
  | None -> Prefix_trie.empty
  | Some b ->
      let entries = ref [] in
      let push e = entries := e :: !entries in
      (* network statements: pull exact main-RIB entries into BGP *)
      List.iter
        (fun p ->
          match Rib.table_find p pre_main with
          | [] -> ()
          | me :: _ ->
              if me.Rib.me_protocol <> Route.Bgp then
                push
                  {
                    Rib.be_route = Route.originate p ~next_hop:self_next_hop;
                    be_source = Rib.From_network;
                    be_from_ebgp = false;
                    be_igp_cost = 0;
                    be_peer_id = b.router_id;
                    be_best = false;
                  })
        b.networks;
      (* redistribution *)
      List.iter
        (fun (rd : Device.redistribute) ->
          List.iter
            (fun (_, (me : Rib.main_entry)) ->
              if me.me_protocol = rd.rd_from then
                match redistribute_route find_device d.hostname rd me with
                | Some r, _ ->
                    push
                      {
                        Rib.be_route = r;
                        be_source = Rib.From_redistribute rd.rd_from;
                        be_from_ebgp = false;
                        be_igp_cost = 0;
                        be_peer_id = b.router_id;
                        be_best = false;
                      }
                | None, _ -> ())
            (Rib.table_entries pre_main))
        b.redistributes;
      (* imports over established edges (sender state from previous round) *)
      List.iter
        (fun (e : Session.edge) ->
          let sender_table = prev_bgp e.send_host in
          (* All the sender's current best routes, filtered and
             transformed by the export simulation. *)
          Prefix_trie.iter
            (fun _ sender_entries ->
              List.iter
                (fun (se : Rib.bgp_entry) ->
                  if se.be_best then
                    match export_route find_device e se with
                    | None, _ -> ()
                    | Some msg, _ -> (
                        match import_route find_device e msg with
                        | None, _ -> ()
                        | Some r, _ ->
                            push
                              {
                                Rib.be_route = r;
                                be_source = Rib.Learned e.send_ip;
                                be_from_ebgp = e.ebgp;
                                be_igp_cost =
                                  igp_cost_to pre_main r.Route.next_hop;
                                be_peer_id = e.send_ip;
                                be_best = false;
                              }))
                sender_entries)
            sender_table)
        edges_in;
      (* aggregates: active iff a strictly more specific BGP entry
         exists among what we have so far *)
      let base = !entries in
      List.iter
        (fun (a : Device.aggregate) ->
          let has_contributor =
            List.exists
              (fun (e : Rib.bgp_entry) ->
                Prefix.subsumes a.ag_prefix e.be_route.Route.prefix
                && Prefix.len e.be_route.Route.prefix > Prefix.len a.ag_prefix)
              base
          in
          if has_contributor then
            push
              {
                Rib.be_route =
                  {
                    (Route.originate a.ag_prefix ~next_hop:self_next_hop) with
                    Route.origin = Route.Origin_incomplete;
                  };
                be_source = Rib.From_aggregate;
                be_from_ebgp = false;
                be_igp_cost = 0;
                be_peer_id = b.router_id;
                be_best = false;
              })
        b.aggregates;
      (* group by prefix, select best *)
      let by_prefix = Hashtbl.create 64 in
      List.iter
        (fun (e : Rib.bgp_entry) ->
          let k = Prefix.to_string e.be_route.Route.prefix in
          let cur = Option.value (Hashtbl.find_opt by_prefix k) ~default:[] in
          Hashtbl.replace by_prefix k (e :: cur))
        !entries;
      Hashtbl.fold
        (fun _ es table ->
          match es with
          | [] -> table
          | first :: _ ->
              (* a sender's several ECMP best paths export as identical
                 messages: deduplicate before selection so duplicates do
                 not consume the multipath budget *)
              let selected =
                select_best ~multipath:b.multipath
                  (List.sort_uniq Rib.compare_bgp_entry es)
                |> List.sort_uniq Rib.compare_bgp_entry
              in
              Prefix_trie.add first.Rib.be_route.Route.prefix selected table)
        by_prefix Prefix_trie.empty

(* Install BGP best routes into the pre-BGP main RIB. Locally originated
   network/redistributed entries do not re-install (their source routes
   are already present); aggregates install as discard routes. *)
let build_main (d : Device.t) pre_main bgp_table =
  let multipath = match d.bgp with Some b -> b.multipath | None -> 1 in
  Prefix_trie.fold
    (fun p entries table ->
      let existing = Rib.table_find p table in
      let has_better =
        List.exists
          (fun (e : Rib.main_entry) -> e.me_protocol <> Route.Bgp)
          existing
      in
      if has_better then table
      else
        let best = List.filter (fun (e : Rib.bgp_entry) -> e.be_best) entries in
        let installs =
          List.filter_map
            (fun (e : Rib.bgp_entry) ->
              match e.be_source with
              | Rib.Learned _ ->
                  Some
                    {
                      Rib.me_prefix = p;
                      me_nexthop = Rib.Nh_ip e.be_route.Route.next_hop;
                      me_protocol = Route.Bgp;
                      me_metric = 0;
                    }
              | Rib.From_aggregate ->
                  Some
                    {
                      Rib.me_prefix = p;
                      me_nexthop = Rib.Nh_discard;
                      me_protocol = Route.Bgp;
                      me_metric = 0;
                    }
              | Rib.From_network | Rib.From_redistribute _ -> None)
            best
        in
        let installs =
          let rec take n = function
            | [] -> []
            | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
          in
          take (max 1 multipath) (List.sort_uniq Rib.compare_main installs)
        in
        if installs = [] then table else Prefix_trie.add p installs table)
    bgp_table pre_main

let bgp_tables_equal (a : Rib.bgp_entry Rib.table)
    (b : Rib.bgp_entry Rib.table) =
  Prefix_trie.equal
    (fun xs ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun x y -> Rib.compare_bgp_entry x y = 0) xs ys)
    a b

let run ?(max_rounds = 64) ?diags devices topo =
  let dev_tbl = Hashtbl.create 64 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace dev_tbl d.hostname d) devices;
  let find_device h =
    match Hashtbl.find_opt dev_tbl h with
    | Some d -> d
    | None -> (
        match diags with
        | None -> invalid_arg ("Bgp.run: unknown device " ^ h)
        | Some sink ->
            (* Degrade: report once, then stand in an external stub so
               the session's routes simply stop propagating there. *)
            sink
              (Netcov_diag.Diag.error ~device:h Netcov_diag.Diag.Unknown_host
                 (Printf.sprintf
                    "unknown device %s: substituting an external stub" h));
            let stub = Device.make ~is_external:true h in
            Hashtbl.replace dev_tbl h stub;
            stub)
  in
  let igp_ribs = Igp.compute devices topo in
  let igp_of h =
    Option.value (Hashtbl.find_opt igp_ribs h) ~default:Prefix_trie.empty
  in
  let pre_mains = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      Hashtbl.replace pre_mains d.hostname (pre_bgp_main d (igp_of d.hostname)))
    devices;
  let reach host ip =
    match Hashtbl.find_opt pre_mains host with
    | None -> false
    | Some t -> Rib.table_longest_match ip t <> None
  in
  let edges = Session.establish devices topo ~reach in
  let edges_in_of = Hashtbl.create 64 in
  List.iter
    (fun (e : Session.edge) ->
      let cur = Option.value (Hashtbl.find_opt edges_in_of e.recv_host) ~default:[] in
      Hashtbl.replace edges_in_of e.recv_host (cur @ [ e ]))
    edges;
  let bgp_state = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) -> Hashtbl.replace bgp_state d.hostname Prefix_trie.empty)
    devices;
  let rounds = ref 0 in
  (* Dirty-host convergence: a host's round output is a pure function
     of its pre-BGP main RIB and its in-edge senders' previous-round
     tables, so only hosts with a sender in last round's changed set
     can produce a different table this round. [dirty] holds last
     round's changed hosts (initially every host, standing in for the
     transition into the empty initial state); hosts without a dirty
     sender keep their tables without recomputation or recomparison.
     Round counts — including the final confirming round — match the
     recompute-everything loop exactly. *)
  let dirty = Hashtbl.create 64 in
  List.iter (fun (d : Device.t) -> Hashtbl.replace dirty d.hostname ()) devices;
  let first = ref true in
  while Hashtbl.length dirty > 0 && !rounds < max_rounds do
    incr rounds;
    Netcov_obs.Trace.with_span "sim.bgp.round"
      ~args:
        [
          ("round", Netcov_obs.Trace.I !rounds);
          ("dirty", Netcov_obs.Trace.I (Hashtbl.length dirty));
        ]
    @@ fun () ->
    let prev_bgp h =
      Option.value (Hashtbl.find_opt bgp_state h) ~default:Prefix_trie.empty
    in
    let edges_in_of_host h =
      Option.value (Hashtbl.find_opt edges_in_of h) ~default:[]
    in
    let targets =
      if !first then devices
      else
        List.filter
          (fun (d : Device.t) ->
            List.exists
              (fun (e : Session.edge) -> Hashtbl.mem dirty e.send_host)
              (edges_in_of_host d.hostname))
          devices
    in
    first := false;
    let next =
      List.map
        (fun (d : Device.t) ->
          let edges_in = edges_in_of_host d.hostname in
          let pre_main = Hashtbl.find pre_mains d.hostname in
          (d.hostname, host_round find_device d ~edges_in ~prev_bgp ~pre_main))
        targets
    in
    Hashtbl.reset dirty;
    List.iter
      (fun (h, table) ->
        if not (bgp_tables_equal table (prev_bgp h)) then
          Hashtbl.replace dirty h ())
      next;
    List.iter (fun (h, table) -> Hashtbl.replace bgp_state h table) next
  done;
  if Hashtbl.length dirty > 0 then
    Log.warn (fun m -> m "BGP did not converge after %d rounds" max_rounds);
  let main_ribs = Hashtbl.create 64 in
  List.iter
    (fun (d : Device.t) ->
      let pre_main = normalize_main (Hashtbl.find pre_mains d.hostname) in
      let bgp_table = Hashtbl.find bgp_state d.hostname in
      Hashtbl.replace main_ribs d.hostname (build_main d pre_main bgp_table))
    devices;
  { bgp_ribs = bgp_state; main_ribs; igp_ribs; edges; rounds = !rounds }
