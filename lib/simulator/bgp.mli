(** BGP control-plane computation to a stable state, plus the targeted
    per-route simulations that NetCov's inference rules re-run (§4.2).

    The propagation is a synchronous fixed point: each round every
    device re-originates local routes, exports its current best routes
    over every established edge, imports what its neighbors exported in
    the previous round, and re-selects best paths. No provenance is
    recorded — the coverage core re-derives contributions afterwards
    from the stable state alone (paper §3.2, observation 2). *)

open Netcov_types
open Netcov_config

type find_device = string -> Device.t

(** [export_route find_device edge entry] simulates the sender-side
    processing of [entry] over [edge]: exportability (iBGP full-mesh
    rule, no-export community), the export policy chain, eBGP AS
    prepending and next-hop rewriting. Returns the wire message and the
    policy elements exercised on the sender.

    [eval] substitutes the policy-chain evaluator (default:
    [Eval.run_chain]); the coverage core injects a memoizing wrapper so
    repeated targeted simulations of the same (device, chain, route)
    are answered from cache. *)
val export_route :
  ?eval:Netcov_policy.Eval.chain_eval ->
  find_device ->
  Session.edge ->
  Rib.bgp_entry ->
  Route.bgp option * Element.key list

(** [import_route find_device edge msg] simulates receiver-side
    processing: AS-loop rejection, eBGP local-pref reset, peer-group
    preference, the import policy chain. Returns the accepted route and
    the policy elements exercised on the receiver. *)
val import_route :
  ?eval:Netcov_policy.Eval.chain_eval ->
  find_device ->
  Session.edge ->
  Route.bgp ->
  Route.bgp option * Element.key list

(** [redistribute_route find_device host r main_entry] simulates a
    redistribution config pulling a main-RIB entry into BGP. *)
val redistribute_route :
  ?eval:Netcov_policy.Eval.chain_eval ->
  find_device ->
  string ->
  Device.redistribute ->
  Rib.main_entry ->
  Route.bgp option * Element.key list

(** Result of the fixed-point computation. *)
type result = {
  bgp_ribs : (string, Rib.bgp_entry Rib.table) Hashtbl.t;
  main_ribs : (string, Rib.main_entry Rib.table) Hashtbl.t;
  igp_ribs : (string, Rib.igp_entry Rib.table) Hashtbl.t;
  pre_mains : (string, Rib.main_entry Rib.table) Hashtbl.t;
      (** pre-BGP main RIBs (connected + static + IGP), kept so warm
          restarts can diff them without recomputing *)
  edges : Session.edge list;
  rounds : int;  (** rounds to converge *)
}

(** [compute_pre_mains devices igp_ribs] builds each device's pre-BGP
    main RIB (connected, static, IGP entries) — the local inputs to the
    fixed point. *)
val compute_pre_mains :
  Device.t list ->
  (string, Rib.igp_entry Rib.table) Hashtbl.t ->
  (string, Rib.main_entry Rib.table) Hashtbl.t

(** [reach_of pre_mains host ip] is the pre-BGP reachability predicate
    used for session establishment. *)
val reach_of :
  (string, Rib.main_entry Rib.table) Hashtbl.t -> string -> Ipv4.t -> bool

(** Memo of per-(edge, prefix) import pipelines — the sender's group
    filtered and transformed by the export and import simulations —
    primed once from a converged state with {!build_import_memo}.
    During a warm {!fixed_point} a lookup is replayed verbatim when the
    sender's current group is physically the one the memo was primed
    from (the warm iteration structurally shares untouched prefixes)
    and neither edge endpoint is in the dirty seed. Read-only once
    primed, so it is safe to share across parallel warm replays. *)
type import_memo

(** [build_import_memo find_device ~edges ~pre_mains ~bgp_ribs] primes
    a memo from a converged state's edges and tables — about one
    round's worth of policy evaluation. *)
val build_import_memo :
  find_device ->
  edges:Session.edge list ->
  pre_mains:(string, Rib.main_entry Rib.table) Hashtbl.t ->
  bgp_ribs:(string, Rib.bgp_entry Rib.table) Hashtbl.t ->
  import_memo

(** Warm-start seed for {!fixed_point}: a previous run's converged
    tables plus the set of hosts whose round function changed (their
    configuration, pre-BGP main RIB, or in-edge set differs from the
    run that produced the tables). [w_main_reuse] supplies main RIBs to
    reuse for hosts outside the affected cone; [w_memo] optionally
    supplies an import memo primed from the same state. *)
type warm = {
  w_tables : (string, Rib.bgp_entry Rib.table) Hashtbl.t;
  w_dirty : (string, unit) Hashtbl.t;
  w_main_reuse : (string, Rib.main_entry Rib.table) Hashtbl.t;
  w_memo : import_memo option;
}

(** [fixed_point devices ~igp_ribs ~pre_mains ~edges] runs the
    synchronous iteration from explicit inputs. Without [warm] it
    starts from empty tables (equivalent to {!run} given the same
    inputs); with [warm] it replays only the dirty cone of an edit,
    which matches a from-scratch run whenever the iteration's fixed
    point is unique. *)
val fixed_point :
  ?max_rounds:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  ?warm:warm ->
  Device.t list ->
  igp_ribs:(string, Rib.igp_entry Rib.table) Hashtbl.t ->
  pre_mains:(string, Rib.main_entry Rib.table) Hashtbl.t ->
  edges:Session.edge list ->
  result

(** [run devices topo] computes the stable state. [max_rounds] caps the
    iteration (default 64); non-convergence logs a warning and returns
    the last state.

    Without [diags], referencing an unknown device raises
    [Invalid_argument]. With [diags], each unknown hostname is reported
    once as an [Unknown_host] error diagnostic and replaced by an
    external stub device, so the computation degrades (routes stop at
    the stub) instead of aborting. *)
val run :
  ?max_rounds:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  Device.t list ->
  Topology.t ->
  result

(** Best-path comparison used by selection (smaller is better); exposed
    for tests. Ranks: local origination, local-pref, AS-path length,
    origin, MED, eBGP-over-iBGP, IGP cost, peer id. *)
val preference_compare : Rib.bgp_entry -> Rib.bgp_entry -> int
