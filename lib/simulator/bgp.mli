(** BGP control-plane computation to a stable state, plus the targeted
    per-route simulations that NetCov's inference rules re-run (§4.2).

    The propagation is a synchronous fixed point: each round every
    device re-originates local routes, exports its current best routes
    over every established edge, imports what its neighbors exported in
    the previous round, and re-selects best paths. No provenance is
    recorded — the coverage core re-derives contributions afterwards
    from the stable state alone (paper §3.2, observation 2). *)

open Netcov_types
open Netcov_config

type find_device = string -> Device.t

(** [export_route find_device edge entry] simulates the sender-side
    processing of [entry] over [edge]: exportability (iBGP full-mesh
    rule, no-export community), the export policy chain, eBGP AS
    prepending and next-hop rewriting. Returns the wire message and the
    policy elements exercised on the sender.

    [eval] substitutes the policy-chain evaluator (default:
    [Eval.run_chain]); the coverage core injects a memoizing wrapper so
    repeated targeted simulations of the same (device, chain, route)
    are answered from cache. *)
val export_route :
  ?eval:Netcov_policy.Eval.chain_eval ->
  find_device ->
  Session.edge ->
  Rib.bgp_entry ->
  Route.bgp option * Element.key list

(** [import_route find_device edge msg] simulates receiver-side
    processing: AS-loop rejection, eBGP local-pref reset, peer-group
    preference, the import policy chain. Returns the accepted route and
    the policy elements exercised on the receiver. *)
val import_route :
  ?eval:Netcov_policy.Eval.chain_eval ->
  find_device ->
  Session.edge ->
  Route.bgp ->
  Route.bgp option * Element.key list

(** [redistribute_route find_device host r main_entry] simulates a
    redistribution config pulling a main-RIB entry into BGP. *)
val redistribute_route :
  ?eval:Netcov_policy.Eval.chain_eval ->
  find_device ->
  string ->
  Device.redistribute ->
  Rib.main_entry ->
  Route.bgp option * Element.key list

(** Result of the fixed-point computation. *)
type result = {
  bgp_ribs : (string, Rib.bgp_entry Rib.table) Hashtbl.t;
  main_ribs : (string, Rib.main_entry Rib.table) Hashtbl.t;
  igp_ribs : (string, Rib.igp_entry Rib.table) Hashtbl.t;
  edges : Session.edge list;
  rounds : int;  (** rounds to converge *)
}

(** [run devices topo] computes the stable state. [max_rounds] caps the
    iteration (default 64); non-convergence logs a warning and returns
    the last state.

    Without [diags], referencing an unknown device raises
    [Invalid_argument]. With [diags], each unknown hostname is reported
    once as an [Unknown_host] error diagnostic and replaced by an
    external stub device, so the computation degrades (routes stop at
    the stub) instead of aborting. *)
val run :
  ?max_rounds:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  Device.t list ->
  Topology.t ->
  result

(** Best-path comparison used by selection (smaller is better); exposed
    for tests. Ranks: local origination, local-pref, AS-path length,
    origin, MED, eBGP-over-iBGP, IGP cost, peer id. *)
val preference_compare : Rib.bgp_entry -> Rib.bgp_entry -> int
